package wire

import (
	"fmt"
	"sort"
)

// Kind identifies a message type on the wire. Kinds are assigned statically
// by the msg package; they must never be reused for a different layout.
type Kind uint16

// Message is the interface every wire message implements. Encode and Decode
// must be exact inverses; the round-trip property is enforced by tests.
type Message interface {
	// Kind returns the message's wire identifier.
	Kind() Kind
	// Encode appends the message body (without the kind prefix) to w.
	Encode(w *Writer)
	// Decode reads the message body from r. Decode reports failures through
	// r's sticky error.
	Decode(r *Reader)
}

// Registry maps message kinds to factories so transports can decode frames.
// A Registry is immutable after construction and safe for concurrent use.
type Registry struct {
	factories map[Kind]func() Message
	names     map[Kind]string
}

// RegistryEntry describes one message type for NewRegistry.
type RegistryEntry struct {
	Kind Kind
	Name string
	New  func() Message
}

// NewRegistry builds a Registry from entries. It panics on duplicate kinds,
// which indicates a programming error in the static message table.
func NewRegistry(entries []RegistryEntry) *Registry {
	r := &Registry{
		factories: make(map[Kind]func() Message, len(entries)),
		names:     make(map[Kind]string, len(entries)),
	}
	for _, e := range entries {
		if _, dup := r.factories[e.Kind]; dup {
			panic(fmt.Sprintf("wire: duplicate message kind %d (%s)", e.Kind, e.Name))
		}
		if e.New == nil {
			panic(fmt.Sprintf("wire: nil factory for kind %d (%s)", e.Kind, e.Name))
		}
		r.factories[e.Kind] = e.New
		r.names[e.Kind] = e.Name
	}
	return r
}

// Name returns the registered name for a kind, or a numeric placeholder.
func (r *Registry) Name(k Kind) string {
	if n, ok := r.names[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Kinds returns all registered kinds in ascending order.
func (r *Registry) Kinds() []Kind {
	ks := make([]Kind, 0, len(r.factories))
	for k := range r.factories {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// New instantiates an empty message of the given kind.
func (r *Registry) New(k Kind) (Message, error) {
	f, ok := r.factories[k]
	if !ok {
		return nil, fmt.Errorf("wire: unknown message kind %d", k)
	}
	return f(), nil
}

// Marshal encodes m with its kind prefix into a fresh buffer. The scratch
// writer comes from the package pool, so repeated marshals reuse grown
// capacity instead of allocating per message.
func Marshal(m Message) []byte {
	w := GetWriter()
	AppendMessage(w, m)
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	PutWriter(w)
	return out
}

// AppendMessage encodes m with its kind prefix onto w.
func AppendMessage(w *Writer, m Message) {
	w.Uint16(uint16(m.Kind()))
	m.Encode(w)
}

// Unmarshal decodes a message previously produced by Marshal. It fails on
// unknown kinds, decode errors, and trailing bytes.
func (r *Registry) Unmarshal(data []byte) (Message, error) {
	rd := NewReader(data)
	k := Kind(rd.Uint16())
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("wire: reading kind: %w", err)
	}
	m, err := r.New(k)
	if err != nil {
		return nil, err
	}
	m.Decode(rd)
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("wire: decoding %s: %w", r.Name(k), err)
	}
	if rd.Remaining() != 0 {
		return nil, fmt.Errorf("wire: decoding %s: %w (%d bytes)", r.Name(k), ErrTrailingBytes, rd.Remaining())
	}
	return m, nil
}

// EncodedSize returns the number of bytes Marshal would produce for m,
// computed by encoding into a scratch writer.
func EncodedSize(m Message) int {
	w := GetWriter()
	AppendMessage(w, m)
	n := w.Len()
	PutWriter(w)
	return n
}
