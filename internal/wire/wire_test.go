package wire

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestWriterReaderScalars(t *testing.T) {
	w := NewWriter(0)
	w.Uint8(0xab)
	w.Bool(true)
	w.Bool(false)
	w.Uint16(0xbeef)
	w.Uint32(0xdeadbeef)
	w.Uint64(0x0123456789abcdef)
	w.Uvarint(300)
	w.Varint(-7)
	w.Int(-123456)
	w.Float64(math.Pi)
	w.Duration(3 * time.Second)
	w.Time(time.Unix(1700000000, 42))
	w.String("hello")
	w.Bytes2([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	if got := r.Uint8(); got != 0xab {
		t.Errorf("Uint8 = %#x, want 0xab", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool roundtrip failed")
	}
	if got := r.Uint16(); got != 0xbeef {
		t.Errorf("Uint16 = %#x", got)
	}
	if got := r.Uint32(); got != 0xdeadbeef {
		t.Errorf("Uint32 = %#x", got)
	}
	if got := r.Uint64(); got != 0x0123456789abcdef {
		t.Errorf("Uint64 = %#x", got)
	}
	if got := r.Uvarint(); got != 300 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := r.Varint(); got != -7 {
		t.Errorf("Varint = %d", got)
	}
	if got := r.Int(); got != -123456 {
		t.Errorf("Int = %d", got)
	}
	if got := r.Float64(); got != math.Pi {
		t.Errorf("Float64 = %v", got)
	}
	if got := r.Duration(); got != 3*time.Second {
		t.Errorf("Duration = %v", got)
	}
	if got := r.Time(); !got.Equal(time.Unix(1700000000, 42)) {
		t.Errorf("Time = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	b := r.Bytes()
	if len(b) != 3 || b[0] != 1 || b[2] != 3 {
		t.Errorf("Bytes = %v", b)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("unexpected reader error: %v", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestReaderShortBufferSticky(t *testing.T) {
	r := NewReader([]byte{0x01})
	_ = r.Uint32() // runs past end
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Fatalf("Err = %v, want ErrShortBuffer", r.Err())
	}
	// All subsequent reads are no-ops returning zero values.
	if got := r.Uint8(); got != 0 {
		t.Errorf("post-error Uint8 = %d, want 0", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("post-error String = %q, want empty", got)
	}
	if got := r.Float64s(); got != nil {
		t.Errorf("post-error Float64s = %v, want nil", got)
	}
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Errorf("error not sticky: %v", r.Err())
	}
}

func TestFloat64sCorruptLength(t *testing.T) {
	// A huge length prefix must fail without allocating.
	w := NewWriter(0)
	w.Uvarint(1 << 40)
	r := NewReader(w.Bytes())
	if got := r.Float64s(); got != nil {
		t.Errorf("Float64s on corrupt input = %v, want nil", got)
	}
	if r.Err() == nil {
		t.Error("expected error for oversized length prefix")
	}
}

func TestFloat64sShortPayloadFailsFast(t *testing.T) {
	w := NewWriter(0)
	w.Uvarint(1000) // claims 1000 doubles, provides none
	r := NewReader(w.Bytes())
	if got := r.Float64s(); got != nil {
		t.Errorf("want nil, got %d elements", len(got))
	}
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Errorf("Err = %v, want ErrShortBuffer", r.Err())
	}
}

func TestQuickFloat64sRoundtrip(t *testing.T) {
	f := func(vs []float64) bool {
		w := NewWriter(0)
		w.Float64s(vs)
		r := NewReader(w.Bytes())
		got := r.Float64s()
		if r.Err() != nil || len(got) != len(vs) {
			return false
		}
		for i := range vs {
			// NaN-safe comparison via bit patterns.
			if math.Float64bits(got[i]) != math.Float64bits(vs[i]) {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStringRoundtrip(t *testing.T) {
	f := func(s string) bool {
		w := NewWriter(0)
		w.String(s)
		r := NewReader(w.Bytes())
		return r.String() == s && r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickVarintRoundtrip(t *testing.T) {
	f := func(v int64, u uint64) bool {
		w := NewWriter(0)
		w.Varint(v)
		w.Uvarint(u)
		r := NewReader(w.Bytes())
		return r.Varint() == v && r.Uvarint() == u && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickInts32Roundtrip(t *testing.T) {
	f := func(vs []int32) bool {
		w := NewWriter(0)
		w.Ints32(vs)
		r := NewReader(w.Bytes())
		got := r.Ints32()
		if r.Err() != nil || len(got) != len(vs) {
			return false
		}
		for i := range vs {
			if got[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(0)
	w.Uint64(1)
	if w.Len() != 8 {
		t.Fatalf("Len = %d", w.Len())
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d", w.Len())
	}
}

// testMsg is a small message used to exercise the registry.
type testMsg struct {
	A int
	B string
	V []float64
}

const testKind Kind = 9999

func (m *testMsg) Kind() Kind { return testKind }
func (m *testMsg) Encode(w *Writer) {
	w.Int(m.A)
	w.String(m.B)
	w.Float64s(m.V)
}
func (m *testMsg) Decode(r *Reader) {
	m.A = r.Int()
	m.B = r.String()
	m.V = r.Float64s()
}

func testRegistry() *Registry {
	return NewRegistry([]RegistryEntry{
		{Kind: testKind, Name: "test", New: func() Message { return &testMsg{} }},
	})
}

func TestRegistryRoundtrip(t *testing.T) {
	reg := testRegistry()
	in := &testMsg{A: -5, B: "xyz", V: []float64{1, 2.5}}
	data := Marshal(in)
	out, err := reg.Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	got, ok := out.(*testMsg)
	if !ok {
		t.Fatalf("wrong type %T", out)
	}
	if got.A != in.A || got.B != in.B || len(got.V) != 2 || got.V[1] != 2.5 {
		t.Errorf("roundtrip mismatch: %+v", got)
	}
}

func TestRegistryUnknownKind(t *testing.T) {
	reg := testRegistry()
	w := NewWriter(0)
	w.Uint16(1234)
	if _, err := reg.Unmarshal(w.Bytes()); err == nil {
		t.Error("expected error for unknown kind")
	}
}

func TestRegistryTrailingBytes(t *testing.T) {
	reg := testRegistry()
	data := Marshal(&testMsg{})
	data = append(data, 0xff)
	if _, err := reg.Unmarshal(data); !errors.Is(err, ErrTrailingBytes) {
		t.Errorf("err = %v, want ErrTrailingBytes", err)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate kind")
		}
	}()
	NewRegistry([]RegistryEntry{
		{Kind: 1, Name: "a", New: func() Message { return &testMsg{} }},
		{Kind: 1, Name: "b", New: func() Message { return &testMsg{} }},
	})
}

func TestEncodedSizeMatchesMarshal(t *testing.T) {
	in := &testMsg{A: 7, B: "abc", V: make([]float64, 100)}
	if got, want := EncodedSize(in), len(Marshal(in)); got != want {
		t.Errorf("EncodedSize = %d, Marshal len = %d", got, want)
	}
}
