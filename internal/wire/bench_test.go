package wire

import (
	"testing"
)

func benchVec(n int) []float64 {
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = float64(i) * 0.25
	}
	return vs
}

func BenchmarkFloat64sEncode(b *testing.B) {
	vs := benchVec(42000) // MF-sized parameter pull
	w := NewWriter(42000*8 + 16)
	b.SetBytes(int64(len(vs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		w.Float64s(vs)
	}
}

func BenchmarkFloat64sDecode(b *testing.B) {
	vs := benchVec(42000)
	w := NewWriter(0)
	w.Float64s(vs)
	data := w.Bytes()
	b.SetBytes(int64(len(vs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(data)
		if out := r.Float64s(); len(out) != len(vs) {
			b.Fatal("bad decode")
		}
	}
}

func BenchmarkMarshalRoundtrip(b *testing.B) {
	reg := testRegistry()
	m := &testMsg{A: 7, B: "worker/3", V: benchVec(7210)} // CIFAR-sized block
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := Marshal(m)
		if _, err := reg.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarshalPooled / BenchmarkMarshalUnpooled compare the pooled
// scratch writer Marshal now uses against allocating a fresh Writer per
// message (the pre-pool behavior). The pooled path should show one
// allocation per call (the returned copy) instead of two-plus buffer growth.
func BenchmarkMarshalPooled(b *testing.B) {
	m := &testMsg{A: 7, B: "worker/3", V: benchVec(7210)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if data := Marshal(m); len(data) == 0 {
			b.Fatal("empty marshal")
		}
	}
}

func BenchmarkMarshalUnpooled(b *testing.B) {
	m := &testMsg{A: 7, B: "worker/3", V: benchVec(7210)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := NewWriter(256)
		AppendMessage(w, m)
		out := make([]byte, w.Len())
		copy(out, w.Bytes())
		if len(out) == 0 {
			b.Fatal("empty marshal")
		}
	}
}
