package wire

import "testing"

func TestWriterPoolResetAndReuse(t *testing.T) {
	w := GetWriter()
	w.Uint32(0xDEADBEEF)
	if w.Len() != 4 {
		t.Fatalf("Len = %d, want 4", w.Len())
	}
	PutWriter(w)
	// Whatever writer the pool hands out next must come back empty.
	w2 := GetWriter()
	if w2.Len() != 0 {
		t.Errorf("pooled writer not reset: Len = %d", w2.Len())
	}
	PutWriter(w2)
	// Nil and oversized writers are silently dropped, not pooled.
	PutWriter(nil)
	big := NewWriter(maxPooledCap + 1)
	PutWriter(big)
}

func BenchmarkWriterPoolGetPut(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := GetWriter()
		w.Uint64(uint64(i))
		PutWriter(w)
	}
}
