// Package wire implements the binary encoding used by every message that
// crosses a node boundary, for both the in-memory and TCP transports and for
// the discrete-event simulator. Messages are encoded with a compact,
// deterministic, hand-rolled format so that byte accounting (used by the
// communication-overhead experiments, paper Figs. 12-13) is exact and stable
// across runs.
//
// The encoding primitives follow a writer/sticky-error-reader pattern: a
// Writer appends to a growable buffer and never fails; a Reader records the
// first error it encounters and turns all subsequent reads into no-ops, so
// decode paths only check the error once at the end.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"slices"
	"time"
)

// ErrShortBuffer is reported by a Reader when a decode runs past the end of
// the input.
var ErrShortBuffer = errors.New("wire: short buffer")

// ErrTrailingBytes is reported by Unmarshal when a message decodes cleanly
// but leaves unread bytes behind, which indicates a codec mismatch.
var ErrTrailingBytes = errors.New("wire: trailing bytes after message")

// maxSliceLen bounds decoded slice lengths to guard against corrupt or
// malicious length prefixes allocating unbounded memory.
const maxSliceLen = 1 << 28

// Writer appends encoded values to an internal buffer. The zero value is
// ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity preallocated for n bytes.
func NewWriter(n int) *Writer {
	return &Writer{buf: make([]byte, 0, n)}
}

// Bytes returns the encoded buffer. The returned slice aliases the Writer's
// internal storage and is invalidated by further writes.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset truncates the buffer for reuse, retaining capacity.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Uint8 appends a single byte.
func (w *Writer) Uint8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.Uint8(1)
	} else {
		w.Uint8(0)
	}
}

// Uint16 appends a fixed-width little-endian uint16.
func (w *Writer) Uint16(v uint16) {
	w.buf = binary.LittleEndian.AppendUint16(w.buf, v)
}

// Uint32 appends a fixed-width little-endian uint32.
func (w *Writer) Uint32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// Uint64 appends a fixed-width little-endian uint64.
func (w *Writer) Uint64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// Uvarint appends a variable-width unsigned integer.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Varint appends a variable-width signed integer (zigzag encoded).
func (w *Writer) Varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// Int appends an int as a Varint.
func (w *Writer) Int(v int) { w.Varint(int64(v)) }

// Float64 appends an IEEE-754 double.
func (w *Writer) Float64(v float64) {
	w.Uint64(math.Float64bits(v))
}

// Duration appends a time.Duration as its nanosecond count.
func (w *Writer) Duration(d time.Duration) { w.Varint(int64(d)) }

// Time appends a time.Time as nanoseconds since the Unix epoch. Sub-nanosecond
// monotonic components are dropped, which is acceptable for message
// timestamps.
func (w *Writer) Time(t time.Time) { w.Varint(t.UnixNano()) }

// String appends a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Bytes2 appends a length-prefixed byte slice. (Named to avoid clashing with
// the Bytes accessor.)
func (w *Writer) Bytes2(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Float64s appends a length-prefixed slice of doubles. The payload is
// written in one pre-grown block: parameter pulls and pushes are the hot
// path of the whole system.
func (w *Writer) Float64s(vs []float64) {
	w.Uvarint(uint64(len(vs)))
	off := len(w.buf)
	need := len(vs) * 8
	w.buf = slices.Grow(w.buf, need)[:off+need]
	for i, v := range vs {
		binary.LittleEndian.PutUint64(w.buf[off+i*8:], math.Float64bits(v))
	}
}

// Ints32 appends a length-prefixed slice of int32 values, varint-encoded.
func (w *Writer) Ints32(vs []int32) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.Varint(int64(v))
	}
}

// Reader decodes values from a byte slice. The first decode error is sticky:
// all later reads return zero values, and Err reports the original failure.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Err returns the first error encountered, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Fail records err as the Reader's sticky error (if none is set yet). It
// lets layered decoders — e.g. codec payload validation — report semantic
// failures through the same single-check error path as primitive reads.
func (r *Reader) Fail(err error) { r.fail(err) }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail(ErrShortBuffer)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Uint8 reads a single byte.
func (r *Reader) Uint8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.Uint8() != 0 }

// Uint16 reads a fixed-width little-endian uint16.
func (r *Reader) Uint16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// Uint32 reads a fixed-width little-endian uint32.
func (r *Reader) Uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Uint64 reads a fixed-width little-endian uint64.
func (r *Reader) Uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Uvarint reads a variable-width unsigned integer.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrShortBuffer)
		return 0
	}
	r.off += n
	return v
}

// Varint reads a variable-width signed integer.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrShortBuffer)
		return 0
	}
	r.off += n
	return v
}

// Int reads an int encoded with Writer.Int.
func (r *Reader) Int() int { return int(r.Varint()) }

// Float64 reads an IEEE-754 double.
func (r *Reader) Float64() float64 {
	return math.Float64frombits(r.Uint64())
}

// Duration reads a time.Duration.
func (r *Reader) Duration() time.Duration { return time.Duration(r.Varint()) }

// Time reads a time.Time encoded with Writer.Time.
func (r *Reader) Time() time.Time { return time.Unix(0, r.Varint()) }

func (r *Reader) sliceLen() int {
	n := r.Uvarint()
	if n > maxSliceLen {
		r.fail(fmt.Errorf("wire: slice length %d exceeds limit", n))
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.sliceLen()
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Bytes reads a length-prefixed byte slice. The result is a copy.
func (r *Reader) Bytes() []byte {
	n := r.sliceLen()
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// Float64s reads a length-prefixed slice of doubles.
func (r *Reader) Float64s() []float64 {
	n := r.sliceLen()
	if r.err != nil {
		return nil
	}
	b := r.take(n * 8)
	if b == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// Ints32 reads a length-prefixed slice of int32 values.
func (r *Reader) Ints32() []int32 {
	n := r.sliceLen()
	if r.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		v := r.Varint()
		if v < math.MinInt32 || v > math.MaxInt32 {
			r.fail(fmt.Errorf("wire: int32 out of range: %d", v))
			return nil
		}
		out[i] = int32(v)
	}
	if r.err != nil {
		return nil
	}
	return out
}
