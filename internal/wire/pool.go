package wire

import "sync"

// maxPooledCap bounds the buffers the writer pool retains: a writer that
// grew past this (a one-off giant block) is dropped instead of pinning the
// memory for the process lifetime.
const maxPooledCap = 1 << 22

var writerPool = sync.Pool{
	New: func() any { return NewWriter(256) },
}

// GetWriter returns an empty Writer from the package pool. The hot encode
// paths — Marshal, the TCP transport's framing, codec payload encoding —
// reuse pooled writers so steady-state message traffic stops allocating a
// fresh buffer per message.
func GetWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.Reset()
	return w
}

// PutWriter returns w to the pool. The caller must not retain w or any slice
// obtained from w.Bytes() afterwards.
func PutWriter(w *Writer) {
	if w == nil || cap(w.buf) > maxPooledCap {
		return
	}
	writerPool.Put(w)
}
