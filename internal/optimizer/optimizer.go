// Package optimizer implements the server-side update rule of the parameter
// server. Following MXNet's kvstore design (which the paper builds on),
// workers push raw gradients and the server applies them:
//
//	w <- w - eta(t) * g    (optionally with momentum)
//
// The learning-rate schedule is keyed on the global push count, mirroring
// the paper's per-epoch decay (CIFAR-10: eta starts at 0.05 and decays at
// epochs 200 and 250), since one epoch equals one push from every worker.
package optimizer

import (
	"fmt"
	"math"
	"sort"

	"specsync/internal/sparse"
	"specsync/internal/tensor"
)

// Schedule maps a global step (push count) to a learning rate.
type Schedule interface {
	// LR returns the learning rate at the given global step.
	LR(step int64) float64
}

// Const is a fixed learning rate.
type Const float64

var _ Schedule = Const(0)

// LR implements Schedule.
func (c Const) LR(int64) float64 { return float64(c) }

// Step decays a base rate by Factor at each boundary step.
type Step struct {
	Base       float64
	Factor     float64 // multiplier applied at each boundary (e.g. 0.1)
	Boundaries []int64 // ascending global steps at which decay happens
}

var _ Schedule = (*Step)(nil)

// NewStep validates and builds a step-decay schedule.
func NewStep(base, factor float64, boundaries []int64) (*Step, error) {
	if base <= 0 || factor <= 0 || factor > 1 {
		return nil, fmt.Errorf("optimizer: bad step schedule base=%v factor=%v", base, factor)
	}
	if !sort.SliceIsSorted(boundaries, func(i, j int) bool { return boundaries[i] < boundaries[j] }) {
		return nil, fmt.Errorf("optimizer: boundaries must be ascending: %v", boundaries)
	}
	bs := make([]int64, len(boundaries))
	copy(bs, boundaries)
	return &Step{Base: base, Factor: factor, Boundaries: bs}, nil
}

// LR implements Schedule.
func (s *Step) LR(step int64) float64 {
	lr := s.Base
	for _, b := range s.Boundaries {
		if step >= b {
			lr *= s.Factor
		} else {
			break
		}
	}
	return lr
}

// InvSqrt decays as Base / sqrt(1 + step/Scale), the classic SGD schedule
// that guarantees convergence on convex problems.
type InvSqrt struct {
	Base  float64
	Scale float64
}

var _ Schedule = (*InvSqrt)(nil)

// LR implements Schedule.
func (s *InvSqrt) LR(step int64) float64 {
	scale := s.Scale
	if scale <= 0 {
		scale = 1
	}
	return s.Base / math.Sqrt(1+float64(step)/scale)
}

// SGD applies pushed gradients to a parameter shard. Optionally uses
// heavy-ball momentum, which amplifies the damage done by stale gradients
// and is therefore interesting for the staleness experiments. SGD is not
// safe for concurrent use; the owning server serializes access.
type SGD struct {
	sched    Schedule
	momentum float64
	clip     float64 // max gradient L2 norm, 0 = off
	velocity tensor.Vec
	step     int64
}

// SGDConfig configures an SGD optimizer instance.
type SGDConfig struct {
	Schedule Schedule
	Momentum float64 // 0 disables momentum
	Clip     float64 // max gradient norm per push, 0 disables clipping
}

// NewSGD builds the optimizer for a shard of the given dimension.
func NewSGD(cfg SGDConfig, dim int) (*SGD, error) {
	if cfg.Schedule == nil {
		return nil, fmt.Errorf("optimizer: nil schedule")
	}
	if cfg.Momentum < 0 || cfg.Momentum >= 1 {
		return nil, fmt.Errorf("optimizer: momentum %v outside [0,1)", cfg.Momentum)
	}
	if dim < 1 {
		return nil, fmt.Errorf("optimizer: dim %d < 1", dim)
	}
	o := &SGD{sched: cfg.Schedule, momentum: cfg.Momentum, clip: cfg.Clip}
	if cfg.Momentum > 0 {
		o.velocity = tensor.NewVec(dim)
	}
	return o, nil
}

// Step returns the number of updates applied so far.
func (o *SGD) Step() int64 { return o.step }

// SetStep overrides the global step counter. Shards use this to key the
// schedule on the *global* push count rather than their local one.
func (o *SGD) SetStep(s int64) { o.step = s }

// CurrentLR returns the learning rate the next update will use.
func (o *SGD) CurrentLR() float64 { return o.sched.LR(o.step) }

// ApplyDense performs w -= lr * g (with momentum/clipping if configured) and
// advances the step counter.
func (o *SGD) ApplyDense(w, g tensor.Vec) {
	lr := o.sched.LR(o.step)
	o.step++
	if o.clip > 0 {
		// Clip a copy so the caller's gradient buffer is not mutated.
		n := tensor.Norm2(g)
		if n > o.clip {
			g = g.Clone()
			tensor.Scale(g, o.clip/n)
		}
	}
	if o.velocity != nil {
		// v <- mu*v + g ; w <- w - lr*v
		tensor.Scale(o.velocity, o.momentum)
		tensor.Add(o.velocity, g)
		tensor.Axpy(w, -lr, o.velocity)
		return
	}
	tensor.Axpy(w, -lr, g)
}

// ApplySparse performs the sparse analogue of ApplyDense. With momentum, the
// velocity decay is applied lazily only on touched coordinates would be the
// fully correct treatment; for simplicity and because the MF workload runs
// without momentum, sparse updates fold into the velocity densely when
// momentum is enabled.
func (o *SGD) ApplySparse(w tensor.Vec, g sparse.Vec) {
	lr := o.sched.LR(o.step)
	o.step++
	if o.clip > 0 {
		if n2 := g.Norm2Sq(); n2 > o.clip*o.clip {
			g = g.Clone()
			g.Scale(o.clip / math.Sqrt(n2))
		}
	}
	if o.velocity != nil {
		tensor.Scale(o.velocity, o.momentum)
		g.AddTo(o.velocity, 1)
		tensor.Axpy(w, -lr, o.velocity)
		return
	}
	g.AddTo(w, -lr)
}
