package optimizer

import (
	"math"
	"testing"
	"testing/quick"

	"specsync/internal/sparse"
	"specsync/internal/tensor"
)

func TestConstLR(t *testing.T) {
	if Const(0.5).LR(0) != 0.5 || Const(0.5).LR(1e6) != 0.5 {
		t.Error("Const schedule must be constant")
	}
}

func TestStepSchedule(t *testing.T) {
	s, err := NewStep(1.0, 0.1, []int64{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		step int64
		want float64
	}{
		{0, 1.0}, {99, 1.0}, {100, 0.1}, {199, 0.1}, {200, 0.01}, {5000, 0.01},
	}
	for _, c := range cases {
		if got := s.LR(c.step); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("LR(%d) = %v, want %v", c.step, got, c.want)
		}
	}
}

func TestStepValidation(t *testing.T) {
	if _, err := NewStep(0, 0.1, nil); err == nil {
		t.Error("expected error for base=0")
	}
	if _, err := NewStep(1, 1.5, nil); err == nil {
		t.Error("expected error for factor>1")
	}
	if _, err := NewStep(1, 0.1, []int64{200, 100}); err == nil {
		t.Error("expected error for unsorted boundaries")
	}
}

func TestInvSqrtMonotone(t *testing.T) {
	s := &InvSqrt{Base: 1, Scale: 10}
	prev := math.Inf(1)
	for step := int64(0); step < 1000; step += 50 {
		lr := s.LR(step)
		if lr > prev {
			t.Fatalf("InvSqrt not monotone at %d", step)
		}
		prev = lr
	}
	if got := s.LR(0); got != 1 {
		t.Errorf("LR(0) = %v", got)
	}
}

func TestSGDDenseStep(t *testing.T) {
	o, err := NewSGD(SGDConfig{Schedule: Const(0.5)}, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := tensor.Vec{1, 1, 1}
	o.ApplyDense(w, tensor.Vec{2, 0, -2})
	want := tensor.Vec{0, 1, 2}
	for i := range want {
		if w[i] != want[i] {
			t.Errorf("w[%d] = %v, want %v", i, w[i], want[i])
		}
	}
	if o.Step() != 1 {
		t.Errorf("Step = %d", o.Step())
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	o, err := NewSGD(SGDConfig{Schedule: Const(1), Momentum: 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := tensor.Vec{0}
	g := tensor.Vec{1}
	o.ApplyDense(w, g) // v=1, w=-1
	o.ApplyDense(w, g) // v=1.5, w=-2.5
	if w[0] != -2.5 {
		t.Errorf("w = %v, want -2.5", w[0])
	}
}

func TestSGDClipDoesNotMutateCallerGradient(t *testing.T) {
	o, err := NewSGD(SGDConfig{Schedule: Const(1), Clip: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := tensor.Vec{3, 4} // norm 5
	w := tensor.Vec{0, 0}
	o.ApplyDense(w, g)
	if g[0] != 3 || g[1] != 4 {
		t.Error("clip mutated caller's gradient")
	}
	if n := tensor.Norm2(w); math.Abs(n-1) > 1e-12 {
		t.Errorf("clipped update norm = %v, want 1", n)
	}
}

func TestSGDSparseMatchesDense(t *testing.T) {
	mk := func() (*SGD, tensor.Vec) {
		o, err := NewSGD(SGDConfig{Schedule: Const(0.1)}, 6)
		if err != nil {
			t.Fatal(err)
		}
		return o, tensor.Vec{1, 2, 3, 4, 5, 6}
	}
	dense := tensor.Vec{0, 1, 0, -2, 0, 0}
	sp := sparse.FromDense(dense)

	o1, w1 := mk()
	o1.ApplyDense(w1, dense)
	o2, w2 := mk()
	o2.ApplySparse(w2, sp)
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Errorf("w[%d]: dense %v vs sparse %v", i, w1[i], w2[i])
		}
	}
	if o1.Step() != o2.Step() {
		t.Error("step counters diverge")
	}
}

func TestSGDSparseClip(t *testing.T) {
	o, err := NewSGD(SGDConfig{Schedule: Const(1), Clip: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := sparse.Vec{Idx: []int32{0, 2}, Val: []float64{3, 4}}
	w := tensor.NewVec(4)
	o.ApplySparse(w, g)
	if g.Val[0] != 3 {
		t.Error("sparse clip mutated caller's gradient")
	}
	if n := tensor.Norm2(w); math.Abs(n-1) > 1e-12 {
		t.Errorf("norm = %v", n)
	}
}

func TestSGDValidation(t *testing.T) {
	if _, err := NewSGD(SGDConfig{}, 3); err == nil {
		t.Error("expected error for nil schedule")
	}
	if _, err := NewSGD(SGDConfig{Schedule: Const(1), Momentum: 1}, 3); err == nil {
		t.Error("expected error for momentum=1")
	}
	if _, err := NewSGD(SGDConfig{Schedule: Const(1)}, 0); err == nil {
		t.Error("expected error for dim=0")
	}
}

func TestSetStepKeysSchedule(t *testing.T) {
	sched, err := NewStep(1, 0.1, []int64{10})
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewSGD(SGDConfig{Schedule: sched}, 1)
	if err != nil {
		t.Fatal(err)
	}
	o.SetStep(50)
	if o.CurrentLR() != 0.1 {
		t.Errorf("CurrentLR = %v after SetStep(50)", o.CurrentLR())
	}
}

func TestQuickSGDReducesQuadratic(t *testing.T) {
	// For f(w) = |w|^2/2, gradient descent with lr < 2 must not increase f.
	f := func(seed int64) bool {
		o, err := NewSGD(SGDConfig{Schedule: Const(0.3)}, 4)
		if err != nil {
			return false
		}
		w := tensor.Vec{float64(seed%7) - 3, 1, -2, 0.5}
		before := tensor.Dot(w, w)
		for i := 0; i < 20; i++ {
			o.ApplyDense(w, w.Clone())
		}
		return tensor.Dot(w, w) <= before+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
