package faults

import (
	"sync"
	"testing"
	"time"

	"specsync/internal/live"
	"specsync/internal/metrics"
	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/ps"
	"specsync/internal/trace"
	"specsync/internal/wire"
)

// liveStarter is starterHandler's concurrency-safe twin: the live runtime
// drives handlers from network goroutines, so the test-facing counters need
// locking.
type liveStarter struct {
	ctx node.Context

	mu     sync.Mutex
	starts int
	acks   int
}

func (h *liveStarter) Init(ctx node.Context) { h.ctx = ctx }

func (h *liveStarter) Receive(from node.ID, m wire.Message) {
	switch m.(type) {
	case *msg.Start:
		h.mu.Lock()
		h.starts++
		seq := uint64(h.starts)
		h.mu.Unlock()
		h.ctx.Send(node.ServerID(0), &msg.PushReq{Seq: seq, Iter: 1, Dense: []float64{1, 1}})
	case *msg.PushAck:
		h.mu.Lock()
		h.acks++
		h.mu.Unlock()
	}
}

func (h *liveStarter) counts() (starts, acks int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.starts, h.acks
}

func waitUntil(t *testing.T, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
	return true
}

func TestLiveInjectorCrashCheckpointRestore(t *testing.T) {
	srv := newShard(t)
	wk := &liveStarter{}
	collector := trace.NewCollector()
	fm := metrics.NewFaults(msg.IsControl)

	var mu sync.Mutex
	current := srv
	var currentWk node.Handler = wk

	plan := &Plan{Events: []Event{
		// Server crash at 100ms, back at 200ms from the checkpoint.
		{Kind: KindCrashServer, At: 100 * time.Millisecond, Node: 0, RestartAfter: 100 * time.Millisecond},
		// Worker crash at 300ms, back at 400ms with a fresh Start.
		{Kind: KindCrashWorker, At: 300 * time.Millisecond, Node: 0, RestartAfter: 100 * time.Millisecond},
	}}
	inj, err := NewLive(LiveOptions{
		Plan:       plan,
		NumWorkers: 1,
		NumServers: 1,
		Tracer:     collector,
		Faults:     fm,
		NewWorker:  func(i int) (node.Handler, error) { return &liveStarter{}, nil },
		NewServer:  func(shard int) (*ps.Server, error) { return newShard(t), nil },
		// The crashed incarnation's event loop is stopped, so reading its
		// state stands in for a checkpoint read from durable storage.
		Checkpoint: func(shard int) (ps.Snapshot, bool) {
			mu.Lock()
			defer mu.Unlock()
			return current.Snapshot(), true
		},
		OnServerRestart: func(shard int, s *ps.Server) {
			mu.Lock()
			current = s
			mu.Unlock()
		},
		OnWorkerRestart: func(i int, h node.Handler) {
			mu.Lock()
			currentWk = h
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	net, err := live.NewNetwork(live.NetworkConfig{Registry: msg.Registry(), Seed: 1, Fault: inj.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode(node.ServerID(0), srv); err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode(node.WorkerID(0), wk); err != nil {
		t.Fatal(err)
	}
	net.Start()
	defer net.Close()

	if err := net.Inject(node.Scheduler, node.WorkerID(0), &msg.Start{}); err != nil {
		t.Fatal(err)
	}
	// The first push must land before the server crash at 100ms.
	if !waitUntil(t, func() bool { _, acks := wk.counts(); return acks == 1 }) {
		t.Fatal("initial push never acknowledged")
	}
	inj.Start(net)
	defer inj.Stop()

	// Wait for the whole plan: the restarted worker pushed to the restored
	// server and got its ack.
	ok := waitUntil(t, func() bool {
		mu.Lock()
		h := currentWk
		mu.Unlock()
		fresh, isStarter := h.(*liveStarter)
		if !isStarter || fresh == wk {
			return false
		}
		starts, acks := fresh.counts()
		return starts == 1 && acks == 1
	})
	if !ok {
		t.Fatal("restarted worker never completed a push to the restored server")
	}

	if errs := inj.Errs(); len(errs) != 0 {
		t.Fatalf("injector errors: %v", errs)
	}
	st := fm.Stats()
	if st.Crashes != 2 || st.Restarts != 2 || st.Restores != 1 {
		t.Errorf("crashes/restarts/restores = %d/%d/%d, want 2/2/1", st.Crashes, st.Restarts, st.Restores)
	}
	if collector.Count(trace.KindCrash) != 2 || collector.Count(trace.KindRecover) != 2 {
		t.Errorf("trace crash/recover = %d/%d, want 2/2",
			collector.Count(trace.KindCrash), collector.Count(trace.KindRecover))
	}

	// Quiesce the network before touching server state directly.
	net.Close()
	mu.Lock()
	defer mu.Unlock()
	if current == srv {
		t.Error("server was not replaced on restart")
	}
	// Version 2: one restored from the checkpoint, one from the restarted
	// worker's push.
	if v := current.Version(); v != 2 {
		t.Errorf("final server version = %d, want 2", v)
	}
}
