package faults

import (
	"math/rand"
	"sync"
	"time"

	"specsync/internal/metrics"
	"specsync/internal/node"
	"specsync/internal/wire"
)

// Action is the filter's verdict for one message. The zero value delivers
// normally. It mirrors des.FaultAction / live.FaultAction, which the
// injectors adapt to, keeping this package free of runtime imports in the
// hot path.
type Action struct {
	Drop      bool
	Duplicate bool
	Delay     time.Duration
}

// Filter evaluates a plan's message faults (partitions, drops, duplicates,
// delays) against individual sends. It is safe for concurrent use (the live
// transport calls it from many goroutines); under the single-threaded
// simulator the lock is uncontended and the decision sequence — and thus the
// run — is deterministic.
type Filter struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []msgRule
	parts []partRule
	m     *metrics.Faults
}

type msgRule struct {
	kind  EventKind
	from  time.Duration // window [from, to); to == 0 means open-ended
	to    time.Duration
	rate  float64
	delay time.Duration
}

type partRule struct {
	from, to time.Duration
	a, b     map[node.ID]bool
}

// NewFilter compiles the plan's message-fault events. The metrics receiver
// may be nil.
func NewFilter(p *Plan, m *metrics.Faults) *Filter {
	f := &Filter{
		rng: rand.New(rand.NewSource(p.Seed ^ 0x66696c746572)), // "filter"
		m:   m,
	}
	for _, ev := range p.Events {
		switch ev.Kind {
		case KindDrop, KindDuplicate, KindDelay:
			r := msgRule{kind: ev.Kind, from: ev.At, rate: ev.Rate, delay: ev.Delay}
			if ev.Duration > 0 {
				r.to = ev.At + ev.Duration
			}
			if r.rate == 0 {
				r.rate = 1
			}
			f.rules = append(f.rules, r)
		case KindPartition:
			pr := partRule{
				from: ev.At,
				to:   ev.At + ev.Duration,
				a:    make(map[node.ID]bool, len(ev.A)),
				b:    make(map[node.ID]bool, len(ev.B)),
			}
			for _, id := range ev.A {
				pr.a[node.ID(id)] = true
			}
			for _, id := range ev.B {
				pr.b[node.ID(id)] = true
			}
			f.parts = append(f.parts, pr)
		}
	}
	return f
}

// Empty reports whether the filter has no message-fault rules at all, so
// injectors can skip installing a hook.
func (f *Filter) Empty() bool { return len(f.rules) == 0 && len(f.parts) == 0 }

// Action evaluates one message sent at `elapsed` since run start. Partition
// drops are checked first (they are deterministic); probabilistic rules draw
// from the seeded stream only while their window is open, so rule evaluation
// order is stable.
func (f *Filter) Action(from, to node.ID, kind wire.Kind, elapsed time.Duration) Action {
	f.mu.Lock()
	defer f.mu.Unlock()

	for _, pr := range f.parts {
		if elapsed < pr.from || elapsed >= pr.to {
			continue
		}
		if (pr.a[from] && pr.b[to]) || (pr.b[from] && pr.a[to]) {
			f.m.RecordDrop(kind)
			return Action{Drop: true}
		}
	}

	var act Action
	for _, r := range f.rules {
		if elapsed < r.from || (r.to > 0 && elapsed >= r.to) {
			continue
		}
		if f.rng.Float64() >= r.rate {
			continue
		}
		switch r.kind {
		case KindDrop:
			f.m.RecordDrop(kind)
			return Action{Drop: true}
		case KindDuplicate:
			if !act.Duplicate {
				f.m.RecordDuplicate(kind)
				act.Duplicate = true
			}
		case KindDelay:
			if act.Delay == 0 {
				f.m.RecordDelay(kind)
				act.Delay = r.delay
			}
		}
	}
	return act
}
