package faults

import (
	"testing"
	"time"

	"specsync/internal/des"
	"specsync/internal/metrics"
	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/optimizer"
	"specsync/internal/ps"
	"specsync/internal/tensor"
	"specsync/internal/trace"
	"specsync/internal/wire"
)

// starterHandler counts msg.Start receipts (a restarted worker must get a
// fresh Start) and pushes a gradient to the server once per Start.
type starterHandler struct {
	ctx    node.Context
	starts int
}

func (h *starterHandler) Init(ctx node.Context) { h.ctx = ctx }

func (h *starterHandler) Receive(from node.ID, m wire.Message) {
	if _, ok := m.(*msg.Start); ok {
		h.starts++
		h.ctx.Send(node.ServerID(0), &msg.PushReq{Seq: uint64(h.starts), Iter: 1, Dense: []float64{1, 1}})
	}
}

func newShard(t *testing.T) *ps.Server {
	t.Helper()
	opt, err := optimizer.NewSGD(optimizer.SGDConfig{Schedule: optimizer.Const(0.5)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ps.New(ps.Config{
		Range:     ps.Range{Lo: 0, Hi: 2},
		Init:      tensor.Vec{1, 2},
		Optimizer: opt,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestSimInjectorCrashCheckpointRestore(t *testing.T) {
	sim, err := des.New(des.Config{Seed: 1, Registry: msg.Registry()})
	if err != nil {
		t.Fatal(err)
	}
	srv := newShard(t)
	wk := &starterHandler{}
	if err := sim.AddNode(node.ServerID(0), srv); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddNode(node.WorkerID(0), wk); err != nil {
		t.Fatal(err)
	}
	collector := trace.NewCollector()
	faults := metrics.NewFaults(msg.IsControl)

	plan := &Plan{Events: []Event{
		// Worker crash at 1s, back at 1.5s (fresh incarnation, new Start).
		{Kind: KindCrashWorker, At: time.Second, Node: 0, RestartAfter: 500 * time.Millisecond},
		// Server crash at 2s, back at 2.5s from the latest checkpoint.
		{Kind: KindCrashServer, At: 2 * time.Second, Node: 0, RestartAfter: 500 * time.Millisecond},
	}}
	var current *ps.Server = srv
	var currentWk node.Handler = wk
	inj, err := AttachSim(sim, SimOptions{
		Plan:            plan,
		NumWorkers:      1,
		NumServers:      1,
		Tracer:          collector,
		Faults:          faults,
		CheckpointEvery: 300 * time.Millisecond,
		NewWorker:       func(i int) (node.Handler, error) { return &starterHandler{}, nil },
		NewServer:       func(shard int) (*ps.Server, error) { return newShard(t), nil },
		Server:          func(shard int) *ps.Server { return current },
		OnServerRestart: func(shard int, s *ps.Server) { current = s },
		OnWorkerRestart: func(i int, h node.Handler) { currentWk = h },
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Init()
	// Kick the worker once so the server takes an update before any crash.
	if err := sim.Inject(node.Scheduler, node.WorkerID(0), &msg.Start{}); err != nil {
		t.Fatal(err)
	}
	sim.RunFor(3 * time.Second)

	if errs := inj.Errs(); len(errs) != 0 {
		t.Fatalf("injector errors: %v", errs)
	}
	// The replacement worker got its own Start.
	if fresh, ok := currentWk.(*starterHandler); !ok || fresh == wk {
		t.Error("worker was not replaced on restart")
	} else if fresh.starts != 1 {
		t.Errorf("restarted worker received %d Starts, want 1", fresh.starts)
	}
	// The replacement server restored a non-zero checkpoint: version > 0
	// (the pre-crash push bumped it) without replaying any pushes itself.
	if current == srv {
		t.Error("server was not replaced on restart")
	}
	if v := current.Version(); v < 1 {
		t.Errorf("restored server version = %d, want >= 1", v)
	}
	if p := current.Params(); p[0] >= 1 {
		t.Errorf("restored params[0] = %v, want < 1 (post-update state)", p[0])
	}

	st := faults.Stats()
	if st.Crashes != 2 || st.Restarts != 2 {
		t.Errorf("crashes/restarts = %d/%d, want 2/2", st.Crashes, st.Restarts)
	}
	if st.Checkpoints == 0 || st.Restores != 1 {
		t.Errorf("checkpoints/restores = %d/%d, want >0/1", st.Checkpoints, st.Restores)
	}
	if collector.Count(trace.KindCrash) != 2 || collector.Count(trace.KindRecover) != 2 {
		t.Errorf("trace crash/recover = %d/%d, want 2/2",
			collector.Count(trace.KindCrash), collector.Count(trace.KindRecover))
	}
}

func TestAttachSimValidation(t *testing.T) {
	sim, err := des.New(des.Config{Seed: 1, Registry: msg.Registry()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AttachSim(sim, SimOptions{}); err == nil {
		t.Error("AttachSim accepted a nil plan")
	}
	bad := &Plan{Events: []Event{{Kind: KindCrashWorker, Node: 5}}}
	if _, err := AttachSim(sim, SimOptions{Plan: bad, NumWorkers: 2}); err == nil {
		t.Error("AttachSim accepted an out-of-range worker")
	}
	restart := &Plan{Events: []Event{{Kind: KindCrashWorker, Node: 0, RestartAfter: time.Second}}}
	if _, err := AttachSim(sim, SimOptions{Plan: restart, NumWorkers: 1}); err == nil {
		t.Error("AttachSim accepted a worker restart without NewWorker")
	}
	ck := &Plan{}
	if _, err := AttachSim(sim, SimOptions{Plan: ck, CheckpointEvery: time.Second}); err == nil {
		t.Error("AttachSim accepted checkpointing without a Server accessor")
	}
}
