// Package faults implements deterministic fault injection and recovery for
// SpecSync clusters: declarative, seedable plans of crash, restart,
// partition, and message-fault events, with injectors for both the
// deterministic simulator (internal/des) and the live runtimes
// (internal/live, internal/transport).
//
// A Plan is pure data (JSON-serializable); the injectors translate it into
// runtime actions. All randomness comes from the plan's seed, so a simulated
// run under a fault plan is bit-for-bit reproducible, and a live run draws
// the same fault decisions in the same message order.
package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// EventKind enumerates the fault event types.
type EventKind string

const (
	// KindCrashWorker crashes worker Node at At; RestartAfter > 0 restarts
	// it (as a fresh incarnation) that much later.
	KindCrashWorker EventKind = "crash-worker"
	// KindCrashServer crashes server shard Node at At; RestartAfter > 0
	// restarts it, restoring the most recent checkpoint when one exists.
	KindCrashServer EventKind = "crash-server"
	// KindCrashScheduler crashes the scheduler at At (Node is ignored —
	// there is exactly one); RestartAfter > 0 restarts it as a fresh
	// incarnation, restoring the most recent scheduler checkpoint when one
	// exists and rebuilding the rest of its state from worker StateReports.
	KindCrashScheduler EventKind = "crash-scheduler"
	// KindPartition drops every message between groups A and B (both
	// directions) during [At, At+Duration).
	KindPartition EventKind = "partition"
	// KindDrop drops each matching message with probability Rate during
	// [At, At+Duration).
	KindDrop EventKind = "drop"
	// KindDuplicate delivers each matching message twice with probability
	// Rate during [At, At+Duration).
	KindDuplicate EventKind = "duplicate"
	// KindDelay holds each matching message for Delay extra latency with
	// probability Rate during [At, At+Duration). Delayed messages may
	// arrive after later sends: this is the plan's reordering primitive.
	KindDelay EventKind = "delay"
)

// Event is one scheduled fault.
type Event struct {
	// Kind selects the fault type.
	Kind EventKind `json:"kind"`
	// At is the event's offset from run start.
	At time.Duration `json:"at"`
	// Node is the worker index (crash-worker) or shard index (crash-server).
	Node int `json:"node,omitempty"`
	// RestartAfter, for crash events, restarts the node this long after the
	// crash; zero means the node stays down.
	RestartAfter time.Duration `json:"restart_after,omitempty"`
	// Duration bounds partition and message-fault windows; zero for
	// message faults means the window never closes.
	Duration time.Duration `json:"duration,omitempty"`
	// A and B are the two sides of a partition (node ID strings, e.g.
	// "worker/0", "server/1", "scheduler").
	A []string `json:"a,omitempty"`
	B []string `json:"b,omitempty"`
	// Rate is the per-message probability for drop/duplicate/delay faults;
	// zero means 1 (every matching message).
	Rate float64 `json:"rate,omitempty"`
	// Delay is the extra latency for delay faults.
	Delay time.Duration `json:"delay,omitempty"`
}

// Plan is a deterministic fault schedule.
type Plan struct {
	// Seed drives every random fault decision (drop/dup/delay coin flips).
	Seed int64 `json:"seed"`
	// Events is the fault schedule; order does not matter.
	Events []Event `json:"events"`
}

// Validate reports structural errors in the plan.
func (p *Plan) Validate() error {
	for i, ev := range p.Events {
		if ev.At < 0 {
			return fmt.Errorf("faults: event %d: negative At %v", i, ev.At)
		}
		switch ev.Kind {
		case KindCrashWorker, KindCrashServer:
			if ev.Node < 0 {
				return fmt.Errorf("faults: event %d: negative node index", i)
			}
			if ev.RestartAfter < 0 {
				return fmt.Errorf("faults: event %d: negative RestartAfter", i)
			}
		case KindCrashScheduler:
			if ev.RestartAfter < 0 {
				return fmt.Errorf("faults: event %d: negative RestartAfter", i)
			}
		case KindPartition:
			if len(ev.A) == 0 || len(ev.B) == 0 {
				return fmt.Errorf("faults: event %d: partition needs both sides", i)
			}
			if ev.Duration <= 0 {
				return fmt.Errorf("faults: event %d: partition needs a positive Duration", i)
			}
		case KindDrop, KindDuplicate, KindDelay:
			if ev.Rate < 0 || ev.Rate > 1 {
				return fmt.Errorf("faults: event %d: rate %v outside [0,1]", i, ev.Rate)
			}
			if ev.Kind == KindDelay && ev.Delay <= 0 {
				return fmt.Errorf("faults: event %d: delay fault needs a positive Delay", i)
			}
		default:
			return fmt.Errorf("faults: event %d: unknown kind %q", i, ev.Kind)
		}
	}
	return nil
}

// Crashes returns the plan's crash events sorted by time (for injectors).
func (p *Plan) Crashes() []Event {
	var out []Event
	for _, ev := range p.Events {
		if ev.Kind == KindCrashWorker || ev.Kind == KindCrashServer || ev.Kind == KindCrashScheduler {
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// HasSchedulerCrash reports whether the plan targets the scheduler. Runners
// use this to decide whether to arm the worker-side scheduler failure
// detector and the scheduler's beacon (both off by default so fault-free and
// worker/server-only runs keep their exact event schedules).
func (p *Plan) HasSchedulerCrash() bool {
	for _, ev := range p.Events {
		if ev.Kind == KindCrashScheduler {
			return true
		}
	}
	return false
}

// CrashOnly reports whether the plan contains nothing but crash events (no
// partitions or message faults). Replicated runs require a crash-only plan:
// a dropped, delayed, or partitioned replication message would silently
// stall a backup behind the primary it is supposed to stand in for (see
// DESIGN.md, Replication).
func (p *Plan) CrashOnly() bool {
	for _, ev := range p.Events {
		switch ev.Kind {
		case KindCrashWorker, KindCrashServer, KindCrashScheduler:
		default:
			return false
		}
	}
	return true
}

// MarshalJSON round-trips through the standard encoder; ParseJSON is the
// inverse. Durations serialize as nanosecond integers.
func (p *Plan) JSON() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// ParseJSON decodes and validates a plan.
func ParseJSON(data []byte) (*Plan, error) {
	var p Plan
	// Reject unknown fields: a misspelled "restart_after" silently turning
	// a crash-with-restart into a permanent crash is too easy otherwise.
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faults: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// ChurnConfig parameterizes Generate.
type ChurnConfig struct {
	// Workers and Servers are the cluster shape.
	Workers, Servers int
	// Crashes is the number of crash events to schedule.
	Crashes int
	// Horizon is the time span over which crashes are spread.
	Horizon time.Duration
	// Downtime is the mean restart delay (uniform in [Downtime/2,
	// 3*Downtime/2)); zero leaves crashed nodes down.
	Downtime time.Duration
	// ServerFraction is the fraction of crashes that hit server shards
	// (default 0: workers only).
	ServerFraction float64
	// SchedulerCrashes is the number of additional scheduler crash/restart
	// events to schedule (default 0). They share the horizon and downtime
	// distribution with worker/server crashes.
	SchedulerCrashes int
}

// Generate builds a deterministic churn plan: Crashes crash/restart events
// spread uniformly over the horizon, targets drawn from the seeded stream.
// The same seed and config always produce the identical plan.
func Generate(seed int64, cfg ChurnConfig) (*Plan, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("faults: churn needs at least 1 worker")
	}
	if cfg.Crashes > 0 && cfg.Horizon <= 0 {
		return nil, fmt.Errorf("faults: churn needs a positive horizon")
	}
	if cfg.ServerFraction < 0 || cfg.ServerFraction > 1 {
		return nil, fmt.Errorf("faults: ServerFraction outside [0,1]")
	}
	if cfg.ServerFraction > 0 && cfg.Servers < 1 {
		return nil, fmt.Errorf("faults: ServerFraction set with no servers")
	}
	rng := rand.New(rand.NewSource(seed ^ 0x6661756c74)) // "fault"
	p := &Plan{Seed: seed}
	for i := 0; i < cfg.Crashes; i++ {
		at := time.Duration(rng.Int63n(int64(cfg.Horizon)))
		ev := Event{Kind: KindCrashWorker, At: at, Node: rng.Intn(cfg.Workers)}
		if rng.Float64() < cfg.ServerFraction {
			ev.Kind = KindCrashServer
			ev.Node = rng.Intn(cfg.Servers)
		}
		if cfg.Downtime > 0 {
			half := int64(cfg.Downtime) / 2
			ev.RestartAfter = time.Duration(half + rng.Int63n(2*half))
		}
		p.Events = append(p.Events, ev)
	}
	if cfg.SchedulerCrashes > 0 && cfg.Horizon <= 0 {
		return nil, fmt.Errorf("faults: churn needs a positive horizon")
	}
	for i := 0; i < cfg.SchedulerCrashes; i++ {
		ev := Event{Kind: KindCrashScheduler, At: time.Duration(rng.Int63n(int64(cfg.Horizon)))}
		if cfg.Downtime > 0 {
			half := int64(cfg.Downtime) / 2
			ev.RestartAfter = time.Duration(half + rng.Int63n(2*half))
		}
		p.Events = append(p.Events, ev)
	}
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	return p, nil
}
