package faults

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"specsync/internal/metrics"
	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/wire"
)

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"empty", Plan{}, true},
		{"crash", Plan{Events: []Event{{Kind: KindCrashWorker, At: time.Second, Node: 0, RestartAfter: time.Second}}}, true},
		{"negative-at", Plan{Events: []Event{{Kind: KindCrashWorker, At: -1}}}, false},
		{"negative-node", Plan{Events: []Event{{Kind: KindCrashServer, Node: -1}}}, false},
		{"unknown-kind", Plan{Events: []Event{{Kind: "meteor"}}}, false},
		{"partition-one-sided", Plan{Events: []Event{{Kind: KindPartition, A: []string{"worker/0"}, Duration: time.Second}}}, false},
		{"partition", Plan{Events: []Event{{Kind: KindPartition, A: []string{"worker/0"}, B: []string{"server/0"}, Duration: time.Second}}}, true},
		{"drop-bad-rate", Plan{Events: []Event{{Kind: KindDrop, Rate: 1.5}}}, false},
		{"delay-no-delay", Plan{Events: []Event{{Kind: KindDelay, Rate: 0.5}}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if tc.ok && err != nil {
				t.Errorf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p := &Plan{
		Seed: 42,
		Events: []Event{
			{Kind: KindCrashWorker, At: 2 * time.Second, Node: 1, RestartAfter: 3 * time.Second},
			{Kind: KindCrashServer, At: 4 * time.Second, Node: 0, RestartAfter: time.Second},
			{Kind: KindPartition, At: time.Second, Duration: 500 * time.Millisecond,
				A: []string{"worker/0", "worker/1"}, B: []string{"scheduler"}},
			{Kind: KindDrop, At: 0, Duration: time.Minute, Rate: 0.1},
			{Kind: KindDelay, At: time.Second, Rate: 0.5, Delay: 20 * time.Millisecond},
		},
	}
	data, err := p.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, p)
	}
	if _, err := ParseJSON([]byte(`{"events":[{"kind":"meteor"}]}`)); err == nil {
		t.Error("ParseJSON accepted an invalid plan")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := ChurnConfig{
		Workers: 8, Servers: 4, Crashes: 10,
		Horizon: time.Minute, Downtime: 5 * time.Second, ServerFraction: 0.3,
	}
	a, err := Generate(7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different plans")
	}
	c, err := Generate(8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical plans")
	}
	if len(a.Events) != 10 {
		t.Errorf("generated %d events, want 10", len(a.Events))
	}
	for i, ev := range a.Events {
		if ev.At < 0 || ev.At >= cfg.Horizon {
			t.Errorf("event %d At %v outside horizon", i, ev.At)
		}
		if ev.RestartAfter <= 0 {
			t.Errorf("event %d has no restart (downtime set)", i)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("generated plan invalid: %v", err)
		}
	}
	if _, err := Generate(1, ChurnConfig{Workers: 0}); err == nil {
		t.Error("Generate accepted 0 workers")
	}
	if _, err := Generate(1, ChurnConfig{Workers: 2, Crashes: 1}); err == nil {
		t.Error("Generate accepted zero horizon with crashes")
	}
}

func TestFilterPartition(t *testing.T) {
	p := &Plan{Events: []Event{{
		Kind: KindPartition, At: time.Second, Duration: time.Second,
		A: []string{"worker/0"}, B: []string{"server/0", "scheduler"},
	}}}
	m := metrics.NewFaults(msg.IsControl)
	f := NewFilter(p, m)
	if f.Empty() {
		t.Fatal("filter with a partition reports Empty")
	}

	check := func(from, to node.ID, elapsed time.Duration, wantDrop bool) {
		t.Helper()
		a := f.Action(from, to, msg.KindNotify, elapsed)
		if a.Drop != wantDrop {
			t.Errorf("Action(%s->%s @%v).Drop = %v, want %v", from, to, elapsed, a.Drop, wantDrop)
		}
	}
	// Before the window: delivered.
	check("worker/0", "server/0", 500*time.Millisecond, false)
	// During: both directions dropped.
	check("worker/0", "server/0", 1500*time.Millisecond, true)
	check("scheduler", "worker/0", 1500*time.Millisecond, true)
	// Unrelated pair: delivered.
	check("worker/1", "server/0", 1500*time.Millisecond, false)
	// Same side: delivered.
	check("server/0", "scheduler", 1500*time.Millisecond, false)
	// After the window closes: delivered.
	check("worker/0", "scheduler", 2500*time.Millisecond, false)

	if st := m.Stats(); st.Drops != 2 {
		t.Errorf("drop counter = %d, want 2", st.Drops)
	}
}

func TestFilterRatesAndDeterminism(t *testing.T) {
	p := &Plan{Seed: 3, Events: []Event{
		{Kind: KindDrop, Rate: 0.5},
		{Kind: KindDelay, Rate: 0.5, Delay: 10 * time.Millisecond},
	}}
	run := func() []Action {
		f := NewFilter(p, nil)
		var out []Action
		for i := 0; i < 200; i++ {
			out = append(out, f.Action("worker/0", "server/0", msg.KindPushReq, time.Duration(i)*time.Millisecond))
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("same plan seed produced different fault sequences")
	}
	drops, delays := 0, 0
	for _, act := range a {
		if act.Drop {
			drops++
		}
		if act.Delay > 0 {
			delays++
		}
	}
	// Rate 0.5 over 200 trials: expect roughly half, generously bounded.
	if drops < 50 || drops > 150 {
		t.Errorf("drops = %d/200 at rate 0.5", drops)
	}
	if delays == 0 {
		t.Error("no delays at rate 0.5")
	}
}

// recordSender counts Sends per destination.
type recordSender struct {
	mu   sync.Mutex
	sent []node.ID
}

func (r *recordSender) Send(to node.ID, m wire.Message) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sent = append(r.sent, to)
	return nil
}

func (r *recordSender) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sent)
}

func TestFaultSender(t *testing.T) {
	drop := NewFilter(&Plan{Events: []Event{{Kind: KindDrop}}}, nil)
	dup := NewFilter(&Plan{Events: []Event{{Kind: KindDuplicate}}}, nil)
	delay := NewFilter(&Plan{Events: []Event{{Kind: KindDelay, Delay: 10 * time.Millisecond}}}, nil)

	inner := &recordSender{}
	if err := NewFaultSender(inner, "worker/0", drop).Send("server/0", &msg.Notify{}); err != nil {
		t.Fatal(err)
	}
	if inner.count() != 0 {
		t.Errorf("dropped send reached inner transport (%d)", inner.count())
	}

	inner = &recordSender{}
	if err := NewFaultSender(inner, "worker/0", dup).Send("server/0", &msg.Notify{}); err != nil {
		t.Fatal(err)
	}
	if inner.count() != 2 {
		t.Errorf("duplicated send reached inner %d times, want 2", inner.count())
	}

	inner = &recordSender{}
	start := time.Now()
	if err := NewFaultSender(inner, "worker/0", delay).Send("server/0", &msg.Notify{}); err != nil {
		t.Fatal(err)
	}
	if inner.count() != 0 {
		t.Error("delayed send was synchronous")
	}
	deadline := time.Now().Add(2 * time.Second)
	for inner.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if inner.count() != 1 {
		t.Fatalf("delayed send delivered %d times, want 1", inner.count())
	}
	if since := time.Since(start); since < 10*time.Millisecond {
		t.Errorf("delayed send arrived after %v, want >= 10ms", since)
	}
}
