package faults

import (
	"fmt"
	"time"

	"specsync/internal/core"
	"specsync/internal/des"
	"specsync/internal/metrics"
	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/ps"
	"specsync/internal/trace"
	"specsync/internal/wire"
)

// SimOptions wires a plan into one simulation.
type SimOptions struct {
	// Plan is the fault schedule. Required.
	Plan *Plan
	// NumWorkers / NumServers bound the plan's node indices.
	NumWorkers, NumServers int
	// Tracer, if non-nil, records crash/recover events.
	Tracer trace.Tracer
	// Faults, if non-nil, counts fault activity.
	Faults *metrics.Faults
	// NewWorker builds a fresh worker handler for a restart (same config,
	// blank state — the training state died with the old incarnation).
	// Required when the plan restarts a worker.
	NewWorker func(i int) (node.Handler, error)
	// NewServer builds a fresh parameter-server shard for a restart.
	// Required when the plan restarts a server.
	NewServer func(shard int) (*ps.Server, error)
	// NewScheduler builds a fresh scheduler incarnation for a restart; gen
	// is the incarnation number (1 for the first restart) and must reach the
	// new scheduler's config so its Init announces itself with a
	// SchedulerHello. Required when the plan restarts the scheduler.
	NewScheduler func(gen int64) (*core.Scheduler, error)
	// Server returns the shard's current server (for checkpointing).
	// Required when CheckpointEvery > 0.
	Server func(shard int) *ps.Server
	// Scheduler returns the current scheduler (for checkpointing); nil skips
	// scheduler checkpoints, in which case a restarted scheduler rebuilds
	// entirely from worker StateReports.
	Scheduler func() *core.Scheduler
	// OnWorkerRestart / OnServerRestart / OnSchedulerRestart let the harness
	// swap its references to the replaced node (result accounting reads
	// counters off them).
	OnWorkerRestart    func(i int, h node.Handler)
	OnServerRestart    func(shard int, srv *ps.Server)
	OnSchedulerRestart func(s *core.Scheduler)
	// CheckpointEvery snapshots every live server shard on this period;
	// restarts restore the most recent snapshot. Zero disables
	// checkpointing — restarted shards come back at their initial values.
	CheckpointEvery time.Duration

	// Replicas is the number of backup replicas per shard (R). When
	// positive, a crashed server recovers by promoting its next surviving
	// backup — after waiting for the in-flight replication stream to drain,
	// so no acknowledged push is lost — instead of restoring a checkpoint.
	// The checkpoint path remains the fallback once a shard's backups are
	// exhausted by repeated crashes.
	Replicas int
	// ReplicaServer returns the live backup server for (shard, r), r being
	// the 1-based replica slot. Required when Replicas > 0 and the plan
	// crashes a server (as is the Server accessor, which pins the version
	// the promotion must catch up to).
	ReplicaServer func(shard, r int) *ps.Server
	// OnPromote lets the harness swap its shard reference to the promoted
	// backup and record the failover (flight events, result accounting).
	// OnServerRestart also fires for promotions, with the promoted server.
	OnPromote func(shard int, srv *ps.Server)
	// Standbys is the number of standby scheduler incarnations. When
	// positive, a crashed scheduler is not restarted by the injector — the
	// standbys detect the silence and elect a successor on their own, so
	// the injector only counts the crash and ignores the event's
	// RestartAfter.
	Standbys int
}

// catchUpPoll is the virtual-time tick on which a promotion re-checks
// whether the backup has drained the dead primary's in-flight replication
// stream. Deterministic under the DES (plain virtual delay, no randomness).
const catchUpPoll = 2 * time.Millisecond

// SimInjector executes a plan against a des.Sim in virtual time.
type SimInjector struct {
	sim  *des.Sim
	opts SimOptions
	// snaps holds the latest in-memory checkpoint per shard; schedSnap is
	// the scheduler's, schedGen the incarnation counter.
	snaps     map[int]ps.Snapshot
	schedSnap *core.SchedulerSnapshot
	schedGen  int64
	// promoted counts backups already consumed per shard; crashVersion pins
	// each crashed shard's acknowledged version — the catch-up target for a
	// promotion and the loss baseline for a checkpoint restore.
	promoted     map[int]int
	crashVersion map[int]int64
	errs         []error
}

// AttachSim validates the plan against the cluster shape, installs the
// message-fault hook, and schedules every crash/restart and checkpoint tick.
// Call before running the simulation.
func AttachSim(sim *des.Sim, opts SimOptions) (*SimInjector, error) {
	if opts.Plan == nil {
		return nil, fmt.Errorf("faults: nil plan")
	}
	if err := opts.Plan.Validate(); err != nil {
		return nil, err
	}
	for i, ev := range opts.Plan.Events {
		switch ev.Kind {
		case KindCrashWorker:
			if ev.Node >= opts.NumWorkers {
				return nil, fmt.Errorf("faults: event %d: worker %d out of range (m=%d)", i, ev.Node, opts.NumWorkers)
			}
			if ev.RestartAfter > 0 && opts.NewWorker == nil {
				return nil, fmt.Errorf("faults: event %d restarts a worker but NewWorker is nil", i)
			}
		case KindCrashServer:
			if ev.Node >= opts.NumServers {
				return nil, fmt.Errorf("faults: event %d: server %d out of range (n=%d)", i, ev.Node, opts.NumServers)
			}
			if ev.RestartAfter > 0 && opts.NewServer == nil && opts.Replicas == 0 {
				return nil, fmt.Errorf("faults: event %d restarts a server but NewServer is nil", i)
			}
			if opts.Replicas > 0 && (opts.ReplicaServer == nil || opts.Server == nil) {
				return nil, fmt.Errorf("faults: event %d: Replicas=%d needs the ReplicaServer and Server accessors", i, opts.Replicas)
			}
		case KindCrashScheduler:
			if ev.RestartAfter > 0 && opts.NewScheduler == nil && opts.Standbys == 0 {
				return nil, fmt.Errorf("faults: event %d restarts the scheduler but NewScheduler is nil", i)
			}
		}
	}
	if opts.CheckpointEvery > 0 && opts.Server == nil {
		return nil, fmt.Errorf("faults: CheckpointEvery set but Server accessor is nil")
	}

	inj := &SimInjector{
		sim: sim, opts: opts,
		snaps:        make(map[int]ps.Snapshot),
		promoted:     make(map[int]int),
		crashVersion: make(map[int]int64),
	}

	filter := NewFilter(opts.Plan, opts.Faults)
	if !filter.Empty() {
		start := sim.Now()
		sim.SetFault(func(from, to node.ID, kind wire.Kind, at time.Time) des.FaultAction {
			a := filter.Action(from, to, kind, at.Sub(start))
			return des.FaultAction{Drop: a.Drop, Duplicate: a.Duplicate, Delay: a.Delay}
		})
	}

	for _, ev := range opts.Plan.Crashes() {
		ev := ev
		sim.Schedule(ev.At, func() { inj.crash(ev) })
	}
	if opts.CheckpointEvery > 0 {
		inj.armCheckpoint()
	}
	return inj, nil
}

func (inj *SimInjector) crash(ev Event) {
	var id node.ID
	traceWorker := ev.Node
	switch ev.Kind {
	case KindCrashWorker:
		id = node.WorkerID(ev.Node)
	case KindCrashScheduler:
		id = node.Scheduler
		traceWorker = trace.SchedulerNode
	default:
		id = node.ServerID(ev.Node)
		traceWorker = -(ev.Node + 1)
	}
	if inj.sim.Down(id) {
		// Overlapping crash events on one node (easy to generate for the
		// single scheduler): the earlier crash already holds it down, so
		// this one — and its restart — is a no-op.
		return
	}
	if ev.Kind == KindCrashServer && inj.opts.Server != nil {
		// Pin the acknowledged version at the instant of death: a promotion
		// must not serve until its backup has applied this much, and a
		// checkpoint restore that comes back below it lost pushes.
		if srv := inj.opts.Server(ev.Node); srv != nil {
			inj.crashVersion[ev.Node] = srv.Version()
		}
	}
	if err := inj.sim.Crash(id); err != nil {
		inj.errs = append(inj.errs, err)
		return
	}
	if ev.Kind == KindCrashScheduler {
		inj.opts.Faults.RecordSchedulerCrash()
	} else {
		inj.opts.Faults.RecordCrash()
	}
	if inj.opts.Tracer != nil {
		inj.opts.Tracer.Record(trace.Event{At: inj.sim.Now(), Worker: traceWorker, Kind: trace.KindCrash})
	}
	if ev.Kind == KindCrashScheduler && inj.opts.Standbys > 0 {
		// The standbys' election timers take it from here; injecting a
		// restarted incarnation at the old node ID would fork the control
		// plane into two live schedulers.
		return
	}
	if ev.RestartAfter > 0 {
		inj.sim.Schedule(ev.RestartAfter, func() { inj.restart(ev, id, traceWorker) })
	}
}

func (inj *SimInjector) restart(ev Event, id node.ID, traceWorker int) {
	if ev.Kind == KindCrashScheduler {
		inj.restartScheduler()
		return
	}
	var h node.Handler
	restored := int64(0)
	if ev.Kind == KindCrashWorker {
		wk, err := inj.opts.NewWorker(ev.Node)
		if err != nil {
			inj.errs = append(inj.errs, err)
			return
		}
		h = wk
	} else {
		if inj.opts.Replicas > 0 && inj.promoted[ev.Node] < inj.opts.Replicas {
			// A surviving backup holds every acknowledged push; promote it
			// instead of rolling back to a checkpoint.
			inj.promoteReplica(ev.Node, id, traceWorker)
			return
		}
		if inj.opts.NewServer == nil {
			inj.errs = append(inj.errs, fmt.Errorf("faults: shard %d exhausted its backups and NewServer is nil", ev.Node))
			return
		}
		srv, err := inj.opts.NewServer(ev.Node)
		if err != nil {
			inj.errs = append(inj.errs, err)
			return
		}
		if snap, ok := inj.snaps[ev.Node]; ok {
			if err := srv.Restore(snap); err != nil {
				inj.errs = append(inj.errs, err)
				return
			}
			inj.opts.Faults.RecordRestore()
			restored = snap.Version
		}
		// Everything applied after the last checkpoint died with the node.
		if cv := inj.crashVersion[ev.Node]; cv > restored {
			inj.opts.Faults.RecordLostPushes(cv - restored)
		}
		h = srv
		if inj.opts.OnServerRestart != nil {
			inj.opts.OnServerRestart(ev.Node, srv)
		}
	}
	if err := inj.sim.Restart(id, h); err != nil {
		inj.errs = append(inj.errs, err)
		return
	}
	inj.opts.Faults.RecordRestart()
	if inj.opts.Tracer != nil {
		inj.opts.Tracer.Record(trace.Event{At: inj.sim.Now(), Worker: traceWorker, Kind: trace.KindRecover, Value: restored})
	}
	if ev.Kind == KindCrashWorker {
		if inj.opts.OnWorkerRestart != nil {
			inj.opts.OnWorkerRestart(ev.Node, h)
		}
		// The scheduler only starts workers at Init; a restarted worker
		// needs its Start re-issued to re-enter the training loop.
		if err := inj.sim.Inject(node.Scheduler, id, &msg.Start{}); err != nil {
			inj.errs = append(inj.errs, err)
		}
	}
}

// promoteReplica recovers a crashed shard from its next surviving backup.
// The backup may still be draining ReplApply messages the dead primary sent
// before crashing (in-flight sends deliver; that is the zero-loss basis), so
// promotion first waits until the backup's version reaches the version the
// primary had acknowledged, then installs the backup at the shard's node ID —
// workers keep routing to "server/i" and never learn a failover happened.
func (inj *SimInjector) promoteReplica(shard int, id node.ID, traceWorker int) {
	r := inj.promoted[shard] + 1
	backup := inj.opts.ReplicaServer(shard, r)
	if backup == nil {
		inj.errs = append(inj.errs, fmt.Errorf("faults: shard %d has no replica %d to promote", shard, r))
		return
	}
	target := inj.crashVersion[shard]
	var await func()
	await = func() {
		if backup.Version() < target {
			inj.sim.Schedule(catchUpPoll, await)
			return
		}
		inj.finishPromotion(shard, r, id, traceWorker, backup)
	}
	await()
}

// finishPromotion performs the switch once the backup has caught up: detach
// the backup handler from its replica node ID (one handler must not serve two
// live IDs), point it at the backups that remain, and restart the shard's
// well-known ID with it.
func (inj *SimInjector) finishPromotion(shard, r int, id node.ID, traceWorker int, backup *ps.Server) {
	if err := inj.sim.Crash(node.ReplicaID(shard, r)); err != nil {
		inj.errs = append(inj.errs, err)
		return
	}
	remaining := make([]node.ID, 0, inj.opts.Replicas-r)
	for i := r + 1; i <= inj.opts.Replicas; i++ {
		remaining = append(remaining, node.ReplicaID(shard, i))
	}
	backup.Promote(remaining)
	if err := inj.sim.Restart(id, backup); err != nil {
		inj.errs = append(inj.errs, err)
		return
	}
	inj.promoted[shard] = r
	inj.opts.Faults.RecordRestart()
	inj.opts.Faults.RecordPromotion()
	if inj.opts.Tracer != nil {
		inj.opts.Tracer.Record(trace.Event{At: inj.sim.Now(), Worker: traceWorker, Kind: trace.KindRecover, Value: backup.Version()})
	}
	if inj.opts.OnServerRestart != nil {
		inj.opts.OnServerRestart(shard, backup)
	}
	if inj.opts.OnPromote != nil {
		inj.opts.OnPromote(shard, backup)
	}
}

// restartScheduler brings up the next scheduler incarnation: restore the
// latest checkpoint when one exists, then let the new incarnation's Init
// broadcast SchedulerHello — the StateReport replies rebuild whatever the
// checkpoint missed (or everything, on a cold start). No Start re-injection:
// a generation > 0 scheduler never re-Starts workers.
func (inj *SimInjector) restartScheduler() {
	inj.schedGen++
	sched, err := inj.opts.NewScheduler(inj.schedGen)
	if err != nil {
		inj.errs = append(inj.errs, err)
		return
	}
	if inj.schedSnap != nil {
		if err := sched.Restore(*inj.schedSnap); err != nil {
			inj.errs = append(inj.errs, err)
			return
		}
		inj.opts.Faults.RecordSchedulerRestore()
	}
	if err := inj.sim.Restart(node.Scheduler, sched); err != nil {
		inj.errs = append(inj.errs, err)
		return
	}
	// The scheduler's Init records the recover trace and obs span itself
	// (it knows its generation); the injector only counts the restart.
	inj.opts.Faults.RecordSchedulerRestart()
	if inj.opts.OnSchedulerRestart != nil {
		inj.opts.OnSchedulerRestart(sched)
	}
}

// armCheckpoint snapshots every live shard on the period. Snapshots are
// in-memory (the simulated analogue of writing to durable storage).
func (inj *SimInjector) armCheckpoint() {
	inj.sim.Schedule(inj.opts.CheckpointEvery, func() {
		for shard := 0; shard < inj.opts.NumServers; shard++ {
			if inj.sim.Down(node.ServerID(shard)) {
				continue
			}
			if srv := inj.opts.Server(shard); srv != nil {
				inj.snaps[shard] = srv.Snapshot()
				inj.opts.Faults.RecordCheckpoint()
			}
		}
		if inj.opts.Scheduler != nil && !inj.sim.Down(node.Scheduler) {
			if s := inj.opts.Scheduler(); s != nil {
				snap := s.Snapshot()
				inj.schedSnap = &snap
				inj.opts.Faults.RecordCheckpoint()
			}
		}
		inj.armCheckpoint()
	})
}

// Errs returns runtime errors the injector hit while executing the plan
// (mis-scheduled crashes, failed restores). Empty on a clean run.
func (inj *SimInjector) Errs() []error { return inj.errs }
