package faults

import (
	"time"

	"specsync/internal/node"
	"specsync/internal/wire"
)

// Sender is the outbound half of a transport (satisfied by *transport.TCP).
type Sender interface {
	Send(to node.ID, m wire.Message) error
}

// FaultSender decorates a Sender with a plan's message faults, for
// multi-process deployments where each node owns its own transport: drops
// swallow the message, duplicates send twice, delays defer the write to a
// timer goroutine. Safe for concurrent use if the inner Sender is.
type FaultSender struct {
	inner  Sender
	self   node.ID
	filter *Filter
	start  time.Time
}

// NewFaultSender wraps inner. The filter is shared state: build one per
// process from the same plan so every node draws from its own stream, or
// share one across in-process nodes.
func NewFaultSender(inner Sender, self node.ID, filter *Filter) *FaultSender {
	return &FaultSender{inner: inner, self: self, filter: filter, start: time.Now()}
}

// Send implements Sender with fault decoration. Delayed sends return nil
// immediately; a delayed write's error is unobservable, matching the
// fire-and-forget semantics of node.Context.Send.
func (s *FaultSender) Send(to node.ID, m wire.Message) error {
	act := s.filter.Action(s.self, to, m.Kind(), time.Since(s.start))
	if act.Drop {
		return nil
	}
	copies := 1
	if act.Duplicate {
		copies = 2
	}
	if act.Delay > 0 {
		for c := 0; c < copies; c++ {
			time.AfterFunc(act.Delay, func() { _ = s.inner.Send(to, m) })
		}
		return nil
	}
	var err error
	for c := 0; c < copies; c++ {
		if e := s.inner.Send(to, m); e != nil {
			err = e
		}
	}
	return err
}
