package faults

import (
	"fmt"
	"sync"
	"time"

	"specsync/internal/core"
	"specsync/internal/live"
	"specsync/internal/metrics"
	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/ps"
	"specsync/internal/trace"
	"specsync/internal/wire"
)

// LiveOptions wires a plan into a live (goroutine-per-node) network.
type LiveOptions struct {
	// Plan is the fault schedule. Required.
	Plan *Plan
	// NumWorkers / NumServers bound the plan's node indices.
	NumWorkers, NumServers int
	// Tracer, if non-nil, records crash/recover events.
	Tracer trace.Tracer
	// Faults, if non-nil, counts fault activity.
	Faults *metrics.Faults
	// NewWorker / NewServer / NewScheduler build fresh handlers for restarts
	// (required when the plan restarts the respective node type). The gen
	// passed to NewScheduler is the incarnation number (1 for the first
	// restart) and must reach the new scheduler's config.
	NewWorker    func(i int) (node.Handler, error)
	NewServer    func(shard int) (*ps.Server, error)
	NewScheduler func(gen int64) (*core.Scheduler, error)
	// OnWorkerRestart / OnServerRestart / OnSchedulerRestart let the harness
	// swap references.
	OnWorkerRestart    func(i int, h node.Handler)
	OnServerRestart    func(shard int, srv *ps.Server)
	OnSchedulerRestart func(s *core.Scheduler)
	// Checkpoint, if non-nil, returns the snapshot to restore into a
	// restarted shard (e.g. read from the checkpoint directory); returning
	// ok=false restarts the shard blank.
	Checkpoint func(shard int) (ps.Snapshot, bool)
	// SchedulerCheckpoint, if non-nil, returns the snapshot to restore into
	// a restarted scheduler; ok=false restarts it cold (state rebuilds from
	// worker StateReports alone).
	SchedulerCheckpoint func() (core.SchedulerSnapshot, bool)

	// Replicas / ReplicaServer / Server / OnPromote / Standbys mirror
	// SimOptions: with Replicas > 0 a crashed shard recovers by promoting
	// its next surviving backup once it has drained the dead primary's
	// replication stream (Server pins the catch-up target at crash time),
	// and with Standbys > 0 a crashed scheduler is left to the standby
	// election instead of being restarted here.
	Replicas      int
	ReplicaServer func(shard, r int) *ps.Server
	Server        func(shard int) *ps.Server
	OnPromote     func(shard int, srv *ps.Server)
	Standbys      int
}

// LiveInjector executes a plan against a live.Network in wall-clock time.
// Build it first, pass Hook into NetworkConfig.Fault, then call Start once
// the network is running.
type LiveInjector struct {
	opts   LiveOptions
	filter *Filter

	mu           sync.Mutex
	net          *live.Network
	start        time.Time
	timers       []*time.Timer
	schedGen     int64
	promoted     map[int]int
	crashVersion map[int]int64
	errs         []error
	stopped      bool
}

// NewLive validates the plan and builds the injector.
func NewLive(opts LiveOptions) (*LiveInjector, error) {
	if opts.Plan == nil {
		return nil, fmt.Errorf("faults: nil plan")
	}
	if err := opts.Plan.Validate(); err != nil {
		return nil, err
	}
	for i, ev := range opts.Plan.Events {
		switch ev.Kind {
		case KindCrashWorker:
			if ev.Node >= opts.NumWorkers {
				return nil, fmt.Errorf("faults: event %d: worker %d out of range (m=%d)", i, ev.Node, opts.NumWorkers)
			}
			if ev.RestartAfter > 0 && opts.NewWorker == nil {
				return nil, fmt.Errorf("faults: event %d restarts a worker but NewWorker is nil", i)
			}
		case KindCrashServer:
			if ev.Node >= opts.NumServers {
				return nil, fmt.Errorf("faults: event %d: server %d out of range (n=%d)", i, ev.Node, opts.NumServers)
			}
			if ev.RestartAfter > 0 && opts.NewServer == nil && opts.Replicas == 0 {
				return nil, fmt.Errorf("faults: event %d restarts a server but NewServer is nil", i)
			}
			if opts.Replicas > 0 && (opts.ReplicaServer == nil || opts.Server == nil) {
				return nil, fmt.Errorf("faults: event %d: Replicas=%d needs the ReplicaServer and Server accessors", i, opts.Replicas)
			}
		case KindCrashScheduler:
			if ev.RestartAfter > 0 && opts.NewScheduler == nil && opts.Standbys == 0 {
				return nil, fmt.Errorf("faults: event %d restarts the scheduler but NewScheduler is nil", i)
			}
		}
	}
	return &LiveInjector{
		opts: opts, filter: NewFilter(opts.Plan, opts.Faults),
		promoted:     make(map[int]int),
		crashVersion: make(map[int]int64),
	}, nil
}

// Hook adapts the plan's message faults to live.NetworkConfig.Fault. It is
// safe to install before Start; until Start it treats elapsed time as zero.
func (l *LiveInjector) Hook() live.FaultHook {
	if l.filter.Empty() {
		return nil
	}
	return func(from, to node.ID, kind wire.Kind) live.FaultAction {
		l.mu.Lock()
		start := l.start
		l.mu.Unlock()
		var elapsed time.Duration
		if !start.IsZero() {
			elapsed = time.Since(start)
		}
		a := l.filter.Action(from, to, kind, elapsed)
		return live.FaultAction{Drop: a.Drop, Duplicate: a.Duplicate, Delay: a.Delay}
	}
}

// Start arms the plan's crash/restart timers against net. Call after
// net.Start.
func (l *LiveInjector) Start(net *live.Network) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.net = net
	l.start = time.Now()
	for _, ev := range l.opts.Plan.Crashes() {
		ev := ev
		l.timers = append(l.timers, time.AfterFunc(ev.At, func() { l.crash(ev) }))
	}
}

// Stop cancels pending fault timers (already-fired crashes stay crashed).
func (l *LiveInjector) Stop() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stopped = true
	for _, t := range l.timers {
		t.Stop()
	}
	l.timers = nil
}

func (l *LiveInjector) crash(ev Event) {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return
	}
	net := l.net
	l.mu.Unlock()

	var id node.ID
	traceWorker := ev.Node
	switch ev.Kind {
	case KindCrashWorker:
		id = node.WorkerID(ev.Node)
	case KindCrashScheduler:
		id = node.Scheduler
		traceWorker = trace.SchedulerNode
	default:
		id = node.ServerID(ev.Node)
		traceWorker = -(ev.Node + 1)
	}
	if net.Down(id) {
		// Overlapping crash events on one node: the earlier crash already
		// holds it down, so this one — and its restart — is a no-op.
		return
	}
	if ev.Kind == KindCrashServer && l.opts.Server != nil {
		if srv := l.opts.Server(ev.Node); srv != nil {
			l.mu.Lock()
			l.crashVersion[ev.Node] = srv.Version()
			l.mu.Unlock()
		}
	}
	if err := net.Crash(id); err != nil {
		l.fail(err)
		return
	}
	if ev.Kind == KindCrashScheduler {
		l.opts.Faults.RecordSchedulerCrash()
	} else {
		l.opts.Faults.RecordCrash()
	}
	if l.opts.Tracer != nil {
		l.opts.Tracer.Record(trace.Event{At: time.Now(), Worker: traceWorker, Kind: trace.KindCrash})
	}
	if ev.Kind == KindCrashScheduler && l.opts.Standbys > 0 {
		// The standby election replaces the scheduler; restarting one here
		// would fork the control plane into two live incarnations.
		return
	}
	if ev.RestartAfter > 0 {
		l.mu.Lock()
		if !l.stopped {
			l.timers = append(l.timers, time.AfterFunc(ev.RestartAfter, func() { l.restart(ev, id, traceWorker) }))
		}
		l.mu.Unlock()
	}
}

func (l *LiveInjector) restart(ev Event, id node.ID, traceWorker int) {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return
	}
	net := l.net
	l.mu.Unlock()

	if ev.Kind == KindCrashScheduler {
		l.restartScheduler(net)
		return
	}
	var h node.Handler
	restored := int64(0)
	if ev.Kind == KindCrashWorker {
		wk, err := l.opts.NewWorker(ev.Node)
		if err != nil {
			l.fail(err)
			return
		}
		h = wk
	} else {
		l.mu.Lock()
		promote := l.opts.Replicas > 0 && l.promoted[ev.Node] < l.opts.Replicas
		l.mu.Unlock()
		if promote {
			l.promoteReplica(net, ev.Node, id, traceWorker)
			return
		}
		if l.opts.NewServer == nil {
			l.fail(fmt.Errorf("faults: shard %d exhausted its backups and NewServer is nil", ev.Node))
			return
		}
		srv, err := l.opts.NewServer(ev.Node)
		if err != nil {
			l.fail(err)
			return
		}
		if l.opts.Checkpoint != nil {
			if snap, ok := l.opts.Checkpoint(ev.Node); ok {
				if err := srv.Restore(snap); err != nil {
					l.fail(err)
					return
				}
				l.opts.Faults.RecordRestore()
				restored = snap.Version
			}
		}
		l.mu.Lock()
		cv := l.crashVersion[ev.Node]
		l.mu.Unlock()
		if cv > restored {
			l.opts.Faults.RecordLostPushes(cv - restored)
		}
		h = srv
		if l.opts.OnServerRestart != nil {
			l.opts.OnServerRestart(ev.Node, srv)
		}
	}
	if err := net.Restart(id, h); err != nil {
		l.fail(err)
		return
	}
	l.opts.Faults.RecordRestart()
	if l.opts.Tracer != nil {
		l.opts.Tracer.Record(trace.Event{At: time.Now(), Worker: traceWorker, Kind: trace.KindRecover, Value: restored})
	}
	if ev.Kind == KindCrashWorker {
		if l.opts.OnWorkerRestart != nil {
			l.opts.OnWorkerRestart(ev.Node, h)
		}
		if err := net.Inject(node.Scheduler, id, &msg.Start{}); err != nil {
			l.fail(err)
		}
	}
}

// promoteReplica mirrors the sim injector's zero-loss shard failover in wall
// time: wait (on the catchUpPoll tick) until the next surviving backup has
// applied everything the dead primary acknowledged, then detach it from its
// replica ID and install it at the shard's well-known node ID.
func (l *LiveInjector) promoteReplica(net *live.Network, shard int, id node.ID, traceWorker int) {
	l.mu.Lock()
	r := l.promoted[shard] + 1
	target := l.crashVersion[shard]
	l.mu.Unlock()
	backup := l.opts.ReplicaServer(shard, r)
	if backup == nil {
		l.fail(fmt.Errorf("faults: shard %d has no replica %d to promote", shard, r))
		return
	}
	var await func()
	await = func() {
		l.mu.Lock()
		stopped := l.stopped
		l.mu.Unlock()
		if stopped {
			return
		}
		if backup.Version() < target {
			l.mu.Lock()
			if !l.stopped {
				l.timers = append(l.timers, time.AfterFunc(catchUpPoll, await))
			}
			l.mu.Unlock()
			return
		}
		l.finishPromotion(net, shard, r, id, traceWorker, backup)
	}
	await()
}

func (l *LiveInjector) finishPromotion(net *live.Network, shard, r int, id node.ID, traceWorker int, backup *ps.Server) {
	if err := net.Crash(node.ReplicaID(shard, r)); err != nil {
		l.fail(err)
		return
	}
	// The crash only marks the node down; a callback may still be running on
	// its loop. Drain it before taking over the handler's state.
	if err := net.Quiesce(node.ReplicaID(shard, r)); err != nil {
		l.fail(err)
		return
	}
	remaining := make([]node.ID, 0, l.opts.Replicas-r)
	for i := r + 1; i <= l.opts.Replicas; i++ {
		remaining = append(remaining, node.ReplicaID(shard, i))
	}
	backup.Promote(remaining)
	if err := net.Restart(id, backup); err != nil {
		l.fail(err)
		return
	}
	l.mu.Lock()
	l.promoted[shard] = r
	l.mu.Unlock()
	l.opts.Faults.RecordRestart()
	l.opts.Faults.RecordPromotion()
	if l.opts.Tracer != nil {
		l.opts.Tracer.Record(trace.Event{At: time.Now(), Worker: traceWorker, Kind: trace.KindRecover, Value: backup.Version()})
	}
	if l.opts.OnServerRestart != nil {
		l.opts.OnServerRestart(shard, backup)
	}
	if l.opts.OnPromote != nil {
		l.opts.OnPromote(shard, backup)
	}
}

// restartScheduler mirrors the sim injector: restore the latest durable
// checkpoint when one exists, then let the new incarnation's Init broadcast
// SchedulerHello so worker StateReports rebuild the rest. The new scheduler's
// Init records its own recover trace.
func (l *LiveInjector) restartScheduler(net *live.Network) {
	l.mu.Lock()
	l.schedGen++
	gen := l.schedGen
	l.mu.Unlock()

	sched, err := l.opts.NewScheduler(gen)
	if err != nil {
		l.fail(err)
		return
	}
	if l.opts.SchedulerCheckpoint != nil {
		if snap, ok := l.opts.SchedulerCheckpoint(); ok {
			if err := sched.Restore(snap); err != nil {
				l.fail(err)
				return
			}
			l.opts.Faults.RecordSchedulerRestore()
		}
	}
	if err := net.Restart(node.Scheduler, sched); err != nil {
		l.fail(err)
		return
	}
	l.opts.Faults.RecordSchedulerRestart()
	if l.opts.OnSchedulerRestart != nil {
		l.opts.OnSchedulerRestart(sched)
	}
}

func (l *LiveInjector) fail(err error) {
	l.mu.Lock()
	l.errs = append(l.errs, err)
	l.mu.Unlock()
}

// Errs returns runtime errors hit while executing the plan.
func (l *LiveInjector) Errs() []error {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]error, len(l.errs))
	copy(out, l.errs)
	return out
}
