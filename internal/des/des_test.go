package des

import (
	"fmt"
	"testing"
	"time"

	"specsync/internal/node"
	"specsync/internal/wire"
)

const pingKind wire.Kind = 100

type ping struct {
	Seq     int
	Payload []byte
}

func (p *ping) Kind() wire.Kind { return pingKind }
func (p *ping) Encode(w *wire.Writer) {
	w.Int(p.Seq)
	w.Bytes2(p.Payload)
}
func (p *ping) Decode(r *wire.Reader) {
	p.Seq = r.Int()
	p.Payload = r.Bytes()
}

func reg() *wire.Registry {
	return wire.NewRegistry([]wire.RegistryEntry{
		{Kind: pingKind, Name: "ping", New: func() wire.Message { return &ping{} }},
	})
}

// echoNode replies to every ping and records what it saw with timestamps.
type echoNode struct {
	ctx   node.Context
	seen  []string
	reply bool
}

func (e *echoNode) Init(ctx node.Context) { e.ctx = ctx }
func (e *echoNode) Receive(from node.ID, m wire.Message) {
	p := m.(*ping)
	e.seen = append(e.seen, fmt.Sprintf("%s:%d@%d", from, p.Seq, e.ctx.Now().UnixNano()))
	if e.reply {
		e.ctx.Send(from, &ping{Seq: p.Seq + 1000})
	}
}

func newSim(t *testing.T, cfg Config) *Sim {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = reg()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMessageDeliveryWithLatency(t *testing.T) {
	s := newSim(t, Config{Seed: 1, Net: NetModel{Latency: 5 * time.Millisecond}})
	a, b := &echoNode{}, &echoNode{reply: true}
	if err := s.AddNode("worker/0", a); err != nil {
		t.Fatal(err)
	}
	if err := s.AddNode("worker/1", b); err != nil {
		t.Fatal(err)
	}
	s.Init()

	start := s.Now()
	s.nodes["worker/0"].Send("worker/1", &ping{Seq: 1})
	s.RunUntilIdle(time.Second)

	if len(b.seen) != 1 || len(a.seen) != 1 {
		t.Fatalf("seen: a=%v b=%v", a.seen, b.seen)
	}
	// Round trip should have consumed exactly 2x latency.
	if got := s.Now().Sub(start); got != 10*time.Millisecond {
		t.Errorf("round trip took %v, want 10ms", got)
	}
}

func TestBandwidthSerializesLink(t *testing.T) {
	// Two 1000-byte-ish messages over a 1000 B/s link must arrive ~1s apart.
	s := newSim(t, Config{Seed: 1, Net: NetModel{BytesPerSec: 1000}})
	recv := &echoNode{}
	if err := s.AddNode("server/0", recv); err != nil {
		t.Fatal(err)
	}
	send := &echoNode{}
	if err := s.AddNode("worker/0", send); err != nil {
		t.Fatal(err)
	}
	s.Init()

	payload := make([]byte, 995)
	s.nodes["worker/0"].Send("server/0", &ping{Seq: 1, Payload: payload})
	s.nodes["worker/0"].Send("server/0", &ping{Seq: 2, Payload: payload})
	s.RunUntilIdle(time.Minute)

	if len(recv.seen) != 2 {
		t.Fatalf("seen %d messages", len(recv.seen))
	}
	// Second arrival must be at roughly double the first (serialized link).
	elapsed := s.Elapsed()
	if elapsed < 1900*time.Millisecond || elapsed > 2200*time.Millisecond {
		t.Errorf("final arrival at %v, want ~2s", elapsed)
	}
}

func TestIndependentLinksDoNotSerialize(t *testing.T) {
	s := newSim(t, Config{Seed: 1, Net: NetModel{BytesPerSec: 1000}})
	recv := &echoNode{}
	if err := s.AddNode("server/0", recv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := s.AddNode(node.WorkerID(i), &echoNode{}); err != nil {
			t.Fatal(err)
		}
	}
	s.Init()
	payload := make([]byte, 995)
	s.nodes["worker/0"].Send("server/0", &ping{Seq: 1, Payload: payload})
	s.nodes["worker/1"].Send("server/0", &ping{Seq: 2, Payload: payload})
	s.RunUntilIdle(time.Minute)
	// Different source links: both messages take ~1s in parallel.
	if e := s.Elapsed(); e > 1200*time.Millisecond {
		t.Errorf("parallel links took %v, want ~1s", e)
	}
}

func TestTimerOrderingAndCancel(t *testing.T) {
	s := newSim(t, Config{Seed: 1})
	n := &echoNode{}
	if err := s.AddNode("worker/0", n); err != nil {
		t.Fatal(err)
	}
	s.Init()
	ctx := s.nodes["worker/0"]

	var fired []int
	ctx.After(30*time.Millisecond, func() { fired = append(fired, 3) })
	ctx.After(10*time.Millisecond, func() { fired = append(fired, 1) })
	cancel := ctx.After(20*time.Millisecond, func() { fired = append(fired, 2) })
	cancel()
	cancel() // double-cancel must be safe
	s.RunUntilIdle(time.Second)

	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Errorf("fired = %v, want [1 3]", fired)
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	s := newSim(t, Config{Seed: 1})
	if err := s.AddNode("worker/0", &echoNode{}); err != nil {
		t.Fatal(err)
	}
	s.Init()
	ctx := s.nodes["worker/0"]
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		ctx.After(5*time.Millisecond, func() { order = append(order, i) })
	}
	s.RunUntilIdle(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of order: %v", order)
		}
	}
}

func TestRunForAdvancesTimeWhenIdle(t *testing.T) {
	s := newSim(t, Config{Seed: 1})
	s.Init()
	s.RunFor(7 * time.Second)
	if s.Elapsed() != 7*time.Second {
		t.Errorf("Elapsed = %v", s.Elapsed())
	}
}

func TestUnknownDestinationDropped(t *testing.T) {
	s := newSim(t, Config{Seed: 1})
	n := &echoNode{}
	if err := s.AddNode("worker/0", n); err != nil {
		t.Fatal(err)
	}
	s.Init()
	s.nodes["worker/0"].Send("worker/99", &ping{Seq: 1})
	s.RunUntilIdle(time.Second) // must not panic
	if s.Delivered() != 0 {
		t.Errorf("Delivered = %d", s.Delivered())
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := newSim(t, Config{Seed: 1})
	if err := s.AddNode("worker/0", &echoNode{}); err != nil {
		t.Fatal(err)
	}
	s.Init()
	ctx := s.nodes["worker/0"]
	count := 0
	var tick func()
	tick = func() {
		count++
		if count == 5 {
			s.Stop()
		}
		ctx.After(time.Millisecond, tick)
	}
	ctx.After(time.Millisecond, tick)
	if got := s.RunUntilIdle(time.Minute); got != "stopped" {
		t.Errorf("RunUntilIdle = %q", got)
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
}

type transferLog struct {
	lines []string
}

func (tl *transferLog) RecordTransfer(from, to node.ID, kind wire.Kind, bytes int, at time.Time) {
	tl.lines = append(tl.lines, fmt.Sprintf("%s->%s k%d %dB @%d", from, to, kind, bytes, at.UnixNano()))
}

// TestDeterminism runs an identical multi-node ping storm twice and demands
// identical transfer logs and node observations.
func TestDeterminism(t *testing.T) {
	run := func() ([]string, []string) {
		tl := &transferLog{}
		s := newSim(t, Config{
			Seed:     42,
			Net:      NetModel{Latency: time.Millisecond, Jitter: 3 * time.Millisecond, BytesPerSec: 1e6},
			Transfer: tl,
		})
		nodes := make([]*echoNode, 4)
		for i := range nodes {
			nodes[i] = &echoNode{}
			if err := s.AddNode(node.WorkerID(i), nodes[i]); err != nil {
				t.Fatal(err)
			}
		}
		s.Init()
		// Each node fires pings to every other node on a random-jittered
		// timer chain driven by its own deterministic RNG.
		for i := range nodes {
			i := i
			ctx := s.nodes[node.WorkerID(i)]
			var loop func()
			n := 0
			loop = func() {
				if n >= 10 {
					return
				}
				n++
				to := node.WorkerID(ctx.Rand().Intn(4))
				ctx.Send(to, &ping{Seq: n, Payload: make([]byte, ctx.Rand().Intn(100))})
				ctx.After(time.Duration(ctx.Rand().Intn(5000))*time.Microsecond, loop)
			}
			ctx.After(0, loop)
		}
		s.RunUntilIdle(time.Minute)
		var seen []string
		for _, n := range nodes {
			seen = append(seen, n.seen...)
		}
		return tl.lines, seen
	}
	l1, s1 := run()
	l2, s2 := run()
	if len(l1) == 0 {
		t.Fatal("no transfers recorded")
	}
	if fmt.Sprint(l1) != fmt.Sprint(l2) {
		t.Error("transfer logs differ across identical runs")
	}
	if fmt.Sprint(s1) != fmt.Sprint(s2) {
		t.Error("node observations differ across identical runs")
	}
}

func TestAddNodeValidation(t *testing.T) {
	s := newSim(t, Config{Seed: 1})
	if err := s.AddNode("worker/0", &echoNode{}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddNode("worker/0", &echoNode{}); err == nil {
		t.Error("expected duplicate error")
	}
	if err := s.AddNode("worker/1", nil); err == nil {
		t.Error("expected nil handler error")
	}
	s.Init()
	if err := s.AddNode("worker/2", &echoNode{}); err == nil {
		t.Error("expected post-Init error")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("expected registry-required error")
	}
	if _, err := New(Config{Registry: reg(), Net: NetModel{Latency: -1}}); err == nil {
		t.Error("expected negative-latency error")
	}
}

func TestScheduleCancel(t *testing.T) {
	s := newSim(t, Config{Seed: 1})
	s.Init()
	fired := false
	cancel := s.Schedule(time.Millisecond, func() { fired = true })
	cancel()
	s.RunUntilIdle(time.Second)
	if fired {
		t.Error("canceled schedule fired")
	}
}

func TestNodeHandlerAccessor(t *testing.T) {
	s := newSim(t, Config{Seed: 1})
	n := &echoNode{}
	if err := s.AddNode("worker/0", n); err != nil {
		t.Fatal(err)
	}
	if got := s.NodeHandler("worker/0"); got != n {
		t.Error("NodeHandler returned wrong handler")
	}
	if got := s.NodeHandler("worker/9"); got != nil {
		t.Error("NodeHandler for unknown id should be nil")
	}
}
