package des

import (
	"testing"
	"time"

	"specsync/internal/node"
	"specsync/internal/wire"
)

// tickNode schedules a repeating timer and counts fires; crash must silence
// it, restart must not resurrect the old incarnation's timer.
type tickNode struct {
	ctx   node.Context
	fires int
	inits int
}

func (n *tickNode) Init(ctx node.Context) {
	n.ctx = ctx
	n.inits++
	n.tick()
}

func (n *tickNode) tick() {
	n.ctx.After(10*time.Millisecond, func() {
		n.fires++
		n.tick()
	})
}

func (n *tickNode) Receive(from node.ID, m wire.Message) {}

func TestCrashSilencesTimersAndDropsDeliveries(t *testing.T) {
	s := newSim(t, Config{Seed: 1})
	tn := &tickNode{}
	sender := &echoNode{}
	if err := s.AddNode(node.WorkerID(0), tn); err != nil {
		t.Fatal(err)
	}
	if err := s.AddNode(node.WorkerID(1), sender); err != nil {
		t.Fatal(err)
	}
	s.Init()

	s.RunFor(55 * time.Millisecond)
	firesBefore := tn.fires
	if firesBefore == 0 {
		t.Fatal("timer never fired before crash")
	}

	if err := s.Crash(node.WorkerID(0)); err != nil {
		t.Fatal(err)
	}
	if !s.Down(node.WorkerID(0)) {
		t.Error("Down() false after Crash")
	}
	// A message sent to the down node must be lost.
	if err := s.Inject(node.WorkerID(1), node.WorkerID(0), &ping{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	s.RunFor(100 * time.Millisecond)
	if tn.fires != firesBefore {
		t.Errorf("timers fired while down: %d -> %d", firesBefore, tn.fires)
	}
	if _, dead := s.FaultDrops(); dead == 0 {
		t.Error("delivery to down node not counted as dead drop")
	}

	// Restart with a fresh handler: Init runs, new timers fire.
	fresh := &tickNode{}
	if err := s.Restart(node.WorkerID(0), fresh); err != nil {
		t.Fatal(err)
	}
	if s.Down(node.WorkerID(0)) {
		t.Error("Down() true after Restart")
	}
	s.RunFor(55 * time.Millisecond)
	if fresh.inits != 1 {
		t.Errorf("fresh handler Init ran %d times, want 1", fresh.inits)
	}
	if fresh.fires == 0 {
		t.Error("restarted node's timer never fired")
	}
	if tn.fires != firesBefore {
		t.Errorf("old incarnation's timer resumed after restart: %d -> %d", firesBefore, tn.fires)
	}
}

// TestCrashedSenderInFlightStillDelivers pins the crash semantic the
// replication design rests on: Crash(id) drops messages TO the dead node,
// but messages it already sent keep flowing to their destinations. A shard
// primary that forwards an acknowledged push to its backup and then dies
// therefore cannot take the push with it — the forward is already on the
// wire, and the promoted backup applies it (the zero-loss invariant in
// DESIGN.md, Replication).
func TestCrashedSenderInFlightStillDelivers(t *testing.T) {
	s := newSim(t, Config{Seed: 1, Net: NetModel{Latency: 5 * time.Millisecond}})
	sender, receiver := &echoNode{}, &echoNode{}
	if err := s.AddNode(node.WorkerID(0), sender); err != nil {
		t.Fatal(err)
	}
	if err := s.AddNode(node.WorkerID(1), receiver); err != nil {
		t.Fatal(err)
	}
	s.Init()

	// Put two messages in flight, then kill the sender before either's
	// 5ms delivery time arrives.
	s.nodes[node.WorkerID(0)].Send(node.WorkerID(1), &ping{Seq: 1})
	s.nodes[node.WorkerID(0)].Send(node.WorkerID(1), &ping{Seq: 2})
	if err := s.Crash(node.WorkerID(0)); err != nil {
		t.Fatal(err)
	}
	s.RunFor(50 * time.Millisecond)

	if len(receiver.seen) != 2 {
		t.Fatalf("in-flight sends from a crashed sender: delivered %d, want 2 (%v)", len(receiver.seen), receiver.seen)
	}
	// The reverse direction really is dropped: nothing reaches the corpse.
	if err := s.Inject(node.WorkerID(1), node.WorkerID(0), &ping{Seq: 3}); err != nil {
		t.Fatal(err)
	}
	s.RunFor(50 * time.Millisecond)
	if len(sender.seen) != 0 {
		t.Errorf("crashed node received %v", sender.seen)
	}
}

func TestCrashRestartErrors(t *testing.T) {
	s := newSim(t, Config{Seed: 1})
	if err := s.AddNode(node.WorkerID(0), &echoNode{}); err != nil {
		t.Fatal(err)
	}
	s.Init()
	if err := s.Crash(node.WorkerID(9)); err == nil {
		t.Error("Crash(unknown) succeeded")
	}
	if err := s.Restart(node.WorkerID(0), nil); err == nil {
		t.Error("Restart(up node) succeeded")
	}
	if err := s.Crash(node.WorkerID(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Crash(node.WorkerID(0)); err == nil {
		t.Error("double Crash succeeded")
	}
	if err := s.Restart(node.WorkerID(0), nil); err != nil {
		t.Fatal(err)
	}
}

func TestFaultHookDropDuplicateDelay(t *testing.T) {
	recv := &echoNode{}
	var mode string
	s := newSim(t, Config{Seed: 1})
	s.SetFault(func(from, to node.ID, kind wire.Kind, at time.Time) FaultAction {
		switch mode {
		case "drop":
			return FaultAction{Drop: true}
		case "dup":
			return FaultAction{Duplicate: true}
		case "delay":
			return FaultAction{Delay: 50 * time.Millisecond}
		}
		return FaultAction{}
	})
	if err := s.AddNode(node.WorkerID(0), &echoNode{}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddNode(node.WorkerID(1), recv); err != nil {
		t.Fatal(err)
	}
	s.Init()
	send := func(seq int) {
		nc := s.nodes[node.WorkerID(0)]
		s.send(nc.id, node.WorkerID(1), &ping{Seq: seq})
	}

	mode = "drop"
	send(1)
	s.RunFor(time.Second)
	if len(recv.seen) != 0 {
		t.Fatalf("dropped message delivered: %v", recv.seen)
	}
	if injected, _ := s.FaultDrops(); injected != 1 {
		t.Errorf("injected drops = %d, want 1", injected)
	}

	mode = "dup"
	send(2)
	s.RunFor(time.Second)
	if len(recv.seen) != 2 {
		t.Fatalf("duplicated message delivered %d times, want 2", len(recv.seen))
	}

	mode = "delay"
	before := s.Now()
	send(3)
	s.RunFor(time.Second)
	if len(recv.seen) != 3 {
		t.Fatalf("delayed message lost: %v", recv.seen)
	}
	_ = before
}
