// Package des implements a deterministic discrete-event simulator that runs
// node.Handler state machines in virtual time. It substitutes for the
// paper's EC2 testbed: per-worker compute durations, network latency and
// bandwidth are modeled, while every message still passes through the real
// wire codec so byte accounting is exact. Given the same seed and
// configuration, a simulation is bit-for-bit reproducible.
package des

import (
	"container/heap"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"specsync/internal/node"
	"specsync/internal/obs"
	"specsync/internal/wire"
)

// NetModel describes the simulated network between any two nodes.
type NetModel struct {
	// Latency is the one-way propagation delay added to every message.
	Latency time.Duration
	// BytesPerSec is the per-link throughput; 0 means infinite bandwidth.
	// Each ordered (src, dst) pair is an independent link that serializes
	// its messages, so a burst of large pulls queues realistically.
	BytesPerSec float64
	// Jitter adds a uniform random delay in [0, Jitter) per message.
	Jitter time.Duration
	// Hiccups models cluster-wide transient stalls (multi-tenant network
	// contention, EBS pauses, rack-level blips — routine on EC2). During a
	// hiccup, deliveries are deferred to its end, so queued messages land
	// as a burst. Bursty push arrival is the environment the paper's
	// speculation exploits: a worker that pulled just before a burst misses
	// a large block of updates unless it re-synchronizes.
	Hiccups Hiccups
}

// Hiccups configures the cluster-wide stall process: stalls start with
// exponential spacing (mean MeanEvery) and last uniform [MinDur, MaxDur).
type Hiccups struct {
	MeanEvery time.Duration // zero disables hiccups
	MinDur    time.Duration
	MaxDur    time.Duration
}

// Enabled reports whether the hiccup process is active.
func (h Hiccups) Enabled() bool { return h.MeanEvery > 0 }

func (h Hiccups) validate() error {
	if !h.Enabled() {
		return nil
	}
	if h.MinDur <= 0 || h.MaxDur < h.MinDur {
		return fmt.Errorf("des: hiccup durations must satisfy 0 < MinDur <= MaxDur, got [%v, %v]", h.MinDur, h.MaxDur)
	}
	return nil
}

// TransferRecorder observes every simulated message send for the
// communication-overhead experiments (paper Figs. 12-13).
type TransferRecorder interface {
	RecordTransfer(from, to node.ID, kind wire.Kind, bytes int, at time.Time)
}

// FaultAction tells the simulator what to do with one message. The zero
// value delivers normally.
type FaultAction struct {
	// Drop discards the message (it still consumed no link time).
	Drop bool
	// Duplicate transmits a second copy (both pass through the bandwidth
	// model, so they serialize on the link like a real retransmission).
	Duplicate bool
	// Delay adds this much extra latency, reordering the message past
	// later traffic on the same link.
	Delay time.Duration
}

// FaultHook decides the fault action for each message at send time. It runs
// on the simulator goroutine; any randomness inside must come from a seeded
// stream so runs stay reproducible. internal/faults builds hooks from
// declarative fault plans.
type FaultHook func(from, to node.ID, kind wire.Kind, at time.Time) FaultAction

// Config configures a simulation.
type Config struct {
	// Seed drives all simulator randomness (jitter) and derives per-node
	// random streams.
	Seed int64
	// Net is the network model applied to every message.
	Net NetModel
	// Registry decodes messages at delivery. Required.
	Registry *wire.Registry
	// Start is the virtual epoch; zero means time.Unix(0, 0).
	Start time.Time
	// Transfer, if non-nil, receives a record per message sent.
	Transfer TransferRecorder
	// Fault, if non-nil, is consulted for every message (see also
	// Sim.SetFault, which fault injectors use after construction).
	Fault FaultHook
	// Metrics, if non-nil, receives simulator-level gauges and counters
	// (event-queue depth, steps executed, deliveries, virtual clock).
	// Recording only reads simulator state, so it cannot perturb the run.
	Metrics *obs.Registry
	// Debug, if non-nil, receives node log lines.
	Debug io.Writer
}

type event struct {
	at  time.Time
	seq uint64 // tie-break for determinism
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

type linkKey struct {
	from, to node.ID
}

// Sim is the simulator. It is not safe for concurrent use: build it, add
// nodes, then drive it from a single goroutine.
type Sim struct {
	cfg      Config
	now      time.Time
	start    time.Time
	queue    eventHeap
	seq      uint64
	nodes    map[node.ID]*simContext
	links    map[linkKey]time.Time // per-link busy-until for bandwidth model
	netRand  *rand.Rand
	started  bool
	stopped  bool
	delivers uint64 // count of delivered messages, for stats/tests
	fault    FaultHook
	// linkPenalty, if non-nil, scales per-link transfer time (straggler
	// congestion profiles). Unlike the fault hook it is a pure function —
	// no drops, no randomness — so it composes with fault plans.
	linkPenalty LinkPenaltyHook
	// Fault-induced drop counts: injected by the hook vs. lost because the
	// destination was down (or a different incarnation) at arrival.
	faultDrops uint64
	deadDrops  uint64

	// Hiccup windows generated so far, in time order, and the RNG stream
	// that extends them (independent of other randomness for determinism).
	hiccups     []window
	hiccupRand  *rand.Rand
	hiccupFront time.Time // schedule generated up to here

	// Optional simulator telemetry (Config.Metrics).
	metSteps     *obs.Counter
	metDelivered *obs.Counter
	metQueue     *obs.Gauge
	metVirtual   *obs.Gauge
}

type window struct {
	start, end time.Time
}

// New builds an empty simulation.
func New(cfg Config) (*Sim, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("des: config requires a wire registry")
	}
	if cfg.Net.BytesPerSec < 0 || cfg.Net.Latency < 0 || cfg.Net.Jitter < 0 {
		return nil, fmt.Errorf("des: negative network parameters")
	}
	if err := cfg.Net.Hiccups.validate(); err != nil {
		return nil, err
	}
	start := cfg.Start
	if start.IsZero() {
		start = time.Unix(0, 0).UTC()
	}
	s := &Sim{
		cfg:         cfg,
		now:         start,
		start:       start,
		nodes:       make(map[node.ID]*simContext),
		links:       make(map[linkKey]time.Time),
		netRand:     rand.New(rand.NewSource(cfg.Seed ^ 0x5ec5)),
		hiccupRand:  rand.New(rand.NewSource(cfg.Seed ^ 0x41cc)),
		hiccupFront: start,
		fault:       cfg.Fault,
	}
	if reg := cfg.Metrics; reg != nil {
		s.metSteps = reg.Counter("specsync_sim_steps_total", "Simulator events executed.")
		s.metDelivered = reg.Counter("specsync_sim_delivered_total", "Messages delivered by the simulator.")
		s.metQueue = reg.Gauge("specsync_sim_queue_depth", "Pending events in the simulator queue.")
		s.metVirtual = reg.Gauge("specsync_sim_virtual_seconds", "Virtual time elapsed since the simulation epoch.")
	}
	return s, nil
}

// SetFault installs (or replaces) the message fault hook. Fault injectors
// call it after the simulation is built but before (or during) the run.
func (s *Sim) SetFault(f FaultHook) { s.fault = f }

// LinkPenaltyHook scales the transfer time of one message: it returns a
// multiplier >= 1 applied to both the link serialization time and the
// propagation latency. elapsed is virtual time since the simulation epoch.
// The hook must be a pure function of its arguments (no randomness, no
// state) so runs stay bit-for-bit reproducible; internal/stragglers builds
// hooks from declarative congestion profiles.
type LinkPenaltyHook func(from, to node.ID, elapsed time.Duration) float64

// SetLinkPenalty installs (or replaces) the link penalty hook. A nil hook
// (the default) leaves the network model byte-identical to a build without
// the hook point.
func (s *Sim) SetLinkPenalty(f LinkPenaltyHook) { s.linkPenalty = f }

// deferPastHiccup returns the delivery time adjusted for cluster stalls: a
// message that would arrive during a hiccup window is held until the window
// ends (it sat in a queue), so co-stalled messages release as a burst.
func (s *Sim) deferPastHiccup(arrive time.Time) time.Time {
	h := s.cfg.Net.Hiccups
	if !h.Enabled() {
		return arrive
	}
	// Extend the schedule deterministically until it covers `arrive`.
	for !s.hiccupFront.After(arrive) {
		gap := time.Duration(s.hiccupRand.ExpFloat64() * float64(h.MeanEvery))
		start := s.hiccupFront.Add(gap)
		dur := h.MinDur
		if span := h.MaxDur - h.MinDur; span > 0 {
			dur += time.Duration(s.hiccupRand.Int63n(int64(span)))
		}
		s.hiccups = append(s.hiccups, window{start: start, end: start.Add(dur)})
		s.hiccupFront = start.Add(dur)
	}
	// Windows are ordered and non-overlapping; binary search would work but
	// the relevant window is almost always near the end.
	for i := len(s.hiccups) - 1; i >= 0; i-- {
		w := s.hiccups[i]
		if arrive.Before(w.start) {
			continue
		}
		if arrive.Before(w.end) {
			return w.end
		}
		break
	}
	return arrive
}

// AddNode registers a handler under id. All nodes must be added before Init.
func (s *Sim) AddNode(id node.ID, h node.Handler) error {
	if s.started {
		return fmt.Errorf("des: AddNode(%s) after Init", id)
	}
	if _, dup := s.nodes[id]; dup {
		return fmt.Errorf("des: duplicate node %s", id)
	}
	if h == nil {
		return fmt.Errorf("des: nil handler for %s", id)
	}
	s.nodes[id] = &simContext{
		sim:     s,
		id:      id,
		handler: h,
		rng:     rand.New(rand.NewSource(node.RandSeed(s.cfg.Seed, id))),
	}
	return nil
}

// Join registers a handler mid-run (elastic scale-up) and Inits it
// immediately in the caller's event context. Use AddNode before Init;
// Join after.
func (s *Sim) Join(id node.ID, h node.Handler) error {
	if !s.started {
		return fmt.Errorf("des: Join(%s) before Init; use AddNode", id)
	}
	if _, dup := s.nodes[id]; dup {
		return fmt.Errorf("des: duplicate node %s", id)
	}
	if h == nil {
		return fmt.Errorf("des: nil handler for %s", id)
	}
	nc := &simContext{
		sim:     s,
		id:      id,
		handler: h,
		rng:     rand.New(rand.NewSource(node.RandSeed(s.cfg.Seed, id))),
	}
	s.nodes[id] = nc
	nc.handler.Init(nc)
	return nil
}

// Init calls Handler.Init on every node in sorted ID order (deterministic).
func (s *Sim) Init() {
	if s.started {
		return
	}
	s.started = true
	ids := make([]node.ID, 0, len(s.nodes))
	for id := range s.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		nc := s.nodes[id]
		nc.handler.Init(nc)
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Time { return s.now }

// Elapsed returns virtual time since the simulation epoch.
func (s *Sim) Elapsed() time.Duration {
	start := s.cfg.Start
	if start.IsZero() {
		start = time.Unix(0, 0).UTC()
	}
	return s.now.Sub(start)
}

// Delivered returns the number of messages delivered so far.
func (s *Sim) Delivered() uint64 { return s.delivers }

// Stop makes the current Run call return after the in-flight event.
func (s *Sim) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Sim) Stopped() bool { return s.stopped }

// Schedule enqueues a simulator-level event (probes, experiment control)
// after d. It returns a cancel function like node timers.
func (s *Sim) Schedule(d time.Duration, f func()) node.CancelFunc {
	return s.scheduleAt(s.now.Add(d), f)
}

func (s *Sim) scheduleAt(at time.Time, f func()) node.CancelFunc {
	if at.Before(s.now) {
		at = s.now
	}
	canceled := false
	ev := &event{at: at, seq: s.seq, fn: func() {
		if !canceled {
			f()
		}
	}}
	s.seq++
	heap.Push(&s.queue, ev)
	return func() { canceled = true }
}

// Step executes the next pending event. It reports false when the queue is
// empty or the simulation is stopped.
func (s *Sim) Step() bool {
	if s.stopped || s.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*event)
	if ev.at.After(s.now) {
		s.now = ev.at
	}
	ev.fn()
	s.metSteps.Inc()
	s.metQueue.Set(float64(s.queue.Len()))
	s.metVirtual.Set(s.Elapsed().Seconds())
	return true
}

// RunFor advances virtual time by d, executing every event due in the
// window. If the queue drains early, time still advances to the deadline.
func (s *Sim) RunFor(d time.Duration) {
	deadline := s.now.Add(d)
	for !s.stopped && s.queue.Len() > 0 && !s.queue[0].at.After(deadline) {
		s.Step()
	}
	if !s.stopped && s.now.Before(deadline) {
		s.now = deadline
	}
}

// RunUntilIdle executes events until none remain or maxVirtual elapses,
// whichever comes first. It returns the reason it stopped.
func (s *Sim) RunUntilIdle(maxVirtual time.Duration) string {
	deadline := s.now.Add(maxVirtual)
	for !s.stopped {
		if s.queue.Len() == 0 {
			return "idle"
		}
		if s.queue[0].at.After(deadline) {
			s.now = deadline
			return "deadline"
		}
		s.Step()
	}
	return "stopped"
}

// send routes a marshaled message through the fault hook and network model.
func (s *Sim) send(from, to node.ID, m wire.Message) {
	dst, ok := s.nodes[to]
	if !ok {
		s.logf(from, "send to unknown node %s dropped (kind %s)", to, s.cfg.Registry.Name(m.Kind()))
		return
	}
	var act FaultAction
	if s.fault != nil {
		act = s.fault(from, to, m.Kind(), s.now)
	}
	if act.Drop {
		s.faultDrops++
		s.logf(from, "fault: dropped %s to %s", s.cfg.Registry.Name(m.Kind()), to)
		return
	}
	data := wire.Marshal(m)
	copies := 1
	if act.Duplicate {
		copies = 2
	}
	for c := 0; c < copies; c++ {
		s.transmit(from, to, dst, m.Kind(), data, act.Delay)
	}
}

// transmit sends one copy of an encoded message through the network model.
func (s *Sim) transmit(from, to node.ID, dst *simContext, kind wire.Kind, data []byte, extraDelay time.Duration) {
	if s.cfg.Transfer != nil {
		s.cfg.Transfer.RecordTransfer(from, to, kind, len(data), s.now)
	}

	mult := 1.0
	if s.linkPenalty != nil {
		if m := s.linkPenalty(from, to, s.now.Sub(s.start)); m > 1 {
			mult = m
		}
	}
	arrive := s.now
	if bps := s.cfg.Net.BytesPerSec; bps > 0 {
		key := linkKey{from: from, to: to}
		start := s.now
		if busy, ok := s.links[key]; ok && busy.After(start) {
			start = busy
		}
		tx := time.Duration(float64(len(data)) / bps * float64(time.Second) * mult)
		s.links[key] = start.Add(tx)
		arrive = start.Add(tx)
	}
	arrive = arrive.Add(time.Duration(float64(s.cfg.Net.Latency) * mult))
	if j := s.cfg.Net.Jitter; j > 0 {
		arrive = arrive.Add(time.Duration(s.netRand.Int63n(int64(j))))
	}
	arrive = arrive.Add(extraDelay)
	arrive = s.deferPastHiccup(arrive)

	kindName := s.cfg.Registry.Name(kind)
	gen := dst.gen
	s.scheduleAt(arrive, func() {
		if dst.down || dst.gen != gen {
			// The destination crashed (or restarted as a new incarnation)
			// while the message was in flight: it is lost, exactly as a
			// closed TCP connection would lose it.
			s.deadDrops++
			return
		}
		decoded, err := s.cfg.Registry.Unmarshal(data)
		if err != nil {
			// A decode failure under the simulator is a codec bug; surface
			// it loudly rather than silently dropping.
			panic(fmt.Sprintf("des: decode %s from %s to %s: %v", kindName, from, to, err))
		}
		s.delivers++
		s.metDelivered.Inc()
		dst.handler.Receive(from, decoded)
	})
}

// Crash marks a node as failed. While down, every message addressed to it is
// lost, its pending timers never fire, and in-flight messages sent to the
// previous incarnation are dropped on arrival. A crashed node can be brought
// back with Restart.
func (s *Sim) Crash(id node.ID) error {
	nc, ok := s.nodes[id]
	if !ok {
		return fmt.Errorf("des: Crash(%s): unknown node", id)
	}
	if nc.down {
		return fmt.Errorf("des: Crash(%s): already down", id)
	}
	nc.down = true
	nc.gen++
	s.logf(id, "crashed")
	return nil
}

// Restart revives a crashed node as a fresh incarnation. A non-nil handler
// replaces the node's state machine (the usual case: crash loses state); nil
// keeps the existing handler object (for handlers whose state is restored
// out of band before the restart). Init runs immediately.
func (s *Sim) Restart(id node.ID, h node.Handler) error {
	nc, ok := s.nodes[id]
	if !ok {
		return fmt.Errorf("des: Restart(%s): unknown node", id)
	}
	if !nc.down {
		return fmt.Errorf("des: Restart(%s): not down", id)
	}
	if h != nil {
		nc.handler = h
	}
	nc.down = false
	nc.gen++
	s.logf(id, "restarted (incarnation %d)", nc.gen)
	nc.handler.Init(nc)
	return nil
}

// Down reports whether a node is currently crashed.
func (s *Sim) Down(id node.ID) bool {
	nc, ok := s.nodes[id]
	return ok && nc.down
}

// Inject delivers a message to a node as if sent by from, bypassing the
// network model (mirrors live.Network.Inject). Fault injectors use it to
// re-issue Start to restarted workers.
func (s *Sim) Inject(from, to node.ID, m wire.Message) error {
	dst, ok := s.nodes[to]
	if !ok {
		return fmt.Errorf("des: inject: unknown node %s", to)
	}
	data := wire.Marshal(m)
	decoded, err := s.cfg.Registry.Unmarshal(data)
	if err != nil {
		return fmt.Errorf("des: inject: %w", err)
	}
	gen := dst.gen
	s.scheduleAt(s.now, func() {
		if dst.down || dst.gen != gen {
			s.deadDrops++
			return
		}
		s.delivers++
		dst.handler.Receive(from, decoded)
	})
	return nil
}

// FaultDrops returns (hook-injected drops, deliveries lost to down nodes).
func (s *Sim) FaultDrops() (injected, dead uint64) { return s.faultDrops, s.deadDrops }

func (s *Sim) logf(id node.ID, format string, args ...any) {
	if s.cfg.Debug == nil {
		return
	}
	fmt.Fprintf(s.cfg.Debug, "[%12s] %-10s "+format+"\n",
		append([]any{s.Elapsed().Round(time.Microsecond), id}, args...)...)
}

// simContext implements node.Context for one simulated node.
type simContext struct {
	sim     *Sim
	id      node.ID
	handler node.Handler
	rng     *rand.Rand
	// down marks the node crashed; gen counts incarnations. Timers and
	// in-flight deliveries capture gen and are discarded on mismatch, so a
	// restarted node never observes callbacks from a previous life.
	down bool
	gen  uint64
}

var _ node.Context = (*simContext)(nil)

func (c *simContext) Self() node.ID    { return c.id }
func (c *simContext) Now() time.Time   { return c.sim.now }
func (c *simContext) Rand() *rand.Rand { return c.rng }

func (c *simContext) Send(to node.ID, m wire.Message) {
	c.sim.send(c.id, to, m)
}

func (c *simContext) After(d time.Duration, f func()) node.CancelFunc {
	if d < 0 {
		d = 0
	}
	gen := c.gen
	return c.sim.scheduleAt(c.sim.now.Add(d), func() {
		if c.down || c.gen != gen {
			return // timer from a crashed (or previous) incarnation
		}
		f()
	})
}

func (c *simContext) Logf(format string, args ...any) {
	c.sim.logf(c.id, format, args...)
}

// NodeHandler returns the handler registered under id, or nil. Experiment
// probes use this to read state (e.g. server parameters) without generating
// traffic; the simulator is single-threaded so direct reads are safe.
func (s *Sim) NodeHandler(id node.ID) node.Handler {
	if nc, ok := s.nodes[id]; ok {
		return nc.handler
	}
	return nil
}
