package des

import (
	"strings"
	"testing"
	"time"

	"specsync/internal/node"
)

func TestHiccupValidation(t *testing.T) {
	bad := []Hiccups{
		{MeanEvery: time.Second}, // no durations
		{MeanEvery: time.Second, MinDur: 2 * time.Second, MaxDur: time.Second}, // inverted
		{MeanEvery: time.Second, MinDur: -1, MaxDur: time.Second},
	}
	for i, h := range bad {
		if _, err := New(Config{Registry: reg(), Net: NetModel{Hiccups: h}}); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, h)
		}
	}
	ok := Hiccups{MeanEvery: time.Second, MinDur: time.Millisecond, MaxDur: time.Millisecond}
	if _, err := New(Config{Registry: reg(), Net: NetModel{Hiccups: ok}}); err != nil {
		t.Errorf("valid hiccups rejected: %v", err)
	}
	if ok := (Hiccups{}).Enabled(); ok {
		t.Error("zero Hiccups must be disabled")
	}
}

// TestHiccupsDeferAndBurst sends a steady message stream through a network
// with stalls and verifies (a) no message is lost, (b) messages that would
// land inside a stall window are deferred to its end (burst formation).
func TestHiccupsDeferAndBurst(t *testing.T) {
	s := newSim(t, Config{
		Seed: 3,
		Net: NetModel{
			Latency: time.Millisecond,
			Hiccups: Hiccups{MeanEvery: 50 * time.Millisecond, MinDur: 20 * time.Millisecond, MaxDur: 40 * time.Millisecond},
		},
	})
	recv := &echoNode{}
	if err := s.AddNode("server/0", recv); err != nil {
		t.Fatal(err)
	}
	send := &echoNode{}
	if err := s.AddNode("worker/0", send); err != nil {
		t.Fatal(err)
	}
	s.Init()

	const n = 200
	ctx := s.nodes["worker/0"]
	for i := 0; i < n; i++ {
		i := i
		ctx.After(time.Duration(i)*2*time.Millisecond, func() {
			ctx.Send("server/0", &ping{Seq: i})
		})
	}
	s.RunUntilIdle(time.Minute)

	if len(recv.seen) != n {
		t.Fatalf("received %d of %d messages", len(recv.seen), n)
	}
	// With ~2ms spacing and stall windows of 20-40ms, some arrivals must
	// coincide exactly (deferred to the same window end): look for
	// co-arrival bursts in the timestamps embedded in seen strings.
	counts := map[string]int{}
	for _, sstr := range recv.seen {
		// format "from:seq@nanos" — key on the nanos part.
		at := sstr[strings.LastIndexByte(sstr, '@')+1:]
		counts[at]++
	}
	burst := 0
	for _, c := range counts {
		if c > burst {
			burst = c
		}
	}
	if burst < 5 {
		t.Errorf("largest co-arrival burst is %d, want >= 5 (stalls should clump arrivals)", burst)
	}
}

// TestHiccupsDeterministic verifies the stall schedule is seed-stable.
func TestHiccupsDeterministic(t *testing.T) {
	run := func() []string {
		s := newSim(t, Config{
			Seed: 9,
			Net: NetModel{
				Hiccups: Hiccups{MeanEvery: 30 * time.Millisecond, MinDur: 5 * time.Millisecond, MaxDur: 25 * time.Millisecond},
			},
		})
		recv := &echoNode{}
		if err := s.AddNode("server/0", recv); err != nil {
			t.Fatal(err)
		}
		if err := s.AddNode(node.WorkerID(0), &echoNode{}); err != nil {
			t.Fatal(err)
		}
		s.Init()
		ctx := s.nodes[node.WorkerID(0)]
		for i := 0; i < 100; i++ {
			i := i
			ctx.After(time.Duration(i)*3*time.Millisecond, func() {
				ctx.Send("server/0", &ping{Seq: i})
			})
		}
		s.RunUntilIdle(time.Minute)
		return recv.seen
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}
