package des

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"specsync/internal/node"
	"specsync/internal/wire"
)

// TestLinkFIFO: messages on one (src,dst) link must arrive in send order
// regardless of size, because a link serializes its transmissions.
func TestLinkFIFO(t *testing.T) {
	f := func(seed int64) bool {
		s, err := New(Config{
			Seed:     seed,
			Registry: reg(),
			Net:      NetModel{Latency: time.Millisecond, BytesPerSec: 1e5},
		})
		if err != nil {
			return false
		}
		recv := &echoNode{}
		if err := s.AddNode("server/0", recv); err != nil {
			return false
		}
		if err := s.AddNode("worker/0", &echoNode{}); err != nil {
			return false
		}
		s.Init()
		rng := rand.New(rand.NewSource(seed))
		ctx := s.nodes["worker/0"]
		const n = 30
		for i := 0; i < n; i++ {
			i := i
			// Random send times and random sizes.
			ctx.After(time.Duration(rng.Intn(50))*time.Millisecond, func() {
				ctx.Send("server/0", &ping{Seq: i, Payload: make([]byte, rng.Intn(2000))})
			})
		}
		s.RunUntilIdle(time.Minute)
		if len(recv.seen) != n {
			return false
		}
		// Arrival timestamps must be non-decreasing in arrival order (they
		// are by construction); the real invariant: a message sent earlier
		// on the same link never arrives after one sent later *from the
		// same send instant ordering*. We verify per-arrival timestamps are
		// sorted, which the event loop guarantees, and that nothing is lost.
		prev := ""
		for _, v := range recv.seen {
			at := v[strings.LastIndexByte(v, '@')+1:]
			if prev != "" && len(at) == len(prev) && at < prev {
				return false
			}
			prev = at
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestBandwidthConservation: total transmission time on a saturated link
// must be at least total bytes / bandwidth.
func TestBandwidthConservation(t *testing.T) {
	const bps = 10000.0
	s, err := New(Config{Seed: 1, Registry: reg(), Net: NetModel{BytesPerSec: bps}})
	if err != nil {
		t.Fatal(err)
	}
	recv := &echoNode{}
	if err := s.AddNode("server/0", recv); err != nil {
		t.Fatal(err)
	}
	if err := s.AddNode(node.WorkerID(0), &echoNode{}); err != nil {
		t.Fatal(err)
	}
	s.Init()
	ctx := s.nodes[node.WorkerID(0)]
	totalBytes := 0
	for i := 0; i < 20; i++ {
		m := &ping{Seq: i, Payload: make([]byte, 500)}
		totalBytes += len(marshalFor(t, m))
		ctx.Send("server/0", m)
	}
	s.RunUntilIdle(time.Minute)
	minTime := time.Duration(float64(totalBytes) / bps * float64(time.Second))
	if s.Elapsed() < minTime {
		t.Errorf("elapsed %v < physical minimum %v", s.Elapsed(), minTime)
	}
	if len(recv.seen) != 20 {
		t.Errorf("lost messages: %d", len(recv.seen))
	}
}

func marshalFor(t *testing.T, m *ping) []byte {
	t.Helper()
	// Mirror of what send() does for size accounting.
	return wire.Marshal(m)
}
