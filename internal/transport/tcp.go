// Package transport implements the TCP message transport used when SpecSync
// nodes run as separate processes. Frames are length-prefixed; each frame
// carries the sender's node ID and one wire-encoded message. Connections are
// dialed lazily per destination and writes are serialized per connection.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"specsync/internal/node"
	"specsync/internal/wire"
)

// maxFrameSize bounds a single frame (64 MiB) as a corruption guard.
const maxFrameSize = 64 << 20

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("transport: closed")

// TransferRecorder observes sent frames for byte accounting.
type TransferRecorder interface {
	RecordTransfer(from, to node.ID, kind wire.Kind, bytes int, at time.Time)
}

// TCPConfig configures one TCP endpoint.
type TCPConfig struct {
	// ID is this endpoint's node ID, stamped on every outgoing frame.
	ID node.ID
	// ListenAddr is the address to accept peer connections on (e.g.
	// "127.0.0.1:0"). Empty means this endpoint only dials.
	ListenAddr string
	// Peers maps destination node IDs to their listen addresses. Peers may
	// also be added later with AddPeer.
	Peers map[node.ID]string
	// Registry decodes inbound frames. Required.
	Registry *wire.Registry
	// OnMessage is invoked (from reader goroutines, possibly concurrently)
	// for every inbound message. Required.
	OnMessage func(from node.ID, m wire.Message)
	// Transfer, if non-nil, records outbound frames.
	Transfer TransferRecorder
	// DialTimeout bounds connection establishment; zero means 5 s.
	DialTimeout time.Duration
	// MaxAttempts bounds Send attempts per message (initial try + retries
	// after dial or write failures). Zero or one means no retries,
	// preserving fail-fast semantics for callers that handle errors
	// themselves.
	MaxAttempts int
	// RetryBackoff is the delay before the first retry; it doubles per
	// attempt up to MaxBackoff. Zero means 50 ms.
	RetryBackoff time.Duration
	// MaxBackoff caps the exponential backoff. Zero means 2 s.
	MaxBackoff time.Duration
	// OnRetry, if non-nil, is invoked (possibly concurrently) before each
	// retry sleep with the attempt number just failed.
	OnRetry func(to node.ID, attempt int, err error)
}

// TCP is one endpoint of the mesh.
type TCP struct {
	cfg TCPConfig
	ln  net.Listener

	mu      sync.Mutex
	peers   map[node.ID]string
	conns   map[node.ID]*peerConn
	inbound map[net.Conn]struct{}
	closed  bool

	wg sync.WaitGroup
}

type peerConn struct {
	mu   sync.Mutex // serializes writes
	conn net.Conn
}

// ListenTCP opens the endpoint and starts its accept loop (when ListenAddr
// is set).
func ListenTCP(cfg TCPConfig) (*TCP, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("transport: config requires a wire registry")
	}
	if cfg.OnMessage == nil {
		return nil, fmt.Errorf("transport: config requires an OnMessage handler")
	}
	if err := node.Validate(cfg.ID); err != nil {
		return nil, err
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	t := &TCP{
		cfg:     cfg,
		peers:   make(map[node.ID]string, len(cfg.Peers)),
		conns:   make(map[node.ID]*peerConn),
		inbound: make(map[net.Conn]struct{}),
	}
	for id, addr := range cfg.Peers {
		t.peers[id] = addr
	}
	if cfg.ListenAddr != "" {
		ln, err := net.Listen("tcp", cfg.ListenAddr)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.ListenAddr, err)
		}
		t.ln = ln
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.acceptLoop()
		}()
	}
	return t, nil
}

// Addr returns the bound listen address ("" if dial-only).
func (t *TCP) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// AddPeer registers (or updates) a destination address.
func (t *TCP) AddPeer(id node.ID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[id] = addr
}

// Send frames and writes m to the destination, dialing on first use. When
// MaxAttempts > 1, transient dial/write failures are retried with bounded
// exponential backoff — a worker outliving a server-shard restart keeps
// training instead of erroring out.
func (t *TCP) Send(to node.ID, m wire.Message) error {
	attempts := t.cfg.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := t.cfg.RetryBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	maxBackoff := t.cfg.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 2 * time.Second
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = t.sendOnce(to, m)
		if err == nil || errors.Is(err, ErrClosed) || attempt >= attempts {
			return err
		}
		if t.cfg.OnRetry != nil {
			t.cfg.OnRetry(to, attempt, err)
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// sendOnce performs a single framed write, dialing if needed.
func (t *TCP) sendOnce(to node.ID, m wire.Message) error {
	pc, err := t.conn(to)
	if err != nil {
		return err
	}

	w := wire.GetWriter()
	defer wire.PutWriter(w)
	w.String(string(t.cfg.ID))
	wire.AppendMessage(w, m)
	payload := w.Bytes()

	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))

	pc.mu.Lock()
	defer pc.mu.Unlock()
	if _, err := pc.conn.Write(hdr[:]); err != nil {
		t.dropConn(to, pc)
		return fmt.Errorf("transport: write header to %s: %w", to, err)
	}
	if _, err := pc.conn.Write(payload); err != nil {
		t.dropConn(to, pc)
		return fmt.Errorf("transport: write payload to %s: %w", to, err)
	}
	if t.cfg.Transfer != nil {
		t.cfg.Transfer.RecordTransfer(t.cfg.ID, to, m.Kind(), len(payload)+4, time.Now())
	}
	return nil
}

func (t *TCP) conn(to node.ID) (*peerConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if pc, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return pc, nil
	}
	addr, ok := t.peers[to]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no address for %s", to)
	}

	conn, err := net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s (%s): %w", to, addr, err)
	}
	pc := &peerConn{conn: conn}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[to]; ok {
		// Lost a dial race; use the winner.
		t.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	t.conns[to] = pc
	t.mu.Unlock()

	// Outgoing connections are bidirectional: the peer may answer on it.
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.readLoop(conn)
	}()
	return pc, nil
}

func (t *TCP) dropConn(to node.ID, pc *peerConn) {
	pc.conn.Close()
	t.mu.Lock()
	if t.conns[to] == pc {
		delete(t.conns, to)
	}
	t.mu.Unlock()
}

func (t *TCP) acceptLoop() {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.readLoop(conn)
			t.mu.Lock()
			delete(t.inbound, conn)
			t.mu.Unlock()
		}()
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer conn.Close()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(hdr[:])
		if size == 0 || size > maxFrameSize {
			return
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		r := wire.NewReader(payload)
		from := node.ID(r.String())
		if r.Err() != nil {
			return
		}
		m, err := t.cfg.Registry.Unmarshal(payload[len(payload)-r.Remaining():])
		if err != nil {
			// A decode failure means protocol corruption; drop the conn.
			return
		}
		t.cfg.OnMessage(from, m)
	}
}

// Close shuts the listener and all connections and waits for reader
// goroutines to exit.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.conns)+len(t.inbound))
	for _, pc := range t.conns {
		conns = append(conns, pc.conn)
	}
	for c := range t.inbound {
		conns = append(conns, c)
	}
	t.conns = make(map[node.ID]*peerConn)
	t.mu.Unlock()

	if t.ln != nil {
		t.ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	return nil
}
