package transport

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/wire"
)

// dialRaw connects a plain TCP client to an endpoint for protocol-abuse
// tests.
func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func listener(t *testing.T) (*TCP, *sink) {
	t.Helper()
	s := &sink{}
	srv, err := ListenTCP(TCPConfig{
		ID: node.ServerID(0), ListenAddr: "127.0.0.1:0",
		Registry: msg.Registry(), OnMessage: s.on,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, s
}

func TestGarbagePayloadDropsConnection(t *testing.T) {
	srv, s := listener(t)
	conn := dialRaw(t, srv.Addr())

	// Valid length prefix, garbage payload: reader must close the conn
	// without delivering anything or panicking.
	payload := []byte{0xde, 0xad, 0xbe, 0xef, 0x99}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(append(hdr[:], payload...)); err != nil {
		t.Fatal(err)
	}
	// The server should close its side.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("expected connection close after garbage payload")
	}
	if s.count() != 0 {
		t.Errorf("garbage delivered %d messages", s.count())
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	srv, s := listener(t)
	conn := dialRaw(t, srv.Addr())
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<30) // over maxFrameSize
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("expected connection close for oversized frame")
	}
	if s.count() != 0 {
		t.Error("oversized frame delivered a message")
	}
}

func TestZeroLengthFrameRejected(t *testing.T) {
	srv, _ := listener(t)
	conn := dialRaw(t, srv.Addr())
	if _, err := conn.Write([]byte{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("expected connection close for zero-length frame")
	}
}

func TestTruncatedFrameThenClose(t *testing.T) {
	srv, s := listener(t)
	conn := dialRaw(t, srv.Addr())
	// Announce 100 bytes, send 3, hang up: reader must not deliver and
	// must not block forever.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	if _, err := conn.Write(append(hdr[:], 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	time.Sleep(50 * time.Millisecond)
	if s.count() != 0 {
		t.Error("truncated frame delivered a message")
	}
}

func TestValidFrameAfterReconnect(t *testing.T) {
	srv, s := listener(t)
	// First connection dies mid-frame...
	bad := dialRaw(t, srv.Addr())
	bad.Write([]byte{0, 0, 0})
	bad.Close()

	// ...a proper endpoint still gets through afterwards.
	client, err := ListenTCP(TCPConfig{
		ID: node.WorkerID(0), Registry: msg.Registry(),
		OnMessage: func(node.ID, wire.Message) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.AddPeer(node.ServerID(0), srv.Addr())
	if err := client.Send(node.ServerID(0), &msg.Notify{Iter: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.count() == 1 })
}

func TestFrameWithBogusSenderStillDelivered(t *testing.T) {
	// The transport does not authenticate sender IDs (that is the
	// application's job); a frame claiming an arbitrary id is delivered
	// with that id.
	srv, s := listener(t)
	conn := dialRaw(t, srv.Addr())

	w := wire.NewWriter(64)
	w.String("worker/999")
	wire.AppendMessage(w, &msg.Notify{Iter: 7})
	payload := w.Bytes()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(append(hdr[:], payload...)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.count() == 1 })
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.msgs[0] != "worker/999:*msg.Notify" {
		t.Errorf("got %q", s.msgs[0])
	}
}
