package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/wire"
)

type sink struct {
	mu   sync.Mutex
	msgs []string
}

func (s *sink) on(from node.ID, m wire.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.msgs = append(s.msgs, fmt.Sprintf("%s:%T", from, m))
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.msgs)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func newPair(t *testing.T) (*TCP, *TCP, *sink, *sink) {
	t.Helper()
	sa, sb := &sink{}, &sink{}
	a, err := ListenTCP(TCPConfig{
		ID: node.WorkerID(0), ListenAddr: "127.0.0.1:0",
		Registry: msg.Registry(), OnMessage: sa.on,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := ListenTCP(TCPConfig{
		ID: node.ServerID(0), ListenAddr: "127.0.0.1:0",
		Registry: msg.Registry(), OnMessage: sb.on,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	a.AddPeer(node.ServerID(0), b.Addr())
	b.AddPeer(node.WorkerID(0), a.Addr())
	return a, b, sa, sb
}

func TestTCPValidation(t *testing.T) {
	if _, err := ListenTCP(TCPConfig{}); err == nil {
		t.Error("expected registry error")
	}
	if _, err := ListenTCP(TCPConfig{Registry: msg.Registry()}); err == nil {
		t.Error("expected OnMessage error")
	}
	if _, err := ListenTCP(TCPConfig{Registry: msg.Registry(), OnMessage: func(node.ID, wire.Message) {}, ID: "bogus"}); err == nil {
		t.Error("expected bad-id error")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	a, b, sa, sb := newPair(t)
	if err := a.Send(node.ServerID(0), &msg.Notify{Iter: 3}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sb.count() == 1 })
	// Reply over b's own (separate) connection.
	if err := b.Send(node.WorkerID(0), &msg.ReSync{Iter: 4}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sa.count() == 1 })
	sa.mu.Lock()
	defer sa.mu.Unlock()
	if sa.msgs[0] != "server/0:*msg.ReSync" {
		t.Errorf("got %q", sa.msgs[0])
	}
}

func TestTCPLargeMessage(t *testing.T) {
	a, _, _, sb := newPair(t)
	big := &msg.PullResp{Seq: 1, Values: make([]float64, 200_000)} // ~1.6 MB
	for i := range big.Values {
		big.Values[i] = float64(i)
	}
	if err := a.Send(node.ServerID(0), big); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sb.count() == 1 })
}

func TestTCPManyConcurrentSends(t *testing.T) {
	a, _, _, sb := newPair(t)
	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := a.Send(node.ServerID(0), &msg.Notify{Iter: int64(i)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	waitFor(t, func() bool { return sb.count() == n })
}

func TestTCPUnknownPeer(t *testing.T) {
	a, _, _, _ := newPair(t)
	if err := a.Send(node.WorkerID(42), &msg.Notify{}); err == nil {
		t.Error("expected no-address error")
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	a, _, _, _ := newPair(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(node.ServerID(0), &msg.Notify{}); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestTCPDialFailure(t *testing.T) {
	s := &sink{}
	a, err := ListenTCP(TCPConfig{
		ID: node.WorkerID(0), Registry: msg.Registry(), OnMessage: s.on,
		DialTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.AddPeer(node.ServerID(0), "127.0.0.1:1") // nothing listens there
	if err := a.Send(node.ServerID(0), &msg.Notify{}); err == nil {
		t.Error("expected dial error")
	}
}

func TestTCPTransferRecorded(t *testing.T) {
	var bytes atomic.Int64
	rec := recorderFunc(func(from, to node.ID, kind wire.Kind, n int, at time.Time) {
		bytes.Add(int64(n))
	})
	s := &sink{}
	b, err := ListenTCP(TCPConfig{
		ID: node.ServerID(0), ListenAddr: "127.0.0.1:0",
		Registry: msg.Registry(), OnMessage: s.on,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := ListenTCP(TCPConfig{
		ID: node.WorkerID(0), Registry: msg.Registry(), OnMessage: s.on,
		Transfer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.AddPeer(node.ServerID(0), b.Addr())
	if err := a.Send(node.ServerID(0), &msg.Notify{Iter: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.count() == 1 })
	if bytes.Load() == 0 {
		t.Error("transfer not recorded")
	}
}

type recorderFunc func(from, to node.ID, kind wire.Kind, n int, at time.Time)

func (f recorderFunc) RecordTransfer(from, to node.ID, kind wire.Kind, n int, at time.Time) {
	f(from, to, kind, n, at)
}
