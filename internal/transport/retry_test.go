package transport

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/wire"
)

func testRegistry() *wire.Registry { return msg.Registry() }

func testMsg(seq int) wire.Message { return &msg.Heartbeat{Iter: int64(seq)} }

// TestSendRetriesAcrossRestart kills the receiving endpoint mid-run and
// brings a replacement up on the same address; a retrying sender must ride
// through the outage, and the retry hook must observe the failed attempts.
func TestSendRetriesAcrossRestart(t *testing.T) {
	reg := testRegistry()

	var got atomic.Int64
	onMsg := func(from node.ID, m wire.Message) { got.Add(1) }

	recv, err := ListenTCP(TCPConfig{
		ID: node.ServerID(0), ListenAddr: "127.0.0.1:0",
		Registry: reg, OnMessage: onMsg,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := recv.Addr()

	var retries atomic.Int64
	var retryErrs sync.Map
	send, err := ListenTCP(TCPConfig{
		ID:       node.WorkerID(0),
		Peers:    map[node.ID]string{node.ServerID(0): addr},
		Registry: reg,
		OnMessage: func(node.ID, wire.Message) {},
		MaxAttempts:  8,
		RetryBackoff: 10 * time.Millisecond,
		MaxBackoff:   80 * time.Millisecond,
		OnRetry: func(to node.ID, attempt int, err error) {
			retries.Add(1)
			retryErrs.Store(attempt, err)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	if err := send.Send(node.ServerID(0), testMsg(1)); err != nil {
		t.Fatalf("initial send: %v", err)
	}
	waitFor(t, func() bool { return got.Load() == 1 })

	// Kill the receiver; the sender's cached conn goes stale.
	recv.Close()

	// A write to a freshly closed peer can succeed locally before the RST
	// arrives, so probe the dead conn first (the message is lost either
	// way — the listener is down) and give the RST time to land.
	_ = send.Send(node.ServerID(0), testMsg(99))
	time.Sleep(30 * time.Millisecond)

	// Re-listen on the same address after a short outage window.
	errCh := make(chan error, 1)
	var recv2 *TCP
	go func() {
		time.Sleep(100 * time.Millisecond)
		var err error
		recv2, err = ListenTCP(TCPConfig{
			ID: node.ServerID(0), ListenAddr: addr,
			Registry: reg, OnMessage: onMsg,
		})
		errCh <- err
	}()

	// This send first fails on the dead conn, then retries (re-dialing)
	// until the replacement is listening.
	if err := send.Send(node.ServerID(0), testMsg(2)); err != nil {
		t.Fatalf("send across restart: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("re-listen: %v", err)
	}
	defer recv2.Close()

	if retries.Load() == 0 {
		t.Error("no retries recorded across the outage")
	}

	deadline := time.Now().Add(2 * time.Second)
	for got.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := got.Load(); n < 2 {
		t.Errorf("received %d messages, want >= 2", n)
	}
}

// TestSendNoRetryAfterClose verifies retries stop immediately at ErrClosed.
func TestSendNoRetryAfterClose(t *testing.T) {
	reg := testRegistry()
	send, err := ListenTCP(TCPConfig{
		ID:           node.WorkerID(1),
		Peers:        map[node.ID]string{node.ServerID(0): "127.0.0.1:1"},
		Registry:     reg,
		OnMessage:    func(node.ID, wire.Message) {},
		MaxAttempts:  5,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	send.Close()
	start := time.Now()
	if err := send.Send(node.ServerID(0), testMsg(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after Close = %v, want ErrClosed", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("Send after Close appears to have retried")
	}
}

// TestSendBoundedRetries verifies the attempt budget is respected when the
// peer never comes up.
func TestSendBoundedRetries(t *testing.T) {
	reg := testRegistry()
	var retries atomic.Int64
	send, err := ListenTCP(TCPConfig{
		ID:           node.WorkerID(2),
		Peers:        map[node.ID]string{node.ServerID(0): "127.0.0.1:1"}, // nothing listens
		Registry:     reg,
		OnMessage:    func(node.ID, wire.Message) {},
		MaxAttempts:  3,
		RetryBackoff: time.Millisecond,
		DialTimeout:  200 * time.Millisecond,
		OnRetry:      func(node.ID, int, error) { retries.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	if err := send.Send(node.ServerID(0), testMsg(1)); err == nil {
		t.Error("send to dead address succeeded")
	}
	if n := retries.Load(); n != 2 {
		t.Errorf("retried %d times, want 2 (3 attempts)", n)
	}
}
