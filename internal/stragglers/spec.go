package stragglers

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// DefaultPauseDuration is used by the spec grammar when a pause episode
// omits its length (`pause:3@10s`).
const DefaultPauseDuration = 10 * time.Second

// ParseSpecs builds a plan from the compact CLI/sweep grammar: a comma list
// of episode specs.
//
//	pause:<worker>@<at>[+<duration>]   pause:3@10s      pause:3@10s+30s
//	degrade:<worker>x<speed>[@<at>]    degrade:2x0.4    degrade:2x0.4@30s
//	congest:<worker>x<speed>[@<at>]    congest:1x0.25
//	rack:<lo>-<hi>x<speed>[@<at>]      rack:0-3x0.5     rack:0-3x0.5@1m
//
// Speeds are relative in (0,1); times are Go durations from run start. A
// pause without an explicit +duration lasts DefaultPauseDuration.
func ParseSpecs(s string) (*Plan, error) {
	p := &Plan{}
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		kind, rest, ok := strings.Cut(tok, ":")
		if !ok {
			return nil, fmt.Errorf("stragglers: spec %q: want kind:args", tok)
		}
		var ev Event
		var err error
		switch Kind(kind) {
		case KindPause:
			ev, err = parsePauseSpec(rest)
		case KindDegrade, KindCongest:
			ev, err = parseSlowSpec(Kind(kind), rest)
		case KindRack:
			ev, err = parseRackSpec(rest)
		default:
			err = fmt.Errorf("unknown kind %q", kind)
		}
		if err != nil {
			return nil, fmt.Errorf("stragglers: spec %q: %w", tok, err)
		}
		p.Events = append(p.Events, ev)
	}
	if len(p.Events) == 0 {
		return nil, fmt.Errorf("stragglers: empty spec")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// parsePauseSpec parses "<worker>@<at>[+<duration>]".
func parsePauseSpec(s string) (Event, error) {
	w, rest, ok := strings.Cut(s, "@")
	if !ok {
		return Event{}, fmt.Errorf("pause wants <worker>@<at>")
	}
	worker, err := strconv.Atoi(w)
	if err != nil {
		return Event{}, fmt.Errorf("worker: %w", err)
	}
	atStr, durStr, hasDur := strings.Cut(rest, "+")
	at, err := time.ParseDuration(atStr)
	if err != nil {
		return Event{}, fmt.Errorf("at: %w", err)
	}
	dur := DefaultPauseDuration
	if hasDur {
		if dur, err = time.ParseDuration(durStr); err != nil {
			return Event{}, fmt.Errorf("duration: %w", err)
		}
	}
	return Event{Kind: KindPause, Worker: worker, At: at, Duration: dur}, nil
}

// parseSlowSpec parses "<worker>x<speed>[@<at>]" for degrade and congest.
func parseSlowSpec(kind Kind, s string) (Event, error) {
	body, at, err := splitAt(s)
	if err != nil {
		return Event{}, err
	}
	w, sp, ok := strings.Cut(body, "x")
	if !ok {
		return Event{}, fmt.Errorf("%s wants <worker>x<speed>", kind)
	}
	worker, err := strconv.Atoi(w)
	if err != nil {
		return Event{}, fmt.Errorf("worker: %w", err)
	}
	speed, err := strconv.ParseFloat(sp, 64)
	if err != nil {
		return Event{}, fmt.Errorf("speed: %w", err)
	}
	return Event{Kind: kind, Worker: worker, Speed: speed, At: at}, nil
}

// parseRackSpec parses "<lo>-<hi>x<speed>[@<at>]".
func parseRackSpec(s string) (Event, error) {
	body, at, err := splitAt(s)
	if err != nil {
		return Event{}, err
	}
	rng, sp, ok := strings.Cut(body, "x")
	if !ok {
		return Event{}, fmt.Errorf("rack wants <lo>-<hi>x<speed>")
	}
	loStr, hiStr, ok := strings.Cut(rng, "-")
	if !ok {
		return Event{}, fmt.Errorf("rack wants a <lo>-<hi> worker range")
	}
	lo, err := strconv.Atoi(loStr)
	if err != nil {
		return Event{}, fmt.Errorf("range lo: %w", err)
	}
	hi, err := strconv.Atoi(hiStr)
	if err != nil {
		return Event{}, fmt.Errorf("range hi: %w", err)
	}
	if hi < lo {
		return Event{}, fmt.Errorf("rack range %d-%d is backwards", lo, hi)
	}
	speed, err := strconv.ParseFloat(sp, 64)
	if err != nil {
		return Event{}, fmt.Errorf("speed: %w", err)
	}
	ev := Event{Kind: KindRack, Speed: speed, At: at}
	for w := lo; w <= hi; w++ {
		ev.Workers = append(ev.Workers, w)
	}
	return ev, nil
}

// splitAt peels an optional trailing "@<at>" off a spec body.
func splitAt(s string) (body string, at time.Duration, err error) {
	body, atStr, ok := strings.Cut(s, "@")
	if !ok {
		return s, 0, nil
	}
	at, err = time.ParseDuration(atStr)
	if err != nil {
		return "", 0, fmt.Errorf("at: %w", err)
	}
	return body, at, nil
}
