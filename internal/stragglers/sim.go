package stragglers

import (
	"specsync/internal/des"
)

// AttachSim arms a plan's network-side episodes on a simulation: congest
// profiles install the deterministic link-penalty hook. Compute-side
// episodes (pause, degrade, rack) do not touch the simulator at all — they
// compile into per-worker speed scripts (Plan.Scripts) that cluster.Run
// hands to the workers, so the same plan drives the DES and live runtimes
// identically. An empty plan installs nothing and leaves the simulation
// byte-identical.
func AttachSim(sim *des.Sim, p *Plan) error {
	if p.Empty() {
		return nil
	}
	if err := p.Validate(); err != nil {
		return err
	}
	if lp := p.LinkPenalty(); lp != nil {
		sim.SetLinkPenalty(lp)
	}
	return nil
}
