package stragglers

import (
	"time"

	"specsync/internal/live"
	"specsync/internal/node"
	"specsync/internal/wire"
)

// LiveHook translates a plan's congest episodes into a live.FaultHook: a
// message to or from a congested worker during an active window is held for
// perMsg × (multiplier − 1) extra latency, approximating the simulator's
// bandwidth-scaling penalty on a runtime with no explicit bandwidth model.
// perMsg is the nominal per-message transfer time of the deployment (e.g.
// the observed median push latency). start anchors the plan's offsets to
// wall-clock run start. Returns nil when the plan has no congest episodes.
//
// Compute-side episodes need no hook on the live path either: worker speed
// scripts (Plan.Scripts) measure their windows from the worker's own Init
// time, which under the live runtime is wall clock.
func LiveHook(p *Plan, start time.Time, perMsg time.Duration) live.FaultHook {
	if p.Empty() || !p.HasCongest() || perMsg <= 0 {
		return nil
	}
	penalty := p.LinkPenalty()
	return func(from, to node.ID, kind wire.Kind) live.FaultAction {
		mult := penalty(from, to, time.Since(start))
		if mult <= 1 {
			return live.FaultAction{}
		}
		return live.FaultAction{Delay: time.Duration(float64(perMsg) * (mult - 1))}
	}
}
