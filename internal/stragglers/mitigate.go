package stragglers

import (
	"fmt"
	"sort"
)

// Mitigation selects the scheduler's response to detected stragglers.
type Mitigation string

const (
	// MitigateNone runs the profile unmitigated (the baseline cells of the
	// stragglers matrix).
	MitigateNone Mitigation = ""
	// MitigateClone is backup-worker task cloning: the scheduler mirrors a
	// flagged worker's iteration stream onto a spare worker; first ack wins
	// and the parameter servers dedup the loser's push by (worker, iter),
	// so the model digest is unaffected by who wins.
	MitigateClone Mitigation = "clone"
	// MitigateRebalance is straggler-triggered elastic rebalancing: the
	// sustained-straggler telemetry synthesizes an elastic scale command —
	// retire the straggler, admit a healthy spare — instead of only a
	// scheme switch.
	MitigateRebalance Mitigation = "rebalance"
)

// ParseMitigation parses the CLI -mitigate value.
func ParseMitigation(s string) (Mitigation, error) {
	switch Mitigation(s) {
	case MitigateNone, MitigateClone, MitigateRebalance:
		return Mitigation(s), nil
	case "none":
		return MitigateNone, nil
	default:
		return "", fmt.Errorf("stragglers: unknown mitigation %q (want clone, rebalance, or none)", s)
	}
}

// Validate rejects unknown mitigation values from config structs.
func (m Mitigation) Validate() error {
	switch m {
	case MitigateNone, MitigateClone, MitigateRebalance:
		return nil
	}
	return fmt.Errorf("stragglers: unknown mitigation %q", string(m))
}

// Score validates the straggler detector against a plan's ground truth: the
// plan knows which workers were actually slowed, the detector reports which
// it flagged as sustained stragglers at any point in the run.
type Score struct {
	// Truth is the sorted set of workers the plan slowed.
	Truth []int `json:"truth"`
	// Detected is the sorted set of workers the detector ever held at
	// sustained level (including scheduler-forced overdue flags).
	Detected []int `json:"detected"`

	TruePositives  int `json:"true_positives"`
	FalsePositives int `json:"false_positives"`
	FalseNegatives int `json:"false_negatives"`

	// Precision = TP/(TP+FP), Recall = TP/(TP+FN); both 1 when the truth
	// and detected sets are empty (nothing to find, nothing falsely found).
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
}

// ScoreDetection computes detector precision/recall for a truth set.
func ScoreDetection(truth, detected []int) Score {
	t := map[int]bool{}
	for _, w := range truth {
		t[w] = true
	}
	d := map[int]bool{}
	for _, w := range detected {
		d[w] = true
	}
	s := Score{
		Truth:    sortedSet(t),
		Detected: sortedSet(d),
	}
	for w := range d {
		if t[w] {
			s.TruePositives++
		} else {
			s.FalsePositives++
		}
	}
	for w := range t {
		if !d[w] {
			s.FalseNegatives++
		}
	}
	if s.TruePositives+s.FalsePositives == 0 {
		s.Precision = 1
	} else {
		s.Precision = float64(s.TruePositives) / float64(s.TruePositives+s.FalsePositives)
	}
	if s.TruePositives+s.FalseNegatives == 0 {
		s.Recall = 1
	} else {
		s.Recall = float64(s.TruePositives) / float64(s.TruePositives+s.FalseNegatives)
	}
	return s
}

func sortedSet(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for w := range m {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}
