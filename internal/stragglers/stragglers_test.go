package stragglers

import (
	"reflect"
	"testing"
	"time"

	"specsync/internal/node"
	"specsync/internal/worker"
)

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
		ok   bool
	}{
		{"pause ok", Event{Kind: KindPause, Worker: 1, At: time.Second, Duration: 5 * time.Second}, true},
		{"pause needs duration", Event{Kind: KindPause, Worker: 1, At: time.Second}, false},
		{"degrade ok", Event{Kind: KindDegrade, Worker: 0, Speed: 0.5}, true},
		{"degrade speed 0", Event{Kind: KindDegrade, Worker: 0, Speed: 0}, false},
		{"degrade speed 1", Event{Kind: KindDegrade, Worker: 0, Speed: 1}, false},
		{"congest ok", Event{Kind: KindCongest, Worker: 2, Speed: 0.25, At: time.Minute}, true},
		{"rack ok", Event{Kind: KindRack, Workers: []int{0, 1, 2}, Speed: 0.5}, true},
		{"rack empty group", Event{Kind: KindRack, Speed: 0.5}, false},
		{"rack negative member", Event{Kind: KindRack, Workers: []int{0, -1}, Speed: 0.5}, false},
		{"negative at", Event{Kind: KindDegrade, Worker: 0, Speed: 0.5, At: -time.Second}, false},
		{"negative worker", Event{Kind: KindDegrade, Worker: -1, Speed: 0.5}, false},
		{"unknown kind", Event{Kind: "melt", Worker: 0, Speed: 0.5}, false},
	}
	for _, c := range cases {
		p := &Plan{Events: []Event{c.ev}}
		if err := p.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestPlanJSONRoundtrip(t *testing.T) {
	p := &Plan{Seed: 3, Events: []Event{
		{Kind: KindPause, Worker: 3, At: 10 * time.Second, Duration: 30 * time.Second},
		{Kind: KindRack, Workers: []int{0, 1}, Speed: 0.5, At: time.Minute},
	}}
	data, err := p.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatalf("ParseJSON: %v", err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Errorf("roundtrip drift:\n in: %+v\nout: %+v", p, back)
	}
	if _, err := ParseJSON([]byte(`{"events":[{"kind":"pause","worker":1,"durration":5}]}`)); err == nil {
		t.Error("misspelled field accepted; want an unknown-field error")
	}
	if _, err := ParseJSON([]byte(`{"events":[{"kind":"degrade","worker":0,"speed":2}]}`)); err == nil {
		t.Error("invalid plan accepted by ParseJSON")
	}
}

func TestPlanTargetsAndMaxWorker(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: KindDegrade, Worker: 2, Speed: 0.5},
		{Kind: KindRack, Workers: []int{5, 1, 2}, Speed: 0.5},
		{Kind: KindCongest, Worker: 0, Speed: 0.5},
	}}
	if got := p.Targets(); !reflect.DeepEqual(got, []int{0, 1, 2, 5}) {
		t.Errorf("Targets() = %v", got)
	}
	if got := p.MaxWorker(); got != 5 {
		t.Errorf("MaxWorker() = %d, want 5", got)
	}
	var nilPlan *Plan
	if got := nilPlan.MaxWorker(); got != -1 {
		t.Errorf("nil MaxWorker() = %d, want -1", got)
	}
	if nilPlan.Targets() != nil {
		t.Error("nil Targets() non-nil")
	}
	if !nilPlan.Empty() || !(&Plan{}).Empty() {
		t.Error("nil/zero plan not Empty")
	}
}

func TestPlanScripts(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: KindPause, Worker: 1, At: 10 * time.Second, Duration: 5 * time.Second},
		{Kind: KindDegrade, Worker: 2, At: time.Second, Speed: 0.5},
		{Kind: KindCongest, Worker: 0, Speed: 0.25}, // network-side only
		{Kind: KindRack, Workers: []int{0, 3}, At: time.Minute, Duration: time.Minute, Speed: 0.2},
	}}
	scripts, err := p.Scripts(4)
	if err != nil {
		t.Fatalf("Scripts: %v", err)
	}
	if len(scripts) != 4 {
		t.Fatalf("got %d scripts, want 4", len(scripts))
	}
	// Worker 0: only the rack window (congest contributes nothing).
	want0 := []worker.SpeedWindow{{From: time.Minute, Until: 2 * time.Minute, Factor: 5}}
	if !reflect.DeepEqual(scripts[0], want0) {
		t.Errorf("worker 0 script %+v, want %+v", scripts[0], want0)
	}
	want1 := []worker.SpeedWindow{{From: 10 * time.Second, Until: 15 * time.Second, Pause: true}}
	if !reflect.DeepEqual(scripts[1], want1) {
		t.Errorf("worker 1 script %+v, want %+v", scripts[1], want1)
	}
	// Worker 2: open-ended degrade (Until zero), factor 1/speed.
	want2 := []worker.SpeedWindow{{From: time.Second, Factor: 2}}
	if !reflect.DeepEqual(scripts[2], want2) {
		t.Errorf("worker 2 script %+v, want %+v", scripts[2], want2)
	}

	if _, err := p.Scripts(3); err == nil {
		t.Error("plan targeting worker 3 accepted for a 3-worker cluster")
	}
	empty, err := (&Plan{}).Scripts(2)
	if err != nil {
		t.Fatalf("empty Scripts: %v", err)
	}
	for i, s := range empty {
		if s != nil {
			t.Errorf("empty plan produced a script for worker %d", i)
		}
	}
}

func TestLinkPenalty(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: KindCongest, Worker: 1, At: 10 * time.Second, Duration: 10 * time.Second, Speed: 0.5},
		{Kind: KindCongest, Worker: 1, At: 15 * time.Second, Speed: 0.25}, // overlapping, open-ended
	}}
	pen := p.LinkPenalty()
	if pen == nil {
		t.Fatal("nil penalty for a congest plan")
	}
	w1, srv := node.WorkerID(1), node.ServerID(0)
	cases := []struct {
		from, to node.ID
		at       time.Duration
		want     float64
	}{
		{w1, srv, 5 * time.Second, 1},              // before the window
		{w1, srv, 12 * time.Second, 2},             // first episode only
		{srv, w1, 12 * time.Second, 2},             // direction-agnostic
		{w1, srv, 16 * time.Second, 8},             // overlap composes: 2 * 4
		{w1, srv, 25 * time.Second, 4},             // first closed, open-ended persists
		{node.WorkerID(2), srv, 16 * time.Second, 1}, // untouched link
	}
	for _, c := range cases {
		if got := pen(c.from, c.to, c.at); got != c.want {
			t.Errorf("pen(%v→%v @%v) = %v, want %v", c.from, c.to, c.at, got, c.want)
		}
	}
	if (&Plan{Events: []Event{{Kind: KindDegrade, Worker: 0, Speed: 0.5}}}).LinkPenalty() != nil {
		t.Error("compute-only plan returned a link penalty hook")
	}
}

func TestParseSpecs(t *testing.T) {
	p, err := ParseSpecs("pause:3@10s, degrade:2x0.4@30s, congest:1x0.25, rack:0-3x0.5@1m")
	if err != nil {
		t.Fatalf("ParseSpecs: %v", err)
	}
	want := []Event{
		{Kind: KindPause, Worker: 3, At: 10 * time.Second, Duration: DefaultPauseDuration},
		{Kind: KindDegrade, Worker: 2, Speed: 0.4, At: 30 * time.Second},
		{Kind: KindCongest, Worker: 1, Speed: 0.25},
		{Kind: KindRack, Workers: []int{0, 1, 2, 3}, Speed: 0.5, At: time.Minute},
	}
	if !reflect.DeepEqual(p.Events, want) {
		t.Errorf("events\n got %+v\nwant %+v", p.Events, want)
	}
	if p, err := ParseSpecs("pause:0@5s+45s"); err != nil || p.Events[0].Duration != 45*time.Second {
		t.Errorf("explicit pause duration: %+v, %v", p, err)
	}
	for _, bad := range []string{
		"", "pause:3", "pause:x@10s", "degrade:2", "degrade:2x1.5", "rack:3-0x0.5",
		"rack:0-2", "melt:1x0.5", "degrade:2x0.4@nonsense",
	} {
		if _, err := ParseSpecs(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestParseMitigation(t *testing.T) {
	for s, want := range map[string]Mitigation{
		"": MitigateNone, "none": MitigateNone, "clone": MitigateClone, "rebalance": MitigateRebalance,
	} {
		got, err := ParseMitigation(s)
		if err != nil || got != want {
			t.Errorf("ParseMitigation(%q) = %q, %v", s, got, err)
		}
	}
	if _, err := ParseMitigation("retry"); err == nil {
		t.Error("unknown mitigation accepted")
	}
	if err := Mitigation("retry").Validate(); err == nil {
		t.Error("unknown mitigation validated")
	}
}

func TestScoreDetection(t *testing.T) {
	s := ScoreDetection([]int{1, 3}, []int{3, 2})
	if s.TruePositives != 1 || s.FalsePositives != 1 || s.FalseNegatives != 1 {
		t.Errorf("tp/fp/fn = %d/%d/%d", s.TruePositives, s.FalsePositives, s.FalseNegatives)
	}
	if s.Precision != 0.5 || s.Recall != 0.5 {
		t.Errorf("precision %v recall %v, want 0.5/0.5", s.Precision, s.Recall)
	}
	if !reflect.DeepEqual(s.Truth, []int{1, 3}) || !reflect.DeepEqual(s.Detected, []int{2, 3}) {
		t.Errorf("sets %v / %v", s.Truth, s.Detected)
	}
	if s := ScoreDetection(nil, nil); s.Precision != 1 || s.Recall != 1 {
		t.Errorf("empty-set score %+v, want perfect", s)
	}
	if s := ScoreDetection(nil, []int{0}); s.Precision != 0 || s.Recall != 1 {
		t.Errorf("false-alarm score %+v", s)
	}
	if s := ScoreDetection([]int{0}, nil); s.Precision != 1 || s.Recall != 0 {
		t.Errorf("miss score %+v", s)
	}
}
