// Package stragglers implements declarative straggler scenarios and the
// mitigation knobs measured against them: seedable plans of compute pauses,
// sustained degradation, link congestion, and correlated rack-level
// slowdowns — the real-world slowdown modes the Wong straggler study
// catalogs and the lognormal compute-jitter knob cannot express.
//
// A Plan is pure data (JSON-serializable). It compiles into two deterministic
// artifacts: per-worker compute-speed scripts (worker.SpeedWindow lists,
// consumed identically by the simulator and the live runtime) and a link
// penalty function (a pure multiplier on per-link transfer time, installed
// into the DES network model). Neither draws randomness, so an empty plan
// leaves runs byte-identical and a non-empty plan is bit-for-bit
// reproducible.
//
// The package also names the two mitigations the scheduler can deploy against
// an active profile — backup-worker task cloning and straggler-triggered
// elastic rebalancing — and scores the straggler detector against the plan's
// ground truth (which workers were actually slowed).
package stragglers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"specsync/internal/node"
	"specsync/internal/worker"
)

// Kind enumerates the straggler profile types.
type Kind string

const (
	// KindPause freezes worker Worker's compute for Duration starting at At
	// (a transient GC / disk / preemption stall). Iterations that would
	// begin inside the window start when it closes.
	KindPause Kind = "pause"
	// KindDegrade runs worker Worker at Speed (relative, in (0,1)) from At
	// for Duration (zero Duration = rest of run) — sustained degradation
	// such as thermal throttling or a noisy neighbor.
	KindDegrade Kind = "degrade"
	// KindCongest multiplies the transfer time of every message to or from
	// worker Worker by 1/Speed during the window — a congested or
	// flapping link rather than a slow CPU.
	KindCongest Kind = "congest"
	// KindRack degrades every worker in Workers to Speed during the window —
	// a correlated rack- or switch-level slowdown.
	KindRack Kind = "rack"
)

// Event is one scheduled straggler episode.
type Event struct {
	// Kind selects the profile type.
	Kind Kind `json:"kind"`
	// At is the episode's offset from run start.
	At time.Duration `json:"at"`
	// Duration bounds the episode; zero means it never ends (not allowed
	// for pause, which must eventually release the worker).
	Duration time.Duration `json:"duration,omitempty"`
	// Worker is the target worker index (pause, degrade, congest).
	Worker int `json:"worker"`
	// Workers is the correlated group (rack).
	Workers []int `json:"workers,omitempty"`
	// Speed is the relative speed while the episode is active, in (0,1)
	// (degrade, congest, rack). A worker at Speed 0.5 takes twice as long.
	Speed float64 `json:"speed,omitempty"`
}

// window returns the episode's [from, until) window; until is zero for an
// open-ended episode.
func (ev Event) window() (from, until time.Duration) {
	if ev.Duration <= 0 {
		return ev.At, 0
	}
	return ev.At, ev.At + ev.Duration
}

// targets returns the worker indices the event slows.
func (ev Event) targets() []int {
	if ev.Kind == KindRack {
		return ev.Workers
	}
	return []int{ev.Worker}
}

// Plan is a deterministic straggler schedule.
type Plan struct {
	// Seed is reserved for seeded generators; the four profile kinds are
	// fully declarative and draw no randomness.
	Seed int64 `json:"seed"`
	// Events is the episode schedule; order does not matter.
	Events []Event `json:"events"`
}

// Empty reports whether the plan injects nothing (nil-equivalent: runs stay
// byte-identical to a plan-free run).
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// Validate reports structural errors in the plan.
func (p *Plan) Validate() error {
	for i, ev := range p.Events {
		if ev.At < 0 {
			return fmt.Errorf("stragglers: event %d: negative At %v", i, ev.At)
		}
		if ev.Duration < 0 {
			return fmt.Errorf("stragglers: event %d: negative Duration %v", i, ev.Duration)
		}
		switch ev.Kind {
		case KindPause:
			if ev.Worker < 0 {
				return fmt.Errorf("stragglers: event %d: negative worker index", i)
			}
			if ev.Duration <= 0 {
				return fmt.Errorf("stragglers: event %d: pause needs a positive Duration", i)
			}
		case KindDegrade, KindCongest:
			if ev.Worker < 0 {
				return fmt.Errorf("stragglers: event %d: negative worker index", i)
			}
			if ev.Speed <= 0 || ev.Speed >= 1 {
				return fmt.Errorf("stragglers: event %d: speed %v outside (0,1)", i, ev.Speed)
			}
		case KindRack:
			if len(ev.Workers) == 0 {
				return fmt.Errorf("stragglers: event %d: rack needs a worker group", i)
			}
			for _, w := range ev.Workers {
				if w < 0 {
					return fmt.Errorf("stragglers: event %d: negative worker index in group", i)
				}
			}
			if ev.Speed <= 0 || ev.Speed >= 1 {
				return fmt.Errorf("stragglers: event %d: speed %v outside (0,1)", i, ev.Speed)
			}
		default:
			return fmt.Errorf("stragglers: event %d: unknown kind %q", i, ev.Kind)
		}
	}
	return nil
}

// MaxWorker returns the highest worker index any event references, or -1 for
// an empty plan.
func (p *Plan) MaxWorker() int {
	max := -1
	if p == nil {
		return max
	}
	for _, ev := range p.Events {
		for _, w := range ev.targets() {
			if w > max {
				max = w
			}
		}
	}
	return max
}

// Targets returns the plan's ground truth: the sorted set of worker indices
// it slows (by any kind). The detector scorer compares this against the set
// of workers the straggler detector flagged.
func (p *Plan) Targets() []int {
	if p == nil {
		return nil
	}
	seen := map[int]bool{}
	var out []int
	for _, ev := range p.Events {
		for _, w := range ev.targets() {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
	}
	sort.Ints(out)
	return out
}

// HasCongest reports whether the plan needs the network link-penalty hook.
func (p *Plan) HasCongest() bool {
	if p == nil {
		return false
	}
	for _, ev := range p.Events {
		if ev.Kind == KindCongest {
			return true
		}
	}
	return false
}

// JSON serializes the plan; ParseJSON is the inverse. Durations serialize as
// nanosecond integers.
func (p *Plan) JSON() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// ParseJSON decodes and validates a plan, rejecting unknown fields (a
// misspelled "duration" silently turning a transient pause into a permanent
// one is too easy otherwise).
func ParseJSON(data []byte) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("stragglers: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Scripts compiles the plan's compute episodes (pause, degrade, rack) into
// per-worker speed scripts for the given cluster size. Congest events
// contribute nothing here — they live in LinkPenalty. The returned slice has
// one (possibly nil) script per worker; an empty plan returns all-nil
// scripts.
func (p *Plan) Scripts(workers int) ([][]worker.SpeedWindow, error) {
	out := make([][]worker.SpeedWindow, workers)
	if p.Empty() {
		return out, nil
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if mw := p.MaxWorker(); mw >= workers {
		return nil, fmt.Errorf("stragglers: plan targets worker %d but the cluster has %d", mw, workers)
	}
	for _, ev := range p.Events {
		from, until := ev.window()
		var win worker.SpeedWindow
		switch ev.Kind {
		case KindPause:
			win = worker.SpeedWindow{From: from, Until: until, Pause: true}
		case KindDegrade, KindRack:
			win = worker.SpeedWindow{From: from, Until: until, Factor: 1 / ev.Speed}
		default: // congest: network-side only
			continue
		}
		for _, w := range ev.targets() {
			out[w] = append(out[w], win)
		}
	}
	return out, nil
}

// LinkPenalty compiles the plan's congest episodes into a pure transfer-time
// multiplier: messages to or from a congested worker during an active window
// take 1/Speed times as long on the wire. Returns nil when the plan has no
// congest events, so the network model's hot path stays untouched.
// Overlapping episodes on the same link compose multiplicatively.
func (p *Plan) LinkPenalty() func(from, to node.ID, elapsed time.Duration) float64 {
	if p.Empty() || !p.HasCongest() {
		return nil
	}
	type slow struct {
		id          node.ID
		from, until time.Duration
		mult        float64
	}
	var slows []slow
	for _, ev := range p.Events {
		if ev.Kind != KindCongest {
			continue
		}
		f, u := ev.window()
		slows = append(slows, slow{id: node.WorkerID(ev.Worker), from: f, until: u, mult: 1 / ev.Speed})
	}
	return func(from, to node.ID, elapsed time.Duration) float64 {
		mult := 1.0
		for _, s := range slows {
			if from != s.id && to != s.id {
				continue
			}
			if elapsed < s.from || (s.until > 0 && elapsed >= s.until) {
				continue
			}
			mult *= s.mult
		}
		return mult
	}
}
