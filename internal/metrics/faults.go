package metrics

import (
	"fmt"
	"io"
	"sync"

	"specsync/internal/wire"
)

// Faults accumulates fault-injection and recovery counters: injected message
// faults (drops, duplicates, delays) with the same message-class accounting
// as Transfer, transport-level send retries, scheduler membership churn
// (evictions, readmissions), and checkpoint activity. It is safe for
// concurrent use; the live TCP stack records from multiple goroutines.
type Faults struct {
	mu      sync.Mutex
	drops   map[wire.Kind]int64
	dups    map[wire.Kind]int64
	delays  map[wire.Kind]int64
	classOf func(wire.Kind) bool // true = control (as in NewTransfer)

	retries     int64
	crashes     int64
	restarts    int64
	evictions   int64
	readmits    int64
	checkpoints int64
	restores    int64

	sendFailures     int64
	schedCrashes     int64
	schedRestarts    int64
	schedRestores    int64
	stateReports     int64
	degradedEnters   int64
	degradedRecovers int64

	lostPushes int64
	promotions int64
	elections  int64
}

// NewFaults builds a Faults counter set; isControl classifies message kinds
// into control vs data traffic (use msg.IsControl), matching Transfer.
func NewFaults(isControl func(wire.Kind) bool) *Faults {
	return &Faults{
		drops:   make(map[wire.Kind]int64),
		dups:    make(map[wire.Kind]int64),
		delays:  make(map[wire.Kind]int64),
		classOf: isControl,
	}
}

// RecordDrop counts one injected (or fault-induced) message drop. Recording
// on a nil *Faults is a no-op so call sites need no guards.
func (f *Faults) RecordDrop(kind wire.Kind) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.drops[kind]++
	f.mu.Unlock()
}

// RecordDuplicate counts one injected message duplication.
func (f *Faults) RecordDuplicate(kind wire.Kind) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.dups[kind]++
	f.mu.Unlock()
}

// RecordDelay counts one injected message delay (reordering).
func (f *Faults) RecordDelay(kind wire.Kind) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.delays[kind]++
	f.mu.Unlock()
}

// RecordRetry counts one transport send retry.
func (f *Faults) RecordRetry() {
	if f != nil {
		f.add(&f.retries)
	}
}

// RecordCrash counts one injected node crash.
func (f *Faults) RecordCrash() {
	if f != nil {
		f.add(&f.crashes)
	}
}

// RecordRestart counts one node restart after a crash.
func (f *Faults) RecordRestart() {
	if f != nil {
		f.add(&f.restarts)
	}
}

// RecordEviction counts one scheduler liveness eviction.
func (f *Faults) RecordEviction() {
	if f != nil {
		f.add(&f.evictions)
	}
}

// RecordReadmission counts one scheduler readmission of a returned worker.
func (f *Faults) RecordReadmission() {
	if f != nil {
		f.add(&f.readmits)
	}
}

// RecordCheckpoint counts one completed shard checkpoint.
func (f *Faults) RecordCheckpoint() {
	if f != nil {
		f.add(&f.checkpoints)
	}
}

// RecordRestore counts one checkpoint restore on restart.
func (f *Faults) RecordRestore() {
	if f != nil {
		f.add(&f.restores)
	}
}

// RecordSendFailure counts one message lost after the transport exhausted
// its send retries (live mode).
func (f *Faults) RecordSendFailure() {
	if f != nil {
		f.add(&f.sendFailures)
	}
}

// RecordSchedulerCrash counts one injected scheduler crash (also counted in
// the generic crash total).
func (f *Faults) RecordSchedulerCrash() {
	if f != nil {
		f.mu.Lock()
		f.crashes++
		f.schedCrashes++
		f.mu.Unlock()
	}
}

// RecordSchedulerRestart counts one scheduler restart (also counted in the
// generic restart total).
func (f *Faults) RecordSchedulerRestart() {
	if f != nil {
		f.mu.Lock()
		f.restarts++
		f.schedRestarts++
		f.mu.Unlock()
	}
}

// RecordSchedulerRestore counts one scheduler checkpoint restore (also
// counted in the generic restore total).
func (f *Faults) RecordSchedulerRestore() {
	if f != nil {
		f.mu.Lock()
		f.restores++
		f.schedRestores++
		f.mu.Unlock()
	}
}

// RecordStateReport counts one worker state report consumed during a
// scheduler state rebuild.
func (f *Faults) RecordStateReport() {
	if f != nil {
		f.add(&f.stateReports)
	}
}

// RecordDegraded counts one worker entering broadcast-failover degraded mode.
func (f *Faults) RecordDegraded() {
	if f != nil {
		f.add(&f.degradedEnters)
	}
}

// RecordDegradedRecover counts one worker leaving degraded mode after the
// scheduler came back.
func (f *Faults) RecordDegradedRecover() {
	if f != nil {
		f.add(&f.degradedRecovers)
	}
}

// RecordLostPushes counts pushes irrecoverably lost by a crash: applied by
// the dead node but absent from the state its replacement restored. A
// checkpoint restore loses everything since the last snapshot; a replica
// promotion records zero — the measurable zero-loss claim.
func (f *Faults) RecordLostPushes(n int64) {
	if f == nil || n <= 0 {
		return
	}
	f.mu.Lock()
	f.lostPushes += n
	f.mu.Unlock()
}

// RecordPromotion counts one backup replica promoted to shard primary.
func (f *Faults) RecordPromotion() {
	if f != nil {
		f.add(&f.promotions)
	}
}

// RecordElection counts one scheduler standby election won.
func (f *Faults) RecordElection() {
	if f != nil {
		f.add(&f.elections)
	}
}

func (f *Faults) add(p *int64) {
	f.mu.Lock()
	*p++
	f.mu.Unlock()
}

// FaultStats is a point-in-time copy of the scalar counters.
type FaultStats struct {
	Drops, Duplicates, Delays int64
	Retries                   int64
	Crashes, Restarts         int64
	Evictions, Readmissions   int64
	Checkpoints, Restores     int64

	SendFailures                        int64
	SchedulerCrashes, SchedulerRestarts int64
	SchedulerRestores                   int64
	StateReports                        int64
	DegradedEnters, DegradedRecovers    int64

	LostPushes int64
	Promotions int64
	Elections  int64
}

// Stats returns a snapshot of every counter (drop/dup/delay totals summed
// over kinds). A nil *Faults reports zeros.
func (f *Faults) Stats() FaultStats {
	if f == nil {
		return FaultStats{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FaultStats{
		Retries:      f.retries,
		Crashes:      f.crashes,
		Restarts:     f.restarts,
		Evictions:    f.evictions,
		Readmissions: f.readmits,
		Checkpoints:  f.checkpoints,
		Restores:     f.restores,

		SendFailures:      f.sendFailures,
		SchedulerCrashes:  f.schedCrashes,
		SchedulerRestarts: f.schedRestarts,
		SchedulerRestores: f.schedRestores,
		StateReports:      f.stateReports,
		DegradedEnters:    f.degradedEnters,
		DegradedRecovers:  f.degradedRecovers,

		LostPushes: f.lostPushes,
		Promotions: f.promotions,
		Elections:  f.elections,
	}
	for _, n := range f.drops {
		st.Drops += n
	}
	for _, n := range f.dups {
		st.Duplicates += n
	}
	for _, n := range f.delays {
		st.Delays += n
	}
	return st
}

// WritePrometheus writes the fault/recovery counters in the Prometheus text
// format (register as a Registry collector). Only the counters the
// replication and recovery dashboards consume are exported; the per-kind
// drop breakdown stays internal.
func (f *Faults) WritePrometheus(w io.Writer) {
	if f == nil {
		return
	}
	st := f.Stats()
	for _, c := range []struct {
		name, help string
		v          int64
	}{
		{"specsync_crashes_total", "Injected node crashes.", st.Crashes},
		{"specsync_restarts_total", "Node restarts after crashes.", st.Restarts},
		{"specsync_restores_total", "Checkpoint restores on restart.", st.Restores},
		{"specsync_lost_pushes_total", "Pushes lost to crashes (applied but absent from the restored state). Zero under replication.", st.LostPushes},
		{"specsync_replica_promotions_total", "Backup replicas promoted to shard primary.", st.Promotions},
		{"specsync_scheduler_elections_total", "Scheduler standby elections won.", st.Elections},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v)
	}
}

// DropSplit returns dropped-message counts as (data, control) according to
// the classifier, mirroring Transfer.Split.
func (f *Faults) DropSplit() (dataMsgs, controlMsgs int64) {
	if f == nil {
		return 0, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for kind, n := range f.drops {
		if f.classOf != nil && f.classOf(kind) {
			controlMsgs += n
		} else {
			dataMsgs += n
		}
	}
	return dataMsgs, controlMsgs
}

// KindDrops returns the number of injected drops for one message kind.
func (f *Faults) KindDrops(kind wire.Kind) int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.drops[kind]
}
