package metrics

import (
	"sync"

	"specsync/internal/wire"
)

// Faults accumulates fault-injection and recovery counters: injected message
// faults (drops, duplicates, delays) with the same message-class accounting
// as Transfer, transport-level send retries, scheduler membership churn
// (evictions, readmissions), and checkpoint activity. It is safe for
// concurrent use; the live TCP stack records from multiple goroutines.
type Faults struct {
	mu      sync.Mutex
	drops   map[wire.Kind]int64
	dups    map[wire.Kind]int64
	delays  map[wire.Kind]int64
	classOf func(wire.Kind) bool // true = control (as in NewTransfer)

	retries     int64
	crashes     int64
	restarts    int64
	evictions   int64
	readmits    int64
	checkpoints int64
	restores    int64

	sendFailures     int64
	schedCrashes     int64
	schedRestarts    int64
	schedRestores    int64
	stateReports     int64
	degradedEnters   int64
	degradedRecovers int64
}

// NewFaults builds a Faults counter set; isControl classifies message kinds
// into control vs data traffic (use msg.IsControl), matching Transfer.
func NewFaults(isControl func(wire.Kind) bool) *Faults {
	return &Faults{
		drops:   make(map[wire.Kind]int64),
		dups:    make(map[wire.Kind]int64),
		delays:  make(map[wire.Kind]int64),
		classOf: isControl,
	}
}

// RecordDrop counts one injected (or fault-induced) message drop. Recording
// on a nil *Faults is a no-op so call sites need no guards.
func (f *Faults) RecordDrop(kind wire.Kind) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.drops[kind]++
	f.mu.Unlock()
}

// RecordDuplicate counts one injected message duplication.
func (f *Faults) RecordDuplicate(kind wire.Kind) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.dups[kind]++
	f.mu.Unlock()
}

// RecordDelay counts one injected message delay (reordering).
func (f *Faults) RecordDelay(kind wire.Kind) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.delays[kind]++
	f.mu.Unlock()
}

// RecordRetry counts one transport send retry.
func (f *Faults) RecordRetry() {
	if f != nil {
		f.add(&f.retries)
	}
}

// RecordCrash counts one injected node crash.
func (f *Faults) RecordCrash() {
	if f != nil {
		f.add(&f.crashes)
	}
}

// RecordRestart counts one node restart after a crash.
func (f *Faults) RecordRestart() {
	if f != nil {
		f.add(&f.restarts)
	}
}

// RecordEviction counts one scheduler liveness eviction.
func (f *Faults) RecordEviction() {
	if f != nil {
		f.add(&f.evictions)
	}
}

// RecordReadmission counts one scheduler readmission of a returned worker.
func (f *Faults) RecordReadmission() {
	if f != nil {
		f.add(&f.readmits)
	}
}

// RecordCheckpoint counts one completed shard checkpoint.
func (f *Faults) RecordCheckpoint() {
	if f != nil {
		f.add(&f.checkpoints)
	}
}

// RecordRestore counts one checkpoint restore on restart.
func (f *Faults) RecordRestore() {
	if f != nil {
		f.add(&f.restores)
	}
}

// RecordSendFailure counts one message lost after the transport exhausted
// its send retries (live mode).
func (f *Faults) RecordSendFailure() {
	if f != nil {
		f.add(&f.sendFailures)
	}
}

// RecordSchedulerCrash counts one injected scheduler crash (also counted in
// the generic crash total).
func (f *Faults) RecordSchedulerCrash() {
	if f != nil {
		f.mu.Lock()
		f.crashes++
		f.schedCrashes++
		f.mu.Unlock()
	}
}

// RecordSchedulerRestart counts one scheduler restart (also counted in the
// generic restart total).
func (f *Faults) RecordSchedulerRestart() {
	if f != nil {
		f.mu.Lock()
		f.restarts++
		f.schedRestarts++
		f.mu.Unlock()
	}
}

// RecordSchedulerRestore counts one scheduler checkpoint restore (also
// counted in the generic restore total).
func (f *Faults) RecordSchedulerRestore() {
	if f != nil {
		f.mu.Lock()
		f.restores++
		f.schedRestores++
		f.mu.Unlock()
	}
}

// RecordStateReport counts one worker state report consumed during a
// scheduler state rebuild.
func (f *Faults) RecordStateReport() {
	if f != nil {
		f.add(&f.stateReports)
	}
}

// RecordDegraded counts one worker entering broadcast-failover degraded mode.
func (f *Faults) RecordDegraded() {
	if f != nil {
		f.add(&f.degradedEnters)
	}
}

// RecordDegradedRecover counts one worker leaving degraded mode after the
// scheduler came back.
func (f *Faults) RecordDegradedRecover() {
	if f != nil {
		f.add(&f.degradedRecovers)
	}
}

func (f *Faults) add(p *int64) {
	f.mu.Lock()
	*p++
	f.mu.Unlock()
}

// FaultStats is a point-in-time copy of the scalar counters.
type FaultStats struct {
	Drops, Duplicates, Delays int64
	Retries                   int64
	Crashes, Restarts         int64
	Evictions, Readmissions   int64
	Checkpoints, Restores     int64

	SendFailures                        int64
	SchedulerCrashes, SchedulerRestarts int64
	SchedulerRestores                   int64
	StateReports                        int64
	DegradedEnters, DegradedRecovers    int64
}

// Stats returns a snapshot of every counter (drop/dup/delay totals summed
// over kinds). A nil *Faults reports zeros.
func (f *Faults) Stats() FaultStats {
	if f == nil {
		return FaultStats{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FaultStats{
		Retries:      f.retries,
		Crashes:      f.crashes,
		Restarts:     f.restarts,
		Evictions:    f.evictions,
		Readmissions: f.readmits,
		Checkpoints:  f.checkpoints,
		Restores:     f.restores,

		SendFailures:      f.sendFailures,
		SchedulerCrashes:  f.schedCrashes,
		SchedulerRestarts: f.schedRestarts,
		SchedulerRestores: f.schedRestores,
		StateReports:      f.stateReports,
		DegradedEnters:    f.degradedEnters,
		DegradedRecovers:  f.degradedRecovers,
	}
	for _, n := range f.drops {
		st.Drops += n
	}
	for _, n := range f.dups {
		st.Duplicates += n
	}
	for _, n := range f.delays {
		st.Delays += n
	}
	return st
}

// DropSplit returns dropped-message counts as (data, control) according to
// the classifier, mirroring Transfer.Split.
func (f *Faults) DropSplit() (dataMsgs, controlMsgs int64) {
	if f == nil {
		return 0, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for kind, n := range f.drops {
		if f.classOf != nil && f.classOf(kind) {
			controlMsgs += n
		} else {
			dataMsgs += n
		}
	}
	return dataMsgs, controlMsgs
}

// KindDrops returns the number of injected drops for one message kind.
func (f *Faults) KindDrops(kind wire.Kind) int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.drops[kind]
}
