// Package metrics provides the measurement primitives behind the
// experiments: loss time series with convergence detection (the paper's
// "loss below the target for 5 consecutive iterations"), transfer accounting
// by message class (Figs. 12-13), and percentile/box statistics (Fig. 3).
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"specsync/internal/node"
	"specsync/internal/wire"
)

// Point is one (elapsed time, value) observation.
type Point struct {
	T time.Duration
	V float64
}

// Series is an append-only time series of loss (or any metric) samples. It
// is safe for concurrent use: the live stack appends from transport callback
// goroutines while monitoring endpoints read. The zero value is ready to use.
// Series values must not be copied after first use (the mutex); share a
// *Series instead.
type Series struct {
	mu     sync.Mutex
	points []Point
}

// Add appends an observation.
func (s *Series) Add(t time.Duration, v float64) {
	s.mu.Lock()
	s.points = append(s.points, Point{T: t, V: v})
	s.mu.Unlock()
}

// Snapshot returns a copy of all observations in append order.
func (s *Series) Snapshot() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Len returns the number of observations.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.points)
}

// Last returns the final observation, or a zero Point for an empty series.
func (s *Series) Last() Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.points) == 0 {
		return Point{}
	}
	return s.points[len(s.points)-1]
}

// Min returns the smallest value seen, or +Inf for an empty series.
func (s *Series) Min() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := math.Inf(1)
	for _, p := range s.points {
		if p.V < m {
			m = p.V
		}
	}
	return m
}

// ValueAt returns the latest value observed at or before t, or the first
// value if t precedes all samples.
func (s *Series) ValueAt(t time.Duration) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.points) == 0 {
		return math.NaN()
	}
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].T > t })
	if i == 0 {
		return s.points[0].V
	}
	return s.points[i-1].V
}

// TimeToConverge returns the elapsed time at which the series first stayed
// below target for `consecutive` successive samples, mirroring the paper's
// convergence definition. The returned time is the first sample of the
// qualifying streak. ok is false if the series never converged.
func (s *Series) TimeToConverge(target float64, consecutive int) (time.Duration, bool) {
	if consecutive < 1 {
		consecutive = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	streak := 0
	var start time.Duration
	for _, p := range s.points {
		if p.V < target {
			if streak == 0 {
				start = p.T
			}
			streak++
			if streak >= consecutive {
				return start, true
			}
		} else {
			streak = 0
		}
	}
	return 0, false
}

// Downsample returns at most n points, evenly spaced over the series, always
// including the last. Rendering helpers use it.
func (s *Series) Downsample(n int) []Point {
	points := s.Snapshot()
	if n <= 0 || len(points) <= n {
		return points
	}
	out := make([]Point, 0, n)
	step := float64(len(points)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		out = append(out, points[int(float64(i)*step+0.5)])
	}
	out[len(out)-1] = points[len(points)-1]
	return out
}

// Box holds the five-number summary used by the paper's box plots
// (5th/25th/50th/75th/95th percentiles).
type Box struct {
	P5, P25, P50, P75, P95 float64
	N                      int
}

// BoxOf computes a Box over values. It returns a zero Box for empty input.
func BoxOf(values []float64) Box {
	if len(values) == 0 {
		return Box{}
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return Box{
		P5:  Percentile(sorted, 5),
		P25: Percentile(sorted, 25),
		P50: Percentile(sorted, 50),
		P75: Percentile(sorted, 75),
		P95: Percentile(sorted, 95),
		N:   len(sorted),
	}
}

// Percentile returns the p-th percentile (0-100) of sorted values using
// linear interpolation. The input must be sorted ascending.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// Transfer accumulates wire bytes by message kind. It implements
// des.TransferRecorder and is safe for concurrent use (the live TCP
// transport records from multiple goroutines).
type Transfer struct {
	mu      sync.Mutex
	byKind  map[wire.Kind]*kindStats
	total   int64
	classOf func(wire.Kind) bool // true = control
}

type kindStats struct {
	bytes int64
	msgs  int64
	// First/last-seen timestamps for throughput: virtual time under the
	// simulator, wall time live.
	first time.Time
	last  time.Time
	seen  bool
}

// NewTransfer builds a Transfer; isControl classifies kinds into control vs
// data traffic (use msg.IsControl).
func NewTransfer(isControl func(wire.Kind) bool) *Transfer {
	return &Transfer{byKind: make(map[wire.Kind]*kindStats), classOf: isControl}
}

// RecordTransfer implements des.TransferRecorder.
func (t *Transfer) RecordTransfer(from, to node.ID, kind wire.Kind, bytes int, at time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ks, ok := t.byKind[kind]
	if !ok {
		ks = &kindStats{}
		t.byKind[kind] = ks
	}
	ks.bytes += int64(bytes)
	ks.msgs++
	if !ks.seen || at.Before(ks.first) {
		ks.first = at
	}
	if !ks.seen || at.After(ks.last) {
		ks.last = at
	}
	ks.seen = true
	t.total += int64(bytes)
}

// TotalBytes returns all bytes recorded so far.
func (t *Transfer) TotalBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// KindBytes returns bytes and message count for one kind.
func (t *Transfer) KindBytes(kind wire.Kind) (bytes, msgs int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ks, ok := t.byKind[kind]
	if !ok {
		return 0, 0
	}
	return ks.bytes, ks.msgs
}

// KindWindow returns the first/last record timestamps for one kind; ok is
// false when the kind has never been recorded.
func (t *Transfer) KindWindow(kind wire.Kind) (first, last time.Time, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ks, found := t.byKind[kind]
	if !found || !ks.seen {
		return time.Time{}, time.Time{}, false
	}
	return ks.first, ks.last, true
}

// KindThroughput returns one kind's mean throughput in bytes/sec over its
// observed [first, last] window. A kind seen fewer than twice (or whose
// records all share one timestamp) has no measurable window and returns 0.
func (t *Transfer) KindThroughput(kind wire.Kind) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byKind[kind].throughput()
}

func (ks *kindStats) throughput() float64 {
	if ks == nil || !ks.seen {
		return 0
	}
	window := ks.last.Sub(ks.first)
	if window <= 0 {
		return 0
	}
	return float64(ks.bytes) / window.Seconds()
}

// WritePrometheus writes per-kind transfer counters and throughput gauges in
// the Prometheus text format, sorted by kind number for deterministic output.
// name maps a wire kind to its registered label (use msg.Registry().Name).
func (t *Transfer) WritePrometheus(w io.Writer, name func(wire.Kind) string) {
	t.mu.Lock()
	kinds := make([]wire.Kind, 0, len(t.byKind))
	for k := range t.byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	type row struct {
		label       string
		bytes, msgs int64
		bytesPerSec float64
	}
	rows := make([]row, 0, len(kinds))
	for _, k := range kinds {
		ks := t.byKind[k]
		rows = append(rows, row{label: name(k), bytes: ks.bytes, msgs: ks.msgs, bytesPerSec: ks.throughput()})
	}
	t.mu.Unlock()

	fmt.Fprintf(w, "# HELP specsync_transfer_bytes_total Wire bytes sent, by message kind.\n")
	fmt.Fprintf(w, "# TYPE specsync_transfer_bytes_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "specsync_transfer_bytes_total{kind=%q} %d\n", r.label, r.bytes)
	}
	fmt.Fprintf(w, "# HELP specsync_transfer_msgs_total Messages sent, by message kind.\n")
	fmt.Fprintf(w, "# TYPE specsync_transfer_msgs_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "specsync_transfer_msgs_total{kind=%q} %d\n", r.label, r.msgs)
	}
	fmt.Fprintf(w, "# HELP specsync_transfer_bytes_per_sec Mean throughput over each kind's observed window.\n")
	fmt.Fprintf(w, "# TYPE specsync_transfer_bytes_per_sec gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "specsync_transfer_bytes_per_sec{kind=%q} %g\n", r.label, r.bytesPerSec)
	}
}

// Split returns (dataBytes, controlBytes) according to the classifier.
func (t *Transfer) Split() (dataBytes, controlBytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for kind, ks := range t.byKind {
		if t.classOf != nil && t.classOf(kind) {
			controlBytes += ks.bytes
		} else {
			dataBytes += ks.bytes
		}
	}
	return dataBytes, controlBytes
}

// Breakdown returns a copy of per-kind stats keyed by kind.
func (t *Transfer) Breakdown() map[wire.Kind]struct{ Bytes, Msgs int64 } {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[wire.Kind]struct{ Bytes, Msgs int64 }, len(t.byKind))
	for k, ks := range t.byKind {
		out[k] = struct{ Bytes, Msgs int64 }{Bytes: ks.bytes, Msgs: ks.msgs}
	}
	return out
}

// HumanBytes renders a byte count with a binary-prefix unit.
func HumanBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for v := n / unit; v >= unit; v /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.2f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}
