package metrics

import (
	"sync"
	"testing"

	"specsync/internal/wire"
)

func TestFaultsCounters(t *testing.T) {
	isControl := func(k wire.Kind) bool { return k >= 5 }
	f := NewFaults(isControl)

	f.RecordDrop(wire.Kind(3)) // data
	f.RecordDrop(wire.Kind(3))
	f.RecordDrop(wire.Kind(6)) // control
	f.RecordDuplicate(wire.Kind(3))
	f.RecordDelay(wire.Kind(6))
	f.RecordRetry()
	f.RecordRetry()
	f.RecordCrash()
	f.RecordRestart()
	f.RecordEviction()
	f.RecordReadmission()
	f.RecordCheckpoint()
	f.RecordRestore()

	st := f.Stats()
	want := FaultStats{
		Drops: 3, Duplicates: 1, Delays: 1, Retries: 2,
		Crashes: 1, Restarts: 1, Evictions: 1, Readmissions: 1,
		Checkpoints: 1, Restores: 1,
	}
	if st != want {
		t.Errorf("Stats = %+v, want %+v", st, want)
	}
	data, control := f.DropSplit()
	if data != 2 || control != 1 {
		t.Errorf("DropSplit = (%d, %d), want (2, 1)", data, control)
	}
	if n := f.KindDrops(wire.Kind(3)); n != 2 {
		t.Errorf("KindDrops(3) = %d, want 2", n)
	}
}

func TestFaultsNilSafe(t *testing.T) {
	var f *Faults
	f.RecordDrop(1)
	f.RecordDuplicate(1)
	f.RecordDelay(1)
	f.RecordRetry()
	f.RecordCrash()
	f.RecordRestart()
	f.RecordEviction()
	f.RecordReadmission()
	f.RecordCheckpoint()
	f.RecordRestore()
	if st := f.Stats(); st != (FaultStats{}) {
		t.Errorf("nil Stats = %+v, want zeros", st)
	}
	if d, c := f.DropSplit(); d != 0 || c != 0 {
		t.Error("nil DropSplit non-zero")
	}
}

func TestFaultsConcurrent(t *testing.T) {
	f := NewFaults(nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				f.RecordDrop(wire.Kind(j % 3))
				f.RecordRetry()
			}
		}()
	}
	wg.Wait()
	st := f.Stats()
	if st.Drops != 800 || st.Retries != 800 {
		t.Errorf("concurrent counts: %+v", st)
	}
}
