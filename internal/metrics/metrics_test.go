package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"specsync/internal/wire"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.Len() != 0 || s.Last() != (Point{}) {
		t.Error("empty series basics")
	}
	if !math.IsInf(s.Min(), 1) {
		t.Error("empty Min should be +Inf")
	}
	if !math.IsNaN(s.ValueAt(time.Second)) {
		t.Error("empty ValueAt should be NaN")
	}
	s.Add(1*time.Second, 5)
	s.Add(2*time.Second, 3)
	s.Add(3*time.Second, 4)
	if s.Min() != 3 {
		t.Errorf("Min = %v", s.Min())
	}
	if s.Last().V != 4 {
		t.Errorf("Last = %v", s.Last())
	}
	if got := s.ValueAt(2500 * time.Millisecond); got != 3 {
		t.Errorf("ValueAt(2.5s) = %v, want 3", got)
	}
	if got := s.ValueAt(500 * time.Millisecond); got != 5 {
		t.Errorf("ValueAt(0.5s) = %v, want first value", got)
	}
	if got := s.ValueAt(10 * time.Second); got != 4 {
		t.Errorf("ValueAt(10s) = %v, want last value", got)
	}
}

func TestTimeToConverge(t *testing.T) {
	var s Series
	vals := []float64{10, 8, 4, 6, 3, 2, 2, 2, 2, 2}
	for i, v := range vals {
		s.Add(time.Duration(i)*time.Second, v)
	}
	// Target 5: dips below at i=2 (streak broken at i=3), then from i=4 on.
	// With 5 consecutive required, streak starts at i=4.
	got, ok := s.TimeToConverge(5, 5)
	if !ok || got != 4*time.Second {
		t.Errorf("TimeToConverge = %v/%v, want 4s/true", got, ok)
	}
	if _, ok := s.TimeToConverge(1, 5); ok {
		t.Error("should not converge to 1")
	}
	// consecutive < 1 behaves as 1.
	got, ok = s.TimeToConverge(5, 0)
	if !ok || got != 2*time.Second {
		t.Errorf("TimeToConverge(c=0) = %v/%v", got, ok)
	}
}

func TestDownsample(t *testing.T) {
	var s Series
	for i := 0; i < 100; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i))
	}
	d := s.Downsample(10)
	if len(d) != 10 {
		t.Fatalf("len = %d", len(d))
	}
	if d[0].V != 0 || d[9].V != 99 {
		t.Errorf("endpoints: %v ... %v", d[0], d[9])
	}
	// No-op when n >= len.
	if got := s.Downsample(200); len(got) != 100 {
		t.Errorf("oversized downsample len = %d", len(got))
	}
}

func TestPercentileAndBox(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	b := BoxOf(vals)
	if b.N != 10 {
		t.Errorf("N = %d", b.N)
	}
	if b.P50 != 5.5 {
		t.Errorf("P50 = %v, want 5.5", b.P50)
	}
	if b.P5 >= b.P25 || b.P25 >= b.P50 || b.P50 >= b.P75 || b.P75 >= b.P95 {
		t.Errorf("box not monotone: %+v", b)
	}
	if got := Percentile(vals, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(vals, 100); got != 10 {
		t.Errorf("P100 = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	zero := BoxOf(nil)
	if zero.N != 0 {
		t.Error("empty box should be zero")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty mean should be NaN")
	}
}

func TestTransferAccounting(t *testing.T) {
	isControl := func(k wire.Kind) bool { return k >= 100 }
	tr := NewTransfer(isControl)
	tr.RecordTransfer("worker/0", "server/0", 1, 1000, time.Unix(0, 0))
	tr.RecordTransfer("worker/0", "server/0", 1, 500, time.Unix(1, 0))
	tr.RecordTransfer("worker/0", "scheduler", 100, 8, time.Unix(2, 0))

	if got := tr.TotalBytes(); got != 1508 {
		t.Errorf("TotalBytes = %d", got)
	}
	b, m := tr.KindBytes(1)
	if b != 1500 || m != 2 {
		t.Errorf("KindBytes(1) = %d/%d", b, m)
	}
	if b, m := tr.KindBytes(42); b != 0 || m != 0 {
		t.Errorf("unknown kind = %d/%d", b, m)
	}
	data, control := tr.Split()
	if data != 1500 || control != 8 {
		t.Errorf("Split = %d/%d", data, control)
	}
	bd := tr.Breakdown()
	if bd[1].Bytes != 1500 || bd[100].Msgs != 1 {
		t.Errorf("Breakdown = %+v", bd)
	}
}

func TestTransferConcurrent(t *testing.T) {
	tr := NewTransfer(nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.RecordTransfer("a", "b", 1, 1, time.Time{})
			}
		}()
	}
	wg.Wait()
	if got := tr.TotalBytes(); got != 8000 {
		t.Errorf("TotalBytes = %d", got)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512 B",
		2048:    "2.00 KiB",
		3 << 20: "3.00 MiB",
		5 << 30: "5.00 GiB",
		7 << 40: "7.00 TiB",
	}
	for in, want := range cases {
		if got := HumanBytes(in); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

// TestSeriesConcurrent exercises Series under the race detector: concurrent
// appenders (the live probe loop) against concurrent readers (monitoring
// endpoints).
func TestSeriesConcurrent(t *testing.T) {
	var s Series
	var wg sync.WaitGroup
	const writers, perWriter = 4, 250
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Add(time.Duration(w*perWriter+i)*time.Millisecond, float64(i))
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Len()
				s.Last()
				s.Min()
				s.ValueAt(time.Duration(i) * time.Millisecond)
				s.Snapshot()
				s.Downsample(10)
				s.TimeToConverge(0.5, 3)
			}
		}()
	}
	wg.Wait()
	if s.Len() != writers*perWriter {
		t.Errorf("lost samples: %d, want %d", s.Len(), writers*perWriter)
	}
	snap := s.Snapshot()
	if len(snap) != s.Len() {
		t.Errorf("snapshot length %d != len %d", len(snap), s.Len())
	}
	// Snapshot is a copy: mutating it must not affect the series.
	snap[0].V = -1
	if s.Snapshot()[0].V == -1 {
		t.Error("Snapshot aliases internal storage")
	}
}

func TestTransferThroughput(t *testing.T) {
	tr := NewTransfer(nil)
	base := time.Unix(0, 0).UTC()
	kind := wire.Kind(1)

	if _, _, ok := tr.KindWindow(kind); ok {
		t.Error("window reported before any record")
	}
	if tp := tr.KindThroughput(kind); tp != 0 {
		t.Errorf("throughput before records = %v", tp)
	}

	tr.RecordTransfer("a", "b", kind, 1000, base)
	// One record: a zero-width window has no measurable rate.
	if tp := tr.KindThroughput(kind); tp != 0 {
		t.Errorf("single-record throughput = %v, want 0", tp)
	}
	first, last, ok := tr.KindWindow(kind)
	if !ok || !first.Equal(base) || !last.Equal(base) {
		t.Errorf("window = %v..%v (%v)", first, last, ok)
	}

	tr.RecordTransfer("a", "b", kind, 3000, base.Add(2*time.Second))
	first, last, ok = tr.KindWindow(kind)
	if !ok || !first.Equal(base) || !last.Equal(base.Add(2*time.Second)) {
		t.Errorf("window = %v..%v (%v)", first, last, ok)
	}
	// 4000 bytes over 2 seconds.
	if tp := tr.KindThroughput(kind); math.Abs(tp-2000) > 1e-9 {
		t.Errorf("throughput = %v, want 2000", tp)
	}

	// Out-of-order timestamps (live transport goroutines) extend the window
	// backwards rather than corrupting it.
	tr.RecordTransfer("a", "b", kind, 1000, base.Add(-1*time.Second))
	first, _, _ = tr.KindWindow(kind)
	if !first.Equal(base.Add(-1 * time.Second)) {
		t.Errorf("first not extended backwards: %v", first)
	}
}

func TestTransferWritePrometheus(t *testing.T) {
	tr := NewTransfer(nil)
	base := time.Unix(0, 0).UTC()
	tr.RecordTransfer("a", "b", wire.Kind(2), 100, base)
	tr.RecordTransfer("a", "b", wire.Kind(2), 100, base.Add(time.Second))
	tr.RecordTransfer("a", "b", wire.Kind(1), 50, base)

	name := func(k wire.Kind) string {
		if k == 1 {
			return "PullReq"
		}
		return "PushReq"
	}
	var sb strings.Builder
	tr.WritePrometheus(&sb, name)
	out := sb.String()
	for _, want := range []string{
		`specsync_transfer_bytes_total{kind="PullReq"} 50`,
		`specsync_transfer_bytes_total{kind="PushReq"} 200`,
		`specsync_transfer_msgs_total{kind="PushReq"} 2`,
		`specsync_transfer_bytes_per_sec{kind="PushReq"} 200`,
		`specsync_transfer_bytes_per_sec{kind="PullReq"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Kinds render in numeric order for deterministic output.
	if strings.Index(out, "PullReq") > strings.Index(out, "PushReq") {
		t.Error("kinds not sorted numerically")
	}
	var sb2 strings.Builder
	tr.WritePrometheus(&sb2, name)
	if sb2.String() != out {
		t.Error("two exposition writes differ")
	}
}
