// Package ps implements the parameter-server shard. Servers are
// deliberately dumb, exactly as in the paper (Sec. V-B: "Servers are
// agnostic to speculative synchronization... their behaviors remain the same
// as in the stock MXNet"): they answer pulls with their current parameter
// block and apply pushed gradients through the server-side optimizer. All
// SpecSync logic lives in the scheduler and workers.
package ps

import (
	"fmt"
	"sync/atomic"
	"time"

	"specsync/internal/codec"
	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/obs"
	"specsync/internal/optimizer"
	"specsync/internal/tensor"
	"specsync/internal/wire"
)

// Range is a half-open interval [Lo, Hi) of flat parameter indices owned by
// one shard.
type Range struct {
	Lo, Hi int
}

// Len returns the number of parameters in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// ShardRanges splits dim parameters into n contiguous, near-equal ranges.
func ShardRanges(dim, n int) ([]Range, error) {
	if n < 1 || dim < n {
		return nil, fmt.Errorf("ps: cannot split %d params into %d shards", dim, n)
	}
	out := make([]Range, n)
	per := dim / n
	extra := dim % n
	lo := 0
	for i := range out {
		size := per
		if i < extra {
			size++
		}
		out[i] = Range{Lo: lo, Hi: lo + size}
		lo += size
	}
	return out, nil
}

// StalenessObserver receives the measured staleness of each applied push:
// the number of other updates applied to the shard between the worker's pull
// and its push. It feeds the staleness-distribution analyses.
type StalenessObserver interface {
	ObserveStaleness(worker node.ID, staleness int64, at time.Time)
}

// Config configures one server shard.
type Config struct {
	// Range is the parameter slice this shard owns.
	Range Range
	// Init is the initial parameter block (length Range.Len()). The cluster
	// harness slices one master init vector across shards so every scheme
	// starts from identical parameters.
	Init tensor.Vec
	// Optimizer applies pushed gradients. Required (except for NewJoining
	// shards, which build theirs through NewOptimizer at commit time).
	Optimizer *optimizer.SGD
	// NewOptimizer builds an optimizer for n parameters. Required for elastic
	// runs: a shard migration changes the range size, so the optimizer (and
	// any momentum state) is rebuilt at commit.
	NewOptimizer func(n int) (*optimizer.SGD, error)
	// Staleness, if non-nil, observes per-push staleness.
	Staleness StalenessObserver
	// Obs, if non-nil, receives pull/push counters and the shard version.
	Obs *obs.ServerObs
	// Replica marks this shard instance as a backup: it drops worker data
	// traffic and only replays the primary's ReplApply stream until a
	// promotion (Promote) turns it into the serving primary.
	Replica bool
	// Backups are the replica node IDs this primary forwards every applied
	// push to (empty disables replication). Also settable via SetBackups.
	Backups []node.ID
	// DedupPushes enables clone-mitigation push dedup (see clone.go): the
	// first push to arrive for a logical (worker, iter) is applied, later
	// duplicates are acknowledged without touching the parameters. Off by
	// default so unmitigated runs keep their byte-identical digests.
	DedupPushes bool
	// CloneBase is the first spare worker slot: pushes from slots >=
	// CloneBase are clone traffic and resolve through CloneNotice aliases
	// (unaliased spare pushes are dropped). Only read when DedupPushes is on.
	CloneBase int32
	// DeltaPull enables delta-encoded v2 pull responses: the shard caches
	// the block it last sent each worker and answers a re-pull whose Have
	// version matches the cache with only the changed entries. Workers on
	// the legacy PullReq path are unaffected.
	DeltaPull bool
	// CodecStats, if non-nil, receives encode-side compression accounting
	// for delta pulls.
	CodecStats *codec.Stats
}

// Server is the shard state machine. The counters are atomic so live-mode
// monitoring goroutines (status tickers, /healthz) can read them while the
// shard's event loop applies updates.
type Server struct {
	ctx     node.Context
	cfg     Config
	params  tensor.Vec
	version atomic.Int64 // number of pushes applied
	pulls   atomic.Int64
	pushes  atomic.Int64

	// Delta-pull cache: the block this shard last sent each worker, so a
	// matching re-pull can be answered with just the changed entries. Lost
	// on restart, which safely degrades the next response to a full block.
	pullCache map[node.ID]*pullCacheEntry
	// scratch receives decoded v2 push payloads.
	scratch tensor.Vec

	// Migration state (see migrate.go). While frozen the shard drops data
	// traffic; workers retry until the routing commit re-routes them.
	frozen        bool
	retired       bool
	pendingEpoch  int64
	hasNew        bool
	newRange      Range
	staged        tensor.Vec
	stagedVersion int64
	expect        int64
	recvBytes     int64
	early         []*msg.ShardState
	// nextTransfer parks a transfer for a later epoch that overtook the
	// pending epoch's commit in flight; it runs as soon as the commit lands.
	nextTransfer *msg.ShardTransfer

	// Replication state (see replica.go). backups receives forwarded applies
	// on the primary; pendingRepl parks reordered ReplApplies on a backup;
	// lastIter is the replicated per-worker duplicate-suppression watermark.
	backups       []node.ID
	pendingRepl   map[int64]*msg.ReplApply
	lastIter      map[int32]int64
	replForwarded atomic.Int64
	replApplied   atomic.Int64
	replDeduped   atomic.Int64

	// Clone-dedup state (see clone.go): cloneAlias maps spare slots onto
	// their straggling targets; lastPushIter is the per-logical-worker
	// applied-iteration watermark.
	cloneAlias   map[int32]int32
	lastPushIter map[int32]int64
	cloneDeduped atomic.Int64
	cloneDropped atomic.Int64
}

type pullCacheEntry struct {
	version int64
	vals    []float64
}

var _ node.Handler = (*Server)(nil)

// New validates cfg and builds the shard.
func New(cfg Config) (*Server, error) {
	if cfg.Range.Len() < 1 {
		return nil, fmt.Errorf("ps: empty shard range %+v", cfg.Range)
	}
	if len(cfg.Init) != cfg.Range.Len() {
		return nil, fmt.Errorf("ps: init length %d != range %d", len(cfg.Init), cfg.Range.Len())
	}
	if cfg.Optimizer == nil {
		return nil, fmt.Errorf("ps: nil optimizer")
	}
	return &Server{cfg: cfg, params: cfg.Init.Clone(), backups: cfg.Backups}, nil
}

// Init implements node.Handler.
func (s *Server) Init(ctx node.Context) { s.ctx = ctx }

// Receive implements node.Handler.
func (s *Server) Receive(from node.ID, m wire.Message) {
	switch req := m.(type) {
	case *msg.PullReq, *msg.PushReq, *msg.PullReqV2, *msg.PushReqV2:
		if s.frozen || s.cfg.Replica {
			// Mid-migration (or retired/not-yet-committed) or a backup
			// replica: drop data traffic. Workers retry until the routing
			// commit — or a promotion — puts a serving primary back.
			return
		}
		switch req := m.(type) {
		case *msg.PullReq:
			s.pulls.Add(1)
			s.cfg.Obs.Pull()
			s.ctx.Send(from, &msg.PullResp{
				Seq:     req.Seq,
				Version: s.version.Load(),
				Values:  s.params, // Send marshals synchronously; no aliasing escapes
			})
		case *msg.PushReq:
			s.apply(from, req)
		case *msg.PullReqV2:
			s.pullV2(from, req)
		case *msg.PushReqV2:
			s.applyV2(from, req)
		}
	case *msg.CloneNotice:
		s.handleCloneNotice(req)
	case *msg.ReplApply:
		s.handleReplApply(req)
	case *msg.ShardTransfer:
		s.handleTransfer(req)
	case *msg.ShardState:
		s.handleShardState(from, req)
	case *msg.RoutingUpdate:
		s.handleRoutingCommit(req)
	case *msg.Stop:
		// Servers are stateless with respect to the training loop; nothing
		// to wind down.
	default:
		s.ctx.Logf("server: unexpected message %T from %s", m, from)
	}
}

func (s *Server) apply(from node.ID, req *msg.PushReq) {
	if s.dedupPush(from, req.Seq, req.Iter) {
		return
	}
	if s.cloneCheck(from, req.Seq, req.Iter) {
		return
	}
	// Key the LR schedule on this shard's total push count.
	s.cfg.Optimizer.SetStep(s.version.Load())
	if req.IsSparse {
		s.cfg.Optimizer.ApplySparse(s.params, req.Sparse())
	} else {
		if len(req.Dense) != s.cfg.Range.Len() {
			s.ctx.Logf("server: push from %s has %d values, want %d; dropped",
				from, len(req.Dense), s.cfg.Range.Len())
			return
		}
		s.cfg.Optimizer.ApplyDense(s.params, req.Dense)
	}
	s.cloneApplied(from, req.Iter)
	s.acknowledge(from, req.Seq, req.PullVersion)
	if wi := node.WorkerIndex(from); wi >= 0 && s.replicated() {
		s.noteApplied(int32(wi), req.Iter)
		if req.IsSparse {
			s.forward(int32(wi), req.Iter, func() *msg.ReplApply {
				return &msg.ReplApply{Body: msg.ReplBodySparse, Idx: req.SparseIdx, Grad: req.SparseVal}
			})
		} else {
			s.forward(int32(wi), req.Iter, func() *msg.ReplApply {
				return &msg.ReplApply{Body: msg.ReplBodyDense, Dense: req.Dense}
			})
		}
	}
}

// acknowledge finishes one applied push: version bump, staleness accounting,
// and the PushAck. Shared by the v1 and codec (v2) apply paths.
func (s *Server) acknowledge(from node.ID, seq uint64, pullVersion int64) {
	version := s.version.Add(1)
	s.pushes.Add(1)
	staleness := version - 1 - pullVersion // pushes applied since the pull
	if staleness < 0 {
		staleness = 0
	}
	s.cfg.Obs.Push(version, staleness)
	if s.cfg.Staleness != nil {
		s.cfg.Staleness.ObserveStaleness(from, staleness, s.ctx.Now())
	}
	s.ctx.Send(from, &msg.PushAck{Seq: seq, Version: version, Staleness: staleness})
}

// applyV2 decodes a codec-tagged push payload into a dense scratch block and
// applies it through the same optimizer path as v1 pushes. Sparsifying
// codecs (topk) zero the entries they dropped, so the dense apply touches
// exactly the surviving coordinates.
func (s *Server) applyV2(from node.ID, req *msg.PushReqV2) {
	id := codec.ID(req.Codec)
	if id == codec.IDDelta {
		// Delta is a pull-side codec: decoding it needs a base the server
		// does not have for pushes.
		s.ctx.Logf("server: push from %s uses pull-only codec %s; dropped", from, id)
		return
	}
	if s.dedupPush(from, req.Seq, req.Iter) {
		return
	}
	if s.cloneCheck(from, req.Seq, req.Iter) {
		return
	}
	if s.scratch == nil {
		s.scratch = tensor.NewVec(s.cfg.Range.Len())
	}
	if err := codec.DecodePayload(id, req.Payload, s.scratch); err != nil {
		s.ctx.Logf("server: push from %s: %v; dropped", from, err)
		return
	}
	s.cfg.Optimizer.SetStep(s.version.Load())
	s.cfg.Optimizer.ApplyDense(s.params, s.scratch)
	s.cloneApplied(from, req.Iter)
	s.acknowledge(from, req.Seq, req.PullVersion)
	if wi := node.WorkerIndex(from); wi >= 0 && s.replicated() {
		s.noteApplied(int32(wi), req.Iter)
		s.forward(int32(wi), req.Iter, func() *msg.ReplApply {
			return &msg.ReplApply{Body: msg.ReplBodyCodec, Codec: req.Codec, Payload: req.Payload}
		})
	}
}

// pullV2 answers a codec-path pull. With DeltaPull enabled and a per-worker
// cache entry matching the worker's Have version, the response carries only
// the entries that changed since the cached block; otherwise it falls back
// to a full raw block. Either way the cache is refreshed with what was just
// sent, so the next matching re-pull deltas against it.
func (s *Server) pullV2(from node.ID, req *msg.PullReqV2) {
	s.pulls.Add(1)
	s.cfg.Obs.Pull()
	version := s.version.Load()
	resp := &msg.PullRespV2{Seq: req.Seq, Version: version, Base: -1, Codec: uint8(codec.IDRaw)}

	var entry *pullCacheEntry
	if s.cfg.DeltaPull {
		if s.pullCache == nil {
			s.pullCache = make(map[node.ID]*pullCacheEntry)
		}
		entry = s.pullCache[from]
	}
	if entry != nil && req.Have == entry.version {
		resp.Base = entry.version
		resp.Codec = uint8(codec.IDDelta)
		resp.Payload = codec.EncodePayload(codec.Delta{}, s.params, entry.vals, nil, nil)
	} else {
		resp.Payload = codec.EncodePayload(codec.Raw{}, s.params, nil, nil, nil)
	}
	if s.cfg.CodecStats != nil {
		s.cfg.CodecStats.RecordEncode(codec.ID(resp.Codec), 8*len(s.params), len(resp.Payload))
	}
	if s.cfg.DeltaPull {
		if entry == nil {
			entry = &pullCacheEntry{vals: make([]float64, len(s.params))}
			s.pullCache[from] = entry
		}
		copy(entry.vals, s.params)
		entry.version = version
	}
	s.ctx.Send(from, resp)
}

// Params returns the live parameter block. Probes under the single-threaded
// simulator read it directly; it must not be mutated by callers.
func (s *Server) Params() tensor.Vec { return s.params }

// Version returns the number of pushes applied so far. Safe for concurrent
// use.
func (s *Server) Version() int64 { return s.version.Load() }

// Range returns the shard's parameter range.
func (s *Server) Range() Range { return s.cfg.Range }

// Stats returns cumulative pull and push counts. Safe for concurrent use.
func (s *Server) Stats() (pulls, pushes int64) { return s.pulls.Load(), s.pushes.Load() }
