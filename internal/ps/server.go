// Package ps implements the parameter-server shard. Servers are
// deliberately dumb, exactly as in the paper (Sec. V-B: "Servers are
// agnostic to speculative synchronization... their behaviors remain the same
// as in the stock MXNet"): they answer pulls with their current parameter
// block and apply pushed gradients through the server-side optimizer. All
// SpecSync logic lives in the scheduler and workers.
package ps

import (
	"fmt"
	"sync/atomic"
	"time"

	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/obs"
	"specsync/internal/optimizer"
	"specsync/internal/tensor"
	"specsync/internal/wire"
)

// Range is a half-open interval [Lo, Hi) of flat parameter indices owned by
// one shard.
type Range struct {
	Lo, Hi int
}

// Len returns the number of parameters in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// ShardRanges splits dim parameters into n contiguous, near-equal ranges.
func ShardRanges(dim, n int) ([]Range, error) {
	if n < 1 || dim < n {
		return nil, fmt.Errorf("ps: cannot split %d params into %d shards", dim, n)
	}
	out := make([]Range, n)
	per := dim / n
	extra := dim % n
	lo := 0
	for i := range out {
		size := per
		if i < extra {
			size++
		}
		out[i] = Range{Lo: lo, Hi: lo + size}
		lo += size
	}
	return out, nil
}

// StalenessObserver receives the measured staleness of each applied push:
// the number of other updates applied to the shard between the worker's pull
// and its push. It feeds the staleness-distribution analyses.
type StalenessObserver interface {
	ObserveStaleness(worker node.ID, staleness int64, at time.Time)
}

// Config configures one server shard.
type Config struct {
	// Range is the parameter slice this shard owns.
	Range Range
	// Init is the initial parameter block (length Range.Len()). The cluster
	// harness slices one master init vector across shards so every scheme
	// starts from identical parameters.
	Init tensor.Vec
	// Optimizer applies pushed gradients. Required.
	Optimizer *optimizer.SGD
	// Staleness, if non-nil, observes per-push staleness.
	Staleness StalenessObserver
	// Obs, if non-nil, receives pull/push counters and the shard version.
	Obs *obs.ServerObs
}

// Server is the shard state machine. The counters are atomic so live-mode
// monitoring goroutines (status tickers, /healthz) can read them while the
// shard's event loop applies updates.
type Server struct {
	ctx     node.Context
	cfg     Config
	params  tensor.Vec
	version atomic.Int64 // number of pushes applied
	pulls   atomic.Int64
	pushes  atomic.Int64
}

var _ node.Handler = (*Server)(nil)

// New validates cfg and builds the shard.
func New(cfg Config) (*Server, error) {
	if cfg.Range.Len() < 1 {
		return nil, fmt.Errorf("ps: empty shard range %+v", cfg.Range)
	}
	if len(cfg.Init) != cfg.Range.Len() {
		return nil, fmt.Errorf("ps: init length %d != range %d", len(cfg.Init), cfg.Range.Len())
	}
	if cfg.Optimizer == nil {
		return nil, fmt.Errorf("ps: nil optimizer")
	}
	return &Server{cfg: cfg, params: cfg.Init.Clone()}, nil
}

// Init implements node.Handler.
func (s *Server) Init(ctx node.Context) { s.ctx = ctx }

// Receive implements node.Handler.
func (s *Server) Receive(from node.ID, m wire.Message) {
	switch req := m.(type) {
	case *msg.PullReq:
		s.pulls.Add(1)
		s.cfg.Obs.Pull()
		s.ctx.Send(from, &msg.PullResp{
			Seq:     req.Seq,
			Version: s.version.Load(),
			Values:  s.params, // Send marshals synchronously; no aliasing escapes
		})
	case *msg.PushReq:
		s.apply(from, req)
	case *msg.Stop:
		// Servers are stateless with respect to the training loop; nothing
		// to wind down.
	default:
		s.ctx.Logf("server: unexpected message %T from %s", m, from)
	}
}

func (s *Server) apply(from node.ID, req *msg.PushReq) {
	// Key the LR schedule on this shard's total push count.
	s.cfg.Optimizer.SetStep(s.version.Load())
	if req.IsSparse {
		s.cfg.Optimizer.ApplySparse(s.params, req.Sparse())
	} else {
		if len(req.Dense) != s.cfg.Range.Len() {
			s.ctx.Logf("server: push from %s has %d values, want %d; dropped",
				from, len(req.Dense), s.cfg.Range.Len())
			return
		}
		s.cfg.Optimizer.ApplyDense(s.params, req.Dense)
	}
	version := s.version.Add(1)
	s.pushes.Add(1)
	staleness := version - 1 - req.PullVersion // pushes applied since the pull
	if staleness < 0 {
		staleness = 0
	}
	s.cfg.Obs.Push(version, staleness)
	if s.cfg.Staleness != nil {
		s.cfg.Staleness.ObserveStaleness(from, staleness, s.ctx.Now())
	}
	s.ctx.Send(from, &msg.PushAck{Seq: req.Seq, Version: version, Staleness: staleness})
}

// Params returns the live parameter block. Probes under the single-threaded
// simulator read it directly; it must not be mutated by callers.
func (s *Server) Params() tensor.Vec { return s.params }

// Version returns the number of pushes applied so far. Safe for concurrent
// use.
func (s *Server) Version() int64 { return s.version.Load() }

// Range returns the shard's parameter range.
func (s *Server) Range() Range { return s.cfg.Range }

// Stats returns cumulative pull and push counts. Safe for concurrent use.
func (s *Server) Stats() (pulls, pushes int64) { return s.pulls.Load(), s.pushes.Load() }
