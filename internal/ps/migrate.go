package ps

import (
	"fmt"

	"specsync/internal/codec"
	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/tensor"
)

// Shard migration: the scheduler drives a freeze → transfer → commit handoff
// (see internal/core/elastic.go). A ShardTransfer freezes the shard and tells
// it exactly which segments to keep, which to send where, and how many to
// expect from other donors — servers stay dumb, the scheduler precomputes
// everything. Once every expected segment is staged the shard reports
// MigrateDone; the RoutingUpdate commit then atomically swaps in the staged
// range (rebuilding the optimizer at the new size) or retires the shard.

// NewJoining builds a shard that owns no parameters yet: it stays frozen
// (dropping any data traffic) until a ShardTransfer hands it state and a
// RoutingUpdate commits its range. Config.NewOptimizer is required; Range,
// Init and Optimizer are ignored.
func NewJoining(cfg Config) (*Server, error) {
	if cfg.NewOptimizer == nil {
		return nil, fmt.Errorf("ps: joining shard requires NewOptimizer")
	}
	return &Server{cfg: cfg, frozen: true}, nil
}

// handleTransfer starts this shard's part of a migration.
func (s *Server) handleTransfer(t *msg.ShardTransfer) {
	if s.retired {
		s.ctx.Logf("server: transfer for epoch %d after retirement; ignored", t.Epoch)
		return
	}
	if s.frozen && s.pendingEpoch > 0 {
		if t.Epoch > s.pendingEpoch {
			// The scheduler committed the pending epoch and immediately
			// started the next migration; the new transfer overtook the
			// RoutingUpdate in flight. Park it until the commit lands.
			s.nextTransfer = t
		} else {
			s.ctx.Logf("server: transfer for epoch %d while epoch %d still pending; ignored", t.Epoch, s.pendingEpoch)
		}
		return
	}
	s.frozen = true
	s.pendingEpoch = t.Epoch
	s.hasNew = t.HasNew
	s.expect = t.Expect
	s.recvBytes = 0
	s.stagedVersion = 0
	s.staged = nil
	if t.HasNew {
		s.newRange = Range{Lo: int(t.NewLo), Hi: int(t.NewHi)}
		s.staged = tensor.NewVec(s.newRange.Len())
	}
	// Copy the kept overlap of the old range into the staged block.
	if t.KeepHi > t.KeepLo {
		lo, hi := int(t.KeepLo), int(t.KeepHi)
		copy(s.staged[lo-s.newRange.Lo:hi-s.newRange.Lo], s.params[lo-s.cfg.Range.Lo:hi-s.cfg.Range.Lo])
		s.stagedVersion = s.version.Load()
	}
	// Ship outgoing segments through the codec payload path (raw: migrations
	// must be lossless).
	for i := range t.SendLo {
		lo, hi, to := int(t.SendLo[i]), int(t.SendHi[i]), int(t.SendTo[i])
		seg := s.params[lo-s.cfg.Range.Lo : hi-s.cfg.Range.Lo]
		s.ctx.Send(node.ServerID(to), &msg.ShardState{
			Epoch:   t.Epoch,
			Lo:      int64(lo),
			Hi:      int64(hi),
			Version: s.version.Load(),
			Codec:   uint8(codec.IDRaw),
			Payload: codec.EncodePayload(codec.Raw{}, seg, nil, nil, nil),
		})
	}
	// Segments that arrived before the transfer did (possible under live
	// reordering) were buffered; stage the ones for this epoch now. Segments
	// for later epochs stay buffered; older ones are dropped.
	early := s.early
	s.early = nil
	for _, st := range early {
		switch {
		case st.Epoch == t.Epoch:
			s.applyState(st)
		case st.Epoch > t.Epoch:
			s.early = append(s.early, st)
		}
	}
	s.maybeFinishTransfer()
}

// handleShardState stages one incoming segment, buffering it when the
// matching ShardTransfer has not arrived yet.
func (s *Server) handleShardState(from node.ID, st *msg.ShardState) {
	if s.retired {
		s.ctx.Logf("server: shard state [%d,%d) epoch %d from %s after retirement; dropped", st.Lo, st.Hi, st.Epoch, from)
		return
	}
	if s.frozen && s.hasNew && st.Epoch == s.pendingEpoch {
		s.applyState(st)
		s.maybeFinishTransfer()
		return
	}
	// The matching ShardTransfer has not arrived yet (possible under live
	// reordering): buffer until it does. Segments for older epochs are
	// filtered out when the buffer drains.
	s.early = append(s.early, st)
}

func (s *Server) applyState(st *msg.ShardState) {
	lo, hi := int(st.Lo), int(st.Hi)
	if lo < s.newRange.Lo || hi > s.newRange.Hi || hi <= lo {
		s.ctx.Logf("server: shard state [%d,%d) outside staged range %+v; dropped", lo, hi, s.newRange)
		return
	}
	dst := s.staged[lo-s.newRange.Lo : hi-s.newRange.Lo]
	if err := codec.DecodePayload(codec.ID(st.Codec), st.Payload, dst); err != nil {
		s.ctx.Logf("server: shard state [%d,%d): %v; dropped", lo, hi, err)
		return
	}
	if st.Version > s.stagedVersion {
		s.stagedVersion = st.Version
	}
	s.expect--
	s.recvBytes += int64(len(st.Payload))
}

// maybeFinishTransfer reports MigrateDone once every expected segment is in.
func (s *Server) maybeFinishTransfer() {
	if !s.frozen || s.expect > 0 {
		return
	}
	s.expect = -1 // report once
	s.ctx.Send(node.Scheduler, &msg.MigrateDone{Epoch: s.pendingEpoch, Bytes: s.recvBytes})
}

// handleRoutingCommit finishes the handoff: adopt the staged range (or
// retire) under the committed epoch.
func (s *Server) handleRoutingCommit(u *msg.RoutingUpdate) {
	if !s.frozen || u.Epoch != s.pendingEpoch {
		s.ctx.Logf("server: routing update for epoch %d does not match pending %d; ignored", u.Epoch, s.pendingEpoch)
		return
	}
	self := node.ServerIndex(s.ctx.Self())
	owned := false
	var lo, hi int
	for i := range u.Srv {
		if int(u.Srv[i]) == self {
			owned, lo, hi = true, int(u.Lo[i]), int(u.Hi[i])
			break
		}
	}
	if !owned {
		// Drained: this shard is out of the routing table for good.
		s.retired = true
		s.params = nil
		s.staged = nil
		s.pullCache = nil
		s.scratch = nil
		s.nextTransfer = nil
		return
	}
	if !s.hasNew || lo != s.newRange.Lo || hi != s.newRange.Hi {
		s.ctx.Logf("server: commit range [%d,%d) does not match staged %+v; keeping old state", lo, hi, s.newRange)
		return
	}
	opt, err := s.cfg.NewOptimizer(s.newRange.Len())
	if err != nil {
		s.ctx.Logf("server: rebuilding optimizer for %d params: %v; keeping old state", s.newRange.Len(), err)
		return
	}
	// Momentum (if any) restarts cold at the new size; SGD state is keyed on
	// the version, which carries over as the max of the contributors.
	s.cfg.Optimizer = opt
	s.cfg.Range = s.newRange
	s.params = s.staged
	s.staged = nil
	s.version.Store(s.stagedVersion)
	s.pullCache = nil // delta bases are meaningless across a range change
	s.scratch = nil
	s.hasNew = false
	s.frozen = false
	if nt := s.nextTransfer; nt != nil {
		s.nextTransfer = nil
		s.handleTransfer(nt)
	}
}

// Frozen reports whether the shard is mid-migration (or joining/retired) and
// currently dropping data traffic.
func (s *Server) Frozen() bool { return s.frozen }

// Retired reports whether the shard has been drained out of the routing
// table.
func (s *Server) Retired() bool { return s.retired }
