package ps

import (
	"bytes"
	"strings"
	"testing"

	"specsync/internal/tensor"
)

func TestSnapshotRoundtrip(t *testing.T) {
	srv, err := New(Config{
		Range:     Range{Lo: 10, Hi: 14},
		Init:      tensor.Vec{1, 2, 3, 4},
		Optimizer: newTestSGD(t, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := srv.Snapshot()
	snap.Version = 99 // simulate progress
	snap.Params[0] = -7

	var buf bytes.Buffer
	if _, err := snap.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Range != snap.Range || loaded.Version != 99 || loaded.Params[0] != -7 {
		t.Errorf("roundtrip mismatch: %+v", loaded)
	}

	if err := srv.Restore(loaded); err != nil {
		t.Fatal(err)
	}
	if srv.Version() != 99 || srv.Params()[0] != -7 {
		t.Error("restore did not apply")
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	srv, err := New(Config{
		Range:     Range{Lo: 0, Hi: 2},
		Init:      tensor.Vec{1, 2},
		Optimizer: newTestSGD(t, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := srv.Snapshot()
	snap.Params[0] = 42
	if srv.Params()[0] == 42 {
		t.Error("snapshot aliases live params")
	}
}

func TestRestoreValidation(t *testing.T) {
	srv, err := New(Config{
		Range:     Range{Lo: 0, Hi: 2},
		Init:      tensor.Vec{1, 2},
		Optimizer: newTestSGD(t, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Restore(Snapshot{Range: Range{Lo: 5, Hi: 7}, Params: tensor.Vec{0, 0}}); err == nil {
		t.Error("expected range-mismatch error")
	}
}

func TestReadSnapshotCorruption(t *testing.T) {
	snap := Snapshot{Range: Range{Lo: 0, Hi: 2}, Version: 5, Params: tensor.Vec{1, 2}}
	var buf bytes.Buffer
	if _, err := snap.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     append([]byte{0, 0, 0, 0}, good[4:]...),
		"bad version":   append(append([]byte{}, good[:4]...), append([]byte{99}, good[5:]...)...),
		"truncated":     good[:len(good)-3],
		"trailing junk": append(append([]byte{}, good...), 0xff),
	}
	for name, data := range cases {
		if _, err := ReadSnapshot(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}

	if _, err := ReadSnapshot(strings.NewReader(string(good))); err != nil {
		t.Errorf("good snapshot rejected: %v", err)
	}
}
