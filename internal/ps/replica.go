package ps

import (
	"specsync/internal/codec"
	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/sparse"
	"specsync/internal/tensor"
)

// Shard replication (primary-backup). The primary forwards every applied
// push to its backups as a version-stamped msg.ReplApply, inside the same
// Receive callback that acknowledges the worker. Because the runtime
// delivers messages already sent by a node even if that node crashes
// immediately afterwards, every acknowledged push is guaranteed to reach the
// backups: a backup promoted after the primary dies holds exactly the acked
// prefix, which is the zero-loss invariant the replication tests assert.
//
// Backups replay ReplApplies in strict version order, buffering any message
// the network reordered past a gap, and stamp the optimizer with Version-1
// before applying — so parameters AND momentum state stay byte-identical to
// the primary's. Duplicate-suppression state (the highest iteration applied
// per worker) is replicated along with the updates, letting the promoted
// primary re-acknowledge a retried push that the dead primary had already
// applied, instead of applying it twice.

// replicated reports whether this shard participates in replication (as
// primary with backups, or as a backup).
func (s *Server) replicated() bool { return s.cfg.Replica || len(s.backups) > 0 }

// SetBackups installs the ReplApply forwarding targets. Called at
// construction time by the harness for the initial primary, and at promotion
// time for a backup taking over (with the surviving replicas of its shard).
func (s *Server) SetBackups(ids []node.ID) { s.backups = ids }

// Promote turns a backup into the serving primary for its shard. The caller
// re-registers the handler under the shard's server ID afterwards; from then
// on it answers pulls/pushes and forwards to the surviving backups.
func (s *Server) Promote(backups []node.ID) {
	s.cfg.Replica = false
	s.backups = backups
	// A promotion happens only after the backup caught up to the dead
	// primary's version, so nothing should be parked here; drop any leftovers
	// defensively rather than replay them against a diverged version line.
	s.pendingRepl = nil
}

// Replica reports whether the shard is currently a backup.
func (s *Server) Replica() bool { return s.cfg.Replica }

// ReplStats returns replication counters: pushes forwarded to backups (as
// primary), ReplApplies applied (as backup), and duplicate pushes suppressed
// after a promotion. Safe for concurrent use.
func (s *Server) ReplStats() (forwarded, applied, deduped int64) {
	return s.replForwarded.Load(), s.replApplied.Load(), s.replDeduped.Load()
}

// dedupPush reports whether a push is a duplicate of one already applied on
// the replicated version line (a worker retry that raced a primary failover)
// and, if so, re-acknowledges it without touching the parameters. Only
// replicated shards track this: the plain path keeps its at-least-once
// semantics byte-identical to before.
func (s *Server) dedupPush(from node.ID, seq uint64, iter int64) bool {
	if !s.replicated() {
		return false
	}
	wi := node.WorkerIndex(from)
	if wi < 0 {
		return false
	}
	last, ok := s.lastIter[int32(wi)]
	if !ok || iter > last {
		return false
	}
	s.replDeduped.Add(1)
	s.ctx.Send(from, &msg.PushAck{Seq: seq, Version: s.version.Load(), Staleness: 0})
	return true
}

// noteApplied records the (worker, iter) of an applied push for duplicate
// suppression. Tracked on the primary and replicated to backups via the
// ReplApply stream itself.
func (s *Server) noteApplied(worker int32, iter int64) {
	if s.lastIter == nil {
		s.lastIter = make(map[int32]int64)
	}
	if last, ok := s.lastIter[worker]; !ok || iter > last {
		s.lastIter[worker] = iter
	}
}

// forward ships one applied push to every backup, stamped with the version
// acknowledge just assigned. Send marshals synchronously, so aliasing the
// request's gradient buffers into the ReplApply is safe.
func (s *Server) forward(worker int32, iter int64, body func() *msg.ReplApply) {
	if len(s.backups) == 0 {
		return
	}
	version := s.version.Load()
	for _, b := range s.backups {
		m := body()
		m.Version = version
		m.Worker = worker
		m.Iter = iter
		s.ctx.Send(b, m)
	}
	s.replForwarded.Add(1)
}

// handleReplApply is the backup side: apply forwarded pushes in strict
// version order, parking anything the network delivered early.
func (s *Server) handleReplApply(req *msg.ReplApply) {
	next := s.version.Load() + 1
	switch {
	case req.Version < next:
		return // duplicate (e.g. re-delivered across a promotion)
	case req.Version > next:
		if s.pendingRepl == nil {
			s.pendingRepl = make(map[int64]*msg.ReplApply)
		}
		s.pendingRepl[req.Version] = req
		return
	}
	s.applyRepl(req)
	for {
		nxt, ok := s.pendingRepl[s.version.Load()+1]
		if !ok {
			break
		}
		delete(s.pendingRepl, nxt.Version)
		s.applyRepl(nxt)
	}
}

// applyRepl applies one in-order forwarded push. It mirrors apply/applyV2
// exactly — same SetStep keying, same optimizer path — so the backup's
// parameter block evolves byte-identically to the primary's.
func (s *Server) applyRepl(req *msg.ReplApply) {
	s.cfg.Optimizer.SetStep(req.Version - 1)
	switch req.Body {
	case msg.ReplBodySparse:
		s.cfg.Optimizer.ApplySparse(s.params, sparse.Vec{Idx: req.Idx, Val: req.Grad})
	case msg.ReplBodyDense:
		if len(req.Dense) != s.cfg.Range.Len() {
			s.ctx.Logf("server: repl-apply v%d has %d values, want %d; dropped",
				req.Version, len(req.Dense), s.cfg.Range.Len())
			return
		}
		s.cfg.Optimizer.ApplyDense(s.params, req.Dense)
	case msg.ReplBodyCodec:
		if s.scratch == nil {
			s.scratch = tensor.NewVec(s.cfg.Range.Len())
		}
		if err := codec.DecodePayload(codec.ID(req.Codec), req.Payload, s.scratch); err != nil {
			s.ctx.Logf("server: repl-apply v%d: %v; dropped", req.Version, err)
			return
		}
		s.cfg.Optimizer.ApplyDense(s.params, s.scratch)
	}
	s.version.Store(req.Version)
	s.pushes.Add(1)
	s.replApplied.Add(1)
	s.noteApplied(req.Worker, req.Iter)
	s.cfg.Obs.Version(req.Version)
}
