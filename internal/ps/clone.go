package ps

import (
	"specsync/internal/msg"
	"specsync/internal/node"
)

// Clone dedup: when the scheduler mitigates a straggler by cloning its
// iteration onto a spare worker, the original and the clone race to push the
// same logical (worker, iter) gradient. Servers stay dumb — they do not know
// which worker is a clone of which — except for this one opt-in filter: the
// scheduler announces each clone binding with a CloneNotice before starting
// the clone, the server aliases the spare's slot onto its target, and the
// first push to arrive for a (worker, iter) wins. The loser is acknowledged
// without being applied, so the model digest is exactly what a single
// uncloned worker would have produced.
//
// This is deliberately separate from the replicated-path dedupPush
// (replica.go): that watermark rides the ReplApply stream and only guards
// failover retries; this one is scheduler-driven and guards deliberate
// duplication. Cluster validation keeps the two features mutually exclusive.

// handleCloneNotice binds (Target >= 0) or clears (Target < 0) a clone
// slot's alias.
func (s *Server) handleCloneNotice(req *msg.CloneNotice) {
	if !s.cfg.DedupPushes {
		return
	}
	if req.Target < 0 {
		delete(s.cloneAlias, req.Slot)
		return
	}
	if s.cloneAlias == nil {
		s.cloneAlias = make(map[int32]int32)
	}
	s.cloneAlias[req.Slot] = req.Target
}

// cloneCheck classifies one incoming push under clone dedup. It reports true
// when the push must not be applied: a duplicate of an already-applied
// (worker, iter) — acknowledged so the sender proceeds — or a push from a
// spare slot with no alias yet (the CloneNotice is still in flight, or the
// clone was retired; dropped so the sender's retry resolves the race).
func (s *Server) cloneCheck(from node.ID, seq uint64, iter int64) bool {
	if !s.cfg.DedupPushes {
		return false
	}
	eff, ok := s.cloneEffective(from)
	if !ok {
		s.cloneDropped.Add(1)
		return true
	}
	if eff < 0 {
		return false
	}
	if last, seen := s.lastPushIter[eff]; seen && iter <= last {
		s.cloneDeduped.Add(1)
		s.ctx.Send(from, &msg.PushAck{Seq: seq, Version: s.version.Load(), Staleness: 0})
		return true
	}
	return false
}

// cloneApplied advances the (worker, iter) watermark after a push from this
// sender was actually applied. Kept separate from cloneCheck so pushes that
// fail validation or decoding never poison the watermark.
func (s *Server) cloneApplied(from node.ID, iter int64) {
	if !s.cfg.DedupPushes {
		return
	}
	eff, ok := s.cloneEffective(from)
	if !ok || eff < 0 {
		return
	}
	if s.lastPushIter == nil {
		s.lastPushIter = make(map[int32]int64)
	}
	if last, seen := s.lastPushIter[eff]; !seen || iter > last {
		s.lastPushIter[eff] = iter
	}
}

// cloneEffective resolves a sender to the logical worker index its pushes
// count against: clone slots (>= CloneBase) map through their alias, real
// workers map to themselves. ok=false means an unaliased clone slot;
// eff < 0 means a non-worker sender (never deduped).
func (s *Server) cloneEffective(from node.ID) (eff int32, ok bool) {
	wi := node.WorkerIndex(from)
	if wi < 0 {
		return -1, true
	}
	eff = int32(wi)
	if s.cfg.CloneBase > 0 && eff >= s.cfg.CloneBase {
		target, aliased := s.cloneAlias[eff]
		if !aliased {
			return 0, false
		}
		return target, true
	}
	return eff, true
}

// CloneStats returns clone-dedup counters: duplicate pushes suppressed (and
// re-acknowledged) and unaliased spare-slot pushes dropped. Safe for
// concurrent use.
func (s *Server) CloneStats() (deduped, dropped int64) {
	return s.cloneDeduped.Load(), s.cloneDropped.Load()
}
