package ps

import (
	"testing"
	"time"

	"specsync/internal/des"
	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/optimizer"
	"specsync/internal/tensor"
	"specsync/internal/wire"
)

func TestShardRanges(t *testing.T) {
	rs, err := ShardRanges(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d ranges", len(rs))
	}
	// 10 = 4 + 3 + 3, contiguous.
	want := []Range{{0, 4}, {4, 7}, {7, 10}}
	for i, r := range rs {
		if r != want[i] {
			t.Errorf("range %d = %+v, want %+v", i, r, want[i])
		}
	}
	if _, err := ShardRanges(2, 3); err == nil {
		t.Error("expected error when dim < shards")
	}
	if _, err := ShardRanges(5, 0); err == nil {
		t.Error("expected error for 0 shards")
	}
	if _, err := ShardRanges(5, -1); err == nil {
		t.Error("expected error for negative shards")
	}
}

func TestShardRangesEdges(t *testing.T) {
	// dim == n: every shard gets exactly one parameter.
	rs, err := ShardRanges(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.Len() != 1 || r.Lo != i {
			t.Errorf("shard %d = %+v, want unit range at %d", i, r, i)
		}
	}
	// Single shard owns everything.
	rs, err = ShardRanges(17, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0] != (Range{0, 17}) {
		t.Errorf("single shard = %+v", rs)
	}
	// Remainder spreads over the first shards only, sizes differ by <= 1.
	rs, err = ShardRanges(11, 4) // 3+3+3+2
	if err != nil {
		t.Fatal(err)
	}
	want := []Range{{0, 3}, {3, 6}, {6, 9}, {9, 11}}
	for i, r := range rs {
		if r != want[i] {
			t.Errorf("shard %d = %+v, want %+v", i, r, want[i])
		}
	}
}

func TestShardRangesCoverExactly(t *testing.T) {
	for dim := 1; dim < 50; dim++ {
		for n := 1; n <= dim && n < 9; n++ {
			rs, err := ShardRanges(dim, n)
			if err != nil {
				t.Fatal(err)
			}
			at := 0
			for _, r := range rs {
				if r.Lo != at || r.Hi <= r.Lo {
					t.Fatalf("dim=%d n=%d: bad range %+v at %d", dim, n, r, at)
				}
				at = r.Hi
			}
			if at != dim {
				t.Fatalf("dim=%d n=%d: ranges cover %d", dim, n, at)
			}
		}
	}
}

func newTestSGD(t *testing.T, dim int) *optimizer.SGD {
	t.Helper()
	o, err := optimizer.NewSGD(optimizer.SGDConfig{Schedule: optimizer.Const(0.5)}, dim)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestServerValidation(t *testing.T) {
	if _, err := New(Config{Range: Range{0, 0}}); err == nil {
		t.Error("expected empty-range error")
	}
	if _, err := New(Config{Range: Range{0, 2}, Init: tensor.Vec{1}}); err == nil {
		t.Error("expected init-length error")
	}
	if _, err := New(Config{Range: Range{0, 2}, Init: tensor.Vec{1, 2}}); err == nil {
		t.Error("expected nil-optimizer error")
	}
}

// client captures server responses in a DES harness.
type client struct {
	ctx   node.Context
	resps []wire.Message
}

func (c *client) Init(ctx node.Context)             { c.ctx = ctx }
func (c *client) Receive(_ node.ID, m wire.Message) { c.resps = append(c.resps, m) }

type stalenessLog struct {
	vals []int64
}

func (s *stalenessLog) ObserveStaleness(worker node.ID, st int64, at time.Time) {
	s.vals = append(s.vals, st)
}

func harness(t *testing.T, cfg Config) (*des.Sim, *Server, *client) {
	t.Helper()
	sim, err := des.New(des.Config{Seed: 1, Registry: msg.Registry()})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl := &client{}
	if err := sim.AddNode(node.ServerID(0), srv); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddNode(node.WorkerID(0), cl); err != nil {
		t.Fatal(err)
	}
	sim.Init()
	return sim, srv, cl
}

func TestServerPullPush(t *testing.T) {
	slog := &stalenessLog{}
	sim, srv, cl := harness(t, Config{
		Range:     Range{0, 3},
		Init:      tensor.Vec{1, 2, 3},
		Optimizer: newTestSGD(t, 3),
		Staleness: slog,
	})

	send := func(m wire.Message) {
		cl.ctx.Send(node.ServerID(0), m)
		sim.RunUntilIdle(time.Second)
	}

	send(&msg.PullReq{Seq: 1})
	if len(cl.resps) != 1 {
		t.Fatalf("no pull response")
	}
	pr := cl.resps[0].(*msg.PullResp)
	if pr.Seq != 1 || pr.Version != 0 || len(pr.Values) != 3 || pr.Values[2] != 3 {
		t.Fatalf("PullResp = %+v", pr)
	}

	// Push a gradient computed at version 0: w -= 0.5*g.
	send(&msg.PushReq{Seq: 1, Iter: 0, PullVersion: 0, Dense: []float64{2, 0, -2}})
	ack := cl.resps[1].(*msg.PushAck)
	if ack.Version != 1 || ack.Staleness != 0 {
		t.Fatalf("PushAck = %+v", ack)
	}
	if p := srv.Params(); p[0] != 0 || p[2] != 4 {
		t.Fatalf("params after push = %v", p)
	}

	// Second push still claiming version 0: staleness 1.
	send(&msg.PushReq{Seq: 2, Iter: 0, PullVersion: 0, Dense: []float64{0, 0, 0}})
	ack2 := cl.resps[2].(*msg.PushAck)
	if ack2.Staleness != 1 {
		t.Fatalf("staleness = %d, want 1", ack2.Staleness)
	}
	if len(slog.vals) != 2 || slog.vals[1] != 1 {
		t.Fatalf("observer saw %v", slog.vals)
	}
}

func TestServerSparsePush(t *testing.T) {
	sim, srv, cl := harness(t, Config{
		Range:     Range{10, 14}, // shard-local indices 0..3
		Init:      tensor.Vec{0, 0, 0, 0},
		Optimizer: newTestSGD(t, 4),
	})
	cl.ctx.Send(node.ServerID(0), &msg.PushReq{
		Seq: 1, IsSparse: true,
		SparseIdx: []int32{1, 3}, SparseVal: []float64{2, -2},
	})
	sim.RunUntilIdle(time.Second)
	p := srv.Params()
	if p[1] != -1 || p[3] != 1 || p[0] != 0 {
		t.Fatalf("params = %v", p)
	}
}

func TestServerDropsMalformedPush(t *testing.T) {
	sim, srv, cl := harness(t, Config{
		Range:     Range{0, 3},
		Init:      tensor.Vec{1, 2, 3},
		Optimizer: newTestSGD(t, 3),
	})
	cl.ctx.Send(node.ServerID(0), &msg.PushReq{Seq: 1, Dense: []float64{1}}) // wrong length
	sim.RunUntilIdle(time.Second)
	if srv.Version() != 0 {
		t.Error("malformed push must not be applied")
	}
	if len(cl.resps) != 0 {
		t.Error("malformed push must not be acked")
	}
}

func TestServerInitIsCopied(t *testing.T) {
	init := tensor.Vec{1, 2}
	srv, err := New(Config{Range: Range{0, 2}, Init: init, Optimizer: newTestSGD(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	init[0] = 99
	if srv.Params()[0] != 1 {
		t.Error("server aliases caller's init slice")
	}
}

func TestServerStats(t *testing.T) {
	sim, srv, cl := harness(t, Config{
		Range:     Range{0, 2},
		Init:      tensor.Vec{0, 0},
		Optimizer: newTestSGD(t, 2),
	})
	cl.ctx.Send(node.ServerID(0), &msg.PullReq{Seq: 1})
	cl.ctx.Send(node.ServerID(0), &msg.PushReq{Seq: 1, Dense: []float64{1, 1}})
	cl.ctx.Send(node.ServerID(0), &msg.PushReq{Seq: 2, Dense: []float64{1, 1}})
	sim.RunUntilIdle(time.Second)
	pulls, pushes := srv.Stats()
	if pulls != 1 || pushes != 2 {
		t.Errorf("stats = %d/%d", pulls, pushes)
	}
	if srv.Range() != (Range{0, 2}) {
		t.Errorf("Range = %+v", srv.Range())
	}
}
