package ps

import (
	"fmt"
	"io"

	"specsync/internal/tensor"
	"specsync/internal/wire"
)

// Checkpoint support: a shard's full state (range, version, parameters)
// serializes through the wire codec so training can stop and resume. The
// format carries a magic header and version byte so stale files fail loudly.

const (
	checkpointMagic   uint32 = 0x53505343 // "SPSC"
	checkpointVersion uint8  = 1
)

// Snapshot is a point-in-time copy of a shard's state.
type Snapshot struct {
	Range   Range
	Version int64
	Params  tensor.Vec
}

// Snapshot captures the shard's current state. Call it only from the shard's
// own execution context (or after the runtime has stopped).
func (s *Server) Snapshot() Snapshot {
	return Snapshot{
		Range:   s.cfg.Range,
		Version: s.version.Load(),
		Params:  s.params.Clone(),
	}
}

// Restore overwrites the shard's state from a snapshot. The snapshot's range
// must match the shard's.
func (s *Server) Restore(snap Snapshot) error {
	if snap.Range != s.cfg.Range {
		return fmt.Errorf("ps: snapshot range %+v does not match shard %+v", snap.Range, s.cfg.Range)
	}
	if len(snap.Params) != s.cfg.Range.Len() {
		return fmt.Errorf("ps: snapshot has %d params, shard needs %d", len(snap.Params), s.cfg.Range.Len())
	}
	copy(s.params, snap.Params)
	s.version.Store(snap.Version)
	return nil
}

// WriteTo serializes the snapshot.
func (snap Snapshot) WriteTo(w io.Writer) (int64, error) {
	buf := wire.NewWriter(16 + 8*len(snap.Params))
	buf.Uint32(checkpointMagic)
	buf.Uint8(checkpointVersion)
	buf.Int(snap.Range.Lo)
	buf.Int(snap.Range.Hi)
	buf.Varint(snap.Version)
	buf.Float64s(snap.Params)
	n, err := w.Write(buf.Bytes())
	if err != nil {
		return int64(n), fmt.Errorf("ps: writing checkpoint: %w", err)
	}
	return int64(n), nil
}

// ReadSnapshot deserializes a snapshot written by WriteTo.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Snapshot{}, fmt.Errorf("ps: reading checkpoint: %w", err)
	}
	rd := wire.NewReader(data)
	if magic := rd.Uint32(); magic != checkpointMagic {
		return Snapshot{}, fmt.Errorf("ps: bad checkpoint magic %#x", magic)
	}
	if v := rd.Uint8(); v != checkpointVersion {
		return Snapshot{}, fmt.Errorf("ps: unsupported checkpoint version %d", v)
	}
	snap := Snapshot{
		Range:   Range{Lo: rd.Int(), Hi: rd.Int()},
		Version: rd.Varint(),
		Params:  rd.Float64s(),
	}
	if err := rd.Err(); err != nil {
		return Snapshot{}, fmt.Errorf("ps: decoding checkpoint: %w", err)
	}
	if rd.Remaining() != 0 {
		return Snapshot{}, fmt.Errorf("ps: checkpoint has %d trailing bytes", rd.Remaining())
	}
	if snap.Range.Len() != len(snap.Params) {
		return Snapshot{}, fmt.Errorf("ps: checkpoint range %+v does not match %d params", snap.Range, len(snap.Params))
	}
	return snap, nil
}
