package jobs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeRunner drives a Manager without a simulator: a sorted timer queue
// advanced by hand, plus spawn/halt/cleanup/probe journals.
type fakeRunner struct {
	now     time.Duration
	timers  []fakeTimer
	spawned []int
	halted  []int
	cleaned []int
	loss    map[int]float64
	spawnErr map[int]error
	allDone  bool
}

type fakeTimer struct {
	at time.Duration
	f  func()
}

func newFakeRunner() *fakeRunner {
	return &fakeRunner{loss: map[int]float64{}, spawnErr: map[int]error{}}
}

func (r *fakeRunner) config(tick time.Duration, maxConc int) ManagerConfig {
	return ManagerConfig{
		TickEvery:     tick,
		MaxConcurrent: maxConc,
		Now:           func() time.Duration { return r.now },
		Schedule: func(d time.Duration, f func()) {
			r.timers = append(r.timers, fakeTimer{at: r.now + d, f: f})
		},
		Spawn: func(j *Job) error {
			if err := r.spawnErr[j.ID]; err != nil {
				return err
			}
			r.spawned = append(r.spawned, j.ID)
			return nil
		},
		Halt:    func(j *Job) { r.halted = append(r.halted, j.ID) },
		Cleanup: func(j *Job) { r.cleaned = append(r.cleaned, j.ID) },
		Probe: func(j *Job) ProbeSample {
			return ProbeSample{Loss: r.loss[j.ID], Iters: 10, Pushes: 20}
		},
		OnAllDone: func() { r.allDone = true },
	}
}

// step fires the earliest pending timer.
func (r *fakeRunner) step(t *testing.T) {
	t.Helper()
	if len(r.timers) == 0 {
		t.Fatal("no pending timers")
	}
	sort.SliceStable(r.timers, func(a, b int) bool { return r.timers[a].at < r.timers[b].at })
	tm := r.timers[0]
	r.timers = r.timers[1:]
	if tm.at > r.now {
		r.now = tm.at
	}
	tm.f()
}

func submitN(m *Manager, n int) []*Job {
	out := make([]*Job, n)
	for i := range out {
		j := &Job{Name: fmt.Sprintf("j%d", i), Workers: 2, TargetLoss: 0.1, EvalEvery: time.Second, ConsecutiveBelow: 2}
		m.Submit(j)
		out[i] = j
	}
	return out
}

func TestManagerAdmissionAndConvergence(t *testing.T) {
	r := newFakeRunner()
	m, err := NewManager(r.config(time.Second, 0))
	if err != nil {
		t.Fatal(err)
	}
	js := submitN(m, 2)
	js[1].SubmitAt = 3 * time.Second // staggered arrival
	r.loss[0], r.loss[1] = 1.0, 1.0

	m.Start()
	r.step(t) // t=0: admit job 0 only
	if js[0].State != Running || js[1].State != Pending {
		t.Fatalf("states after t=0: %v, %v", js[0].State, js[1].State)
	}
	r.step(t) // t=1s
	r.step(t) // t=2s
	if js[1].State != Pending {
		t.Fatalf("job 1 admitted early at %v", r.now)
	}
	r.step(t) // t=3s: job 1 due
	if js[1].State != Running || js[1].AdmittedAt != 3*time.Second {
		t.Fatalf("job 1 not admitted at 3s: %v @%v", js[1].State, js[1].AdmittedAt)
	}

	// Drop job 0 below target: converges after ConsecutiveBelow=2 probes.
	r.loss[0] = 0.05
	r.step(t) // t=4s: streak 1
	if js[0].State != Running {
		t.Fatalf("job 0 converged after one probe")
	}
	r.step(t) // t=5s: streak 2 → converged
	if js[0].State != Converged {
		t.Fatalf("job 0 state %v, want converged", js[0].State)
	}
	if js[0].ConvergeTime == 0 || js[0].FinishedAt != 5*time.Second {
		t.Errorf("converge bookkeeping: time %v, finished %v", js[0].ConvergeTime, js[0].FinishedAt)
	}
	if len(r.halted) != 1 || r.halted[0] != 0 {
		t.Errorf("halted = %v", r.halted)
	}
	// Janitor runs one tick later (in-flight drain).
	if len(r.cleaned) != 0 {
		t.Errorf("cleaned same tick as retirement")
	}
	r.step(t)
	if len(r.cleaned) != 1 || r.cleaned[0] != 0 {
		t.Errorf("cleaned = %v", r.cleaned)
	}

	// Finish job 1; the loop stops and OnAllDone fires once.
	r.loss[1] = 0.05
	r.step(t)
	r.step(t)
	if js[1].State != Converged {
		t.Fatalf("job 1 state %v", js[1].State)
	}
	if !r.allDone {
		t.Errorf("OnAllDone not fired")
	}
	if len(r.timers) != 0 {
		t.Errorf("loop still scheduling after quiescence")
	}
	if m.Ticks() == 0 {
		t.Errorf("no ticks counted")
	}
}

// TestManagerLateSubmit pins the Submit contract after quiescence: once the
// queue drains and no job is running the loop stops rescheduling, so a later
// submission must re-arm it (and OnAllDone fires again at the next
// quiescence) instead of leaving the job Pending forever.
func TestManagerLateSubmit(t *testing.T) {
	r := newFakeRunner()
	m, err := NewManager(r.config(time.Second, 0))
	if err != nil {
		t.Fatal(err)
	}
	js := submitN(m, 1)
	r.loss[0] = 0.05
	m.Start()
	r.step(t) // t=0: admit
	r.step(t) // t=1s: streak 1
	r.step(t) // t=2s: streak 2 → converged, quiescent
	if js[0].State != Converged || !r.allDone {
		t.Fatalf("setup: state %v, allDone %v", js[0].State, r.allDone)
	}
	if len(r.timers) != 0 {
		t.Fatalf("loop still scheduling after quiescence")
	}

	r.allDone = false
	late := &Job{Name: "late", Workers: 1, TargetLoss: 0.1, EvalEvery: time.Second, ConsecutiveBelow: 1}
	if id := m.Submit(late); id != 1 {
		t.Fatalf("late job id = %d, want 1", id)
	}
	if len(r.timers) != 1 {
		t.Fatalf("late submit did not re-arm the control loop (%d timers)", len(r.timers))
	}
	r.loss[1] = 0.01
	r.step(t) // re-armed tick: admit
	if late.State != Running {
		t.Fatalf("late job state %v, want running", late.State)
	}
	r.step(t) // probe → converged → quiescent again
	if late.State != Converged {
		t.Fatalf("late job state %v, want converged", late.State)
	}
	if !r.allDone {
		t.Errorf("OnAllDone not re-fired after late job finished")
	}
	if len(r.timers) != 0 {
		t.Errorf("loop still scheduling after second quiescence")
	}
}

// TestSubmitPreparedError checks that a failing prepare hook discards the
// job without consuming its ID or making it visible.
func TestSubmitPreparedError(t *testing.T) {
	r := newFakeRunner()
	m, err := NewManager(r.config(time.Second, 0))
	if err != nil {
		t.Fatal(err)
	}
	j := &Job{Name: "bad", Workers: 1}
	if _, err := m.SubmitPrepared(j, func(int) error { return fmt.Errorf("nope") }); err == nil {
		t.Fatal("prepare error not returned")
	}
	if n := len(m.Jobs()); n != 0 {
		t.Fatalf("discarded job visible: %d jobs", n)
	}
	if id := m.Submit(&Job{Name: "good", Workers: 1, TargetLoss: 0.1, EvalEvery: time.Second}); id != 0 {
		t.Errorf("discarded job consumed ID: next id = %d, want 0", id)
	}
}

// TestSubmitPreparedConcurrent races SubmitPrepared against the control loop
// (run with -race): the prepare hook sets ID-dependent state under the
// manager lock, so no tick may ever spawn a job with a nil payload, and
// submissions that land on a quiescent manager must still be admitted.
func TestSubmitPreparedConcurrent(t *testing.T) {
	var tmu sync.Mutex
	var timers []func()
	cfg := ManagerConfig{
		TickEvery: time.Second,
		Now:       func() time.Duration { return 0 },
		Schedule: func(d time.Duration, f func()) {
			tmu.Lock()
			timers = append(timers, f)
			tmu.Unlock()
		},
		Spawn: func(j *Job) error {
			if j.Payload == nil {
				t.Errorf("job %d spawned with nil payload", j.ID)
			}
			if j.Name == "" {
				t.Errorf("job %d spawned with empty name", j.ID)
			}
			return nil
		},
		Halt:  func(*Job) {},
		Probe: func(*Job) ProbeSample { return ProbeSample{Loss: 0} },
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()

	// Driver: fire queued ticks until told to stop and the queue is dry.
	stop := make(chan struct{})
	var driver sync.WaitGroup
	driver.Add(1)
	go func() {
		defer driver.Done()
		for {
			tmu.Lock()
			var f func()
			if len(timers) > 0 {
				f = timers[0]
				timers = timers[1:]
			}
			tmu.Unlock()
			if f != nil {
				f()
				continue
			}
			select {
			case <-stop:
				return
			default:
				runtime.Gosched()
			}
		}
	}()

	const goroutines, perG = 4, 25
	var subs sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		subs.Add(1)
		go func() {
			defer subs.Done()
			for i := 0; i < perG; i++ {
				// Jobs converge on their admission tick (loss 0 < target,
				// streak 1), so the manager repeatedly goes quiescent and
				// later submissions exercise the re-arm path.
				j := &Job{Workers: 1, TargetLoss: 0.1, ConsecutiveBelow: 1}
				if _, err := m.SubmitPrepared(j, func(id int) error {
					j.Name = fmt.Sprintf("c%d", id)
					j.Payload = id
					return nil
				}); err != nil {
					t.Errorf("SubmitPrepared: %v", err)
				}
			}
		}()
	}
	subs.Wait()
	// Let the driver drain every remaining tick (each submission guarantees
	// a scheduled tick, so the queue only dries up after full admission).
	for {
		tmu.Lock()
		n := len(timers)
		tmu.Unlock()
		if n == 0 {
			break
		}
		runtime.Gosched()
	}
	close(stop)
	driver.Wait()

	all := m.Jobs()
	if len(all) != goroutines*perG {
		t.Fatalf("jobs = %d, want %d", len(all), goroutines*perG)
	}
	for _, j := range all {
		if j.Payload == nil {
			t.Errorf("job %d has nil payload", j.ID)
		}
		if !j.State.Terminal() {
			t.Errorf("job %d not terminal: %v", j.ID, j.State)
		}
	}
}

func TestManagerMaxConcurrent(t *testing.T) {
	r := newFakeRunner()
	m, err := NewManager(r.config(time.Second, 1))
	if err != nil {
		t.Fatal(err)
	}
	js := submitN(m, 2)
	r.loss[0], r.loss[1] = 1.0, 1.0
	m.Start()
	r.step(t)
	if js[0].State != Running || js[1].State != Pending {
		t.Fatalf("cap ignored: %v, %v", js[0].State, js[1].State)
	}
	// Retiring job 0 frees the slot; job 1 is admitted the same tick.
	m.RequestStop(0)
	r.step(t)
	if js[0].State != Stopped {
		t.Fatalf("job 0 state %v", js[0].State)
	}
	r.step(t)
	if js[1].State != Running {
		t.Fatalf("job 1 not admitted after slot freed: %v", js[1].State)
	}
}

func TestManagerByteBudget(t *testing.T) {
	r := newFakeRunner()
	m, err := NewManager(r.config(time.Second, 0))
	if err != nil {
		t.Fatal(err)
	}
	j := &Job{Name: "b", Workers: 1, TargetLoss: 0.1, EvalEvery: time.Second,
		Quota: Quota{ByteBudget: 100}}
	m.Submit(j)
	r.loss[0] = 1.0
	m.Start()
	r.step(t)
	if j.State != Running {
		t.Fatal("not admitted")
	}
	j.Acct.Transfer.RecordTransfer("a", "b", 3, 101, time.Unix(0, 0))
	r.step(t)
	if j.State != OverBudget {
		t.Fatalf("state %v, want over_budget", j.State)
	}
	// The final probe sample was taken at retirement.
	if j.Iters != 10 || j.Pushes != 20 {
		t.Errorf("no retirement sample: iters %d, pushes %d", j.Iters, j.Pushes)
	}
}

func TestManagerSpawnFailure(t *testing.T) {
	r := newFakeRunner()
	m, err := NewManager(r.config(time.Second, 0))
	if err != nil {
		t.Fatal(err)
	}
	js := submitN(m, 2)
	r.spawnErr[0] = fmt.Errorf("no capacity")
	r.loss[1] = 1.0
	m.Start()
	r.step(t)
	if js[0].State != Failed || js[0].Err != "no capacity" {
		t.Fatalf("job 0: %v %q", js[0].State, js[0].Err)
	}
	// The failure does not block the next job in the queue.
	if js[1].State != Running {
		t.Fatalf("job 1 blocked by job 0 failure: %v", js[1].State)
	}
}

func TestManagerFinalize(t *testing.T) {
	r := newFakeRunner()
	m, err := NewManager(r.config(time.Second, 1))
	if err != nil {
		t.Fatal(err)
	}
	js := submitN(m, 2)
	r.loss[0] = 1.0
	m.Start()
	r.step(t) // job 0 running, job 1 queued behind the cap
	r.now += 10 * time.Second
	m.Finalize()
	if js[0].State != Stopped {
		t.Errorf("running job after Finalize: %v", js[0].State)
	}
	if js[1].State != Stopped {
		t.Errorf("queued job after Finalize: %v", js[1].State)
	}
	if len(r.cleaned) != 2 {
		t.Errorf("cleaned = %v, want both", r.cleaned)
	}
	// The deadline sample reflects the final probe.
	if js[0].Iters != 10 {
		t.Errorf("no final sample on Finalize")
	}
	m.Finalize() // idempotent
	if len(r.cleaned) != 2 {
		t.Errorf("Finalize not idempotent: cleaned %v", r.cleaned)
	}
}

func TestManagerStatusAndList(t *testing.T) {
	r := newFakeRunner()
	m, err := NewManager(r.config(time.Second, 0))
	if err != nil {
		t.Fatal(err)
	}
	submitN(m, 2)
	if _, ok := m.Status(5); ok {
		t.Errorf("Status(5) found a job")
	}
	e, ok := m.Status(1)
	if !ok || e.ID != 1 || e.Name != "j1" || e.State != "pending" {
		t.Errorf("Status(1) = %+v", e)
	}
	l := m.List()
	if len(l) != 2 || l[0].ID != 0 || l[1].ID != 1 {
		t.Errorf("List = %+v", l)
	}
	if err := m.RequestStop(9); err == nil {
		t.Errorf("RequestStop(9) accepted")
	}
}

func TestGatewayHTTPErrors(t *testing.T) {
	r := newFakeRunner()
	m, err := NewManager(r.config(time.Second, 0))
	if err != nil {
		t.Fatal(err)
	}
	submitN(m, 1)

	// Read-only gateway: POST is 501.
	ro := httptest.NewServer(NewGateway(m, nil))
	defer ro.Close()
	resp, err := http.Post(ro.URL+"/jobs", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("read-only POST: %d, want 501", resp.StatusCode)
	}

	srv := httptest.NewServer(NewGateway(m, func(req SubmitRequest) (int, error) {
		return 0, fmt.Errorf("always rejected")
	}))
	defer srv.Close()

	resp, err = http.Post(srv.URL+"/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/jobs", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("rejected submit: %d, want 422", resp.StatusCode)
	}

	for _, path := range []string{"/jobs/abc", "/jobs/-1"} {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: %d", path, resp.StatusCode)
		}
	}

	// DELETE marks the job for retirement and returns its entry.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/0", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var e struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || e.ID != 0 {
		t.Errorf("DELETE /jobs/0: %d %+v", resp.StatusCode, e)
	}
	m.Start()
	r.step(t)
	if got := m.Jobs()[0].State; got != Stopped {
		t.Errorf("job after DELETE + tick: %v", got)
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		Pending: "pending", Running: "running", Converged: "converged",
		Stopped: "stopped", OverBudget: "over_budget", Failed: "failed",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), str)
		}
	}
	for _, s := range []State{Converged, Stopped, OverBudget, Failed} {
		if !s.Terminal() {
			t.Errorf("%v not terminal", s)
		}
	}
	for _, s := range []State{Pending, Running} {
		if s.Terminal() {
			t.Errorf("%v terminal", s)
		}
	}
}
