package jobs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// SubmitRequest is the POST /jobs payload. The runner (cluster.Fleet) turns
// it into a full job spec; the gateway only transports it.
type SubmitRequest struct {
	// Name labels the job (defaulted by the runner if empty).
	Name string `json:"name"`
	// Workload selects the training profile ("tiny", "mf-small", ...).
	Workload string `json:"workload"`
	// Scheme selects synchronization ("bsp", "ssp", "asp", "specsync", ...).
	Scheme string `json:"scheme"`
	// Workers is the job's cluster size.
	Workers int `json:"workers"`
	// Servers is the number of shard slots the job spreads over (0 = auto).
	Servers int `json:"servers"`
	// Seed drives the job's data order and parameter init.
	Seed int64 `json:"seed"`
	// SubmitAtSeconds delays admission until this virtual time.
	SubmitAtSeconds float64 `json:"submit_at_seconds"`
	// MaxInflightPush and ByteBudget are the job's quotas (0 = unlimited).
	MaxInflightPush int   `json:"max_inflight_push"`
	ByteBudget      int64 `json:"byte_budget"`
}

// SubmitAt converts the request's delay to a duration.
func (r SubmitRequest) SubmitAt() time.Duration {
	return time.Duration(r.SubmitAtSeconds * float64(time.Second))
}

// NewGateway builds the jobs HTTP API:
//
//	POST   /jobs      — submit a job (202 + {"id": n})
//	GET    /jobs      — list all jobs
//	GET    /jobs/{id} — one job's status
//	DELETE /jobs/{id} — request retirement (the next manager tick halts it)
//
// submit turns a SubmitRequest into a queued job; nil disables POST (501),
// for read-only surfaces.
func NewGateway(m *Manager, submit func(SubmitRequest) (int, error)) http.Handler {
	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	}
	jobID := func(r *http.Request) (int, bool) {
		id, err := strconv.Atoi(r.PathValue("id"))
		return id, err == nil && id >= 0
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		if submit == nil {
			http.Error(w, "job submission not enabled on this surface", http.StatusNotImplemented)
			return
		}
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		id, err := submit(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]int{"id": id})
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": m.List()})
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, ok := jobID(r)
		if !ok {
			http.Error(w, "bad job id", http.StatusBadRequest)
			return
		}
		e, ok := m.Status(id)
		if !ok {
			http.Error(w, "no such job", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, e)
	})
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, ok := jobID(r)
		if !ok {
			http.Error(w, "bad job id", http.StatusBadRequest)
			return
		}
		if err := m.RequestStop(id); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		e, _ := m.Status(id)
		writeJSON(w, http.StatusOK, e)
	})
	return mux
}
