// Package jobs is the multi-tenant job platform: a manager that admits,
// schedules, and retires concurrent training jobs sharing one parameter-server
// fleet and one deterministic event loop.
//
// Each job owns a JobID, a namespaced parameter range carved out of the shared
// key space (core.ShardRoute's Job dimension), its own synchronization scheme,
// and per-job fairness/quota accounting: a cap on in-flight pushes and a byte
// budget measured by the bytes-on-wire counters. The worker and scheduler code
// runs unchanged inside a fleet — a scoped handler (scope.go) translates node
// IDs at the boundary, and a per-server multiplexer (host.go) dispatches the
// JobMsg envelope to the right tenant shard. Admission, quota enforcement,
// convergence probing, and janitor cleanup all happen on a periodic control
// tick (manager.go, the Orion-Agent sync-scheduler idiom), so a multi-job run
// stays deterministic under the simulator. An HTTP gateway (gateway.go)
// exposes POST/GET/DELETE /jobs on the existing observability surface.
package jobs

import (
	"sync/atomic"
	"time"

	"specsync/internal/metrics"
	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/wire"
)

// State is a job's lifecycle position. Transitions only move forward:
// Pending → Running → one of the terminal states.
type State int

const (
	// Pending jobs sit in the admission queue (submitted, not yet due or
	// waiting for a concurrency slot).
	Pending State = iota
	// Running jobs have live nodes training.
	Running
	// Converged jobs reached their target loss and were retired.
	Converged
	// Stopped jobs were retired by the operator (DELETE /jobs/{id}).
	Stopped
	// OverBudget jobs were retired by the janitor for exceeding their wire
	// byte budget.
	OverBudget
	// Failed jobs could not be spawned (bad spec caught at admission).
	Failed
)

// String returns the lowercase state name used in JSON and logs.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Converged:
		return "converged"
	case Stopped:
		return "stopped"
	case OverBudget:
		return "over_budget"
	case Failed:
		return "failed"
	}
	return "unknown"
}

// Terminal reports whether the job has been retired.
func (s State) Terminal() bool { return s != Pending && s != Running }

// Quota bounds one job's resource usage on the shared fleet.
type Quota struct {
	// MaxInflightPush caps this job's unacknowledged push messages (per
	// worker); further pushes queue at the tenancy boundary until acks
	// drain. Zero means unlimited.
	MaxInflightPush int
	// ByteBudget retires the job (state OverBudget) once its bytes on wire
	// exceed this. Zero means unlimited.
	ByteBudget int64
}

// TransferRecorder is the byte-accounting sink (metrics.Transfer or a codec
// tap around one); declared locally so this package needs no simulator
// dependency.
type TransferRecorder interface {
	RecordTransfer(from, to node.ID, kind wire.Kind, bytes int, at time.Time)
}

// Acct is one job's live resource accounting. The Transfer accumulates every
// message the job's nodes send (recorded under the inner message kind but
// with envelope bytes, so per-job totals sum exactly to the fleet total);
// the atomic counters are maintained by the push gate and read by the
// gateway without locks.
type Acct struct {
	// Transfer is the per-kind byte accounting for this job.
	Transfer *metrics.Transfer

	rec       TransferRecorder
	inflight  atomic.Int64
	throttled atomic.Int64
}

// NewAcct builds accounting around a fresh per-job Transfer.
func NewAcct() *Acct {
	t := metrics.NewTransfer(msg.IsControl)
	return &Acct{Transfer: t, rec: t}
}

// SetRecorder replaces the recording sink, e.g. with a codec tap wrapped
// around Transfer so the job also gets per-codec bytes-on-wire series.
func (a *Acct) SetRecorder(r TransferRecorder) { a.rec = r }

func (a *Acct) record(from, to node.ID, kind wire.Kind, bytes int, at time.Time) {
	if a == nil || a.rec == nil {
		return
	}
	a.rec.RecordTransfer(from, to, kind, bytes, at)
}

// Bytes returns the job's total bytes on wire so far.
func (a *Acct) Bytes() int64 {
	if a == nil || a.Transfer == nil {
		return 0
	}
	return a.Transfer.TotalBytes()
}

// InflightPushes returns the current number of unacknowledged pushes.
func (a *Acct) InflightPushes() int64 {
	if a == nil {
		return 0
	}
	return a.inflight.Load()
}

// ThrottledPushes returns how many pushes have waited in the quota queue.
func (a *Acct) ThrottledPushes() int64 {
	if a == nil {
		return 0
	}
	return a.throttled.Load()
}

// Job is one training job's manager-side record. The identity fields are set
// before Submit and never change; the lifecycle fields below the marker are
// owned by the manager (guarded by its lock once submitted).
type Job struct {
	// ID is assigned by Submit; it namespaces the job's node IDs and its
	// parameter ranges in the shared routing table.
	ID int
	// Name is the human-readable label (also the per-job metric label).
	Name string
	// SchemeName is the synchronization scheme label for listings.
	SchemeName string
	// Workers is the job's cluster size.
	Workers int
	// SubmitAt delays admission until this virtual time.
	SubmitAt time.Duration
	// TargetLoss defines convergence for this job.
	TargetLoss float64
	// EvalEvery is the probe interval (quantized to manager ticks).
	EvalEvery time.Duration
	// ConsecutiveBelow is the convergence streak length.
	ConsecutiveBelow int
	// Quota bounds the job's fleet usage.
	Quota Quota
	// Acct is the job's live accounting, shared with its scoped nodes.
	Acct *Acct
	// Payload carries the runner's construction state (cluster.Fleet hangs
	// its per-job node handles here); the manager never inspects it.
	Payload any

	// --- manager-owned from Submit onward ---

	// State is the lifecycle position.
	State State
	// Err is the spawn error for Failed jobs.
	Err string
	// AdmittedAt and FinishedAt are virtual times (zero until reached).
	AdmittedAt time.Duration
	FinishedAt time.Duration
	// Loss and IterSeries are the per-probe series.
	Loss       metrics.Series
	IterSeries metrics.Series
	// FinalLoss, Iters, and Pushes mirror the latest probe sample.
	FinalLoss float64
	Iters     int64
	Pushes    int64
	// ConvergeTime is the start of the qualifying streak (Converged only).
	ConvergeTime time.Duration

	streak    int
	nextProbe time.Duration
	stopReq   bool
	cleaned   bool
}
