package jobs

import (
	"math/rand"
	"testing"
	"time"

	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/wire"
)

func TestPrefixAndIDs(t *testing.T) {
	if Prefix(0) != "" {
		t.Errorf("Prefix(0) = %q, want empty (default tenant keeps the legacy namespace)", Prefix(0))
	}
	if got := WorkerID(0, 3); got != node.WorkerID(3) {
		t.Errorf("WorkerID(0,3) = %q, want legacy %q", got, node.WorkerID(3))
	}
	if got := SchedulerID(0); got != node.Scheduler {
		t.Errorf("SchedulerID(0) = %q, want legacy %q", got, node.Scheduler)
	}
	if got := WorkerID(2, 3); got != "job/2/worker/3" {
		t.Errorf("WorkerID(2,3) = %q", got)
	}
	if got := SchedulerID(2); got != "job/2/scheduler" {
		t.Errorf("SchedulerID(2) = %q", got)
	}
}

func TestSplit(t *testing.T) {
	cases := []struct {
		in    node.ID
		job   int
		local node.ID
	}{
		{"worker/3", 0, "worker/3"},
		{"scheduler", 0, "scheduler"},
		{"server/1", 0, "server/1"},
		{"job/2/worker/3", 2, "worker/3"},
		{"job/11/scheduler", 11, "scheduler"},
		{"job/x/worker/0", 0, "job/x/worker/0"}, // malformed: passthrough
		{"job/", 0, "job/"},
		{"job/0/worker/1", 0, "job/0/worker/1"}, // job 0 never uses the prefix
	}
	for _, tc := range cases {
		j, local := Split(tc.in)
		if j != tc.job || local != tc.local {
			t.Errorf("Split(%q) = (%d, %q), want (%d, %q)", tc.in, j, local, tc.job, tc.local)
		}
	}
	// Round trip for every job including the default tenant.
	for _, job := range []int{0, 1, 7} {
		for i := 0; i < 3; i++ {
			j, local := Split(WorkerID(job, i))
			if j != job || local != node.WorkerID(i) {
				t.Errorf("Split(WorkerID(%d,%d)) = (%d, %q)", job, i, j, local)
			}
		}
	}
}

// fakeCtx records sends for scope tests.
type fakeCtx struct {
	self  node.ID
	sends []fakeSend
	logs  int
}

type fakeSend struct {
	to node.ID
	m  wire.Message
}

func (c *fakeCtx) Self() node.ID                { return c.self }
func (c *fakeCtx) Now() time.Time               { return time.Unix(0, 0) }
func (c *fakeCtx) Send(to node.ID, m wire.Message) {
	c.sends = append(c.sends, fakeSend{to: to, m: m})
}
func (c *fakeCtx) After(d time.Duration, f func()) node.CancelFunc { return func() {} }
func (c *fakeCtx) Rand() *rand.Rand                                { return rand.New(rand.NewSource(1)) }
func (c *fakeCtx) Logf(format string, args ...any)                 { c.logs++ }

// echoHandler records what the wrapped node sees and can send on demand.
type echoHandler struct {
	ctx   node.Context
	froms []node.ID
	msgs  []wire.Message
}

func (h *echoHandler) Init(ctx node.Context)             { h.ctx = ctx }
func (h *echoHandler) Receive(from node.ID, m wire.Message) {
	h.froms = append(h.froms, from)
	h.msgs = append(h.msgs, m)
}

func TestScopedTranslation(t *testing.T) {
	inner := &echoHandler{}
	acct := NewAcct()
	s := WrapWorker(3, inner, acct, 0)
	ctx := &fakeCtx{self: WorkerID(3, 1)}
	s.Init(ctx)

	// The wrapped node sees a job-local self.
	if got := inner.ctx.Self(); got != node.WorkerID(1) {
		t.Errorf("scoped Self() = %q, want %q", got, node.WorkerID(1))
	}

	// Server-bound data traffic is enveloped for jobs beyond the default.
	inner.ctx.Send(node.ServerID(2), &msg.PushReq{Seq: 1, Dense: []float64{1}})
	if len(ctx.sends) != 1 || ctx.sends[0].to != node.ServerID(2) {
		t.Fatalf("server send = %+v", ctx.sends)
	}
	env, ok := ctx.sends[0].m.(*msg.JobMsg)
	if !ok || env.Job != 3 {
		t.Fatalf("server-bound message not enveloped for job 3: %T", ctx.sends[0].m)
	}

	// Scheduler- and worker-bound control traffic is renamed, not enveloped.
	inner.ctx.Send(node.Scheduler, &msg.PushNotice{})
	inner.ctx.Send(node.WorkerID(2), &msg.Start{})
	if ctx.sends[1].to != SchedulerID(3) || ctx.sends[2].to != WorkerID(3, 2) {
		t.Errorf("control sends = %q, %q", ctx.sends[1].to, ctx.sends[2].to)
	}
	if _, ok := ctx.sends[1].m.(*msg.JobMsg); ok {
		t.Errorf("scheduler-bound message enveloped")
	}

	// Incoming namespaced senders are translated back; foreign jobs are not.
	s.Receive(SchedulerID(3), &msg.Start{})
	s.Receive(node.ServerID(2), &msg.PushAck{})
	if inner.froms[0] != node.Scheduler || inner.froms[1] != node.ServerID(2) {
		t.Errorf("receive froms = %v", inner.froms)
	}

	// Every send was recorded against the job's accounting, at envelope size.
	if acct.Bytes() == 0 {
		t.Errorf("no bytes recorded")
	}
	want := int64(wire.EncodedSize(env) + wire.EncodedSize(&msg.PushNotice{}) + wire.EncodedSize(&msg.Start{}))
	if acct.Bytes() != want {
		t.Errorf("acct bytes = %d, want %d", acct.Bytes(), want)
	}
}

func TestScopedDefaultTenantIdentity(t *testing.T) {
	inner := &echoHandler{}
	s := WrapWorker(0, inner, NewAcct(), 0)
	ctx := &fakeCtx{self: node.WorkerID(1)}
	s.Init(ctx)

	inner.ctx.Send(node.ServerID(0), &msg.PushReq{Seq: 1})
	inner.ctx.Send(node.Scheduler, &msg.PushNotice{})
	if ctx.sends[0].to != node.ServerID(0) || ctx.sends[1].to != node.Scheduler {
		t.Errorf("job-0 sends renamed: %q, %q", ctx.sends[0].to, ctx.sends[1].to)
	}
	if _, ok := ctx.sends[0].m.(*msg.JobMsg); ok {
		t.Errorf("job-0 server traffic enveloped — breaks legacy parity")
	}
}

func TestPushGate(t *testing.T) {
	inner := &echoHandler{}
	acct := NewAcct()
	s := WrapWorker(1, inner, acct, 2)
	ctx := &fakeCtx{self: WorkerID(1, 0)}
	s.Init(ctx)

	push := func(seq uint64) { inner.ctx.Send(node.ServerID(0), &msg.PushReq{Seq: seq}) }
	push(1)
	push(2)
	push(3) // over the cap: queued
	push(4) // queued
	if len(ctx.sends) != 2 {
		t.Fatalf("delivered %d pushes with cap 2", len(ctx.sends))
	}
	if acct.ThrottledPushes() != 2 {
		t.Errorf("throttled = %d, want 2", acct.ThrottledPushes())
	}
	if acct.InflightPushes() != 2 {
		t.Errorf("inflight = %d, want 2", acct.InflightPushes())
	}

	// Each ack releases one queued push, FIFO.
	s.Receive(node.ServerID(0), &msg.PushAck{})
	if len(ctx.sends) != 3 {
		t.Fatalf("ack did not release a queued push")
	}
	env := ctx.sends[2].m.(*msg.JobMsg)
	rel, err := msg.UnwrapJob(wireRegistry(t), env)
	if err != nil {
		t.Fatalf("unwrap released push: %v", err)
	}
	if rel.(*msg.PushReq).Seq != 3 {
		t.Errorf("released push seq = %d, want 3 (FIFO)", rel.(*msg.PushReq).Seq)
	}
	s.Receive(node.ServerID(0), &msg.PushAck{})
	s.Receive(node.ServerID(0), &msg.PushAck{})
	s.Receive(node.ServerID(0), &msg.PushAck{})
	if len(ctx.sends) != 4 {
		t.Errorf("delivered %d pushes, want all 4", len(ctx.sends))
	}
	if acct.InflightPushes() != 0 {
		t.Errorf("inflight = %d after all acks", acct.InflightPushes())
	}
	// Non-push traffic is never gated.
	inner.ctx.Send(node.ServerID(0), &msg.PullReq{})
	if len(ctx.sends) != 5 {
		t.Errorf("pull was gated")
	}
}

func wireRegistry(t *testing.T) *wire.Registry {
	t.Helper()
	return msg.Registry()
}

func TestServerHostDispatch(t *testing.T) {
	reg := msg.Registry()
	h := NewServerHost(reg)
	def, other := &echoHandler{}, &echoHandler{}
	h.AddTenant(0, def, NewAcct())
	ctx := &fakeCtx{self: node.ServerID(0)}
	h.Init(ctx)
	h.AddTenant(2, other, NewAcct()) // late mount: initialized immediately
	if other.ctx == nil {
		t.Fatal("late tenant not initialized")
	}

	// Bare traffic goes to the default tenant.
	h.Receive(node.WorkerID(1), &msg.PushReq{Seq: 9})
	if len(def.msgs) != 1 || len(other.msgs) != 0 {
		t.Fatalf("bare dispatch: default %d, other %d", len(def.msgs), len(other.msgs))
	}

	// Envelopes dispatch to their tenant with the original global sender.
	env := msg.WrapJob(2, &msg.PushReq{Seq: 5, Dense: []float64{1, 2}})
	h.Receive(WorkerID(2, 1), env)
	if len(other.msgs) != 1 {
		t.Fatalf("enveloped dispatch missed")
	}
	if other.froms[0] != WorkerID(2, 1) {
		t.Errorf("tenant saw sender %q, want global %q", other.froms[0], WorkerID(2, 1))
	}
	if got := other.msgs[0].(*msg.PushReq).Seq; got != 5 {
		t.Errorf("unwrapped seq = %d", got)
	}

	// Unknown tenants and garbage payloads are dropped with a log.
	h.Receive(WorkerID(9, 0), msg.WrapJob(9, &msg.PushReq{}))
	h.Receive(WorkerID(2, 0), &msg.JobMsg{Job: 2, Payload: []byte{0xff, 0xff}})
	if ctx.logs != 2 {
		t.Errorf("drops logged %d times, want 2", ctx.logs)
	}

	// Tenant replies are charged to the tenant's accounting.
	acct := NewAcct()
	h2 := NewServerHost(reg)
	te := &echoHandler{}
	h2.AddTenant(1, te, acct)
	h2.Init(&fakeCtx{self: node.ServerID(1)})
	te.ctx.Send(WorkerID(1, 0), &msg.PushAck{})
	if acct.Bytes() != int64(wire.EncodedSize(&msg.PushAck{})) {
		t.Errorf("tenant reply bytes = %d", acct.Bytes())
	}

	h.RemoveTenant(2)
	if h.Tenant(2) != nil || h.Tenants() != 1 {
		t.Errorf("RemoveTenant left state behind")
	}
}
