package jobs

import (
	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/wire"
)

// ServerHost multiplexes one shared server slot across tenants: each job that
// owns a range on this slot mounts its own ps.Server instance. Enveloped
// traffic (JobMsg) dispatches by job ID; bare data traffic belongs to the
// default tenant (job 0, the legacy namespace). Tenants see the original
// global sender IDs and reply to them directly — replies are never enveloped,
// because a worker ID is already unique fleet-wide.
type ServerHost struct {
	reg     *wire.Registry
	ctx     node.Context
	tenants map[int]*tenant
}

type tenant struct {
	h    node.Handler
	acct *Acct
}

// NewServerHost builds an empty host; the registry decodes JobMsg payloads.
func NewServerHost(reg *wire.Registry) *ServerHost {
	return &ServerHost{reg: reg, tenants: make(map[int]*tenant)}
}

// Init implements node.Handler.
func (h *ServerHost) Init(ctx node.Context) {
	h.ctx = ctx
	for job, t := range h.tenants {
		t.h.Init(&tenantCtx{Context: ctx, acct: t.acct, job: job})
	}
}

// AddTenant mounts one job's shard server on this slot. Tenants added after
// the host initialized (the normal fleet path: jobs join at admission ticks)
// are initialized immediately.
func (h *ServerHost) AddTenant(job int, handler node.Handler, acct *Acct) {
	h.tenants[job] = &tenant{h: handler, acct: acct}
	if h.ctx != nil {
		handler.Init(&tenantCtx{Context: h.ctx, acct: acct, job: job})
	}
}

// RemoveTenant unmounts a retired job's shard (janitor cleanup). Messages
// still in flight to it are dropped with a debug log.
func (h *ServerHost) RemoveTenant(job int) {
	delete(h.tenants, job)
}

// Tenant returns one job's mounted handler, or nil.
func (h *ServerHost) Tenant(job int) node.Handler {
	t := h.tenants[job]
	if t == nil {
		return nil
	}
	return t.h
}

// Tenants returns the number of mounted tenants.
func (h *ServerHost) Tenants() int { return len(h.tenants) }

// Receive implements node.Handler: unwrap envelopes to their tenant, route
// bare traffic to the default tenant.
func (h *ServerHost) Receive(from node.ID, m wire.Message) {
	if env, ok := m.(*msg.JobMsg); ok {
		t := h.tenants[int(env.Job)]
		if t == nil {
			h.ctx.Logf("jobs: no tenant %d mounted, dropping %d-byte envelope from %s", env.Job, len(env.Payload), from)
			return
		}
		inner, err := msg.UnwrapJob(h.reg, env)
		if err != nil {
			h.ctx.Logf("jobs: %v (from %s)", err, from)
			return
		}
		t.h.Receive(from, inner)
		return
	}
	if t := h.tenants[0]; t != nil {
		t.h.Receive(from, m)
		return
	}
	h.ctx.Logf("jobs: no default tenant, dropping %T from %s", m, from)
}

// tenantCtx is the context a tenant shard sees: identical to the host's
// except that sends are recorded against the owning job's accounting.
type tenantCtx struct {
	node.Context
	acct *Acct
	job  int
}

func (c *tenantCtx) Send(to node.ID, m wire.Message) {
	c.acct.record(c.Context.Self(), to, m.Kind(), wire.EncodedSize(m), c.Context.Now())
	c.Context.Send(to, m)
}
