package jobs

import (
	"strconv"
	"strings"

	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/wire"
)

// ID namespacing. Job 0 is the default tenant and occupies the legacy ID
// space ("worker/3", "scheduler") with un-enveloped server traffic, so a
// one-job fleet replays a legacy single-job run byte for byte (the per-node
// RNG streams are derived from node IDs, and the envelope would change
// message sizes). Every other job lives under "job/<id>/" and wraps its
// server-bound traffic in a JobMsg envelope.

// Prefix returns the node-ID namespace prefix for one job ("" for job 0).
func Prefix(job int) string {
	if job == 0 {
		return ""
	}
	return "job/" + strconv.Itoa(job) + "/"
}

// WorkerID returns the fleet-global ID of one job's i-th worker.
func WorkerID(job, i int) node.ID {
	return node.ID(Prefix(job)) + node.WorkerID(i)
}

// SchedulerID returns the fleet-global ID of one job's scheduler.
func SchedulerID(job int) node.ID {
	return node.ID(Prefix(job)) + node.Scheduler
}

// Split resolves a fleet-global ID to (job, job-local ID). IDs outside any
// job namespace (servers, probes) resolve to job 0 with the ID unchanged.
func Split(id node.ID) (int, node.ID) {
	s := string(id)
	if !strings.HasPrefix(s, "job/") {
		return 0, id
	}
	rest := s[len("job/"):]
	slash := strings.IndexByte(rest, '/')
	if slash <= 0 {
		return 0, id
	}
	j, err := strconv.Atoi(rest[:slash])
	if err != nil || j <= 0 {
		return 0, id
	}
	return j, node.ID(rest[slash+1:])
}

// Scoped adapts an unchanged worker or scheduler to run inside a fleet:
// outgoing destinations are translated into the job's namespace (and
// server-bound messages enveloped), incoming senders are translated back, and
// every send is recorded against the job's byte accounting. A worker-side
// push gate enforces Quota.MaxInflightPush by queueing pushes until acks
// drain.
type Scoped struct {
	job   int
	inner node.Handler
	acct  *Acct
	gate  *pushGate
	sctx  *scopedCtx
}

// WrapWorker scopes a worker handler to one job. maxInflight > 0 installs
// the push gate.
func WrapWorker(job int, h node.Handler, acct *Acct, maxInflight int) *Scoped {
	s := &Scoped{job: job, inner: h, acct: acct}
	if maxInflight > 0 {
		s.gate = &pushGate{s: s, max: maxInflight}
	}
	return s
}

// WrapScheduler scopes a scheduler handler to one job.
func WrapScheduler(job int, h node.Handler, acct *Acct) *Scoped {
	return &Scoped{job: job, inner: h, acct: acct}
}

// Inner returns the wrapped handler.
func (s *Scoped) Inner() node.Handler { return s.inner }

// Init implements node.Handler.
func (s *Scoped) Init(ctx node.Context) {
	s.sctx = &scopedCtx{Context: ctx, s: s}
	s.inner.Init(s.sctx)
}

// Receive implements node.Handler: acks release gated pushes, then the
// sender ID is translated into the job-local namespace. Server IDs pass
// through unchanged (tenants reply from the shared global slots).
func (s *Scoped) Receive(from node.ID, m wire.Message) {
	if s.gate != nil && m.Kind() == msg.KindPushAck {
		s.gate.release()
	}
	if j, local := Split(from); j == s.job {
		from = local
	}
	s.inner.Receive(from, m)
}

// scopedCtx is the node.Context the wrapped handler sees: job-local self,
// translated sends. Now/After/Rand/Logf pass through to the real context.
type scopedCtx struct {
	node.Context
	s *Scoped
}

func (c *scopedCtx) Self() node.ID {
	_, local := Split(c.Context.Self())
	return local
}

func (c *scopedCtx) Send(to node.ID, m wire.Message) {
	s := c.s
	switch {
	case node.ServerIndex(to) >= 0:
		// Server-bound data traffic: global slot, enveloped for tenants
		// beyond the default namespace. Pushes may be quota-gated.
		out := m
		if s.job != 0 {
			out = msg.WrapJob(s.job, m)
		}
		if s.gate != nil && (m.Kind() == msg.KindPushReq || m.Kind() == msg.KindPushReqV2) {
			s.gate.send(to, m.Kind(), out)
			return
		}
		s.deliver(to, m.Kind(), out)
	case to == node.Scheduler:
		s.deliver(SchedulerID(s.job), m.Kind(), m)
	default:
		if i := node.WorkerIndex(to); i >= 0 {
			s.deliver(WorkerID(s.job, i), m.Kind(), m)
			return
		}
		s.deliver(to, m.Kind(), m)
	}
}

// deliver records the send against the job's accounting (inner kind,
// envelope bytes) and hands it to the real context.
func (s *Scoped) deliver(to node.ID, innerKind wire.Kind, out wire.Message) {
	ctx := s.sctx.Context
	s.acct.record(ctx.Self(), to, innerKind, wire.EncodedSize(out), ctx.Now())
	ctx.Send(to, out)
}

// pushGate enforces MaxInflightPush: pushes beyond the cap queue FIFO and
// are released one per PushAck. All mutation happens on the owning node's
// serialized callbacks; the Acct atomics exist only for lock-free gateway
// reads.
type pushGate struct {
	s        *Scoped
	max      int
	inflight int
	queue    []gatedPush
}

type gatedPush struct {
	to   node.ID
	kind wire.Kind
	out  wire.Message
}

func (g *pushGate) send(to node.ID, kind wire.Kind, out wire.Message) {
	if g.inflight >= g.max {
		g.s.acct.throttled.Add(1)
		g.queue = append(g.queue, gatedPush{to: to, kind: kind, out: out})
		return
	}
	g.inflight++
	g.s.acct.inflight.Store(int64(g.inflight))
	g.s.deliver(to, kind, out)
}

func (g *pushGate) release() {
	if g.inflight > 0 {
		g.inflight--
	}
	if len(g.queue) > 0 && g.inflight < g.max {
		p := g.queue[0]
		g.queue = g.queue[1:]
		g.inflight++
		g.s.acct.inflight.Store(int64(g.inflight))
		g.s.deliver(p.to, p.kind, p.out)
		return
	}
	g.s.acct.inflight.Store(int64(g.inflight))
}
