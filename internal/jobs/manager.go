package jobs

import (
	"fmt"
	"sync"
	"time"

	"specsync/internal/obs"
)

// ProbeSample is one convergence-probe reading of a running job.
type ProbeSample struct {
	// Loss is the job's current eval loss.
	Loss float64
	// Iters is the job's total completed iterations.
	Iters int64
	// Pushes is the job's total server-applied pushes.
	Pushes int64
}

// ManagerConfig wires a Manager to its runner (the DES fleet or a live
// deployment) through callbacks, so the manager itself carries no simulator
// dependency. All callbacks run on the runner's event loop (the tick fires
// via Schedule); Submit/RequestStop/Status/List are safe from other
// goroutines.
type ManagerConfig struct {
	// TickEvery is the control-loop period: admission, quota checks,
	// convergence probes, and janitor cleanup all happen on tick boundaries
	// (the Orion-Agent periodic sync-scheduler idiom). Required.
	TickEvery time.Duration
	// MaxConcurrent caps simultaneously running jobs; zero means unlimited.
	MaxConcurrent int
	// Now returns the elapsed virtual (or wall) time.
	Now func() time.Duration
	// Epoch anchors Now()==0 for absolute timestamps in snapshots.
	Epoch time.Time
	// Schedule runs f after d on the runner's event loop. It is normally
	// called from Start and from ticks (the runner's own goroutine), but a
	// Submit that arrives after the control loop has gone quiescent re-arms
	// the loop from the submitter's goroutine — a runner that exposes
	// cross-goroutine submission must tolerate that call.
	Schedule func(d time.Duration, f func())
	// Spawn creates a job's nodes (workers, scheduler, tenant shards). An
	// error marks the job Failed.
	Spawn func(*Job) error
	// Halt stops a job's nodes (delivered outside byte accounting).
	Halt func(*Job)
	// Cleanup unmounts a retired job's tenant state (janitor; optional).
	Cleanup func(*Job)
	// Probe reads a running job's loss and counters.
	Probe func(*Job) ProbeSample
	// OnAllDone fires when every submitted job is terminal (the fleet stops
	// its simulator here). A submission that re-opens a quiescent manager
	// re-arms the loop, so OnAllDone can fire again at the next quiescence.
	// Optional.
	OnAllDone func()
	// Obs receives the fleet-level cluster snapshot (job listing) each tick.
	// Optional.
	Obs *obs.Obs
}

// Manager runs the admission/quota/janitor control loop over a set of jobs.
type Manager struct {
	cfg ManagerConfig

	mu          sync.Mutex
	jobs        []*Job // by ID
	queue       []*Job // pending, FIFO
	ticks       int64
	started     bool
	tickPending bool // a tick is scheduled and has not yet run
	done        bool
}

// NewManager validates the config.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.TickEvery <= 0 {
		return nil, fmt.Errorf("jobs: TickEvery must be positive")
	}
	if cfg.Now == nil || cfg.Schedule == nil || cfg.Spawn == nil || cfg.Halt == nil || cfg.Probe == nil {
		return nil, fmt.Errorf("jobs: Now, Schedule, Spawn, Halt, and Probe callbacks are required")
	}
	if cfg.MaxConcurrent < 0 {
		return nil, fmt.Errorf("jobs: negative MaxConcurrent")
	}
	return &Manager{cfg: cfg}, nil
}

// Submit assigns the next JobID and queues the job for admission. Safe
// before or during the run: a job submitted mid-run is admitted at the next
// tick, and a submission arriving after the control loop has gone quiescent
// re-arms it.
func (m *Manager) Submit(j *Job) int {
	id, _ := m.SubmitPrepared(j, nil)
	return id
}

// SubmitPrepared is Submit with an ID-dependent setup hook: prepare runs
// under the manager lock with the assigned ID, before the job becomes
// visible to the control loop or listings, so ID-derived initialization
// (payloads, default names, seeds) cannot race a concurrent tick. A non-nil
// error from prepare discards the job — the ID is not consumed — and is
// returned to the caller.
func (m *Manager) SubmitPrepared(j *Job, prepare func(id int) error) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.ID = len(m.jobs)
	j.State = Pending
	if prepare != nil {
		if err := prepare(j.ID); err != nil {
			return 0, err
		}
	}
	if j.ConsecutiveBelow <= 0 {
		j.ConsecutiveBelow = 5
	}
	if j.Acct == nil {
		j.Acct = NewAcct()
	}
	m.jobs = append(m.jobs, j)
	m.queue = append(m.queue, j)
	// The loop stops rescheduling once every job is terminal; a later
	// submission must re-arm it or it would stay Pending forever.
	if m.started && !m.tickPending {
		m.tickPending = true
		m.done = false
		m.cfg.Schedule(0, m.tick)
	}
	return j.ID, nil
}

// Start schedules the first control tick (at the current time, so jobs due
// at t=0 are admitted before any other event).
func (m *Manager) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return
	}
	m.started = true
	m.tickPending = true
	m.cfg.Schedule(0, m.tick)
}

// Ticks returns how many control ticks have run.
func (m *Manager) Ticks() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ticks
}

// RequestStop marks a job for retirement; the next tick halts it. Stopping a
// terminal job is a no-op.
func (m *Manager) RequestStop(id int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id < 0 || id >= len(m.jobs) {
		return fmt.Errorf("jobs: unknown job %d", id)
	}
	m.jobs[id].stopReq = true
	return nil
}

// Jobs returns the submitted jobs (the slice is a copy; the *Job records are
// live and manager-owned — use Status for race-free snapshots).
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, len(m.jobs))
	copy(out, m.jobs)
	return out
}

// Status returns one job's listing entry.
func (m *Manager) Status(id int) (obs.JobEntry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id < 0 || id >= len(m.jobs) {
		return obs.JobEntry{}, false
	}
	return m.entryLocked(m.jobs[id]), true
}

// List returns all jobs' listing entries, by ID.
func (m *Manager) List() []obs.JobEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]obs.JobEntry, len(m.jobs))
	for i, j := range m.jobs {
		out[i] = m.entryLocked(j)
	}
	return out
}

func (m *Manager) entryLocked(j *Job) obs.JobEntry {
	e := obs.JobEntry{
		ID:                j.ID,
		Name:              j.Name,
		State:             j.State.String(),
		Scheme:            j.SchemeName,
		Workers:           j.Workers,
		Error:             j.Err,
		Iterations:        j.Iters,
		Pushes:            j.Pushes,
		Loss:              j.FinalLoss,
		Converged:         j.State == Converged,
		SubmitAtSeconds:   j.SubmitAt.Seconds(),
		AdmittedAtSeconds: j.AdmittedAt.Seconds(),
		FinishedAtSeconds: j.FinishedAt.Seconds(),
		BytesOnWire:       j.Acct.Bytes(),
		ByteBudget:        j.Quota.ByteBudget,
		MaxInflightPush:   j.Quota.MaxInflightPush,
		InflightPushes:    j.Acct.InflightPushes(),
		ThrottledPushes:   j.Acct.ThrottledPushes(),
	}
	if snap, ok := m.cfg.Obs.JobClusterSnapshot(j.Name); ok {
		e.Cluster = &snap
	}
	return e
}

// tick is the periodic control loop: admit due pending jobs under the
// concurrency cap, enforce stop requests and byte budgets, probe running
// jobs for convergence, clean up retired tenants, and republish the fleet
// snapshot. It reschedules itself until every job is terminal.
func (m *Manager) tick() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tickPending = false
	now := m.cfg.Now()
	m.ticks++

	// Admission: FIFO over the pending queue; jobs not yet due (or waiting
	// on a concurrency slot) stay queued without blocking later due jobs.
	running := 0
	for _, j := range m.jobs {
		if j.State == Running {
			running++
		}
	}
	rest := m.queue[:0]
	for _, j := range m.queue {
		switch {
		case j.stopReq:
			j.State = Stopped
			j.FinishedAt = now
		case j.SubmitAt <= now && (m.cfg.MaxConcurrent == 0 || running < m.cfg.MaxConcurrent):
			if err := m.cfg.Spawn(j); err != nil {
				j.State = Failed
				j.Err = err.Error()
				j.FinishedAt = now
				m.cfg.Obs.RecordFlight(obs.FlightEvent{
					At: m.cfg.Epoch.Add(now), Kind: "job-spawn-failed", Node: "jobs",
					Job: j.Name, Detail: j.Err,
				})
				continue
			}
			j.State = Running
			j.AdmittedAt = now
			j.nextProbe = now + j.EvalEvery
			running++
			m.cfg.Obs.RecordFlight(obs.FlightEvent{
				At: m.cfg.Epoch.Add(now), Kind: "job-admit", Node: "jobs",
				Job: j.Name, Value: float64(j.Workers),
			})
		default:
			rest = append(rest, j)
		}
	}
	m.queue = rest

	// Quotas, probes, and retirement.
	for _, j := range m.jobs {
		if j.State != Running {
			continue
		}
		switch {
		case j.stopReq:
			m.retireLocked(j, Stopped, now)
		case j.Quota.ByteBudget > 0 && j.Acct.Bytes() > j.Quota.ByteBudget:
			m.retireLocked(j, OverBudget, now)
		case now >= j.nextProbe:
			s := m.sampleLocked(j, now)
			j.nextProbe = now + j.EvalEvery
			if s.Loss < j.TargetLoss {
				j.streak++
			} else {
				j.streak = 0
			}
			if j.streak >= j.ConsecutiveBelow {
				m.retireLocked(j, Converged, now)
			}
		}
	}

	// Janitor: unmount tenants of jobs retired on a previous tick, so
	// responses still in flight at retirement have drained.
	for _, j := range m.jobs {
		if j.State.Terminal() && !j.cleaned && j.FinishedAt < now {
			m.cleanupLocked(j)
		}
	}

	m.publishLocked(now)

	if len(m.queue) == 0 && runningCount(m.jobs) == 0 {
		for _, j := range m.jobs {
			if j.State.Terminal() && !j.cleaned {
				m.cleanupLocked(j)
			}
		}
		if !m.done {
			m.done = true
			if m.cfg.OnAllDone != nil {
				m.cfg.OnAllDone()
			}
		}
		return
	}
	m.tickPending = true
	m.cfg.Schedule(m.cfg.TickEvery, m.tick)
}

// Finalize settles jobs still live after the runner's deadline (MaxVirtual
// expired before quiescence): running jobs get a last probe sample, pending
// jobs are marked Stopped, and everything is cleaned up. Idempotent.
func (m *Manager) Finalize() {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Now()
	for _, j := range m.queue {
		j.State = Stopped
		j.FinishedAt = now
	}
	m.queue = nil
	for _, j := range m.jobs {
		if j.State == Running {
			m.retireLocked(j, Stopped, now)
		}
		if j.State.Terminal() && !j.cleaned {
			m.cleanupLocked(j)
		}
	}
	m.publishLocked(now)
	m.done = true
}

func runningCount(jobs []*Job) int {
	n := 0
	for _, j := range jobs {
		if j.State == Running {
			n++
		}
	}
	return n
}

// sampleLocked probes one running job and appends to its series.
func (m *Manager) sampleLocked(j *Job, now time.Duration) ProbeSample {
	s := m.cfg.Probe(j)
	j.Loss.Add(now, s.Loss)
	j.IterSeries.Add(now, float64(s.Iters))
	j.FinalLoss, j.Iters, j.Pushes = s.Loss, s.Iters, s.Pushes
	return s
}

// retireLocked finalizes a job: take a last probe sample (unless one was
// just taken this tick), record the terminal state, and halt its nodes.
func (m *Manager) retireLocked(j *Job, st State, now time.Duration) {
	if st != Converged {
		// Converged jobs were just probed; others get a final reading so
		// the result reflects their state at retirement.
		m.sampleLocked(j, now)
	}
	j.State = st
	j.FinishedAt = now
	kind := "job-retire"
	if st == OverBudget {
		// Quota trips are their own kind so incident debugging can grep for
		// them directly.
		kind = "job-over-budget"
	}
	m.cfg.Obs.RecordFlight(obs.FlightEvent{
		At: m.cfg.Epoch.Add(now), Kind: kind, Node: "jobs",
		Job: j.Name, Value: float64(j.Acct.Bytes()), Detail: st.String(),
	})
	if st == Converged {
		if t, ok := j.Loss.TimeToConverge(j.TargetLoss, j.ConsecutiveBelow); ok {
			j.ConvergeTime = t
		} else {
			j.ConvergeTime = now
		}
	}
	m.cfg.Halt(j)
}

func (m *Manager) cleanupLocked(j *Job) {
	j.cleaned = true
	if m.cfg.Cleanup != nil {
		m.cfg.Cleanup(j)
	}
}

// publishLocked composes the fleet-level /clusterz snapshot: the job table,
// each entry embedding that job's own scheduler view.
func (m *Manager) publishLocked(now time.Duration) {
	o := m.cfg.Obs
	if o == nil {
		return
	}
	snap := obs.ClusterSnapshot{
		At:   m.cfg.Epoch.Add(now),
		Jobs: make([]obs.JobEntry, 0, len(m.jobs)),
	}
	for _, j := range m.jobs {
		if j.State == Running {
			snap.AliveWorkers += j.Workers
		}
		snap.Jobs = append(snap.Jobs, m.entryLocked(j))
	}
	o.PublishCluster(snap)
}
