// Package trace records the training-system events (pulls, pushes, aborts,
// re-syncs) that the paper's empirical analyses are built on, most notably
// the pushes-after-pull (PAP) distribution of Sec. III-A / Fig. 3.
package trace

import (
	"sort"
	"sync"
	"time"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	// KindPull marks the completion of a parameter pull (worker has a fresh
	// local replica and starts computing).
	KindPull Kind = iota + 1
	// KindPush marks a fully acknowledged gradient push.
	KindPush
	// KindAbort marks a worker aborting its in-flight computation after a
	// re-sync instruction.
	KindAbort
	// KindReSync marks the scheduler issuing a re-sync instruction.
	KindReSync
	// KindStaleness carries the server-measured staleness of one push in
	// Value.
	KindStaleness
	// KindEpoch marks a scheduler epoch boundary (all workers pushed).
	KindEpoch
	// KindCrash marks a node failing (fault injection). Worker holds the
	// worker index, or -(shard+1) for server shards.
	KindCrash
	// KindRecover marks a crashed node restarting (and, for the scheduler,
	// an evicted worker being re-admitted). Worker follows the KindCrash
	// convention.
	KindRecover
	// KindEvict marks the scheduler removing a dead worker from membership;
	// Value carries the new membership epoch.
	KindEvict
	// KindDegrade marks a worker switching speculation paths after losing
	// (or regaining) the scheduler: Value 1 = entered broadcast-failover
	// degraded mode, Value 0 = returned to the centralized path.
	KindDegrade
	// KindJoin marks the scheduler admitting a new worker (elastic scale-up);
	// Value carries the new membership epoch.
	KindJoin
	// KindLeave marks the scheduler retiring a worker on a scale-plan event
	// (planned scale-down, as opposed to KindEvict's failure path); Value
	// carries the new membership epoch.
	KindLeave
	// KindMigrate marks the scheduler committing a shard migration; Worker is
	// -1, Iter holds the new routing epoch, and Value the migrated bytes.
	KindMigrate
	// KindStragglerFlag marks the straggler detector flagging a worker;
	// Value is 1 for a transient flag, 2 when promoted to sustained.
	KindStragglerFlag
	// KindStragglerClear marks a flagged worker's slowdown score returning
	// below threshold long enough to clear the flag.
	KindStragglerClear
	// KindSchemeSwitch marks the scheduler retargeting the fleet onto a new
	// synchronization discipline (a scheme variant's schedule or the
	// meta-scheme policy); Worker is SchedulerNode, Iter holds the scheme
	// epoch, and Value the incoming scheme.Base.
	KindSchemeSwitch
	// KindClone marks the scheduler cloning a straggler's iteration onto a
	// spare worker; Worker is the straggling target, Iter the iteration the
	// clone starts from, and Value the spare slot.
	KindClone
	// KindCloneStop marks a clone being retired after its target recovered;
	// Worker is the target and Value the spare slot.
	KindCloneStop
)

// SchedulerNode is the Event.Worker sentinel for scheduler crash/recover
// events. Workers use their index and server shards use -(shard+1), so the
// scheduler needs a value outside both ranges (-1 already means
// "scheduler-wide" on epoch events).
const SchedulerNode = -1 << 20

// String returns a short name for the kind.
func (k Kind) String() string {
	switch k {
	case KindPull:
		return "pull"
	case KindPush:
		return "push"
	case KindAbort:
		return "abort"
	case KindReSync:
		return "resync"
	case KindStaleness:
		return "staleness"
	case KindEpoch:
		return "epoch"
	case KindCrash:
		return "crash"
	case KindRecover:
		return "recover"
	case KindEvict:
		return "evict"
	case KindDegrade:
		return "degrade"
	case KindJoin:
		return "join"
	case KindLeave:
		return "leave"
	case KindMigrate:
		return "migrate"
	case KindStragglerFlag:
		return "straggler-flag"
	case KindStragglerClear:
		return "straggler-clear"
	case KindSchemeSwitch:
		return "scheme-switch"
	case KindClone:
		return "clone"
	case KindCloneStop:
		return "clone-stop"
	default:
		return "unknown"
	}
}

// Event is one timestamped occurrence.
type Event struct {
	At     time.Time
	Worker int // worker index, or -1 for scheduler-wide events
	Kind   Kind
	Iter   int64
	Value  int64 // kind-specific payload (staleness count)
}

// Tracer receives events. Components hold a Tracer so tests can substitute
// their own sinks; a nil *Collector is a valid no-op Tracer.
type Tracer interface {
	Record(ev Event)
}

// Collector is a thread-safe in-memory event sink.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

var _ Tracer = (*Collector)(nil)

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Record implements Tracer. Recording on a nil collector is a no-op, so
// components can unconditionally call their tracer.
func (c *Collector) Record(ev Event) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Events returns a copy of all recorded events in insertion order.
func (c *Collector) Events() []Event {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// Count returns the number of events of the given kind.
func (c *Collector) Count(k Kind) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ev := range c.events {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

// CountByWorker returns per-worker counts of the given kind.
func (c *Collector) CountByWorker(k Kind) map[int]int {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]int)
	for _, ev := range c.events {
		if ev.Kind == k {
			out[ev.Worker]++
		}
	}
	return out
}

// PAPConfig configures pushes-after-pull analysis.
type PAPConfig struct {
	// Interval is the bucket width (the paper uses 1 second).
	Interval time.Duration
	// Buckets is the number of intervals after each pull to analyze.
	Buckets int
}

// PAPResult holds, for each interval after a pull, the distribution of the
// number of pushes other workers made in that interval (paper Fig. 3).
type PAPResult struct {
	Interval time.Duration
	// PerBucket[k] lists one sample per (worker, pull) pair: the number of
	// peer pushes received in interval k after the pull.
	PerBucket [][]float64
}

// PAP computes the pushes-after-pull distribution from the collected trace.
func (c *Collector) PAP(cfg PAPConfig) PAPResult {
	events := c.Events()
	res := PAPResult{Interval: cfg.Interval, PerBucket: make([][]float64, cfg.Buckets)}
	if cfg.Interval <= 0 || cfg.Buckets <= 0 {
		return res
	}

	// Global and per-worker sorted push times.
	var allPushes []time.Time
	perWorker := map[int][]time.Time{}
	var pulls []Event
	for _, ev := range events {
		switch ev.Kind {
		case KindPush:
			allPushes = append(allPushes, ev.At)
			perWorker[ev.Worker] = append(perWorker[ev.Worker], ev.At)
		case KindPull:
			pulls = append(pulls, ev)
		}
	}
	sort.Slice(allPushes, func(i, j int) bool { return allPushes[i].Before(allPushes[j]) })
	for _, ts := range perWorker {
		sort.Slice(ts, func(i, j int) bool { return ts[i].Before(ts[j]) })
	}
	if len(allPushes) == 0 || len(pulls) == 0 {
		return res
	}
	horizon := allPushes[len(allPushes)-1]

	countIn := func(ts []time.Time, after, upTo time.Time) int {
		// Pushes in (after, upTo].
		lo := sort.Search(len(ts), func(i int) bool { return ts[i].After(after) })
		hi := sort.Search(len(ts), func(i int) bool { return ts[i].After(upTo) })
		return hi - lo
	}

	for _, pull := range pulls {
		for k := 0; k < cfg.Buckets; k++ {
			lo := pull.At.Add(time.Duration(k) * cfg.Interval)
			hi := pull.At.Add(time.Duration(k+1) * cfg.Interval)
			if hi.After(horizon) {
				// Truncated windows at the end of the trace would bias the
				// distribution toward zero; skip them.
				break
			}
			n := countIn(allPushes, lo, hi) - countIn(perWorker[pull.Worker], lo, hi)
			res.PerBucket[k] = append(res.PerBucket[k], float64(n))
		}
	}
	return res
}

// PushTimeline returns all push events sorted by time; the tuner tests and
// timeline figures use it.
func (c *Collector) PushTimeline() []Event {
	events := c.Events()
	var pushes []Event
	for _, ev := range events {
		if ev.Kind == KindPush {
			pushes = append(pushes, ev)
		}
	}
	sort.Slice(pushes, func(i, j int) bool { return pushes[i].At.Before(pushes[j].At) })
	return pushes
}
