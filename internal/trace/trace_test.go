package trace

import (
	"sync"
	"testing"
	"time"
)

func ts(ms int) time.Time { return time.Unix(0, 0).Add(time.Duration(ms) * time.Millisecond) }

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Record(Event{Kind: KindPull}) // must not panic
	if c.Events() != nil {
		t.Error("nil collector should return nil events")
	}
	if c.Count(KindPull) != 0 {
		t.Error("nil collector count should be 0")
	}
	if c.CountByWorker(KindPull) != nil {
		t.Error("nil collector CountByWorker should be nil")
	}
}

func TestCollectorCounts(t *testing.T) {
	c := NewCollector()
	c.Record(Event{At: ts(1), Worker: 0, Kind: KindPull})
	c.Record(Event{At: ts(2), Worker: 0, Kind: KindPush})
	c.Record(Event{At: ts(3), Worker: 1, Kind: KindPush})
	c.Record(Event{At: ts(4), Worker: 1, Kind: KindAbort})

	if got := c.Count(KindPush); got != 2 {
		t.Errorf("Count(push) = %d", got)
	}
	by := c.CountByWorker(KindPush)
	if by[0] != 1 || by[1] != 1 {
		t.Errorf("CountByWorker = %v", by)
	}
	if len(c.Events()) != 4 {
		t.Errorf("Events len = %d", len(c.Events()))
	}
}

func TestCollectorConcurrentSafety(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Record(Event{Worker: g, Kind: KindPush})
			}
		}(g)
	}
	wg.Wait()
	if got := c.Count(KindPush); got != 800 {
		t.Errorf("Count = %d, want 800", got)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindPull: "pull", KindPush: "push", KindAbort: "abort",
		KindReSync: "resync", KindStaleness: "staleness", KindEpoch: "epoch",
		KindCrash: "crash", KindRecover: "recover", KindEvict: "evict",
		Kind(99): "unknown",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestPAPCountsPeerPushesOnly(t *testing.T) {
	c := NewCollector()
	// Worker 0 pulls at t=0. Pushes: worker 1 at 200ms and 700ms (bucket 0),
	// worker 0's own at 500ms (must not count), worker 2 at 1500ms
	// (bucket 1), and a horizon-setting push at 3000ms.
	c.Record(Event{At: ts(0), Worker: 0, Kind: KindPull})
	c.Record(Event{At: ts(200), Worker: 1, Kind: KindPush})
	c.Record(Event{At: ts(500), Worker: 0, Kind: KindPush})
	c.Record(Event{At: ts(700), Worker: 1, Kind: KindPush})
	c.Record(Event{At: ts(1500), Worker: 2, Kind: KindPush})
	c.Record(Event{At: ts(3000), Worker: 3, Kind: KindPush})

	res := c.PAP(PAPConfig{Interval: time.Second, Buckets: 2})
	if len(res.PerBucket[0]) != 1 || res.PerBucket[0][0] != 2 {
		t.Errorf("bucket 0 = %v, want [2]", res.PerBucket[0])
	}
	if len(res.PerBucket[1]) != 1 || res.PerBucket[1][0] != 1 {
		t.Errorf("bucket 1 = %v, want [1]", res.PerBucket[1])
	}
}

func TestPAPSkipsTruncatedWindows(t *testing.T) {
	c := NewCollector()
	c.Record(Event{At: ts(0), Worker: 0, Kind: KindPull})
	c.Record(Event{At: ts(100), Worker: 1, Kind: KindPush}) // horizon = 100ms
	res := c.PAP(PAPConfig{Interval: time.Second, Buckets: 3})
	// The 0-1s window extends past the last push; it must be skipped.
	for k, b := range res.PerBucket {
		if len(b) != 0 {
			t.Errorf("bucket %d should be empty (truncated), got %v", k, b)
		}
	}
}

func TestPAPEmptyAndInvalidConfig(t *testing.T) {
	c := NewCollector()
	res := c.PAP(PAPConfig{Interval: time.Second, Buckets: 2})
	for _, b := range res.PerBucket {
		if len(b) != 0 {
			t.Error("empty trace must give empty buckets")
		}
	}
	res = c.PAP(PAPConfig{Interval: 0, Buckets: 0})
	if len(res.PerBucket) != 0 {
		t.Error("invalid config must give no buckets")
	}
}

func TestPushTimelineSorted(t *testing.T) {
	c := NewCollector()
	c.Record(Event{At: ts(300), Worker: 0, Kind: KindPush})
	c.Record(Event{At: ts(100), Worker: 1, Kind: KindPush})
	c.Record(Event{At: ts(200), Worker: 2, Kind: KindPull}) // not a push
	c.Record(Event{At: ts(200), Worker: 2, Kind: KindPush})
	tl := c.PushTimeline()
	if len(tl) != 3 {
		t.Fatalf("timeline len = %d", len(tl))
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].At.Before(tl[i-1].At) {
			t.Fatal("timeline not sorted")
		}
	}
}
