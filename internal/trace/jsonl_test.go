package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestJSONLRoundtrip(t *testing.T) {
	in := []Event{
		{At: ts(100), Worker: 0, Kind: KindPull, Iter: 1},
		{At: ts(200), Worker: 1, Kind: KindPush, Iter: 2},
		{At: ts(300), Worker: 2, Kind: KindAbort, Iter: 3, Value: 42},
		{At: ts(400), Worker: -1, Kind: KindEpoch, Iter: 4},
		{At: ts(500), Worker: 3, Kind: KindStaleness, Iter: 5, Value: 17},
		{At: ts(600), Worker: 0, Kind: KindReSync, Iter: 6, Value: 9},
		{At: ts(700), Worker: 2, Kind: KindCrash, Iter: 7},
		{At: ts(800), Worker: -1, Kind: KindEvict, Iter: 8, Value: 1},
		{At: ts(900), Worker: 2, Kind: KindRecover, Iter: 9},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d events", len(out))
	}
	for i := range in {
		if !out[i].At.Equal(in[i].At) || out[i].Worker != in[i].Worker ||
			out[i].Kind != in[i].Kind || out[i].Iter != in[i].Iter || out[i].Value != in[i].Value {
			t.Errorf("event %d mismatch: %+v vs %+v", i, in[i], out[i])
		}
	}
}

func TestQuickJSONLRoundtrip(t *testing.T) {
	kinds := []Kind{KindPull, KindPush, KindAbort, KindReSync, KindStaleness, KindEpoch, KindCrash, KindRecover, KindEvict}
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % 64)
		in := make([]Event, n)
		for i := range in {
			in[i] = Event{
				At:     time.Unix(0, rng.Int63()),
				Worker: rng.Intn(40) - 1,
				Kind:   kinds[rng.Intn(len(kinds))],
				Iter:   rng.Int63n(1e6),
				Value:  rng.Int63n(1e6),
			}
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, in); err != nil {
			return false
		}
		out, err := ReadJSONL(&buf)
		if err != nil {
			return false
		}
		if n == 0 {
			return len(out) == 0
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWriteJSONLUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, []Event{{Kind: Kind(99)}}); err == nil {
		t.Error("expected error for unknown kind")
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{bad json")); err == nil {
		t.Error("expected parse error")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"at":1,"worker":0,"kind":"nope","iter":0}`)); err == nil {
		t.Error("expected unknown-kind error")
	}
	// Blank lines are tolerated.
	events, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(events) != 0 {
		t.Errorf("blank input: %v, %d events", err, len(events))
	}
}

func TestWireBytesRoundtrip(t *testing.T) {
	events := []Event{
		{At: ts(100), Worker: 0, Kind: KindPull, Iter: 1},
		{At: ts(200), Worker: 1, Kind: KindPush, Iter: 2},
	}
	rows := []WireBytes{
		{Kind: "push_req_v2", Codec: "topk", Bytes: 12345, Msgs: 40},
		{Kind: "pull_resp", Codec: "raw", Bytes: 99999, Msgs: 80},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	if err := AppendWireBytes(&buf, rows); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Full read returns both sections.
	gotEvents, gotRows, err := ReadJSONLFull(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotEvents) != len(events) {
		t.Fatalf("got %d events, want %d", len(gotEvents), len(events))
	}
	if !reflect.DeepEqual(gotRows, rows) {
		t.Errorf("wire rows mismatch: %+v vs %+v", gotRows, rows)
	}

	// Legacy read skips the wire rows without error.
	legacy, err := ReadJSONL(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy) != len(events) {
		t.Errorf("ReadJSONL returned %d events, want %d", len(legacy), len(events))
	}

	// Empty kind is rejected at write time.
	if err := AppendWireBytes(&buf, []WireBytes{{Codec: "raw"}}); err == nil {
		t.Error("accepted wire row with empty kind")
	}
}

func TestFromEvents(t *testing.T) {
	events := []Event{{Kind: KindPush, Worker: 1}, {Kind: KindPush, Worker: 1}}
	c := FromEvents(events)
	if c.Count(KindPush) != 2 {
		t.Error("FromEvents lost events")
	}
}
