package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// jsonEvent is the JSONL wire form of an Event. Times are nanoseconds since
// the Unix epoch (virtual time in simulator traces).
type jsonEvent struct {
	At     int64  `json:"at"`
	Worker int    `json:"worker"`
	Kind   string `json:"kind"`
	Iter   int64  `json:"iter"`
	Value  int64  `json:"value,omitempty"`
}

// WireBytes is one bytes-on-wire accounting row: total bytes and message
// count for one {message kind, codec} pair over a run. Rows are appended to
// trace files after the event lines so tooling can report transfer volume
// alongside the event timeline.
type WireBytes struct {
	Kind  string
	Codec string
	Bytes int64
	Msgs  int64
}

// jsonLine is the union of an event line and a wire-accounting line. A
// non-empty "wire" field marks the latter; plain event lines never set it.
type jsonLine struct {
	jsonEvent
	Wire  string `json:"wire,omitempty"`
	Codec string `json:"codec,omitempty"`
	Bytes int64  `json:"bytes,omitempty"`
	Msgs  int64  `json:"msgs,omitempty"`
}

var kindNames = map[Kind]string{
	KindPull:      "pull",
	KindPush:      "push",
	KindAbort:     "abort",
	KindReSync:    "resync",
	KindStaleness: "staleness",
	KindEpoch:     "epoch",
	KindCrash:     "crash",
	KindRecover:   "recover",
	KindEvict:     "evict",
	KindDegrade:   "degrade",
	KindJoin:      "join",
	KindLeave:     "leave",
	KindMigrate:   "migrate",

	KindStragglerFlag:  "straggler-flag",
	KindStragglerClear: "straggler-clear",
	KindSchemeSwitch:   "scheme-switch",
	KindClone:          "clone",
	KindCloneStop:      "clone-stop",
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// WriteJSONL streams events as one JSON object per line, the interchange
// format consumed by cmd/specsync-trace.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, ev := range events {
		name, ok := kindNames[ev.Kind]
		if !ok {
			return fmt.Errorf("trace: event %d has unknown kind %d", i, ev.Kind)
		}
		if err := enc.Encode(jsonEvent{
			At:     ev.At.UnixNano(),
			Worker: ev.Worker,
			Kind:   name,
			Iter:   ev.Iter,
			Value:  ev.Value,
		}); err != nil {
			return fmt.Errorf("trace: encoding event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// AppendWireBytes writes bytes-on-wire accounting rows in JSONL form.
// Callers append them after the event lines written by WriteJSONL; readers
// using ReadJSONL skip them, ReadJSONLFull returns them.
func AppendWireBytes(w io.Writer, rows []WireBytes) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, row := range rows {
		if row.Kind == "" {
			return fmt.Errorf("trace: wire row %d has empty kind", i)
		}
		if err := enc.Encode(jsonLine{
			Wire:  row.Kind,
			Codec: row.Codec,
			Bytes: row.Bytes,
			Msgs:  row.Msgs,
		}); err != nil {
			return fmt.Errorf("trace: encoding wire row %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace produced by WriteJSONL, skipping any
// bytes-on-wire rows appended by AppendWireBytes.
func ReadJSONL(r io.Reader) ([]Event, error) {
	events, _, err := ReadJSONLFull(r)
	return events, err
}

// ReadJSONLFull parses a JSONL trace, returning both the event timeline and
// any bytes-on-wire accounting rows.
func ReadJSONLFull(r io.Reader) ([]Event, []WireBytes, error) {
	var out []Event
	var rows []WireBytes
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var jl jsonLine
		if err := json.Unmarshal(raw, &jl); err != nil {
			return nil, nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if jl.Wire != "" {
			rows = append(rows, WireBytes{Kind: jl.Wire, Codec: jl.Codec, Bytes: jl.Bytes, Msgs: jl.Msgs})
			continue
		}
		kind, ok := kindByName[jl.Kind]
		if !ok {
			return nil, nil, fmt.Errorf("trace: line %d: unknown kind %q", line, jl.Kind)
		}
		out = append(out, Event{
			At:     time.Unix(0, jl.At),
			Worker: jl.Worker,
			Kind:   kind,
			Iter:   jl.Iter,
			Value:  jl.Value,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("trace: reading: %w", err)
	}
	return out, rows, nil
}

// FromEvents builds a Collector pre-populated with events (for analyzing
// loaded traces with the Collector's query methods).
func FromEvents(events []Event) *Collector {
	c := NewCollector()
	for _, ev := range events {
		c.Record(ev)
	}
	return c
}
