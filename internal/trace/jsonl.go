package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// jsonEvent is the JSONL wire form of an Event. Times are nanoseconds since
// the Unix epoch (virtual time in simulator traces).
type jsonEvent struct {
	At     int64  `json:"at"`
	Worker int    `json:"worker"`
	Kind   string `json:"kind"`
	Iter   int64  `json:"iter"`
	Value  int64  `json:"value,omitempty"`
}

var kindNames = map[Kind]string{
	KindPull:      "pull",
	KindPush:      "push",
	KindAbort:     "abort",
	KindReSync:    "resync",
	KindStaleness: "staleness",
	KindEpoch:     "epoch",
	KindCrash:     "crash",
	KindRecover:   "recover",
	KindEvict:     "evict",
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// WriteJSONL streams events as one JSON object per line, the interchange
// format consumed by cmd/specsync-trace.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, ev := range events {
		name, ok := kindNames[ev.Kind]
		if !ok {
			return fmt.Errorf("trace: event %d has unknown kind %d", i, ev.Kind)
		}
		if err := enc.Encode(jsonEvent{
			At:     ev.At.UnixNano(),
			Worker: ev.Worker,
			Kind:   name,
			Iter:   ev.Iter,
			Value:  ev.Value,
		}); err != nil {
			return fmt.Errorf("trace: encoding event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace produced by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		kind, ok := kindByName[je.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown kind %q", line, je.Kind)
		}
		out = append(out, Event{
			At:     time.Unix(0, je.At),
			Worker: je.Worker,
			Kind:   kind,
			Iter:   je.Iter,
			Value:  je.Value,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading: %w", err)
	}
	return out, nil
}

// FromEvents builds a Collector pre-populated with events (for analyzing
// loaded traces with the Collector's query methods).
func FromEvents(events []Event) *Collector {
	c := NewCollector()
	for _, ev := range events {
		c.Record(ev)
	}
	return c
}
