package cluster

import (
	"reflect"
	"testing"
	"time"

	"specsync/internal/faults"
	"specsync/internal/scheme"
	"specsync/internal/trace"
)

// churnPlan crashes worker 1 long enough to be evicted and readmitted, and
// crashes server shard 0 after checkpoints exist so the restart restores one.
func churnPlan() *faults.Plan {
	return &faults.Plan{Seed: 11, Events: []faults.Event{
		{Kind: faults.KindCrashWorker, At: time.Second, Node: 1, RestartAfter: 6 * time.Second},
		{Kind: faults.KindCrashServer, At: 3500 * time.Millisecond, Node: 0, RestartAfter: 1500 * time.Millisecond},
	}}
}

func churnConfig(t *testing.T) Config {
	t.Helper()
	return tinyConfig(t, scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive}, func(c *Config) {
		c.Faults = churnPlan()
		c.CheckpointEvery = time.Second
	})
}

func TestChurnRunConvergesAndRecovers(t *testing.T) {
	res, err := Run(churnConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge under churn: final loss %.4f", res.FinalLoss)
	}
	if res.Faults == nil {
		t.Fatal("Result.Faults is nil for a faulted run")
	}
	st := res.Faults.Stats()
	if st.Crashes != 2 || st.Restarts != 2 {
		t.Errorf("crashes/restarts = %d/%d, want 2/2", st.Crashes, st.Restarts)
	}
	if st.Checkpoints < 3 {
		t.Errorf("checkpoints = %d, want >= 3 before the shard crash", st.Checkpoints)
	}
	if st.Restores != 1 {
		t.Errorf("restores = %d, want 1", st.Restores)
	}
	if st.Evictions < 1 || st.Readmissions < 1 {
		t.Errorf("evictions/readmissions = %d/%d, want >= 1 each", st.Evictions, st.Readmissions)
	}
	if res.Trace.Count(trace.KindCrash) != 2 {
		t.Errorf("trace crash events = %d, want 2", res.Trace.Count(trace.KindCrash))
	}
	// Recover events: one per restart, plus one per scheduler readmission.
	if got := res.Trace.Count(trace.KindRecover); got < 2 {
		t.Errorf("trace recover events = %d, want >= 2", got)
	}
	if res.Trace.Count(trace.KindEvict) < 1 {
		t.Errorf("trace has no evict events")
	}
	if res.TotalIters == 0 {
		t.Error("no iterations completed")
	}
}

func TestChurnRunReproducible(t *testing.T) {
	run := func() *Result {
		res, err := Run(churnConfig(t))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Loss.Snapshot(), b.Loss.Snapshot()) {
		t.Error("loss series differ across identical faulted runs")
	}
	if a.TotalIters != b.TotalIters || a.Aborts != b.Aborts || a.Epochs != b.Epochs {
		t.Errorf("progress differs: (%d,%d,%d) vs (%d,%d,%d)",
			a.TotalIters, a.Aborts, a.Epochs, b.TotalIters, b.Aborts, b.Epochs)
	}
	if a.Transfer.TotalBytes() != b.Transfer.TotalBytes() {
		t.Errorf("transfer differs: %d vs %d", a.Transfer.TotalBytes(), b.Transfer.TotalBytes())
	}
	if !reflect.DeepEqual(a.Trace.Events(), b.Trace.Events()) {
		t.Error("event traces differ across identical faulted runs")
	}
	if a.Faults.Stats() != b.Faults.Stats() {
		t.Errorf("fault stats differ: %+v vs %+v", a.Faults.Stats(), b.Faults.Stats())
	}
}
