package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"
	"time"

	"specsync/internal/obs"
	"specsync/internal/scheme"
	"specsync/internal/switcher"
	"specsync/internal/trace"
	"specsync/internal/worker"
)

// metaSchemeRun stages the meta-scheme acceptance scenario: a homogeneous
// BSP fleet in which worker 3 suffers a scripted 3x compute slowdown from
// t=30s to t=100s, then recovers. The policy must switch BSP→SSP once the
// slowdown sustains, and back exactly once after recovery.
func metaSchemeRun(t *testing.T, seed int64) (*obs.Obs, *Result) {
	t.Helper()
	wl, err := NewTiny(4, seed)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	wl.TargetLoss = 0 // run the full MaxVirtual
	o := obs.New(obs.Options{})
	res, err := Run(Config{
		Workload:       wl,
		Scheme:         scheme.Config{Base: scheme.BSP},
		Switcher:       &switcher.Config{},
		Workers:        4,
		Seed:           seed,
		Obs:            o,
		DisableHiccups: true,
		Slowdowns: []worker.Slowdown{
			3: {Factor: 3, From: 30 * time.Second, Until: 100 * time.Second},
		},
		MaxVirtual: 3 * time.Minute,
		KeepTrace:  true,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return o, res
}

// TestMetaSchemeHysteresis is the tentpole acceptance criterion: a sustained
// straggler triggers exactly one BSP→SSP switch, and recovery exactly one
// switch back — visible in the result counters, the trace, the flight
// recorder, the /clusterz snapshot, and the scheme-switch metric.
func TestMetaSchemeHysteresis(t *testing.T) {
	o, res := metaSchemeRun(t, 7)
	if res.SchemeSwitches != 2 {
		t.Fatalf("SchemeSwitches = %d, want exactly 2 (degrade + recover)", res.SchemeSwitches)
	}
	if res.FinalScheme != "BSP" {
		t.Errorf("FinalScheme = %q, want BSP after recovery", res.FinalScheme)
	}

	var switches []trace.Event
	for _, ev := range res.Trace.Events() {
		if ev.Kind == trace.KindSchemeSwitch {
			switches = append(switches, ev)
		}
	}
	if len(switches) != 2 {
		t.Fatalf("trace has %d scheme-switch events, want 2", len(switches))
	}
	if got := scheme.Base(switches[0].Value); got != scheme.SSP {
		t.Errorf("first switch targets %s, want SSP", got)
	}
	if got := scheme.Base(switches[1].Value); got != scheme.BSP {
		t.Errorf("second switch targets %s, want BSP", got)
	}
	if switches[0].Iter != 1 || switches[1].Iter != 2 {
		t.Errorf("scheme epochs = %d, %d, want 1, 2", switches[0].Iter, switches[1].Iter)
	}

	var flight []string
	for _, ev := range res.Flight.Events {
		if ev.Kind == "scheme-switch" {
			flight = append(flight, ev.Detail)
		}
	}
	if len(flight) != 2 {
		t.Fatalf("flight recorder has %d scheme-switch events, want 2: %v", len(flight), flight)
	}
	if !strings.Contains(flight[0], "sustained straggler") {
		t.Errorf("degrade reason %q does not name the sustained straggler", flight[0])
	}
	if !strings.Contains(flight[1], "recovered") {
		t.Errorf("recover reason %q does not mention recovery", flight[1])
	}

	snap, ok := o.ClusterSnapshot()
	if !ok {
		t.Fatal("no /clusterz snapshot after run")
	}
	if snap.Scheme != "BSP" {
		t.Errorf("/clusterz scheme = %q, want BSP", snap.Scheme)
	}
	if snap.SchemeEpoch != 2 || snap.SchemeSwitches != 2 {
		t.Errorf("/clusterz scheme_epoch=%d switches=%d, want 2 and 2", snap.SchemeEpoch, snap.SchemeSwitches)
	}
	if !strings.Contains(snap.LastSwitchReason, "recovered") || snap.LastSwitchAt.IsZero() {
		t.Errorf("/clusterz last switch = %q at %v, want a recovery reason with a timestamp",
			snap.LastSwitchReason, snap.LastSwitchAt)
	}
	if res.Obs.SchemeSwitches != 2 {
		t.Errorf("specsync_scheme_switches_total = %d, want 2", res.Obs.SchemeSwitches)
	}
}

// TestMetaSchemeReproducible asserts the determinism invariant for dynamic
// runs: two same-seed meta-scheme runs (switches and all) produce
// byte-identical traces.
func TestMetaSchemeReproducible(t *testing.T) {
	digest := func() string {
		_, res := metaSchemeRun(t, 7)
		var buf bytes.Buffer
		if err := trace.WriteJSONL(&buf, res.Trace.Events()); err != nil {
			t.Fatalf("serialize trace: %v", err)
		}
		sum := sha256.Sum256(buf.Bytes())
		return hex.EncodeToString(sum[:])
	}
	a, b := digest(), digest()
	if a != b {
		t.Fatalf("same-seed meta-scheme runs diverged: %s vs %s", a, b)
	}
}

// TestMetaSchemeHoldsUnderPersistentStraggler pins the anti-flap dead band:
// once degraded to SSP, a persistently slow worker no longer contends with
// the healthy majority at the servers and its slowdown score settles just
// under the detector's flag threshold. Recovering on that bare clear would
// re-expose it under BSP and oscillate; the policy's RecoverScore band must
// keep the fleet in SSP — exactly one switch, ever.
func TestMetaSchemeHoldsUnderPersistentStraggler(t *testing.T) {
	wl, err := NewMF(SizeSmall, 6, 1)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	res, err := Run(Config{
		Workload:   wl,
		Scheme:     scheme.Config{Base: scheme.BSP},
		Switcher:   &switcher.Config{},
		Workers:    6,
		Seed:       1,
		Speeds:     []float64{1, 1, 1, 1, 1, 0.55},
		MaxVirtual: 20 * time.Minute,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.SchemeSwitches != 1 {
		t.Fatalf("SchemeSwitches = %d, want exactly 1 (degrade, then hold)", res.SchemeSwitches)
	}
	if res.FinalScheme != "SSP(s=3)" {
		t.Errorf("FinalScheme = %q, want SSP(s=3) held for the straggler's lifetime", res.FinalScheme)
	}
}

// TestVariantRuns smoke-tests each scheme-zoo variant end to end under the
// DES and checks the discipline it ends the run under.
func TestVariantRuns(t *testing.T) {
	hetero := []float64{1, 1, 1, 0.55}
	cases := []struct {
		name        string
		sc          scheme.Config
		speeds      []float64
		wantFinal   string
		minSwitches int64
	}{
		// Sync-Switch must hand over to ASP exactly once at the scheduled epoch.
		{"sync-switch", scheme.Config{Variant: scheme.VariantSyncSwitch, SwitchAt: 5}, nil, "ASP", 1},
		// A homogeneous ABS fleet stays at the minimum bound (no switches
		// guaranteed; the bound may never move).
		{"abs-homogeneous", scheme.Config{Variant: scheme.VariantABS}, nil, "SSP(s=1)", 0},
		// A 0.55x straggler should loosen the ABS bound above the minimum.
		{"abs-hetero", scheme.Config{Variant: scheme.VariantABS}, hetero, "", 1},
		// PSP is static: β rides in the runtime, no switches ever.
		{"psp", scheme.Config{Variant: scheme.VariantPSP, PSPBeta: 0.75}, hetero, "PSP(β=0.75)", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wl, err := NewTiny(4, 7)
			if err != nil {
				t.Fatalf("workload: %v", err)
			}
			wl.TargetLoss = 0
			res, err := Run(Config{
				Workload:       wl,
				Scheme:         tc.sc,
				Workers:        4,
				Seed:           7,
				Speeds:         tc.speeds,
				DisableHiccups: true,
				MaxVirtual:     90 * time.Second,
			})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.TotalIters == 0 {
				t.Fatal("no iterations completed")
			}
			if tc.wantFinal != "" && res.FinalScheme != tc.wantFinal {
				t.Errorf("FinalScheme = %q, want %q", res.FinalScheme, tc.wantFinal)
			}
			if res.SchemeSwitches < tc.minSwitches {
				t.Errorf("SchemeSwitches = %d, want >= %d", res.SchemeSwitches, tc.minSwitches)
			}
			if tc.name == "sync-switch" && res.SchemeSwitches != 1 {
				t.Errorf("Sync-Switch issued %d switches, want exactly 1", res.SchemeSwitches)
			}
			if tc.name == "abs-hetero" && !strings.HasPrefix(res.FinalScheme, "SSP(s=") {
				t.Errorf("ABS ended under %q, want an SSP bound", res.FinalScheme)
			}
		})
	}
}

// TestMetaSchemeConfigRejections mirrors the CLI fail-fast checks at the
// cluster layer: impossible compositions are rejected before any node boots.
func TestMetaSchemeConfigRejections(t *testing.T) {
	wl, err := NewTiny(4, 7)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	base := Config{Workload: wl, Workers: 4, Seed: 7, MaxVirtual: time.Minute}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"meta+variant", func(c *Config) {
			c.Scheme = scheme.Config{Variant: scheme.VariantPSP, PSPBeta: 0.5}
			c.Switcher = &switcher.Config{}
		}},
		{"meta+decentralized", func(c *Config) {
			c.Scheme = scheme.Config{Base: scheme.ASP, Spec: scheme.SpecFixed,
				AbortTime: 100 * time.Millisecond, AbortRate: 0.22, Decentralized: true}
			c.Switcher = &switcher.Config{}
			c.Workers = 4
		}},
		{"meta+spec", func(c *Config) {
			c.Scheme = scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive}
			c.Switcher = &switcher.Config{}
		}},
		{"bad-slowdown", func(c *Config) {
			c.Scheme = scheme.Config{Base: scheme.BSP}
			c.Slowdowns = []worker.Slowdown{{Factor: 0.5, From: 0, Until: time.Second}}
		}},
		{"psp+spec", func(c *Config) {
			c.Scheme = scheme.Config{Variant: scheme.VariantPSP, PSPBeta: 0.5, Spec: scheme.SpecAdaptive}
		}},
		{"sync-switch+spec", func(c *Config) {
			c.Scheme = scheme.Config{Variant: scheme.VariantSyncSwitch, SwitchAt: 3, Spec: scheme.SpecAdaptive}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Errorf("Run accepted an impossible composition")
			}
		})
	}
}
