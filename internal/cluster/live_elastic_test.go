package cluster

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"specsync/internal/core"
	"specsync/internal/elastic"
	"specsync/internal/live"
	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/optimizer"
	"specsync/internal/ps"
	"specsync/internal/scheme"
	"specsync/internal/worker"
)

// TestLiveElasticGrowShrink runs a real 2-worker / 2-server cluster on the
// live in-process runtime and executes a grow/shrink scale plan against it
// in wall-clock time: a third worker and a third server shard join mid-run
// (with a live parameter migration), then both retire (with the migration
// back). Training must keep making progress through every handoff.
func TestLiveElasticGrowShrink(t *testing.T) {
	const (
		workers = 2
		servers = 2
		iterT   = 20 * time.Millisecond
	)
	wl, err := NewTiny(workers+1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive}
	ranges, err := ps.ShardRanges(wl.Model.Dim(), servers)
	if err != nil {
		t.Fatal(err)
	}
	newOptimizer := func(n int) (*optimizer.SGD, error) {
		return optimizer.NewSGD(optimizer.SGDConfig{Schedule: wl.Schedule, Clip: wl.Clip}, n)
	}
	routing := &core.RoutingTable{Shards: make([]core.ShardRoute, servers)}
	for i, r := range ranges {
		routing.Shards[i] = core.ShardRoute{Lo: r.Lo, Hi: r.Hi, Server: i}
	}

	initVec := wl.Model.Init(rand.New(rand.NewSource(1 ^ 0x1217)))
	srvs := make([]*ps.Server, servers)
	for i, r := range ranges {
		opt, err := newOptimizer(r.Len())
		if err != nil {
			t.Fatal(err)
		}
		if srvs[i], err = ps.New(ps.Config{
			Range: r, Init: initVec[r.Lo:r.Hi], Optimizer: opt, NewOptimizer: newOptimizer,
		}); err != nil {
			t.Fatal(err)
		}
	}

	// curRouting tracks the committed table so the joining worker starts
	// from the current layout, exactly as cluster.Run does.
	var mu sync.Mutex
	curRouting := routing.Clone()
	makeWorker := func(i int, joining bool) (*worker.Worker, error) {
		mu.Lock()
		rt := curRouting.Clone()
		mu.Unlock()
		return worker.New(worker.Config{
			Index:      i,
			Model:      wl.Model,
			Scheme:     sc,
			Compute:    worker.ComputeModel{Base: iterT, Speed: 1},
			NumWorkers: workers,
			RetryAfter: 50 * time.Millisecond,
			Routing:    rt,
			JoinOnInit: joining,
		})
	}
	wks := make([]*worker.Worker, workers)
	for i := range wks {
		if wks[i], err = makeWorker(i, false); err != nil {
			t.Fatal(err)
		}
	}

	sched, err := core.NewScheduler(core.SchedulerConfig{
		Workers:       workers + 1,
		ActiveWorkers: workers,
		Routing:       routing,
		OnRouting: func(tb *core.RoutingTable) {
			mu.Lock()
			curRouting = tb
			mu.Unlock()
		},
		Scheme:      sc,
		InitialSpan: iterT,
	})
	if err != nil {
		t.Fatal(err)
	}

	net, err := live.NewNetwork(live.NetworkConfig{Registry: msg.Registry(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range srvs {
		if err := net.AddNode(node.ServerID(i), s); err != nil {
			t.Fatal(err)
		}
	}
	for i, wk := range wks {
		if err := net.AddNode(node.WorkerID(i), wk); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.AddNode(node.Scheduler, sched); err != nil {
		t.Fatal(err)
	}

	plan := elastic.GrowShrink(workers, 1, servers, 1,
		150*time.Millisecond, 450*time.Millisecond)
	var joiner *worker.Worker
	inj, err := elastic.NewLive(elastic.LiveOptions{
		Plan:    plan,
		Servers: servers,
		NewWorker: func(i int) (node.Handler, error) { return makeWorker(i, true) },
		NewServer: func(slot int) (node.Handler, error) {
			return ps.NewJoining(ps.Config{NewOptimizer: newOptimizer})
		},
		OnWorkerAdd: func(i int, h node.Handler) {
			mu.Lock()
			joiner = h.(*worker.Worker)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	defer net.Close()
	inj.Start(net)
	defer inj.Stop()

	waitFor(t, "the worker join and the scale-up migration", func() bool {
		st := sched.ScaleStats()
		return st.Joins == 1 && st.Migrations >= 1
	})
	mu.Lock()
	j := joiner
	mu.Unlock()
	waitFor(t, "the joined worker to start iterating", func() bool {
		return j.IterationsDone() > 0
	})
	waitFor(t, "the retirement and the scale-down migration", func() bool {
		st := sched.ScaleStats()
		return st.Leaves == 1 && st.Migrations >= 2
	})
	after := wks[0].IterationsDone() + wks[1].IterationsDone()
	waitFor(t, "training progress after the shrink", func() bool {
		return wks[0].IterationsDone()+wks[1].IterationsDone() > after
	})

	if errs := inj.Errs(); len(errs) != 0 {
		t.Fatalf("injector errors: %v", errs)
	}
	st := sched.ScaleStats()
	if st.MigrationBytes <= 0 {
		t.Errorf("migration bytes = %d, want > 0", st.MigrationBytes)
	}
	if len(st.Durations) != int(st.Migrations) {
		t.Errorf("%d migration durations for %d migrations", len(st.Durations), st.Migrations)
	}
	mu.Lock()
	final := curRouting
	mu.Unlock()
	if final.Epoch < 2 {
		t.Errorf("final routing epoch = %d, want >= 2", final.Epoch)
	}
	for _, sh := range final.Shards {
		if sh.Server >= servers {
			t.Errorf("final routing still targets retired server slot %d", sh.Server)
		}
	}
}
