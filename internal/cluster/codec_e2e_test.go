package cluster

import (
	"math"
	"testing"
	"time"

	"specsync/internal/codec"
	"specsync/internal/msg"
	"specsync/internal/scheme"
)

// TestTopKShrinksPushesAndShiftsTiming asserts the two observable effects a
// push codec must have in the DES: measurably fewer push bytes on the wire
// (the counter the ISSUE requires a test to check), and a different push
// schedule — transfer time derives from encoded size, so smaller pushes land
// earlier and the run takes a different trajectory.
func TestTopKShrinksPushesAndShiftsTiming(t *testing.T) {
	wl, err := NewMF(SizeSmall, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, rawRes := runDigest(t, wl, 3, codec.Config{})
	wl2, err := NewMF(SizeSmall, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	topkDigest, _, _, topkRes := runDigest(t, wl2, 3, codec.Config{Name: "topk", TopKFrac: 0.1})

	rawPushBytes, rawPushes := rawRes.Codec.KindBytes(msg.KindPushReq, "raw")
	topkPushBytes, topkPushes := topkRes.Codec.KindBytes(msg.KindPushReqV2, "topk")
	if rawPushes == 0 || topkPushes == 0 {
		t.Fatalf("missing push traffic: raw %d msgs, topk %d msgs", rawPushes, topkPushes)
	}
	rawPerPush := float64(rawPushBytes) / float64(rawPushes)
	topkPerPush := float64(topkPushBytes) / float64(topkPushes)
	if topkPerPush >= rawPerPush/2 {
		t.Errorf("topk bytes/push = %.0f, raw = %.0f; want topk well under half", topkPerPush, rawPerPush)
	}
	if r := topkRes.Codec.Ratio(codec.IDTopK); r >= 0.5 {
		t.Errorf("topk compression ratio %.3f, want < 0.5", r)
	}

	// Timing shift: smaller pushes transfer faster, so the topk trace must
	// diverge from the raw golden trace.
	if topkDigest == goldenMFDigest {
		t.Error("topk trace is byte-identical to the raw golden trace; push timing did not change")
	}
}

// TestDeltaPullSavesBytes asserts the pull-side delta codec re-sends less
// than full blocks: under ASP a worker often re-pulls a shard that only a
// few other pushes touched since its last pull.
func TestDeltaPullSavesBytes(t *testing.T) {
	wl, err := NewMF(SizeSmall, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, res := runDigest(t, wl, 3, codec.Config{Name: "delta"})
	raw, enc, blocks := res.Codec.EncodeTotals(codec.IDDelta)
	if blocks == 0 {
		t.Fatal("delta codec never encoded a pull")
	}
	if enc >= raw {
		t.Errorf("delta pulls encoded %d bytes for %d dense-equivalent; expected savings", enc, raw)
	}
}

// TestCodecConvergenceGuard asserts lossy codecs with error feedback stay
// close to the raw baseline: MF under topk (k=10%) and q8 must reach a final
// loss within a small tolerance of raw, across the adaptive, BSP, and SSP
// schemes. This is the guard against a codec that compresses well but
// quietly destroys training.
func TestCodecConvergenceGuard(t *testing.T) {
	schemes := map[string]scheme.Config{
		"adaptive": {Base: scheme.ASP, Spec: scheme.SpecAdaptive},
		"bsp":      {Base: scheme.BSP},
		"ssp":      {Base: scheme.SSP, Staleness: 3},
	}
	codecs := map[string]codec.Config{
		"raw":  {},
		"topk": {Name: "topk", TopKFrac: 0.1},
		"q8":   {Name: "q8"},
	}
	const tolerance = 0.02

	for schemeName, sc := range schemes {
		losses := map[string]float64{}
		for codecName, cc := range codecs {
			wl, err := NewMF(SizeSmall, 4, 3)
			if err != nil {
				t.Fatal(err)
			}
			wl.TargetLoss = 0 // run the full horizon so final losses compare
			res, err := Run(Config{
				Workload:   wl,
				Scheme:     sc,
				Workers:    4,
				Seed:       3,
				Codec:      cc,
				MaxVirtual: 2 * time.Minute,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", schemeName, codecName, err)
			}
			losses[codecName] = res.FinalLoss
		}
		for _, codecName := range []string{"topk", "q8"} {
			diff := math.Abs(losses[codecName] - losses["raw"])
			if diff > tolerance {
				t.Errorf("%s: %s final loss %.4f vs raw %.4f (|diff| %.4f > %.4f)",
					schemeName, codecName, losses[codecName], losses["raw"], diff, tolerance)
			}
		}
		t.Logf("%s: raw=%.4f topk=%.4f q8=%.4f", schemeName, losses["raw"], losses["topk"], losses["q8"])
	}
}
