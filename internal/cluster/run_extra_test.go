package cluster

import (
	"testing"
	"time"

	"specsync/internal/core"
	"specsync/internal/scheme"
)

func TestRunPastConvergeExtendsCurves(t *testing.T) {
	base, err := Run(tinyConfig(t, scheme.Config{Base: scheme.ASP}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !base.Converged {
		t.Skip("tiny workload did not converge; nothing to compare")
	}
	extended, err := Run(tinyConfig(t, scheme.Config{Base: scheme.ASP}, func(c *Config) {
		c.RunPastConverge = 30 * time.Second
	}))
	if err != nil {
		t.Fatal(err)
	}
	if extended.Elapsed <= base.Elapsed {
		t.Errorf("RunPastConverge did not extend: %v vs %v", extended.Elapsed, base.Elapsed)
	}
	if extended.ConvergeTime != base.ConvergeTime {
		t.Errorf("convergence time changed: %v vs %v", extended.ConvergeTime, base.ConvergeTime)
	}
}

func TestRecordAccuracySeries(t *testing.T) {
	wl, err := NewCIFAR(SizeSmall, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Workload:       wl,
		Scheme:         scheme.Config{Base: scheme.ASP},
		Workers:        4,
		Seed:           5,
		MaxVirtual:     20 * wl.IterTime,
		RecordAccuracy: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy.Len() == 0 {
		t.Fatal("no accuracy samples recorded")
	}
	for _, p := range res.Accuracy.Snapshot() {
		if p.V < 0 || p.V > 1 {
			t.Fatalf("accuracy %v out of range", p.V)
		}
	}
}

func TestOnTuneHookFires(t *testing.T) {
	tunes := 0
	_, err := Run(tinyConfig(t, scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive}, func(c *Config) {
		c.OnTune = func(epoch int, tn core.Tuning) { tunes++ }
	}))
	if err != nil {
		t.Fatal(err)
	}
	if tunes == 0 {
		t.Error("OnTune never fired")
	}
}

func TestExpiryOnlyModeRuns(t *testing.T) {
	res, err := Run(tinyConfig(t, scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive}, func(c *Config) {
		c.CheckAtExpiryOnly = true
		c.RateMargin = 1
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("paper-literal mode did not converge: final %v", res.FinalLoss)
	}
}

func TestDecentralizedClusterRuns(t *testing.T) {
	res, err := Run(tinyConfig(t, scheme.Config{
		Base: scheme.ASP, Spec: scheme.SpecFixed,
		AbortTime: 200 * time.Millisecond, AbortRate: 0.3,
		Decentralized: true,
	}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("decentralized cluster did not converge: final %v", res.FinalLoss)
	}
	// Broadcast notices must appear in the transfer accounting.
	data, control := res.Transfer.Split()
	if control == 0 || data == 0 {
		t.Errorf("transfer split %d/%d", data, control)
	}
}
