package cluster

import (
	"reflect"
	"testing"
	"time"

	"specsync/internal/faults"
	"specsync/internal/scheme"
	"specsync/internal/trace"
)

// schedChurnPlan crashes the scheduler mid-run; with CheckpointEvery = 1s the
// crash at 2.5s happens after two scheduler checkpoints, so the restart
// restores one and the StateReport handshake fills in the rest.
func schedChurnPlan(restartAfter time.Duration) *faults.Plan {
	return &faults.Plan{Seed: 7, Events: []faults.Event{
		{Kind: faults.KindCrashScheduler, At: 2500 * time.Millisecond, RestartAfter: restartAfter},
	}}
}

func schedChurnConfig(t *testing.T, sc scheme.Config, restartAfter time.Duration) Config {
	t.Helper()
	return tinyConfig(t, sc, func(c *Config) {
		c.Faults = schedChurnPlan(restartAfter)
		c.CheckpointEvery = time.Second
		// Tight detector settings so degraded mode engages well before the
		// tiny workload converges (~4s of silence would race the target).
		c.SchedulerTimeout = 2 * time.Second
		c.BeaconEvery = 500 * time.Millisecond
	})
}

// TestSchedulerChurnConvergesAllSchemes kills the scheduler mid-epoch under
// each synchronization discipline and requires the run to still converge: the
// restarted incarnation must rebuild its state (releasing any BSP barrier or
// SSP clock the workers are parked on) rather than deadlocking the cluster.
func TestSchedulerChurnConvergesAllSchemes(t *testing.T) {
	schemes := map[string]scheme.Config{
		"adaptive": {Base: scheme.ASP, Spec: scheme.SpecAdaptive},
		"bsp":      {Base: scheme.BSP},
		"ssp":      {Base: scheme.SSP, Staleness: 3},
	}
	for name, sc := range schemes {
		t.Run(name, func(t *testing.T) {
			res, err := Run(schedChurnConfig(t, sc, 4*time.Second))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("did not converge after scheduler crash: final loss %.4f", res.FinalLoss)
			}
			st := res.Faults.Stats()
			if st.SchedulerCrashes != 1 || st.SchedulerRestarts != 1 {
				t.Errorf("scheduler crashes/restarts = %d/%d, want 1/1", st.SchedulerCrashes, st.SchedulerRestarts)
			}
			if st.SchedulerRestores != 1 {
				t.Errorf("scheduler restores = %d, want 1 (checkpoints existed)", st.SchedulerRestores)
			}
			if st.StateReports < 4 {
				t.Errorf("state reports = %d, want >= 4 (every worker answers the Hello)", st.StateReports)
			}
			if st.DegradedEnters < 1 || st.DegradedRecovers < st.DegradedEnters {
				t.Errorf("degraded enters/recovers = %d/%d, want >= 1 and full recovery",
					st.DegradedEnters, st.DegradedRecovers)
			}
			// The crash and the incarnation's recovery both carry the
			// scheduler's trace sentinel.
			foundCrash, foundRecover := false, false
			for _, ev := range res.Trace.Events() {
				if ev.Worker != trace.SchedulerNode {
					continue
				}
				switch ev.Kind {
				case trace.KindCrash:
					foundCrash = true
				case trace.KindRecover:
					foundRecover = true
					if ev.Value != 1 {
						t.Errorf("scheduler recover generation = %d, want 1", ev.Value)
					}
				}
			}
			if !foundCrash || !foundRecover {
				t.Errorf("trace crash/recover at scheduler sentinel = %v/%v, want both", foundCrash, foundRecover)
			}
			if res.TotalIters == 0 {
				t.Error("no iterations completed")
			}
		})
	}
}

// TestDegradedFlightRoundTrip drives a worker through a full degraded-mode
// round trip (scheduler silent past the timeout, then a restarted incarnation
// re-adopts the fleet) and requires the flight recorder to hold the story in
// order: for every worker that entered degraded mode, its degraded-enter
// event precedes a matching degraded-exit.
func TestDegradedFlightRoundTrip(t *testing.T) {
	res, err := Run(schedChurnConfig(t,
		scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive}, 4*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Faults.Stats()
	if st.DegradedEnters < 1 {
		t.Fatalf("degraded enters = %d, want >= 1 (scenario must trip the failure detector)", st.DegradedEnters)
	}
	enters := res.Flight.Filter("degraded-enter")
	exits := res.Flight.Filter("degraded-exit")
	if int64(len(enters)) != st.DegradedEnters {
		t.Errorf("flight recorder holds %d degraded-enter events, fault stats say %d", len(enters), st.DegradedEnters)
	}
	if int64(len(exits)) != st.DegradedRecovers {
		t.Errorf("flight recorder holds %d degraded-exit events, fault stats say %d", len(exits), st.DegradedRecovers)
	}
	// Per worker: alternating enter/exit starting with enter, ending closed.
	state := map[string]string{}
	for _, ev := range res.Flight.Events {
		switch ev.Kind {
		case "degraded-enter":
			if state[ev.Node] == "in" {
				t.Errorf("%s: degraded-enter while already degraded (seq %d)", ev.Node, ev.Seq)
			}
			state[ev.Node] = "in"
		case "degraded-exit":
			if state[ev.Node] != "in" {
				t.Errorf("%s: degraded-exit without a preceding enter (seq %d)", ev.Node, ev.Seq)
			}
			state[ev.Node] = "out"
		}
	}
	for node, s := range state {
		if s == "in" {
			t.Errorf("%s: still degraded at end of run — exit event never recorded", node)
		}
	}
}

// TestSchedulerChurnReproducible requires byte-identical traces across two
// same-seed runs of the scheduler-crash plan: the failure detector, beacons,
// handshake, and degraded-mode speculation must all live in virtual time.
func TestSchedulerChurnReproducible(t *testing.T) {
	run := func() *Result {
		res, err := Run(schedChurnConfig(t,
			scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive}, 4*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Loss.Snapshot(), b.Loss.Snapshot()) {
		t.Error("loss series differ across identical scheduler-crash runs")
	}
	if a.TotalIters != b.TotalIters || a.Aborts != b.Aborts || a.Epochs != b.Epochs || a.ReSyncs != b.ReSyncs {
		t.Errorf("progress differs: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			a.TotalIters, a.Aborts, a.Epochs, a.ReSyncs, b.TotalIters, b.Aborts, b.Epochs, b.ReSyncs)
	}
	if !reflect.DeepEqual(a.Trace.Events(), b.Trace.Events()) {
		t.Error("event traces differ across identical scheduler-crash runs")
	}
	if a.Faults.Stats() != b.Faults.Stats() {
		t.Errorf("fault stats differ: %+v vs %+v", a.Faults.Stats(), b.Faults.Stats())
	}
}

// TestSchedulerDownDegradedSpeculation kills the scheduler permanently under
// the adaptive scheme: workers must detect the loss, fail over to broadcast
// speculation, and keep aborting-and-resyncing without the coordinator.
func TestSchedulerDownDegradedSpeculation(t *testing.T) {
	res, err := Run(schedChurnConfig(t,
		scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive}, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge with the scheduler permanently down: final loss %.4f", res.FinalLoss)
	}
	st := res.Faults.Stats()
	if st.SchedulerCrashes != 1 || st.SchedulerRestarts != 0 {
		t.Errorf("scheduler crashes/restarts = %d/%d, want 1/0", st.SchedulerCrashes, st.SchedulerRestarts)
	}
	if st.DegradedEnters != 4 {
		t.Errorf("degraded enters = %d, want all 4 workers", st.DegradedEnters)
	}
	if st.DegradedRecovers != 0 {
		t.Errorf("degraded recovers = %d, want 0 (scheduler never came back)", st.DegradedRecovers)
	}
	// Degraded-mode speculation: abort events recorded after the crash, when
	// only the worker-local broadcast path could have triggered them.
	var crashAt time.Time
	for _, ev := range res.Trace.Events() {
		if ev.Kind == trace.KindCrash && ev.Worker == trace.SchedulerNode {
			crashAt = ev.At
		}
	}
	if crashAt.IsZero() {
		t.Fatal("no scheduler crash event in trace")
	}
	degradedAborts := 0
	for _, ev := range res.Trace.Events() {
		if ev.Kind == trace.KindAbort && ev.At.After(crashAt) {
			degradedAborts++
		}
	}
	if degradedAborts == 0 {
		t.Error("no abort events after the scheduler crash; broadcast failover never speculated")
	}
}
