package cluster

import (
	"testing"
	"time"

	"specsync/internal/scheme"
)

func TestSmokeTinyASP(t *testing.T) {
	wl, err := NewTiny(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Workload:   wl,
		Scheme:     scheme.Config{Base: scheme.ASP},
		Workers:    4,
		Seed:       1,
		MaxVirtual: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("converged=%v at %v, iters=%d, loss %v -> %v, epochs=%d",
		res.Converged, res.ConvergeTime, res.TotalIters,
		res.Loss.Snapshot()[0].V, res.FinalLoss, res.Epochs)
	if !res.Converged {
		t.Fatalf("tiny ASP did not converge; final loss %v", res.FinalLoss)
	}
}
