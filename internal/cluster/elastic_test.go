package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
	"time"

	"specsync/internal/core"
	"specsync/internal/elastic"
	"specsync/internal/scheme"
	"specsync/internal/trace"
)

func elasticDigest(t *testing.T, cfg Config) (string, *Result) {
	t.Helper()
	cfg.KeepTrace = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, res.Trace.Events()); err != nil {
		t.Fatalf("serialize trace: %v", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), res
}

// TestElasticEmptyPlanByteIdentical asserts the acceptance criterion that a
// run with an empty scale plan is byte-identical to today's legacy path: the
// routing machinery must add zero overhead when nothing scales.
func TestElasticEmptyPlanByteIdentical(t *testing.T) {
	wl, err := NewTiny(4, 7)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	digest, _ := elasticDigest(t, Config{
		Workload:   wl,
		Scheme:     scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive},
		Workers:    4,
		Seed:       7,
		Scale:      &elastic.Plan{},
		MaxVirtual: 2 * time.Minute,
	})
	if digest != goldenTinyDigest {
		t.Errorf("empty scale plan digest %s, golden %s", digest, goldenTinyDigest)
	}
}

func growShrinkConfig(t *testing.T, base scheme.Config) Config {
	t.Helper()
	// 8 data shards so the cluster can grow to 8 workers; start at 4.
	wl, err := NewTiny(8, 11)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	return Config{
		Workload: wl,
		Scheme:   base,
		Workers:  4,
		Servers:  4,
		Seed:     11,
		// The tiny workload converges in ~7 virtual seconds, so the grow and
		// shrink must both land before that for the full cycle to exercise.
		Scale: elastic.GrowShrink(4, 4, 4, 2,
			2*time.Second, 5*time.Second),
		MaxVirtual: 3 * time.Minute,
	}
}

// TestElasticDeterministic asserts the acceptance criterion that identical
// seed + scale plan produce the identical event trace across two runs.
func TestElasticDeterministic(t *testing.T) {
	cfg := growShrinkConfig(t, scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive})
	d1, r1 := elasticDigest(t, cfg)
	cfg2 := growShrinkConfig(t, scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive})
	d2, r2 := elasticDigest(t, cfg2)
	if d1 != d2 {
		t.Errorf("digests differ across identical runs: %s vs %s", d1, d2)
	}
	if r1.TotalIters != r2.TotalIters {
		t.Errorf("iters differ: %d vs %d", r1.TotalIters, r2.TotalIters)
	}
	if r1.Scale.Joins != r2.Scale.Joins || r1.Scale.Leaves != r2.Scale.Leaves ||
		r1.Scale.Migrations != r2.Scale.Migrations || r1.Scale.MigrationBytes != r2.Scale.MigrationBytes {
		t.Errorf("scale stats differ: %+v vs %+v", r1.Scale, r2.Scale)
	}
}

// TestElasticGrowShrinkConverges runs the acceptance scenario: 4 workers grow
// to 8 (with two extra server shards) and shrink back, and the run still
// converges, with every push accounted for.
func TestElasticGrowShrinkConverges(t *testing.T) {
	for _, tc := range []struct {
		name string
		sc   scheme.Config
	}{
		{"asp-spec", scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive}},
		{"bsp", scheme.Config{Base: scheme.BSP}},
		{"ssp", scheme.Config{Base: scheme.SSP, Staleness: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := growShrinkConfig(t, tc.sc)
			_, res := elasticDigest(t, cfg)
			if !res.Converged {
				t.Fatalf("elastic run did not converge (final loss %.4f)", res.FinalLoss)
			}
			if res.Scale == nil {
				t.Fatal("no scale stats on elastic run")
			}
			if res.Scale.Joins != 4 {
				t.Errorf("joins = %d, want 4", res.Scale.Joins)
			}
			if res.Scale.Leaves != 4 {
				t.Errorf("leaves = %d, want 4", res.Scale.Leaves)
			}
			// Two add-server events and two remove-server events, each its own
			// migration (commands queue FIFO behind an in-flight migration).
			if res.Scale.Migrations != 4 {
				t.Errorf("migrations = %d, want 4", res.Scale.Migrations)
			}
			if res.Scale.MigrationBytes <= 0 {
				t.Errorf("migration bytes = %d, want > 0", res.Scale.MigrationBytes)
			}
			if len(res.Scale.Durations) != int(res.Scale.Migrations) {
				t.Errorf("%d migration durations for %d migrations", len(res.Scale.Durations), res.Scale.Migrations)
			}

			// Push accounting: a worker only counts an iteration done once
			// every shard in its routing view acknowledged (and therefore
			// applied) the push, so the servers must have applied at least
			// min-shards (4) pushes per completed iteration. Fewer would mean
			// a push was lost in a migration.
			if res.TotalIters <= 0 {
				t.Fatal("no iterations completed")
			}
			if res.Obs.ServerPushes < 4*res.TotalIters {
				t.Errorf("servers applied %d pushes for %d iterations x >=4 shards; pushes were lost", res.Obs.ServerPushes, res.TotalIters)
			}

			// The trace must carry the scale events for the tooling.
			var joins, leaves, migrates int
			for _, ev := range res.Trace.Events() {
				switch ev.Kind {
				case trace.KindJoin:
					joins++
				case trace.KindLeave:
					leaves++
				case trace.KindMigrate:
					migrates++
				}
			}
			if joins != 4 || leaves != 4 || migrates != 4 {
				t.Errorf("trace has %d joins, %d leaves, %d migrates; want 4/4/4", joins, leaves, migrates)
			}
		})
	}
}

// TestElasticMatchesStaticAfterShrink compares the elastic 4→8→4 run against
// the static 4-worker baseline: both must converge to the target, and the
// elastic run must not lose the model (final loss within the same ballpark).
func TestElasticMatchesStaticAfterShrink(t *testing.T) {
	cfg := growShrinkConfig(t, scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive})
	_, res := elasticDigest(t, cfg)

	static := cfg
	static.Scale = nil
	_, base := elasticDigest(t, static)

	if !res.Converged || !base.Converged {
		t.Fatalf("convergence: elastic=%v static=%v", res.Converged, base.Converged)
	}
	tol := 2 * cfg.Workload.TargetLoss
	if res.FinalLoss > tol {
		t.Errorf("elastic final loss %.4f exceeds tolerance %.4f (static %.4f)", res.FinalLoss, tol, base.FinalLoss)
	}
	// More compute mid-run must not slow convergence down dramatically.
	if res.Converged && base.Converged && res.ConvergeTime > 2*base.ConvergeTime+20*time.Second {
		t.Errorf("elastic converged at %v, static at %v", res.ConvergeTime, base.ConvergeTime)
	}
}

// TestElasticConfigValidation covers the shape checks: a model must have at
// least one parameter per server shard, both for the initial cluster and for
// the capacity a scale plan grows into, and unsupported combinations fail
// loudly instead of misbehaving.
func TestElasticConfigValidation(t *testing.T) {
	wl, err := NewTiny(4, 1) // dim 24
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	base := Config{
		Workload:   wl,
		Scheme:     scheme.Config{Base: scheme.ASP},
		Workers:    4,
		MaxVirtual: time.Minute,
	}

	tooMany := base
	tooMany.Servers = 25 // dim is 24
	if _, err := Run(tooMany); err == nil {
		t.Error("dim < Servers accepted")
	}

	planTooMany := base
	planTooMany.Servers = 4
	planTooMany.Scale = &elastic.Plan{Events: []elastic.Event{
		{Kind: elastic.KindAddServer, At: time.Second, Node: 24}, // grows capacity to 25 > dim
	}}
	if _, err := Run(planTooMany); err == nil {
		t.Error("scale plan growing past dim accepted")
	}

	badPlan := base
	badPlan.Scale = &elastic.Plan{Events: []elastic.Event{{Kind: "warp", At: time.Second}}}
	if _, err := Run(badPlan); err == nil {
		t.Error("invalid plan accepted")
	}

	decentral := base
	decentral.Scheme.Spec = scheme.SpecAdaptive
	decentral.Scheme.Decentralized = true
	decentral.Scale = elastic.GrowShrink(4, 1, 1, 0, time.Second, 0)
	if _, err := Run(decentral); err == nil {
		t.Error("Scale + decentralized accepted")
	}
}

// TestElasticTunerTracksMembership asserts that Algorithm 1 re-derives the
// per-worker ABORT_RATEs from the *current* membership: after the cluster
// grows from 4 to 8 workers, some tuning epoch must assign nonzero rates to
// more than the original 4 workers.
func TestElasticTunerTracksMembership(t *testing.T) {
	wl, err := NewTiny(8, 5)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	maxRated := 0
	_, err = Run(Config{
		Workload:   wl,
		Scheme:     scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive},
		Workers:    4,
		Servers:    2,
		Seed:       5,
		Scale:      elastic.GrowShrink(4, 4, 2, 0, 8*time.Second, 0),
		MaxVirtual: 90 * time.Second,
		OnTune: func(epoch int, tn core.Tuning) {
			rated := 0
			for _, r := range tn.Rates {
				if r > 0 {
					rated++
				}
			}
			if rated > maxRated {
				maxRated = rated
			}
		},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if maxRated <= 4 {
		t.Errorf("tuner never rated more than %d workers; scale-up to 8 not reflected", maxRated)
	}
}
