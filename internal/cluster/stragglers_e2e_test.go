package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
	"time"

	"specsync/internal/des"
	"specsync/internal/scheme"
	"specsync/internal/stragglers"
	"specsync/internal/trace"
)

// traceDigest hashes a run's full event trace (same recipe as the scheme
// golden test).
func traceDigest(t *testing.T, res *Result) string {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, res.Trace.Events()); err != nil {
		t.Fatalf("serialize trace: %v", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// TestEmptyStragglerPlanByteIdentical is the golden-path guard: a nil plan
// and an explicitly empty plan must produce byte-identical runs — no speed
// scripts, no link hook, no detection timer, no extra messages.
func TestEmptyStragglerPlanByteIdentical(t *testing.T) {
	run := func(p *stragglers.Plan) string {
		wl, err := NewTiny(4, 7)
		if err != nil {
			t.Fatalf("workload: %v", err)
		}
		res, err := Run(Config{
			Workload:   wl,
			Scheme:     scheme.Config{Base: scheme.BSP},
			Workers:    4,
			Seed:       7,
			Stragglers: p,
			MaxVirtual: 2 * time.Minute,
			KeepTrace:  true,
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if p != nil && res.Stragglers != nil {
			t.Error("empty plan produced straggler stats; want the nil-plan path")
		}
		return traceDigest(t, res)
	}
	if a, b := run(nil), run(&stragglers.Plan{}); a != b {
		t.Errorf("empty plan drifted from nil plan: %s vs %s", a, b)
	}
}

// stragglerRun executes one profile cell on the tiny workload.
func stragglerRun(t *testing.T, sc scheme.Config, plan *stragglers.Plan, mit stragglers.Mitigation, mut func(*Config)) *Result {
	t.Helper()
	wl, err := NewTiny(6, 11)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	cfg := Config{
		Workload:       wl,
		Scheme:         sc,
		Workers:        4,
		Seed:           11,
		Stragglers:     plan,
		Mitigation:     mit,
		DisableHiccups: true,
		MaxVirtual:     4 * time.Minute,
		KeepTrace:      true,
	}
	if mut != nil {
		mut(&cfg)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// TestDegradeProfileDetection: a sustained degrade profile must be detected
// with perfect precision and recall — the injected worker (and only it)
// reaches the sustained level, and the score lands in the result and the
// /stragglerz snapshot.
func TestDegradeProfileDetection(t *testing.T) {
	plan := &stragglers.Plan{Events: []stragglers.Event{
		{Kind: stragglers.KindDegrade, Worker: 2, At: 5 * time.Second, Speed: 0.35},
	}}
	res := stragglerRun(t, scheme.Config{Base: scheme.ASP}, plan, stragglers.MitigateNone, func(c *Config) {
		wl := c.Workload
		wl.TargetLoss = 0 // run the full horizon so the flag can escalate
		c.Workload = wl
	})
	st := res.Stragglers
	if st == nil {
		t.Fatal("no straggler stats on a profiled run")
	}
	if got := st.Score.Truth; len(got) != 1 || got[0] != 2 {
		t.Fatalf("ground truth %v, want [2]", got)
	}
	if st.Score.Recall != 1 {
		t.Errorf("recall %.2f (detected %v), want 1", st.Score.Recall, st.Score.Detected)
	}
	if st.Score.Precision != 1 {
		t.Errorf("precision %.2f (detected %v), want 1", st.Score.Precision, st.Score.Detected)
	}
	if st.Mitigation.Clones != 0 || st.Mitigation.Rebalances != 0 {
		t.Errorf("unmitigated run acted: %+v", st.Mitigation)
	}
}

// TestCloneMitigationDigestSafety is the dedup safety property: with the
// clone guaranteed to lose every race (SpareSpeed well below the degraded
// original, zero network jitter), a cloned run must end at exactly the
// unmitigated model digest — every clone push acknowledged but never
// applied.
func TestCloneMitigationDigestSafety(t *testing.T) {
	plan := &stragglers.Plan{Events: []stragglers.Event{
		{Kind: stragglers.KindDegrade, Worker: 1, At: 5 * time.Second, Speed: 0.5},
	}}
	net := des.NetModel{Latency: 250 * time.Microsecond, BytesPerSec: 125e6}
	run := func(mit stragglers.Mitigation) *Result {
		return stragglerRun(t, scheme.Config{Base: scheme.BSP}, plan, mit, func(c *Config) {
			c.Net = net
			c.SpareSpeed = 0.2 // always slower than the 0.5x-degraded original
			c.MaxItersPerWorker = 40
			wl := c.Workload
			wl.TargetLoss = 0
			wl.JitterSigma = 0
			c.Workload = wl
		})
	}
	base := run(stragglers.MitigateNone)
	cloned := run(stragglers.MitigateClone)
	if cloned.Stragglers.Mitigation.Clones < 1 {
		t.Fatalf("no clone started: %+v", cloned.Stragglers.Mitigation)
	}
	if cloned.Stragglers.CloneDeduped < 1 {
		t.Errorf("clone raced but no push was deduped: %+v", cloned.Stragglers)
	}
	if base.ParamsDigest != cloned.ParamsDigest {
		t.Errorf("clone mitigation changed the model: %s vs %s (deduped=%d dropped=%d)",
			base.ParamsDigest, cloned.ParamsDigest,
			cloned.Stragglers.CloneDeduped, cloned.Stragglers.CloneDropped)
	}
}

// TestCloneMitigationUnblocksPausedBarrier: under BSP a paused worker stalls
// every barrier; the overdue detector must force-flag it (it emits no spans
// at all) and the clone's translated notifies must keep the barrier
// releasing. The cloned run must make strictly more progress.
func TestCloneMitigationUnblocksPausedBarrier(t *testing.T) {
	plan := &stragglers.Plan{Events: []stragglers.Event{
		{Kind: stragglers.KindPause, Worker: 3, At: 10 * time.Second, Duration: 3 * time.Minute},
	}}
	run := func(mit stragglers.Mitigation) *Result {
		return stragglerRun(t, scheme.Config{Base: scheme.BSP}, plan, mit, func(c *Config) {
			wl := c.Workload
			wl.TargetLoss = 0
			c.Workload = wl
		})
	}
	base := run(stragglers.MitigateNone)
	cloned := run(stragglers.MitigateClone)
	if cloned.Stragglers.Mitigation.Clones < 1 {
		t.Fatalf("paused worker never cloned: %+v", cloned.Stragglers.Mitigation)
	}
	if cloned.TotalIters <= base.TotalIters {
		t.Errorf("clone mitigation did not unblock the barrier: %d iters vs %d unmitigated",
			cloned.TotalIters, base.TotalIters)
	}
	// The pause is invisible to span scoring, so recall relies on the
	// overdue force-flag path.
	if cloned.Stragglers.Score.Recall != 1 {
		t.Errorf("paused straggler not detected: %+v", cloned.Stragglers.Score)
	}
}

// TestRebalanceMitigationSwapsStraggler: the rebalance mode must retire the
// degraded worker through the elastic machinery and admit a healthy
// replacement from the spare slots.
func TestRebalanceMitigationSwapsStraggler(t *testing.T) {
	plan := &stragglers.Plan{Events: []stragglers.Event{
		{Kind: stragglers.KindDegrade, Worker: 0, At: 5 * time.Second, Speed: 0.25},
	}}
	res := stragglerRun(t, scheme.Config{Base: scheme.SSP, Staleness: 3}, plan, stragglers.MitigateRebalance, func(c *Config) {
		c.Spares = 1
		wl := c.Workload
		wl.TargetLoss = 0
		c.Workload = wl
	})
	if res.Stragglers.Mitigation.Rebalances != 1 {
		t.Fatalf("rebalances = %d, want 1 (stats %+v)", res.Stragglers.Mitigation.Rebalances, res.Stragglers.Mitigation)
	}
	if res.Scale == nil {
		t.Fatal("no scale stats on a rebalance run")
	}
	if res.Scale.Joins != 1 || res.Scale.Leaves != 1 {
		t.Errorf("joins=%d leaves=%d, want 1 join and 1 leave", res.Scale.Joins, res.Scale.Leaves)
	}
	var sawJoin, sawLeave bool
	for _, ev := range res.Trace.Events() {
		switch ev.Kind {
		case trace.KindJoin:
			sawJoin = true
		case trace.KindLeave:
			sawLeave = true
		}
	}
	if !sawJoin || !sawLeave {
		t.Errorf("trace missing membership events: join=%v leave=%v", sawJoin, sawLeave)
	}
}

// TestStragglerRunsDeterministic: every profile kind × mitigation mode must
// be reproducible — two same-seed runs end at identical trace digests.
func TestStragglerRunsDeterministic(t *testing.T) {
	plan := &stragglers.Plan{Events: []stragglers.Event{
		{Kind: stragglers.KindPause, Worker: 0, At: 8 * time.Second, Duration: 15 * time.Second},
		{Kind: stragglers.KindDegrade, Worker: 2, At: 5 * time.Second, Speed: 0.5},
		{Kind: stragglers.KindCongest, Worker: 3, At: 12 * time.Second, Speed: 0.4},
	}}
	for _, mit := range []stragglers.Mitigation{stragglers.MitigateNone, stragglers.MitigateClone, stragglers.MitigateRebalance} {
		run := func() string {
			res := stragglerRun(t, scheme.Config{Base: scheme.SSP, Staleness: 3}, plan, mit, nil)
			return traceDigest(t, res)
		}
		if a, b := run(), run(); a != b {
			t.Errorf("mitigation %q not deterministic: %s vs %s", mit, a, b)
		}
	}
}
