package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
	"time"

	"specsync/internal/scheme"
	"specsync/internal/trace"
)

// Golden digests captured from the pre-scheme-zoo build (SHA-256 over the
// JSONL serialization of the full event trace, same recipe as the codec
// identity test). Every pre-existing scheme must stay byte-identical after
// the scheme-dispatch refactor that made the active scheme a runtime value:
// same messages, same simulated timings, same events. The hetero cases pin
// runs with unequal worker speeds so the straggler/span paths are covered
// too.
const (
	goldenSchemeOriginalDigest = "5761e55884661db1bd4aceeb34730c3af839302614a4c06d836c23a525f0e328"
	goldenSchemeBSPDigest      = "ab47754768cae57638594445f37b12fede5abaf86843698be56c5a3a7b24272c"
	goldenSchemeSSPDigest      = "e54e6ace3286f39fc7c372a0f69ef20c230d2c48f8e5d401d0b304fb27f8dba7"
	goldenSchemeCherryDigest   = "ee234f4803b7174a376a7c40520fa93cc9a178947610a45abebb870309d283c2"
	goldenSchemeAdaptiveDigest = "53abcfe7cbf55e6da032bbd61b2d42cd771e53743a0fd8462f25d867301fd823"
	goldenSchemeHeteroBSP      = "6538e804f4b34ee5ac2b1d898055ee812e36c7ba9bef92d5371f5c51999809f6"
	goldenSchemeHeteroSSP      = "cdfe0cc8203b9d1e7a89631f5ee59110456ba6284ee5cf56659beb17ba0dce88"
)

func schemeDigest(t *testing.T, sc scheme.Config, speeds []float64) string {
	t.Helper()
	wl, err := NewTiny(4, 7)
	if err != nil {
		t.Fatalf("build workload: %v", err)
	}
	res, err := Run(Config{
		Workload:   wl,
		Scheme:     sc,
		Workers:    4,
		Seed:       7,
		Speeds:     speeds,
		MaxVirtual: 2 * time.Minute,
		KeepTrace:  true,
	})
	if err != nil {
		t.Fatalf("run %s: %v", sc.Name(), err)
	}
	evs := res.Trace.Events()
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, evs); err != nil {
		t.Fatalf("serialize trace: %v", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// TestPreexistingSchemesByteIdentical pins every scheme that predates the
// scheme zoo against digests recorded from the seed build, proving the
// runtime-scheme dispatch refactor introduced no silent behavior drift.
func TestPreexistingSchemesByteIdentical(t *testing.T) {
	hetero := []float64{1, 1, 1, 0.55}
	cases := []struct {
		name   string
		sc     scheme.Config
		speeds []float64
		digest string
	}{
		{"original", scheme.Config{Base: scheme.ASP}, nil, goldenSchemeOriginalDigest},
		{"bsp", scheme.Config{Base: scheme.BSP}, nil, goldenSchemeBSPDigest},
		{"ssp3", scheme.Config{Base: scheme.SSP, Staleness: 3}, nil, goldenSchemeSSPDigest},
		{"cherry", scheme.Config{Base: scheme.ASP, Spec: scheme.SpecFixed, AbortTime: 100 * time.Millisecond, AbortRate: 0.22}, nil, goldenSchemeCherryDigest},
		{"adaptive", scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive}, nil, goldenSchemeAdaptiveDigest},
		{"hetero-bsp", scheme.Config{Base: scheme.BSP}, hetero, goldenSchemeHeteroBSP},
		{"hetero-ssp", scheme.Config{Base: scheme.SSP, Staleness: 3}, hetero, goldenSchemeHeteroSSP},
	}
	for _, tc := range cases {
		got := schemeDigest(t, tc.sc, tc.speeds)
		if got != tc.digest {
			t.Errorf("%s: trace digest %s, golden %s", tc.name, got, tc.digest)
		}
	}
}
