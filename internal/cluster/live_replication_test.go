package cluster

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"specsync/internal/core"
	"specsync/internal/faults"
	"specsync/internal/live"
	"specsync/internal/metrics"
	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/optimizer"
	"specsync/internal/ps"
	"specsync/internal/replica"
	"specsync/internal/scheme"
	"specsync/internal/worker"
)

// TestLiveReplicatedFailover runs the replicated planes on the live
// (wall-clock, goroutine-per-node) runtime: one shard with one warm backup
// and a scheduler with one standby. The plan kills the shard primary and
// then the scheduler for good; the backup must be promoted with zero lost
// pushes and the standby must win an election and keep serving the workers
// before any of them trips the degraded-mode failure detector.
func TestLiveReplicatedFailover(t *testing.T) {
	wl, err := NewTiny(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive}
	ranges, err := ps.ShardRanges(wl.Model.Dim(), 1)
	if err != nil {
		t.Fatal(err)
	}
	fm := metrics.NewFaults(msg.IsControl)
	iterTime := 20 * time.Millisecond

	initVec := wl.Model.Init(rand.New(rand.NewSource(1 ^ 0x1217)))
	makeShard := func(backup bool) *ps.Server {
		opt, err := optimizer.NewSGD(optimizer.SGDConfig{Schedule: wl.Schedule, Clip: wl.Clip}, ranges[0].Len())
		if err != nil {
			t.Fatal(err)
		}
		srv, err := ps.New(ps.Config{Range: ranges[0], Init: initVec, Optimizer: opt, Replica: backup})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	primary := makeShard(false)
	backup := makeShard(true)
	primary.SetBackups([]node.ID{node.ReplicaID(0, 1)})

	workers := make([]*worker.Worker, 2)
	for i := range workers {
		workers[i], err = worker.New(worker.Config{
			Index:            i,
			Shards:           ranges,
			Model:            wl.Model,
			Scheme:           sc,
			Compute:          worker.ComputeModel{Base: iterTime, Speed: 1},
			NumWorkers:       2,
			RetryAfter:       100 * time.Millisecond,
			SchedulerTimeout: 2 * time.Second,
			Faults:           fm,
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	makeSched := func(gen int64) (*core.Scheduler, error) {
		return core.NewScheduler(core.SchedulerConfig{
			Workers:     2,
			Scheme:      sc,
			InitialSpan: iterTime,
			Generation:  gen,
			BeaconEvery: 40 * time.Millisecond,
			Faults:      fm,
		})
	}
	sched, err := makeSched(0)
	if err != nil {
		t.Fatal(err)
	}
	leader, err := replica.NewLeader(replica.LeaderConfig{
		Sched:          sched,
		Standbys:       1,
		ReplicateEvery: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	standby, err := replica.NewStandby(replica.StandbyConfig{
		Index:           1,
		Standbys:        1,
		Workers:         2,
		ElectionTimeout: 300 * time.Millisecond,
		ReplicateEvery:  40 * time.Millisecond,
		MakeScheduler:   makeSched,
		Faults:          fm,
	})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	serving := primary
	plan := &faults.Plan{Events: []faults.Event{
		{Kind: faults.KindCrashServer, Node: 0, At: 150 * time.Millisecond, RestartAfter: 100 * time.Millisecond},
		// The scheduler stays down; the standby owns recovery.
		{Kind: faults.KindCrashScheduler, At: 600 * time.Millisecond},
	}}
	inj, err := faults.NewLive(faults.LiveOptions{
		Plan:       plan,
		NumWorkers: 2,
		NumServers: 1,
		Faults:     fm,
		Replicas:   1,
		Standbys:   1,
		Server: func(int) *ps.Server {
			mu.Lock()
			defer mu.Unlock()
			return serving
		},
		ReplicaServer: func(int, int) *ps.Server { return backup },
		OnPromote: func(_ int, srv *ps.Server) {
			mu.Lock()
			serving = srv
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	net, err := live.NewNetwork(live.NetworkConfig{Registry: msg.Registry(), Seed: 1, Fault: inj.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode(node.ServerID(0), primary); err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode(node.ReplicaID(0, 1), backup); err != nil {
		t.Fatal(err)
	}
	for i, wk := range workers {
		if err := net.AddNode(node.WorkerID(i), wk); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.AddNode(node.Scheduler, leader); err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode(node.StandbyID(1), standby); err != nil {
		t.Fatal(err)
	}
	net.Start()
	defer net.Close()
	inj.Start(net)
	defer inj.Stop()

	waitFor(t, "the backup to be promoted to shard primary", func() bool {
		return fm.Stats().Promotions == 1
	})
	itersAtPromote := workers[0].IterationsDone() + workers[1].IterationsDone()
	waitFor(t, "training progress on the promoted shard", func() bool {
		return workers[0].IterationsDone()+workers[1].IterationsDone() > itersAtPromote
	})
	waitFor(t, "the standby to win the election", func() bool {
		return standby.Role() == replica.RoleLeader
	})
	itersAtElect := workers[0].IterationsDone() + workers[1].IterationsDone()
	waitFor(t, "training progress under the elected scheduler", func() bool {
		return workers[0].IterationsDone()+workers[1].IterationsDone() > itersAtElect
	})

	if errs := inj.Errs(); len(errs) != 0 {
		t.Fatalf("injector errors: %v", errs)
	}
	st := fm.Stats()
	if st.LostPushes != 0 {
		t.Errorf("lost pushes = %d, want 0 under replication", st.LostPushes)
	}
	if st.Promotions != 1 {
		t.Errorf("promotions = %d, want 1", st.Promotions)
	}
	if st.Elections < 1 {
		t.Errorf("elections = %d, want >= 1", st.Elections)
	}
	if st.SchedulerRestarts != 0 {
		t.Errorf("scheduler restarts = %d, want 0 (the standby owns recovery)", st.SchedulerRestarts)
	}
	if st.DegradedEnters != 0 {
		t.Errorf("degraded enters = %d, want 0 (failover should beat the workers' timeout)", st.DegradedEnters)
	}
	if got := backup.Replica(); got {
		t.Error("promoted backup still reports replica mode")
	}
}
