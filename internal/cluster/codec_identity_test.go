package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
	"time"

	"specsync/internal/codec"
	"specsync/internal/scheme"
	"specsync/internal/trace"
)

// Golden digests captured from the pre-codec build (SHA-256 over the JSONL
// serialization of the full event trace). The raw codec is required to be
// byte-identical to that build: same messages, same simulated timings, same
// events, same transfer bytes.
const (
	goldenTinyDigest = "53abcfe7cbf55e6da032bbd61b2d42cd771e53743a0fd8462f25d867301fd823"
	goldenTinyEvents = 159
	goldenTinyBytes  = 27147

	goldenMFDigest = "16053559ea46635c0a5c8baf7308ba63341f3e578a7068b616fd73f017ad68a8"
	goldenMFEvents = 542
	goldenMFBytes  = 3612969
)

func runDigest(t *testing.T, wl Workload, seed int64, cc codec.Config) (digest string, events int, bytesOnWire int64, res *Result) {
	t.Helper()
	res, err := Run(Config{
		Workload:   wl,
		Scheme:     scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive},
		Workers:    4,
		Seed:       seed,
		Codec:      cc,
		MaxVirtual: 2 * time.Minute,
		KeepTrace:  true,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	evs := res.Trace.Events()
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, evs); err != nil {
		t.Fatalf("serialize trace: %v", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), len(evs), res.Transfer.TotalBytes(), res
}

// TestRawCodecByteIdentical asserts the acceptance criterion that the
// default raw codec reproduces the pre-PR build bit-for-bit: the full event
// trace (including virtual timestamps, which depend on every message's
// encoded size) and the transfer byte totals match golden values recorded
// before the codec subsystem existed. Both an explicit "raw" and the zero
// config must hit the legacy path.
func TestRawCodecByteIdentical(t *testing.T) {
	cases := []struct {
		name   string
		seed   int64
		build  func() (Workload, error)
		digest string
		events int
		bytes  int64
	}{
		{"tiny", 7, func() (Workload, error) { return NewTiny(4, 7) }, goldenTinyDigest, goldenTinyEvents, goldenTinyBytes},
		{"mf", 3, func() (Workload, error) { return NewMF(SizeSmall, 4, 3) }, goldenMFDigest, goldenMFEvents, goldenMFBytes},
	}
	for _, tc := range cases {
		for _, cc := range []codec.Config{{}, {Name: "raw"}} {
			wl, err := tc.build()
			if err != nil {
				t.Fatalf("%s: build workload: %v", tc.name, err)
			}
			digest, events, bytesOnWire, _ := runDigest(t, wl, tc.seed, cc)
			if events != tc.events {
				t.Errorf("%s codec=%q: %d events, golden %d", tc.name, cc.Name, events, tc.events)
			}
			if bytesOnWire != tc.bytes {
				t.Errorf("%s codec=%q: %d bytes on wire, golden %d", tc.name, cc.Name, bytesOnWire, tc.bytes)
			}
			if digest != tc.digest {
				t.Errorf("%s codec=%q: trace digest %s, golden %s", tc.name, cc.Name, digest, tc.digest)
			}
		}
	}
}
