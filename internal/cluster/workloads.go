// Package cluster wires servers, workers and the scheduler into a running
// training job on the discrete-event simulator, and defines the three
// benchmark workload profiles of paper Table I (scaled ~1/100 in parameter
// count so experiments run in seconds of wall time; iteration times keep the
// paper's 3 s / 14 s / 70 s profile in virtual time).
package cluster

import (
	"fmt"
	"time"

	"specsync/internal/data"
	"specsync/internal/model"
	"specsync/internal/optimizer"
)

// Workload bundles a model with its training profile.
type Workload struct {
	// Name identifies the workload ("mf", "cifar10", "imagenet").
	Name string
	// Model is the trainable workload, pre-sharded for the worker count.
	Model model.Model
	// IterTime is the nominal compute time per iteration (Table I).
	IterTime time.Duration
	// JitterSigma is the default lognormal compute-time variation.
	JitterSigma float64
	// Schedule is the server-side learning-rate schedule.
	Schedule optimizer.Schedule
	// Momentum is the server-side momentum (0 for sparse MF).
	Momentum float64
	// Clip is the per-push gradient-norm clip (0 = off).
	Clip float64
	// TargetLoss defines convergence: eval loss below this for 5
	// consecutive probes.
	TargetLoss float64
	// EvalEvery is the probe interval.
	EvalEvery time.Duration
	// DatasetSize is the number of training samples/ratings (Table I).
	DatasetSize int
	// BatchSize is the per-iteration minibatch size (Table I).
	BatchSize int
}

// Validate reports profile errors.
func (w Workload) Validate() error {
	if w.Model == nil {
		return fmt.Errorf("cluster: workload %q has nil model", w.Name)
	}
	if w.IterTime <= 0 || w.EvalEvery <= 0 {
		return fmt.Errorf("cluster: workload %q has non-positive timing", w.Name)
	}
	if w.Schedule == nil {
		return fmt.Errorf("cluster: workload %q has nil schedule", w.Name)
	}
	return nil
}

// Size selects the workload scale.
type Size int

// Workload sizes.
const (
	// SizeFull is the scale used by the experiment harness.
	SizeFull Size = iota + 1
	// SizeSmall is a reduced scale for unit tests and quick benchmarks.
	SizeSmall
)

// NewMF builds the MovieLens-substitute matrix-factorization workload
// (Table I row 1: 4.2M params, 3 s iterations — here (users+items)*rank
// params at the same iteration profile).
func NewMF(size Size, workers int, seed int64) (Workload, error) {
	users, items, rank := 1200, 900, 20
	n, evalN, batch := 60000, 2000, 1000
	if size == SizeSmall {
		users, items, rank = 120, 90, 8
		n, evalN, batch = 6000, 400, 200
	}
	ratings, err := data.NewRatings(data.RatingsConfig{
		Users: users, Items: items, TrueRank: rank / 2,
		N: n, EvalN: evalN, Noise: 0.1, Seed: seed,
	})
	if err != nil {
		return Workload{}, err
	}
	shards, err := data.ShardRatings(ratings.Train, workers, false, seed+1)
	if err != nil {
		return Workload{}, err
	}
	mf, err := model.NewMF(model.MFConfig{
		Name: "mf", Rank: rank, BatchSize: batch, L2: 0.02, InitScale: 0.15,
	}, users, items, shards, ratings.Eval)
	if err != nil {
		return Workload{}, err
	}
	return Workload{
		Name:        "mf",
		Model:       mf,
		IterTime:    3 * time.Second,
		JitterSigma: 0.25,
		Schedule:    optimizer.Const(0.35),
		Clip:        5,
		TargetLoss:  0.15,
		EvalEvery:   2 * time.Second,
		DatasetSize: n,
		BatchSize:   batch,
	}, nil
}

// NewCIFAR builds the CIFAR-10 substitute (Table I row 2: ResNet-110,
// 14 s iterations — here an MLP on a 10-class synthetic image-feature
// dataset, non-IID sharded, with the paper's step-decay schedule shape).
func NewCIFAR(size Size, workers int, seed int64) (Workload, error) {
	classes, dim, hidden := 10, 64, 96
	n, evalN, batch := 10000, 500, 64
	if size == SizeSmall {
		dim, hidden = 32, 32
		n, evalN, batch = 4000, 300, 64
	}
	blobs, err := data.NewBlobs(data.BlobsConfig{
		Classes: classes, Dim: dim, N: n, EvalN: evalN,
		Spread: 1.0, Noise: 1.0, ScaleSpread: 6, Seed: seed,
	})
	if err != nil {
		return Workload{}, err
	}
	shards, err := data.ShardSamples(blobs.Train, workers, false, seed+1)
	if err != nil {
		return Workload{}, err
	}
	mlp, err := model.NewMLP(model.MLPConfig{
		Name: "cifar10", Hidden: hidden, BatchSize: batch, L2: 1e-4,
	}, classes, dim, shards, blobs.Eval)
	if err != nil {
		return Workload{}, err
	}
	wl := Workload{
		Name:        "cifar10",
		Model:       mlp,
		IterTime:    14 * time.Second,
		JitterSigma: 0.35,
		Schedule:    optimizer.Const(0.2),
		Momentum:    0.9,
		Clip:        10,
		TargetLoss:  0.30,
		EvalEvery:   14 * time.Second,
		DatasetSize: n,
		BatchSize:   batch,
	}
	if size == SizeSmall {
		// The reduced model is easier to destabilize; calibrated safe
		// settings for tests/quick benches at small worker counts.
		wl.Schedule = optimizer.Const(0.03)
		wl.Momentum = 0.8
		wl.TargetLoss = 0.8
	}
	return wl, nil
}

// NewImageNet builds the ImageNet substitute (Table I row 3: ResNet-18,
// 70 s iterations — here a wider/deeper-feature MLP over 100 classes).
func NewImageNet(size Size, workers int, seed int64) (Workload, error) {
	classes, dim, hidden := 50, 128, 96
	n, evalN, batch := 15000, 500, 64
	if size == SizeSmall {
		classes, dim, hidden = 20, 48, 32
		n, evalN, batch = 5000, 300, 64
	}
	blobs, err := data.NewBlobs(data.BlobsConfig{
		Classes: classes, Dim: dim, N: n, EvalN: evalN,
		Spread: 1.0, Noise: 1.1, ScaleSpread: 6, Seed: seed,
	})
	if err != nil {
		return Workload{}, err
	}
	shards, err := data.ShardSamples(blobs.Train, workers, false, seed+1)
	if err != nil {
		return Workload{}, err
	}
	mlp, err := model.NewMLP(model.MLPConfig{
		Name: "imagenet", Hidden: hidden, BatchSize: batch, L2: 1e-4,
	}, classes, dim, shards, blobs.Eval)
	if err != nil {
		return Workload{}, err
	}
	wl := Workload{
		Name:        "imagenet",
		Model:       mlp,
		IterTime:    70 * time.Second,
		JitterSigma: 0.35,
		Schedule:    optimizer.Const(0.03), // paper fixes the rate; calibrated for this substrate
		Momentum:    0.8,
		Clip:        10,
		TargetLoss:  0.5,
		EvalEvery:   70 * time.Second,
		DatasetSize: n,
		BatchSize:   batch,
	}
	if size == SizeSmall {
		wl.Schedule = optimizer.Const(0.03)
		wl.Momentum = 0.8
		wl.TargetLoss = 1.6
	}
	return wl, nil
}

// NewTiny builds a fast linear-regression workload for unit tests.
func NewTiny(workers int, seed int64) (Workload, error) {
	lr, err := model.NewLinReg(model.LinRegConfig{
		Dim: 24, N: 2000, EvalN: 300, Shards: workers, Noise: 0.1,
		BatchSize: 32, Seed: seed,
	})
	if err != nil {
		return Workload{}, err
	}
	return Workload{
		Name:        "tiny",
		Model:       lr,
		IterTime:    time.Second,
		JitterSigma: 0.2,
		Schedule:    optimizer.Const(0.05),
		Clip:        50,
		TargetLoss:  0.05,
		EvalEvery:   time.Second,
		DatasetSize: 2000,
		BatchSize:   32,
	}, nil
}

// InstanceSpeeds models the paper's heterogeneous Cluster 2 (10 each of
// m3.xlarge, m3.2xlarge, m4.xlarge, m4.2xlarge): per-instance speed ratios
// (4-vCPU m3 : 8-vCPU m3 : 4-vCPU m4 : 8-vCPU m4), assigned round-robin and
// normalized to unit mean so the heterogeneous cluster has the same
// aggregate compute as the homogeneous one — isolating the effect of speed
// *mismatch* from the effect of simply having more cores.
func InstanceSpeeds(workers int) []float64 {
	types := []float64{0.9, 1.8, 1.0, 2.0}
	out := make([]float64, workers)
	var sum float64
	for i := range out {
		out[i] = types[i%len(types)]
		sum += out[i]
	}
	mean := sum / float64(workers)
	for i := range out {
		out[i] /= mean
	}
	return out
}

// UniformSpeeds models the homogeneous Cluster 1 (all m4.xlarge).
func UniformSpeeds(workers int) []float64 {
	out := make([]float64, workers)
	for i := range out {
		out[i] = 1.0
	}
	return out
}
