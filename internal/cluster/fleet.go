package cluster

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"specsync/internal/codec"
	"specsync/internal/core"
	"specsync/internal/des"
	"specsync/internal/jobs"
	"specsync/internal/metrics"
	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/obs"
	"specsync/internal/optimizer"
	"specsync/internal/ps"
	"specsync/internal/scheme"
	"specsync/internal/tensor"
	"specsync/internal/trace"
	"specsync/internal/worker"
)

// Fleet hosts N concurrent training jobs on one shared parameter-server
// substrate and one deterministic event loop. Each job keeps its own scheme,
// workload, seed, and quota; the shared server slots multiplex per-job shard
// tenants (jobs.ServerHost), and the jobs manager admits, probes, and retires
// jobs on a periodic control tick.
//
// Job 0 occupies the legacy node namespace with un-enveloped traffic, so a
// one-job fleet replays cluster.Run byte for byte (the golden-digest parity
// test pins this). Fleet v1 deliberately excludes fault plans, scale plans,
// and decentralized speculation — those remain single-job features.

// JobSpec describes one job submitted to a Fleet.
type JobSpec struct {
	// Name labels the job (metrics, /clusterz, gateway). Empty defaults to
	// "job<id>"; duplicate names get an "-<id>" suffix.
	Name string
	// Workload is the model + training profile.
	Workload Workload
	// Scheme is this job's synchronization scheme.
	Scheme scheme.Config
	// Workers is this job's cluster size.
	Workers int
	// Servers is how many shared shard slots this job spreads over; zero
	// means min(Workers, 8) capped at the fleet's slot count. Slots are
	// assigned round-robin starting at (id mod fleet slots), so tenants
	// spread instead of piling onto slot 0.
	Servers int
	// Seed drives this job's data order, init, and compute jitter; zero
	// defaults to fleet seed + job id.
	Seed int64
	// Codec selects this job's compression config.
	Codec codec.Config
	// Speeds are per-worker speed factors (nil = homogeneous).
	Speeds []float64
	// SubmitAt delays admission until this virtual time.
	SubmitAt time.Duration
	// MaxInflightPush and ByteBudget are the job's quotas (0 = unlimited).
	MaxInflightPush int
	ByteBudget      int64
	// ConsecutiveBelow is the convergence streak length (0 = 5).
	ConsecutiveBelow int
	// AbortLateFrac and MaxAbortFrac mirror the Config knobs.
	AbortLateFrac float64
	MaxAbortFrac  float64
}

// FleetConfig describes a multi-job run.
type FleetConfig struct {
	// Jobs are the initial submissions (more can arrive via Fleet.Submit or
	// the gateway while the fleet runs).
	Jobs []JobSpec
	// Servers is the shared shard-slot count; zero means the max over the
	// initial jobs' (defaulted) Servers.
	Servers int
	// Seed drives the shared network simulation.
	Seed int64
	// Net is the simulated network (zero = EC2-like default, hiccups scaled
	// to the slowest job's iteration time).
	Net des.NetModel
	// DisableHiccups removes the transient-stall process from the default.
	DisableHiccups bool
	// MaxVirtual bounds the simulated duration. Required.
	MaxVirtual time.Duration
	// TickEvery is the manager control-loop period; zero means the minimum
	// EvalEvery over the initial jobs.
	TickEvery time.Duration
	// MaxConcurrent caps simultaneously running jobs (0 = unlimited).
	MaxConcurrent int
	// KeepTrace retains the full event trace.
	KeepTrace bool
	// Debug receives node logs.
	Debug io.Writer
	// Obs receives fleet telemetry; nil builds an internal instance.
	Obs *obs.Obs
	// OnStart runs after construction, before the simulator: mount gateways,
	// submit extra jobs, start pollers.
	OnStart func(*Fleet)
}

// JobResult is one job's slice of a FleetResult.
type JobResult struct {
	ID         int
	Name       string
	SchemeName string
	State      jobs.State
	Err        string

	Converged    bool
	ConvergeTime time.Duration
	TotalIters   int64
	FinalLoss    float64
	// Loss and IterSeries point at the manager-owned probe series (stable
	// once the run returns).
	Loss       *metrics.Series
	IterSeries *metrics.Series

	// Transfer is this job's bytes on wire (inner kinds, envelope sizes);
	// per-job totals sum exactly to the fleet Transfer total.
	Transfer *metrics.Transfer
	// Codec is this job's codec-layer accounting.
	Codec *codec.Stats
	// Pushes is the job's server-applied push count.
	Pushes int64
	// Aborts is the job's abort-and-restart count.
	Aborts int64
	// ThrottledPushes counts pushes that waited in the quota gate.
	ThrottledPushes int64

	AdmittedAt time.Duration
	FinishedAt time.Duration
}

// FleetResult summarizes a multi-job run.
type FleetResult struct {
	// Jobs is indexed by job ID.
	Jobs []JobResult
	// Elapsed is the total simulated duration.
	Elapsed time.Duration
	// Transfer is the fleet-wide byte accounting from the simulator.
	Transfer *metrics.Transfer
	// Trace is the interleaved event log (nil unless KeepTrace).
	Trace *trace.Collector
	// Obs is the fleet-wide observability summary (sums across jobs).
	Obs *obs.Summary
	// Flight is the fleet flight-recorder dump (admissions, quota trips,
	// retirements, per-job control-plane events, straggler flags).
	Flight obs.FlightDump
	// Ticks is how many manager control ticks ran.
	Ticks int64
	// Routing is the final namespaced fleet routing table (one block per
	// admitted job).
	Routing *core.RoutingTable
}

// fleetJob is the fleet-side construction state hung off jobs.Job.Payload.
type fleetJob struct {
	spec       JobSpec
	slots      []int
	ranges     []ps.Range
	workers    []*worker.Worker
	tenants    []*ps.Server
	sched      *core.Scheduler
	codecStats *codec.Stats
	probeVec   tensor.Vec
}

// Fleet is a constructed multi-job run: submit jobs, then Run it.
type Fleet struct {
	cfg       FleetConfig
	sim       *des.Sim
	mgr       *jobs.Manager
	obs       *obs.Obs
	transfer  *metrics.Transfer
	collector *trace.Collector
	hosts     []*jobs.ServerHost

	mu         sync.Mutex
	names      map[string]bool
	admissions int
	routing    *core.RoutingTable
}

func (c *FleetConfig) applyDefaults() error {
	if len(c.Jobs) == 0 {
		return fmt.Errorf("cluster: fleet needs at least one job")
	}
	if c.MaxVirtual <= 0 {
		return fmt.Errorf("cluster: fleet MaxVirtual must be positive")
	}
	maxServers, maxIter := 0, time.Duration(0)
	minEval := time.Duration(0)
	for i := range c.Jobs {
		s := &c.Jobs[i]
		if s.Servers == 0 {
			s.Servers = s.Workers
			if s.Servers > 8 {
				s.Servers = 8
			}
		}
		if s.Servers > maxServers {
			maxServers = s.Servers
		}
		if it := s.Workload.IterTime; it > maxIter {
			maxIter = it
		}
		if ev := s.Workload.EvalEvery; ev > 0 && (minEval == 0 || ev < minEval) {
			minEval = ev
		}
	}
	if c.Servers == 0 {
		c.Servers = maxServers
	}
	if c.TickEvery == 0 {
		c.TickEvery = minEval
	}
	if c.TickEvery <= 0 {
		return fmt.Errorf("cluster: fleet TickEvery must be positive")
	}
	zero := des.NetModel{}
	if c.Net == zero {
		c.Net = des.NetModel{
			Latency:     250 * time.Microsecond,
			BytesPerSec: 125e6,
			Jitter:      100 * time.Microsecond,
		}
		if !c.DisableHiccups {
			c.Net.Hiccups = des.Hiccups{
				MeanEvery: 4 * maxIter,
				MinDur:    maxIter / 2,
				MaxDur:    maxIter * 5 / 4,
			}
		}
	}
	return nil
}

func validateJobSpec(s *JobSpec, fleetServers int) error {
	if err := s.Workload.Validate(); err != nil {
		return err
	}
	if err := s.Scheme.Validate(); err != nil {
		return err
	}
	if s.Scheme.Decentralized {
		return fmt.Errorf("cluster: fleet jobs cannot use decentralized speculation (single-job feature)")
	}
	if s.Workers < 1 {
		return fmt.Errorf("cluster: job needs at least 1 worker")
	}
	if s.Workload.Model.NumShards() < s.Workers {
		return fmt.Errorf("cluster: job workload has %d data shards for %d workers",
			s.Workload.Model.NumShards(), s.Workers)
	}
	if s.Speeds != nil && len(s.Speeds) != s.Workers {
		return fmt.Errorf("cluster: job has %d speeds for %d workers", len(s.Speeds), s.Workers)
	}
	if err := s.Codec.Validate(); err != nil {
		return err
	}
	if s.Servers < 1 || s.Servers > fleetServers {
		return fmt.Errorf("cluster: job wants %d shard slots, fleet has %d", s.Servers, fleetServers)
	}
	if dim := s.Workload.Model.Dim(); dim < s.Servers {
		return fmt.Errorf("cluster: job model dim %d smaller than %d shard slots", dim, s.Servers)
	}
	if s.SubmitAt < 0 || s.MaxInflightPush < 0 || s.ByteBudget < 0 {
		return fmt.Errorf("cluster: job has negative SubmitAt/quota")
	}
	return nil
}

// NewFleet builds the shared substrate (simulator, server hosts, manager)
// and queues the configured jobs.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}

	o := cfg.Obs
	if o == nil {
		o = obs.New(obs.Options{})
	}
	registry := msg.Registry()
	transfer := metrics.NewTransfer(msg.IsControl)
	o.Registry().SetCollector("transfer", func(w io.Writer) {
		transfer.WritePrometheus(w, registry.Name)
	})

	sim, err := des.New(des.Config{
		Seed:     cfg.Seed,
		Net:      cfg.Net,
		Registry: registry,
		Transfer: transfer,
		Metrics:  o.Registry(),
		Debug:    cfg.Debug,
	})
	if err != nil {
		return nil, err
	}

	f := &Fleet{
		cfg:       cfg,
		sim:       sim,
		obs:       o,
		transfer:  transfer,
		collector: trace.NewCollector(),
		hosts:     make([]*jobs.ServerHost, cfg.Servers),
		names:     map[string]bool{},
	}
	o.SetTracer(f.collector)
	for slot := range f.hosts {
		f.hosts[slot] = jobs.NewServerHost(registry)
		if err := sim.AddNode(node.ServerID(slot), f.hosts[slot]); err != nil {
			return nil, err
		}
	}

	f.mgr, err = jobs.NewManager(jobs.ManagerConfig{
		TickEvery:     cfg.TickEvery,
		MaxConcurrent: cfg.MaxConcurrent,
		Now:           sim.Elapsed,
		Epoch:         sim.Now(),
		Schedule:      func(d time.Duration, fn func()) { sim.Schedule(d, fn) },
		Spawn:         f.spawn,
		Halt:          f.halt,
		Cleanup:       f.cleanup,
		Probe:         f.probe,
		OnAllDone:     sim.Stop,
		Obs:           o,
	})
	if err != nil {
		return nil, err
	}

	for i := range cfg.Jobs {
		if _, err := f.Submit(cfg.Jobs[i]); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Manager exposes the jobs manager (for gateways and tests).
func (f *Fleet) Manager() *jobs.Manager { return f.mgr }

// Obs exposes the fleet's observability instance.
func (f *Fleet) Obs() *obs.Obs { return f.obs }

// Submit validates and queues one more job; safe before Run and, from other
// goroutines, while the fleet runs (the job is admitted at the next control
// tick). The job is fully constructed under the manager lock before it
// becomes visible to the control loop, so a concurrent tick never observes a
// half-built job.
func (f *Fleet) Submit(spec JobSpec) (int, error) {
	return f.submit(func(int) (JobSpec, error) { return spec, nil })
}

// SubmitRequest resolves a gateway submission (workload and scheme by name)
// into a JobSpec and queues it. A zero request seed defaults to fleet seed +
// job ID, resolved once before the workload is built, so the workload's data
// order and the job's runtime seed agree and seedless submissions still get
// distinct seeds per job.
func (f *Fleet) SubmitRequest(req jobs.SubmitRequest) (int, error) {
	if req.Workers < 1 {
		return 0, fmt.Errorf("cluster: job needs at least 1 worker")
	}
	return f.submit(func(id int) (JobSpec, error) {
		seed := req.Seed
		if seed == 0 {
			seed = f.cfg.Seed + int64(id)
		}
		wl, err := WorkloadByName(req.Workload, req.Workers, seed)
		if err != nil {
			return JobSpec{}, err
		}
		sc, err := SchemeByName(req.Scheme, wl.IterTime)
		if err != nil {
			return JobSpec{}, err
		}
		return JobSpec{
			Name:            req.Name,
			Workload:        wl,
			Scheme:          sc,
			Workers:         req.Workers,
			Servers:         req.Servers,
			Seed:            seed,
			SubmitAt:        req.SubmitAt(),
			MaxInflightPush: req.MaxInflightPush,
			ByteBudget:      req.ByteBudget,
		}, nil
	})
}

// submit reserves the next job ID and finishes construction under the
// manager lock: build produces the (possibly ID-dependent) spec, which is
// defaulted, validated, and attached to the job before the manager's control
// loop or listings can see it. A build or validation error discards the job.
func (f *Fleet) submit(build func(id int) (JobSpec, error)) (int, error) {
	j := &jobs.Job{Acct: jobs.NewAcct()}
	return f.mgr.SubmitPrepared(j, func(id int) error {
		spec, err := build(id)
		if err != nil {
			return err
		}
		if spec.Servers == 0 {
			spec.Servers = spec.Workers
			if spec.Servers > 8 {
				spec.Servers = 8
			}
			if spec.Servers > f.cfg.Servers {
				spec.Servers = f.cfg.Servers
			}
		}
		if err := validateJobSpec(&spec, f.cfg.Servers); err != nil {
			return err
		}
		if spec.Seed == 0 {
			spec.Seed = f.cfg.Seed + int64(id)
		}

		j.Name = spec.Name
		f.mu.Lock()
		if j.Name == "" {
			j.Name = fmt.Sprintf("job%d", id)
		}
		if f.names[j.Name] {
			j.Name = fmt.Sprintf("%s-%d", j.Name, id)
		}
		f.names[j.Name] = true
		f.mu.Unlock()

		j.SchemeName = spec.Scheme.Name()
		j.Workers = spec.Workers
		j.SubmitAt = spec.SubmitAt
		j.TargetLoss = spec.Workload.TargetLoss
		j.EvalEvery = spec.Workload.EvalEvery
		j.ConsecutiveBelow = spec.ConsecutiveBelow
		j.Quota = jobs.Quota{MaxInflightPush: spec.MaxInflightPush, ByteBudget: spec.ByteBudget}

		cs := codec.NewStats(msg.CodecLabeler(spec.Codec.PushName(), spec.Codec.PullName()))
		j.Acct.SetRecorder(cs.Tap(j.Acct.Transfer))
		j.Payload = &fleetJob{
			spec:       spec,
			codecStats: cs,
			probeVec:   tensor.NewVec(spec.Workload.Model.Dim()),
		}
		return nil
	})
}

// spawn builds one admitted job's nodes: tenant shards on the shared slots,
// scoped workers, and a scoped scheduler. Runs on the simulator's event loop
// (manager tick).
func (f *Fleet) spawn(j *jobs.Job) error {
	fj := j.Payload.(*fleetJob)
	spec := fj.spec
	mdl := spec.Workload.Model
	dim := mdl.Dim()

	// Slot assignment: round-robin from (id mod slots) so concurrent jobs
	// spread their primary shards across the fleet. Job 0 always gets the
	// identity mapping (legacy parity).
	ns := f.cfg.Servers
	fj.slots = make([]int, spec.Servers)
	for k := range fj.slots {
		fj.slots[k] = (j.ID + k) % ns
	}
	ranges, err := ps.ShardRanges(dim, spec.Servers)
	if err != nil {
		return err
	}
	fj.ranges = ranges

	initRng := rand.New(rand.NewSource(spec.Seed ^ 0x1217))
	initVec := mdl.Init(initRng)
	newOptimizer := func(n int) (*optimizer.SGD, error) {
		return optimizer.NewSGD(optimizer.SGDConfig{
			Schedule: spec.Workload.Schedule,
			Momentum: spec.Workload.Momentum,
			Clip:     spec.Workload.Clip,
		}, n)
	}
	jv := f.obs.Job(j.Name)

	fj.tenants = make([]*ps.Server, spec.Servers)
	for k, r := range ranges {
		opt, err := newOptimizer(r.Len())
		if err != nil {
			return err
		}
		srv, err := ps.New(ps.Config{
			Range:      r,
			Init:       initVec[r.Lo:r.Hi],
			Optimizer:  opt,
			Obs:        jv.Server(fj.slots[k]),
			DeltaPull:  spec.Codec.UsesDelta(),
			CodecStats: fj.codecStats,
		})
		if err != nil {
			return err
		}
		fj.tenants[k] = srv
		f.hosts[fj.slots[k]].AddTenant(j.ID, srv, j.Acct)
	}

	// Workers address shard k at slot slots[k]: the identity mapping stays
	// on the legacy fixed-shard path; rotated slots use a per-job routing
	// table (job-stamped, epoch 0).
	identity := true
	for k, s := range fj.slots {
		if s != k {
			identity = false
			break
		}
	}
	var jobTable *core.RoutingTable
	if !identity {
		shards := make([]core.ShardRoute, len(ranges))
		for k, r := range ranges {
			shards[k] = core.ShardRoute{Lo: r.Lo, Hi: r.Hi, Server: fj.slots[k], Job: j.ID}
		}
		jobTable = &core.RoutingTable{Epoch: 0, Shards: shards}
	}

	fj.workers = make([]*worker.Worker, spec.Workers)
	for i := 0; i < spec.Workers; i++ {
		speed := 1.0
		if spec.Speeds != nil {
			speed = spec.Speeds[i]
		}
		wcfg := worker.Config{
			Index:  i,
			Shards: ranges,
			Model:  mdl,
			Scheme: spec.Scheme,
			Compute: worker.ComputeModel{
				Base:        spec.Workload.IterTime,
				Speed:       speed,
				JitterSigma: spec.Workload.JitterSigma,
			},
			Tracer:        f.collector,
			Obs:           jv.Worker(i),
			AbortLateFrac: spec.AbortLateFrac,
			NumWorkers:    spec.Workers,
			Codec:         spec.Codec,
			CodecStats:    fj.codecStats,
		}
		if jobTable != nil {
			wcfg.Shards = nil
			wcfg.Routing = jobTable.Clone()
		}
		wk, err := worker.New(wcfg)
		if err != nil {
			return err
		}
		fj.workers[i] = wk
		wrapped := jobs.WrapWorker(j.ID, wk, j.Acct, spec.MaxInflightPush)
		if err := f.sim.Join(jobs.WorkerID(j.ID, i), wrapped); err != nil {
			return err
		}
	}

	maxAbortFrac := spec.MaxAbortFrac
	if maxAbortFrac == 0 {
		maxAbortFrac = 0.125
	}
	sched, err := core.NewScheduler(core.SchedulerConfig{
		Workers:       spec.Workers,
		ActiveWorkers: spec.Workers,
		Scheme:        spec.Scheme,
		InitialSpan:   spec.Workload.IterTime,
		Tracer:        f.collector,
		Obs:           jv.Scheduler(),
		Tuner: core.TunerConfig{
			MinAbort:      4 * f.cfg.Net.Latency,
			MaxAbort:      time.Duration(maxAbortFrac * float64(spec.Workload.IterTime)),
			MaxCandidates: 512,
		},
	})
	if err != nil {
		return err
	}
	fj.sched = sched
	if err := f.sim.Join(jobs.SchedulerID(j.ID), jobs.WrapScheduler(j.ID, sched, j.Acct)); err != nil {
		return err
	}

	f.recordAdmission(j.ID, ranges, fj.slots)
	return nil
}

// recordAdmission folds the job's namespaced block into the fleet routing
// table (blocks sorted by job ID; epoch counts admissions).
func (f *Fleet) recordAdmission(id int, ranges []ps.Range, slots []int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.admissions++
	var shards []core.ShardRoute
	if f.routing != nil {
		shards = append(shards, f.routing.Shards...)
	}
	for k, r := range ranges {
		shards = append(shards, core.ShardRoute{Lo: r.Lo, Hi: r.Hi, Server: slots[k], Job: id})
	}
	sort.SliceStable(shards, func(a, b int) bool { return shards[a].Job < shards[b].Job })
	f.routing = &core.RoutingTable{Epoch: int64(f.admissions), Shards: shards}
}

// Routing returns the current namespaced fleet table (nil before the first
// admission).
func (f *Fleet) Routing() *core.RoutingTable {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.routing.Clone()
}

// halt stops a retired job's nodes. Inject bypasses the network model and
// byte accounting symmetrically (fleet and per-job), so retirement does not
// skew the accounting invariant.
func (f *Fleet) halt(j *jobs.Job) {
	fj := j.Payload.(*fleetJob)
	for i := range fj.workers {
		_ = f.sim.Inject(jobs.SchedulerID(j.ID), jobs.WorkerID(j.ID, i), &msg.Stop{})
	}
	_ = f.sim.Inject(node.ProbeID, jobs.SchedulerID(j.ID), &msg.Stop{})
}

// cleanup unmounts a retired job's tenants (manager janitor, one tick after
// retirement).
func (f *Fleet) cleanup(j *jobs.Job) {
	fj := j.Payload.(*fleetJob)
	for _, slot := range fj.slots {
		f.hosts[slot].RemoveTenant(j.ID)
	}
}

// probe assembles one job's parameter vector from its tenants and evaluates
// its loss.
func (f *Fleet) probe(j *jobs.Job) jobs.ProbeSample {
	fj := j.Payload.(*fleetJob)
	var iters, pushes int64
	for _, wk := range fj.workers {
		iters += wk.IterationsDone()
	}
	for _, t := range fj.tenants {
		p := t.Params()
		r := t.Range()
		if len(p) == r.Len() && r.Len() > 0 {
			copy(fj.probeVec[r.Lo:r.Hi], p)
		}
		_, push := t.Stats()
		pushes += push
	}
	return jobs.ProbeSample{
		Loss:   fj.spec.Workload.Model.EvalLoss(fj.probeVec),
		Iters:  iters,
		Pushes: pushes,
	}
}

// Run executes the fleet to quiescence (every job terminal) or MaxVirtual.
func (f *Fleet) Run() (*FleetResult, error) {
	f.sim.Init()
	f.mgr.Start()
	if f.cfg.OnStart != nil {
		f.cfg.OnStart(f)
	}
	f.sim.RunUntilIdle(f.cfg.MaxVirtual)
	f.mgr.Finalize()

	res := &FleetResult{
		Elapsed:  f.sim.Elapsed(),
		Transfer: f.transfer,
		Ticks:    f.mgr.Ticks(),
		Routing:  f.Routing(),
		Obs:      f.obs.Summary(),
		Flight:   f.obs.FlightDump(),
	}
	if f.cfg.KeepTrace {
		res.Trace = f.collector
	}
	for _, j := range f.mgr.Jobs() {
		jr := JobResult{
			ID:              j.ID,
			Name:            j.Name,
			SchemeName:      j.SchemeName,
			State:           j.State,
			Err:             j.Err,
			Converged:       j.State == jobs.Converged,
			ConvergeTime:    j.ConvergeTime,
			TotalIters:      j.Iters,
			FinalLoss:       j.FinalLoss,
			Loss:            &j.Loss,
			IterSeries:      &j.IterSeries,
			Transfer:        j.Acct.Transfer,
			Pushes:          j.Pushes,
			ThrottledPushes: j.Acct.ThrottledPushes(),
			AdmittedAt:      j.AdmittedAt,
			FinishedAt:      j.FinishedAt,
		}
		if fj, ok := j.Payload.(*fleetJob); ok {
			jr.Codec = fj.codecStats
			for _, wk := range fj.workers {
				if wk != nil {
					jr.Aborts += wk.Aborts()
				}
			}
		}
		res.Jobs = append(res.Jobs, jr)
	}
	return res, nil
}

// RunFleet is the one-shot convenience wrapper.
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	f, err := NewFleet(cfg)
	if err != nil {
		return nil, err
	}
	return f.Run()
}
