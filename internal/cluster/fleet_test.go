package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"specsync/internal/jobs"
	"specsync/internal/obs"
	"specsync/internal/scheme"
	"specsync/internal/trace"
)

func fleetDigest(t *testing.T, res *FleetResult) (string, int) {
	t.Helper()
	evs := res.Trace.Events()
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, evs); err != nil {
		t.Fatalf("serialize trace: %v", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), len(evs)
}

// TestFleetOneJobGoldenParity pins the default-tenant design: a one-job fleet
// runs job 0 in the legacy node namespace with un-enveloped traffic, so it
// must replay the legacy cluster.Run byte for byte — same golden trace digest,
// same event count, same bytes on wire — through the real Fleet code path.
func TestFleetOneJobGoldenParity(t *testing.T) {
	wl, err := NewTiny(4, 7)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	res, err := RunFleet(FleetConfig{
		Jobs: []JobSpec{{
			Workload: wl,
			Scheme:   scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive},
			Workers:  4,
			Seed:     7,
		}},
		Seed:       7,
		MaxVirtual: 2 * time.Minute,
		KeepTrace:  true,
	})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	digest, events := fleetDigest(t, res)
	if events != goldenTinyEvents {
		t.Errorf("events = %d, golden %d", events, goldenTinyEvents)
	}
	if got := res.Transfer.TotalBytes(); got != goldenTinyBytes {
		t.Errorf("bytes on wire = %d, golden %d", got, goldenTinyBytes)
	}
	if digest != goldenTinyDigest {
		t.Errorf("trace digest = %s, golden %s", digest, goldenTinyDigest)
	}
	if len(res.Jobs) != 1 {
		t.Fatalf("jobs = %d, want 1", len(res.Jobs))
	}
	j := res.Jobs[0]
	if j.State != jobs.Converged || !j.Converged {
		t.Errorf("job state = %v, want converged", j.State)
	}
	if j.Transfer.TotalBytes() != res.Transfer.TotalBytes() {
		t.Errorf("one-job accounting: job bytes %d != fleet bytes %d",
			j.Transfer.TotalBytes(), res.Transfer.TotalBytes())
	}
}

// mixedFleetConfig is the acceptance-criteria fleet: three concurrent jobs on
// mixed schemes (BSP, SSP, SpecSync-adaptive), one submitted mid-run.
func mixedFleetConfig(keepTrace bool) (FleetConfig, error) {
	wl0, err := NewTiny(4, 7)
	if err != nil {
		return FleetConfig{}, err
	}
	wl1, err := NewTiny(3, 11)
	if err != nil {
		return FleetConfig{}, err
	}
	wl2, err := NewTiny(4, 13)
	if err != nil {
		return FleetConfig{}, err
	}
	return FleetConfig{
		Jobs: []JobSpec{
			{Name: "bsp", Workload: wl0, Scheme: scheme.Config{Base: scheme.BSP}, Workers: 4, Seed: 7},
			{Name: "ssp", Workload: wl1, Scheme: scheme.Config{Base: scheme.SSP, Staleness: 3}, Workers: 3, Seed: 11},
			{Name: "spec", Workload: wl2, Scheme: scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive},
				Workers: 4, Seed: 13, SubmitAt: 5 * time.Second},
		},
		Seed:       42,
		MaxVirtual: 10 * time.Minute,
		KeepTrace:  keepTrace,
	}, nil
}

// TestFleetMixedJobs runs the acceptance scenario: three concurrent jobs with
// different schemes all converge, the run is deterministic (double-run trace
// digest match), and per-job byte accounting sums exactly to the fleet total.
func TestFleetMixedJobs(t *testing.T) {
	run := func() (*FleetResult, string) {
		cfg, err := mixedFleetConfig(true)
		if err != nil {
			t.Fatalf("config: %v", err)
		}
		res, err := RunFleet(cfg)
		if err != nil {
			t.Fatalf("fleet: %v", err)
		}
		d, _ := fleetDigest(t, res)
		return res, d
	}
	res, digest := run()
	_, digest2 := run()
	if digest != digest2 {
		t.Errorf("multi-job run not deterministic: digest %s != %s", digest, digest2)
	}

	if len(res.Jobs) != 3 {
		t.Fatalf("jobs = %d, want 3", len(res.Jobs))
	}
	var jobBytes int64
	for _, j := range res.Jobs {
		if j.State != jobs.Converged {
			t.Errorf("job %d (%s, %s): state %v, want converged (err %q)", j.ID, j.Name, j.SchemeName, j.State, j.Err)
		}
		if j.TotalIters == 0 || j.Pushes == 0 {
			t.Errorf("job %d (%s): no progress (iters %d, pushes %d)", j.ID, j.Name, j.TotalIters, j.Pushes)
		}
		jobBytes += j.Transfer.TotalBytes()
	}
	if fleet := res.Transfer.TotalBytes(); jobBytes != fleet {
		t.Errorf("accounting: sum of per-job bytes %d != fleet bytes %d", jobBytes, fleet)
	}
	if res.Jobs[2].AdmittedAt < 5*time.Second {
		t.Errorf("job 2 admitted at %v, before its SubmitAt", res.Jobs[2].AdmittedAt)
	}

	// Isolation: each job converges within a loose multiple of its standalone
	// baseline (shared substrate, but no cross-job interference beyond the
	// network model).
	for i, j := range res.Jobs {
		cfg, err := mixedFleetConfig(false)
		if err != nil {
			t.Fatalf("config: %v", err)
		}
		spec := cfg.Jobs[i]
		base, err := Run(Config{
			Workload:   spec.Workload,
			Scheme:     spec.Scheme,
			Workers:    spec.Workers,
			Seed:       spec.Seed,
			MaxVirtual: cfg.MaxVirtual,
		})
		if err != nil {
			t.Fatalf("baseline %s: %v", j.Name, err)
		}
		if !base.Converged {
			t.Fatalf("baseline %s did not converge", j.Name)
		}
		got := j.ConvergeTime - j.AdmittedAt
		if got > 3*base.ConvergeTime {
			t.Errorf("job %s: fleet converge %v vs standalone %v — isolation epsilon exceeded", j.Name, got, base.ConvergeTime)
		}
	}

	// The fleet routing table carries one namespaced block per job.
	if res.Routing == nil {
		t.Fatal("no fleet routing table")
	}
	if err := res.Routing.Validate(); err != nil {
		t.Errorf("fleet routing table invalid: %v", err)
	}
	if got := len(res.Routing.Jobs()); got != 3 {
		t.Errorf("routing table covers %d jobs, want 3", got)
	}
}

// TestFleetQuota checks that a push-gated job throttles but still converges,
// and that a byte-budgeted job is retired OverBudget.
func TestFleetQuota(t *testing.T) {
	wl, err := NewTiny(4, 7)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	wl2, err := NewTiny(4, 9)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	res, err := RunFleet(FleetConfig{
		Jobs: []JobSpec{
			{Name: "gated", Workload: wl, Scheme: scheme.Config{Base: scheme.ASP}, Workers: 4, Seed: 7,
				MaxInflightPush: 1},
			{Name: "capped", Workload: wl2, Scheme: scheme.Config{Base: scheme.ASP}, Workers: 4, Seed: 9,
				ByteBudget: 20_000},
		},
		Seed:       1,
		MaxVirtual: 10 * time.Minute,
	})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	gated, capped := res.Jobs[0], res.Jobs[1]
	if gated.State != jobs.Converged {
		t.Errorf("gated job: state %v, want converged", gated.State)
	}
	if gated.ThrottledPushes == 0 {
		t.Errorf("gated job: no throttled pushes despite MaxInflightPush=1")
	}
	if capped.State != jobs.OverBudget {
		t.Errorf("capped job: state %v, want over_budget", capped.State)
	}
	if capped.Transfer.TotalBytes() <= 20_000 {
		t.Errorf("capped job: retired at %d bytes, under its budget", capped.Transfer.TotalBytes())
	}
}

// TestFleetGateway drives the jobs HTTP API end to end: submit via POST
// before the run, then read status and listings after it completes.
func TestFleetGateway(t *testing.T) {
	f, err := NewFleet(FleetConfig{
		Jobs: []JobSpec{func() JobSpec {
			wl, err := NewTiny(4, 7)
			if err != nil {
				t.Fatalf("workload: %v", err)
			}
			return JobSpec{Name: "seeded", Workload: wl, Scheme: scheme.Config{Base: scheme.ASP}, Workers: 4, Seed: 7}
		}()},
		Seed:       3,
		MaxVirtual: 10 * time.Minute,
	})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	gw := jobs.NewGateway(f.Manager(), f.SubmitRequest)
	srv := httptest.NewServer(gw)
	defer srv.Close()

	// Submit a second job over HTTP (name-resolved workload and scheme).
	body := `{"name":"posted","workload":"tiny","scheme":"ssp","workers":3,"seed":11}`
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", resp.StatusCode)
	}
	var accepted struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if accepted.ID != 1 {
		t.Fatalf("posted job id = %d, want 1", accepted.ID)
	}

	// Bad submissions are rejected before they reach the queue.
	for _, bad := range []string{
		`{"workload":"nope","scheme":"ssp","workers":2}`,
		`{"workload":"tiny","scheme":"nope","workers":2}`,
		`{"workload":"tiny","scheme":"ssp","workers":0}`,
	} {
		resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatalf("POST /jobs: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("bad submission %s: status %d, want 422", bad, resp.StatusCode)
		}
	}

	res, err := f.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(res.Jobs))
	}
	for _, j := range res.Jobs {
		if j.State != jobs.Converged {
			t.Errorf("job %d (%s): state %v, want converged", j.ID, j.Name, j.State)
		}
	}

	// Status and listing reflect the finished run.
	resp, err = http.Get(srv.URL + "/jobs/1")
	if err != nil {
		t.Fatalf("GET /jobs/1: %v", err)
	}
	var entry obs.JobEntry
	if err := json.NewDecoder(resp.Body).Decode(&entry); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if entry.Name != "posted" || entry.State != "converged" || !entry.Converged {
		t.Errorf("GET /jobs/1 = %+v, want converged job 'posted'", entry)
	}
	if entry.BytesOnWire == 0 || entry.Pushes == 0 {
		t.Errorf("GET /jobs/1: missing accounting (%d bytes, %d pushes)", entry.BytesOnWire, entry.Pushes)
	}

	resp, err = http.Get(srv.URL + "/jobs/9")
	if err != nil {
		t.Fatalf("GET /jobs/9: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /jobs/9: status %d, want 404", resp.StatusCode)
	}
}

// TestFleetSeedResolution pins the gateway seed contract: a zero request
// seed resolves once to fleet seed + job ID (so the workload's data order
// and the job's runtime seed agree), and distinct seedless submissions get
// distinct seeds.
func TestFleetSeedResolution(t *testing.T) {
	wl, err := NewTiny(4, 7)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	f, err := NewFleet(FleetConfig{
		Jobs:       []JobSpec{{Workload: wl, Scheme: scheme.Config{Base: scheme.ASP}, Workers: 4, Seed: 7}},
		Seed:       21,
		MaxVirtual: time.Minute,
	})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	id1, err := f.SubmitRequest(jobs.SubmitRequest{Workload: "tiny", Scheme: "ssp", Workers: 2})
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	id2, err := f.SubmitRequest(jobs.SubmitRequest{Workload: "tiny", Scheme: "ssp", Workers: 2})
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	all := f.Manager().Jobs()
	for _, id := range []int{id1, id2} {
		fj := all[id].Payload.(*fleetJob)
		if want := int64(21 + id); fj.spec.Seed != want {
			t.Errorf("job %d seed = %d, want fleet seed + id = %d", id, fj.spec.Seed, want)
		}
	}
	// An explicit seed passes through untouched.
	id3, err := f.SubmitRequest(jobs.SubmitRequest{Workload: "tiny", Scheme: "ssp", Workers: 2, Seed: 99})
	if err != nil {
		t.Fatalf("submit 3: %v", err)
	}
	if got := f.Manager().Jobs()[id3].Payload.(*fleetJob).spec.Seed; got != 99 {
		t.Errorf("explicit seed = %d, want 99", got)
	}
}

// TestFleetClusterz checks the /clusterz fleet snapshot: one JobEntry per
// job, per-job byte accounting summing to the fleet total, and embedded
// per-job scheduler views.
func TestFleetClusterz(t *testing.T) {
	cfg, err := mixedFleetConfig(false)
	if err != nil {
		t.Fatalf("config: %v", err)
	}
	o := obs.New(obs.Options{})
	cfg.Obs = o
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	snap, ok := o.ClusterSnapshot()
	if !ok {
		t.Fatal("no fleet cluster snapshot published")
	}
	if len(snap.Jobs) != 3 {
		t.Fatalf("snapshot jobs = %d, want 3", len(snap.Jobs))
	}
	var snapBytes int64
	for _, e := range snap.Jobs {
		if e.State != "converged" {
			t.Errorf("snapshot job %d (%s): state %q", e.ID, e.Name, e.State)
		}
		snapBytes += e.BytesOnWire
		if e.Cluster == nil {
			t.Errorf("snapshot job %d (%s): no embedded per-job cluster view", e.ID, e.Name)
		}
	}
	if fleet := res.Transfer.TotalBytes(); snapBytes != fleet {
		t.Errorf("/clusterz accounting: sum of job bytes %d != fleet bytes %d", snapBytes, fleet)
	}
}

// TestFleetStopRequest retires a job via the manager mid-run.
func TestFleetStopRequest(t *testing.T) {
	wl, err := NewTiny(4, 7)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	var f *Fleet
	cfg := FleetConfig{
		Jobs: []JobSpec{{Name: "doomed", Workload: wl, Scheme: scheme.Config{Base: scheme.ASP}, Workers: 4, Seed: 7,
			ConsecutiveBelow: 1 << 30}}, // never converges on its own
		Seed:       5,
		MaxVirtual: 10 * time.Minute,
		OnStart: func(fl *Fleet) {
			f = fl
			fl.sim.Schedule(3*time.Second, func() {
				if err := fl.Manager().RequestStop(0); err != nil {
					t.Errorf("RequestStop: %v", err)
				}
			})
		},
	}
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	_ = f
	j := res.Jobs[0]
	if j.State != jobs.Stopped {
		t.Errorf("job state = %v, want stopped", j.State)
	}
	if j.FinishedAt < 3*time.Second || j.FinishedAt > 10*time.Second {
		t.Errorf("job stopped at %v, want shortly after the 3s request", j.FinishedAt)
	}
	if j.TotalIters == 0 {
		t.Errorf("stopped job shows no progress")
	}
}

// TestFleetValidation exercises spec rejection.
func TestFleetValidation(t *testing.T) {
	wl, err := NewTiny(4, 7)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	good := JobSpec{Workload: wl, Scheme: scheme.Config{Base: scheme.ASP}, Workers: 4}
	cases := []struct {
		name   string
		mutate func(*FleetConfig)
	}{
		{"no jobs", func(c *FleetConfig) { c.Jobs = nil }},
		{"no deadline", func(c *FleetConfig) { c.MaxVirtual = 0 }},
		{"decentralized", func(c *FleetConfig) { c.Jobs[0].Scheme.Decentralized = true; c.Jobs[0].Scheme.Spec = scheme.SpecAdaptive }},
		{"zero workers", func(c *FleetConfig) { c.Jobs[0].Workers = 0 }},
		{"bad speeds", func(c *FleetConfig) { c.Jobs[0].Speeds = []float64{1} }},
		{"negative submit", func(c *FleetConfig) { c.Jobs[0].SubmitAt = -time.Second }},
		{"too many slots", func(c *FleetConfig) { c.Jobs[0].Servers = 99; c.Servers = 4 }},
	}
	for _, tc := range cases {
		cfg := FleetConfig{Jobs: []JobSpec{good}, MaxVirtual: time.Minute}
		tc.mutate(&cfg)
		if _, err := NewFleet(cfg); err == nil {
			t.Errorf("%s: accepted, want error", tc.name)
		}
	}
}
