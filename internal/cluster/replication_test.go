package cluster

import (
	"testing"
	"time"

	"specsync/internal/faults"
	"specsync/internal/scheme"
)

// zeroLossConfig is a single-worker run with a fixed iteration budget: both
// the fault-free and the crashed run end after the identical applied-update
// sequence, so the zero-loss claim reduces to digest equality.
func zeroLossConfig(t *testing.T, mut func(*Config)) Config {
	t.Helper()
	wl, err := NewTiny(1, 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workload:          wl,
		Scheme:            scheme.Config{Base: scheme.ASP},
		Workers:           1,
		Servers:           2,
		Seed:              11,
		MaxVirtual:        10 * time.Minute,
		MaxItersPerWorker: 40,
		// Convergence must not end the run early — the budget does.
		ConsecutiveBelow: 1 << 30,
	}
	if mut != nil {
		mut(&cfg)
	}
	return cfg
}

func serverCrashPlan() *faults.Plan {
	return &faults.Plan{Seed: 5, Events: []faults.Event{
		{Kind: faults.KindCrashServer, Node: 0, At: 5 * time.Second, RestartAfter: 2 * time.Second},
	}}
}

// TestReplicatedServerCrashZeroLoss is the paper-level claim behind shard
// replication: with R backups, a crashed shard promotes a backup that holds
// every acknowledged push, so the final model is byte-identical to the
// fault-free run's. The checkpoint path (R = 0) on the same plan provably
// loses pushes.
func TestReplicatedServerCrashZeroLoss(t *testing.T) {
	baseline, err := Run(zeroLossConfig(t, func(c *Config) {
		c.Replication = Replication{Replicas: 2}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if baseline.ParamsDigest == "" {
		t.Fatal("baseline produced no params digest")
	}

	crashed, err := Run(zeroLossConfig(t, func(c *Config) {
		c.Replication = Replication{Replicas: 2}
		c.Faults = serverCrashPlan()
	}))
	if err != nil {
		t.Fatal(err)
	}
	st := crashed.Faults.Stats()
	if st.Crashes != 1 || st.Restarts != 1 {
		t.Fatalf("crashes/restarts = %d/%d, want 1/1", st.Crashes, st.Restarts)
	}
	if st.Promotions != 1 {
		t.Errorf("promotions = %d, want 1 (backup should replace the crashed shard)", st.Promotions)
	}
	if st.LostPushes != 0 {
		t.Errorf("lost pushes = %d, want 0 under replication", st.LostPushes)
	}
	if crashed.ParamsDigest != baseline.ParamsDigest {
		t.Errorf("zero-loss violated: crashed digest %s, fault-free %s",
			crashed.ParamsDigest, baseline.ParamsDigest)
	}
	if crashed.Replication == nil {
		t.Fatal("replication stats missing")
	}
	if crashed.Replication.Forwarded == 0 || crashed.Replication.Applied == 0 {
		t.Errorf("replication stream idle: forwarded %d, applied %d",
			crashed.Replication.Forwarded, crashed.Replication.Applied)
	}
	if len(crashed.Flight.Filter("replica-promote")) != 1 {
		t.Errorf("flight recorder has %d replica-promote events, want 1",
			len(crashed.Flight.Filter("replica-promote")))
	}

	// Same crash, no replication: the shard rolls back to a checkpoint (or
	// its initial values) and the pushes applied since are gone for good.
	lossy, err := Run(zeroLossConfig(t, func(c *Config) {
		c.Faults = serverCrashPlan()
	}))
	if err != nil {
		t.Fatal(err)
	}
	if lost := lossy.Faults.Stats().LostPushes; lost == 0 {
		t.Error("checkpoint-restore run reported zero lost pushes; expected losses")
	}
	if lossy.ParamsDigest == baseline.ParamsDigest {
		t.Error("checkpoint-restore run matched the fault-free digest; the crash should have cost pushes")
	}
}

// TestReplicatedRunDeterminism: the replicated planes (snapshot shipping,
// election timers, forward streams) must not break the simulator's
// reproducibility — two identical runs, including a crash and failover,
// produce identical digests.
func TestReplicatedRunDeterminism(t *testing.T) {
	run := func() *Result {
		res, err := Run(zeroLossConfig(t, func(c *Config) {
			c.Replication = Replication{Replicas: 1, StandbySchedulers: 2}
			c.Faults = serverCrashPlan()
		}))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.ParamsDigest != b.ParamsDigest {
		t.Errorf("digests differ across identical replicated runs: %s vs %s", a.ParamsDigest, b.ParamsDigest)
	}
	if a.TotalIters != b.TotalIters {
		t.Errorf("iteration counts differ: %d vs %d", a.TotalIters, b.TotalIters)
	}
}

// TestSchedulerFailoverElectsStandby kills the scheduler with standbys
// configured: a standby must win an election and take over before any worker
// trips its own failure detector — BSP barriers and SSP clocks keep being
// served and nobody enters degraded broadcast mode.
func TestSchedulerFailoverElectsStandby(t *testing.T) {
	schemes := map[string]scheme.Config{
		"adaptive": {Base: scheme.ASP, Spec: scheme.SpecAdaptive},
		"bsp":      {Base: scheme.BSP},
		"ssp":      {Base: scheme.SSP, Staleness: 3},
	}
	for name, sc := range schemes {
		t.Run(name, func(t *testing.T) {
			cfg := tinyConfig(t, sc, func(c *Config) {
				c.Replication = Replication{StandbySchedulers: 2}
				// The scheduler stays down; the standbys own recovery.
				c.Faults = &faults.Plan{Seed: 7, Events: []faults.Event{
					{Kind: faults.KindCrashScheduler, At: 2500 * time.Millisecond},
				}}
			})
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("did not converge after scheduler failover: final loss %.4f", res.FinalLoss)
			}
			rs := res.Replication
			if rs == nil {
				t.Fatal("replication stats missing")
			}
			if rs.Elections < 1 {
				t.Errorf("elections = %d, want >= 1", rs.Elections)
			}
			if rs.FinalTerm < 1 {
				t.Errorf("final term = %d, want >= 1", rs.FinalTerm)
			}
			if rs.LeaderNode != "scheduler/1" && rs.LeaderNode != "scheduler/2" {
				t.Errorf("leader node %q, want an elected standby", rs.LeaderNode)
			}
			if rs.SnapshotsShipped == 0 {
				t.Error("no scheduler snapshots were ever shipped")
			}
			st := res.Faults.Stats()
			if st.SchedulerCrashes != 1 {
				t.Errorf("scheduler crashes = %d, want 1", st.SchedulerCrashes)
			}
			// The point of the standby fleet: failover completes inside the
			// workers' detection window, so degraded broadcast mode — the
			// old last resort — never engages.
			if st.DegradedEnters != 0 {
				t.Errorf("degraded enters = %d, want 0 (election should beat the workers' timeout)", st.DegradedEnters)
			}
			if st.Elections != rs.Elections {
				t.Errorf("faults elections %d != replication stats %d", st.Elections, rs.Elections)
			}
			if len(res.Flight.Filter("leader-elected")) == 0 {
				t.Error("flight recorder has no leader-elected event")
			}
		})
	}
}

// TestReplicationValidation pins the configuration exclusions.
func TestReplicationValidation(t *testing.T) {
	cfg := zeroLossConfig(t, func(c *Config) {
		c.Replication = Replication{Replicas: 1}
		c.Faults = &faults.Plan{Events: []faults.Event{
			{Kind: faults.KindDrop, At: time.Second, Duration: time.Second, Rate: 0.5},
		}}
	})
	if _, err := Run(cfg); err == nil {
		t.Error("replication with a message-fault plan should be rejected")
	}
	cfg = zeroLossConfig(t, func(c *Config) {
		c.Replication = Replication{Replicas: -1}
	})
	if _, err := Run(cfg); err == nil {
		t.Error("negative replica count should be rejected")
	}
}
