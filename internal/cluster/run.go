package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"specsync/internal/codec"
	"specsync/internal/core"
	"specsync/internal/des"
	"specsync/internal/elastic"
	"specsync/internal/faults"
	"specsync/internal/metrics"
	"specsync/internal/model"
	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/obs"
	"specsync/internal/optimizer"
	"specsync/internal/ps"
	"specsync/internal/replica"
	"specsync/internal/scheme"
	"specsync/internal/stragglers"
	"specsync/internal/switcher"
	"specsync/internal/tensor"
	"specsync/internal/trace"
	"specsync/internal/worker"
)

// Config describes one simulated training run.
type Config struct {
	// Workload is the model + training profile (build with NewMF etc.).
	Workload Workload
	// Scheme is the synchronization scheme under test.
	Scheme scheme.Config
	// Workers is the cluster size m.
	Workers int
	// Servers is the number of parameter shards; zero means min(Workers, 8).
	Servers int
	// Seed drives all randomness (data order, jitter, init).
	Seed int64
	// Codec selects the gradient/parameter compression codecs
	// (internal/codec). The zero value is raw: the legacy v1 wire layouts,
	// byte-identical to a run without the codec layer. Because the
	// simulator derives transfer times from encoded byte counts, a
	// compressing codec shifts push timing and speculation dynamics, not
	// just byte totals.
	Codec codec.Config
	// Net is the simulated network; zero value means the EC2-like default
	// (250 us latency, 1 Gbps links, 100 us jitter, and transient
	// cluster-wide stalls scaled to the workload's iteration time).
	Net des.NetModel
	// DisableHiccups removes the transient-stall process from the default
	// network model (ablation; ignored when Net is set explicitly).
	DisableHiccups bool
	// Speeds are per-worker compute speed factors; nil means homogeneous.
	Speeds []float64
	// MaxVirtual bounds the simulated duration. Required.
	MaxVirtual time.Duration
	// ConsecutiveBelow is the convergence streak length; zero means the
	// paper's 5.
	ConsecutiveBelow int
	// RunPastConverge keeps simulating this long after convergence is
	// detected (to extend learning curves); zero stops immediately.
	RunPastConverge time.Duration
	// KeepTrace retains the full event trace in the result.
	KeepTrace bool
	// AbortLateFrac overrides the workers' too-late-to-abort threshold
	// (zero keeps the worker default of 0.9; 1 disables the cutoff).
	AbortLateFrac float64
	// MaxAbortFrac caps the adaptive speculation window as a fraction of
	// the iteration time (zero means the default 0.125; the paper grid
	// upper bound).
	MaxAbortFrac float64
	// RateMargin forwards core.SchedulerConfig.RateMargin (zero = default).
	RateMargin float64
	// CheckAtExpiryOnly forwards the paper-literal expiry-check mode.
	CheckAtExpiryOnly bool
	// RecordAccuracy also samples classification accuracy at each probe.
	RecordAccuracy bool
	// MaxItersPerWorker stops each worker after completing this many
	// iterations; zero means run until convergence or MaxVirtual. A fixed
	// per-worker budget makes two runs end after the identical applied
	// update sequence, which is what the zero-loss digest comparison needs.
	MaxItersPerWorker int64
	// Debug, if non-nil, receives node logs.
	Debug io.Writer
	// OnTune forwards scheduler tuning decisions.
	OnTune func(epoch int, t core.Tuning)
	// Faults, if non-nil, injects the plan's crashes, partitions, and
	// message faults into the run. Restarted workers come back with blank
	// training state; restarted shards restore the latest checkpoint.
	Faults *faults.Plan
	// Scale, if non-nil and non-empty, schedules elastic membership events:
	// workers join and leave the running cluster, and parameter shards
	// migrate live across a changing server set (internal/elastic). An empty
	// plan behaves exactly like nil — the run stays on the legacy fixed-shard
	// path, byte for byte. Mutually exclusive with Faults (restarts rebuild
	// nodes at the static initial shape, which a migration invalidates; see
	// DESIGN.md, Elasticity).
	Scale *elastic.Plan
	// CheckpointEvery is the server snapshot period when Faults is set
	// (zero means 4x the workload iteration time).
	CheckpointEvery time.Duration
	// LivenessTimeout overrides the scheduler's failure-detector timeout.
	// Zero means 4x IterTime when Faults is set, detector off otherwise.
	LivenessTimeout time.Duration
	// HeartbeatEvery overrides the worker heartbeat period. Zero means
	// IterTime/2 when Faults is set, heartbeats off otherwise.
	HeartbeatEvery time.Duration
	// RetryAfter overrides the worker pull/push retry timeout (requests
	// lost to a crashed shard are re-issued after this long). Zero means
	// 2x IterTime when Faults is set, retries off otherwise.
	RetryAfter time.Duration
	// SchedulerTimeout overrides the workers' scheduler failure-detector
	// timeout (silence longer than this flips a worker into degraded mode).
	// Zero means 4x IterTime when the fault plan crashes the scheduler,
	// detector off otherwise — so plans that never touch the scheduler keep
	// their exact event schedules.
	SchedulerTimeout time.Duration
	// BeaconEvery overrides the scheduler's liveness beacon period. Zero
	// means IterTime when the fault plan crashes the scheduler, beacons off
	// otherwise.
	BeaconEvery time.Duration
	// Obs, if non-nil, receives runtime telemetry (latency histograms, span
	// traces, the /clusterz snapshot). Nil builds an internal registry-only
	// instance so Result.Obs is always populated; pass obs.New with
	// Options{Spans: true} to also retain span traces for export.
	Obs *obs.Obs
	// Replication configures the replicated control and data planes. The
	// zero value disables both. Mutually exclusive with Scale (promotion
	// and election rebuild nodes at the static initial shape), and requires
	// any fault plan to be crash-only (a dropped replication message would
	// silently stall a backup; see DESIGN.md, Replication).
	Replication Replication
	// Switcher, if non-nil, enables the meta-scheme: the scheduler consumes
	// straggler telemetry at every epoch boundary and live-switches the
	// whole fleet between BSP (homogeneous) and SSP (sustained straggler),
	// with hysteresis. Requires a plain centralized scheme without
	// speculation (Base set, Variant none, Decentralized false, SpecOff).
	Switcher *switcher.Config
	// Slowdowns scripts transient per-worker compute slowdowns: entry i
	// applies to worker i, zero-Factor entries are ignored. A scripted
	// window draws no randomness, so an empty list leaves runs
	// byte-identical; the scheme-switching tests use one to stage a
	// sustained straggler that later recovers.
	Slowdowns []worker.Slowdown
	// Stragglers, if non-nil and non-empty, injects the straggler-scenario
	// plan (internal/stragglers): pause/degrade/rack episodes compile into
	// per-worker speed scripts, congest episodes into a deterministic
	// link-penalty hook, and the detector is scored against the plan's
	// ground truth in Result.Stragglers. An empty plan behaves exactly like
	// nil. Mutually exclusive with Faults and Scale (both rebuild or resize
	// the worker set the profile indexes into).
	Stragglers *stragglers.Plan
	// Mitigation selects the scheduler's response to detected stragglers
	// (requires Stragglers): MitigateNone observes and scores only,
	// MitigateClone races flagged workers against backup clones on spare
	// slots, MitigateRebalance swaps them out through the elastic join /
	// retire machinery.
	Mitigation stragglers.Mitigation
	// Spares is the number of spare worker slots reserved for mitigation;
	// zero means 2 when a mitigation mode is set.
	Spares int
	// SpareSpeed is the compute speed factor of spawned spare workers
	// (clones and rebalance replacements); zero means 1 (a healthy host).
	// The clone-safety tests set it well below the degraded original's
	// speed so every race resolves the same way.
	SpareSpeed float64
}

// Replication configures scheduler standbys and parameter-shard backups.
type Replication struct {
	// Replicas is the number of backup replicas per parameter shard (R).
	// Each primary forwards every applied push, version-stamped, to its R
	// backups in the same step that acknowledges it, so a crash-server
	// event promotes a backup with zero lost pushes instead of rolling the
	// shard back to a checkpoint.
	Replicas int
	// StandbySchedulers is the number of standby scheduler incarnations
	// (S). The serving leader ships its durable snapshot to all S standbys
	// every ReplicateEvery; a crash-scheduler event then ends in a
	// term-based election among the standbys instead of degraded broadcast
	// mode, with workers redirected by LeaderAnnounce.
	StandbySchedulers int
	// ReplicateEvery is the leader's snapshot-shipping period, which
	// doubles as its liveness heartbeat. Zero means IterTime/2.
	ReplicateEvery time.Duration
	// ElectionTimeout is the standbys' election-timeout base (each standby
	// randomizes into [T, 2T)). Zero means IterTime — short enough that a
	// successor is elected before any worker's own SchedulerTimeout (4x
	// IterTime) trips it into degraded mode.
	ElectionTimeout time.Duration
}

// Enabled reports whether any replication is configured.
func (r Replication) Enabled() bool { return r.Replicas > 0 || r.StandbySchedulers > 0 }

// ReplicationStats summarizes the replicated planes after a run.
type ReplicationStats struct {
	// Replicas / StandbySchedulers echo the configuration.
	Replicas, StandbySchedulers int
	// Elections is the number of standby elections won; FinalTerm the
	// highest term reached (0 = the bootstrap leader never died).
	Elections, FinalTerm int64
	// LeaderNode is the node serving as scheduler at the end of the run.
	LeaderNode string
	// Promotions is the number of backup shards promoted to primary.
	Promotions int64
	// Forwarded / Applied / Deduped count replicated pushes: primary
	// forwards, backup applies, and duplicate pushes absorbed by the
	// replicated-path dedup.
	Forwarded, Applied, Deduped int64
	// SnapshotsShipped counts scheduler snapshot replication ticks.
	SnapshotsShipped int64
}

func (c *Config) applyDefaults() {
	if c.Servers == 0 {
		c.Servers = c.Workers
		if c.Servers > 8 {
			c.Servers = 8
		}
	}
	if c.ConsecutiveBelow == 0 {
		c.ConsecutiveBelow = 5
	}
	if c.Scale != nil && c.RetryAfter == 0 {
		// Requests racing a frozen (migrating) shard are dropped; without
		// retries the worker would wait on the lost response forever.
		c.RetryAfter = 2 * c.Workload.IterTime
	}
	if c.Mitigation != stragglers.MitigateNone {
		if c.Spares == 0 {
			c.Spares = 2
		}
		if c.SpareSpeed == 0 {
			c.SpareSpeed = 1
		}
		if c.RetryAfter == 0 {
			// Clone pushes racing their CloneNotice are dropped, and rebalance
			// joiners race frozen routing state; both resolve via retry.
			c.RetryAfter = 2 * c.Workload.IterTime
		}
	}
	if c.Faults != nil {
		it := c.Workload.IterTime
		if c.CheckpointEvery == 0 {
			c.CheckpointEvery = 4 * it
		}
		if c.LivenessTimeout == 0 {
			c.LivenessTimeout = 4 * it
		}
		if c.HeartbeatEvery == 0 {
			c.HeartbeatEvery = it / 2
		}
		if c.RetryAfter == 0 {
			c.RetryAfter = 2 * it
		}
		if c.Faults.HasSchedulerCrash() {
			if c.SchedulerTimeout == 0 {
				c.SchedulerTimeout = 4 * it
			}
			if c.BeaconEvery == 0 {
				c.BeaconEvery = it
			}
		}
	}
	if c.Replication.Enabled() {
		it := c.Workload.IterTime
		if c.Replication.ReplicateEvery == 0 {
			// Well under the election timeout so a healthy leader never
			// looks silent.
			c.Replication.ReplicateEvery = it / 2
		}
		if c.Replication.ElectionTimeout == 0 {
			// Fires within 2x IterTime (randomized to [T, 2T)), well before
			// the workers' own SchedulerTimeout of 4x IterTime — failover
			// completes without any worker entering degraded mode.
			c.Replication.ElectionTimeout = it
		}
		if c.Replication.StandbySchedulers > 0 {
			if c.SchedulerTimeout == 0 {
				c.SchedulerTimeout = 4 * it
			}
			if c.BeaconEvery == 0 {
				c.BeaconEvery = it
			}
		}
	}
	zero := des.NetModel{}
	if c.Net == zero {
		c.Net = des.NetModel{
			Latency:     250 * time.Microsecond,
			BytesPerSec: 125e6, // ~1 Gbps
			Jitter:      100 * time.Microsecond,
		}
		if !c.DisableHiccups {
			// EC2-like transient stalls: roughly one per four iterations,
			// lasting up to an iteration, so pushes queue and then land in
			// bursts (the arrival pattern SpecSync exploits).
			it := c.Workload.IterTime
			c.Net.Hiccups = des.Hiccups{
				MeanEvery: 4 * it,
				MinDur:    it / 2,
				MaxDur:    it * 5 / 4,
			}
		}
	}
}

// Result summarizes one run.
type Result struct {
	// SchemeName is the human-readable scheme label.
	SchemeName string
	// Loss is the eval-loss time series.
	Loss metrics.Series
	// Accuracy is the eval-accuracy series (if requested and supported).
	Accuracy metrics.Series
	// IterSeries records total completed iterations at each probe time.
	IterSeries metrics.Series
	// TransferSeries records accumulated wire bytes at each probe time.
	TransferSeries metrics.Series
	// Converged reports whether the target was reached within MaxVirtual.
	Converged bool
	// ConvergeTime is the virtual time of convergence (start of the
	// qualifying streak).
	ConvergeTime time.Duration
	// ItersAtConverge is the cluster-wide iteration count at convergence.
	ItersAtConverge int64
	// TotalIters is the cluster-wide iteration count at the end of the run.
	TotalIters int64
	// Aborts is the number of abort-and-restart events.
	Aborts int64
	// ReSyncs is the number of re-sync instructions the scheduler issued.
	ReSyncs int64
	// Epochs is the number of completed epochs.
	Epochs int
	// Elapsed is the total simulated duration.
	Elapsed time.Duration
	// Transfer is the per-kind byte accounting.
	Transfer *metrics.Transfer
	// Codec is the codec-layer accounting: bytes on wire per {kind, codec}
	// and encode-side compression ratios.
	Codec *codec.Stats
	// Trace is the full event log (nil unless Config.KeepTrace).
	Trace *trace.Collector
	// FinalLoss is the last probed loss.
	FinalLoss float64
	// Faults is the fault/recovery accounting (crashes, restarts,
	// checkpoints, drops, evictions). Nil unless Config.Faults was set.
	Faults *metrics.Faults
	// Scale is the elastic-membership accounting (joins, leaves, migrations,
	// migrated bytes, per-migration durations). Nil unless Config.Scale was
	// set.
	Scale *core.ScaleStats
	// Obs is the condensed observability summary: pull/compute/push and
	// abort-to-restart latency histograms, staleness distribution, and the
	// counter totals.
	Obs *obs.Summary
	// Flight is the flight-recorder dump: the last control-plane decisions
	// (barrier releases, migrations, faults, straggler flags) with virtual
	// timestamps.
	Flight obs.FlightDump
	// Replication is the replicated-plane accounting (elections, terms,
	// promotions, forwarded/applied pushes). Nil unless Config.Replication
	// was enabled.
	Replication *ReplicationStats
	// SchemeSwitches counts the SchemeSwitch retargets the scheduler issued
	// (scheme variants and the meta-scheme; always 0 on static runs), and
	// FinalScheme names the discipline the fleet ended the run under.
	SchemeSwitches int64
	FinalScheme    string
	// ParamsDigest is the hex SHA-256 over the final assembled parameter
	// vector. Byte-identical runs produce identical digests, which is how
	// the zero-loss failover claim is checked: a replicated crash run must
	// end at exactly the fault-free digest.
	ParamsDigest string
	// Stragglers is the straggler-run accounting: detector precision/recall
	// against the plan's injected worker set, mitigation actions, and the
	// server-side clone-dedup counters. Nil unless Config.Stragglers was
	// set.
	Stragglers *StragglerStats
}

// StragglerStats summarizes a straggler-profile run.
type StragglerStats struct {
	// Score compares the detector's ever-sustained flags against the
	// plan's injected worker set.
	Score stragglers.Score
	// Mitigation counts clone starts/stops and rebalances.
	Mitigation core.MitigationStats
	// CloneDeduped is the number of duplicate (worker, iter) pushes the
	// servers acknowledged without applying; CloneDropped counts unaliased
	// spare-slot pushes dropped while a CloneNotice was in flight.
	CloneDeduped, CloneDropped int64
}

// Run executes one simulated training job to convergence (or MaxVirtual).
func Run(cfg Config) (*Result, error) {
	if err := cfg.Workload.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Scheme.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 worker")
	}
	if cfg.Workload.Model.NumShards() < cfg.Workers {
		return nil, fmt.Errorf("cluster: workload has %d data shards for %d workers",
			cfg.Workload.Model.NumShards(), cfg.Workers)
	}
	if cfg.MaxVirtual <= 0 {
		return nil, fmt.Errorf("cluster: MaxVirtual must be positive")
	}
	if cfg.Speeds != nil && len(cfg.Speeds) != cfg.Workers {
		return nil, fmt.Errorf("cluster: %d speeds for %d workers", len(cfg.Speeds), cfg.Workers)
	}
	if err := cfg.Codec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Scale.Empty() {
		// An empty plan is indistinguishable from no plan: the run stays on
		// the legacy fixed-shard path with zero routing overhead.
		cfg.Scale = nil
	}
	if cfg.Scale != nil {
		if err := cfg.Scale.Validate(); err != nil {
			return nil, err
		}
		if cfg.Faults != nil {
			return nil, fmt.Errorf("cluster: Scale cannot be combined with Faults (restarts assume the static cluster shape; see DESIGN.md, Elasticity)")
		}
		if cfg.Scheme.Decentralized {
			return nil, fmt.Errorf("cluster: Scale cannot be combined with decentralized speculation (the peer list is static)")
		}
	}
	if cfg.Replication.Replicas < 0 || cfg.Replication.StandbySchedulers < 0 {
		return nil, fmt.Errorf("cluster: negative replication counts")
	}
	if cfg.Switcher != nil {
		if err := cfg.Switcher.Validate(); err != nil {
			return nil, err
		}
		if cfg.Scheme.Variant != scheme.VariantNone {
			return nil, fmt.Errorf("cluster: the meta-scheme cannot be combined with scheme variant %s (both rewrite the discipline mid-run)", cfg.Scheme.Variant)
		}
		if cfg.Scheme.Decentralized {
			return nil, fmt.Errorf("cluster: the meta-scheme requires the centralized scheduler (Decentralized unsupported)")
		}
		if cfg.Scheme.Spec != scheme.SpecOff {
			return nil, fmt.Errorf("cluster: the meta-scheme cannot be combined with speculation (a switch into BSP would leave speculation windows with nothing to abort)")
		}
		if cfg.Scheme.NaiveWait != 0 {
			return nil, fmt.Errorf("cluster: the meta-scheme is incompatible with NaiveWait")
		}
	}
	for i, sd := range cfg.Slowdowns {
		if sd.Factor == 0 && sd.From == 0 && sd.Until == 0 {
			continue // unscripted slot
		}
		if err := sd.Validate(); err != nil {
			return nil, fmt.Errorf("cluster: slowdown for worker %d: %w", i, err)
		}
	}
	if len(cfg.Slowdowns) > cfg.Workers {
		return nil, fmt.Errorf("cluster: %d slowdown entries for %d workers", len(cfg.Slowdowns), cfg.Workers)
	}
	if cfg.Replication.Enabled() {
		if cfg.Scale != nil {
			return nil, fmt.Errorf("cluster: Replication cannot be combined with Scale (promotion and election rebuild nodes at the static cluster shape)")
		}
		if cfg.Faults != nil && !cfg.Faults.CrashOnly() {
			return nil, fmt.Errorf("cluster: Replication requires a crash-only fault plan (a dropped or partitioned replication message would silently stall a backup; see DESIGN.md, Replication)")
		}
	}
	if cfg.Stragglers.Empty() {
		// An empty plan is indistinguishable from no plan: no speed scripts,
		// no link hook, no detection timer — byte-identical to the seed path.
		cfg.Stragglers = nil
	}
	if err := cfg.Mitigation.Validate(); err != nil {
		return nil, err
	}
	if cfg.Stragglers == nil && cfg.Mitigation != stragglers.MitigateNone {
		return nil, fmt.Errorf("cluster: mitigation %q without a straggler plan", cfg.Mitigation)
	}
	if cfg.Stragglers != nil {
		if err := cfg.Stragglers.Validate(); err != nil {
			return nil, err
		}
		if mw := cfg.Stragglers.MaxWorker(); mw >= cfg.Workers {
			return nil, fmt.Errorf("cluster: straggler plan targets worker %d but the cluster has %d", mw, cfg.Workers)
		}
		if cfg.Faults != nil {
			return nil, fmt.Errorf("cluster: Stragglers cannot be combined with Faults (restarts re-anchor the profile's speed windows mid-run)")
		}
		if cfg.Scale != nil {
			return nil, fmt.Errorf("cluster: Stragglers cannot be combined with Scale (the profile indexes a fixed worker set)")
		}
	}
	if cfg.Mitigation != stragglers.MitigateNone {
		if cfg.Scheme.Decentralized {
			return nil, fmt.Errorf("cluster: straggler mitigation requires the centralized scheduler (Decentralized unsupported)")
		}
		if cfg.Switcher != nil {
			return nil, fmt.Errorf("cluster: straggler mitigation cannot be combined with the meta-scheme (both act on the same detector)")
		}
		if cfg.Replication.Enabled() {
			return nil, fmt.Errorf("cluster: straggler mitigation cannot be combined with Replication (clone dedup and the replicated-path dedup would fight over push watermarks)")
		}
	}
	cfg.applyDefaults()

	mdl := cfg.Workload.Model
	dim := mdl.Dim()
	if dim < cfg.Servers {
		return nil, fmt.Errorf("cluster: model dim %d is smaller than %d server shards; every shard needs at least one parameter (use fewer servers or a larger model)", dim, cfg.Servers)
	}
	// Capacity: the slots the cluster may grow into under the scale plan.
	// Without a plan both equal the initial shape.
	maxWorkers, maxServers := cfg.Workers, cfg.Servers
	if cfg.Scale != nil {
		maxWorkers = cfg.Scale.MaxWorkers(cfg.Workers)
		maxServers = cfg.Scale.MaxServers(cfg.Servers)
		if dim < maxServers {
			return nil, fmt.Errorf("cluster: model dim %d is smaller than the %d server shards the scale plan grows to", dim, maxServers)
		}
		if mdl.NumShards() < maxWorkers {
			return nil, fmt.Errorf("cluster: workload has %d data shards for the %d workers the scale plan grows to", mdl.NumShards(), maxWorkers)
		}
	}
	cloneMode := cfg.Mitigation == stragglers.MitigateClone
	rebalanceMode := cfg.Mitigation == stragglers.MitigateRebalance
	if cloneMode || rebalanceMode {
		// Neither mitigation needs extra data shards for its spare slots: a
		// clone shares its target's shard, and a rebalance replacement
		// inherits its retired predecessor's.
		maxWorkers = cfg.Workers + cfg.Spares
	}
	ranges, err := ps.ShardRanges(dim, cfg.Servers)
	if err != nil {
		return nil, err
	}
	// The committed routing table (elastic runs only): starts as the identity
	// shard→slot map and is replaced by the scheduler's OnRouting callback at
	// each migration commit, so joining workers receive the current layout.
	var curRouting *core.RoutingTable
	if cfg.Scale != nil || rebalanceMode {
		shards := make([]core.ShardRoute, len(ranges))
		for i, r := range ranges {
			shards[i] = core.ShardRoute{Lo: r.Lo, Hi: r.Hi, Server: i}
		}
		curRouting = &core.RoutingTable{Epoch: 0, Shards: shards}
	}

	transfer := metrics.NewTransfer(msg.IsControl)
	collector := trace.NewCollector()
	o := cfg.Obs
	if o == nil {
		o = obs.New(obs.Options{})
	}
	o.SetTracer(collector)
	registry := msg.Registry()
	o.Registry().SetCollector("transfer", func(w io.Writer) {
		transfer.WritePrometheus(w, registry.Name)
	})
	codecStats := codec.NewStats(msg.CodecLabeler(cfg.Codec.PushName(), cfg.Codec.PullName()))
	o.Registry().SetCollector("codec", func(w io.Writer) {
		codecStats.WritePrometheus(w, registry.Name)
	})

	sim, err := des.New(des.Config{
		Seed:     cfg.Seed,
		Net:      cfg.Net,
		Registry: registry,
		Transfer: codecStats.Tap(transfer),
		Metrics:  o.Registry(),
		Debug:    cfg.Debug,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Stragglers != nil {
		if err := stragglers.AttachSim(sim, cfg.Stragglers); err != nil {
			return nil, err
		}
	}
	var stragglerScripts [][]worker.SpeedWindow
	if cfg.Stragglers != nil {
		stragglerScripts, err = cfg.Stragglers.Scripts(cfg.Workers)
		if err != nil {
			return nil, err
		}
		o.Scheduler().SetStragglerTruth(cfg.Stragglers.Targets())
	}

	// Identical initial parameters for every scheme at the same seed.
	initRng := rand.New(rand.NewSource(cfg.Seed ^ 0x1217))
	initVec := mdl.Init(initRng)

	var faultM *metrics.Faults
	if cfg.Faults != nil || cfg.Replication.Enabled() {
		faultM = metrics.NewFaults(msg.IsControl)
		o.Registry().SetCollector("faults", func(w io.Writer) {
			faultM.WritePrometheus(w)
		})
	}

	// makeServer / makeWorker build a node from scratch; used for initial
	// construction and again by the fault injector for restarts (a restarted
	// node is a fresh incarnation with the same static configuration).
	newOptimizer := func(n int) (*optimizer.SGD, error) {
		return optimizer.NewSGD(optimizer.SGDConfig{
			Schedule: cfg.Workload.Schedule,
			Momentum: cfg.Workload.Momentum,
			Clip:     cfg.Workload.Clip,
		}, n)
	}
	makeServer := func(shard int) (*ps.Server, error) {
		r := ranges[shard]
		opt, err := newOptimizer(r.Len())
		if err != nil {
			return nil, err
		}
		scfg := ps.Config{
			Range:      r,
			Init:       initVec[r.Lo:r.Hi],
			Optimizer:  opt,
			Obs:        o.Server(shard),
			DeltaPull:  cfg.Codec.UsesDelta(),
			CodecStats: codecStats,
		}
		if cfg.Scale != nil {
			scfg.NewOptimizer = newOptimizer
		}
		if cloneMode {
			scfg.DedupPushes = true
			scfg.CloneBase = int32(cfg.Workers)
		}
		return ps.New(scfg)
	}
	// makeJoiningServer builds an empty, frozen shard for a slot added by the
	// scale plan; a migration hands it state before it serves anything.
	makeJoiningServer := func(slot int) (*ps.Server, error) {
		return ps.NewJoining(ps.Config{
			NewOptimizer: newOptimizer,
			Obs:          o.Server(slot),
			DeltaPull:    cfg.Codec.UsesDelta(),
			CodecStats:   codecStats,
		})
	}
	// makeWorker builds the worker for slot i; shard >= 0 overrides its data
	// shard (rebalance replacements inherit their retired predecessor's).
	makeWorker := func(i int, joining bool, shard int) (*worker.Worker, error) {
		speed := 1.0
		if cfg.Speeds != nil && i < len(cfg.Speeds) {
			speed = cfg.Speeds[i]
		}
		if i >= cfg.Workers && cfg.SpareSpeed > 0 {
			speed = cfg.SpareSpeed
		}
		wcfg := worker.Config{
			Index:  i,
			Shards: ranges,
			Model:  mdl,
			Scheme: cfg.Scheme,
			Compute: worker.ComputeModel{
				Base:        cfg.Workload.IterTime,
				Speed:       speed,
				JitterSigma: cfg.Workload.JitterSigma,
			},
			Tracer:           collector,
			Obs:              o.Worker(i),
			AbortLateFrac:    cfg.AbortLateFrac,
			MaxIters:         cfg.MaxItersPerWorker,
			NumWorkers:       cfg.Workers,
			HeartbeatEvery:   cfg.HeartbeatEvery,
			RetryAfter:       cfg.RetryAfter,
			SchedulerTimeout: cfg.SchedulerTimeout,
			Faults:           faultM,
			Codec:            cfg.Codec,
			CodecStats:       codecStats,
			ReportSpans:      cfg.Scheme.DynamicBase() || cfg.Switcher != nil || cfg.Stragglers != nil,
		}
		if i < len(cfg.Slowdowns) && cfg.Slowdowns[i].Factor >= 1 {
			sd := cfg.Slowdowns[i]
			wcfg.Slowdown = &sd
		}
		if i < len(stragglerScripts) && len(stragglerScripts[i]) > 0 {
			wcfg.Script = stragglerScripts[i]
		}
		if cfg.Scale != nil || rebalanceMode {
			wcfg.Shards = nil
			wcfg.Routing = curRouting.Clone()
			wcfg.JoinOnInit = joining
		}
		if shard >= 0 {
			wcfg.DataShard = &shard
		}
		return worker.New(wcfg)
	}

	// Slices are sized to the plan's capacity; slots beyond the initial shape
	// stay nil until the plan adds them.
	servers := make([]*ps.Server, maxServers)
	for i := range ranges {
		srv, err := makeServer(i)
		if err != nil {
			return nil, err
		}
		servers[i] = srv
		if err := sim.AddNode(node.ServerID(i), srv); err != nil {
			return nil, err
		}
	}

	// Shard backups: R replicas per shard, each a real ps.Server with the
	// same initial parameters and optimizer, in replica mode (serves no
	// worker traffic, applies the primary's version-stamped forward stream).
	// Starting identical and applying the identical sequence keeps every
	// backup byte-for-byte in sync with its primary.
	var shardReplicas [][]*ps.Server
	if R := cfg.Replication.Replicas; R > 0 {
		makeReplica := func(shard int) (*ps.Server, error) {
			r := ranges[shard]
			opt, err := newOptimizer(r.Len())
			if err != nil {
				return nil, err
			}
			return ps.New(ps.Config{
				Range:      r,
				Init:       initVec[r.Lo:r.Hi],
				Optimizer:  opt,
				Replica:    true,
				Obs:        o.Server(shard),
				DeltaPull:  cfg.Codec.UsesDelta(),
				CodecStats: codecStats,
			})
		}
		shardReplicas = make([][]*ps.Server, cfg.Servers)
		for shard := range ranges {
			backups := make([]node.ID, R)
			shardReplicas[shard] = make([]*ps.Server, R)
			for r := 1; r <= R; r++ {
				backups[r-1] = node.ReplicaID(shard, r)
				rep, err := makeReplica(shard)
				if err != nil {
					return nil, err
				}
				shardReplicas[shard][r-1] = rep
				if err := sim.AddNode(node.ReplicaID(shard, r), rep); err != nil {
					return nil, err
				}
			}
			servers[shard].SetBackups(backups)
		}
	}

	workers := make([]*worker.Worker, maxWorkers)
	for i := 0; i < cfg.Workers; i++ {
		wk, err := makeWorker(i, false, -1)
		if err != nil {
			return nil, err
		}
		workers[i] = wk
		if err := sim.AddNode(node.WorkerID(i), wk); err != nil {
			return nil, err
		}
	}

	maxAbortFrac := cfg.MaxAbortFrac
	if maxAbortFrac == 0 {
		maxAbortFrac = 0.125
	}

	// Straggler mitigation: the scheduler's periodic pass calls back into the
	// harness to materialize spare nodes — a clone sharing its target's data
	// shard, or a fresh joining replacement. Both enter the sim mid-run.
	var mitCfg *core.MitigateConfig
	if cfg.Stragglers != nil {
		mode := core.MitigateObserve
		switch cfg.Mitigation {
		case stragglers.MitigateClone:
			mode = core.MitigateClone
		case stragglers.MitigateRebalance:
			mode = core.MitigateRebalance
		}
		mitCfg = &core.MitigateConfig{
			Mode:   mode,
			Base:   cfg.Workers,
			Spares: maxWorkers - cfg.Workers,
		}
		if cloneMode {
			serverIDs := make([]node.ID, cfg.Servers)
			for i := range serverIDs {
				serverIDs[i] = node.ServerID(i)
			}
			mitCfg.Servers = serverIDs
			mitCfg.OnClone = func(slot, target int, fromIter int64) error {
				maxIters := cfg.MaxItersPerWorker
				if maxIters > 0 {
					// The clone resumes the target's absolute iteration count,
					// but MaxIters caps per-incarnation completions.
					if maxIters -= fromIter; maxIters <= 0 {
						return fmt.Errorf("cluster: worker %d already spent its iteration budget", target)
					}
				}
				wk, err := worker.New(worker.Config{
					Index:  target, // the target's data shard; pushes count as its work
					Shards: ranges,
					Model:  mdl,
					Scheme: cfg.Scheme,
					Compute: worker.ComputeModel{
						Base:        cfg.Workload.IterTime,
						Speed:       cfg.SpareSpeed,
						JitterSigma: cfg.Workload.JitterSigma,
					},
					Tracer:        collector,
					Obs:           o.Worker(target),
					AbortLateFrac: cfg.AbortLateFrac,
					MaxIters:      maxIters,
					NumWorkers:    cfg.Workers,
					RetryAfter:    cfg.RetryAfter,
					Faults:        faultM,
					Codec:         cfg.Codec,
					CodecStats:    codecStats,
					ReportSpans:   true,
				})
				if err != nil {
					return err
				}
				workers[slot] = wk
				return sim.Join(node.WorkerID(slot), wk)
			}
		}
		if rebalanceMode {
			mitCfg.OnSpawn = func(slot, target int) error {
				// The replacement takes over the retired straggler's data
				// shard, so the swap changes who computes, not what is
				// trained on.
				wk, err := makeWorker(slot, true, target)
				if err != nil {
					return err
				}
				workers[slot] = wk
				return sim.Join(node.WorkerID(slot), wk)
			}
		}
	}

	// makeScheduler builds a scheduler incarnation; gen 0 is the initial one,
	// higher generations are fault-injector restarts (their Init broadcasts
	// SchedulerHello instead of Start).
	makeScheduler := func(gen int64) (*core.Scheduler, error) {
		return core.NewScheduler(core.SchedulerConfig{
			Workers:           maxWorkers,
			ActiveWorkers:     cfg.Workers,
			Routing:           curRouting,
			OnRouting:         func(t *core.RoutingTable) { curRouting = t },
			Scheme:            cfg.Scheme,
			InitialSpan:       cfg.Workload.IterTime,
			Tracer:            collector,
			OnTune:            cfg.OnTune,
			RateMargin:        cfg.RateMargin,
			CheckAtExpiryOnly: cfg.CheckAtExpiryOnly,
			LivenessTimeout:   cfg.LivenessTimeout,
			Switcher:          cfg.Switcher,
			TrackSpans:        cfg.Stragglers != nil,
			Mitigate:          mitCfg,
			Generation:        gen,
			BeaconEvery:       cfg.BeaconEvery,
			Faults:            faultM,
			Obs:               o.Scheduler(),
			Tuner: core.TunerConfig{
				MinAbort: 4 * cfg.Net.Latency,
				// With the eager threshold check, an abort costs only the time
				// elapsed when the push rate crosses the threshold, so windows
				// up to the paper's grid bound (half an iteration) are usable.
				MaxAbort:      time.Duration(maxAbortFrac * float64(cfg.Workload.IterTime)),
				MaxCandidates: 512,
			},
		})
	}
	sched, err := makeScheduler(0)
	if err != nil {
		return nil, err
	}

	// Iterations and aborts retired by crashed worker incarnations; the
	// replacement starts its counters from zero. Likewise re-syncs and epochs
	// retired by crashed (or deposed) scheduler incarnations.
	var retiredIters, retiredAborts, retiredResyncs int64
	var maxEpochs int

	// retireScheduler folds the outgoing incarnation's counters into the
	// retired totals and swaps the accounting reference to its successor.
	retireScheduler := func(s *core.Scheduler) {
		retiredResyncs += sched.ReSyncsSent()
		if e := sched.Epoch(); e > maxEpochs {
			maxEpochs = e
		}
		sched = s
	}

	// Control-plane replication: the bootstrap scheduler serves behind a
	// Leader wrapper that ships its snapshot to S standby incarnations; a
	// crash then ends in an election instead of degraded broadcast mode.
	var leader *replica.Leader
	var standbys []*replica.Standby
	if S := cfg.Replication.StandbySchedulers; S > 0 {
		leader, err = replica.NewLeader(replica.LeaderConfig{
			Sched:          sched,
			Standbys:       S,
			ReplicateEvery: cfg.Replication.ReplicateEvery,
			Obs:            o,
		})
		if err != nil {
			return nil, err
		}
		if err := sim.AddNode(node.Scheduler, leader); err != nil {
			return nil, err
		}
		for i := 1; i <= S; i++ {
			sb, err := replica.NewStandby(replica.StandbyConfig{
				Index:           i,
				Standbys:        S,
				Workers:         maxWorkers,
				ElectionTimeout: cfg.Replication.ElectionTimeout,
				ReplicateEvery:  cfg.Replication.ReplicateEvery,
				MakeScheduler:   makeScheduler,
				OnPromote:       func(_ *replica.Standby, s *core.Scheduler) { retireScheduler(s) },
				Faults:          faultM,
				Obs:             o,
			})
			if err != nil {
				return nil, err
			}
			standbys = append(standbys, sb)
			if err := sim.AddNode(node.StandbyID(i), sb); err != nil {
				return nil, err
			}
		}
	} else {
		if err := sim.AddNode(node.Scheduler, sched); err != nil {
			return nil, err
		}
	}

	var inj *faults.SimInjector
	if cfg.Faults != nil {
		inj, err = faults.AttachSim(sim, faults.SimOptions{
			Plan:            cfg.Faults,
			NumWorkers:      cfg.Workers,
			NumServers:      cfg.Servers,
			Tracer:          collector,
			Faults:          faultM,
			CheckpointEvery: cfg.CheckpointEvery,
			NewWorker: func(i int) (node.Handler, error) {
				return makeWorker(i, false, -1)
			},
			NewServer:    makeServer,
			NewScheduler: makeScheduler,
			Server:       func(shard int) *ps.Server { return servers[shard] },
			Scheduler:    func() *core.Scheduler { return sched },
			Replicas:     cfg.Replication.Replicas,
			Standbys:     cfg.Replication.StandbySchedulers,
			ReplicaServer: func(shard, r int) *ps.Server {
				if shardReplicas == nil || r < 1 || r > len(shardReplicas[shard]) {
					return nil
				}
				return shardReplicas[shard][r-1]
			},
			OnPromote: func(shard int, srv *ps.Server) {
				o.RecordFlight(obs.FlightEvent{
					At:     sim.Now(),
					Kind:   "replica-promote",
					Node:   string(node.ServerID(shard)),
					Value:  float64(srv.Version()),
					Detail: "backup promoted to shard primary",
				})
			},
			OnWorkerRestart: func(i int, h node.Handler) {
				retiredIters += workers[i].IterationsDone()
				retiredAborts += workers[i].Aborts()
				workers[i] = h.(*worker.Worker)
			},
			OnServerRestart: func(shard int, srv *ps.Server) {
				servers[shard] = srv
			},
			OnSchedulerRestart: func(s *core.Scheduler) { retireScheduler(s) },
		})
		if err != nil {
			return nil, err
		}
	}

	var einj *elastic.SimInjector
	if cfg.Scale != nil {
		einj, err = elastic.AttachSim(sim, elastic.SimOptions{
			Plan:    cfg.Scale,
			Workers: cfg.Workers,
			Servers: cfg.Servers,
			NewWorker: func(i int) (node.Handler, error) {
				return makeWorker(i, true, -1)
			},
			NewServer: func(slot int) (node.Handler, error) {
				return makeJoiningServer(slot)
			},
			OnWorkerAdd: func(i int, h node.Handler) { workers[i] = h.(*worker.Worker) },
			OnServerAdd: func(slot int, h node.Handler) { servers[slot] = h.(*ps.Server) },
		})
		if err != nil {
			return nil, err
		}
	}

	sim.Init()

	res := &Result{
		SchemeName: cfg.Scheme.Name(),
		Transfer:   transfer,
		Codec:      codecStats,
	}
	accModel, hasAcc := mdl.(model.Accuracier)

	probeVec := tensor.NewVec(dim)
	assemble := func() tensor.Vec {
		// Each live shard contributes its committed range. During a migration
		// the involved shards are frozen (no updates applied), so overlapping
		// old/staged ranges hold identical values and the copy order does not
		// matter; retired and not-yet-committed shards own nothing.
		for _, srv := range servers {
			if srv == nil || srv.Retired() {
				continue
			}
			p := srv.Params()
			r := srv.Range()
			if len(p) == r.Len() && r.Len() > 0 {
				copy(probeVec[r.Lo:r.Hi], p)
			}
		}
		return probeVec
	}
	totalIters := func() int64 {
		n := retiredIters
		for _, wk := range workers {
			if wk != nil {
				n += wk.IterationsDone()
			}
		}
		return n
	}

	streak := 0
	converged := false
	var stopAt time.Time
	var probe func()
	probe = func() {
		now := sim.Elapsed()
		w := assemble()
		loss := mdl.EvalLoss(w)
		res.Loss.Add(now, loss)
		res.IterSeries.Add(now, float64(totalIters()))
		res.TransferSeries.Add(now, float64(transfer.TotalBytes()))
		if cfg.RecordAccuracy && hasAcc {
			res.Accuracy.Add(now, accModel.EvalAccuracy(w))
		}
		if !converged {
			if loss < cfg.Workload.TargetLoss {
				streak++
			} else {
				streak = 0
			}
			if streak >= cfg.ConsecutiveBelow {
				converged = true
				res.Converged = true
				res.ItersAtConverge = totalIters()
				stopAt = sim.Now().Add(cfg.RunPastConverge)
			}
		}
		if converged && !sim.Now().Before(stopAt) {
			sim.Stop()
			return
		}
		sim.Schedule(cfg.Workload.EvalEvery, probe)
	}
	sim.Schedule(cfg.Workload.EvalEvery, probe)

	sim.RunUntilIdle(cfg.MaxVirtual)

	if inj != nil {
		if errs := inj.Errs(); len(errs) > 0 {
			return nil, fmt.Errorf("cluster: fault injector: %v", errs[0])
		}
	}
	if einj != nil {
		if errs := einj.Errs(); len(errs) > 0 {
			return nil, fmt.Errorf("cluster: elastic injector: %v", errs[0])
		}
		stats := sched.ScaleStats()
		res.Scale = &stats
	}
	if cfg.Stragglers != nil {
		st := &StragglerStats{
			Score:      stragglers.ScoreDetection(cfg.Stragglers.Targets(), o.Scheduler().StragglersDetected()),
			Mitigation: sched.MitigationStats(),
		}
		for _, srv := range servers {
			if srv != nil {
				d, dr := srv.CloneStats()
				st.CloneDeduped += d
				st.CloneDropped += dr
			}
		}
		res.Stragglers = st
		if rebalanceMode {
			stats := sched.ScaleStats()
			res.Scale = &stats
		}
	}
	res.Elapsed = sim.Elapsed()
	res.TotalIters = totalIters()
	res.Aborts = retiredAborts
	for _, wk := range workers {
		if wk != nil {
			res.Aborts += wk.Aborts()
		}
	}
	res.Faults = faultM
	res.ReSyncs = retiredResyncs + sched.ReSyncsSent()
	res.Epochs = sched.Epoch()
	if maxEpochs > res.Epochs {
		res.Epochs = maxEpochs
	}
	res.SchemeSwitches = sched.SchemeSwitches()
	res.FinalScheme = sched.Runtime().String()
	res.FinalLoss = res.Loss.Last().V
	if t, ok := res.Loss.TimeToConverge(cfg.Workload.TargetLoss, cfg.ConsecutiveBelow); ok {
		res.ConvergeTime = t
		res.Converged = true
	}
	if cfg.Replication.Enabled() {
		rs := &ReplicationStats{
			Replicas:          cfg.Replication.Replicas,
			StandbySchedulers: cfg.Replication.StandbySchedulers,
			LeaderNode:        string(node.Scheduler),
		}
		if leader != nil {
			rs.SnapshotsShipped = leader.Shipped()
		}
		for i, sb := range standbys {
			rs.Elections += sb.Elections()
			rs.SnapshotsShipped += sb.Shipped()
			if t := sb.Term(); t > rs.FinalTerm {
				rs.FinalTerm = t
			}
			if sb.Role() == replica.RoleLeader {
				rs.LeaderNode = string(node.StandbyID(i + 1))
			}
		}
		// Replicated-push accounting over the union of every server that ever
		// served or backed a shard: the promoted backup appears both in
		// servers and in its replica slot, so dedup by pointer.
		seen := make(map[*ps.Server]bool)
		tally := func(srv *ps.Server) {
			if srv == nil || seen[srv] {
				return
			}
			seen[srv] = true
			f, a, d := srv.ReplStats()
			rs.Forwarded += f
			rs.Applied += a
			rs.Deduped += d
		}
		for _, srv := range servers {
			tally(srv)
		}
		for _, reps := range shardReplicas {
			for _, rep := range reps {
				tally(rep)
			}
		}
		if faultM != nil {
			rs.Promotions = faultM.Stats().Promotions
		}
		res.Replication = rs
	}
	if cfg.KeepTrace {
		res.Trace = collector
	}
	res.Obs = o.Summary()
	res.Flight = o.FlightDump()
	res.ParamsDigest = paramsDigest(assemble())
	return res, nil
}

// paramsDigest hashes a parameter vector bit-exactly (IEEE-754 bits, little
// endian), so two runs share a digest iff their final models are
// byte-identical.
func paramsDigest(w tensor.Vec) string {
	h := sha256.New()
	var b [8]byte
	for _, v := range w {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
