package cluster

import (
	"testing"
	"time"

	"specsync/internal/scheme"
	"specsync/internal/trace"
)

func tinyConfig(t *testing.T, sc scheme.Config, mut func(*Config)) Config {
	t.Helper()
	wl, err := NewTiny(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workload:   wl,
		Scheme:     sc,
		Workers:    4,
		Seed:       3,
		MaxVirtual: 15 * time.Minute,
		KeepTrace:  true,
	}
	if mut != nil {
		mut(&cfg)
	}
	return cfg
}

func TestRunValidation(t *testing.T) {
	wl, err := NewTiny(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Scheme: scheme.Config{Base: scheme.ASP}, Workers: 4, MaxVirtual: time.Hour},                                     // no workload
		{Workload: wl, Scheme: scheme.Config{}, Workers: 4, MaxVirtual: time.Hour},                                       // bad scheme
		{Workload: wl, Scheme: scheme.Config{Base: scheme.ASP}, Workers: 0, MaxVirtual: time.Hour},                       // no workers
		{Workload: wl, Scheme: scheme.Config{Base: scheme.ASP}, Workers: 8, MaxVirtual: time.Hour},                       // more workers than shards
		{Workload: wl, Scheme: scheme.Config{Base: scheme.ASP}, Workers: 4},                                              // no MaxVirtual
		{Workload: wl, Scheme: scheme.Config{Base: scheme.ASP}, Workers: 4, MaxVirtual: time.Hour, Speeds: []float64{1}}, // bad speeds
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestAllSchemesConvergeTiny(t *testing.T) {
	schemes := []scheme.Config{
		{Base: scheme.ASP},
		{Base: scheme.BSP},
		{Base: scheme.SSP, Staleness: 2},
		{Base: scheme.ASP, NaiveWait: 100 * time.Millisecond},
		{Base: scheme.ASP, Spec: scheme.SpecFixed, AbortTime: 250 * time.Millisecond, AbortRate: 0.25},
		{Base: scheme.ASP, Spec: scheme.SpecAdaptive},
		{Base: scheme.SSP, Staleness: 2, Spec: scheme.SpecAdaptive},
	}
	for _, sc := range schemes {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			res, err := Run(tinyConfig(t, sc, nil))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("did not converge: final loss %.4f", res.FinalLoss)
			}
			if res.TotalIters == 0 || res.Epochs == 0 {
				t.Errorf("no progress recorded: iters=%d epochs=%d", res.TotalIters, res.Epochs)
			}
		})
	}
}

func TestRunDeterministicAcrossRepeats(t *testing.T) {
	run := func() *Result {
		res, err := Run(tinyConfig(t, scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive}, nil))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.ConvergeTime != b.ConvergeTime || a.TotalIters != b.TotalIters || a.Aborts != b.Aborts {
		t.Errorf("non-deterministic: (%v,%d,%d) vs (%v,%d,%d)",
			a.ConvergeTime, a.TotalIters, a.Aborts, b.ConvergeTime, b.TotalIters, b.Aborts)
	}
	if a.Transfer.TotalBytes() != b.Transfer.TotalBytes() {
		t.Errorf("transfer differs: %d vs %d", a.Transfer.TotalBytes(), b.Transfer.TotalBytes())
	}
}

func TestBSPLockstepInvariant(t *testing.T) {
	res, err := Run(tinyConfig(t, scheme.Config{Base: scheme.BSP}, nil))
	if err != nil {
		t.Fatal(err)
	}
	// Under BSP no worker may be more than one iteration ahead of another
	// at any push event.
	counts := make(map[int]int64)
	for _, ev := range res.Trace.Events() {
		if ev.Kind != trace.KindPush {
			continue
		}
		counts[ev.Worker]++
		min, max := counts[ev.Worker], counts[ev.Worker]
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > 1 {
			t.Fatalf("BSP violated: push counts spread %d at %v", max-min, ev.At)
		}
	}
}

func TestSSPBoundInvariant(t *testing.T) {
	const bound = 2
	res, err := Run(tinyConfig(t, scheme.Config{Base: scheme.SSP, Staleness: bound}, func(c *Config) {
		// Big speed skew to stress the bound.
		c.Speeds = []float64{3, 1, 1, 0.5}
	}))
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int64)
	seen := 0
	for _, ev := range res.Trace.Events() {
		if ev.Kind != trace.KindPush {
			continue
		}
		counts[ev.Worker]++
		seen++
		if len(counts) < 4 {
			continue // until all workers appear, min is undefined
		}
		min := int64(1 << 60)
		for _, c := range counts {
			if c < min {
				min = c
			}
		}
		// A worker that completed c iterations was allowed to *start* its
		// c-th only while c-1 <= min + bound.
		for w, c := range counts {
			if c-min > bound+1 {
				t.Fatalf("SSP bound violated: worker %d at %d vs min %d", w, c, min)
			}
		}
	}
	if seen == 0 {
		t.Fatal("no pushes traced")
	}
}

func TestStalenessLowerWithSpecSync(t *testing.T) {
	stalenessP50 := func(sc scheme.Config) float64 {
		res, err := Run(tinyConfig(t, sc, func(c *Config) {
			c.MaxVirtual = 4 * time.Minute
			// Disable convergence stopping to compare equal horizons: set
			// an unreachable target.
			wl := c.Workload
			wl.TargetLoss = 0
			c.Workload = wl
		}))
		if err != nil {
			t.Fatal(err)
		}
		var vals []float64
		for _, ev := range res.Trace.Events() {
			if ev.Kind == trace.KindStaleness {
				vals = append(vals, float64(ev.Value))
			}
		}
		if len(vals) == 0 {
			t.Fatal("no staleness events")
		}
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		return sum / float64(len(vals))
	}
	asp := stalenessP50(scheme.Config{Base: scheme.ASP})
	spec := stalenessP50(scheme.Config{Base: scheme.ASP, Spec: scheme.SpecFixed, AbortTime: 200 * time.Millisecond, AbortRate: 0.2})
	if spec >= asp {
		t.Errorf("SpecSync staleness %.2f not below ASP %.2f", spec, asp)
	}
}

func TestHeterogeneousSpeeds(t *testing.T) {
	speeds := InstanceSpeeds(8)
	if len(speeds) != 8 {
		t.Fatalf("len = %d", len(speeds))
	}
	res, err := Run(tinyConfig(t, scheme.Config{Base: scheme.ASP}, func(c *Config) {
		c.Workers = 4
		c.Speeds = InstanceSpeeds(4)
	}))
	if err != nil {
		t.Fatal(err)
	}
	// Faster workers must complete more iterations.
	counts := res.Trace.CountByWorker(trace.KindPush)
	if counts[1] <= counts[0] {
		// speeds: worker0=0.9, worker1=1.8
		t.Errorf("fast worker pushed %d <= slow worker %d", counts[1], counts[0])
	}
	if u := UniformSpeeds(3); u[0] != 1 || u[2] != 1 {
		t.Error("UniformSpeeds wrong")
	}
}

func TestTransferAccountedAndControlSmall(t *testing.T) {
	res, err := Run(tinyConfig(t, scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive}, nil))
	if err != nil {
		t.Fatal(err)
	}
	data, control := res.Transfer.Split()
	if data == 0 {
		t.Fatal("no data bytes recorded")
	}
	frac := float64(control) / float64(data+control)
	if frac > 0.02 {
		t.Errorf("control traffic fraction %.4f, want < 2%%", frac)
	}
	if res.TransferSeries.Len() == 0 {
		t.Error("no transfer series sampled")
	}
	// Accumulated series must be non-decreasing.
	prev := -1.0
	for _, p := range res.TransferSeries.Snapshot() {
		if p.V < prev {
			t.Fatal("transfer series decreased")
		}
		prev = p.V
	}
}

func TestWorkloadBuildersAllSizes(t *testing.T) {
	builders := map[string]func(Size, int, int64) (Workload, error){
		"mf": NewMF, "cifar10": NewCIFAR, "imagenet": NewImageNet,
	}
	for name, build := range builders {
		for _, size := range []Size{SizeFull, SizeSmall} {
			wl, err := build(size, 8, 1)
			if err != nil {
				t.Fatalf("%s size %d: %v", name, size, err)
			}
			if err := wl.Validate(); err != nil {
				t.Errorf("%s: %v", name, err)
			}
			if wl.Model.NumShards() != 8 {
				t.Errorf("%s: %d shards, want 8", name, wl.Model.NumShards())
			}
			if wl.DatasetSize == 0 || wl.BatchSize == 0 {
				t.Errorf("%s: missing dataset metadata", name)
			}
		}
	}
}

func TestDisableHiccups(t *testing.T) {
	cfg := tinyConfig(t, scheme.Config{Base: scheme.ASP}, func(c *Config) {
		c.DisableHiccups = true
	})
	cfg.applyDefaults()
	if cfg.Net.Hiccups.Enabled() {
		t.Error("hiccups should be disabled")
	}
	cfg2 := tinyConfig(t, scheme.Config{Base: scheme.ASP}, nil)
	cfg2.applyDefaults()
	if !cfg2.Net.Hiccups.Enabled() {
		t.Error("hiccups should default on")
	}
}
