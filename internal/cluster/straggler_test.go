package cluster

import (
	"encoding/json"
	"testing"
	"time"

	"specsync/internal/obs"
	"specsync/internal/scheme"
)

func heteroStragglerRun(t *testing.T, seed int64) (*obs.Obs, *Result) {
	t.Helper()
	wl, err := NewTiny(4, seed)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	// An unreachable target keeps the run going for the full MaxVirtual so
	// the slow worker accumulates enough evaluations to escalate from
	// transient to sustained (SustainAfter consecutive slow rounds).
	wl.TargetLoss = 0
	o := obs.New(obs.Options{})
	res, err := Run(Config{
		Workload: wl,
		Scheme:   scheme.Config{Base: scheme.ASP},
		Workers:  4,
		Seed:     seed,
		Obs:      o,
		// Hiccups off so the only slowdown is the structural one: worker 3
		// computes at 0.4x speed and must be the lone flagged straggler.
		DisableHiccups: true,
		Speeds:         []float64{1, 1, 1, 0.4},
		MaxVirtual:     2 * time.Minute,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return o, res
}

// TestHeteroRunFlagsOnlySlowWorker is the tentpole acceptance criterion: a
// DES run with one structurally slow worker flags that worker (and only it)
// as a sustained straggler.
func TestHeteroRunFlagsOnlySlowWorker(t *testing.T) {
	o, res := heteroStragglerRun(t, 7)
	snap, ok := o.StragglerSnapshot()
	if !ok {
		t.Fatal("no straggler snapshot after run")
	}
	if len(snap.Workers) != 4 {
		t.Fatalf("snapshot has %d workers, want 4", len(snap.Workers))
	}
	for _, w := range snap.Workers {
		if w.Worker == 3 {
			if w.State != "sustained" {
				t.Errorf("worker 3: state %q score %.2f, want sustained", w.State, w.Score)
			}
			if w.Score < 1.5 {
				t.Errorf("worker 3: score %.2f, want >= SlowFactor 1.5", w.Score)
			}
		} else if w.State != "ok" {
			t.Errorf("worker %d: state %q score %.2f, want ok", w.Worker, w.State, w.Score)
		}
	}
	if snap.Flagged != 1 || snap.Sustained != 1 {
		t.Errorf("flagged=%d sustained=%d, want exactly the slow worker", snap.Flagged, snap.Sustained)
	}

	// The transition also lands in the flight recorder for post-hoc debugging.
	var sawFlag bool
	for _, ev := range res.Flight.Events {
		if ev.Kind == "straggler-flag" {
			sawFlag = true
			break
		}
	}
	if !sawFlag {
		t.Error("flight recorder has no straggler-flag event")
	}
	if len(res.Flight.Events) == 0 {
		t.Error("flight recorder empty after run")
	}
}

// TestStragglerSnapshotSameSeedIdentical asserts the determinism invariant:
// two same-seed runs export byte-identical straggler telemetry.
func TestStragglerSnapshotSameSeedIdentical(t *testing.T) {
	render := func() []byte {
		o, _ := heteroStragglerRun(t, 7)
		snap, ok := o.StragglerSnapshot()
		if !ok {
			t.Fatal("no snapshot")
		}
		b, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := render(), render()
	if string(a) != string(b) {
		t.Fatalf("same-seed runs produced different straggler snapshots:\n%s\n%s", a, b)
	}
}
