package cluster

import (
	"fmt"
	"time"

	"specsync/internal/scheme"
)

// Name-based resolvers for surfaces that receive workload/scheme choices as
// strings (the jobs gateway, CLIs). The names match the cmd/specsync flag
// vocabulary; "-small" suffixes select the reduced scale.

// WorkloadByName builds a workload from its string name.
func WorkloadByName(name string, workers int, seed int64) (Workload, error) {
	switch name {
	case "tiny":
		return NewTiny(workers, seed)
	case "mf":
		return NewMF(SizeFull, workers, seed)
	case "mf-small":
		return NewMF(SizeSmall, workers, seed)
	case "cifar10":
		return NewCIFAR(SizeFull, workers, seed)
	case "cifar10-small":
		return NewCIFAR(SizeSmall, workers, seed)
	case "imagenet":
		return NewImageNet(SizeFull, workers, seed)
	case "imagenet-small":
		return NewImageNet(SizeSmall, workers, seed)
	default:
		return Workload{}, fmt.Errorf("unknown workload %q (want tiny, mf[-small], cifar10[-small], imagenet[-small])", name)
	}
}

// SchemeByName builds a scheme config from its string name. iterTime scales
// the fixed-speculation preset ("cherry"); pass the workload's IterTime.
func SchemeByName(name string, iterTime time.Duration) (scheme.Config, error) {
	switch name {
	case "asp":
		return scheme.Config{Base: scheme.ASP}, nil
	case "bsp":
		return scheme.Config{Base: scheme.BSP}, nil
	case "ssp":
		return scheme.Config{Base: scheme.SSP, Staleness: 3}, nil
	case "naive":
		return scheme.Config{Base: scheme.ASP, NaiveWait: time.Second}, nil
	case "cherry":
		return scheme.Config{Base: scheme.ASP, Spec: scheme.SpecFixed, AbortTime: iterTime / 4, AbortRate: 0.22}, nil
	case "adaptive", "specsync":
		return scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive}, nil
	default:
		return scheme.Config{}, fmt.Errorf("unknown scheme %q (want asp, bsp, ssp, naive, cherry, adaptive)", name)
	}
}
