package cluster

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"specsync/internal/core"
	"specsync/internal/faults"
	"specsync/internal/live"
	"specsync/internal/metrics"
	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/optimizer"
	"specsync/internal/ps"
	"specsync/internal/scheme"
	"specsync/internal/worker"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLiveSchedulerDeathAndRecovery runs a real 2-worker cluster on the live
// in-process runtime, kills the scheduler mid-training, and requires the
// workers to (1) keep iterating while it is gone, (2) flag degraded mode, and
// (3) return to the centralized path once a restarted incarnation restores a
// checkpoint and completes the StateReport handshake.
func TestLiveSchedulerDeathAndRecovery(t *testing.T) {
	wl, err := NewTiny(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive}
	ranges, err := ps.ShardRanges(wl.Model.Dim(), 1)
	if err != nil {
		t.Fatal(err)
	}
	fm := metrics.NewFaults(msg.IsControl)
	iterTime := 20 * time.Millisecond

	initVec := wl.Model.Init(rand.New(rand.NewSource(1 ^ 0x1217)))
	opt, err := optimizer.NewSGD(optimizer.SGDConfig{Schedule: wl.Schedule, Clip: wl.Clip}, ranges[0].Len())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ps.New(ps.Config{Range: ranges[0], Init: initVec, Optimizer: opt})
	if err != nil {
		t.Fatal(err)
	}

	workers := make([]*worker.Worker, 2)
	for i := range workers {
		workers[i], err = worker.New(worker.Config{
			Index:            i,
			Shards:           ranges,
			Model:            wl.Model,
			Scheme:           sc,
			Compute:          worker.ComputeModel{Base: iterTime, Speed: 1},
			NumWorkers:       2,
			SchedulerTimeout: 100 * time.Millisecond,
			Faults:           fm,
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	makeSched := func(gen int64) (*core.Scheduler, error) {
		return core.NewScheduler(core.SchedulerConfig{
			Workers:     2,
			Scheme:      sc,
			InitialSpan: iterTime,
			Generation:  gen,
			BeaconEvery: 40 * time.Millisecond,
			Faults:      fm,
		})
	}
	sched, err := makeSched(0)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	current := sched
	plan := &faults.Plan{Events: []faults.Event{
		{Kind: faults.KindCrashScheduler, At: 150 * time.Millisecond, RestartAfter: 400 * time.Millisecond},
	}}
	inj, err := faults.NewLive(faults.LiveOptions{
		Plan:         plan,
		NumWorkers:   2,
		NumServers:   1,
		Faults:       fm,
		NewScheduler: makeSched,
		// The crashed incarnation's event loop is stopped, so reading its
		// state stands in for a checkpoint read from durable storage.
		SchedulerCheckpoint: func() (core.SchedulerSnapshot, bool) {
			mu.Lock()
			defer mu.Unlock()
			return current.Snapshot(), true
		},
		OnSchedulerRestart: func(s *core.Scheduler) {
			mu.Lock()
			current = s
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	net, err := live.NewNetwork(live.NetworkConfig{Registry: msg.Registry(), Seed: 1, Fault: inj.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode(node.ServerID(0), srv); err != nil {
		t.Fatal(err)
	}
	for i, wk := range workers {
		if err := net.AddNode(node.WorkerID(i), wk); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.AddNode(node.Scheduler, sched); err != nil {
		t.Fatal(err)
	}
	net.Start()
	defer net.Close()
	inj.Start(net)
	defer inj.Stop()

	waitFor(t, "both workers to enter degraded mode", func() bool {
		return workers[0].Degraded() && workers[1].Degraded()
	})
	itersAtDegrade := workers[0].IterationsDone() + workers[1].IterationsDone()
	waitFor(t, "training progress while the scheduler is down", func() bool {
		if !workers[0].Degraded() && !workers[1].Degraded() {
			t.Fatal("scheduler came back before degraded-mode progress was observed")
		}
		return workers[0].IterationsDone()+workers[1].IterationsDone() > itersAtDegrade
	})
	waitFor(t, "both workers to recover after the scheduler restart", func() bool {
		return !workers[0].Degraded() && !workers[1].Degraded()
	})
	itersAtRecover := workers[0].IterationsDone() + workers[1].IterationsDone()
	waitFor(t, "training progress under the restarted scheduler", func() bool {
		return workers[0].IterationsDone()+workers[1].IterationsDone() > itersAtRecover
	})

	if errs := inj.Errs(); len(errs) != 0 {
		t.Fatalf("injector errors: %v", errs)
	}
	st := fm.Stats()
	if st.SchedulerCrashes != 1 || st.SchedulerRestarts != 1 || st.SchedulerRestores != 1 {
		t.Errorf("scheduler crashes/restarts/restores = %d/%d/%d, want 1/1/1",
			st.SchedulerCrashes, st.SchedulerRestarts, st.SchedulerRestores)
	}
	if st.StateReports < 2 {
		t.Errorf("state reports = %d, want >= 2 (one per worker)", st.StateReports)
	}
	if st.DegradedEnters < 2 || st.DegradedRecovers < 2 {
		t.Errorf("degraded enters/recovers = %d/%d, want >= 2 each", st.DegradedEnters, st.DegradedRecovers)
	}
}
