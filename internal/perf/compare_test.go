package perf

import (
	"os"
	"strings"
	"testing"
)

const baseline = `{
	"schema": "specsync-perf/v1",
	"wire": {
		"marshal_ns_op": 1000,
		"marshal_allocs_op": 2,
		"msgs_per_sec": 50000
	},
	"des": {
		"events_per_sec": 400000,
		"wall_seconds": 0.01,
		"workers": 8
	}
}`

func mustCompare(t *testing.T, oldJSON, newJSON string, opts Options) *Result {
	t.Helper()
	res, err := Compare([]byte(oldJSON), []byte(newJSON), opts)
	if err != nil {
		t.Fatalf("compare: %v", err)
	}
	return res
}

// TestCompareFlagsTwoXRegression is the acceptance check: a synthetic 2x
// slowdown on a ns-metric must fail at the default tolerance.
func TestCompareFlagsTwoXRegression(t *testing.T) {
	slower := strings.Replace(baseline, `"marshal_ns_op": 1000`, `"marshal_ns_op": 2000`, 1)
	res := mustCompare(t, baseline, slower, Options{})
	regs := res.Regressions()
	if len(regs) != 1 {
		t.Fatalf("regressions = %d (%+v), want exactly the 2x marshal slowdown", len(regs), regs)
	}
	d := regs[0]
	if d.Key != "wire.marshal_ns_op" || d.Direction != LowerIsBetter {
		t.Errorf("regressed delta = %+v", d)
	}
	if d.WorseFrac != 1.0 {
		t.Errorf("WorseFrac = %v, want 1.0 (2x)", d.WorseFrac)
	}
}

func TestCompareWithinToleranceAndImprovementPass(t *testing.T) {
	// +20% time is inside the default 50% tolerance; faster is never flagged.
	wiggle := strings.Replace(baseline, `"marshal_ns_op": 1000`, `"marshal_ns_op": 1200`, 1)
	wiggle = strings.Replace(wiggle, `"events_per_sec": 400000`, `"events_per_sec": 700000`, 1)
	if regs := mustCompare(t, baseline, wiggle, Options{}).Regressions(); len(regs) != 0 {
		t.Errorf("regressions = %+v, want none", regs)
	}

	// Tightening the tolerance under the wiggle flags it.
	if regs := mustCompare(t, baseline, wiggle, Options{TimeTolerance: 0.1}).Regressions(); len(regs) != 1 {
		t.Errorf("at 10%% tolerance regressions = %+v, want the +20%% marshal", regs)
	}
}

// TestCompareHigherIsBetter: halving a throughput metric is a regression even
// though the raw number went down.
func TestCompareHigherIsBetter(t *testing.T) {
	halved := strings.Replace(baseline, `"msgs_per_sec": 50000`, `"msgs_per_sec": 25000`, 1)
	regs := mustCompare(t, baseline, halved, Options{}).Regressions()
	if len(regs) != 1 || regs[0].Key != "wire.msgs_per_sec" {
		t.Fatalf("regressions = %+v, want halved msgs_per_sec", regs)
	}
	// Halved throughput scores in the slowdown domain: old/new - 1 = 1.0,
	// the same as a doubled latency.
	if regs[0].Direction != HigherIsBetter || regs[0].WorseFrac != 1.0 {
		t.Errorf("delta = %+v, want higher-is-better WorseFrac 1.0", regs[0])
	}
}

// TestCompareAllocTolerance: allocs gate tighter than times (default 25%).
func TestCompareAllocTolerance(t *testing.T) {
	moreAllocs := strings.Replace(baseline, `"marshal_allocs_op": 2`, `"marshal_allocs_op": 3`, 1)
	regs := mustCompare(t, baseline, moreAllocs, Options{}).Regressions()
	if len(regs) != 1 || regs[0].Key != "wire.marshal_allocs_op" {
		t.Fatalf("regressions = %+v, want +50%% allocs over the 25%% gate", regs)
	}
}

// TestCompareInformationalKeysNeverGate: workers/wall_seconds style keys are
// context, not gates — even a wild swing passes.
func TestCompareInformationalKeysNeverGate(t *testing.T) {
	swung := strings.Replace(baseline, `"workers": 8`, `"workers": 64`, 1)
	if regs := mustCompare(t, baseline, swung, Options{}).Regressions(); len(regs) != 0 {
		t.Errorf("informational key gated: %+v", regs)
	}
}

func TestFlattenNamedArrays(t *testing.T) {
	doc := `{"codecs": [
		{"codec": "dense", "encode_ns_op": 10},
		{"codec": "topk", "encode_ns_op": 20}
	], "plain": [1, 2]}`
	flat, err := Flatten([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]float64{
		"codecs.dense.encode_ns_op": 10,
		"codecs.topk.encode_ns_op":  20,
		"plain.0":                   1,
		"plain.1":                   2,
	} {
		if got, ok := flat[key]; !ok || got != want {
			t.Errorf("flat[%q] = %v (present=%v), want %v", key, got, ok, want)
		}
	}
}

func TestCompareReportsOnlyKeys(t *testing.T) {
	gained := strings.Replace(baseline, `"workers": 8`, `"workers": 8, "new_metric_ns": 5`, 1)
	res := mustCompare(t, baseline, gained, Options{})
	if len(res.NewOnly) != 1 || res.NewOnly[0] != "des.new_metric_ns" {
		t.Errorf("NewOnly = %v", res.NewOnly)
	}
	res = mustCompare(t, gained, baseline, Options{})
	if len(res.OldOnly) != 1 || res.OldOnly[0] != "des.new_metric_ns" {
		t.Errorf("OldOnly = %v", res.OldOnly)
	}
}

// TestCommittedBaselineSelfCompares: the checked-in BENCH_perf.json must be
// valid input to the gate and compare clean against itself.
func TestCommittedBaselineSelfCompares(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_perf.json")
	if err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	res := mustCompare(t, string(data), string(data), Options{})
	if regs := res.Regressions(); len(regs) != 0 {
		t.Errorf("baseline regresses against itself: %+v", regs)
	}
	if len(res.Deltas) == 0 {
		t.Error("baseline flattened to zero metrics")
	}
}
