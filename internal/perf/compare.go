// Package perf diffs two BENCH_*.json reports so CI can gate on performance
// regressions: the committed baseline is the perf trajectory, and every run
// compares its fresh numbers against it.
//
// Reports are arbitrary JSON; Flatten walks them and keeps every numeric
// leaf under a dotted path (array elements keyed by their "name"/"codec"/
// "job" field when present, by index otherwise). Metric direction is
// inferred from the key name — ns/alloc/byte/second-like keys must not grow,
// *_per_sec-like keys must not shrink — and everything else is reported
// informationally but never gated.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Direction classifies how a metric is gated.
type Direction int

// Metric directions.
const (
	// Informational metrics are shown in the diff but never fail a compare.
	Informational Direction = iota
	// LowerIsBetter gates latency/allocation-like metrics against growth.
	LowerIsBetter
	// HigherIsBetter gates throughput-like metrics against shrinkage.
	HigherIsBetter
)

func (d Direction) String() string {
	switch d {
	case LowerIsBetter:
		return "lower-better"
	case HigherIsBetter:
		return "higher-better"
	default:
		return "info"
	}
}

// Options tunes the gate thresholds.
type Options struct {
	// TimeTolerance is the allowed fractional regression on time- and
	// throughput-like metrics (0.5 = the new value may be up to 50% worse
	// before the compare fails). Zero selects the default 0.5, so a 2×
	// regression always fails an unconfigured compare.
	TimeTolerance float64
	// AllocTolerance is the allowed fractional regression on allocation
	// counts, which are deterministic and therefore gated tighter. Zero
	// selects the default 0.25.
	AllocTolerance float64
}

func (o Options) withDefaults() Options {
	if o.TimeTolerance <= 0 {
		o.TimeTolerance = 0.5
	}
	if o.AllocTolerance <= 0 {
		o.AllocTolerance = 0.25
	}
	return o
}

// Delta is one metric's comparison row.
type Delta struct {
	Key       string
	Old, New  float64
	Direction Direction
	Tolerance float64 // fractional worsening allowed; 0 for informational
	// WorseFrac is the fractional worsening in the slowdown domain, sign-
	// normalized so positive is worse regardless of direction: (new-old)/old
	// for lower-better, old/new - 1 for higher-better (a halved throughput
	// scores 1.0, same as a doubled latency).
	WorseFrac float64
	Regressed bool
}

// Result is a full report comparison.
type Result struct {
	Deltas  []Delta
	OldOnly []string // keys present only in the baseline
	NewOnly []string // keys present only in the new report
}

// Regressions returns the deltas that exceeded their tolerance.
func (r *Result) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// Flatten extracts every numeric leaf of a JSON document into dotted-path
// keys.
func Flatten(data []byte) (map[string]float64, error) {
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	flattenInto(out, "", v)
	return out, nil
}

func flattenInto(out map[string]float64, prefix string, v any) {
	switch t := v.(type) {
	case float64:
		out[prefix] = t
	case map[string]any:
		for k, sub := range t {
			flattenInto(out, joinKey(prefix, k), sub)
		}
	case []any:
		for i, sub := range t {
			flattenInto(out, joinKey(prefix, elemKey(sub, i)), sub)
		}
	}
}

func joinKey(prefix, k string) string {
	if prefix == "" {
		return k
	}
	return prefix + "." + k
}

// elemKey names one array element: by its identifying string field when the
// element is an object carrying one, by position otherwise, so reordering a
// named results table does not shuffle the comparison.
func elemKey(v any, i int) string {
	if m, ok := v.(map[string]any); ok {
		for _, field := range []string{"name", "codec", "job", "id"} {
			if s, ok := m[field].(string); ok && s != "" {
				return s
			}
		}
	}
	return fmt.Sprintf("%d", i)
}

// Classify infers a metric's gate direction from its key name.
func Classify(key string) Direction {
	last := key
	if i := strings.LastIndex(key, "."); i >= 0 {
		last = key[i+1:]
	}
	switch {
	case strings.Contains(last, "per_sec"), strings.Contains(last, "throughput"):
		return HigherIsBetter
	case strings.Contains(last, "ns_"), strings.Contains(last, "_ns"),
		strings.Contains(last, "allocs"), strings.Contains(last, "bytes_per"),
		strings.Contains(last, "seconds_per"), strings.Contains(last, "wall_seconds"):
		return LowerIsBetter
	default:
		return Informational
	}
}

func isAllocKey(key string) bool {
	return strings.Contains(key, "allocs")
}

// Compare diffs two JSON reports and gates each shared metric by its
// inferred direction.
func Compare(oldJSON, newJSON []byte, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	oldM, err := Flatten(oldJSON)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	newM, err := Flatten(newJSON)
	if err != nil {
		return nil, fmt.Errorf("new report: %w", err)
	}
	res := &Result{}
	keys := make([]string, 0, len(oldM))
	for k := range oldM {
		if _, ok := newM[k]; ok {
			keys = append(keys, k)
		} else {
			res.OldOnly = append(res.OldOnly, k)
		}
	}
	for k := range newM {
		if _, ok := oldM[k]; !ok {
			res.NewOnly = append(res.NewOnly, k)
		}
	}
	sort.Strings(keys)
	sort.Strings(res.OldOnly)
	sort.Strings(res.NewOnly)
	for _, k := range keys {
		d := Delta{Key: k, Old: oldM[k], New: newM[k], Direction: Classify(k)}
		if d.Direction != Informational && d.Old != 0 {
			switch d.Direction {
			case LowerIsBetter:
				d.WorseFrac = (d.New - d.Old) / d.Old
			case HigherIsBetter:
				// Expressed in the slowdown domain so a halved throughput
				// scores the same 1.0 as a doubled latency: old/new - 1.
				if d.New > 0 {
					d.WorseFrac = d.Old/d.New - 1
				} else {
					d.WorseFrac = math.Inf(1)
				}
			}
			d.Tolerance = opts.TimeTolerance
			if isAllocKey(k) {
				d.Tolerance = opts.AllocTolerance
			}
			d.Regressed = d.WorseFrac > d.Tolerance
		}
		res.Deltas = append(res.Deltas, d)
	}
	return res, nil
}

// Render writes the comparison as an aligned table, regressions marked.
func (r *Result) Render(w io.Writer) {
	fmt.Fprintf(w, "%-52s %14s %14s %9s  %s\n", "metric", "old", "new", "delta", "verdict")
	for _, d := range r.Deltas {
		verdict := d.Direction.String()
		if d.Direction != Informational {
			verdict = "ok"
			if d.Regressed {
				verdict = fmt.Sprintf("REGRESSED (>%.0f%%)", d.Tolerance*100)
			}
		}
		delta := "-"
		if d.Old != 0 {
			delta = fmt.Sprintf("%+.1f%%", (d.New-d.Old)/d.Old*100)
		}
		fmt.Fprintf(w, "%-52s %14.4g %14.4g %9s  %s\n", d.Key, d.Old, d.New, delta, verdict)
	}
	for _, k := range r.OldOnly {
		fmt.Fprintf(w, "%-52s only in baseline\n", k)
	}
	for _, k := range r.NewOnly {
		fmt.Fprintf(w, "%-52s only in new report\n", k)
	}
}
