package core

import (
	"testing"
	"time"

	"specsync/internal/des"
	"specsync/internal/metrics"
	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/scheme"
	"specsync/internal/trace"
	"specsync/internal/wire"
)

// beatWorker sends heartbeats on a fixed period without ever notifying,
// modeling a live-but-slow worker.
type beatWorker struct {
	every time.Duration
}

func (b *beatWorker) Init(ctx node.Context) {
	var beat func()
	beat = func() {
		ctx.Send(node.Scheduler, &msg.Heartbeat{})
		ctx.After(b.every, beat)
	}
	ctx.After(b.every, beat)
}

func (b *beatWorker) Receive(from node.ID, m wire.Message) {}

func TestSchedulerLivenessEviction(t *testing.T) {
	// Worker 2 falls silent; the detector must evict it, the epoch must then
	// close on the two live workers alone, and the speculation threshold
	// must shrink to aliveN*rate. A run with the detector disabled is the
	// control: no eviction, no epoch, no re-sync.
	cases := []struct {
		name        string
		timeout     time.Duration
		wantEvicted bool
		wantEpochs  int
		wantResyncs []int64 // worker 0's re-synced iterations
	}{
		// threshold = m*rate = 1.5; the single peer push in each window is
		// never enough, and the silent worker keeps every epoch open.
		{name: "no-detector", timeout: 0, wantEvicted: false, wantEpochs: 0, wantResyncs: nil},
		// Worker 2 is evicted at the t=1.8s sweep. The epoch then closes on
		// the two live pushes already recorded, and worker 0's post-eviction
		// window (armed at 2s) carries threshold aliveN*rate = 1.0, so
		// worker 1's single push at 2.2s fires the re-sync.
		{name: "detector", timeout: 1200 * time.Millisecond, wantEvicted: true, wantEpochs: 2, wantResyncs: []int64{2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			collector := trace.NewCollector()
			faults := metrics.NewFaults(msg.IsControl)
			ws := []*scriptWorker{
				{notifies: []time.Duration{900 * time.Millisecond, 2 * time.Second}},
				{notifies: []time.Duration{950 * time.Millisecond, 2200 * time.Millisecond}},
				{}, // silent
			}
			sim, sched := buildSim(t, SchedulerConfig{
				Workers: 3,
				Scheme: scheme.Config{
					Base: scheme.ASP, Spec: scheme.SpecFixed,
					AbortTime: time.Second, AbortRate: 0.5,
				},
				InitialSpan:     10 * time.Second,
				Tracer:          collector,
				LivenessTimeout: tc.timeout,
				Faults:          faults,
			}, ws)
			// Stop before workers 0/1 themselves go stale (the sweep after
			// their final notifies is at t=2.4s).
			sim.RunFor(2300 * time.Millisecond)

			alive := sched.Alive()
			if alive[2] == tc.wantEvicted {
				t.Errorf("alive[2] = %v, want %v", alive[2], !tc.wantEvicted)
			}
			if alive[0] != true || alive[1] != true {
				t.Errorf("live workers evicted: alive = %v", alive)
			}
			if got := sched.Epoch(); got != tc.wantEpochs {
				t.Errorf("epochs = %d, want %d", got, tc.wantEpochs)
			}
			if len(ws[0].resyncs) != len(tc.wantResyncs) {
				t.Errorf("worker 0 resyncs = %v, want %v", ws[0].resyncs, tc.wantResyncs)
			}
			evicts := collector.Count(trace.KindEvict)
			if tc.wantEvicted && evicts != 1 {
				t.Errorf("evict trace events = %d, want 1", evicts)
			}
			if !tc.wantEvicted && evicts != 0 {
				t.Errorf("evict trace events = %d, want 0", evicts)
			}
			if st := faults.Stats(); st.Evictions != boolToInt64(tc.wantEvicted) {
				t.Errorf("eviction counter = %d, want %d", st.Evictions, boolToInt64(tc.wantEvicted))
			}
		})
	}
}

func boolToInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func TestSchedulerReadmission(t *testing.T) {
	// Worker 2 is silent long enough to be evicted, then notifies at t=2s:
	// it must rejoin membership, with one evict and one recover on record.
	collector := trace.NewCollector()
	faults := metrics.NewFaults(msg.IsControl)
	// Workers 0 and 1 notify every 200 ms (well under the timeout) so only
	// worker 2 — silent until t=2s — trips the detector.
	steady := func() []time.Duration {
		var out []time.Duration
		for at := 200 * time.Millisecond; at <= 2200*time.Millisecond; at += 200 * time.Millisecond {
			out = append(out, at)
		}
		return out
	}
	ws := []*scriptWorker{
		{notifies: steady()},
		{notifies: steady()},
		{notifies: []time.Duration{2 * time.Second}},
	}
	sim, sched := buildSim(t, SchedulerConfig{
		Workers:         3,
		Scheme:          scheme.Config{Base: scheme.ASP},
		InitialSpan:     time.Second,
		Tracer:          collector,
		LivenessTimeout: 300 * time.Millisecond,
		Faults:          faults,
	}, ws)
	// Stop before worker 2 goes stale a second time (next sweep past
	// 2s+300ms is at 2.4s).
	sim.RunFor(2300 * time.Millisecond)

	alive := sched.Alive()
	if !alive[0] || !alive[1] || !alive[2] {
		t.Errorf("final membership = %v, want all alive", alive)
	}
	var evicts2, recovers2 int
	for _, ev := range collector.Events() {
		if ev.Worker != 2 {
			continue
		}
		switch ev.Kind {
		case trace.KindEvict:
			evicts2++
		case trace.KindRecover:
			recovers2++
		}
	}
	if evicts2 != 1 || recovers2 != 1 {
		t.Errorf("worker 2 evicts/recovers = %d/%d, want 1/1", evicts2, recovers2)
	}
	if st := faults.Stats(); st.Readmissions < 1 {
		t.Errorf("readmission counter = %d, want >= 1", st.Readmissions)
	}
	if sched.MembershipEpoch() < 2 {
		t.Errorf("membership epoch = %d, want >= 2", sched.MembershipEpoch())
	}
}

func TestSchedulerHeartbeatPreventsEviction(t *testing.T) {
	// A worker that heartbeats but never notifies (alive, making no
	// progress) must stay in membership; without heartbeats it is evicted.
	cases := []struct {
		name      string
		worker2   node.Handler
		wantAlive bool
	}{
		{name: "heartbeats", worker2: &beatWorker{every: 100 * time.Millisecond}, wantAlive: true},
		{name: "silent", worker2: &scriptWorker{}, wantAlive: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sched, err := NewScheduler(SchedulerConfig{
				Workers:         3,
				Scheme:          scheme.Config{Base: scheme.ASP},
				InitialSpan:     time.Second,
				LivenessTimeout: 300 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			sim := buildMixedSim(t, sched, []node.Handler{
				&scriptWorker{notifies: []time.Duration{500 * time.Millisecond, 900 * time.Millisecond}},
				&scriptWorker{notifies: []time.Duration{600 * time.Millisecond, 1000 * time.Millisecond}},
				tc.worker2,
			})
			sim.RunFor(2 * time.Second)
			if got := sched.Alive()[2]; got != tc.wantAlive {
				t.Errorf("alive[2] = %v, want %v", got, tc.wantAlive)
			}
		})
	}
}

func TestSchedulerBSPBarrierSurvivesEviction(t *testing.T) {
	// Under BSP a dead worker would stall the barrier forever; eviction must
	// release the waiting workers.
	ws := []*scriptWorker{
		{notifies: []time.Duration{100 * time.Millisecond}},
		{notifies: []time.Duration{120 * time.Millisecond}},
		{}, // never reaches the barrier
	}
	sim, _ := buildSim(t, SchedulerConfig{
		Workers:         3,
		Scheme:          scheme.Config{Base: scheme.BSP},
		InitialSpan:     time.Second,
		LivenessTimeout: 300 * time.Millisecond,
	}, ws)
	sim.RunFor(2 * time.Second)
	if len(ws[0].releases) == 0 || len(ws[1].releases) == 0 {
		t.Errorf("barrier never released after eviction: releases = %v / %v",
			ws[0].releases, ws[1].releases)
	}
}

// buildMixedSim mirrors buildSim but accepts arbitrary worker handlers.
func buildMixedSim(t *testing.T, sched *Scheduler, workers []node.Handler) *des.Sim {
	t.Helper()
	sim, err := des.New(des.Config{Seed: 1, Registry: msg.Registry()})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AddNode(node.Scheduler, sched); err != nil {
		t.Fatal(err)
	}
	for i, w := range workers {
		if err := sim.AddNode(node.WorkerID(i), w); err != nil {
			t.Fatal(err)
		}
	}
	sim.Init()
	return sim
}
