package core

import (
	"testing"
	"time"

	"specsync/internal/des"
	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/scheme"
	"specsync/internal/trace"
	"specsync/internal/wire"
)

// scriptWorker is a minimal worker stand-in that sends Notify messages at
// scripted times and records what the scheduler sends back.
type scriptWorker struct {
	ctx      node.Context
	notifies []time.Duration // offsets from start, one Notify{iter} each
	resyncs  []int64
	releases []int64
	clocks   []int64
	started  bool
}

func (s *scriptWorker) Init(ctx node.Context) {
	s.ctx = ctx
	for i, d := range s.notifies {
		iter := int64(i)
		ctx.After(d, func() {
			ctx.Send(node.Scheduler, &msg.Notify{Iter: iter})
		})
	}
}

func (s *scriptWorker) Receive(from node.ID, m wire.Message) {
	switch mm := m.(type) {
	case *msg.Start:
		s.started = true
	case *msg.ReSync:
		s.resyncs = append(s.resyncs, mm.Iter)
	case *msg.BarrierRelease:
		s.releases = append(s.releases, mm.Round)
	case *msg.MinClock:
		s.clocks = append(s.clocks, mm.Clock)
	}
}

func buildSim(t *testing.T, cfg SchedulerConfig, workers []*scriptWorker) (*des.Sim, *Scheduler) {
	t.Helper()
	sim, err := des.New(des.Config{Seed: 1, Registry: msg.Registry()})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AddNode(node.Scheduler, sched); err != nil {
		t.Fatal(err)
	}
	for i, w := range workers {
		if err := sim.AddNode(node.WorkerID(i), w); err != nil {
			t.Fatal(err)
		}
	}
	sim.Init()
	return sim, sched
}

func TestSchedulerValidation(t *testing.T) {
	if _, err := NewScheduler(SchedulerConfig{Workers: 0, Scheme: scheme.Config{Base: scheme.ASP}, InitialSpan: time.Second}); err == nil {
		t.Error("expected error for 0 workers")
	}
	if _, err := NewScheduler(SchedulerConfig{Workers: 2, Scheme: scheme.Config{Base: scheme.ASP}, InitialSpan: 0}); err == nil {
		t.Error("expected error for zero InitialSpan")
	}
	if _, err := NewScheduler(SchedulerConfig{Workers: 2, Scheme: scheme.Config{Base: 0}, InitialSpan: time.Second}); err == nil {
		t.Error("expected error for bad scheme")
	}
}

func TestSchedulerSendsStart(t *testing.T) {
	ws := []*scriptWorker{{}, {}}
	sim, _ := buildSim(t, SchedulerConfig{
		Workers: 2, Scheme: scheme.Config{Base: scheme.ASP}, InitialSpan: time.Second,
	}, ws)
	sim.RunUntilIdle(time.Second)
	for i, w := range ws {
		if !w.started {
			t.Errorf("worker %d never received Start", i)
		}
	}
}

func TestSpecFixedIssuesReSync(t *testing.T) {
	// Worker 0 notifies at t=1s; workers 1 and 2 notify at 1.2s and 1.4s —
	// inside worker 0's 1s window. With rate 0.5 (threshold 1.5 of m=3),
	// the 2 peer pushes trigger a re-sync for iteration 1.
	collector := trace.NewCollector()
	ws := []*scriptWorker{
		{notifies: []time.Duration{time.Second}},
		{notifies: []time.Duration{1200 * time.Millisecond}},
		{notifies: []time.Duration{1400 * time.Millisecond}},
	}
	sim, sched := buildSim(t, SchedulerConfig{
		Workers: 3,
		Scheme: scheme.Config{
			Base: scheme.ASP, Spec: scheme.SpecFixed,
			AbortTime: time.Second, AbortRate: 0.5,
		},
		InitialSpan: 10 * time.Second,
		Tracer:      collector,
	}, ws)
	sim.RunUntilIdle(time.Minute)

	if len(ws[0].resyncs) != 1 || ws[0].resyncs[0] != 1 {
		t.Errorf("worker 0 resyncs = %v, want [1]", ws[0].resyncs)
	}
	if sched.ReSyncsSent() < 1 {
		t.Error("scheduler counted no re-syncs")
	}
	if collector.Count(trace.KindReSync) < 1 {
		t.Error("no resync trace event")
	}
	// Worker 2's window saw no later pushes; no re-sync for it.
	if len(ws[2].resyncs) != 0 {
		t.Errorf("worker 2 resyncs = %v, want none", ws[2].resyncs)
	}
}

func TestSpecFixedBelowThresholdNoReSync(t *testing.T) {
	// Only one peer push inside the window; threshold m*rate = 2.4.
	ws := []*scriptWorker{
		{notifies: []time.Duration{time.Second}},
		{notifies: []time.Duration{1300 * time.Millisecond}},
		{notifies: []time.Duration{5 * time.Second}},
	}
	sim, _ := buildSim(t, SchedulerConfig{
		Workers: 3,
		Scheme: scheme.Config{
			Base: scheme.ASP, Spec: scheme.SpecFixed,
			AbortTime: time.Second, AbortRate: 0.8,
		},
		InitialSpan: 10 * time.Second,
	}, ws)
	sim.RunUntilIdle(time.Minute)
	if len(ws[0].resyncs) != 0 {
		t.Errorf("worker 0 resyncs = %v, want none", ws[0].resyncs)
	}
}

func TestSchedulerEpochTracking(t *testing.T) {
	// Worker 0 pushes 3x, worker 1 pushes 2x: epochs complete when both
	// have pushed — twice here.
	ws := []*scriptWorker{
		{notifies: []time.Duration{1 * time.Second, 2 * time.Second, 3 * time.Second}},
		{notifies: []time.Duration{1500 * time.Millisecond, 3500 * time.Millisecond}},
	}
	collector := trace.NewCollector()
	sim, sched := buildSim(t, SchedulerConfig{
		Workers: 2, Scheme: scheme.Config{Base: scheme.ASP},
		InitialSpan: time.Second, Tracer: collector,
	}, ws)
	sim.RunUntilIdle(time.Minute)
	if got := sched.Epoch(); got != 2 {
		t.Errorf("Epoch = %d, want 2", got)
	}
	if got := collector.Count(trace.KindEpoch); got != 2 {
		t.Errorf("epoch events = %d, want 2", got)
	}
}

func TestSchedulerBSPBarrier(t *testing.T) {
	ws := []*scriptWorker{
		{notifies: []time.Duration{1 * time.Second}},
		{notifies: []time.Duration{2 * time.Second}},
	}
	sim, _ := buildSim(t, SchedulerConfig{
		Workers: 2, Scheme: scheme.Config{Base: scheme.BSP},
		InitialSpan: time.Second,
	}, ws)
	sim.RunUntilIdle(time.Minute)
	// The release must arrive only after BOTH notifies, i.e. round 1 once.
	for i, w := range ws {
		if len(w.releases) != 1 || w.releases[0] != 1 {
			t.Errorf("worker %d releases = %v, want [1]", i, w.releases)
		}
	}
}

func TestSchedulerSSPMinClock(t *testing.T) {
	ws := []*scriptWorker{
		{notifies: []time.Duration{1 * time.Second, 2 * time.Second}},
		{notifies: []time.Duration{3 * time.Second}},
	}
	sim, _ := buildSim(t, SchedulerConfig{
		Workers: 2, Scheme: scheme.Config{Base: scheme.SSP, Staleness: 2},
		InitialSpan: time.Second,
	}, ws)
	sim.RunUntilIdle(time.Minute)
	// Min clock rises to 1 only when the slow worker finishes its first
	// iteration at t=3s.
	if len(ws[0].clocks) == 0 {
		t.Fatal("no MinClock broadcast")
	}
	last := ws[0].clocks[len(ws[0].clocks)-1]
	if last != 1 {
		t.Errorf("final min clock = %d, want 1", last)
	}
}

func TestSchedulerAdaptiveTunesAtEpoch(t *testing.T) {
	// Build a bursty pattern over two epochs and verify the tuner runs and
	// enables speculation with a positive window.
	mk := func(offsets ...int) []time.Duration {
		out := make([]time.Duration, len(offsets))
		for i, o := range offsets {
			out[i] = time.Duration(o) * time.Millisecond
		}
		return out
	}
	ws := []*scriptWorker{
		{notifies: mk(1000, 2000, 3000, 4000)},
		{notifies: mk(1100, 2100, 3100, 4100)},
		{notifies: mk(1200, 2200, 3200, 4200)},
	}
	var tunings []Tuning
	sim, sched := buildSim(t, SchedulerConfig{
		Workers: 3,
		Scheme:  scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive},
		// Nominal span 1s (matches the scripted cadence).
		InitialSpan: time.Second,
		OnTune:      func(epoch int, tn Tuning) { tunings = append(tunings, tn) },
	}, ws)
	sim.RunUntilIdle(time.Minute)

	if len(tunings) == 0 {
		t.Fatal("adaptive scheduler never tuned")
	}
	enabled, abortTime, rates := sched.Hyperparameters()
	found := false
	for _, tn := range tunings {
		if tn.Enabled {
			found = true
			if tn.AbortTime <= 0 {
				t.Errorf("enabled tuning with non-positive window: %+v", tn)
			}
		}
	}
	if !found {
		t.Logf("final state: enabled=%v abortTime=%v rates=%v", enabled, abortTime, rates)
		t.Error("no tuning pass enabled speculation despite bursty pushes")
	}
}

func TestSchedulerSpanEstimates(t *testing.T) {
	ws := []*scriptWorker{
		{notifies: mkDur(1000, 3000, 5000)}, // 2s spans
		{notifies: mkDur(1000, 2000, 3000)}, // 1s spans
	}
	sim, sched := buildSim(t, SchedulerConfig{
		Workers: 2, Scheme: scheme.Config{Base: scheme.ASP},
		InitialSpan: 1500 * time.Millisecond,
	}, ws)
	sim.RunUntilIdle(time.Minute)
	spans := sched.SpanEstimates()
	if !(spans[0] > spans[1]) {
		t.Errorf("span EWMA ordering wrong: %v", spans)
	}
}

func mkDur(offsets ...int) []time.Duration {
	out := make([]time.Duration, len(offsets))
	for i, o := range offsets {
		out[i] = time.Duration(o) * time.Millisecond
	}
	return out
}
