// Package core implements the paper's primary contribution: the SpecSync
// centralized scheduler (Algorithm 2, scheduler side) and the adaptive
// hyperparameter tuner (Algorithm 1) that maximizes the estimated freshness
// improvement of Eq. (7).
package core

import (
	"fmt"
	"sort"
	"time"
)

// PushRecord is one observed push (notify) event.
type PushRecord struct {
	At     time.Time
	Worker int
}

// TunerConfig bounds the tuner's search.
type TunerConfig struct {
	// Workers is the cluster size m.
	Workers int
	// MinAbort clamps the smallest usable ABORT_TIME. Below ~2x network
	// latency a speculation window cannot observe anything; zero means no
	// floor.
	MinAbort time.Duration
	// MaxAbort clamps the largest candidate. The paper's grid search uses
	// half of the iteration time as its upper bound; the cluster harness
	// passes the same here. Zero means no ceiling.
	MaxAbort time.Duration
	// MaxCandidates caps the candidate set by even sub-sampling, bounding
	// tuning cost on epochs with many pushes. Zero means unlimited.
	MaxCandidates int
	// Alive[i], when non-nil, marks which workers are current cluster
	// members. Evicted workers contribute nothing: their stale pulls seed no
	// candidate windows, their historical pushes are not counted as expected
	// gains, and their rates come back zero. Nil means all Workers alive.
	Alive []bool
}

// Tuning is the tuner's output: the new hyperparameters for one epoch.
type Tuning struct {
	// Enabled is false when no candidate yields a positive estimated
	// freshness improvement; speculation pauses for the epoch.
	Enabled bool
	// AbortTime is the chosen speculation window Delta*.
	AbortTime time.Duration
	// Rates[i] is worker i's ABORT_RATE: Delta*(m-1) / (T_i * m). A worker
	// aborts when the number of peer pushes observed in its window reaches
	// m*Rates[i] (paper Algorithm 2 line 9).
	Rates []float64
	// Improvement is the estimated overall freshness improvement F~(Delta*)
	// of Eq. (7) at the chosen window.
	Improvement float64
	// Candidates is the number of distinct windows evaluated.
	Candidates int
}

// Tune runs Algorithm 1. Inputs:
//
//   - history: every retained push, sorted by time ascending. Windows are
//     counted against this full list so that windows extending past the
//     epoch boundary still see the pushes that landed there.
//   - epochPushes: the pushes of the just-finished epoch; candidate windows
//     are the pairwise time gaps between them (the paper's observation that
//     the optimum right-aligns a window with some push).
//   - lastPull[i]: worker i's last pull time in the finished epoch. The
//     scheduler uses the notify timestamp as its proxy, because a worker
//     pulls immediately after pushing (Algorithm 2 worker lines 8-9).
//   - iterSpan[i]: worker i's estimated iteration span T_i.
//
// The freshness gain estimate is u~_i(Delta) = number of pushes by peers in
// (lastPull_i, lastPull_i + Delta] (Eq. 5, using the previous epoch as the
// predictor), and the loss estimate is Delta * (m-1) / T_i (Eq. 6).
func Tune(cfg TunerConfig, history, epochPushes []PushRecord, lastPull []time.Time, iterSpan []time.Duration) (Tuning, error) {
	m := cfg.Workers
	if m < 2 {
		return Tuning{}, fmt.Errorf("core: tuner needs at least 2 workers, got %d", m)
	}
	if cfg.Alive != nil && len(cfg.Alive) != m {
		return Tuning{}, fmt.Errorf("core: Alive sized %d, want %d", len(cfg.Alive), m)
	}
	alive := func(i int) bool { return cfg.Alive == nil || cfg.Alive[i] }
	aliveN := 0
	for i := 0; i < m; i++ {
		if alive(i) {
			aliveN++
		}
	}
	if aliveN < 2 {
		return Tuning{}, fmt.Errorf("core: tuner needs at least 2 live workers, got %d", aliveN)
	}
	if len(lastPull) != m || len(iterSpan) != m {
		return Tuning{}, fmt.Errorf("core: tuner inputs sized %d/%d, want %d", len(lastPull), len(iterSpan), m)
	}
	for i, span := range iterSpan {
		if alive(i) && span <= 0 {
			return Tuning{}, fmt.Errorf("core: worker %d has non-positive iteration span %v", i, span)
		}
	}
	if !sort.SliceIsSorted(history, func(i, j int) bool { return history[i].At.Before(history[j].At) }) {
		return Tuning{}, fmt.Errorf("core: history not sorted by time")
	}

	candidates := candidateWindows(cfg, epochPushes, lastPull)
	if len(candidates) == 0 {
		return Tuning{Enabled: false, Candidates: 0}, nil
	}

	// Index pushes for O(log n) window counting: all pushes and per-worker.
	// Pushes from evicted workers predict no future gain and are excluded.
	allTimes := make([]time.Time, 0, len(history))
	perWorker := make(map[int][]time.Time, m)
	for _, p := range history {
		if p.Worker >= 0 && p.Worker < m && !alive(p.Worker) {
			continue
		}
		allTimes = append(allTimes, p.At)
		perWorker[p.Worker] = append(perWorker[p.Worker], p.At)
	}

	countIn := func(ts []time.Time, after, upTo time.Time) int {
		lo := sort.Search(len(ts), func(i int) bool { return ts[i].After(after) })
		hi := sort.Search(len(ts), func(i int) bool { return ts[i].After(upTo) })
		return hi - lo
	}

	best := Tuning{Enabled: false, Candidates: len(candidates)}
	for _, delta := range candidates {
		var f float64
		for i := 0; i < m; i++ {
			if !alive(i) {
				continue
			}
			hi := lastPull[i].Add(delta)
			gain := countIn(allTimes, lastPull[i], hi) - countIn(perWorker[i], lastPull[i], hi)
			loss := float64(delta) * float64(aliveN-1) / float64(iterSpan[i])
			f += float64(gain) - loss
		}
		if !best.Enabled || f > best.Improvement {
			best.Enabled = true
			best.Improvement = f
			best.AbortTime = delta
		}
	}
	if best.Improvement <= 0 {
		// Even the best window loses more freshness than it gains; pause
		// speculation for the coming epoch.
		return Tuning{Enabled: false, Candidates: len(candidates)}, nil
	}

	best.Rates = make([]float64, m)
	for i := 0; i < m; i++ {
		if !alive(i) {
			continue // evicted workers keep a zero rate
		}
		best.Rates[i] = float64(best.AbortTime) * float64(aliveN-1) / (float64(iterSpan[i]) * float64(aliveN))
	}
	return best, nil
}

// candidateWindows produces the distinct gaps between each epoch push and
// each worker's last pull, clamped and optionally sub-sampled. The gain
// estimate u~_i(Delta) is a step function that increments exactly when
// lastPull_i + Delta crosses a push time, while the loss is linear in Delta,
// so the optimum right-aligns some worker's window with some push — i.e. it
// lies in this set. (Paper Algorithm 1 uses pairwise push gaps, which is the
// same set under its pull-follows-push proxy; using push-pull gaps keeps the
// search exact even when the two diverge.)
func candidateWindows(cfg TunerConfig, pushes []PushRecord, lastPull []time.Time) []time.Duration {
	alive := func(i int) bool { return cfg.Alive == nil || cfg.Alive[i] }
	set := make(map[time.Duration]struct{})
	for _, p := range pushes {
		if p.Worker >= 0 && p.Worker < len(lastPull) && !alive(p.Worker) {
			continue
		}
		for w, lp := range lastPull {
			if !alive(w) {
				continue
			}
			d := p.At.Sub(lp)
			if d <= 0 {
				continue
			}
			if cfg.MinAbort > 0 && d < cfg.MinAbort {
				continue
			}
			if cfg.MaxAbort > 0 && d > cfg.MaxAbort {
				continue
			}
			set[d] = struct{}{}
		}
	}
	out := make([]time.Duration, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if cfg.MaxCandidates > 0 && len(out) > cfg.MaxCandidates {
		sampled := make([]time.Duration, 0, cfg.MaxCandidates)
		step := float64(len(out)-1) / float64(cfg.MaxCandidates-1)
		for i := 0; i < cfg.MaxCandidates; i++ {
			sampled = append(sampled, out[int(float64(i)*step+0.5)])
		}
		out = sampled
	}
	return out
}
