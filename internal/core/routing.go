package core

import (
	"fmt"
	"sort"
)

// Routing: the epoch-stamped shard→server map that makes the parameter-server
// side of the cluster elastic. The scheduler owns the table; workers and
// servers only ever see committed versions of it (via JoinAck and
// RoutingUpdate), so a worker can always tell which server currently owns a
// parameter range. Epochs are totally ordered: a node ignores any table whose
// epoch is not newer than the one it holds.

// ShardRoute assigns the parameter range [Lo, Hi) to a server slot.
type ShardRoute struct {
	Lo, Hi int
	Server int
}

// Len returns the number of parameters in the route.
func (r ShardRoute) Len() int { return r.Hi - r.Lo }

// RoutingTable is a committed shard→server assignment. Shards are sorted by
// Lo and partition [0, Dim()) exactly.
type RoutingTable struct {
	Epoch  int64
	Shards []ShardRoute
}

// Dim returns the total parameter count covered by the table.
func (t *RoutingTable) Dim() int {
	if len(t.Shards) == 0 {
		return 0
	}
	return t.Shards[len(t.Shards)-1].Hi
}

// Validate checks that the shards are non-empty, contiguous from zero, and
// assign each range to a distinct non-negative server slot.
func (t *RoutingTable) Validate() error {
	if len(t.Shards) == 0 {
		return fmt.Errorf("core: routing table %d has no shards", t.Epoch)
	}
	seen := make(map[int]bool, len(t.Shards))
	next := 0
	for i, r := range t.Shards {
		if r.Lo != next || r.Hi <= r.Lo {
			return fmt.Errorf("core: routing table %d: shard %d range [%d,%d) not contiguous at %d", t.Epoch, i, r.Lo, r.Hi, next)
		}
		if r.Server < 0 {
			return fmt.Errorf("core: routing table %d: shard %d has negative server %d", t.Epoch, i, r.Server)
		}
		if seen[r.Server] {
			return fmt.Errorf("core: routing table %d: server %d owns two shards", t.Epoch, r.Server)
		}
		seen[r.Server] = true
		next = r.Hi
	}
	return nil
}

// Clone deep-copies the table.
func (t *RoutingTable) Clone() *RoutingTable {
	if t == nil {
		return nil
	}
	out := &RoutingTable{Epoch: t.Epoch, Shards: make([]ShardRoute, len(t.Shards))}
	copy(out.Shards, t.Shards)
	return out
}

// Servers returns the live server slots in ascending order.
func (t *RoutingTable) Servers() []int {
	out := make([]int, 0, len(t.Shards))
	for _, r := range t.Shards {
		out = append(out, r.Server)
	}
	sort.Ints(out)
	return out
}

// RangeOf returns the range owned by the given server slot, or ok=false when
// the slot owns nothing under this table.
func (t *RoutingTable) RangeOf(server int) (lo, hi int, ok bool) {
	for _, r := range t.Shards {
		if r.Server == server {
			return r.Lo, r.Hi, true
		}
	}
	return 0, 0, false
}

// SplitRoutes splits dim parameters evenly across the given server slots
// (remainder spread over the first shards), assigning the i-th range to
// servers[i] in slice order. The split matches ps.ShardRanges so a rebalance
// back to the original server set reproduces the original layout.
func SplitRoutes(dim int, servers []int) ([]ShardRoute, error) {
	n := len(servers)
	if n < 1 || dim < n {
		return nil, fmt.Errorf("core: cannot split %d params into %d shards", dim, n)
	}
	out := make([]ShardRoute, 0, n)
	per, extra := dim/n, dim%n
	lo := 0
	for i, srv := range servers {
		l := per
		if i < extra {
			l++
		}
		out = append(out, ShardRoute{Lo: lo, Hi: lo + l, Server: srv})
		lo += l
	}
	return out, nil
}

// TableToWire flattens a table into the parallel int32 slices carried by
// JoinAck and RoutingUpdate.
func TableToWire(t *RoutingTable) (lo, hi, srv []int32) {
	lo = make([]int32, len(t.Shards))
	hi = make([]int32, len(t.Shards))
	srv = make([]int32, len(t.Shards))
	for i, r := range t.Shards {
		lo[i], hi[i], srv[i] = int32(r.Lo), int32(r.Hi), int32(r.Server)
	}
	return lo, hi, srv
}

// TableFromWire rebuilds a table from wire slices, validating shape.
func TableFromWire(epoch int64, lo, hi, srv []int32) (*RoutingTable, error) {
	if len(lo) != len(hi) || len(lo) != len(srv) {
		return nil, fmt.Errorf("core: routing wire slices disagree: %d/%d/%d", len(lo), len(hi), len(srv))
	}
	t := &RoutingTable{Epoch: epoch, Shards: make([]ShardRoute, len(lo))}
	for i := range lo {
		t.Shards[i] = ShardRoute{Lo: int(lo[i]), Hi: int(hi[i]), Server: int(srv[i])}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
