package core

import (
	"fmt"
	"sort"
)

// Routing: the epoch-stamped shard→server map that makes the parameter-server
// side of the cluster elastic. The scheduler owns the table; workers and
// servers only ever see committed versions of it (via JoinAck and
// RoutingUpdate), so a worker can always tell which server currently owns a
// parameter range. Epochs are totally ordered: a node ignores any table whose
// epoch is not newer than the one it holds.

// ShardRoute assigns the parameter range [Lo, Hi) to a server slot. Job
// namespaces the range: in a multi-tenant fleet every job carves its own
// [0, dim_j) key space out of the shared server set, so [Lo, Hi) is an offset
// within job Job's space, not a global one. The zero Job is the single
// default tenant, which keeps every pre-fleet table meaning exactly what it
// always did.
type ShardRoute struct {
	Lo, Hi int
	Server int
	Job    int
}

// Len returns the number of parameters in the route.
func (r ShardRoute) Len() int { return r.Hi - r.Lo }

// RoutingTable is a committed shard→server assignment. Shards are sorted by
// Lo and partition [0, Dim()) exactly.
type RoutingTable struct {
	Epoch  int64
	Shards []ShardRoute
}

// Dim returns the total parameter count covered by the table.
func (t *RoutingTable) Dim() int {
	if len(t.Shards) == 0 {
		return 0
	}
	return t.Shards[len(t.Shards)-1].Hi
}

// Validate checks that the shards are non-empty and grouped into per-job
// blocks in ascending job order, that each job's ranges are contiguous from
// zero, and that within one job every range goes to a distinct non-negative
// server slot (a server may host one shard of each job, never two of the
// same job). A table whose shards all carry the zero Job is exactly the
// legacy single-tenant check.
func (t *RoutingTable) Validate() error {
	if len(t.Shards) == 0 {
		return fmt.Errorf("core: routing table %d has no shards", t.Epoch)
	}
	jtag := func(job int) string {
		if job == 0 {
			return ""
		}
		return fmt.Sprintf(" (job %d)", job)
	}
	seen := make(map[int]bool, len(t.Shards))
	next := 0
	curJob := t.Shards[0].Job
	for i, r := range t.Shards {
		if r.Job < 0 {
			return fmt.Errorf("core: routing table %d: shard %d has negative job %d", t.Epoch, i, r.Job)
		}
		if r.Job != curJob {
			if r.Job < curJob {
				return fmt.Errorf("core: routing table %d: shard %d: job %d block out of order after job %d", t.Epoch, i, r.Job, curJob)
			}
			curJob = r.Job
			next = 0
			seen = make(map[int]bool)
		}
		if r.Lo != next || r.Hi <= r.Lo {
			return fmt.Errorf("core: routing table %d: shard %d range [%d,%d) not contiguous at %d%s", t.Epoch, i, r.Lo, r.Hi, next, jtag(r.Job))
		}
		if r.Server < 0 {
			return fmt.Errorf("core: routing table %d: shard %d has negative server %d", t.Epoch, i, r.Server)
		}
		if seen[r.Server] {
			return fmt.Errorf("core: routing table %d: server %d owns two shards%s", t.Epoch, r.Server, jtag(r.Job))
		}
		seen[r.Server] = true
		next = r.Hi
	}
	return nil
}

// Jobs returns the distinct job IDs in the table, in block order.
func (t *RoutingTable) Jobs() []int {
	out := make([]int, 0, 1)
	for _, r := range t.Shards {
		if len(out) == 0 || out[len(out)-1] != r.Job {
			out = append(out, r.Job)
		}
	}
	return out
}

// JobShards returns the shard block belonging to one job (aliasing the
// table's backing array; callers must not mutate it).
func (t *RoutingTable) JobShards(job int) []ShardRoute {
	lo, hi := -1, -1
	for i, r := range t.Shards {
		if r.Job == job {
			if lo < 0 {
				lo = i
			}
			hi = i + 1
		}
	}
	if lo < 0 {
		return nil
	}
	return t.Shards[lo:hi]
}

// JobDim returns the parameter count of one job's namespaced range (zero for
// an unknown job).
func (t *RoutingTable) JobDim(job int) int {
	s := t.JobShards(job)
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1].Hi
}

// RangeOfJob returns the range the given server slot owns within one job's
// namespace, or ok=false when it owns nothing there.
func (t *RoutingTable) RangeOfJob(job, server int) (lo, hi int, ok bool) {
	for _, r := range t.JobShards(job) {
		if r.Server == server {
			return r.Lo, r.Hi, true
		}
	}
	return 0, 0, false
}

// Clone deep-copies the table.
func (t *RoutingTable) Clone() *RoutingTable {
	if t == nil {
		return nil
	}
	out := &RoutingTable{Epoch: t.Epoch, Shards: make([]ShardRoute, len(t.Shards))}
	copy(out.Shards, t.Shards)
	return out
}

// Servers returns the live server slots in ascending order.
func (t *RoutingTable) Servers() []int {
	out := make([]int, 0, len(t.Shards))
	for _, r := range t.Shards {
		out = append(out, r.Server)
	}
	sort.Ints(out)
	return out
}

// RangeOf returns the range owned by the given server slot, or ok=false when
// the slot owns nothing under this table.
func (t *RoutingTable) RangeOf(server int) (lo, hi int, ok bool) {
	for _, r := range t.Shards {
		if r.Server == server {
			return r.Lo, r.Hi, true
		}
	}
	return 0, 0, false
}

// SplitRoutes splits dim parameters evenly across the given server slots
// (remainder spread over the first shards), assigning the i-th range to
// servers[i] in slice order. The split matches ps.ShardRanges so a rebalance
// back to the original server set reproduces the original layout.
func SplitRoutes(dim int, servers []int) ([]ShardRoute, error) {
	n := len(servers)
	if n < 1 || dim < n {
		return nil, fmt.Errorf("core: cannot split %d params into %d shards", dim, n)
	}
	out := make([]ShardRoute, 0, n)
	per, extra := dim/n, dim%n
	lo := 0
	for i, srv := range servers {
		l := per
		if i < extra {
			l++
		}
		out = append(out, ShardRoute{Lo: lo, Hi: lo + l, Server: srv})
		lo += l
	}
	return out, nil
}

// SplitRoutesJob is SplitRoutes with every route stamped for one job's
// namespace. SplitRoutesJob(0, ...) is byte-identical to SplitRoutes: the
// epoch-0 single-job layout must match the static ps.ShardRanges split.
func SplitRoutesJob(job, dim int, servers []int) ([]ShardRoute, error) {
	routes, err := SplitRoutes(dim, servers)
	if err != nil {
		return nil, err
	}
	for i := range routes {
		routes[i].Job = job
	}
	return routes, nil
}

// TableToWire flattens a single-job table into the parallel int32 slices
// carried by JoinAck and RoutingUpdate. The Job dimension is not carried;
// multi-tenant tables travel through TableToWireJobs instead.
func TableToWire(t *RoutingTable) (lo, hi, srv []int32) {
	lo = make([]int32, len(t.Shards))
	hi = make([]int32, len(t.Shards))
	srv = make([]int32, len(t.Shards))
	for i, r := range t.Shards {
		lo[i], hi[i], srv[i] = int32(r.Lo), int32(r.Hi), int32(r.Server)
	}
	return lo, hi, srv
}

// TableFromWire rebuilds a table from wire slices, validating shape.
func TableFromWire(epoch int64, lo, hi, srv []int32) (*RoutingTable, error) {
	if len(lo) != len(hi) || len(lo) != len(srv) {
		return nil, fmt.Errorf("core: routing wire slices disagree: %d/%d/%d", len(lo), len(hi), len(srv))
	}
	t := &RoutingTable{Epoch: epoch, Shards: make([]ShardRoute, len(lo))}
	for i := range lo {
		t.Shards[i] = ShardRoute{Lo: int(lo[i]), Hi: int(hi[i]), Server: int(srv[i])}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// TableToWireJobs flattens a (possibly multi-tenant) table into four parallel
// int32 slices, adding the job dimension to the legacy three. For a
// single-job table the first three slices are byte-identical to TableToWire.
func TableToWireJobs(t *RoutingTable) (lo, hi, srv, job []int32) {
	lo, hi, srv = TableToWire(t)
	job = make([]int32, len(t.Shards))
	for i, r := range t.Shards {
		job[i] = int32(r.Job)
	}
	return lo, hi, srv, job
}

// TableFromWireJobs rebuilds a multi-tenant table from wire slices,
// validating shape and per-job layout.
func TableFromWireJobs(epoch int64, lo, hi, srv, job []int32) (*RoutingTable, error) {
	if len(lo) != len(hi) || len(lo) != len(srv) || len(lo) != len(job) {
		return nil, fmt.Errorf("core: routing wire slices disagree: %d/%d/%d/%d", len(lo), len(hi), len(srv), len(job))
	}
	t := &RoutingTable{Epoch: epoch, Shards: make([]ShardRoute, len(lo))}
	for i := range lo {
		t.Shards[i] = ShardRoute{Lo: int(lo[i]), Hi: int(hi[i]), Server: int(srv[i]), Job: int(job[i])}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
