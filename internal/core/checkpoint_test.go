package core

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"specsync/internal/scheme"
)

func sampleSnapshot() SchedulerSnapshot {
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	return SchedulerSnapshot{
		Generation:      2,
		Epoch:           7,
		MembershipEpoch: 3,
		EpochStart:      base,
		SpecEnabled:     true,
		AbortTime:       250 * time.Millisecond,
		Rates:           []float64{0.2, 0.25, 0.3},
		SpanEWMA:        []time.Duration{time.Second, 900 * time.Millisecond, 1100 * time.Millisecond},
		LastNotify:      []time.Time{base.Add(time.Second), {}, base.Add(2 * time.Second)},
		History: []PushRecord{
			{At: base.Add(500 * time.Millisecond), Worker: 0},
			{At: base.Add(1500 * time.Millisecond), Worker: 2},
		},
		Tunes:       4,
		NotifyCount: []int64{5, 4, 6},
		Pushed:      []bool{true, false, true},
		Alive:       []bool{true, true, false},
		Round:       5,
		Completed:   []int64{5, 4, 6},
		MinClock:    4,

		SchemeBase:      int(scheme.SSP),
		SchemeStaleness: 3,
		SchemeEpoch:     2,
		LastSwitchWhy:   "meta: 1 sustained straggler(s) → SSP(s=3)",
		LastSwitchAt:    base.Add(3 * time.Second),
	}
}

// normalizeTimes maps every timestamp to UTC: the wire codec decodes times in
// the local zone, which DeepEqual would treat as a difference.
func normalizeTimes(s SchedulerSnapshot) SchedulerSnapshot {
	s.EpochStart = s.EpochStart.UTC()
	s.LastNotify = append([]time.Time(nil), s.LastNotify...)
	for i := range s.LastNotify {
		s.LastNotify[i] = s.LastNotify[i].UTC()
	}
	s.History = append([]PushRecord(nil), s.History...)
	for i := range s.History {
		s.History[i].At = s.History[i].At.UTC()
	}
	s.LastSwitchAt = s.LastSwitchAt.UTC()
	return s
}

func TestSchedulerSnapshotRoundTrip(t *testing.T) {
	snap := sampleSnapshot()
	var buf bytes.Buffer
	if _, err := snap.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSchedulerSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeTimes(snap), normalizeTimes(got)) {
		t.Errorf("round trip mismatch:\n  wrote %+v\n  read  %+v", snap, got)
	}
}

func TestSchedulerSnapshotDecodeErrors(t *testing.T) {
	snap := sampleSnapshot()
	var buf bytes.Buffer
	if _, err := snap.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadSchedulerSnapshot(bytes.NewReader(data[:len(data)-2])); err == nil {
		t.Error("truncated checkpoint decoded without error")
	}
	if _, err := ReadSchedulerSnapshot(bytes.NewReader(append(append([]byte(nil), data...), 0xff))); err == nil {
		t.Error("trailing garbage decoded without error")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if _, err := ReadSchedulerSnapshot(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic decoded without error")
	}
}

func TestSchedulerRestoreRoundTrip(t *testing.T) {
	mk := func(gen int64) *Scheduler {
		s, err := NewScheduler(SchedulerConfig{
			Workers:     3,
			Scheme:      scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive},
			InitialSpan: time.Second,
			Generation:  gen,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	snap := sampleSnapshot()
	s := mk(snap.Generation)
	if err := s.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !s.Restored() {
		t.Error("Restored() = false after Restore")
	}
	if got := s.Snapshot(); !reflect.DeepEqual(snap, got) {
		t.Errorf("restore/snapshot mismatch:\n  restored %+v\n  snapshot %+v", snap, got)
	}

	// A snapshot from a differently sized cluster must be rejected.
	wrong := sampleSnapshot()
	wrong.Rates = wrong.Rates[:2]
	if err := mk(1).Restore(wrong); err == nil {
		t.Error("Restore accepted a snapshot with a mismatched worker count")
	}
}
