package core

import (
	"fmt"
	"sort"
	"time"

	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/obs"
	"specsync/internal/scheme"
	"specsync/internal/trace"
)

// Straggler mitigation: a periodic scheduler pass turns the straggler
// detector's sustained flags into action. Two actions exist, matching the
// two classic responses to stragglers in parameter-server training:
//
//   - clone: speculative execution. The straggler's next iteration is cloned
//     onto a spare worker; original and clone race, the servers apply
//     whichever push for a logical (worker, iter) arrives first and
//     acknowledge the loser without applying it (ps clone dedup), so the
//     model trajectory is exactly what one worker would have produced. The
//     clone's notifies reach the scheduler from its spare slot and are
//     translated onto the target (handleCloneNotify) so the barrier, the SSP
//     clock, and the epoch all see the target progressing.
//
//   - rebalance: membership surgery. The straggler is retired through the
//     elastic machinery (the planned-leave path) and a fresh worker is
//     spawned into a spare capacity slot, which joins via the ordinary
//     JoinReq handshake. Requires elastic membership (Routing != nil).
//
// The pass also closes the detector's blind spot: a fully paused worker
// emits no spans at all, so the span-scoring path never flags exactly the
// straggler that hurts most. Any live worker silent for OverdueFactor ×
// the fleet's median notify interval is force-flagged sustained before
// suspects are collected.

// Mitigation pass modes.
const (
	// MitigateObserve runs the detection pass (overdue force-flagging) but
	// takes no action — the unmitigated baseline with honest detector
	// scoring.
	MitigateObserve = "observe"
	// MitigateClone clones flagged stragglers onto spare workers.
	MitigateClone = "clone"
	// MitigateRebalance retires flagged stragglers and admits replacements.
	MitigateRebalance = "rebalance"
)

// MitigateConfig arms the scheduler's straggler-mitigation loop.
type MitigateConfig struct {
	// Mode is MitigateObserve, MitigateClone, or MitigateRebalance.
	Mode string
	// Base is the first spare worker slot (== the real worker count).
	// Workers must equal Base + Spares.
	Base int
	// Spares is how many spare slots are available. Slots are used at most
	// once: a stopped clone's slot is not recycled (its worker cannot be
	// restarted), so Spares bounds the total mitigation actions.
	Spares int
	// Every is the evaluation period; zero means 4 × InitialSpan.
	Every time.Duration
	// OverdueFactor × median-span of silence force-flags a worker as a
	// sustained straggler; zero means 4.
	OverdueFactor float64
	// OnClone builds and joins the clone node for slot, sharing target's
	// data shard, starting from iteration fromIter (clone mode; required).
	// The node must be receiving messages when OnClone returns.
	OnClone func(slot, target int, fromIter int64) error
	// OnSpawn builds and starts a fresh joining worker in slot, replacing
	// retired straggler target (rebalance mode; required). The worker
	// announces itself with JoinReq and inherits target's data shard so the
	// swap does not orphan part of the training set.
	OnSpawn func(slot, target int) error
	// Servers lists the server shard IDs that must hear CloneNotice
	// bindings before a clone starts (clone mode; required).
	Servers []node.ID
}

// validate checks the mitigation config against the scheduler sizing.
func (c *MitigateConfig) validate(workers int) error {
	switch c.Mode {
	case MitigateObserve, MitigateClone, MitigateRebalance:
	default:
		return fmt.Errorf("core: unknown mitigation mode %q", c.Mode)
	}
	if c.Mode != MitigateObserve {
		if c.Spares < 1 {
			return fmt.Errorf("core: mitigation mode %s needs at least 1 spare slot", c.Mode)
		}
		if c.Base < 1 || c.Base+c.Spares != workers {
			return fmt.Errorf("core: mitigation slots [%d,%d) must end at Workers=%d", c.Base, c.Base+c.Spares, workers)
		}
	}
	if c.Mode == MitigateClone && (c.OnClone == nil || len(c.Servers) == 0) {
		return fmt.Errorf("core: clone mitigation needs OnClone and the server list")
	}
	if c.Mode == MitigateRebalance && c.OnSpawn == nil {
		return fmt.Errorf("core: rebalance mitigation needs OnSpawn")
	}
	if c.OverdueFactor == 0 {
		c.OverdueFactor = 4
	}
	if c.OverdueFactor < 1 {
		return fmt.Errorf("core: OverdueFactor %v must be >= 1", c.OverdueFactor)
	}
	return nil
}

// mitigateState is the scheduler's mitigation bookkeeping.
type mitigateState struct {
	start     time.Time   // loop start; overdue baseline for never-notified workers
	cloneOf   []int       // per spare slot: target worker index, -1 idle, -2 spent
	cloneFor  map[int]int // target -> active spare slot
	selfIter  []int64     // per real worker: iterations completed by the worker ITSELF (clone notifies excluded)
	acted     map[int]bool
	usedSlots int
	clones    int64
	cloneStop int64
	rebal     int64
}

// MitigationStats reports the mitigation loop's cumulative actions.
type MitigationStats struct {
	Clones      int64 `json:"clones,omitempty"`
	CloneStops  int64 `json:"clone_stops,omitempty"`
	Rebalances  int64 `json:"rebalances,omitempty"`
	ActiveClone int   `json:"active_clones,omitempty"`
}

// MitigationStats returns the mitigation counters (meaningful once the sim
// has drained, like Alive).
func (s *Scheduler) MitigationStats() MitigationStats {
	if s.mit == nil {
		return MitigationStats{}
	}
	return MitigationStats{
		Clones:      s.mit.clones,
		CloneStops:  s.mit.cloneStop,
		Rebalances:  s.mit.rebal,
		ActiveClone: len(s.mit.cloneFor),
	}
}

// mitigateEvery resolves the evaluation period.
func (s *Scheduler) mitigateEvery() time.Duration {
	if s.cfg.Mitigate.Every > 0 {
		return s.cfg.Mitigate.Every
	}
	return 4 * s.cfg.InitialSpan
}

// armMitigate schedules the next mitigation pass.
func (s *Scheduler) armMitigate() {
	s.ctx.After(s.mitigateEvery(), func() {
		s.mitigateTick(s.ctx.Now())
		s.armMitigate()
	})
}

// cloneSlot reports whether worker index i is a clone-mode spare slot, whose
// traffic must be translated instead of treated as a member's.
func (s *Scheduler) cloneSlot(i int) bool {
	return s.mit != nil && s.cfg.Mitigate.Mode == MitigateClone && i >= s.cfg.Mitigate.Base
}

// mitigateTick is one evaluation pass: force-flag overdue workers, collect
// sustained suspects, act per mode, and retire clones whose target recovered.
func (s *Scheduler) mitigateTick(now time.Time) {
	s.forceOverdue(now)
	base := s.cfg.Mitigate.Base
	if base == 0 {
		base = s.m
	}
	for i := 0; i < base; i++ {
		if !s.alive[i] {
			continue
		}
		_, level, ok := s.cfg.Obs.StragglerFlag(i)
		sustained := ok && level == obs.StragglerSustained
		switch s.cfg.Mitigate.Mode {
		case MitigateClone:
			if slot, cloned := s.mit.cloneFor[i]; cloned {
				// Retiring the clone needs more than a cleared flag: after a
				// long pause the recovered original replays iterations far
				// behind the clone-driven frontier, and stopping the clone
				// then would park the whole fleet at a barrier the original
				// cannot satisfy for hundreds of rounds. The clone stays
				// until the original has itself caught up to the frontier.
				if !sustained && s.mit.selfIter[i] >= s.notifyCount[i] {
					s.stopClone(slot, i, now)
				}
			} else if sustained {
				s.startClone(i, now)
			}
		case MitigateRebalance:
			if sustained && !s.mit.acted[i] {
				s.rebalance(i, now)
			}
		}
	}
}

// forceOverdue flags live workers whose last notify is older than
// OverdueFactor × the fleet's median notify interval. Silence alone is not
// enough: under BSP (or at the SSP staleness gate) every healthy worker goes
// silent while parked waiting for the straggler, so only workers strictly
// behind the fleet's completed-iteration frontier are eligible — the parked
// majority sits at the frontier, the worker that is pinning it does not.
// The limit deliberately uses the notify-interval EWMA rather than
// worker-reported compute spans: when coordination stretches every round
// (a straggler pinning a barrier), healthy workers legitimately go silent
// for a whole round, so silence must be judged against how often the fleet
// actually notifies, not how fast it computes. The score reported is the
// silence measured in median intervals.
func (s *Scheduler) forceOverdue(now time.Time) {
	base := s.cfg.Mitigate.Base
	if base == 0 {
		base = s.m
	}
	spans := make([]float64, 0, base)
	frontier := int64(-1)
	for i := 0; i < base; i++ {
		if s.alive[i] {
			spans = append(spans, float64(s.spanEWMA[i]))
			if s.notifyCount[i] > frontier {
				frontier = s.notifyCount[i]
			}
		}
	}
	if len(spans) == 0 {
		return
	}
	sort.Float64s(spans)
	med := time.Duration(spans[len(spans)/2])
	if med <= 0 {
		med = s.cfg.InitialSpan
	}
	limit := time.Duration(s.cfg.Mitigate.OverdueFactor * float64(med))
	for i := 0; i < base; i++ {
		if !s.alive[i] || s.notifyCount[i] >= frontier {
			continue
		}
		last := s.lastNotify[i]
		if last.IsZero() {
			last = s.mit.start
		}
		if silent := now.Sub(last); silent > limit {
			s.cfg.Obs.MarkStraggler(now, i, float64(silent)/float64(med))
		}
	}
}

// startClone claims a spare slot and clones target's next iteration onto it:
// the harness builds and joins the clone node, every server shard learns the
// slot→target binding, and the clone is released at the target's current
// position in the active discipline.
func (s *Scheduler) startClone(target int, now time.Time) {
	slot := -1
	for off, t := range s.mit.cloneOf {
		if t == -1 {
			slot = s.cfg.Mitigate.Base + off
			break
		}
	}
	if slot < 0 {
		return // spares exhausted
	}
	fromIter := s.notifyCount[target]
	if err := s.cfg.Mitigate.OnClone(slot, target, fromIter); err != nil {
		s.ctx.Logf("scheduler: clone of worker %d onto slot %d failed: %v", target, slot, err)
		return
	}
	for _, srv := range s.cfg.Mitigate.Servers {
		s.ctx.Send(srv, &msg.CloneNotice{Slot: int32(slot), Target: int32(target)})
	}
	s.ctx.Send(node.WorkerID(slot), &msg.CloneCtl{
		StartIter: fromIter,
		Round:     s.round,
		MinClock:  s.minClock,
	})
	s.mit.cloneOf[slot-s.cfg.Mitigate.Base] = target
	s.mit.cloneFor[target] = slot
	s.mit.clones++
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Record(trace.Event{At: now, Worker: target, Kind: trace.KindClone, Iter: fromIter, Value: int64(slot)})
	}
	s.ctx.Logf("scheduler: cloned straggler %d onto spare slot %d from iteration %d", target, slot, fromIter)
}

// stopClone retires an active clone after its target recovered: the clone
// node stops, the servers clear the alias (later clone pushes in flight are
// dropped and never applied), and the slot is marked spent.
func (s *Scheduler) stopClone(slot, target int, now time.Time) {
	s.ctx.Send(node.WorkerID(slot), &msg.Stop{})
	for _, srv := range s.cfg.Mitigate.Servers {
		s.ctx.Send(srv, &msg.CloneNotice{Slot: int32(slot), Target: -1})
	}
	s.mit.cloneOf[slot-s.cfg.Mitigate.Base] = -2
	delete(s.mit.cloneFor, target)
	s.mit.cloneStop++
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Record(trace.Event{At: now, Worker: target, Kind: trace.KindCloneStop, Value: int64(slot)})
	}
	s.ctx.Logf("scheduler: stopped clone of recovered worker %d on slot %d", target, slot)
}

// rebalance swaps a sustained straggler out of membership: a fresh worker is
// spawned into the next spare capacity slot (it admits itself via JoinReq)
// and the straggler is retired through the planned-leave path.
func (s *Scheduler) rebalance(target int, now time.Time) {
	if s.mit.usedSlots >= s.cfg.Mitigate.Spares {
		return
	}
	slot := s.cfg.Mitigate.Base + s.mit.usedSlots
	if err := s.cfg.Mitigate.OnSpawn(slot, target); err != nil {
		s.ctx.Logf("scheduler: rebalance spawn into slot %d failed: %v", slot, err)
		return
	}
	s.mit.usedSlots++
	s.mit.acted[target] = true
	s.mit.rebal++
	s.retireWorker(target)
	s.ctx.Logf("scheduler: rebalanced straggler %d out; replacement joining in slot %d", target, slot)
}

// handleCloneNotify translates a clone's notify onto its target. Only a
// notify that advances the target's completed count registers — a duplicate
// of an iteration the original already reported (the clone lost that race)
// is ignored. The translation deliberately skips liveness touches and span
// feeds: the original's own slow spans keep the straggler flag latched, so a
// fast clone cannot clear the flag and trigger a stop/restart oscillation.
func (s *Scheduler) handleCloneNotify(slot int, n *msg.Notify) {
	target, active := -1, false
	if off := slot - s.cfg.Mitigate.Base; off >= 0 && off < len(s.mit.cloneOf) {
		target = s.mit.cloneOf[off]
		active = target >= 0
	}
	if !active {
		return // stale traffic from a stopped clone
	}
	now := s.ctx.Now()
	if c := n.Iter + 1; c <= s.notifyCount[target] {
		return
	}
	s.notifyCount[target] = n.Iter + 1

	s.history = append(s.history, PushRecord{At: now, Worker: target})
	if len(s.history) > s.cfg.HistoryLimit {
		drop := len(s.history) - s.cfg.HistoryLimit
		s.history = append(s.history[:0], s.history[drop:]...)
	}

	if !s.pushed[target] {
		s.pushed[target] = true
		s.pushedN++
		if s.pushedN >= s.aliveN {
			s.epochBoundary(now)
		}
	}
	s.countIntoWindows(target, now)

	if s.cur.Base == scheme.BSP {
		if n.Iter > s.round {
			s.round = n.Iter
		}
		if n.Iter >= s.round && !s.waitingBSP[target] {
			s.waitingBSP[target] = true
			s.barrierN++
			if s.barrierN >= s.barrierNeed() {
				s.releaseBarrier()
			}
		}
	}
	if s.cur.Base == scheme.SSP {
		if c := n.Iter + 1; c > s.completed[target] {
			s.completed[target] = c
		}
		s.broadcastMinClock()
	}
	s.publishCluster(now)
}
