package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/scheme"
	"specsync/internal/trace"
)

// Elastic membership (cfg.Routing != nil): the scheduler admits joining
// workers, retires workers on scale-plan commands, and rebalances parameter
// shards across a changing server set. A migration is a strict
// freeze → transfer → commit → resume sequence:
//
//	scheduler                donors/receivers              workers
//	   │  ShardTransfer  ──────────►│ (freeze; drop data)
//	   │                            │──ShardState──► peers
//	   │◄────── MigrateDone ────────│ (all segments staged)
//	   │  RoutingUpdate  ──────────►│ (adopt staged range)
//	   │  RoutingUpdate  ─────────────────────────────────►│ (re-route, retry)
//
// Only one migration is in flight at a time; scale commands arriving
// mid-handoff queue in FIFO order. Workers that raced the freeze retry their
// pulls/pushes until the commit re-routes them, so no acknowledged push is
// ever lost.

// scaleCounters aggregates elastic activity; atomics so live-mode monitors
// can read while the scheduler runs.
type scaleCounters struct {
	joins          atomic.Int64
	leaves         atomic.Int64
	migrations     atomic.Int64
	migrationBytes atomic.Int64

	mu        sync.Mutex
	durations []time.Duration
}

// ScaleStats is the end-of-run summary of elastic activity.
type ScaleStats struct {
	Joins          int64
	Leaves         int64
	Migrations     int64
	MigrationBytes int64
	// Durations holds each committed migration's freeze-to-commit time.
	Durations []time.Duration
}

// ScaleStats snapshots elastic activity. Safe for concurrent use.
func (s *Scheduler) ScaleStats() ScaleStats {
	s.scale.mu.Lock()
	durs := make([]time.Duration, len(s.scale.durations))
	copy(durs, s.scale.durations)
	s.scale.mu.Unlock()
	return ScaleStats{
		Joins:          s.scale.joins.Load(),
		Leaves:         s.scale.leaves.Load(),
		Migrations:     s.scale.migrations.Load(),
		MigrationBytes: s.scale.migrationBytes.Load(),
		Durations:      durs,
	}
}

// Routing returns a copy of the committed routing table (nil when elastic is
// off). Only meaningful from the scheduler's own execution context or after
// the runtime has drained.
func (s *Scheduler) Routing() *RoutingTable { return s.routing.Clone() }

// handleJoinReq admits a joining worker (idempotently: a retried JoinReq
// just resends the ack).
func (s *Scheduler) handleJoinReq(from node.ID) {
	i := node.WorkerIndex(from)
	if i < 0 || i >= s.m {
		s.ctx.Logf("scheduler: join request from non-worker %s", from)
		return
	}
	if s.routing == nil {
		s.ctx.Logf("scheduler: join request from %s but elastic membership is off", from)
		return
	}
	now := s.ctx.Now()
	if s.alive[i] {
		s.sendJoinAck(i) // ack lost or duplicated; resend
		return
	}
	s.joined[i] = true
	s.alive[i] = true
	s.aliveN++
	if s.cfg.LivenessTimeout > 0 {
		s.lastSeen[i] = now
	}
	// Seed the joiner's clocks so it never drags the SSP min or the BSP
	// barrier backwards: it starts at the cluster's current position.
	s.completed[i] = s.minClock
	epoch := s.membershipEpoch.Add(1)
	s.scale.joins.Add(1)
	s.cfg.Obs.Join(now, i, epoch)
	s.cfg.Obs.AliveWorkers(s.aliveN)
	s.cfg.Obs.ClusterSize(s.aliveN, len(s.liveServers))
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Record(trace.Event{At: now, Worker: i, Kind: trace.KindJoin, Value: epoch})
	}
	s.ctx.Logf("scheduler: worker %d joined (membership epoch %d, %d alive)", i, epoch, s.aliveN)
	s.sendJoinAck(i)
	s.publishCluster(now)
}

func (s *Scheduler) sendJoinAck(i int) {
	var startIter int64
	switch s.cur.Base {
	case scheme.BSP:
		startIter = s.round
	case scheme.SSP:
		startIter = s.minClock
	}
	lo, hi, srv := TableToWire(s.routing)
	s.ctx.Send(node.WorkerID(i), &msg.JoinAck{
		Epoch:     s.routing.Epoch,
		Lo:        lo,
		Hi:        hi,
		Srv:       srv,
		StartIter: startIter,
		MinClock:  s.minClock,
	})
	// A joiner boots under the configured scheme; bring it up to the active
	// discipline (it ignores scheme epochs it has already applied).
	s.resendScheme(i, s.ctx.Now())
}

// handleScaleCmd applies one scale-plan command. Server-set changes serialize
// behind any in-flight migration.
func (s *Scheduler) handleScaleCmd(cmd *msg.ScaleCmd) {
	if s.routing == nil {
		s.ctx.Logf("scheduler: scale command but elastic membership is off")
		return
	}
	switch cmd.Op {
	case msg.ScaleRetireWorker:
		s.retireWorker(int(cmd.Node))
	case msg.ScaleSetServers:
		if s.migrating {
			s.pendingOps = append(s.pendingOps, cmd)
			return
		}
		s.startMigration(cmd.Servers)
	default:
		s.ctx.Logf("scheduler: unknown scale op %d", cmd.Op)
	}
}

// retireWorker executes a planned scale-down of one worker: stop it and
// remove it from membership (the planned twin of evict).
func (s *Scheduler) retireWorker(i int) {
	if i < 0 || i >= s.m {
		s.ctx.Logf("scheduler: retire of out-of-range worker %d", i)
		return
	}
	if !s.alive[i] {
		s.ctx.Logf("scheduler: retire of non-member worker %d; ignored", i)
		return
	}
	now := s.ctx.Now()
	s.ctx.Send(node.WorkerID(i), &msg.Stop{})
	s.alive[i] = false
	// Planned departure: liveness touch must not re-admit this slot; only a
	// fresh JoinReq brings it back.
	s.joined[i] = false
	s.aliveN--
	epoch := s.membershipEpoch.Add(1)
	s.scale.leaves.Add(1)
	s.cfg.Obs.Leave(now, i, epoch)
	s.cfg.Obs.AliveWorkers(s.aliveN)
	s.cfg.Obs.ClusterSize(s.aliveN, len(s.liveServers))
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Record(trace.Event{At: now, Worker: i, Kind: trace.KindLeave, Value: epoch})
	}
	s.ctx.Logf("scheduler: worker %d retired (membership epoch %d, %d alive)", i, epoch, s.aliveN)
	// Unlike a crash eviction the retired worker was healthy: if it is
	// parked in the barrier its count must leave with it.
	if s.waitingBSP[i] {
		s.waitingBSP[i] = false
		s.barrierN--
	}
	s.dropFromCoordination(i, now)
	s.publishCluster(now)
}

// startMigration freezes the involved servers and hands each its precomputed
// transfer: what to keep, what to send where, and how many segments to
// expect.
func (s *Scheduler) startMigration(slots []int32) {
	newLive := normalizeSlots(slots)
	if len(newLive) == 0 {
		s.ctx.Logf("scheduler: scale command with no servers; ignored")
		return
	}
	if equalInts(newLive, s.liveServers) {
		return
	}
	dim := s.routing.Dim()
	routes, err := SplitRoutes(dim, newLive)
	if err != nil {
		s.ctx.Logf("scheduler: rebalance to %v: %v; ignored", newLive, err)
		return
	}
	now := s.ctx.Now()
	s.nextRouting = &RoutingTable{Epoch: s.routing.Epoch + 1, Shards: routes}
	s.migrating = true
	s.migStart = now
	s.migBytes = 0
	s.migInvolved = unionInts(s.liveServers, newLive)
	s.migExpect = make(map[int]bool, len(s.migInvolved))
	s.ctx.Logf("scheduler: migrating %d params to servers %v (epoch %d)", dim, newLive, s.nextRouting.Epoch)

	for _, slot := range s.migInvolved {
		s.migExpect[slot] = true
		t := &msg.ShardTransfer{Epoch: s.nextRouting.Epoch}
		oldLo, oldHi, hasOld := s.routing.RangeOf(slot)
		newLo, newHi, hasNew := s.nextRouting.RangeOf(slot)
		if hasNew {
			t.HasNew = true
			t.NewLo, t.NewHi = int64(newLo), int64(newHi)
		}
		if hasOld && hasNew {
			if lo, hi, ok := intersect(oldLo, oldHi, newLo, newHi); ok {
				t.KeepLo, t.KeepHi = int64(lo), int64(hi)
			}
		}
		if hasOld {
			// Segments of the old range now owned by other servers.
			for _, r := range s.nextRouting.Shards {
				if r.Server == slot {
					continue
				}
				if lo, hi, ok := intersect(oldLo, oldHi, r.Lo, r.Hi); ok {
					t.SendLo = append(t.SendLo, int32(lo))
					t.SendHi = append(t.SendHi, int32(hi))
					t.SendTo = append(t.SendTo, int32(r.Server))
				}
			}
		}
		if hasNew {
			// Segments of the new range owned by other servers today.
			for _, r := range s.routing.Shards {
				if r.Server == slot {
					continue
				}
				if _, _, ok := intersect(r.Lo, r.Hi, newLo, newHi); ok {
					t.Expect++
				}
			}
		}
		s.ctx.Send(node.ServerID(slot), t)
	}
}

// handleMigrateDone collects per-server completion; the last one commits.
func (s *Scheduler) handleMigrateDone(from node.ID, md *msg.MigrateDone) {
	slot := node.ServerIndex(from)
	if !s.migrating || s.nextRouting == nil || md.Epoch != s.nextRouting.Epoch || !s.migExpect[slot] {
		s.ctx.Logf("scheduler: unexpected migrate-done from %s (epoch %d)", from, md.Epoch)
		return
	}
	delete(s.migExpect, slot)
	s.migBytes += md.Bytes
	if len(s.migExpect) > 0 {
		return
	}
	s.commitMigration()
}

// commitMigration swaps in the new table and broadcasts the commit to every
// live worker and involved server, then drains any queued scale command.
func (s *Scheduler) commitMigration() {
	now := s.ctx.Now()
	s.routing = s.nextRouting
	s.nextRouting = nil
	s.liveServers = s.routing.Servers()
	s.migrating = false

	lo, hi, srv := TableToWire(s.routing)
	update := func() *msg.RoutingUpdate {
		return &msg.RoutingUpdate{Epoch: s.routing.Epoch, Lo: lo, Hi: hi, Srv: srv}
	}
	for _, slot := range s.migInvolved {
		s.ctx.Send(node.ServerID(slot), update())
	}
	for i := 0; i < s.m; i++ {
		if s.alive[i] {
			s.ctx.Send(node.WorkerID(i), update())
		}
	}
	s.migInvolved = nil

	dur := now.Sub(s.migStart)
	s.scale.migrations.Add(1)
	s.scale.migrationBytes.Add(s.migBytes)
	s.scale.mu.Lock()
	s.scale.durations = append(s.scale.durations, dur)
	s.scale.mu.Unlock()
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Record(trace.Event{At: now, Worker: -1, Kind: trace.KindMigrate, Iter: s.routing.Epoch, Value: s.migBytes})
	}
	s.cfg.Obs.MigrationDone(now, s.routing.Epoch, s.migBytes, dur)
	s.cfg.Obs.ClusterSize(s.aliveN, len(s.liveServers))
	s.ctx.Logf("scheduler: routing epoch %d committed (%d bytes moved in %v, servers %v)",
		s.routing.Epoch, s.migBytes, dur, s.liveServers)
	if s.cfg.OnRouting != nil {
		s.cfg.OnRouting(s.routing.Clone())
	}

	if len(s.pendingOps) > 0 {
		next := s.pendingOps[0]
		s.pendingOps = s.pendingOps[1:]
		s.handleScaleCmd(next)
	}
}

func normalizeSlots(slots []int32) []int {
	seen := make(map[int]bool, len(slots))
	out := make([]int, 0, len(slots))
	for _, v := range slots {
		if v < 0 || seen[int(v)] {
			continue
		}
		seen[int(v)] = true
		out = append(out, int(v))
	}
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func unionInts(a, b []int) []int {
	seen := make(map[int]bool, len(a)+len(b))
	out := make([]int, 0, len(a)+len(b))
	for _, v := range append(append([]int{}, a...), b...) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// intersect returns the overlap of [aLo,aHi) and [bLo,bHi).
func intersect(aLo, aHi, bLo, bHi int) (lo, hi int, ok bool) {
	lo, hi = aLo, aHi
	if bLo > lo {
		lo = bLo
	}
	if bHi < hi {
		hi = bHi
	}
	if hi <= lo {
		return 0, 0, false
	}
	return lo, hi, true
}
