package core

import (
	"fmt"
	"math"
	"time"

	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/scheme"
	"specsync/internal/switcher"
	"specsync/internal/trace"
)

// Scheduler-side scheme switching: the runtime mechanics behind the
// Sync-Switch and ABS variants and the meta-scheme policy. The active
// discipline lives in s.cur (a scheme.Runtime); every decision point is an
// epoch boundary, and a switch follows the elastic migration's
// freeze→commit discipline in miniature:
//
//  1. Freeze: the outgoing discipline's in-flight coordination state (the
//     BSP barrier count) is discarded — nothing new is admitted into it.
//  2. Rebuild: the incoming discipline's clocks are seeded from the
//     notify counts the scheduler already tracks for every scheme (round =
//     the furthest-ahead live member for BSP, completed[i] = notifyCount[i]
//     with a never-regressing min for SSP), exactly the way the
//     post-restart StateReport rebuild seeds them.
//  3. Commit: one SchemeSwitch broadcast carries the new base, bound, and
//     the rebuilt round/min-clock baselines. Each worker applies it at its
//     own iteration boundary — a worker parked at an outgoing barrier or
//     staleness gate re-evaluates immediately against the baselines, and
//     in-flight pushes are untouched because pushes never depended on the
//     scheme.
//
// Switches are keyed by a monotonically increasing scheme epoch so a stale
// or duplicated broadcast (restart re-announce, readmission resend) can
// never roll a worker back.

// dynamic reports whether this run can rewrite its discipline mid-flight.
func (s *Scheduler) dynamic() bool {
	return s.cfg.Scheme.DynamicBase() || s.policy != nil
}

// barrierNeed is the number of barrier arrivals that releases the current
// round: all live members for BSP, a β-fraction quorum for PSP.
func (s *Scheduler) barrierNeed() int {
	need := s.aliveN
	if b := s.cur.Beta; b > 0 && b < 1 && s.aliveN > 0 {
		q := int(math.Ceil(b * float64(s.aliveN)))
		if q < 1 {
			q = 1
		}
		if q < need {
			need = q
		}
	}
	return need
}

// maybeSwitch is called at every epoch boundary; it runs the variant
// schedules and the meta-scheme policy, issuing at most one switch.
func (s *Scheduler) maybeSwitch(now time.Time) {
	epoch := s.epoch.Load()
	switch s.cfg.Scheme.Variant {
	case scheme.VariantSyncSwitch:
		if s.cur.Base == scheme.BSP && epoch >= int64(s.cfg.Scheme.SwitchAt) {
			s.switchTo(scheme.Runtime{Base: scheme.ASP},
				fmt.Sprintf("sync-switch: scheduled BSP→ASP handover at epoch %d", epoch), now)
		}
		return
	case scheme.VariantABS:
		if bound := s.absBound(); bound != s.cur.Staleness {
			rt := s.cur
			rt.Staleness = bound
			s.switchTo(rt,
				fmt.Sprintf("abs: push-arrival spread re-derived bound %d→%d at epoch %d", s.cur.Staleness, bound, epoch), now)
		}
		return
	}
	if s.policy == nil {
		return
	}
	flagged, sustained, median, max := s.cfg.Obs.StragglerCounts()
	d, fire := s.policy.Evaluate(now, switcher.Telemetry{
		Flagged: flagged, Sustained: sustained, MedianScore: median, MaxScore: max,
	})
	if fire {
		s.switchTo(d.Target, d.Reason, now)
	}
}

// absBound re-derives the ABS staleness bound from the push-arrival spread
// observed over the finished epoch: the ratio between the slowest and the
// median live member's work span (spans are themselves EWMAs of push-arrival
// intervals). A homogeneous fleet rounds to the minimum bound (near-BSP); a
// k-times straggler loosens the bound to ≈k so the healthy majority can run
// ahead instead of blocking on the SSP gate every iteration.
func (s *Scheduler) absBound() int {
	lo, hi := s.cfg.Scheme.ABSBounds()
	spans := make([]float64, 0, s.m)
	slowest := 0.0
	for i := 0; i < s.m; i++ {
		if !s.alive[i] {
			continue
		}
		sp := float64(s.spanFor(i))
		if sp <= 0 {
			continue
		}
		spans = append(spans, sp)
		if sp > slowest {
			slowest = sp
		}
	}
	if len(spans) == 0 {
		return s.cur.Staleness
	}
	median := medianOf(spans)
	if median <= 0 {
		return s.cur.Staleness
	}
	bound := int(slowest/median + 0.5)
	if bound < lo {
		bound = lo
	}
	if bound > hi {
		bound = hi
	}
	return bound
}

// spanFor returns the best available span estimate for worker i: the
// worker-reported work span (scheme-independent) when this is a dynamic run,
// falling back to the notify-interval EWMA before the first report lands.
func (s *Scheduler) spanFor(i int) time.Duration {
	if s.workSpan != nil && s.workSpan[i] > 0 {
		return s.workSpan[i]
	}
	return s.spanEWMA[i]
}

func medianOf(vs []float64) float64 {
	// Insertion sort: the slice is small (≤ fleet size) and reused nowhere.
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
	return vs[len(vs)/2]
}

// switchTo rebuilds the coordination state for the incoming discipline and
// commits it to the fleet with one SchemeSwitch broadcast.
func (s *Scheduler) switchTo(rt scheme.Runtime, reason string, now time.Time) {
	if rt == s.cur {
		return
	}
	from := s.cur.String()
	s.schemeEpoch++
	s.cur = rt
	s.lastSwitchAt = now
	s.lastSwitchWhy = reason
	s.switches.Add(1)

	// Freeze: the outgoing barrier's in-flight count is void either way —
	// an incoming BSP round starts empty, and ASP/SSP have no barrier.
	s.barrierN = 0
	for i := range s.waitingBSP {
		s.waitingBSP[i] = false
	}

	// Rebuild the incoming discipline's clocks from the notify counts
	// (maintained under every scheme), mirroring the post-restart
	// StateReport rebuild.
	switch rt.Base {
	case scheme.BSP:
		// Round baseline = the furthest-ahead live member's completed
		// count: every laggard sails through (its rounds are already
		// released) while the front-runners park until the next quorum.
		for i := 0; i < s.m; i++ {
			if s.alive[i] && s.notifyCount[i] > s.round {
				s.round = s.notifyCount[i]
			}
		}
	case scheme.SSP:
		for i := 0; i < s.m; i++ {
			if s.notifyCount[i] > s.completed[i] {
				s.completed[i] = s.notifyCount[i]
			}
		}
		min := int64(-1)
		for i := 0; i < s.m; i++ {
			if !s.alive[i] {
				continue
			}
			if min < 0 || s.completed[i] < min {
				min = s.completed[i]
			}
		}
		if min > s.minClock {
			s.minClock = min
		}
	}

	s.cfg.Obs.SchemeSwitch(now, s.schemeEpoch, from, rt.String(), reason)
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Record(trace.Event{At: now, Worker: trace.SchedulerNode, Kind: trace.KindSchemeSwitch, Iter: s.schemeEpoch, Value: int64(rt.Base)})
	}
	s.ctx.Logf("scheduler: scheme switch #%d %s → %s (%s)", s.schemeEpoch, from, rt.String(), reason)

	// Commit.
	for w := 0; w < s.m; w++ {
		s.ctx.Send(node.WorkerID(w), s.schemeMsg(now))
	}
}

// schemeMsg encodes the current discipline (and its rebuilt baselines) for
// broadcast or for a targeted resend to a joiner/readmitted worker.
func (s *Scheduler) schemeMsg(now time.Time) *msg.SchemeSwitch {
	return &msg.SchemeSwitch{
		Epoch:     s.schemeEpoch,
		Base:      uint8(s.cur.Base),
		Staleness: int64(s.cur.Staleness),
		Beta:      s.cur.Beta,
		Round:     s.round,
		MinClock:  s.minClock,
		Reason:    s.lastSwitchWhy,
		At:        now.Sub(time.Unix(0, 0)),
	}
}

// resendScheme brings one worker (a joiner, a readmitted crasher) up to the
// current scheme epoch. Workers ignore epochs they have already applied.
func (s *Scheduler) resendScheme(i int, now time.Time) {
	if !s.dynamic() || s.schemeEpoch == 0 {
		return
	}
	s.ctx.Send(node.WorkerID(i), s.schemeMsg(now))
}

// Runtime returns the active discipline (only meaningful from the
// scheduler's own context, e.g. tests after the sim has drained).
func (s *Scheduler) Runtime() scheme.Runtime { return s.cur }

// SchemeSwitches returns the number of switches issued. Safe for concurrent
// use.
func (s *Scheduler) SchemeSwitches() int64 { return s.switches.Load() }
