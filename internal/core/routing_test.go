package core

import (
	"testing"

	"specsync/internal/ps"
)

func TestSplitRoutesMatchesShardRanges(t *testing.T) {
	// A rebalance back to the original server set must reproduce the static
	// ps.ShardRanges layout exactly, or the empty-plan byte-identity breaks.
	for _, tc := range []struct{ dim, n int }{
		{24, 4}, {10, 3}, {7, 7}, {100, 6}, {5, 1},
	} {
		slots := make([]int, tc.n)
		for i := range slots {
			slots[i] = i
		}
		routes, err := SplitRoutes(tc.dim, slots)
		if err != nil {
			t.Fatalf("SplitRoutes(%d,%d): %v", tc.dim, tc.n, err)
		}
		ranges, err := ps.ShardRanges(tc.dim, tc.n)
		if err != nil {
			t.Fatalf("ShardRanges(%d,%d): %v", tc.dim, tc.n, err)
		}
		for i := range routes {
			if routes[i].Lo != ranges[i].Lo || routes[i].Hi != ranges[i].Hi || routes[i].Server != i {
				t.Errorf("dim=%d n=%d shard %d: route %+v vs range %+v", tc.dim, tc.n, i, routes[i], ranges[i])
			}
		}
	}
}

func TestSplitRoutesErrors(t *testing.T) {
	if _, err := SplitRoutes(3, []int{0, 1, 2, 3}); err == nil {
		t.Error("dim < shards accepted")
	}
	if _, err := SplitRoutes(5, nil); err == nil {
		t.Error("empty server set accepted")
	}
}

func TestSplitRoutesNonContiguousSlots(t *testing.T) {
	// Slot numbering is arbitrary: draining slot 1 out of {0,1,2} leaves
	// {0,2}, and the routes must assign ranges to exactly those slots.
	routes, err := SplitRoutes(10, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	tbl := &RoutingTable{Epoch: 1, Shards: routes}
	if err := tbl.Validate(); err != nil {
		t.Fatalf("table invalid: %v", err)
	}
	if tbl.Dim() != 10 {
		t.Errorf("dim = %d, want 10", tbl.Dim())
	}
	if lo, hi, ok := tbl.RangeOf(2); !ok || lo != 5 || hi != 10 {
		t.Errorf("RangeOf(2) = %d,%d,%v", lo, hi, ok)
	}
	if _, _, ok := tbl.RangeOf(1); ok {
		t.Error("drained slot 1 still owns a range")
	}
	srvs := tbl.Servers()
	if len(srvs) != 2 || srvs[0] != 0 || srvs[1] != 2 {
		t.Errorf("Servers() = %v", srvs)
	}
}

func TestTableWireRoundtrip(t *testing.T) {
	routes, err := SplitRoutes(24, []int{3, 0, 5})
	if err != nil {
		t.Fatal(err)
	}
	tbl := &RoutingTable{Epoch: 9, Shards: routes}
	lo, hi, srv := TableToWire(tbl)
	back, err := TableFromWire(tbl.Epoch, lo, hi, srv)
	if err != nil {
		t.Fatalf("from wire: %v", err)
	}
	if back.Epoch != tbl.Epoch || len(back.Shards) != len(tbl.Shards) {
		t.Fatalf("shape changed: %+v", back)
	}
	for i := range tbl.Shards {
		if back.Shards[i] != tbl.Shards[i] {
			t.Errorf("shard %d: %+v != %+v", i, back.Shards[i], tbl.Shards[i])
		}
	}
}

func TestTableFromWireRejects(t *testing.T) {
	if _, err := TableFromWire(1, []int32{0}, []int32{5, 9}, []int32{0}); err == nil {
		t.Error("mismatched slice lengths accepted")
	}
	// Gap between shards.
	if _, err := TableFromWire(1, []int32{0, 6}, []int32{5, 9}, []int32{0, 1}); err == nil {
		t.Error("non-contiguous table accepted")
	}
	// Duplicate server.
	if _, err := TableFromWire(1, []int32{0, 5}, []int32{5, 9}, []int32{0, 0}); err == nil {
		t.Error("duplicate server accepted")
	}
	// Empty table.
	if _, err := TableFromWire(1, nil, nil, nil); err == nil {
		t.Error("empty table accepted")
	}
}

func TestIntersect(t *testing.T) {
	for _, tc := range []struct {
		aLo, aHi, bLo, bHi int
		lo, hi             int
		ok                 bool
	}{
		{0, 10, 5, 15, 5, 10, true},
		{5, 15, 0, 10, 5, 10, true},
		{0, 10, 0, 10, 0, 10, true},
		{0, 5, 5, 10, 0, 0, false}, // adjacent, half-open
		{0, 5, 7, 10, 0, 0, false},
		{3, 4, 0, 10, 3, 4, true},
	} {
		lo, hi, ok := intersect(tc.aLo, tc.aHi, tc.bLo, tc.bHi)
		if lo != tc.lo || hi != tc.hi || ok != tc.ok {
			t.Errorf("intersect(%d,%d,%d,%d) = %d,%d,%v; want %d,%d,%v",
				tc.aLo, tc.aHi, tc.bLo, tc.bHi, lo, hi, ok, tc.lo, tc.hi, tc.ok)
		}
	}
}

func TestSplitRoutesJobZeroParity(t *testing.T) {
	// The epoch-0 single-job layout is the legacy layout: SplitRoutesJob(0,...)
	// must match SplitRoutes and ps.ShardRanges exactly, and its wire form
	// must be byte-identical to the legacy three-slice encoding.
	for _, tc := range []struct{ dim, n int }{
		{24, 4}, {10, 3}, {7, 7}, {100, 6}, {5, 1},
	} {
		slots := make([]int, tc.n)
		for i := range slots {
			slots[i] = i
		}
		legacy, err := SplitRoutes(tc.dim, slots)
		if err != nil {
			t.Fatalf("SplitRoutes(%d,%d): %v", tc.dim, tc.n, err)
		}
		routes, err := SplitRoutesJob(0, tc.dim, slots)
		if err != nil {
			t.Fatalf("SplitRoutesJob(0,%d,%d): %v", tc.dim, tc.n, err)
		}
		ranges, err := ps.ShardRanges(tc.dim, tc.n)
		if err != nil {
			t.Fatalf("ShardRanges(%d,%d): %v", tc.dim, tc.n, err)
		}
		for i := range routes {
			if routes[i] != legacy[i] {
				t.Errorf("dim=%d n=%d shard %d: job-stamped %+v != legacy %+v", tc.dim, tc.n, i, routes[i], legacy[i])
			}
			if routes[i].Lo != ranges[i].Lo || routes[i].Hi != ranges[i].Hi {
				t.Errorf("dim=%d n=%d shard %d: route %+v vs range %+v", tc.dim, tc.n, i, routes[i], ranges[i])
			}
		}
		tbl := &RoutingTable{Epoch: 0, Shards: routes}
		lo, hi, srv := TableToWire(&RoutingTable{Epoch: 0, Shards: legacy})
		jlo, jhi, jsrv, job := TableToWireJobs(tbl)
		for i := range lo {
			if jlo[i] != lo[i] || jhi[i] != hi[i] || jsrv[i] != srv[i] || job[i] != 0 {
				t.Errorf("dim=%d n=%d shard %d: wire (%d,%d,%d,%d) != legacy (%d,%d,%d,0)",
					tc.dim, tc.n, i, jlo[i], jhi[i], jsrv[i], job[i], lo[i], hi[i], srv[i])
			}
		}
	}
}

func TestValidateMultiJob(t *testing.T) {
	mk := func(shards ...ShardRoute) *RoutingTable {
		return &RoutingTable{Epoch: 1, Shards: shards}
	}
	// Two jobs sharing the server set: each carves its own [0, dim_j) space,
	// and one server may host one shard of each job.
	good := mk(
		ShardRoute{Lo: 0, Hi: 5, Server: 0, Job: 0},
		ShardRoute{Lo: 5, Hi: 10, Server: 1, Job: 0},
		ShardRoute{Lo: 0, Hi: 4, Server: 1, Job: 2},
		ShardRoute{Lo: 4, Hi: 8, Server: 0, Job: 2},
	)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid multi-job table rejected: %v", err)
	}
	if jobs := good.Jobs(); len(jobs) != 2 || jobs[0] != 0 || jobs[1] != 2 {
		t.Errorf("Jobs() = %v, want [0 2]", jobs)
	}
	if d := good.JobDim(2); d != 8 {
		t.Errorf("JobDim(2) = %d, want 8", d)
	}
	if d := good.JobDim(7); d != 0 {
		t.Errorf("JobDim(7) = %d, want 0", d)
	}
	if lo, hi, ok := good.RangeOfJob(2, 1); !ok || lo != 0 || hi != 4 {
		t.Errorf("RangeOfJob(2,1) = %d,%d,%v", lo, hi, ok)
	}
	if _, _, ok := good.RangeOfJob(0, 7); ok {
		t.Error("RangeOfJob(0,7) found a range on an absent server")
	}

	for name, bad := range map[string]*RoutingTable{
		"job blocks out of order": mk(
			ShardRoute{Lo: 0, Hi: 5, Server: 0, Job: 1},
			ShardRoute{Lo: 0, Hi: 5, Server: 0, Job: 0},
		),
		"per-job range not from zero": mk(
			ShardRoute{Lo: 0, Hi: 5, Server: 0, Job: 0},
			ShardRoute{Lo: 5, Hi: 9, Server: 0, Job: 1},
		),
		"duplicate server within job": mk(
			ShardRoute{Lo: 0, Hi: 5, Server: 0, Job: 1},
			ShardRoute{Lo: 5, Hi: 9, Server: 0, Job: 1},
		),
		"negative job": mk(
			ShardRoute{Lo: 0, Hi: 5, Server: 0, Job: -1},
		),
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTableWireJobsRoundtrip(t *testing.T) {
	r0, err := SplitRoutesJob(0, 24, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := SplitRoutesJob(3, 10, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	tbl := &RoutingTable{Epoch: 4, Shards: append(r0, r3...)}
	if err := tbl.Validate(); err != nil {
		t.Fatalf("table invalid: %v", err)
	}
	lo, hi, srv, job := TableToWireJobs(tbl)
	back, err := TableFromWireJobs(tbl.Epoch, lo, hi, srv, job)
	if err != nil {
		t.Fatalf("from wire: %v", err)
	}
	if back.Epoch != tbl.Epoch || len(back.Shards) != len(tbl.Shards) {
		t.Fatalf("shape changed: %+v", back)
	}
	for i := range tbl.Shards {
		if back.Shards[i] != tbl.Shards[i] {
			t.Errorf("shard %d: %+v != %+v", i, back.Shards[i], tbl.Shards[i])
		}
	}
}

func TestTableFromWireJobsRejects(t *testing.T) {
	// Slice length disagreement (job slice short).
	if _, err := TableFromWireJobs(1, []int32{0}, []int32{5}, []int32{0}, nil); err == nil {
		t.Error("mismatched job slice length accepted")
	}
	// Job blocks out of order.
	if _, err := TableFromWireJobs(1, []int32{0, 0}, []int32{5, 5}, []int32{0, 0}, []int32{1, 0}); err == nil {
		t.Error("out-of-order job blocks accepted")
	}
	// Second job's space not starting at zero.
	if _, err := TableFromWireJobs(1, []int32{0, 5}, []int32{5, 9}, []int32{0, 0}, []int32{0, 1}); err == nil {
		t.Error("non-zero-based job space accepted")
	}
}
