package core

import (
	"testing"

	"specsync/internal/ps"
)

func TestSplitRoutesMatchesShardRanges(t *testing.T) {
	// A rebalance back to the original server set must reproduce the static
	// ps.ShardRanges layout exactly, or the empty-plan byte-identity breaks.
	for _, tc := range []struct{ dim, n int }{
		{24, 4}, {10, 3}, {7, 7}, {100, 6}, {5, 1},
	} {
		slots := make([]int, tc.n)
		for i := range slots {
			slots[i] = i
		}
		routes, err := SplitRoutes(tc.dim, slots)
		if err != nil {
			t.Fatalf("SplitRoutes(%d,%d): %v", tc.dim, tc.n, err)
		}
		ranges, err := ps.ShardRanges(tc.dim, tc.n)
		if err != nil {
			t.Fatalf("ShardRanges(%d,%d): %v", tc.dim, tc.n, err)
		}
		for i := range routes {
			if routes[i].Lo != ranges[i].Lo || routes[i].Hi != ranges[i].Hi || routes[i].Server != i {
				t.Errorf("dim=%d n=%d shard %d: route %+v vs range %+v", tc.dim, tc.n, i, routes[i], ranges[i])
			}
		}
	}
}

func TestSplitRoutesErrors(t *testing.T) {
	if _, err := SplitRoutes(3, []int{0, 1, 2, 3}); err == nil {
		t.Error("dim < shards accepted")
	}
	if _, err := SplitRoutes(5, nil); err == nil {
		t.Error("empty server set accepted")
	}
}

func TestSplitRoutesNonContiguousSlots(t *testing.T) {
	// Slot numbering is arbitrary: draining slot 1 out of {0,1,2} leaves
	// {0,2}, and the routes must assign ranges to exactly those slots.
	routes, err := SplitRoutes(10, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	tbl := &RoutingTable{Epoch: 1, Shards: routes}
	if err := tbl.Validate(); err != nil {
		t.Fatalf("table invalid: %v", err)
	}
	if tbl.Dim() != 10 {
		t.Errorf("dim = %d, want 10", tbl.Dim())
	}
	if lo, hi, ok := tbl.RangeOf(2); !ok || lo != 5 || hi != 10 {
		t.Errorf("RangeOf(2) = %d,%d,%v", lo, hi, ok)
	}
	if _, _, ok := tbl.RangeOf(1); ok {
		t.Error("drained slot 1 still owns a range")
	}
	srvs := tbl.Servers()
	if len(srvs) != 2 || srvs[0] != 0 || srvs[1] != 2 {
		t.Errorf("Servers() = %v", srvs)
	}
}

func TestTableWireRoundtrip(t *testing.T) {
	routes, err := SplitRoutes(24, []int{3, 0, 5})
	if err != nil {
		t.Fatal(err)
	}
	tbl := &RoutingTable{Epoch: 9, Shards: routes}
	lo, hi, srv := TableToWire(tbl)
	back, err := TableFromWire(tbl.Epoch, lo, hi, srv)
	if err != nil {
		t.Fatalf("from wire: %v", err)
	}
	if back.Epoch != tbl.Epoch || len(back.Shards) != len(tbl.Shards) {
		t.Fatalf("shape changed: %+v", back)
	}
	for i := range tbl.Shards {
		if back.Shards[i] != tbl.Shards[i] {
			t.Errorf("shard %d: %+v != %+v", i, back.Shards[i], tbl.Shards[i])
		}
	}
}

func TestTableFromWireRejects(t *testing.T) {
	if _, err := TableFromWire(1, []int32{0}, []int32{5, 9}, []int32{0}); err == nil {
		t.Error("mismatched slice lengths accepted")
	}
	// Gap between shards.
	if _, err := TableFromWire(1, []int32{0, 6}, []int32{5, 9}, []int32{0, 1}); err == nil {
		t.Error("non-contiguous table accepted")
	}
	// Duplicate server.
	if _, err := TableFromWire(1, []int32{0, 5}, []int32{5, 9}, []int32{0, 0}); err == nil {
		t.Error("duplicate server accepted")
	}
	// Empty table.
	if _, err := TableFromWire(1, nil, nil, nil); err == nil {
		t.Error("empty table accepted")
	}
}

func TestIntersect(t *testing.T) {
	for _, tc := range []struct {
		aLo, aHi, bLo, bHi int
		lo, hi             int
		ok                 bool
	}{
		{0, 10, 5, 15, 5, 10, true},
		{5, 15, 0, 10, 5, 10, true},
		{0, 10, 0, 10, 0, 10, true},
		{0, 5, 5, 10, 0, 0, false}, // adjacent, half-open
		{0, 5, 7, 10, 0, 0, false},
		{3, 4, 0, 10, 3, 4, true},
	} {
		lo, hi, ok := intersect(tc.aLo, tc.aHi, tc.bLo, tc.bHi)
		if lo != tc.lo || hi != tc.hi || ok != tc.ok {
			t.Errorf("intersect(%d,%d,%d,%d) = %d,%d,%v; want %d,%d,%v",
				tc.aLo, tc.aHi, tc.bLo, tc.bHi, lo, hi, ok, tc.lo, tc.hi, tc.ok)
		}
	}
}
