package core

import (
	"math/rand"
	"testing"
	"time"
)

func at(ms int) time.Time { return time.Unix(0, 0).Add(time.Duration(ms) * time.Millisecond) }

func TestTuneValidation(t *testing.T) {
	if _, err := Tune(TunerConfig{Workers: 1}, nil, nil, []time.Time{{}}, []time.Duration{1}); err == nil {
		t.Error("expected error for m<2")
	}
	if _, err := Tune(TunerConfig{Workers: 2}, nil, nil, []time.Time{{}}, []time.Duration{1}); err == nil {
		t.Error("expected error for mis-sized inputs")
	}
	if _, err := Tune(TunerConfig{Workers: 2}, nil, nil, []time.Time{{}, {}}, []time.Duration{1, 0}); err == nil {
		t.Error("expected error for zero span")
	}
	unsorted := []PushRecord{{At: at(10)}, {At: at(5)}}
	if _, err := Tune(TunerConfig{Workers: 2}, unsorted, nil, []time.Time{at(0), at(0)}, []time.Duration{time.Second, time.Second}); err == nil {
		t.Error("expected error for unsorted history")
	}
}

func TestTuneEmptyEpochDisables(t *testing.T) {
	got, err := Tune(TunerConfig{Workers: 2}, nil, nil, []time.Time{at(0), at(0)}, []time.Duration{time.Second, time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if got.Enabled {
		t.Error("no candidates must disable speculation")
	}
}

func TestTuneSimpleScenario(t *testing.T) {
	// Two workers, T = 1s each. Worker 0 pulls at t=0; worker 1 pushes at
	// t=100ms. A window of 100ms uncovers that push for worker 0:
	// gain 1, loss 2*(0.1s * 1/1s) = 0.2 -> F = 0.8 > 0.
	history := []PushRecord{
		{At: at(0), Worker: 0},
		{At: at(100), Worker: 1},
	}
	lastPull := []time.Time{at(0), at(100)}
	spans := []time.Duration{time.Second, time.Second}
	got, err := Tune(TunerConfig{Workers: 2}, history, history, lastPull, spans)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Enabled {
		t.Fatal("expected speculation enabled")
	}
	if got.AbortTime != 100*time.Millisecond {
		t.Errorf("AbortTime = %v, want 100ms", got.AbortTime)
	}
	// F = (1 - 0.1) + (0 - 0.1) = 0.8
	if got.Improvement < 0.79 || got.Improvement > 0.81 {
		t.Errorf("Improvement = %v, want 0.8", got.Improvement)
	}
	// Rates: Delta*(m-1)/(T_i*m) = 0.1*1/(1*2) = 0.05.
	for i, r := range got.Rates {
		if r < 0.049 || r > 0.051 {
			t.Errorf("Rates[%d] = %v, want 0.05", i, r)
		}
	}
}

func TestTuneNegativeImprovementDisables(t *testing.T) {
	// Pushes spaced so far apart that any window's loss dwarfs its gain:
	// short iteration spans make the loss term huge.
	history := []PushRecord{
		{At: at(0), Worker: 0},
		{At: at(5000), Worker: 1},
	}
	lastPull := []time.Time{at(0), at(5000)}
	spans := []time.Duration{10 * time.Millisecond, 10 * time.Millisecond}
	got, err := Tune(TunerConfig{Workers: 2}, history, history, lastPull, spans)
	if err != nil {
		t.Fatal(err)
	}
	if got.Enabled {
		t.Errorf("expected speculation disabled, got Delta=%v F=%v", got.AbortTime, got.Improvement)
	}
}

// evalF computes Eq. (7) directly for cross-checking.
func evalF(m int, history []PushRecord, lastPull []time.Time, spans []time.Duration, delta time.Duration) float64 {
	var f float64
	for i := 0; i < m; i++ {
		gain := 0
		hi := lastPull[i].Add(delta)
		for _, p := range history {
			if p.Worker != i && p.At.After(lastPull[i]) && !p.At.After(hi) {
				gain++
			}
		}
		f += float64(gain) - float64(delta)*float64(m-1)/float64(spans[i])
	}
	return f
}

// TestTuneMatchesBruteForce verifies the candidate-set argument (paper
// Sec. IV-B): because the gain estimate is a step function that only jumps
// when a window boundary crosses a push, evaluating pairwise push gaps finds
// an optimum at least as good as a dense grid search.
func TestTuneMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		m := 3 + rng.Intn(5)
		// Random push history over 10 seconds.
		n := m * (1 + rng.Intn(3))
		history := make([]PushRecord, n)
		for i := range history {
			history[i] = PushRecord{At: at(rng.Intn(10000)), Worker: rng.Intn(m)}
		}
		sortPushes(history)
		lastPull := make([]time.Time, m)
		spans := make([]time.Duration, m)
		for i := range lastPull {
			lastPull[i] = at(rng.Intn(10000))
			spans[i] = time.Duration(500+rng.Intn(3000)) * time.Millisecond
		}

		got, err := Tune(TunerConfig{Workers: m}, history, history, lastPull, spans)
		if err != nil {
			t.Fatal(err)
		}

		// Dense grid search at 1ms resolution up to the history span.
		bestF := 0.0 // F(no speculation) baseline: disabled counts as 0
		for d := time.Millisecond; d <= 10*time.Second; d += time.Millisecond {
			if f := evalF(m, history, lastPull, spans, d); f > bestF {
				bestF = f
			}
		}

		var gotF float64
		if got.Enabled {
			gotF = got.Improvement
			// Cross-check the tuner's own arithmetic.
			if direct := evalF(m, history, lastPull, spans, got.AbortTime); direct < gotF-1e-9 || direct > gotF+1e-9 {
				t.Fatalf("trial %d: tuner reports F=%v but direct eval gives %v", trial, gotF, direct)
			}
		}
		// The grid is finer than push-gap candidates in pathological spots,
		// but the step-function argument says the tuner must match it.
		if gotF < bestF-1e-6 {
			t.Errorf("trial %d (m=%d): tuner F=%v < grid best %v", trial, m, gotF, bestF)
		}
	}
}

func sortPushes(ps []PushRecord) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].At.Before(ps[j-1].At); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func TestCandidateClampAndCap(t *testing.T) {
	pushes := []PushRecord{
		{At: at(0)}, {At: at(10)}, {At: at(20)}, {At: at(500)}, {At: at(5000)},
	}
	pulls := []time.Time{at(0), at(10), at(20), at(500), at(5000)}
	cands := candidateWindows(TunerConfig{Workers: 2, MinAbort: 15 * time.Millisecond, MaxAbort: time.Second}, pushes, pulls)
	for _, d := range cands {
		if d < 15*time.Millisecond || d > time.Second {
			t.Errorf("candidate %v escapes clamp", d)
		}
	}
	capped := candidateWindows(TunerConfig{Workers: 2, MaxCandidates: 3}, pushes, pulls)
	if len(capped) > 3 {
		t.Errorf("cap ignored: %d candidates", len(capped))
	}
	// Sub-sampling must preserve ordering and bounds.
	for i := 1; i < len(capped); i++ {
		if capped[i] <= capped[i-1] {
			t.Errorf("capped candidates not increasing: %v", capped)
		}
	}
}

func TestTuneAliveFilter(t *testing.T) {
	// Three workers, but worker 2 is evicted. The tuner must behave exactly
	// as the two-live-worker problem: worker 2's pushes predict no gain,
	// its stale pull seeds no candidates, and its rate comes back zero.
	history := []PushRecord{
		{At: at(0), Worker: 0},
		{At: at(50), Worker: 2},  // evicted worker's push: ignored
		{At: at(100), Worker: 1},
	}
	lastPull := []time.Time{at(0), at(100), at(900)} // worker 2's pull is stale
	spans := []time.Duration{time.Second, time.Second, time.Second}
	alive := []bool{true, true, false}

	got, err := Tune(TunerConfig{Workers: 3, Alive: alive}, history, history, lastPull, spans)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Enabled {
		t.Fatal("expected speculation enabled")
	}
	// Identical numbers to TestTuneSimpleScenario's two-worker problem.
	if got.AbortTime != 100*time.Millisecond {
		t.Errorf("AbortTime = %v, want 100ms", got.AbortTime)
	}
	if got.Improvement < 0.79 || got.Improvement > 0.81 {
		t.Errorf("Improvement = %v, want 0.8", got.Improvement)
	}
	for i := 0; i < 2; i++ {
		if r := got.Rates[i]; r < 0.049 || r > 0.051 {
			t.Errorf("Rates[%d] = %v, want 0.05", i, r)
		}
	}
	if got.Rates[2] != 0 {
		t.Errorf("Rates[2] = %v, want 0 (evicted)", got.Rates[2])
	}

	// Fewer than two live members cannot tune.
	if _, err := Tune(TunerConfig{Workers: 3, Alive: []bool{true, false, false}}, history, history, lastPull, spans); err == nil {
		t.Error("expected error for <2 live workers")
	}
	// Mis-sized Alive is rejected.
	if _, err := Tune(TunerConfig{Workers: 3, Alive: []bool{true, true}}, history, history, lastPull, spans); err == nil {
		t.Error("expected error for mis-sized Alive")
	}
}
