package core

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"specsync/internal/metrics"
	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/obs"
	"specsync/internal/scheme"
	"specsync/internal/switcher"
	"specsync/internal/trace"
	"specsync/internal/wire"
)

// SchedulerConfig configures the centralized SpecSync scheduler.
type SchedulerConfig struct {
	// Workers is the number of workers m.
	Workers int
	// Scheme selects the synchronization scheme.
	Scheme scheme.Config
	// Tuner bounds the adaptive search (Workers is filled automatically).
	Tuner TunerConfig
	// InitialSpan seeds the per-worker iteration-span estimate before any
	// measurement exists (use the workload's nominal iteration time).
	InitialSpan time.Duration
	// SpanAlpha is the EWMA weight of a new span sample; zero means 0.3.
	SpanAlpha float64
	// HistoryLimit caps retained push records; zero means 32 * Workers.
	HistoryLimit int
	// Tracer, if non-nil, receives re-sync and epoch events.
	Tracer trace.Tracer
	// OnTune, if non-nil, is invoked after each adaptive tuning pass.
	OnTune func(epoch int, t Tuning)
	// CheckAtExpiryOnly restores the paper's literal Algorithm 2, which
	// evaluates the push count once, when the speculation window expires.
	// The default (eager) implementation issues the re-sync the moment the
	// count crosses the threshold, so a burst of pushes landing mid-window
	// aborts the worker immediately instead of up to ABORT_TIME later —
	// same trigger condition, strictly earlier refresh. The ablation bench
	// compares both.
	CheckAtExpiryOnly bool
	// RateMargin scales the adaptive ABORT_RATE (>= 1; zero means the
	// default 2). The paper's Gamma = l~/m is the freshness break-even
	// point; it prices the freshness lost by delaying the worker's push but
	// not the computation thrown away by the restart itself. In this
	// substrate that break-even triggers aborts on roughly half of all
	// iterations, and the wasted compute cancels the freshness gains, so
	// the default demands the expected gain clear the loss estimate by 2x.
	// Set to 1 for the paper's literal threshold (ablation).
	RateMargin float64
	// LivenessTimeout, when positive, enables failure detection: a worker
	// whose last sign of life (notify or heartbeat) is older than this is
	// evicted from membership — it stops counting toward epoch boundaries,
	// speculation thresholds, the BSP barrier, and SSP min-clock, and the
	// tuner ignores its history. Any later message re-admits it. Zero
	// disables liveness tracking (every worker is a permanent member).
	LivenessTimeout time.Duration
	// Faults, if non-nil, receives eviction/re-admission counts.
	Faults *metrics.Faults
	// Obs, if non-nil, receives re-sync/epoch/membership telemetry and
	// publishes the aggregated cluster snapshot served at /clusterz.
	Obs *obs.SchedulerObs
	// Generation is this scheduler's incarnation number. Zero is the
	// original process; a positive value marks a post-crash restart, which
	// broadcasts SchedulerHello (instead of Start) on Init so workers
	// re-report their state and leave degraded mode.
	Generation int64
	// BeaconEvery, when positive, broadcasts a periodic SchedulerBeacon so
	// workers' scheduler-failure detectors have a liveness signal that does
	// not depend on re-sync or release traffic.
	BeaconEvery time.Duration
	// ActiveWorkers is how many of the Workers capacity slots start in
	// membership (zero means all). Elastic runs size Workers to the scale
	// plan's maximum and start the rest unjoined: those slots are not
	// started, not counted by the tuner/barrier/epoch logic, and enter via
	// JoinReq.
	ActiveWorkers int
	// Routing, when non-nil, enables elastic membership: the scheduler owns
	// this epoch-stamped shard→server table, admits JoinReqs, and drives
	// shard migrations on ScaleCmds (see elastic.go).
	Routing *RoutingTable
	// OnRouting, if non-nil, is invoked with a copy of the table after each
	// commit (the harness re-aims its probe assembly).
	OnRouting func(*RoutingTable)
	// Switcher, when non-nil, enables the meta-scheme: the policy is
	// evaluated at every epoch boundary with the straggler telemetry from
	// Obs and its decisions are executed as live scheme switches. Requires
	// a plain (non-variant, non-speculative, centralized) scheme.
	Switcher *switcher.Config
	// TrackSpans feeds worker-reported NotifyV2 work spans to the straggler
	// detector even on plain static schemes (straggler-profile runs force it
	// on: notify intervals synchronize under a barrier, so only self-measured
	// spans can tell a straggler from the fleet it stalls).
	TrackSpans bool
	// Mitigate, when non-nil, arms the periodic straggler-mitigation pass
	// (see mitigate.go). Implies TrackSpans.
	Mitigate *MitigateConfig
}

// Scheduler is the central coordinator (paper Fig. 7): it observes notify
// messages from workers, runs the speculation check for each worker
// (Algorithm 2, scheduler side), retunes hyperparameters each epoch
// (Algorithm 1), and implements the BSP barrier and SSP clock services for
// the baseline schemes.
type Scheduler struct {
	ctx node.Context
	cfg SchedulerConfig
	m   int

	// Speculation state.
	specEnabled bool
	abortTime   time.Duration
	rates       []float64
	windows     []specWindow

	// Push history and epoch tracking.
	history    []PushRecord
	lastNotify []time.Time
	spanEWMA   []time.Duration
	pushed     []bool
	pushedN    int
	epoch      atomic.Int64
	epochStart time.Time

	// notifyCount[i] is the number of completed iterations worker i has
	// reported via Notify (== last Notify.Iter + 1). A restarted scheduler
	// compares it against StateReport.Iter to detect pushes it missed while
	// down and rebuild the pushed-this-epoch bitmap.
	notifyCount []int64

	// BSP barrier state. waitingBSP marks workers already counted into the
	// current barrier round (via Notify or a post-restart StateReport), so
	// the rebuild never double-counts; it resets on every release.
	barrierN   int
	round      int64
	waitingBSP []bool

	// SSP clock state.
	completed []int64
	minClock  int64

	// Membership / liveness state (LivenessTimeout > 0).
	alive           []bool
	aliveN          int
	lastSeen        []time.Time
	membershipEpoch atomic.Int64

	// Elastic state (cfg.Routing != nil; see elastic.go). joined
	// distinguishes "never joined" from "evicted" so liveness re-admission
	// cannot resurrect a slot that has not sent JoinReq yet.
	joined      []bool
	routing     *RoutingTable
	nextRouting *RoutingTable
	liveServers []int
	migrating   bool
	migStart    time.Time
	migExpect   map[int]bool
	migInvolved []int
	migBytes    int64
	pendingOps  []*msg.ScaleCmd
	scale       scaleCounters

	// Dynamic scheme state (see switch.go). cur is the active discipline;
	// plain schemes never change it, variants and the meta-scheme rewrite
	// it through switchTo. workSpan is the EWMA of NotifyV2-reported work
	// spans, allocated only on dynamic runs.
	cur           scheme.Runtime
	schemeEpoch   int64
	switches      atomic.Int64
	lastSwitchAt  time.Time
	lastSwitchWhy string
	policy        *switcher.Policy
	workSpan      []time.Duration

	// Straggler-mitigation state (cfg.Mitigate != nil; see mitigate.go).
	mit *mitigateState

	resyncsSent  atomic.Int64
	tunes        int64
	stateReports int64
	restored     bool // booted from a checkpoint snapshot
}

// specWindow tracks one worker's open speculation window.
type specWindow struct {
	armed     bool
	deadline  time.Time
	iter      int64 // iteration to abort if the threshold is met
	threshold float64
	cnt       int
	cancel    node.CancelFunc
}

var _ node.Handler = (*Scheduler)(nil)

// NewScheduler validates the configuration and builds the scheduler.
func NewScheduler(cfg SchedulerConfig) (*Scheduler, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("core: scheduler needs at least 1 worker")
	}
	if err := cfg.Scheme.Validate(); err != nil {
		return nil, err
	}
	if cfg.InitialSpan <= 0 {
		return nil, fmt.Errorf("core: InitialSpan must be positive (nominal iteration time)")
	}
	if cfg.SpanAlpha == 0 {
		cfg.SpanAlpha = 0.3
	}
	if cfg.SpanAlpha < 0 || cfg.SpanAlpha > 1 {
		return nil, fmt.Errorf("core: SpanAlpha %v outside (0,1]", cfg.SpanAlpha)
	}
	if cfg.HistoryLimit == 0 {
		cfg.HistoryLimit = 32 * cfg.Workers
	}
	if cfg.RateMargin == 0 {
		cfg.RateMargin = 2
	}
	if cfg.RateMargin < 1 {
		return nil, fmt.Errorf("core: RateMargin %v must be >= 1", cfg.RateMargin)
	}
	if cfg.ActiveWorkers == 0 {
		cfg.ActiveWorkers = cfg.Workers
	}
	if cfg.ActiveWorkers < 1 || cfg.ActiveWorkers > cfg.Workers {
		return nil, fmt.Errorf("core: ActiveWorkers %d outside [1,%d]", cfg.ActiveWorkers, cfg.Workers)
	}
	if cfg.Routing != nil {
		if err := cfg.Routing.Validate(); err != nil {
			return nil, err
		}
		cfg.Routing = cfg.Routing.Clone()
	}
	cfg.Tuner.Workers = cfg.Workers

	s := &Scheduler{
		cfg:         cfg,
		m:           cfg.Workers,
		lastNotify:  make([]time.Time, cfg.Workers),
		spanEWMA:    make([]time.Duration, cfg.Workers),
		pushed:      make([]bool, cfg.Workers),
		notifyCount: make([]int64, cfg.Workers),
		completed:   make([]int64, cfg.Workers),
		rates:       make([]float64, cfg.Workers),
		windows:     make([]specWindow, cfg.Workers),
		waitingBSP:  make([]bool, cfg.Workers),
		alive:       make([]bool, cfg.Workers),
		joined:      make([]bool, cfg.Workers),
		aliveN:      cfg.ActiveWorkers,
	}
	for i := 0; i < cfg.ActiveWorkers; i++ {
		s.alive[i] = true
		s.joined[i] = true
	}
	s.cur = cfg.Scheme.InitialRuntime()
	if cfg.Switcher != nil {
		if err := cfg.Switcher.Validate(); err != nil {
			return nil, err
		}
		if cfg.Scheme.Variant != scheme.VariantNone || cfg.Scheme.Spec != scheme.SpecOff || cfg.Scheme.Decentralized {
			return nil, fmt.Errorf("core: the meta-scheme requires a plain centralized scheme (got %s)", cfg.Scheme.Name())
		}
		s.policy = switcher.New(*cfg.Switcher)
	}
	if cfg.Mitigate != nil {
		if err := cfg.Mitigate.validate(cfg.Workers); err != nil {
			return nil, err
		}
		if cfg.Mitigate.Mode == MitigateRebalance && cfg.Routing == nil {
			return nil, fmt.Errorf("core: rebalance mitigation requires elastic membership (Routing)")
		}
		cfg.TrackSpans = true
		s.cfg = cfg
		s.mit = &mitigateState{
			cloneOf:  make([]int, cfg.Mitigate.Spares),
			cloneFor: make(map[int]int),
			selfIter: make([]int64, cfg.Workers),
			acted:    make(map[int]bool),
		}
		for i := range s.mit.cloneOf {
			s.mit.cloneOf[i] = -1
		}
	}
	if s.dynamic() || cfg.TrackSpans {
		s.workSpan = make([]time.Duration, cfg.Workers)
	}
	if cfg.Routing != nil {
		s.routing = cfg.Routing
		s.liveServers = s.routing.Servers()
	}
	for i := range s.spanEWMA {
		s.spanEWMA[i] = cfg.InitialSpan
	}
	// Cherrypick starts speculating immediately with the fixed values;
	// Adaptive waits for the first epoch of history.
	if cfg.Scheme.Spec == scheme.SpecFixed {
		s.specEnabled = true
		s.abortTime = cfg.Scheme.AbortTime
		for i := range s.rates {
			s.rates[i] = cfg.Scheme.AbortRate
		}
	}
	return s, nil
}

// Init implements node.Handler. The original incarnation launches every
// worker; a restarted one (Generation > 0) instead announces itself with
// SchedulerHello so workers answer with StateReports and the barrier /
// clock / epoch state rebuilds.
func (s *Scheduler) Init(ctx node.Context) {
	s.ctx = ctx
	now := ctx.Now()
	if s.epochStart.IsZero() || !s.restored {
		s.epochStart = now
	}
	s.cfg.Obs.Tune(s.specEnabled, s.abortTime, metrics.Mean(s.rates))
	s.cfg.Obs.AliveWorkers(s.aliveN)
	if s.cfg.LivenessTimeout > 0 {
		s.lastSeen = make([]time.Time, s.m)
		for i := range s.lastSeen {
			s.lastSeen[i] = now
		}
		s.armLivenessSweep()
	}
	if s.cfg.BeaconEvery > 0 {
		s.armBeacon()
	}
	if s.cfg.Mitigate != nil {
		s.mit.start = now
		s.armMitigate()
	}
	if s.cfg.Generation > 0 {
		s.cfg.Obs.Restarted(now, s.cfg.Generation)
		if s.cfg.Tracer != nil {
			s.cfg.Tracer.Record(trace.Event{At: now, Worker: trace.SchedulerNode, Kind: trace.KindRecover, Value: s.cfg.Generation})
		}
		for i := 0; i < s.m; i++ {
			ctx.Send(node.WorkerID(i), &msg.SchedulerHello{Gen: s.cfg.Generation})
		}
		// Workers reset their scheme epoch on a newer-generation hello, so a
		// restart re-announce restores the checkpointed discipline even if
		// the fleet had applied switches the checkpoint never saw.
		if s.dynamic() && s.schemeEpoch > 0 {
			for i := 0; i < s.m; i++ {
				s.resendScheme(i, now)
			}
		}
		s.publishCluster(now)
		return
	}
	for i := 0; i < s.cfg.ActiveWorkers; i++ {
		ctx.Send(node.WorkerID(i), &msg.Start{})
	}
}

// armBeacon schedules the periodic scheduler liveness beacon.
func (s *Scheduler) armBeacon() {
	s.ctx.After(s.cfg.BeaconEvery, func() {
		for i := 0; i < s.m; i++ {
			s.ctx.Send(node.WorkerID(i), &msg.SchedulerBeacon{Gen: s.cfg.Generation})
		}
		s.armBeacon()
	})
}

// armLivenessSweep schedules the periodic failure-detection pass. Sweeping at
// half the timeout bounds detection latency to 1.5x LivenessTimeout.
func (s *Scheduler) armLivenessSweep() {
	s.ctx.After(s.cfg.LivenessTimeout/2, func() {
		s.sweepLiveness(s.ctx.Now())
		s.armLivenessSweep()
	})
}

// touch records a sign of life from worker i, re-admitting it if it had been
// evicted. Any message counts as proof of life — a restarted worker rejoins
// membership on its first notify or heartbeat.
func (s *Scheduler) touch(i int, now time.Time) {
	if s.cfg.LivenessTimeout <= 0 {
		return
	}
	s.lastSeen[i] = now
	if s.alive[i] {
		return
	}
	if !s.joined[i] {
		// An unjoined elastic capacity slot: only JoinReq admits it.
		return
	}
	s.alive[i] = true
	s.aliveN++
	epoch := s.membershipEpoch.Add(1)
	s.cfg.Faults.RecordReadmission()
	s.cfg.Obs.Readmit(now, i, epoch)
	s.cfg.Obs.AliveWorkers(s.aliveN)
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Record(trace.Event{At: now, Worker: i, Kind: trace.KindRecover, Value: epoch})
	}
	s.ctx.Logf("scheduler: worker %d re-admitted (membership epoch %d)", i, epoch)
	// A restarted worker boots under the configured scheme; bring it up to
	// the active discipline.
	s.resendScheme(i, now)
}

// sweepLiveness evicts every member whose last sign of life is stale.
func (s *Scheduler) sweepLiveness(now time.Time) {
	for i := 0; i < s.m; i++ {
		if s.alive[i] && now.Sub(s.lastSeen[i]) > s.cfg.LivenessTimeout {
			s.evict(i, now)
		}
	}
}

// evict removes worker i from membership: its speculation window is torn
// down, it no longer counts toward epoch boundaries, speculation thresholds,
// the BSP barrier, or the SSP min-clock, and the tuner ignores its history.
func (s *Scheduler) evict(i int, now time.Time) {
	s.alive[i] = false
	s.aliveN--
	epoch := s.membershipEpoch.Add(1)
	s.cfg.Faults.RecordEviction()
	s.cfg.Obs.Evict(now, i, epoch)
	s.cfg.Obs.AliveWorkers(s.aliveN)
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Record(trace.Event{At: now, Worker: i, Kind: trace.KindEvict, Value: epoch})
	}
	s.ctx.Logf("scheduler: worker %d evicted (membership epoch %d)", i, epoch)
	s.dropFromCoordination(i, now)
}

// dropFromCoordination removes a worker that just left membership (eviction
// or planned retirement) from every coordination structure: speculation
// window, epoch bitmap, BSP barrier, and SSP min-clock.
func (s *Scheduler) dropFromCoordination(i int, now time.Time) {
	// Tear down the departed worker's speculation window.
	w := &s.windows[i]
	if w.cancel != nil {
		w.cancel()
		w.cancel = nil
	}
	w.armed = false

	// The epoch may now be complete without the departed worker's push.
	if s.pushed[i] {
		s.pushed[i] = false
		s.pushedN--
	}
	if s.aliveN > 0 && s.pushedN == s.aliveN {
		s.epochBoundary(now)
	}

	// A BSP barrier waiting on the departed worker must release.
	if s.cur.Base == scheme.BSP && s.aliveN > 0 && s.barrierN >= s.barrierNeed() {
		s.releaseBarrier()
	}

	// The SSP min-clock may have been pinned by the departed straggler.
	if s.cur.Base == scheme.SSP {
		s.broadcastMinClock()
	}
}

// Receive implements node.Handler.
func (s *Scheduler) Receive(from node.ID, m wire.Message) {
	switch mm := m.(type) {
	case *msg.Notify:
		s.handleNotify(from, mm)
	case *msg.NotifyV2:
		s.handleNotifyV2(from, mm)
	case *msg.Heartbeat:
		if i := node.WorkerIndex(from); i >= 0 && i < s.m {
			s.touch(i, s.ctx.Now())
		}
	case *msg.StateReport:
		if i := node.WorkerIndex(from); i >= 0 && i < s.m {
			s.handleStateReport(i, mm)
		}
	case *msg.JoinReq:
		s.handleJoinReq(from)
	case *msg.MigrateDone:
		s.handleMigrateDone(from, mm)
	case *msg.ScaleCmd:
		s.handleScaleCmd(mm)
	case *msg.Stop:
		// The harness signals shutdown; nothing to tear down centrally.
	default:
		s.ctx.Logf("scheduler: unexpected message %T from %s", m, from)
	}
}

// handleNotify is Algorithm 2's HandleNotification: record the push, start
// the sender's speculation window, and service epoch/BSP/SSP bookkeeping.
func (s *Scheduler) handleNotify(from node.ID, n *msg.Notify) {
	i := node.WorkerIndex(from)
	if i < 0 || i >= s.m {
		s.ctx.Logf("scheduler: notify from non-worker %s", from)
		return
	}
	if s.cloneSlot(i) {
		s.handleCloneNotify(i, n)
		return
	}
	now := s.ctx.Now()
	s.touch(i, now)
	if s.routing != nil && !s.alive[i] {
		// A straggling notify from a retired (or not-yet-joined) elastic
		// slot: counting it into epochs or the barrier would let a
		// non-member drive coordination.
		return
	}
	if s.mit != nil {
		// The worker's OWN completed count (clone notifies are translated in
		// handleCloneNotify and never reach here); stopClone compares it to
		// the clone-driven frontier to decide when the original caught up.
		if c := n.Iter + 1; c > s.mit.selfIter[i] {
			s.mit.selfIter[i] = c
		}
	}

	// Iteration-span estimate (includes abort/restart overheads, which is
	// what the loss model of Eq. 6 wants). On dynamic runs the straggler
	// detector is fed from worker-reported work spans instead (NotifyV2 in
	// handleNotifyV2): notify intervals synchronize under a barrier, so
	// they cannot tell a straggler from the fleet it is stalling.
	if !s.lastNotify[i].IsZero() {
		span := now.Sub(s.lastNotify[i])
		if span > 0 {
			a := s.cfg.SpanAlpha
			s.spanEWMA[i] = time.Duration((1-a)*float64(s.spanEWMA[i]) + a*float64(span))
			if s.workSpan == nil {
				s.cfg.Obs.WorkerSpan(now, i, s.spanEWMA[i])
			}
		}
	}
	s.lastNotify[i] = now

	// Push history (bounded).
	s.history = append(s.history, PushRecord{At: now, Worker: i})
	if len(s.history) > s.cfg.HistoryLimit {
		drop := len(s.history) - s.cfg.HistoryLimit
		s.history = append(s.history[:0], s.history[drop:]...)
	}

	// Completed-iteration count, for post-restart epoch rebuilds.
	if c := n.Iter + 1; c > s.notifyCount[i] {
		s.notifyCount[i] = c
	}

	// Epoch tracking: an epoch completes when every live member pushed at
	// least once since the previous boundary (paper Sec. II-B).
	if !s.pushed[i] {
		s.pushed[i] = true
		s.pushedN++
		if s.pushedN >= s.aliveN {
			s.epochBoundary(now)
		}
	}

	// Count this push into every other worker's open window, firing eager
	// re-syncs as thresholds are crossed.
	s.countIntoWindows(i, now)

	// Open the sender's speculation window (Algorithm 2 lines 5-10,
	// scheduler side). The iteration the sender is about to compute is
	// n.Iter+1.
	if s.specEnabled && s.abortTime > 0 {
		s.armWindow(i, n.Iter+1, now)
	}

	// BSP barrier (membership-aware: the barrier waits only on live members).
	// The round tracks notified iterations (a no-op in healthy runs, where
	// round == n.Iter at notify time) so a cold-restarted scheduler's next
	// release carries a round number the waiting workers will accept; the
	// waitingBSP guard keeps duplicated notifies and post-restart
	// StateReports from double-counting one worker into the barrier.
	if s.cur.Base == scheme.BSP {
		if n.Iter > s.round {
			s.round = n.Iter
		}
		// Under clone mitigation a notify for an iteration older than the
		// current round is stale — the clone raced this worker through the
		// round and its barrier already released; counting it would advance
		// the new barrier on a worker that has not computed in it. Without
		// mitigation the old behavior (count every first notify per round)
		// is kept bit-for-bit.
		if (s.mit == nil || n.Iter >= s.round) && !s.waitingBSP[i] {
			s.waitingBSP[i] = true
			s.barrierN++
			if s.barrierN >= s.barrierNeed() {
				s.releaseBarrier()
			}
		}
	}

	// SSP clocks (the min is taken over live members only).
	if s.cur.Base == scheme.SSP {
		if c := n.Iter + 1; c > s.completed[i] {
			s.completed[i] = c
		}
		s.broadcastMinClock()
	}

	s.publishCluster(now)
}

// handleNotifyV2 consumes the dynamic-run notify: the worker's self-measured
// work span (pull+compute+push, no barrier or gate waits) feeds the
// straggler detector — a signal independent of how tightly the active
// discipline synchronizes the fleet — and the rest is plain notify handling.
func (s *Scheduler) handleNotifyV2(from node.ID, n *msg.NotifyV2) {
	i := node.WorkerIndex(from)
	if i >= 0 && i < s.m && s.cloneSlot(i) {
		// A clone's span is the spare host's, not the straggler's: feeding it
		// would clear the target's flag and oscillate the clone on and off.
		s.handleCloneNotify(i, &msg.Notify{Iter: n.Iter})
		return
	}
	if i >= 0 && i < s.m && s.workSpan != nil && n.Span > 0 {
		a := s.cfg.SpanAlpha
		if s.workSpan[i] == 0 {
			s.workSpan[i] = n.Span
		} else {
			s.workSpan[i] = time.Duration((1-a)*float64(s.workSpan[i]) + a*float64(n.Span))
		}
		s.cfg.Obs.WorkerSpan(s.ctx.Now(), i, s.workSpan[i])
	}
	s.handleNotify(from, &msg.Notify{Iter: n.Iter})
}

// publishCluster refreshes the /clusterz snapshot: per-worker push rates over
// the retained history window, the current speculation hyperparameters, and
// each worker's spec-window state. Nothing is sent and no timer is scheduled,
// so publishing cannot perturb simulated runs.
func (s *Scheduler) publishCluster(now time.Time) {
	if s.cfg.Obs == nil {
		return
	}
	counts := make([]int, s.m)
	for _, rec := range s.history {
		counts[rec.Worker]++
	}
	var window time.Duration
	if len(s.history) > 0 {
		window = now.Sub(s.history[0].At)
	}
	workers := make([]obs.WorkerState, s.m)
	for i := range workers {
		w := &s.windows[i]
		rate := 0.0
		if window > 0 {
			rate = float64(counts[i]) / window.Seconds()
		}
		workers[i] = obs.WorkerState{
			Index:           i,
			Alive:           s.alive[i],
			PushRate:        rate,
			AbortRate:       s.rates[i],
			IterSpanSeconds: s.spanEWMA[i].Seconds(),
			WindowArmed:     w.armed,
			WindowCount:     w.cnt,
			WindowThreshold: int(math.Ceil(w.threshold)),
		}
	}
	s.cfg.Obs.PublishCluster(obs.ClusterSnapshot{
		At:               now,
		Epoch:            s.epoch.Load(),
		MembershipEpoch:  s.membershipEpoch.Load(),
		SpecEnabled:      s.specEnabled,
		AbortTimeSeconds: s.abortTime.Seconds(),
		AliveWorkers:     s.aliveN,
		Workers:          workers,
		Generation:       s.cfg.Generation,
		RestoredFromCk:   s.restored,
		StateReports:     s.stateReports,
		Scheme:           s.cur.String(),
		SchemeEpoch:      s.schemeEpoch,
		SchemeSwitches:   s.switches.Load(),
		LastSwitchReason: s.lastSwitchWhy,
		LastSwitchAt:     s.lastSwitchAt,
	})
}

// releaseBarrier opens the BSP barrier for the next round.
func (s *Scheduler) releaseBarrier() {
	s.barrierN = 0
	for i := range s.waitingBSP {
		s.waitingBSP[i] = false
	}
	s.round++
	s.cfg.Obs.BarrierRelease(s.ctx.Now(), s.round, s.m)
	for w := 0; w < s.m; w++ {
		s.ctx.Send(node.WorkerID(w), &msg.BarrierRelease{Round: s.round})
	}
}

// handleStateReport consumes a worker's answer to SchedulerHello (or to a
// newer-generation beacon): it rebuilds the membership, epoch,
// BSP-barrier, and SSP-clock state a restarted scheduler lost or holds
// stale from its checkpoint.
func (s *Scheduler) handleStateReport(i int, r *msg.StateReport) {
	now := s.ctx.Now()
	s.touch(i, now)
	s.stateReports++
	s.cfg.Faults.RecordStateReport()
	s.cfg.Obs.StateReport()

	// Pushes the scheduler never saw a Notify for happened while it was
	// down; fold them into the pushed-this-epoch bitmap.
	if r.Iter > s.notifyCount[i] {
		s.notifyCount[i] = r.Iter
		if !s.pushed[i] {
			s.pushed[i] = true
			s.pushedN++
			if s.pushedN >= s.aliveN {
				s.epochBoundary(now)
			}
		}
	}

	switch s.cur.Base {
	case scheme.SSP:
		if r.Clock > s.completed[i] {
			s.completed[i] = r.Clock
		}
		s.broadcastMinClock()
		if r.Waiting && s.minClock > 0 {
			// Re-issue the clock directly in case the worker missed the
			// last broadcast while the scheduler was down.
			s.ctx.Send(node.WorkerID(i), &msg.MinClock{Clock: s.minClock})
		}
	case scheme.BSP:
		// A computing reporter (completed Iter pushes) was last released
		// into round >= Iter; a waiting one only proves round >= Iter-1.
		min := r.Iter
		if r.Waiting {
			min = r.Iter - 1
		}
		if min > s.round {
			s.round = min
		}
		if r.Waiting {
			if s.round >= r.Iter {
				// The release this worker is parked on already happened
				// (restored round from a checkpoint, or a missed
				// broadcast); re-issue it directly.
				s.ctx.Send(node.WorkerID(i), &msg.BarrierRelease{Round: s.round})
			} else if !s.waitingBSP[i] {
				s.waitingBSP[i] = true
				s.barrierN++
				if s.barrierN >= s.barrierNeed() {
					s.releaseBarrier()
				}
			}
		}
	}

	s.publishCluster(now)
}

// broadcastMinClock recomputes the SSP min-clock over live members and
// broadcasts it if it advanced. The clock never regresses: a re-admitted
// straggler re-pins the min only for clocks it has yet to reach.
func (s *Scheduler) broadcastMinClock() {
	if s.aliveN == 0 {
		return
	}
	min := int64(-1)
	for w := 0; w < s.m; w++ {
		if !s.alive[w] {
			continue
		}
		if min < 0 || s.completed[w] < min {
			min = s.completed[w]
		}
	}
	if min > s.minClock {
		s.minClock = min
		for w := 0; w < s.m; w++ {
			s.ctx.Send(node.WorkerID(w), &msg.MinClock{Clock: min})
		}
	}
}

// armWindow opens worker i's speculation window. Any previous window is
// replaced (it would have expired already in normal operation).
func (s *Scheduler) armWindow(i int, abortIter int64, now time.Time) {
	w := &s.windows[i]
	if w.cancel != nil {
		w.cancel()
	}
	rate := s.rates[i]
	if s.cfg.Scheme.Spec == scheme.SpecAdaptive {
		rate *= s.cfg.RateMargin
	}
	*w = specWindow{
		armed:     true,
		deadline:  now.Add(s.abortTime),
		iter:      abortIter,
		threshold: float64(s.aliveN) * rate,
	}
	w.cancel = s.ctx.After(s.abortTime, func() {
		s.expireWindow(i, abortIter)
	})
}

// countIntoWindows is Algorithm 2's CheckResync counting, kept incrementally:
// the push just received from `pusher` lands in every other worker's open
// window. In eager mode the re-sync fires as soon as a window's threshold is
// met; in expiry mode the count is merely accumulated.
func (s *Scheduler) countIntoWindows(pusher int, now time.Time) {
	for i := range s.windows {
		w := &s.windows[i]
		if !w.armed || i == pusher {
			continue
		}
		if now.After(w.deadline) {
			w.armed = false
			continue
		}
		w.cnt++
		if !s.cfg.CheckAtExpiryOnly && s.thresholdMet(w) {
			s.fireResync(i, w)
		}
	}
}

// expireWindow is the paper's end-of-window check (and the disarm point for
// eager mode).
func (s *Scheduler) expireWindow(i int, abortIter int64) {
	w := &s.windows[i]
	if !w.armed || w.iter != abortIter {
		return
	}
	if s.cfg.CheckAtExpiryOnly && s.thresholdMet(w) {
		s.fireResync(i, w)
		return
	}
	w.armed = false
}

// thresholdMet applies cnt >= m*ABORT_RATE with the degenerate guard that
// zero fresh updates never justify a restart.
func (s *Scheduler) thresholdMet(w *specWindow) bool {
	return w.cnt >= 1 && float64(w.cnt) >= w.threshold
}

func (s *Scheduler) fireResync(i int, w *specWindow) {
	w.armed = false
	if w.cancel != nil {
		w.cancel()
		w.cancel = nil
	}
	s.resyncsSent.Add(1)
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Record(trace.Event{At: s.ctx.Now(), Worker: i, Kind: trace.KindReSync, Iter: w.iter, Value: int64(w.cnt)})
	}
	s.cfg.Obs.ReSync(s.ctx.Now(), i, w.iter, w.cnt)
	s.ctx.Send(node.WorkerID(i), &msg.ReSync{Iter: w.iter})
}

// epochBoundary closes the epoch and, in adaptive mode, retunes the
// hyperparameters from the finished epoch's push history (Algorithm 1).
func (s *Scheduler) epochBoundary(now time.Time) {
	epoch := s.epoch.Add(1)
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Record(trace.Event{At: now, Worker: -1, Kind: trace.KindEpoch, Iter: epoch})
	}
	s.cfg.Obs.Epoch(now, epoch)
	if s.cfg.Scheme.Spec == scheme.SpecAdaptive {
		s.retune(now)
	}
	for i := range s.pushed {
		s.pushed[i] = false
	}
	s.pushedN = 0
	s.epochStart = now
	if s.dynamic() {
		s.maybeSwitch(now)
	}
}

func (s *Scheduler) retune(now time.Time) {
	// Pushes of the finished epoch drive candidate generation.
	var epochPushes []PushRecord
	for _, rec := range s.history {
		if rec.At.After(s.epochStart) && !rec.At.After(now) {
			epochPushes = append(epochPushes, rec)
		}
	}
	lastPull := make([]time.Time, s.m)
	copy(lastPull, s.lastNotify)
	spans := make([]time.Duration, s.m)
	copy(spans, s.spanEWMA)

	tcfg := s.cfg.Tuner
	if s.aliveN < s.m {
		tcfg.Alive = make([]bool, s.m)
		copy(tcfg.Alive, s.alive)
	}
	if tcfg.MaxAbort == 0 {
		// Default ceiling: half the mean iteration span of live members,
		// mirroring the paper's grid-search bound.
		var sum time.Duration
		n := 0
		for i, sp := range spans {
			if s.alive[i] {
				sum += sp
				n++
			}
		}
		if n > 0 {
			tcfg.MaxAbort = sum / time.Duration(2*n)
		}
	}

	tuning, err := Tune(tcfg, s.history, epochPushes, lastPull, spans)
	if err != nil {
		s.ctx.Logf("scheduler: tuner error: %v; speculation paused", err)
		s.specEnabled = false
		return
	}
	s.tunes++
	s.specEnabled = tuning.Enabled
	if tuning.Enabled {
		s.abortTime = tuning.AbortTime
		copy(s.rates, tuning.Rates)
	}
	s.cfg.Obs.Tune(s.specEnabled, s.abortTime, metrics.Mean(s.rates))
	if s.cfg.OnTune != nil {
		s.cfg.OnTune(int(s.epoch.Load()), tuning)
	}
}

// Epoch returns the number of completed epochs. Safe for concurrent use.
func (s *Scheduler) Epoch() int { return int(s.epoch.Load()) }

// ReSyncsSent returns the number of re-sync instructions issued. Safe for
// concurrent use.
func (s *Scheduler) ReSyncsSent() int64 { return s.resyncsSent.Load() }

// Hyperparameters returns the current speculation state (for tests and
// experiment reporting).
func (s *Scheduler) Hyperparameters() (enabled bool, abortTime time.Duration, rates []float64) {
	out := make([]float64, len(s.rates))
	copy(out, s.rates)
	return s.specEnabled, s.abortTime, out
}

// SpanEstimates returns the current per-worker iteration span estimates.
func (s *Scheduler) SpanEstimates() []time.Duration {
	out := make([]time.Duration, len(s.spanEWMA))
	copy(out, s.spanEWMA)
	return out
}

// MembershipEpoch returns the number of membership changes (evictions plus
// re-admissions) observed so far. Safe for concurrent use.
func (s *Scheduler) MembershipEpoch() int64 { return s.membershipEpoch.Load() }

// Generation returns this scheduler's incarnation number (immutable after
// construction, so safe for concurrent use).
func (s *Scheduler) Generation() int64 { return s.cfg.Generation }

// Alive reports current membership (only meaningful from the scheduler's own
// goroutine/mailbox, e.g. in tests after the sim has drained).
func (s *Scheduler) Alive() []bool {
	out := make([]bool, len(s.alive))
	copy(out, s.alive)
	return out
}

// AliveCount returns the current live-member count (same caveat as Alive).
func (s *Scheduler) AliveCount() int { return s.aliveN }
