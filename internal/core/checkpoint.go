package core

import (
	"fmt"
	"io"
	"time"

	"specsync/internal/scheme"
	"specsync/internal/wire"
)

// Scheduler checkpoint support, mirroring ps.Server's: the coordinator's
// speculation, epoch, membership, and BSP/SSP clock state serializes through
// the wire codec so a restarted incarnation resumes warm instead of
// rebuilding everything from worker StateReports. The BSP barrier count and
// the open speculation windows are deliberately NOT checkpointed — both are
// in-flight state that the post-restart SchedulerHello handshake rebuilds
// from live traffic.

const (
	schedCheckpointMagic   uint32 = 0x53505348 // "SPSH"
	schedCheckpointVersion uint8  = 2
)

// SchedulerSnapshot is a point-in-time copy of the scheduler's durable state.
type SchedulerSnapshot struct {
	Generation      int64
	Epoch           int64
	MembershipEpoch int64
	EpochStart      time.Time

	// Speculation hyperparameters and measurement state.
	SpecEnabled bool
	AbortTime   time.Duration
	Rates       []float64
	SpanEWMA    []time.Duration
	LastNotify  []time.Time
	History     []PushRecord
	Tunes       int64

	// Epoch / membership progress.
	NotifyCount []int64
	Pushed      []bool
	Alive       []bool

	// BSP / SSP clocks.
	Round     int64
	Completed []int64
	MinClock  int64

	// Active discipline (scheme zoo). A restarted incarnation must resume
	// under the scheme the fleet is already running, not the configured
	// initial one, or a mid-run switch would silently revert.
	SchemeBase      int
	SchemeStaleness int
	SchemeBeta      float64
	SchemeEpoch     int64
	LastSwitchWhy   string
	LastSwitchAt    time.Time
}

// Snapshot captures the scheduler's current state. Call it only from the
// scheduler's own execution context (or after the runtime has stopped).
func (s *Scheduler) Snapshot() SchedulerSnapshot {
	snap := SchedulerSnapshot{
		Generation:      s.cfg.Generation,
		Epoch:           s.epoch.Load(),
		MembershipEpoch: s.membershipEpoch.Load(),
		EpochStart:      s.epochStart,
		SpecEnabled:     s.specEnabled,
		AbortTime:       s.abortTime,
		Rates:           append([]float64(nil), s.rates...),
		SpanEWMA:        append([]time.Duration(nil), s.spanEWMA...),
		LastNotify:      append([]time.Time(nil), s.lastNotify...),
		History:         append([]PushRecord(nil), s.history...),
		Tunes:           s.tunes,
		NotifyCount:     append([]int64(nil), s.notifyCount...),
		Pushed:          append([]bool(nil), s.pushed...),
		Alive:           append([]bool(nil), s.alive...),
		Round:           s.round,
		Completed:       append([]int64(nil), s.completed...),
		MinClock:        s.minClock,
		SchemeBase:      int(s.cur.Base),
		SchemeStaleness: s.cur.Staleness,
		SchemeBeta:      s.cur.Beta,
		SchemeEpoch:     s.schemeEpoch,
		LastSwitchWhy:   s.lastSwitchWhy,
		LastSwitchAt:    s.lastSwitchAt,
	}
	return snap
}

// Restore overwrites the scheduler's state from a snapshot. It must run
// before Init. The worker count must match; counters derived from the
// restored slices (pushedN, aliveN) are recomputed, and in-flight state
// (speculation windows, the barrier count) starts empty — the restart
// handshake rebuilds it.
func (s *Scheduler) Restore(snap SchedulerSnapshot) error {
	for name, n := range map[string]int{
		"Rates":       len(snap.Rates),
		"SpanEWMA":    len(snap.SpanEWMA),
		"LastNotify":  len(snap.LastNotify),
		"NotifyCount": len(snap.NotifyCount),
		"Pushed":      len(snap.Pushed),
		"Alive":       len(snap.Alive),
		"Completed":   len(snap.Completed),
	} {
		if n != s.m {
			return fmt.Errorf("core: snapshot %s has %d entries, scheduler has %d workers", name, n, s.m)
		}
	}
	s.epoch.Store(snap.Epoch)
	s.membershipEpoch.Store(snap.MembershipEpoch)
	s.epochStart = snap.EpochStart
	s.specEnabled = snap.SpecEnabled
	s.abortTime = snap.AbortTime
	copy(s.rates, snap.Rates)
	copy(s.spanEWMA, snap.SpanEWMA)
	copy(s.lastNotify, snap.LastNotify)
	s.history = append(s.history[:0], snap.History...)
	s.tunes = snap.Tunes
	copy(s.notifyCount, snap.NotifyCount)
	copy(s.pushed, snap.Pushed)
	copy(s.alive, snap.Alive)
	s.round = snap.Round
	copy(s.completed, snap.Completed)
	s.minClock = snap.MinClock
	if snap.SchemeBase != 0 {
		s.cur = scheme.Runtime{
			Base:      scheme.Base(snap.SchemeBase),
			Staleness: snap.SchemeStaleness,
			Beta:      snap.SchemeBeta,
		}
		s.schemeEpoch = snap.SchemeEpoch
		s.lastSwitchWhy = snap.LastSwitchWhy
		s.lastSwitchAt = snap.LastSwitchAt
		s.switches.Store(snap.SchemeEpoch)
	}

	s.pushedN, s.aliveN = 0, 0
	for i := 0; i < s.m; i++ {
		if snap.Pushed[i] {
			s.pushedN++
		}
		if snap.Alive[i] {
			s.aliveN++
		}
		s.waitingBSP[i] = false
	}
	s.barrierN = 0
	s.restored = true
	return nil
}

// Restored reports whether this incarnation booted from a checkpoint.
func (s *Scheduler) Restored() bool { return s.restored }

// StateReports returns the number of worker state reports consumed since
// this incarnation started (same caveat as Alive).
func (s *Scheduler) StateReports() int64 { return s.stateReports }

// writeTime encodes a time with an explicit zero flag: virtual clocks and
// never-notified workers produce zero times that UnixNano cannot represent.
func writeTime(w *wire.Writer, t time.Time) {
	w.Bool(t.IsZero())
	if !t.IsZero() {
		w.Time(t)
	}
}

func readTime(r *wire.Reader) time.Time {
	if r.Bool() {
		return time.Time{}
	}
	return r.Time()
}

// WriteTo serializes the snapshot.
func (snap SchedulerSnapshot) WriteTo(w io.Writer) (int64, error) {
	buf := wire.NewWriter(64 + 32*len(snap.Rates) + 16*len(snap.History))
	buf.Uint32(schedCheckpointMagic)
	buf.Uint8(schedCheckpointVersion)
	buf.Varint(snap.Generation)
	buf.Varint(snap.Epoch)
	buf.Varint(snap.MembershipEpoch)
	writeTime(buf, snap.EpochStart)
	buf.Bool(snap.SpecEnabled)
	buf.Duration(snap.AbortTime)
	buf.Float64s(snap.Rates)
	buf.Int(len(snap.SpanEWMA))
	for _, d := range snap.SpanEWMA {
		buf.Duration(d)
	}
	buf.Int(len(snap.LastNotify))
	for _, t := range snap.LastNotify {
		writeTime(buf, t)
	}
	buf.Int(len(snap.History))
	for _, rec := range snap.History {
		writeTime(buf, rec.At)
		buf.Int(rec.Worker)
	}
	buf.Varint(snap.Tunes)
	buf.Int(len(snap.NotifyCount))
	for _, c := range snap.NotifyCount {
		buf.Varint(c)
	}
	buf.Int(len(snap.Pushed))
	for _, b := range snap.Pushed {
		buf.Bool(b)
	}
	buf.Int(len(snap.Alive))
	for _, b := range snap.Alive {
		buf.Bool(b)
	}
	buf.Varint(snap.Round)
	buf.Int(len(snap.Completed))
	for _, c := range snap.Completed {
		buf.Varint(c)
	}
	buf.Varint(snap.MinClock)
	buf.Int(snap.SchemeBase)
	buf.Int(snap.SchemeStaleness)
	buf.Float64(snap.SchemeBeta)
	buf.Varint(snap.SchemeEpoch)
	buf.String(snap.LastSwitchWhy)
	writeTime(buf, snap.LastSwitchAt)
	n, err := w.Write(buf.Bytes())
	if err != nil {
		return int64(n), fmt.Errorf("core: writing scheduler checkpoint: %w", err)
	}
	return int64(n), nil
}

// ReadSchedulerSnapshot deserializes a snapshot written by WriteTo.
func ReadSchedulerSnapshot(r io.Reader) (SchedulerSnapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return SchedulerSnapshot{}, fmt.Errorf("core: reading scheduler checkpoint: %w", err)
	}
	rd := wire.NewReader(data)
	if magic := rd.Uint32(); magic != schedCheckpointMagic {
		return SchedulerSnapshot{}, fmt.Errorf("core: bad scheduler checkpoint magic %#x", magic)
	}
	if v := rd.Uint8(); v != schedCheckpointVersion {
		return SchedulerSnapshot{}, fmt.Errorf("core: unsupported scheduler checkpoint version %d", v)
	}
	var snap SchedulerSnapshot
	snap.Generation = rd.Varint()
	snap.Epoch = rd.Varint()
	snap.MembershipEpoch = rd.Varint()
	snap.EpochStart = readTime(rd)
	snap.SpecEnabled = rd.Bool()
	snap.AbortTime = rd.Duration()
	snap.Rates = rd.Float64s()
	corrupt := false
	readLen := func() int {
		n := rd.Int()
		if n < 0 || n > len(data) {
			corrupt = true
			return 0
		}
		return n
	}
	if n := readLen(); n > 0 {
		snap.SpanEWMA = make([]time.Duration, n)
		for i := range snap.SpanEWMA {
			snap.SpanEWMA[i] = rd.Duration()
		}
	}
	if n := readLen(); n > 0 {
		snap.LastNotify = make([]time.Time, n)
		for i := range snap.LastNotify {
			snap.LastNotify[i] = readTime(rd)
		}
	}
	if n := readLen(); n > 0 {
		snap.History = make([]PushRecord, n)
		for i := range snap.History {
			snap.History[i].At = readTime(rd)
			snap.History[i].Worker = rd.Int()
		}
	}
	snap.Tunes = rd.Varint()
	if n := readLen(); n > 0 {
		snap.NotifyCount = make([]int64, n)
		for i := range snap.NotifyCount {
			snap.NotifyCount[i] = rd.Varint()
		}
	}
	if n := readLen(); n > 0 {
		snap.Pushed = make([]bool, n)
		for i := range snap.Pushed {
			snap.Pushed[i] = rd.Bool()
		}
	}
	if n := readLen(); n > 0 {
		snap.Alive = make([]bool, n)
		for i := range snap.Alive {
			snap.Alive[i] = rd.Bool()
		}
	}
	snap.Round = rd.Varint()
	if n := readLen(); n > 0 {
		snap.Completed = make([]int64, n)
		for i := range snap.Completed {
			snap.Completed[i] = rd.Varint()
		}
	}
	snap.MinClock = rd.Varint()
	snap.SchemeBase = rd.Int()
	snap.SchemeStaleness = rd.Int()
	snap.SchemeBeta = rd.Float64()
	snap.SchemeEpoch = rd.Varint()
	snap.LastSwitchWhy = rd.String()
	snap.LastSwitchAt = readTime(rd)
	if corrupt {
		return SchedulerSnapshot{}, fmt.Errorf("core: scheduler checkpoint has an implausible slice length")
	}
	if err := rd.Err(); err != nil {
		return SchedulerSnapshot{}, fmt.Errorf("core: decoding scheduler checkpoint: %w", err)
	}
	if rd.Remaining() != 0 {
		return SchedulerSnapshot{}, fmt.Errorf("core: scheduler checkpoint has %d trailing bytes", rd.Remaining())
	}
	return snap, nil
}
