package core

import (
	"testing"
	"time"

	"specsync/internal/scheme"
)

// eagerFixture: worker 0 notifies at 1s opening a 2s window (rate 0.5 of
// m=3 => threshold 1.5). Peers notify at the given offsets.
func eagerFixture(t *testing.T, expiryOnly bool, peerOffsets []time.Duration) (*scriptWorker, *Scheduler, func()) {
	t.Helper()
	ws := []*scriptWorker{
		{notifies: []time.Duration{time.Second}},
		{},
		{},
	}
	for wi, off := range peerOffsets {
		ws[1+wi%2].notifies = append(ws[1+wi%2].notifies, off)
	}
	sim, sched := buildSim(t, SchedulerConfig{
		Workers: 3,
		Scheme: scheme.Config{
			Base: scheme.ASP, Spec: scheme.SpecFixed,
			AbortTime: 2 * time.Second, AbortRate: 0.5,
		},
		InitialSpan:       10 * time.Second,
		CheckAtExpiryOnly: expiryOnly,
	}, ws)
	return ws[0], sched, func() { sim.RunUntilIdle(time.Minute) }
}

func TestEagerFiresAtThresholdCrossing(t *testing.T) {
	// Peers push at 1.2s and 1.4s: threshold (2 >= 1.5) crossed at 1.4s.
	w0, sched, run := eagerFixture(t, false, []time.Duration{1200 * time.Millisecond, 1400 * time.Millisecond})
	run()
	if len(w0.resyncs) != 1 {
		t.Fatalf("resyncs = %v", w0.resyncs)
	}
	if sched.ReSyncsSent() != 1 {
		t.Errorf("ReSyncsSent = %d", sched.ReSyncsSent())
	}
}

func TestEagerFiresOnlyOncePerWindow(t *testing.T) {
	// Four peer pushes in-window must yield exactly one re-sync.
	w0, _, run := eagerFixture(t, false, []time.Duration{
		1200 * time.Millisecond, 1300 * time.Millisecond,
		1500 * time.Millisecond, 1700 * time.Millisecond,
	})
	run()
	if len(w0.resyncs) != 1 {
		t.Fatalf("resyncs = %v, want exactly 1", w0.resyncs)
	}
}

func TestEagerIgnoresLateArrivals(t *testing.T) {
	// One push inside (1.2s), one after the window closes (4s): threshold
	// never met inside the window.
	w0, _, run := eagerFixture(t, false, []time.Duration{1200 * time.Millisecond, 4 * time.Second})
	run()
	if len(w0.resyncs) != 0 {
		t.Fatalf("resyncs = %v, want none", w0.resyncs)
	}
}

func TestExpiryModeDefersDecision(t *testing.T) {
	// Paper-literal mode: the same two early pushes trigger, but only at
	// window expiry (t = 3s), not at the crossing.
	w0, _, run := eagerFixture(t, true, []time.Duration{1200 * time.Millisecond, 1400 * time.Millisecond})
	run()
	if len(w0.resyncs) != 1 {
		t.Fatalf("resyncs = %v, want 1", w0.resyncs)
	}
}

func TestRateMarginScalesAdaptiveThreshold(t *testing.T) {
	if _, err := NewScheduler(SchedulerConfig{
		Workers: 2, Scheme: scheme.Config{Base: scheme.ASP},
		InitialSpan: time.Second, RateMargin: 0.5,
	}); err == nil {
		t.Error("RateMargin < 1 must be rejected")
	}
	s, err := NewScheduler(SchedulerConfig{
		Workers: 2, Scheme: scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive},
		InitialSpan: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.RateMargin != 2 {
		t.Errorf("default RateMargin = %v, want 2", s.cfg.RateMargin)
	}
}

// TestWindowReplacedOnNextNotify: a worker's second notify re-arms its
// window; pushes counted against the old window must not leak into the new.
func TestWindowReplacedOnNextNotify(t *testing.T) {
	ws := []*scriptWorker{
		{notifies: []time.Duration{time.Second, 4 * time.Second}},
		{notifies: []time.Duration{1200 * time.Millisecond}},
		{},
	}
	sim, _ := buildSim(t, SchedulerConfig{
		Workers: 3,
		Scheme: scheme.Config{
			Base: scheme.ASP, Spec: scheme.SpecFixed,
			AbortTime: 2 * time.Second, AbortRate: 0.6, // threshold 1.8
		},
		InitialSpan: 10 * time.Second,
	}, ws)
	sim.RunUntilIdle(time.Minute)
	// Window 1 saw one push (below 1.8); window 2 (armed at 4s) sees none.
	if len(ws[0].resyncs) != 0 {
		t.Fatalf("resyncs = %v, want none", ws[0].resyncs)
	}
}

func TestSpecWindowNotArmedWhenDisabled(t *testing.T) {
	ws := []*scriptWorker{
		{notifies: []time.Duration{time.Second}},
		{notifies: []time.Duration{1100 * time.Millisecond, 1200 * time.Millisecond}},
	}
	sim, sched := buildSim(t, SchedulerConfig{
		Workers: 2, Scheme: scheme.Config{Base: scheme.ASP}, // SpecOff
		InitialSpan: time.Second,
	}, ws)
	sim.RunUntilIdle(time.Minute)
	if sched.ReSyncsSent() != 0 {
		t.Error("SpecOff scheduler sent re-syncs")
	}
}

// TestAdaptiveMarginReducesAborts runs the same notify script under margin 1
// and margin 3 (after a tuned epoch) and expects fewer re-syncs with the
// bigger margin.
func TestAdaptiveMarginReducesAborts(t *testing.T) {
	script := func() []*scriptWorker {
		mk := func(offsets ...int) []time.Duration {
			out := make([]time.Duration, len(offsets))
			for i, o := range offsets {
				out[i] = time.Duration(o) * time.Millisecond
			}
			return out
		}
		return []*scriptWorker{
			{notifies: mk(1000, 2000, 3000, 4000, 5000)},
			{notifies: mk(1050, 2050, 3050, 4050, 5050)},
			{notifies: mk(1100, 2100, 3100, 4100, 5100)},
		}
	}
	count := func(margin float64) int64 {
		ws := script()
		sim, sched := buildSim(t, SchedulerConfig{
			Workers:     3,
			Scheme:      scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive},
			InitialSpan: time.Second,
			RateMargin:  margin,
		}, ws)
		sim.RunUntilIdle(time.Minute)
		return sched.ReSyncsSent()
	}
	lo, hi := count(1), count(3)
	if hi > lo {
		t.Errorf("margin 3 sent %d re-syncs vs %d at margin 1", hi, lo)
	}
}
