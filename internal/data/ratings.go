package data

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Rating is one observed (user, item, value) triple.
type Rating struct {
	User, Item int
	Value      float64
}

// RatingsConfig parameterizes the synthetic MovieLens substitute: a hidden
// low-rank matrix plus observation noise, sampled sparsely.
type RatingsConfig struct {
	Users, Items int
	TrueRank     int     // rank of the hidden ground-truth factorization
	N            int     // number of observed training ratings
	EvalN        int     // number of held-out ratings
	Noise        float64 // observation noise stddev
	Seed         int64
}

// Ratings is the generated dataset.
type Ratings struct {
	cfg   RatingsConfig
	Train []Rating
	Eval  []Rating
}

// NewRatings generates a dataset deterministically from cfg.Seed. Ground
// truth is R = P Q^T / sqrt(rank) with standard-normal factors, so observed
// values are O(1).
func NewRatings(cfg RatingsConfig) (*Ratings, error) {
	if cfg.Users < 1 || cfg.Items < 1 || cfg.TrueRank < 1 || cfg.N < 1 || cfg.EvalN < 1 {
		return nil, fmt.Errorf("data: invalid ratings config %+v", cfg)
	}
	if cfg.Noise < 0 {
		return nil, fmt.Errorf("data: noise must be non-negative")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := randMat(cfg.Users, cfg.TrueRank, rng)
	q := randMat(cfg.Items, cfg.TrueRank, rng)
	scale := 1.0 / math.Sqrt(float64(cfg.TrueRank))

	draw := func(n int) []Rating {
		out := make([]Rating, n)
		for i := range out {
			u := rng.Intn(cfg.Users)
			v := rng.Intn(cfg.Items)
			var dot float64
			for r := 0; r < cfg.TrueRank; r++ {
				dot += p[u][r] * q[v][r]
			}
			out[i] = Rating{User: u, Item: v, Value: dot*scale + rng.NormFloat64()*cfg.Noise}
		}
		return out
	}
	return &Ratings{cfg: cfg, Train: draw(cfg.N), Eval: draw(cfg.EvalN)}, nil
}

// Config returns the generating configuration.
func (r *Ratings) Config() RatingsConfig { return r.cfg }

// ShardRatings partitions ratings across m workers. With iid=false the
// ratings are ordered by user id before dealing contiguous chunks, giving
// each worker a user-skewed shard (as a real system that partitions by user
// range would).
func ShardRatings(ratings []Rating, m int, iid bool, seed int64) ([][]Rating, error) {
	if m < 1 {
		return nil, fmt.Errorf("data: shard count %d < 1", m)
	}
	if len(ratings) < m {
		return nil, fmt.Errorf("data: %d ratings cannot fill %d shards", len(ratings), m)
	}
	order := make([]int, len(ratings))
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	if iid {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	} else {
		// Sort indices by user, breaking ties randomly via a pre-shuffle.
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		sort.SliceStable(order, func(a, b int) bool { return ratings[order[a]].User < ratings[order[b]].User })
	}
	shards := make([][]Rating, m)
	per := len(order) / m
	for s := 0; s < m; s++ {
		lo := s * per
		hi := lo + per
		if s == m-1 {
			hi = len(order)
		}
		shard := make([]Rating, 0, hi-lo)
		for _, ix := range order[lo:hi] {
			shard = append(shard, ratings[ix])
		}
		shards[s] = shard
	}
	return shards, nil
}

func randMat(rows, cols int, rng *rand.Rand) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		row := make([]float64, cols)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		m[i] = row
	}
	return m
}
