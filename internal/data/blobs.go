// Package data generates the synthetic datasets that stand in for the
// paper's benchmarks. The paper trains on CIFAR-10, ImageNet and MovieLens;
// none is available offline, so we substitute generators that preserve the
// properties the experiments exercise: a classification task whose loss
// decreases under SGD and degrades under stale gradients (blobs), and a
// sparse low-rank ratings matrix for matrix factorization.
//
// Shards can be made non-IID (each worker holds a class- or user-skewed
// subset), matching the paper's setting where training data is partitioned
// across workers; non-IID shards are what make peer updates informative and
// parameter freshness valuable.
package data

import (
	"fmt"
	"math"
	"math/rand"
)

// Sample is one labeled feature vector.
type Sample struct {
	X []float64
	Y int // class label in [0, Classes)
}

// BlobsConfig parameterizes the Gaussian-blobs classification dataset.
type BlobsConfig struct {
	Classes int     // number of classes (10 for CIFAR-like, 100 for ImageNet-like)
	Dim     int     // feature dimension
	N       int     // number of training samples
	EvalN   int     // number of held-out evaluation samples
	Spread  float64 // cluster center scale; larger = easier separation
	Noise   float64 // within-class standard deviation
	// ScaleSpread makes the features ill-conditioned: per-dimension scale
	// factors are drawn log-uniformly from [1/ScaleSpread, ScaleSpread]
	// (applied to centers and noise alike), giving the loss surface a wide
	// curvature spectrum like unnormalized real-world features. Values <= 1
	// disable it. Ill-conditioning is what makes training sensitive to
	// gradient staleness: as the effective staleness grows, progressively
	// more sharp directions become unstable.
	ScaleSpread float64
	Seed        int64
}

// Blobs is a synthetic classification dataset: K Gaussian clusters in
// Dim-dimensional space, one per class.
type Blobs struct {
	cfg     BlobsConfig
	centers [][]float64
	scales  []float64
	Train   []Sample
	Eval    []Sample
}

// NewBlobs generates the dataset deterministically from cfg.Seed.
func NewBlobs(cfg BlobsConfig) (*Blobs, error) {
	if cfg.Classes < 2 || cfg.Dim < 1 || cfg.N < cfg.Classes || cfg.EvalN < 1 {
		return nil, fmt.Errorf("data: invalid blobs config %+v", cfg)
	}
	if cfg.Spread <= 0 || cfg.Noise <= 0 {
		return nil, fmt.Errorf("data: spread and noise must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := &Blobs{cfg: cfg}
	b.scales = make([]float64, cfg.Dim)
	for d := range b.scales {
		b.scales[d] = 1
		if cfg.ScaleSpread > 1 {
			// Log-uniform in [1/S, S].
			lo, hi := math.Log(1/cfg.ScaleSpread), math.Log(cfg.ScaleSpread)
			b.scales[d] = math.Exp(lo + rng.Float64()*(hi-lo))
		}
	}
	b.centers = make([][]float64, cfg.Classes)
	for k := range b.centers {
		c := make([]float64, cfg.Dim)
		for d := range c {
			c[d] = rng.NormFloat64() * cfg.Spread * b.scales[d]
		}
		b.centers[k] = c
	}
	b.Train = b.draw(cfg.N, rng)
	b.Eval = b.draw(cfg.EvalN, rng)
	return b, nil
}

func (b *Blobs) draw(n int, rng *rand.Rand) []Sample {
	out := make([]Sample, n)
	for i := range out {
		k := i % b.cfg.Classes // balanced classes
		x := make([]float64, b.cfg.Dim)
		for d := range x {
			x[d] = b.centers[k][d] + rng.NormFloat64()*b.cfg.Noise*b.scales[d]
		}
		out[i] = Sample{X: x, Y: k}
	}
	return out
}

// Config returns the generating configuration.
func (b *Blobs) Config() BlobsConfig { return b.cfg }

// ShardSamples partitions samples into m shards. With iid=true, samples are
// dealt round-robin (each shard sees every class). With iid=false, samples
// are grouped by class first, so each shard over-represents a few classes —
// the realistic distributed-training regime in which missing peer updates
// genuinely costs model quality.
func ShardSamples(samples []Sample, m int, iid bool, seed int64) ([][]Sample, error) {
	if m < 1 {
		return nil, fmt.Errorf("data: shard count %d < 1", m)
	}
	if len(samples) < m {
		return nil, fmt.Errorf("data: %d samples cannot fill %d shards", len(samples), m)
	}
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	if iid {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	} else {
		// Group by class, shuffling within each class, then deal contiguous
		// chunks so each shard sees a skewed class mix.
		byClass := map[int][]int{}
		for i, s := range samples {
			byClass[s.Y] = append(byClass[s.Y], i)
		}
		order = order[:0]
		maxClass := 0
		for k := range byClass {
			if k > maxClass {
				maxClass = k
			}
		}
		for k := 0; k <= maxClass; k++ {
			idxs := byClass[k]
			rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
			order = append(order, idxs...)
		}
	}
	shards := make([][]Sample, m)
	per := len(order) / m
	for s := 0; s < m; s++ {
		lo := s * per
		hi := lo + per
		if s == m-1 {
			hi = len(order)
		}
		shard := make([]Sample, 0, hi-lo)
		for _, ix := range order[lo:hi] {
			shard = append(shard, samples[ix])
		}
		shards[s] = shard
	}
	return shards, nil
}
