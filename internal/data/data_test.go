package data

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewBlobsDeterministic(t *testing.T) {
	cfg := BlobsConfig{Classes: 3, Dim: 4, N: 30, EvalN: 9, Spread: 2, Noise: 0.5, Seed: 7}
	a, err := NewBlobs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBlobs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Train {
		if a.Train[i].Y != b.Train[i].Y {
			t.Fatal("labels differ across identical seeds")
		}
		for d := range a.Train[i].X {
			if a.Train[i].X[d] != b.Train[i].X[d] {
				t.Fatal("features differ across identical seeds")
			}
		}
	}
}

func TestNewBlobsValidation(t *testing.T) {
	bad := []BlobsConfig{
		{Classes: 1, Dim: 4, N: 30, EvalN: 9, Spread: 2, Noise: 0.5},
		{Classes: 3, Dim: 0, N: 30, EvalN: 9, Spread: 2, Noise: 0.5},
		{Classes: 3, Dim: 4, N: 2, EvalN: 9, Spread: 2, Noise: 0.5},
		{Classes: 3, Dim: 4, N: 30, EvalN: 0, Spread: 2, Noise: 0.5},
		{Classes: 3, Dim: 4, N: 30, EvalN: 9, Spread: 0, Noise: 0.5},
		{Classes: 3, Dim: 4, N: 30, EvalN: 9, Spread: 2, Noise: 0},
	}
	for i, cfg := range bad {
		if _, err := NewBlobs(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
}

func TestBlobsBalancedClasses(t *testing.T) {
	b, err := NewBlobs(BlobsConfig{Classes: 5, Dim: 3, N: 100, EvalN: 25, Spread: 2, Noise: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, s := range b.Train {
		counts[s.Y]++
	}
	for k := 0; k < 5; k++ {
		if counts[k] != 20 {
			t.Errorf("class %d has %d samples, want 20", k, counts[k])
		}
	}
}

func TestShardSamplesPartition(t *testing.T) {
	b, err := NewBlobs(BlobsConfig{Classes: 4, Dim: 2, N: 103, EvalN: 10, Spread: 2, Noise: 0.3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, iid := range []bool{true, false} {
		shards, err := ShardSamples(b.Train, 8, iid, 42)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, sh := range shards {
			if len(sh) == 0 {
				t.Error("empty shard")
			}
			total += len(sh)
		}
		if total != len(b.Train) {
			t.Errorf("iid=%v: shards hold %d samples, want %d", iid, total, len(b.Train))
		}
	}
}

func TestShardSamplesNonIIDIsSkewed(t *testing.T) {
	b, err := NewBlobs(BlobsConfig{Classes: 10, Dim: 2, N: 1000, EvalN: 10, Spread: 2, Noise: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := ShardSamples(b.Train, 10, false, 42)
	if err != nil {
		t.Fatal(err)
	}
	// With class-grouped dealing, the first shard must see far fewer than
	// all 10 classes.
	classes := map[int]bool{}
	for _, s := range shards[0] {
		classes[s.Y] = true
	}
	if len(classes) > 3 {
		t.Errorf("non-IID shard 0 sees %d classes, want <= 3", len(classes))
	}
}

func TestShardSamplesErrors(t *testing.T) {
	samples := []Sample{{X: []float64{1}, Y: 0}}
	if _, err := ShardSamples(samples, 0, true, 1); err == nil {
		t.Error("expected error for m=0")
	}
	if _, err := ShardSamples(samples, 5, true, 1); err == nil {
		t.Error("expected error for too few samples")
	}
}

func TestNewRatingsShapeAndScale(t *testing.T) {
	r, err := NewRatings(RatingsConfig{Users: 50, Items: 40, TrueRank: 4, N: 2000, EvalN: 200, Noise: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Train) != 2000 || len(r.Eval) != 200 {
		t.Fatalf("sizes: %d train, %d eval", len(r.Train), len(r.Eval))
	}
	var sumSq float64
	for _, rt := range r.Train {
		if rt.User < 0 || rt.User >= 50 || rt.Item < 0 || rt.Item >= 40 {
			t.Fatalf("rating out of range: %+v", rt)
		}
		sumSq += rt.Value * rt.Value
	}
	// Values are normalized to O(1): second moment should be near
	// 1 + noise^2 (it is a product of unit normals scaled by 1/sqrt(rank)).
	second := sumSq / float64(len(r.Train))
	if second < 0.3 || second > 3 {
		t.Errorf("rating second moment %v outside sane range", second)
	}
}

func TestRatingsValidation(t *testing.T) {
	if _, err := NewRatings(RatingsConfig{Users: 0, Items: 1, TrueRank: 1, N: 1, EvalN: 1}); err == nil {
		t.Error("expected error for zero users")
	}
	if _, err := NewRatings(RatingsConfig{Users: 1, Items: 1, TrueRank: 1, N: 1, EvalN: 1, Noise: -1}); err == nil {
		t.Error("expected error for negative noise")
	}
}

func TestShardRatingsNonIIDGroupsUsers(t *testing.T) {
	r, err := NewRatings(RatingsConfig{Users: 100, Items: 20, TrueRank: 2, N: 5000, EvalN: 10, Noise: 0.1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := ShardRatings(r.Train, 10, false, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Each non-IID shard should cover a narrow user range.
	for s, sh := range shards {
		lo, hi := math.MaxInt32, -1
		for _, rt := range sh {
			if rt.User < lo {
				lo = rt.User
			}
			if rt.User > hi {
				hi = rt.User
			}
		}
		if span := hi - lo; span > 30 {
			t.Errorf("shard %d spans %d users, want narrow range", s, span)
		}
	}
}

func TestQuickShardPreservesCount(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		r, err := NewRatings(RatingsConfig{Users: 10, Items: 10, TrueRank: 2, N: 200, EvalN: 5, Noise: 0.1, Seed: seed})
		if err != nil {
			return false
		}
		m := int(mRaw%16) + 1
		for _, iid := range []bool{true, false} {
			shards, err := ShardRatings(r.Train, m, iid, seed)
			if err != nil {
				return false
			}
			total := 0
			for _, sh := range shards {
				total += len(sh)
			}
			if total != len(r.Train) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
