// Package scheme enumerates the synchronization schemes the paper studies
// and compares: ASP (MXNet's default asynchronous parallelism, the paper's
// "Original"), BSP, SSP, naïve waiting (Sec. III), and SpecSync layered on
// top of ASP or SSP in either Cherrypick (fixed hyperparameters) or Adaptive
// (Algorithm 1) mode.
package scheme

import (
	"fmt"
	"time"
)

// Base is the underlying synchronization model.
type Base int

// Base schemes.
const (
	// ASP is asynchronous parallelism: workers never wait.
	ASP Base = iota + 1
	// BSP is bulk-synchronous parallelism: a barrier after every iteration.
	BSP
	// SSP is stale-synchronous parallelism: a worker may run ahead of the
	// slowest worker by at most Staleness iterations.
	SSP
)

// String returns the scheme's conventional name.
func (b Base) String() string {
	switch b {
	case ASP:
		return "ASP"
	case BSP:
		return "BSP"
	case SSP:
		return "SSP"
	default:
		return fmt.Sprintf("Base(%d)", int(b))
	}
}

// Spec selects the speculation layer.
type Spec int

// Speculation modes.
const (
	// SpecOff disables speculation (plain base scheme).
	SpecOff Spec = iota
	// SpecFixed uses operator-provided ABORT_TIME / ABORT_RATE
	// (SpecSync-Cherrypick in the paper).
	SpecFixed
	// SpecAdaptive retunes both hyperparameters every epoch with the
	// paper's Algorithm 1 (SpecSync-Adaptive).
	SpecAdaptive
)

// String returns the mode's conventional name.
func (s Spec) String() string {
	switch s {
	case SpecOff:
		return "Off"
	case SpecFixed:
		return "Cherrypick"
	case SpecAdaptive:
		return "Adaptive"
	default:
		return fmt.Sprintf("Spec(%d)", int(s))
	}
}

// Config fully describes a synchronization scheme.
type Config struct {
	// Base is the underlying model. Required.
	Base Base
	// Staleness is the SSP bound (ignored otherwise).
	Staleness int
	// NaiveWait, when positive, delays every pull request by this amount
	// (the naïve-waiting strategy of paper Sec. III-B).
	NaiveWait time.Duration
	// Spec selects the speculation layer. Speculation is incompatible with
	// BSP (there is nothing to speculate about behind a barrier).
	Spec Spec
	// AbortTime is the fixed speculation window for SpecFixed.
	AbortTime time.Duration
	// AbortRate is the fixed push-rate threshold for SpecFixed, as a
	// fraction of the worker count (paper: cnt >= m * ABORT_RATE).
	AbortRate float64
	// Decentralized switches SpecFixed to the broadcast design the paper
	// rejects (Sec. V-A): every worker announces each push to all peers and
	// runs its own speculation check, with no scheduler involvement. It
	// exists to measure the all-to-all control-traffic blowup.
	Decentralized bool
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch c.Base {
	case ASP, BSP, SSP:
	default:
		return fmt.Errorf("scheme: unknown base %d", c.Base)
	}
	if c.Base == SSP && c.Staleness < 0 {
		return fmt.Errorf("scheme: negative SSP staleness %d", c.Staleness)
	}
	if c.NaiveWait < 0 {
		return fmt.Errorf("scheme: negative naive wait %v", c.NaiveWait)
	}
	switch c.Spec {
	case SpecOff:
		if c.Decentralized {
			return fmt.Errorf("scheme: Decentralized requires SpecFixed")
		}
	case SpecFixed:
		if c.Base == BSP {
			return fmt.Errorf("scheme: speculation is incompatible with BSP")
		}
		if c.AbortTime <= 0 {
			return fmt.Errorf("scheme: SpecFixed requires positive AbortTime")
		}
		if c.AbortRate < 0 || c.AbortRate > 1 {
			return fmt.Errorf("scheme: AbortRate %v outside [0,1]", c.AbortRate)
		}
	case SpecAdaptive:
		if c.Base == BSP {
			return fmt.Errorf("scheme: speculation is incompatible with BSP")
		}
		if c.Decentralized {
			// Decentralized adaptive tuning would need every worker to run
			// Algorithm 1 on its own copy of the push history; the paper's
			// centralized design exists precisely to avoid that redundancy.
			return fmt.Errorf("scheme: Decentralized supports only SpecFixed")
		}
	default:
		return fmt.Errorf("scheme: unknown spec mode %d", c.Spec)
	}
	return nil
}

// Name returns a human-readable scheme name matching the paper's
// terminology ("Original" is stock asynchronous MXNet).
func (c Config) Name() string {
	base := c.Base.String()
	if c.Base == SSP {
		base = fmt.Sprintf("SSP(s=%d)", c.Staleness)
	}
	if c.NaiveWait > 0 {
		base = fmt.Sprintf("%s+NaiveWait(%v)", base, c.NaiveWait)
	}
	switch c.Spec {
	case SpecFixed:
		if c.Decentralized {
			return fmt.Sprintf("SpecSync-Broadcast(%s)", base)
		}
		return fmt.Sprintf("SpecSync-Cherrypick(%s)", base)
	case SpecAdaptive:
		return fmt.Sprintf("SpecSync-Adaptive(%s)", base)
	default:
		if c.Base == ASP && c.NaiveWait == 0 {
			return "Original"
		}
		return base
	}
}
