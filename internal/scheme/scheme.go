// Package scheme enumerates the synchronization schemes the paper studies
// and compares: ASP (MXNet's default asynchronous parallelism, the paper's
// "Original"), BSP, SSP, naïve waiting (Sec. III), and SpecSync layered on
// top of ASP or SSP in either Cherrypick (fixed hyperparameters) or Adaptive
// (Algorithm 1) mode.
package scheme

import (
	"fmt"
	"time"
)

// Base is the underlying synchronization model.
type Base int

// Base schemes.
const (
	// ASP is asynchronous parallelism: workers never wait.
	ASP Base = iota + 1
	// BSP is bulk-synchronous parallelism: a barrier after every iteration.
	BSP
	// SSP is stale-synchronous parallelism: a worker may run ahead of the
	// slowest worker by at most Staleness iterations.
	SSP
)

// String returns the scheme's conventional name.
func (b Base) String() string {
	switch b {
	case ASP:
		return "ASP"
	case BSP:
		return "BSP"
	case SSP:
		return "SSP"
	default:
		return fmt.Sprintf("Base(%d)", int(b))
	}
}

// Spec selects the speculation layer.
type Spec int

// Speculation modes.
const (
	// SpecOff disables speculation (plain base scheme).
	SpecOff Spec = iota
	// SpecFixed uses operator-provided ABORT_TIME / ABORT_RATE
	// (SpecSync-Cherrypick in the paper).
	SpecFixed
	// SpecAdaptive retunes both hyperparameters every epoch with the
	// paper's Algorithm 1 (SpecSync-Adaptive).
	SpecAdaptive
)

// String returns the mode's conventional name.
func (s Spec) String() string {
	switch s {
	case SpecOff:
		return "Off"
	case SpecFixed:
		return "Cherrypick"
	case SpecAdaptive:
		return "Adaptive"
	default:
		return fmt.Sprintf("Spec(%d)", int(s))
	}
}

// Variant selects one of the composite schemes layered on top of the base
// models. Unlike Base/Spec combinations, variants change (or sample) their
// effective synchronization discipline at runtime: the scheduler re-targets
// workers mid-run through SchemeSwitch control messages.
type Variant int

// Scheme variants.
const (
	// VariantNone is a plain Base+Spec scheme (everything that predates the
	// scheme zoo).
	VariantNone Variant = iota
	// VariantSyncSwitch runs BSP until a scheduled epoch, then switches the
	// whole fleet to ASP (the Sync-Switch hybrid: tight synchronization
	// early, when gradients are large and noisy, free-running later).
	VariantSyncSwitch
	// VariantABS is adaptive bounded staleness: SSP whose bound is
	// re-derived every epoch from the observed push-arrival spread, so a
	// homogeneous fleet runs near-BSP and a straggling fleet loosens up.
	VariantABS
	// VariantPSP is probabilistic synchronous parallel: each barrier
	// releases once a β-fraction of the live workers has arrived, so the
	// sampled quorum — whichever workers finish first — sets the pace and
	// stragglers never stall the round.
	VariantPSP
)

// String returns the variant's conventional name.
func (v Variant) String() string {
	switch v {
	case VariantNone:
		return "None"
	case VariantSyncSwitch:
		return "Sync-Switch"
	case VariantABS:
		return "ABS"
	case VariantPSP:
		return "PSP"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Default ABS bound clamp, used when the config leaves ABSMin/ABSMax zero.
const (
	DefaultABSMin = 1
	DefaultABSMax = 8
)

// Config fully describes a synchronization scheme.
type Config struct {
	// Base is the underlying model. Required.
	Base Base
	// Staleness is the SSP bound (ignored otherwise).
	Staleness int
	// NaiveWait, when positive, delays every pull request by this amount
	// (the naïve-waiting strategy of paper Sec. III-B).
	NaiveWait time.Duration
	// Spec selects the speculation layer. Speculation is incompatible with
	// BSP (there is nothing to speculate about behind a barrier).
	Spec Spec
	// AbortTime is the fixed speculation window for SpecFixed.
	AbortTime time.Duration
	// AbortRate is the fixed push-rate threshold for SpecFixed, as a
	// fraction of the worker count (paper: cnt >= m * ABORT_RATE).
	AbortRate float64
	// Decentralized switches SpecFixed to the broadcast design the paper
	// rejects (Sec. V-A): every worker announces each push to all peers and
	// runs its own speculation check, with no scheduler involvement. It
	// exists to measure the all-to-all control-traffic blowup.
	Decentralized bool

	// Variant selects a composite scheme. When set, Base must be zero (the
	// variant determines its own effective base) and Decentralized must be
	// false — variants rely on the centralized scheduler to issue
	// SchemeSwitch retargets.
	Variant Variant
	// SwitchAt is the epoch at which VariantSyncSwitch hands the fleet from
	// BSP to ASP. Required (>= 1) for that variant.
	SwitchAt int
	// PSPBeta is the VariantPSP barrier quorum as a fraction of live
	// workers, in (0, 1); β = 1 would be plain BSP.
	PSPBeta float64
	// ABSMin / ABSMax clamp the VariantABS staleness bound. Zero values
	// default to DefaultABSMin / DefaultABSMax.
	ABSMin int
	ABSMax int
}

// Runtime is the dynamically-switchable portion of a scheme: what the
// scheduler and every worker must agree on at any instant. Plain schemes
// keep one Runtime for the whole run; variants and the meta-scheme rewrite
// it through SchemeSwitch messages.
type Runtime struct {
	// Base is the active synchronization model.
	Base Base
	// Staleness is the active SSP bound (meaningful only when Base is SSP).
	Staleness int
	// Beta is the barrier quorum fraction (meaningful only when Base is
	// BSP); 0 means a full barrier.
	Beta float64
}

// String names the active discipline, e.g. "BSP", "SSP(s=3)", "PSP(β=0.70)".
func (r Runtime) String() string {
	switch r.Base {
	case SSP:
		return fmt.Sprintf("SSP(s=%d)", r.Staleness)
	case BSP:
		if r.Beta > 0 && r.Beta < 1 {
			return fmt.Sprintf("PSP(β=%.2f)", r.Beta)
		}
		return "BSP"
	default:
		return r.Base.String()
	}
}

// EffectiveBase is the base model the scheme starts the run under.
func (c Config) EffectiveBase() Base {
	switch c.Variant {
	case VariantSyncSwitch, VariantPSP:
		return BSP
	case VariantABS:
		return SSP
	default:
		return c.Base
	}
}

// ABSBounds returns the ABS staleness clamp with defaults applied.
func (c Config) ABSBounds() (min, max int) {
	min, max = c.ABSMin, c.ABSMax
	if min <= 0 {
		min = DefaultABSMin
	}
	if max <= 0 {
		max = DefaultABSMax
	}
	return min, max
}

// InitialRuntime is the Runtime the fleet boots under. ABS starts at its
// tightest bound (near-BSP) and loosens as spread is observed.
func (c Config) InitialRuntime() Runtime {
	rt := Runtime{Base: c.EffectiveBase(), Staleness: c.Staleness}
	switch c.Variant {
	case VariantABS:
		rt.Staleness, _ = c.ABSBounds()
	case VariantPSP:
		rt.Beta = c.PSPBeta
	}
	return rt
}

// DynamicBase reports whether the scheme rewrites its Runtime mid-run (and
// therefore needs worker-reported work spans and SchemeSwitch plumbing).
func (c Config) DynamicBase() bool {
	return c.Variant == VariantSyncSwitch || c.Variant == VariantABS
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch c.Variant {
	case VariantNone:
	case VariantSyncSwitch, VariantABS, VariantPSP:
		if c.Base != 0 {
			return fmt.Errorf("scheme: variant %s determines its own base; leave Base unset (got %s)", c.Variant, c.Base)
		}
		if c.Decentralized {
			return fmt.Errorf("scheme: variant %s requires the centralized scheduler (Decentralized unsupported)", c.Variant)
		}
		if c.NaiveWait != 0 {
			return fmt.Errorf("scheme: variant %s is incompatible with NaiveWait", c.Variant)
		}
		switch c.Variant {
		case VariantSyncSwitch:
			if c.Spec != SpecOff {
				return fmt.Errorf("scheme: speculation is incompatible with Sync-Switch (its BSP phase has nothing to speculate about)")
			}
			if c.SwitchAt < 1 {
				return fmt.Errorf("scheme: Sync-Switch requires SwitchAt >= 1 (the epoch that triggers the BSP→ASP handover), got %d", c.SwitchAt)
			}
		case VariantABS:
			min, max := c.ABSBounds()
			if min > max {
				return fmt.Errorf("scheme: ABS bound clamp inverted (min %d > max %d)", min, max)
			}
			if c.Spec == SpecFixed && (c.AbortTime <= 0 || c.AbortRate < 0 || c.AbortRate > 1) {
				return fmt.Errorf("scheme: ABS with SpecFixed requires positive AbortTime and AbortRate in [0,1]")
			}
		case VariantPSP:
			if c.Spec != SpecOff {
				return fmt.Errorf("scheme: speculation is incompatible with PSP (BSP-family barriers have nothing to speculate about)")
			}
			if c.PSPBeta <= 0 || c.PSPBeta >= 1 {
				return fmt.Errorf("scheme: PSP requires PSPBeta in (0,1), got %v (β=1 is plain BSP)", c.PSPBeta)
			}
		}
		return nil
	default:
		return fmt.Errorf("scheme: unknown variant %d", int(c.Variant))
	}
	if c.SwitchAt != 0 || c.PSPBeta != 0 || c.ABSMin != 0 || c.ABSMax != 0 {
		return fmt.Errorf("scheme: SwitchAt/PSPBeta/ABSMin/ABSMax are variant parameters; set Variant")
	}
	switch c.Base {
	case ASP, BSP, SSP:
	default:
		return fmt.Errorf("scheme: unknown base %d", c.Base)
	}
	if c.Base == SSP && c.Staleness < 0 {
		return fmt.Errorf("scheme: negative SSP staleness %d", c.Staleness)
	}
	if c.NaiveWait < 0 {
		return fmt.Errorf("scheme: negative naive wait %v", c.NaiveWait)
	}
	switch c.Spec {
	case SpecOff:
		if c.Decentralized {
			return fmt.Errorf("scheme: Decentralized requires SpecFixed")
		}
	case SpecFixed:
		if c.Base == BSP {
			return fmt.Errorf("scheme: speculation is incompatible with BSP")
		}
		if c.AbortTime <= 0 {
			return fmt.Errorf("scheme: SpecFixed requires positive AbortTime")
		}
		if c.AbortRate < 0 || c.AbortRate > 1 {
			return fmt.Errorf("scheme: AbortRate %v outside [0,1]", c.AbortRate)
		}
	case SpecAdaptive:
		if c.Base == BSP {
			return fmt.Errorf("scheme: speculation is incompatible with BSP")
		}
		if c.Decentralized {
			// Decentralized adaptive tuning would need every worker to run
			// Algorithm 1 on its own copy of the push history; the paper's
			// centralized design exists precisely to avoid that redundancy.
			return fmt.Errorf("scheme: Decentralized supports only SpecFixed")
		}
	default:
		return fmt.Errorf("scheme: unknown spec mode %d", c.Spec)
	}
	return nil
}

// Name returns a human-readable scheme name matching the paper's
// terminology ("Original" is stock asynchronous MXNet).
func (c Config) Name() string {
	switch c.Variant {
	case VariantSyncSwitch:
		return fmt.Sprintf("Sync-Switch(BSP→ASP@e%d)", c.SwitchAt)
	case VariantABS:
		min, max := c.ABSBounds()
		base := fmt.Sprintf("ABS(s=%d..%d)", min, max)
		switch c.Spec {
		case SpecFixed:
			return fmt.Sprintf("SpecSync-Cherrypick(%s)", base)
		case SpecAdaptive:
			return fmt.Sprintf("SpecSync-Adaptive(%s)", base)
		}
		return base
	case VariantPSP:
		return fmt.Sprintf("PSP(β=%.2f)", c.PSPBeta)
	}
	base := c.Base.String()
	if c.Base == SSP {
		base = fmt.Sprintf("SSP(s=%d)", c.Staleness)
	}
	if c.NaiveWait > 0 {
		base = fmt.Sprintf("%s+NaiveWait(%v)", base, c.NaiveWait)
	}
	switch c.Spec {
	case SpecFixed:
		if c.Decentralized {
			return fmt.Sprintf("SpecSync-Broadcast(%s)", base)
		}
		return fmt.Sprintf("SpecSync-Cherrypick(%s)", base)
	case SpecAdaptive:
		return fmt.Sprintf("SpecSync-Adaptive(%s)", base)
	default:
		if c.Base == ASP && c.NaiveWait == 0 {
			return "Original"
		}
		return base
	}
}
