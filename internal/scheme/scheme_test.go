package scheme

import (
	"strings"
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	good := []Config{
		{Base: ASP},
		{Base: BSP},
		{Base: SSP, Staleness: 3},
		{Base: ASP, NaiveWait: time.Second},
		{Base: ASP, Spec: SpecFixed, AbortTime: time.Second, AbortRate: 0.2},
		{Base: ASP, Spec: SpecAdaptive},
		{Base: SSP, Staleness: 2, Spec: SpecAdaptive},
		{Variant: VariantSyncSwitch, SwitchAt: 5},
		{Variant: VariantABS},
		{Variant: VariantABS, ABSMin: 2, ABSMax: 6},
		{Variant: VariantABS, Spec: SpecAdaptive},
		{Variant: VariantABS, Spec: SpecFixed, AbortTime: time.Second, AbortRate: 0.2},
		{Variant: VariantPSP, PSPBeta: 0.7},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("good case %d rejected: %v", i, err)
		}
	}
	bad := []Config{
		{},
		{Base: Base(99)},
		{Base: SSP, Staleness: -1},
		{Base: ASP, NaiveWait: -time.Second},
		{Base: BSP, Spec: SpecFixed, AbortTime: time.Second},
		{Base: BSP, Spec: SpecAdaptive},
		{Base: ASP, Spec: SpecFixed},                                         // no abort time
		{Base: ASP, Spec: SpecFixed, AbortTime: time.Second, AbortRate: 1.5}, // rate > 1
		{Base: ASP, Spec: Spec(77)},
		{Variant: Variant(99)},
		{Variant: VariantSyncSwitch},                               // missing SwitchAt
		{Variant: VariantSyncSwitch, SwitchAt: 5, Base: BSP},       // base must stay unset
		{Variant: VariantSyncSwitch, SwitchAt: 5, Spec: SpecFixed}, // speculation × switch
		{Variant: VariantSyncSwitch, SwitchAt: 5, Decentralized: true},
		{Variant: VariantSyncSwitch, SwitchAt: 5, NaiveWait: time.Second},
		{Variant: VariantABS, ABSMin: 6, ABSMax: 2},             // inverted clamp
		{Variant: VariantABS, Spec: SpecFixed},                  // missing abort params
		{Variant: VariantPSP},                                   // missing beta
		{Variant: VariantPSP, PSPBeta: 1},                       // β=1 is plain BSP
		{Variant: VariantPSP, PSPBeta: 0.5, Spec: SpecAdaptive}, // PSP × speculation
		{Base: BSP, PSPBeta: 0.5},                               // variant params without Variant
		{Base: BSP, SwitchAt: 3},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad case %d accepted: %+v", i, c)
		}
	}
}

func TestNames(t *testing.T) {
	cases := map[string]Config{
		"Original":                    {Base: ASP},
		"BSP":                         {Base: BSP},
		"SSP(s=3)":                    {Base: SSP, Staleness: 3},
		"SpecSync-Adaptive(ASP)":      {Base: ASP, Spec: SpecAdaptive},
		"SpecSync-Cherrypick(ASP)":    {Base: ASP, Spec: SpecFixed, AbortTime: time.Second, AbortRate: 0.2},
		"SpecSync-Adaptive(SSP(s=2))": {Base: SSP, Staleness: 2, Spec: SpecAdaptive},
	}
	for want, c := range cases {
		if got := c.Name(); got != want {
			t.Errorf("Name(%+v) = %q, want %q", c, got, want)
		}
	}
	if got := (Config{Base: ASP, NaiveWait: time.Second}).Name(); !strings.Contains(got, "NaiveWait") {
		t.Errorf("naive name = %q", got)
	}
}

func TestVariantRuntime(t *testing.T) {
	ss := Config{Variant: VariantSyncSwitch, SwitchAt: 5}
	if ss.EffectiveBase() != BSP || !ss.DynamicBase() {
		t.Errorf("Sync-Switch should start as dynamic BSP: %+v", ss.InitialRuntime())
	}
	if got := ss.Name(); !strings.Contains(got, "Sync-Switch") || !strings.Contains(got, "e5") {
		t.Errorf("Sync-Switch name = %q", got)
	}

	abs := Config{Variant: VariantABS}
	rt := abs.InitialRuntime()
	if rt.Base != SSP || rt.Staleness != DefaultABSMin || !abs.DynamicBase() {
		t.Errorf("ABS initial runtime = %+v", rt)
	}
	if min, max := abs.ABSBounds(); min != DefaultABSMin || max != DefaultABSMax {
		t.Errorf("ABS default bounds = %d..%d", min, max)
	}
	if got := abs.Name(); !strings.Contains(got, "ABS") {
		t.Errorf("ABS name = %q", got)
	}

	psp := Config{Variant: VariantPSP, PSPBeta: 0.7}
	rt = psp.InitialRuntime()
	if rt.Base != BSP || rt.Beta != 0.7 || psp.DynamicBase() {
		t.Errorf("PSP initial runtime = %+v dynamic=%v", rt, psp.DynamicBase())
	}
	if got := rt.String(); !strings.Contains(got, "PSP") {
		t.Errorf("PSP runtime string = %q", got)
	}
	if got := (Runtime{Base: SSP, Staleness: 4}).String(); got != "SSP(s=4)" {
		t.Errorf("SSP runtime string = %q", got)
	}
	if got := (Runtime{Base: BSP}).String(); got != "BSP" {
		t.Errorf("BSP runtime string = %q", got)
	}
}

func TestStringers(t *testing.T) {
	if ASP.String() != "ASP" || BSP.String() != "BSP" || SSP.String() != "SSP" {
		t.Error("base stringer broken")
	}
	if !strings.Contains(Base(42).String(), "42") {
		t.Error("unknown base should embed number")
	}
	if SpecOff.String() != "Off" || SpecFixed.String() != "Cherrypick" || SpecAdaptive.String() != "Adaptive" {
		t.Error("spec stringer broken")
	}
}
