package scheme

import (
	"strings"
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	good := []Config{
		{Base: ASP},
		{Base: BSP},
		{Base: SSP, Staleness: 3},
		{Base: ASP, NaiveWait: time.Second},
		{Base: ASP, Spec: SpecFixed, AbortTime: time.Second, AbortRate: 0.2},
		{Base: ASP, Spec: SpecAdaptive},
		{Base: SSP, Staleness: 2, Spec: SpecAdaptive},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("good case %d rejected: %v", i, err)
		}
	}
	bad := []Config{
		{},
		{Base: Base(99)},
		{Base: SSP, Staleness: -1},
		{Base: ASP, NaiveWait: -time.Second},
		{Base: BSP, Spec: SpecFixed, AbortTime: time.Second},
		{Base: BSP, Spec: SpecAdaptive},
		{Base: ASP, Spec: SpecFixed},                                         // no abort time
		{Base: ASP, Spec: SpecFixed, AbortTime: time.Second, AbortRate: 1.5}, // rate > 1
		{Base: ASP, Spec: Spec(77)},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad case %d accepted: %+v", i, c)
		}
	}
}

func TestNames(t *testing.T) {
	cases := map[string]Config{
		"Original":                    {Base: ASP},
		"BSP":                         {Base: BSP},
		"SSP(s=3)":                    {Base: SSP, Staleness: 3},
		"SpecSync-Adaptive(ASP)":      {Base: ASP, Spec: SpecAdaptive},
		"SpecSync-Cherrypick(ASP)":    {Base: ASP, Spec: SpecFixed, AbortTime: time.Second, AbortRate: 0.2},
		"SpecSync-Adaptive(SSP(s=2))": {Base: SSP, Staleness: 2, Spec: SpecAdaptive},
	}
	for want, c := range cases {
		if got := c.Name(); got != want {
			t.Errorf("Name(%+v) = %q, want %q", c, got, want)
		}
	}
	if got := (Config{Base: ASP, NaiveWait: time.Second}).Name(); !strings.Contains(got, "NaiveWait") {
		t.Errorf("naive name = %q", got)
	}
}

func TestStringers(t *testing.T) {
	if ASP.String() != "ASP" || BSP.String() != "BSP" || SSP.String() != "SSP" {
		t.Error("base stringer broken")
	}
	if !strings.Contains(Base(42).String(), "42") {
		t.Error("unknown base should embed number")
	}
	if SpecOff.String() != "Off" || SpecFixed.String() != "Cherrypick" || SpecAdaptive.String() != "Adaptive" {
		t.Error("spec stringer broken")
	}
}
