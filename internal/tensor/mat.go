package tensor

import (
	"fmt"
	"math"
)

// Mat is a dense row-major matrix view over a flat buffer. The buffer is
// typically a slice of a larger parameter vector so that matrices can live
// inside a sharded parameter store without copying.
type Mat struct {
	Rows, Cols int
	V          Vec // len == Rows*Cols, row-major
}

// NewMat allocates a zeroed Rows x Cols matrix.
func NewMat(rows, cols int) Mat {
	return Mat{Rows: rows, Cols: cols, V: NewVec(rows * cols)}
}

// MatOver wraps an existing buffer as a Rows x Cols matrix. It panics when
// the buffer length does not match.
func MatOver(rows, cols int, v Vec) Mat {
	if len(v) != rows*cols {
		panic(fmt.Sprintf("tensor: MatOver buffer %d != %dx%d", len(v), rows, cols))
	}
	return Mat{Rows: rows, Cols: cols, V: v}
}

// Row returns row i as a subslice (no copy).
func (m Mat) Row(i int) Vec {
	return m.V[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m Mat) At(i, j int) float64 { return m.V[i*m.Cols+j] }

// Set assigns element (i, j).
func (m Mat) Set(i, j int, x float64) { m.V[i*m.Cols+j] = x }

// MatVec computes out = M * x where x has length Cols and out length Rows.
func MatVec(m Mat, x, out Vec) {
	if len(x) != m.Cols || len(out) != m.Rows {
		panic(fmt.Sprintf("tensor: MatVec dims %dx%d * %d -> %d", m.Rows, m.Cols, len(x), len(out)))
	}
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
}

// MatTVec computes out = M^T * x where x has length Rows and out length Cols.
func MatTVec(m Mat, x, out Vec) {
	if len(x) != m.Rows || len(out) != m.Cols {
		panic(fmt.Sprintf("tensor: MatTVec dims (%dx%d)^T * %d -> %d", m.Rows, m.Cols, len(x), len(out)))
	}
	out.Zero()
	for i := 0; i < m.Rows; i++ {
		Axpy(out, x[i], m.Row(i))
	}
}

// AddOuter accumulates M += a * x*y^T where x has length Rows and y length
// Cols. This is the rank-1 update at the heart of backprop weight gradients.
func AddOuter(m Mat, a float64, x, y Vec) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic(fmt.Sprintf("tensor: AddOuter dims %d x %d into %dx%d", len(x), len(y), m.Rows, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		Axpy(m.Row(i), a*x[i], y)
	}
}

// LogSumExp returns log(sum_i exp(v_i)) computed stably.
func LogSumExp(v Vec) float64 {
	if len(v) == 0 {
		return math.Inf(-1)
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	var s float64
	for _, x := range v {
		s += math.Exp(x - m)
	}
	return m + math.Log(s)
}

// Softmax writes softmax(v) into out (may alias v).
func Softmax(v, out Vec) {
	if len(v) != len(out) {
		panic("tensor: softmax length mismatch")
	}
	lse := LogSumExp(v)
	for i, x := range v {
		out[i] = math.Exp(x - lse)
	}
}

// Argmax returns the index of the largest element, or -1 for empty input.
func Argmax(v Vec) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// Relu writes max(0, v) into out (may alias v).
func Relu(v, out Vec) {
	for i, x := range v {
		if x > 0 {
			out[i] = x
		} else {
			out[i] = 0
		}
	}
}
