// Package tensor provides the small dense linear-algebra kernels used by the
// hand-rolled ML models (softmax regression, MLP, matrix factorization) and
// by the parameter-server update path. Everything operates on flat []float64
// buffers so parameter vectors can be sharded and shipped over the wire
// without conversion.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Vec is a dense vector of float64 values.
type Vec []float64

// NewVec returns a zeroed vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Zero sets every element of v to 0 in place.
func (v Vec) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every element of v to c in place.
func (v Vec) Fill(c float64) {
	for i := range v {
		v[i] = c
	}
}

// Axpy computes y += a*x element-wise. It panics if lengths differ, which
// indicates a sharding bug rather than a recoverable condition.
func Axpy(y Vec, a float64, x Vec) {
	if len(y) != len(x) {
		panic(fmt.Sprintf("tensor: axpy length mismatch %d != %d", len(y), len(x)))
	}
	for i, xv := range x {
		y[i] += a * xv
	}
}

// Add computes y += x element-wise.
func Add(y, x Vec) { Axpy(y, 1, x) }

// Sub computes y -= x element-wise.
func Sub(y, x Vec) { Axpy(y, -1, x) }

// Scale multiplies every element of v by a in place.
func Scale(v Vec, a float64) {
	for i := range v {
		v[i] *= a
	}
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b Vec) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v Vec) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element of v, or 0 for an empty vector.
func MaxAbs(v Vec) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// RandNormal fills v with independent N(0, sigma^2) draws from rng.
func RandNormal(v Vec, sigma float64, rng *rand.Rand) {
	for i := range v {
		v[i] = rng.NormFloat64() * sigma
	}
}

// ClipNorm rescales v in place so that its Euclidean norm does not exceed
// maxNorm. It returns true if clipping occurred. Gradient clipping keeps
// asynchronous training stable when stale gradients spike.
func ClipNorm(v Vec, maxNorm float64) bool {
	if maxNorm <= 0 {
		return false
	}
	n := Norm2(v)
	if n <= maxNorm {
		return false
	}
	Scale(v, maxNorm/n)
	return true
}

// HasNaN reports whether v contains a NaN or infinity, which indicates a
// diverged optimization.
func HasNaN(v Vec) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}
