package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAxpyDotScale(t *testing.T) {
	y := Vec{1, 2, 3}
	x := Vec{4, 5, 6}
	Axpy(y, 2, x)
	want := Vec{9, 12, 15}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	if got := Dot(x, x); got != 16+25+36 {
		t.Errorf("Dot = %v", got)
	}
	Scale(y, 0)
	if Norm2(y) != 0 {
		t.Errorf("Scale to zero failed: %v", y)
	}
}

func TestAxpyLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Axpy(Vec{1}, 1, Vec{1, 2})
}

func TestQuickDotSymmetric(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n%32) + 1
		a, b := NewVec(m), NewVec(m)
		RandNormal(a, 1, rng)
		RandNormal(b, 1, rng)
		return almostEq(Dot(a, b), Dot(b, a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickNorm2CauchySchwarz(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n%32) + 1
		a, b := NewVec(m), NewVec(m)
		RandNormal(a, 2, rng)
		RandNormal(b, 2, rng)
		return math.Abs(Dot(a, b)) <= Norm2(a)*Norm2(b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClipNorm(t *testing.T) {
	v := Vec{3, 4} // norm 5
	if ClipNorm(v, 10) {
		t.Error("should not clip below threshold")
	}
	if !ClipNorm(v, 1) {
		t.Error("should clip above threshold")
	}
	if !almostEq(Norm2(v), 1, 1e-12) {
		t.Errorf("clipped norm = %v, want 1", Norm2(v))
	}
	if ClipNorm(v, 0) {
		t.Error("maxNorm <= 0 must be a no-op")
	}
}

func TestHasNaN(t *testing.T) {
	if HasNaN(Vec{1, 2, 3}) {
		t.Error("false positive")
	}
	if !HasNaN(Vec{1, math.NaN()}) {
		t.Error("missed NaN")
	}
	if !HasNaN(Vec{math.Inf(1)}) {
		t.Error("missed Inf")
	}
}

func TestMatVecAndTranspose(t *testing.T) {
	m := MatOver(2, 3, Vec{1, 2, 3, 4, 5, 6})
	out := NewVec(2)
	MatVec(m, Vec{1, 0, -1}, out)
	if out[0] != -2 || out[1] != -2 {
		t.Errorf("MatVec = %v", out)
	}
	tout := NewVec(3)
	MatTVec(m, Vec{1, 1}, tout)
	if tout[0] != 5 || tout[1] != 7 || tout[2] != 9 {
		t.Errorf("MatTVec = %v", tout)
	}
}

func TestQuickMatVecLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := rng.Intn(8)+1, rng.Intn(8)+1
		m := NewMat(r, c)
		RandNormal(m.V, 1, rng)
		x, y := NewVec(c), NewVec(c)
		RandNormal(x, 1, rng)
		RandNormal(y, 1, rng)
		a := rng.NormFloat64()

		// M(x + a*y) == Mx + a*My
		xy := x.Clone()
		Axpy(xy, a, y)
		lhs := NewVec(r)
		MatVec(m, xy, lhs)

		mx, my := NewVec(r), NewVec(r)
		MatVec(m, x, mx)
		MatVec(m, y, my)
		Axpy(mx, a, my)

		for i := range lhs {
			if !almostEq(lhs[i], mx[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMatTVecAdjoint(t *testing.T) {
	// <Mx, y> == <x, M^T y> for all x, y.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := rng.Intn(8)+1, rng.Intn(8)+1
		m := NewMat(r, c)
		RandNormal(m.V, 1, rng)
		x, y := NewVec(c), NewVec(r)
		RandNormal(x, 1, rng)
		RandNormal(y, 1, rng)

		mx := NewVec(r)
		MatVec(m, x, mx)
		mty := NewVec(c)
		MatTVec(m, y, mty)
		return almostEq(Dot(mx, y), Dot(x, mty), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMat(2, 2)
	AddOuter(m, 2, Vec{1, 2}, Vec{3, 4})
	want := []float64{6, 8, 12, 16}
	for i, w := range want {
		if m.V[i] != w {
			t.Errorf("AddOuter V[%d] = %v, want %v", i, m.V[i], w)
		}
	}
}

func TestSoftmax(t *testing.T) {
	v := Vec{1, 2, 3}
	out := NewVec(3)
	Softmax(v, out)
	var sum float64
	for _, p := range out {
		if p <= 0 || p >= 1 {
			t.Errorf("softmax out of range: %v", out)
		}
		sum += p
	}
	if !almostEq(sum, 1, 1e-12) {
		t.Errorf("softmax sums to %v", sum)
	}
	if !(out[2] > out[1] && out[1] > out[0]) {
		t.Errorf("softmax not monotone: %v", out)
	}
}

func TestSoftmaxStability(t *testing.T) {
	v := Vec{1000, 1001, 999}
	out := NewVec(3)
	Softmax(v, out)
	if HasNaN(out) {
		t.Fatalf("softmax overflowed: %v", out)
	}
}

func TestLogSumExp(t *testing.T) {
	if got := LogSumExp(Vec{0, 0}); !almostEq(got, math.Log(2), 1e-12) {
		t.Errorf("LogSumExp = %v", got)
	}
	if got := LogSumExp(Vec{}); !math.IsInf(got, -1) {
		t.Errorf("empty LogSumExp = %v", got)
	}
}

func TestArgmaxRelu(t *testing.T) {
	if Argmax(Vec{}) != -1 {
		t.Error("empty Argmax should be -1")
	}
	if Argmax(Vec{1, 5, 3}) != 1 {
		t.Error("Argmax wrong")
	}
	v := Vec{-1, 2, -3}
	Relu(v, v)
	if v[0] != 0 || v[1] != 2 || v[2] != 0 {
		t.Errorf("Relu = %v", v)
	}
}

func TestMaxAbs(t *testing.T) {
	if MaxAbs(Vec{}) != 0 {
		t.Error("empty MaxAbs")
	}
	if MaxAbs(Vec{-5, 3}) != 5 {
		t.Error("MaxAbs wrong")
	}
}

func TestMatOverPanicsOnBadLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MatOver(2, 2, Vec{1, 2, 3})
}
