package tensor

import (
	"math/rand"
	"testing"
)

func randVec(n int, seed int64) Vec {
	rng := rand.New(rand.NewSource(seed))
	v := NewVec(n)
	RandNormal(v, 1, rng)
	return v
}

func BenchmarkAxpy(b *testing.B) {
	x, y := randVec(7210, 1), randVec(7210, 2)
	b.SetBytes(7210 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Axpy(y, 0.001, x)
	}
}

func BenchmarkDot(b *testing.B) {
	x, y := randVec(7210, 1), randVec(7210, 2)
	b.SetBytes(7210 * 8)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Dot(x, y)
	}
	_ = sink
}

func BenchmarkMatVec(b *testing.B) {
	m := NewMat(96, 129) // CIFAR-like MLP first layer
	rng := rand.New(rand.NewSource(3))
	RandNormal(m.V, 1, rng)
	x, out := randVec(129, 4), NewVec(96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVec(m, x, out)
	}
}

func BenchmarkSoftmax(b *testing.B) {
	v, out := randVec(50, 5), NewVec(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Softmax(v, out)
	}
}
