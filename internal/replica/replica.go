// Package replica implements the replicated scheduler control plane: N
// standby scheduler incarnations that follow the serving leader's replicated
// state and elect a successor (terms, randomized election timeouts, majority
// votes — the Raft shape, simplified to a single-entry snapshot log) when
// the leader dies. The data-plane counterpart, primary-backup parameter
// shard replication, lives in internal/ps (replica.go); internal/faults
// wires both into fault plans so a crash-scheduler event ends in an elected
// standby instead of degraded broadcast mode, and a crash-server event ends
// in a zero-loss shard promotion instead of a lossy checkpoint restore.
//
// Simplifications relative to full Raft, deliberate for this system:
//
//   - The log is a single entry: the leader's latest core.SchedulerSnapshot,
//     shipped whole on every replication tick (it is small — the scheduler's
//     durable state is bounded by the worker count). Index ordering stands
//     in for log matching; a standby keeps only the newest snapshot.
//   - The bootstrap leader serves at term 0 by fiat (it is the only
//     incarnation at cluster start, so there is nothing to elect), and a
//     serving leader never steps down — failover is crash-triggered, which
//     is exactly what the fault plans exercise.
//   - The electorate is the standby set only. Majority is len(standbys)/2+1,
//     so a single standby self-elects, and the scheduler StateReport
//     handshake (PR 3) repairs anything the replicated snapshot missed.
package replica

import (
	"fmt"
	"time"

	"specsync/internal/node"
)

// Role is a scheduler incarnation's place in the replication protocol.
type Role int32

const (
	// RoleFollower is a standby tracking a live leader.
	RoleFollower Role = iota
	// RoleCandidate is a standby soliciting votes after leader silence.
	RoleCandidate
	// RoleLeader is the serving incarnation (bootstrap primary or an
	// election winner).
	RoleLeader
)

// String returns the role's /healthz and gauge label.
func (r Role) String() string {
	switch r {
	case RoleFollower:
		return "follower"
	case RoleCandidate:
		return "candidate"
	case RoleLeader:
		return "leader"
	}
	return fmt.Sprintf("role(%d)", int32(r))
}

// majority returns the votes needed to win an election among n standbys.
func majority(n int) int { return n/2 + 1 }

// standbyPeers returns the standby IDs other than self (0 = the bootstrap
// leader, which has no standby ID and is excluded by passing self=0).
func standbyPeers(total, self int) []node.ID {
	peers := make([]node.ID, 0, total)
	for i := 1; i <= total; i++ {
		if i == self {
			continue
		}
		peers = append(peers, node.StandbyID(i))
	}
	return peers
}

// electionTimeout draws a randomized timeout in [base, 2*base) — the spread
// that keeps two standbys from splitting every vote. rnd must be the node's
// own deterministic stream so elections replay identically under the DES.
func electionTimeout(base time.Duration, rnd interface{ Int63n(int64) int64 }) time.Duration {
	return base + time.Duration(rnd.Int63n(int64(base)))
}
