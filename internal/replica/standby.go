package replica

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"time"

	"specsync/internal/core"
	"specsync/internal/metrics"
	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/obs"
	"specsync/internal/wire"
)

// StandbyConfig configures one standby scheduler incarnation.
type StandbyConfig struct {
	// Index is this standby's 1-based slot (node ID "scheduler/<Index>").
	Index int
	// Standbys is the total standby count; majority is Standbys/2+1.
	Standbys int
	// Workers is the cluster's worker capacity, for the LeaderAnnounce
	// broadcast after winning an election.
	Workers int
	// ElectionTimeout is the base T of the randomized election timeout,
	// drawn per arming from [T, 2T). Leader silence past the drawn timeout
	// starts a candidacy. Required.
	ElectionTimeout time.Duration
	// ReplicateEvery is the snapshot-shipping period this standby adopts
	// toward the surviving standbys once it is elected leader. Required.
	ReplicateEvery time.Duration
	// MakeScheduler builds the scheduler incarnation an election winner
	// embeds; gen is the new incarnation number. Required.
	MakeScheduler func(gen int64) (*core.Scheduler, error)
	// OnPromote, if non-nil, tells the harness this standby now embeds the
	// serving scheduler (swap result-accounting references).
	OnPromote func(sb *Standby, s *core.Scheduler)
	// Faults, if non-nil, counts elections won.
	Faults *metrics.Faults
	// Obs, if non-nil, exports role/term gauges and the "leader-elected"
	// flight-recorder event.
	Obs *obs.Obs
}

// Standby is a scheduler incarnation waiting in the wings: it follows the
// leader's ReplState stream (which doubles as the leader heartbeat), votes
// in elections, and — if elected — restores the freshest replicated
// snapshot into a new embedded core.Scheduler, redirects workers with
// LeaderAnnounce, and takes over replication toward the surviving standbys.
type Standby struct {
	ctx node.Context
	cfg StandbyConfig

	role atomic.Int32
	term atomic.Int64 // highest term seen (== serving term once leader)

	// votedTerm is the highest term this standby granted a vote in (its own
	// candidacies included).
	votedTerm int64
	// Latest replicated snapshot and its log position / origin term.
	lastIndex int64
	lastTerm  int64
	lastSnap  []byte
	// Candidate vote tally for term voteTerm.
	voteTerm int64
	votes    int

	electionCancel node.CancelFunc

	// Leader state after winning.
	sched     *core.Scheduler
	shipIndex int64
	shipped   atomic.Int64
	elections atomic.Int64
}

var _ node.Handler = (*Standby)(nil)

// NewStandby validates cfg and builds the standby.
func NewStandby(cfg StandbyConfig) (*Standby, error) {
	if cfg.Index < 1 || cfg.Index > cfg.Standbys {
		return nil, fmt.Errorf("replica: standby index %d out of range 1..%d", cfg.Index, cfg.Standbys)
	}
	if cfg.ElectionTimeout <= 0 {
		return nil, fmt.Errorf("replica: ElectionTimeout must be positive, got %v", cfg.ElectionTimeout)
	}
	if cfg.ReplicateEvery <= 0 {
		return nil, fmt.Errorf("replica: ReplicateEvery must be positive, got %v", cfg.ReplicateEvery)
	}
	if cfg.MakeScheduler == nil {
		return nil, fmt.Errorf("replica: nil MakeScheduler")
	}
	return &Standby{cfg: cfg}, nil
}

// Init implements node.Handler.
func (sb *Standby) Init(ctx node.Context) {
	sb.ctx = ctx
	sb.cfg.Obs.SchedulerRole(string(ctx.Self()), RoleFollower.String(), sb.term.Load())
	sb.armElection()
}

// Receive implements node.Handler.
func (sb *Standby) Receive(from node.ID, m wire.Message) {
	switch mm := m.(type) {
	case *msg.ReplState:
		sb.handleReplState(mm)
	case *msg.VoteReq:
		sb.handleVoteReq(from, mm)
	case *msg.VoteResp:
		sb.handleVoteResp(mm)
	case *msg.LeaderAnnounce:
		// Another incarnation won: stand down and restart the failure
		// detector against the new leader.
		if sb.Role() != RoleLeader && mm.Term >= sb.term.Load() {
			sb.term.Store(mm.Term)
			sb.becomeFollower()
		}
	default:
		if sb.sched != nil {
			sb.sched.Receive(from, m)
			return
		}
		// Pre-promotion, only replication traffic is expected; Stop rides
		// through at shutdown and is a no-op for a cold standby.
		if _, ok := m.(*msg.Stop); !ok {
			sb.ctx.Logf("standby %d: unexpected message %T from %s", sb.cfg.Index, m, from)
		}
	}
}

// handleReplState ingests the leader's snapshot ship (and heartbeat).
func (sb *Standby) handleReplState(mm *msg.ReplState) {
	if sb.Role() == RoleLeader {
		return // stale ship from the incarnation this node replaced
	}
	if mm.Term < sb.term.Load() {
		return // stale ship from a deposed leader
	}
	sb.term.Store(mm.Term)
	if sb.Role() == RoleCandidate {
		sb.becomeFollower()
	}
	if mm.Index > sb.lastIndex {
		sb.lastIndex = mm.Index
		sb.lastTerm = mm.Term
		sb.lastSnap = mm.Snap
	}
	sb.armElection() // leader is alive: push the timeout out
}

// handleVoteReq grants one vote per term, and only to candidates whose
// replicated log is at least as fresh as ours.
func (sb *Standby) handleVoteReq(from node.ID, mm *msg.VoteReq) {
	grant := sb.Role() != RoleLeader &&
		mm.Term > sb.votedTerm &&
		mm.Index >= sb.lastIndex
	if grant {
		sb.votedTerm = mm.Term
		if mm.Term > sb.term.Load() {
			sb.term.Store(mm.Term)
		}
		if sb.Role() == RoleCandidate {
			sb.becomeFollower()
		}
		sb.armElection() // granting resets the failure detector
	}
	sb.ctx.Send(from, &msg.VoteResp{Term: mm.Term, Granted: grant})
}

// handleVoteResp tallies votes for the current candidacy.
func (sb *Standby) handleVoteResp(mm *msg.VoteResp) {
	if sb.Role() != RoleCandidate || !mm.Granted || mm.Term != sb.voteTerm {
		return
	}
	sb.votes++
	if sb.votes >= majority(sb.cfg.Standbys) {
		sb.becomeLeader()
	}
}

// armElection (re)arms the leader failure detector with a fresh randomized
// timeout. Like the scheduler's beacon, the timer re-arms for the life of
// the node; a serving leader just ignores expirations.
func (sb *Standby) armElection() {
	if sb.electionCancel != nil {
		sb.electionCancel()
	}
	d := electionTimeout(sb.cfg.ElectionTimeout, sb.ctx.Rand())
	sb.electionCancel = sb.ctx.After(d, func() {
		sb.electionCancel = nil
		sb.onElectionTimeout()
	})
}

// onElectionTimeout starts (or retries) a candidacy: bump the term, vote for
// ourselves, solicit the other standbys. The timer re-arms so a split or
// dead election retries at a new randomized timeout.
func (sb *Standby) onElectionTimeout() {
	if sb.Role() == RoleLeader {
		return
	}
	term := sb.term.Add(1)
	sb.role.Store(int32(RoleCandidate))
	sb.cfg.Obs.SchedulerRole(string(sb.ctx.Self()), RoleCandidate.String(), term)
	sb.votedTerm = term // self-vote
	sb.voteTerm = term
	sb.votes = 1
	sb.ctx.Logf("standby %d: leader silent; starting election for term %d", sb.cfg.Index, term)
	if sb.votes >= majority(sb.cfg.Standbys) {
		sb.becomeLeader()
		return
	}
	for _, peer := range standbyPeers(sb.cfg.Standbys, sb.cfg.Index) {
		sb.ctx.Send(peer, &msg.VoteReq{Term: term, Index: sb.lastIndex})
	}
	sb.armElection()
}

// becomeFollower stands a candidate down.
func (sb *Standby) becomeFollower() {
	sb.role.Store(int32(RoleFollower))
	sb.votes = 0
	sb.cfg.Obs.SchedulerRole(string(sb.ctx.Self()), RoleFollower.String(), sb.term.Load())
}

// becomeLeader is the failover moment: build the next scheduler incarnation,
// warm it from the freshest replicated snapshot, redirect the cluster, and
// take over the replication duty.
func (sb *Standby) becomeLeader() {
	term := sb.term.Load()
	sb.role.Store(int32(RoleLeader))
	if sb.electionCancel != nil {
		sb.electionCancel()
		sb.electionCancel = nil
	}

	// The new generation continues the dead leader's sequence so workers
	// recognize the Hello/Announce as a fresh incarnation. A cold standby
	// (never received a snapshot) falls back to its term, which is >= 1.
	gen := term
	var restore *core.SchedulerSnapshot
	if sb.lastSnap != nil {
		snap, err := core.ReadSchedulerSnapshot(bytes.NewReader(sb.lastSnap))
		if err != nil {
			sb.ctx.Logf("standby %d: replicated snapshot decode: %v; starting cold", sb.cfg.Index, err)
		} else {
			restore = &snap
			if snap.Generation+1 > gen {
				gen = snap.Generation + 1
			}
		}
	}
	sched, err := sb.cfg.MakeScheduler(gen)
	if err != nil {
		sb.ctx.Logf("standby %d: cannot build scheduler incarnation: %v", sb.cfg.Index, err)
		sb.becomeFollower()
		return
	}
	if restore != nil {
		if err := sched.Restore(*restore); err != nil {
			sb.ctx.Logf("standby %d: snapshot restore: %v; starting cold", sb.cfg.Index, err)
		}
	}
	sb.sched = sched
	sb.elections.Add(1)
	sb.cfg.Faults.RecordElection()
	sb.cfg.Obs.SchedulerRole(string(sb.ctx.Self()), RoleLeader.String(), term)
	sb.cfg.Obs.RecordFlight(obs.FlightEvent{
		At: sb.ctx.Now(), Kind: "leader-elected", Node: string(sb.ctx.Self()), Value: float64(term),
		Detail: fmt.Sprintf("gen %d, snapshot index %d", gen, sb.lastIndex),
	})
	sb.ctx.Logf("standby %d: elected leader (term %d, gen %d, snapshot index %d)", sb.cfg.Index, term, gen, sb.lastIndex)
	if sb.cfg.OnPromote != nil {
		sb.cfg.OnPromote(sb, sched)
	}

	// Redirect the cluster before the embedded Init's Hello broadcast: the
	// announce is what moves workers' scheduler address to this node.
	announce := func(to node.ID) { sb.ctx.Send(to, &msg.LeaderAnnounce{Term: term, Gen: gen}) }
	for i := 0; i < sb.cfg.Workers; i++ {
		announce(node.WorkerID(i))
	}
	for _, peer := range standbyPeers(sb.cfg.Standbys, sb.cfg.Index) {
		announce(peer)
	}
	sb.sched.Init(sb.ctx)
	sb.shipIndex = sb.lastIndex
	sb.armReplicate()
}

// armReplicate is the elected leader's snapshot-shipping loop toward the
// surviving standbys (mirrors Leader.armReplicate).
func (sb *Standby) armReplicate() {
	sb.ctx.After(sb.cfg.ReplicateEvery, func() {
		sb.ship()
		sb.armReplicate()
	})
}

func (sb *Standby) ship() {
	if sb.sched == nil {
		return
	}
	var buf bytes.Buffer
	snap := sb.sched.Snapshot()
	if _, err := snap.WriteTo(&buf); err != nil {
		sb.ctx.Logf("standby %d: snapshot encode: %v", sb.cfg.Index, err)
		return
	}
	sb.shipIndex++
	for _, peer := range standbyPeers(sb.cfg.Standbys, sb.cfg.Index) {
		sb.ctx.Send(peer, &msg.ReplState{Term: sb.term.Load(), Index: sb.shipIndex, Snap: buf.Bytes()})
	}
	sb.shipped.Add(1)
}

// Role returns the standby's current protocol role. Safe for concurrent use.
func (sb *Standby) Role() Role { return Role(sb.role.Load()) }

// Term returns the highest term seen (the serving term once leader). Safe
// for concurrent use.
func (sb *Standby) Term() int64 { return sb.term.Load() }

// Sched returns the embedded scheduler once this standby has been elected,
// nil before.
func (sb *Standby) Sched() *core.Scheduler { return sb.sched }

// Elections returns how many elections this standby has won. Safe for
// concurrent use.
func (sb *Standby) Elections() int64 { return sb.elections.Load() }

// Shipped returns the number of post-election replication ticks that
// shipped a snapshot. Safe for concurrent use.
func (sb *Standby) Shipped() int64 { return sb.shipped.Load() }
