package replica

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"time"

	"specsync/internal/core"
	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/obs"
	"specsync/internal/wire"
)

// LeaderConfig configures the bootstrap leader wrapper.
type LeaderConfig struct {
	// Sched is the embedded serving scheduler. Required.
	Sched *core.Scheduler
	// Standbys is the number of standby incarnations (scheduler/1..N).
	// Required >= 1 — with no standbys there is nothing to replicate to.
	Standbys int
	// ReplicateEvery is the snapshot-shipping period, which doubles as the
	// leader liveness heartbeat. Must be shorter than the standbys' election
	// timeout base or followers will call spurious elections. Required.
	ReplicateEvery time.Duration
	// Term is the term this leader serves under (0 for the bootstrap
	// incarnation).
	Term int64
	// Obs, if non-nil, exports the role/term gauges for this node.
	Obs *obs.Obs
}

// Leader wraps the serving scheduler at the well-known "scheduler" node ID:
// it delegates the whole coordination protocol to the embedded
// core.Scheduler and adds the replication duty — shipping its durable
// snapshot to every standby on each tick. It never steps down; failover is
// crash-triggered.
type Leader struct {
	ctx     node.Context
	cfg     LeaderConfig
	index   int64
	shipped atomic.Int64
}

var _ node.Handler = (*Leader)(nil)

// NewLeader validates cfg and builds the wrapper.
func NewLeader(cfg LeaderConfig) (*Leader, error) {
	if cfg.Sched == nil {
		return nil, fmt.Errorf("replica: nil scheduler")
	}
	if cfg.Standbys < 1 {
		return nil, fmt.Errorf("replica: leader needs at least one standby, got %d", cfg.Standbys)
	}
	if cfg.ReplicateEvery <= 0 {
		return nil, fmt.Errorf("replica: ReplicateEvery must be positive, got %v", cfg.ReplicateEvery)
	}
	return &Leader{cfg: cfg}, nil
}

// Init implements node.Handler.
func (l *Leader) Init(ctx node.Context) {
	l.ctx = ctx
	l.cfg.Obs.SchedulerRole(string(ctx.Self()), RoleLeader.String(), l.cfg.Term)
	l.cfg.Sched.Init(ctx)
	l.armReplicate()
}

// Receive implements node.Handler. Replication-protocol traffic is absorbed
// here; everything else is the coordination protocol and goes to the
// embedded scheduler.
func (l *Leader) Receive(from node.ID, m wire.Message) {
	switch mm := m.(type) {
	case *msg.VoteReq:
		// A live leader refuses every candidacy; the denial also tells the
		// candidate somebody is still serving.
		l.ctx.Send(from, &msg.VoteResp{Term: mm.Term, Granted: false})
	case *msg.VoteResp, *msg.ReplState, *msg.LeaderAnnounce:
		// Stale replication traffic from an election this leader was not
		// part of; ignore.
	default:
		l.cfg.Sched.Receive(from, m)
	}
}

// armReplicate schedules the periodic snapshot ship. Like the scheduler's
// own beacon, it re-arms for the life of the node.
func (l *Leader) armReplicate() {
	l.ctx.After(l.cfg.ReplicateEvery, func() {
		l.ship()
		l.armReplicate()
	})
}

// ship replicates the scheduler's current durable state to every standby.
func (l *Leader) ship() {
	var buf bytes.Buffer
	snap := l.cfg.Sched.Snapshot()
	if _, err := snap.WriteTo(&buf); err != nil {
		l.ctx.Logf("replica: leader snapshot encode: %v", err)
		return
	}
	l.index++
	for i := 1; i <= l.cfg.Standbys; i++ {
		// Send marshals synchronously, so sharing buf across sends is safe.
		l.ctx.Send(node.StandbyID(i), &msg.ReplState{Term: l.cfg.Term, Index: l.index, Snap: buf.Bytes()})
	}
	l.shipped.Add(1)
}

// Sched returns the embedded serving scheduler.
func (l *Leader) Sched() *core.Scheduler { return l.cfg.Sched }

// Shipped returns the number of replication ticks that shipped a snapshot.
// Safe for concurrent use.
func (l *Leader) Shipped() int64 { return l.shipped.Load() }

// Term returns the term this leader serves under.
func (l *Leader) Term() int64 { return l.cfg.Term }

// Role returns RoleLeader (the wrapper only ever serves).
func (l *Leader) Role() Role { return RoleLeader }
