package msg

import "specsync/internal/wire"

// Replication protocol messages (internal/replica + internal/ps replica
// mode). Scheduler replication is a simplified Raft: standbys hold elections
// with VoteReq/VoteResp, the leader replicates its full durable snapshot to
// every standby with ReplState (which doubles as the leader heartbeat), and
// a newly elected leader redirects workers with LeaderAnnounce. Shard
// replication is primary-backup: the primary forwards every applied push to
// its backups as a version-stamped ReplApply, which backups replay in strict
// version order.
//
// Kind values are part of the wire format; never renumber them.
const (
	KindLeaderAnnounce wire.Kind = 28
	KindVoteReq        wire.Kind = 29
	KindVoteResp       wire.Kind = 30
	KindReplState      wire.Kind = 31
	KindReplApply      wire.Kind = 32
)

// LeaderAnnounce redirects workers to a newly elected scheduler incarnation.
// Term is the winning election term; Gen the scheduler generation the
// embedded incarnation serves (workers treat it like a SchedulerHello
// generation bump, but adopt the sender as their scheduler address).
type LeaderAnnounce struct {
	Term int64
	Gen  int64
}

var _ wire.Message = (*LeaderAnnounce)(nil)

// Kind implements wire.Message.
func (m *LeaderAnnounce) Kind() wire.Kind { return KindLeaderAnnounce }

// Encode implements wire.Message.
func (m *LeaderAnnounce) Encode(w *wire.Writer) {
	w.Varint(m.Term)
	w.Varint(m.Gen)
}

// Decode implements wire.Message.
func (m *LeaderAnnounce) Decode(r *wire.Reader) {
	m.Term = r.Varint()
	m.Gen = r.Varint()
}

// VoteReq asks a standby for its vote in election Term. Index is the
// candidate's replicated-log position (last snapshot index it holds); a
// standby refuses candidates whose log is behind its own, so the winner
// always holds the freshest replicated scheduler state.
type VoteReq struct {
	Term  int64
	Index int64
}

var _ wire.Message = (*VoteReq)(nil)

// Kind implements wire.Message.
func (m *VoteReq) Kind() wire.Kind { return KindVoteReq }

// Encode implements wire.Message.
func (m *VoteReq) Encode(w *wire.Writer) {
	w.Varint(m.Term)
	w.Varint(m.Index)
}

// Decode implements wire.Message.
func (m *VoteReq) Decode(r *wire.Reader) {
	m.Term = r.Varint()
	m.Index = r.Varint()
}

// VoteResp answers a VoteReq. Granted is the vote; Term echoes the election
// term so stale responses from earlier elections are discarded.
type VoteResp struct {
	Term    int64
	Granted bool
}

var _ wire.Message = (*VoteResp)(nil)

// Kind implements wire.Message.
func (m *VoteResp) Kind() wire.Kind { return KindVoteResp }

// Encode implements wire.Message.
func (m *VoteResp) Encode(w *wire.Writer) {
	w.Varint(m.Term)
	w.Bool(m.Granted)
}

// Decode implements wire.Message.
func (m *VoteResp) Decode(r *wire.Reader) {
	m.Term = r.Varint()
	m.Granted = r.Bool()
}

// ReplState replicates the leader's durable scheduler state to a standby and
// doubles as the leader liveness heartbeat. Snap is a core.SchedulerSnapshot
// in its WriteTo encoding (this package cannot import internal/core); Index
// is a monotonically increasing log position so standbys keep only the
// newest snapshot even if the network reorders ships.
type ReplState struct {
	Term  int64
	Index int64
	Snap  []byte
}

var _ wire.Message = (*ReplState)(nil)

// Kind implements wire.Message.
func (m *ReplState) Kind() wire.Kind { return KindReplState }

// Encode implements wire.Message.
func (m *ReplState) Encode(w *wire.Writer) {
	w.Varint(m.Term)
	w.Varint(m.Index)
	w.Bytes2(m.Snap)
}

// Decode implements wire.Message.
func (m *ReplState) Decode(r *wire.Reader) {
	m.Term = r.Varint()
	m.Index = r.Varint()
	m.Snap = r.Bytes()
}

// ReplApply body tags.
const (
	// ReplBodySparse: Idx/Grad carry a sparse gradient (PushReq sparse path).
	ReplBodySparse uint8 = 0
	// ReplBodyDense: Dense carries a dense gradient (PushReq dense path).
	ReplBodyDense uint8 = 1
	// ReplBodyCodec: Codec/Payload carry an encoded block (PushReqV2 path).
	ReplBodyCodec uint8 = 2
)

// ReplApply forwards one applied push from a shard primary to a backup.
// Version is the primary's parameter version after the apply; the backup
// replays ReplApplies in strict version order (buffering gaps) and stamps
// its optimizer with Version-1 before applying, so its parameter and
// momentum state stay byte-identical to the primary's. Worker/Iter identify
// the logical push for duplicate suppression across a promotion. Body
// selects which gradient representation rides along, mirroring
// PushReq/PushReqV2.
type ReplApply struct {
	Version int64
	Worker  int32
	Iter    int64
	Body    uint8
	Idx     []int32   // ReplBodySparse
	Grad    []float64 // ReplBodySparse
	Dense   []float64 // ReplBodyDense
	Codec   uint8     // ReplBodyCodec: codec.ID of Payload
	Payload []byte    // ReplBodyCodec
}

var _ wire.Message = (*ReplApply)(nil)

// Kind implements wire.Message.
func (m *ReplApply) Kind() wire.Kind { return KindReplApply }

// Encode implements wire.Message.
func (m *ReplApply) Encode(w *wire.Writer) {
	w.Varint(m.Version)
	w.Varint(int64(m.Worker))
	w.Varint(m.Iter)
	w.Uint8(m.Body)
	switch m.Body {
	case ReplBodySparse:
		w.Ints32(m.Idx)
		w.Float64s(m.Grad)
	case ReplBodyDense:
		w.Float64s(m.Dense)
	default:
		w.Uint8(m.Codec)
		w.Bytes2(m.Payload)
	}
}

// Decode implements wire.Message.
func (m *ReplApply) Decode(r *wire.Reader) {
	m.Version = r.Varint()
	m.Worker = int32(r.Varint())
	m.Iter = r.Varint()
	m.Body = r.Uint8()
	switch m.Body {
	case ReplBodySparse:
		m.Idx = r.Ints32()
		m.Grad = r.Float64s()
	case ReplBodyDense:
		m.Dense = r.Float64s()
	default:
		m.Codec = r.Uint8()
		m.Payload = r.Bytes()
	}
}
