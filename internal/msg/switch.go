package msg

import (
	"time"

	"specsync/internal/wire"
)

// Scheme-switching protocol messages. The scheduler rewrites the fleet's
// active synchronization discipline mid-run by broadcasting SchemeSwitch:
// each worker applies the new base/bound at its next iteration boundary,
// keyed by a monotonically increasing scheme epoch so stale or duplicated
// switches are ignored. The message carries the barrier round and min-clock
// baselines the scheduler rebuilt for the incoming scheme, so a worker
// parked at a barrier or staleness gate of the outgoing scheme can decide
// immediately whether it is released. NotifyV2 replaces Notify on runs with
// a dynamic scheme (variant or meta-scheme): it additionally reports the
// worker's own work span — pull+compute+push, excluding barrier and gate
// waits — giving the straggler detector a signal that is independent of how
// tightly the active scheme synchronizes the fleet.
//
// Kind values are part of the wire format; never renumber them.
const (
	KindSchemeSwitch wire.Kind = 33
	KindNotifyV2     wire.Kind = 34
)

// SchemeSwitch atomically retargets a worker onto a new synchronization
// discipline at its next iteration boundary.
type SchemeSwitch struct {
	Epoch     int64         // scheme epoch; workers keep the highest seen
	Base      uint8         // scheme.Base of the incoming discipline
	Staleness int64         // SSP bound (meaningful when Base is SSP)
	Beta      float64       // barrier quorum fraction (BSP family; 0 = full)
	Round     int64         // barrier round baseline already released
	MinClock  int64         // SSP min-clock baseline
	Reason    string        // human-readable trigger, for traces and /clusterz
	At        time.Duration // scheduler virtual/wall offset when issued (informational)
}

var _ wire.Message = (*SchemeSwitch)(nil)

// Kind implements wire.Message.
func (m *SchemeSwitch) Kind() wire.Kind { return KindSchemeSwitch }

// Encode implements wire.Message.
func (m *SchemeSwitch) Encode(w *wire.Writer) {
	w.Varint(m.Epoch)
	w.Uint8(m.Base)
	w.Varint(m.Staleness)
	w.Float64(m.Beta)
	w.Varint(m.Round)
	w.Varint(m.MinClock)
	w.String(m.Reason)
	w.Duration(m.At)
}

// Decode implements wire.Message.
func (m *SchemeSwitch) Decode(r *wire.Reader) {
	m.Epoch = r.Varint()
	m.Base = r.Uint8()
	m.Staleness = r.Varint()
	m.Beta = r.Float64()
	m.Round = r.Varint()
	m.MinClock = r.Varint()
	m.Reason = r.String()
	m.At = r.Duration()
}

// NotifyV2 is Notify plus the worker's self-measured work span for the
// iteration just completed.
type NotifyV2 struct {
	Iter int64         // iteration just completed
	Span time.Duration // gate-exit → push-acked duration (no barrier waits)
}

var _ wire.Message = (*NotifyV2)(nil)

// Kind implements wire.Message.
func (m *NotifyV2) Kind() wire.Kind { return KindNotifyV2 }

// Encode implements wire.Message.
func (m *NotifyV2) Encode(w *wire.Writer) {
	w.Varint(m.Iter)
	w.Duration(m.Span)
}

// Decode implements wire.Message.
func (m *NotifyV2) Decode(r *wire.Reader) {
	m.Iter = r.Varint()
	m.Span = r.Duration()
}
