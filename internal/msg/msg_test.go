package msg

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"specsync/internal/wire"
)

// roundtrip marshals and unmarshals m through the registry and returns the
// decoded message.
func roundtrip(t *testing.T, m wire.Message) wire.Message {
	t.Helper()
	out, err := Registry().Unmarshal(wire.Marshal(m))
	if err != nil {
		t.Fatalf("roundtrip %T: %v", m, err)
	}
	return out
}

func TestAllMessagesRoundtrip(t *testing.T) {
	cases := []wire.Message{
		&PullReq{Seq: 42},
		&PullResp{Seq: 7, Version: 100, Values: []float64{1, 2, 3}},
		&PushReq{Seq: 9, Iter: 4, PullVersion: 88, Dense: []float64{0.5, -0.5}},
		&PushReq{Seq: 10, Iter: 5, PullVersion: 89, IsSparse: true, SparseIdx: []int32{1, 7}, SparseVal: []float64{2, 3}},
		&PushAck{Seq: 9, Version: 101, Staleness: 13},
		&Notify{Iter: 6},
		&ReSync{Iter: 7},
		&Start{},
		&Stop{},
		&BarrierRelease{Round: 3},
		&MinClock{Clock: 11},
		&WorkerReady{},
		&PushNotice{Iter: 2},
		&Heartbeat{Iter: 8},
		&SchedulerHello{Gen: 2},
		&StateReport{Iter: 12, Pushed: true, Clock: 12, Waiting: true, Degraded: true},
		&SchedulerBeacon{Gen: 3},
		&PullReqV2{Seq: 13, Have: -1},
		&PullRespV2{Seq: 13, Version: 9, Base: -1, Codec: 0, Payload: []byte{1, 2, 3}},
		&PushReqV2{Seq: 14, Iter: 5, PullVersion: 9, Codec: 1, Payload: []byte{4, 5}},
		&JoinReq{},
		&JoinAck{Epoch: 3, Lo: []int32{0, 12}, Hi: []int32{12, 24}, Srv: []int32{0, 2}, StartIter: 7, MinClock: 5},
		&RoutingUpdate{Epoch: 4, Lo: []int32{0}, Hi: []int32{24}, Srv: []int32{1}},
		&ShardTransfer{Epoch: 4, HasNew: true, NewLo: 0, NewHi: 12, KeepLo: 0, KeepHi: 6, SendLo: []int32{12}, SendHi: []int32{24}, SendTo: []int32{1}, Expect: 1},
		&ShardTransfer{Epoch: 5, SendLo: []int32{0}, SendHi: []int32{8}, SendTo: []int32{2}},
		&ShardState{Epoch: 4, Lo: 6, Hi: 12, Version: 100, Codec: 0, Payload: []byte{9, 8, 7}},
		&MigrateDone{Epoch: 4, Bytes: 4096},
		&ScaleCmd{Op: ScaleRetireWorker, Node: 5, Servers: []int32{}},
		&ScaleCmd{Op: ScaleSetServers, Servers: []int32{0, 1, 3}},
		&LeaderAnnounce{Term: 2, Gen: 3},
		&VoteReq{Term: 2, Index: 17},
		&VoteResp{Term: 2, Granted: true},
		&ReplState{Term: 1, Index: 9, Snap: []byte{1, 2, 3, 4}},
		&ReplApply{Version: 55, Worker: 3, Iter: 12, Body: ReplBodySparse, Idx: []int32{1, 4}, Grad: []float64{0.5, -1}},
		&ReplApply{Version: 56, Worker: 0, Iter: 13, Body: ReplBodyDense, Dense: []float64{1, 2, 3}},
		&ReplApply{Version: 57, Worker: 1, Iter: 14, Body: ReplBodyCodec, Codec: 2, Payload: []byte{9, 9}},
		&SchemeSwitch{Epoch: 3, Base: 3, Staleness: 4, Beta: 0.7, Round: 12, MinClock: 9, Reason: "sustained-straggler", At: 5 * time.Second},
		&NotifyV2{Iter: 7, Span: 250 * time.Millisecond},
		&CloneCtl{StartIter: 41, Round: 40, MinClock: 39},
		&CloneNotice{Slot: 8, Target: 3},
	}
	for _, in := range cases {
		out := roundtrip(t, in)
		if !reflect.DeepEqual(in, out) {
			t.Errorf("%T: roundtrip mismatch:\n in: %+v\nout: %+v", in, in, out)
		}
	}
}

func TestRegistryCoversAllKinds(t *testing.T) {
	reg := Registry()
	kinds := reg.Kinds()
	if len(kinds) != 36 {
		t.Errorf("registry has %d kinds, want 36", len(kinds))
	}
	for _, k := range kinds {
		m, err := reg.New(k)
		if err != nil {
			t.Fatalf("New(%d): %v", k, err)
		}
		if m.Kind() != k {
			t.Errorf("kind %d: message reports kind %d", k, m.Kind())
		}
	}
}

func TestQuickPushReqRoundtrip(t *testing.T) {
	reg := Registry()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := &PushReq{
			Seq:         rng.Uint64(),
			Iter:        rng.Int63(),
			PullVersion: rng.Int63(),
		}
		if rng.Intn(2) == 0 {
			in.Dense = make([]float64, rng.Intn(50))
			for i := range in.Dense {
				in.Dense[i] = rng.NormFloat64()
			}
		} else {
			in.IsSparse = true
			n := rng.Intn(20)
			in.SparseIdx = make([]int32, n)
			in.SparseVal = make([]float64, n)
			for i := 0; i < n; i++ {
				in.SparseIdx[i] = rng.Int31()
				in.SparseVal[i] = rng.NormFloat64()
			}
		}
		out, err := reg.Unmarshal(wire.Marshal(in))
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPushReqSparseView(t *testing.T) {
	m := &PushReq{IsSparse: true, SparseIdx: []int32{3, 5}, SparseVal: []float64{1, 2}}
	sv := m.Sparse()
	if sv.Len() != 2 || sv.Idx[1] != 5 || sv.Val[1] != 2 {
		t.Errorf("Sparse view wrong: %+v", sv)
	}
}

func TestIsControlClassification(t *testing.T) {
	// ShardState carries migrating parameter payloads, so it rides the data
	// path like pushes and pulls; the rest of the elastic protocol is control.
	data := []wire.Kind{KindPullReq, KindPullResp, KindPushReq, KindPushAck, KindShardState, KindReplApply}
	for _, k := range data {
		if IsControl(k) {
			t.Errorf("kind %d misclassified as control", k)
		}
	}
	control := []wire.Kind{KindNotify, KindReSync, KindStart, KindStop, KindBarrierRelease, KindMinClock, KindWorkerReady, KindPushNotice, KindHeartbeat, KindJoinReq, KindJoinAck, KindRoutingUpdate, KindShardTransfer, KindMigrateDone, KindScaleCmd, KindLeaderAnnounce, KindVoteReq, KindVoteResp, KindReplState, KindSchemeSwitch, KindNotifyV2}
	for _, k := range control {
		if !IsControl(k) {
			t.Errorf("kind %d misclassified as data", k)
		}
	}
}

func TestControlMessagesAreTiny(t *testing.T) {
	// The paper's centralized design relies on control messages being a few
	// bytes; regression-guard their encoded sizes.
	small := []wire.Message{&Notify{Iter: 1 << 40}, &ReSync{Iter: 1 << 40}, &Start{}, &Stop{}, &MinClock{Clock: 99}, &Heartbeat{Iter: 1 << 40}, &NotifyV2{Iter: 1 << 40, Span: time.Hour}}
	for _, m := range small {
		if n := wire.EncodedSize(m); n > 16 {
			t.Errorf("%T encodes to %d bytes, want <= 16", m, n)
		}
	}
}
