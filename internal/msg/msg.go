// Package msg defines every protocol message exchanged between workers,
// parameter-server shards and the SpecSync scheduler, with hand-rolled wire
// encodings. The protocol follows Algorithm 2 of the paper:
//
//	worker -> server:    PullReq, PushReq
//	server -> worker:    PullResp, PushAck
//	worker -> scheduler: Notify            (after each completed push)
//	scheduler -> worker: ReSync            (abort and re-pull), Start, Stop,
//	                     BarrierRelease    (BSP), MinClock (SSP)
//
// Kind values are part of the wire format; never renumber them.
package msg

import (
	"specsync/internal/sparse"
	"specsync/internal/wire"
)

// Message kinds. Gaps are reserved for future extensions.
const (
	KindPullReq         wire.Kind = 1
	KindPullResp        wire.Kind = 2
	KindPushReq         wire.Kind = 3
	KindPushAck         wire.Kind = 4
	KindNotify          wire.Kind = 5
	KindReSync          wire.Kind = 6
	KindStart           wire.Kind = 7
	KindStop            wire.Kind = 8
	KindBarrierRelease  wire.Kind = 9
	KindMinClock        wire.Kind = 10
	KindWorkerReady     wire.Kind = 11
	KindPushNotice      wire.Kind = 12
	KindHeartbeat       wire.Kind = 13
	KindSchedulerHello  wire.Kind = 14
	KindStateReport     wire.Kind = 15
	KindSchedulerBeacon wire.Kind = 16
	// Codec-tagged data-path layouts (internal/codec). The v1 kinds above
	// stay untouched so the default raw codec remains byte-identical; never
	// reuse a Kind for a different layout.
	KindPullReqV2  wire.Kind = 17
	KindPullRespV2 wire.Kind = 18
	KindPushReqV2  wire.Kind = 19
)

// PullReq asks a server shard for its current parameter block.
type PullReq struct {
	// Seq is the worker's pull sequence number; responses carrying a stale
	// Seq (from before an abort) are discarded by the worker.
	Seq uint64
}

var _ wire.Message = (*PullReq)(nil)

// Kind implements wire.Message.
func (m *PullReq) Kind() wire.Kind { return KindPullReq }

// Encode implements wire.Message.
func (m *PullReq) Encode(w *wire.Writer) { w.Uint64(m.Seq) }

// Decode implements wire.Message.
func (m *PullReq) Decode(r *wire.Reader) { m.Seq = r.Uint64() }

// PullResp returns a shard's parameters.
type PullResp struct {
	Seq     uint64
	Version int64 // shard's push counter at read time; used for staleness
	Values  []float64
}

var _ wire.Message = (*PullResp)(nil)

// Kind implements wire.Message.
func (m *PullResp) Kind() wire.Kind { return KindPullResp }

// Encode implements wire.Message.
func (m *PullResp) Encode(w *wire.Writer) {
	w.Uint64(m.Seq)
	w.Varint(m.Version)
	w.Float64s(m.Values)
}

// Decode implements wire.Message.
func (m *PullResp) Decode(r *wire.Reader) {
	m.Seq = r.Uint64()
	m.Version = r.Varint()
	m.Values = r.Float64s()
}

// PushReq delivers a gradient block for one shard. Exactly one of Dense or
// Sparse is populated (Sparse for matrix factorization).
type PushReq struct {
	Seq         uint64 // worker's push sequence, echoed in PushAck
	Iter        int64  // worker's iteration number
	PullVersion int64  // shard version the gradient was computed against
	Dense       []float64
	SparseIdx   []int32
	SparseVal   []float64
	IsSparse    bool
}

var _ wire.Message = (*PushReq)(nil)

// Kind implements wire.Message.
func (m *PushReq) Kind() wire.Kind { return KindPushReq }

// Encode implements wire.Message.
func (m *PushReq) Encode(w *wire.Writer) {
	w.Uint64(m.Seq)
	w.Varint(m.Iter)
	w.Varint(m.PullVersion)
	w.Bool(m.IsSparse)
	if m.IsSparse {
		w.Ints32(m.SparseIdx)
		w.Float64s(m.SparseVal)
	} else {
		w.Float64s(m.Dense)
	}
}

// Decode implements wire.Message.
func (m *PushReq) Decode(r *wire.Reader) {
	m.Seq = r.Uint64()
	m.Iter = r.Varint()
	m.PullVersion = r.Varint()
	m.IsSparse = r.Bool()
	if m.IsSparse {
		m.SparseIdx = r.Ints32()
		m.SparseVal = r.Float64s()
	} else {
		m.Dense = r.Float64s()
	}
}

// Sparse returns the sparse payload as a sparse.Vec view.
func (m *PushReq) Sparse() sparse.Vec {
	return sparse.Vec{Idx: m.SparseIdx, Val: m.SparseVal}
}

// PushAck confirms a gradient application.
type PushAck struct {
	Seq       uint64
	Version   int64 // shard version after applying this push
	Staleness int64 // number of pushes applied between the pull and this push
}

var _ wire.Message = (*PushAck)(nil)

// Kind implements wire.Message.
func (m *PushAck) Kind() wire.Kind { return KindPushAck }

// Encode implements wire.Message.
func (m *PushAck) Encode(w *wire.Writer) {
	w.Uint64(m.Seq)
	w.Varint(m.Version)
	w.Varint(m.Staleness)
}

// Decode implements wire.Message.
func (m *PushAck) Decode(r *wire.Reader) {
	m.Seq = r.Uint64()
	m.Version = r.Varint()
	m.Staleness = r.Varint()
}

// Notify tells the scheduler a worker finished an iteration (pushed its
// update). It triggers the speculation window for the sender (Algorithm 2).
type Notify struct {
	Iter int64 // iteration just completed
}

var _ wire.Message = (*Notify)(nil)

// Kind implements wire.Message.
func (m *Notify) Kind() wire.Kind { return KindNotify }

// Encode implements wire.Message.
func (m *Notify) Encode(w *wire.Writer) { w.Varint(m.Iter) }

// Decode implements wire.Message.
func (m *Notify) Decode(r *wire.Reader) { m.Iter = r.Varint() }

// ReSync instructs a worker to abort the given iteration and re-pull fresher
// parameters. Workers ignore ReSync for iterations they are no longer
// computing ("if that is not too late yet", paper Sec. IV-A).
type ReSync struct {
	Iter int64 // iteration to abort (the one after the triggering Notify)
}

var _ wire.Message = (*ReSync)(nil)

// Kind implements wire.Message.
func (m *ReSync) Kind() wire.Kind { return KindReSync }

// Encode implements wire.Message.
func (m *ReSync) Encode(w *wire.Writer) { w.Varint(m.Iter) }

// Decode implements wire.Message.
func (m *ReSync) Decode(r *wire.Reader) { m.Iter = r.Varint() }

// Start launches a worker's training loop.
type Start struct{}

var _ wire.Message = (*Start)(nil)

// Kind implements wire.Message.
func (m *Start) Kind() wire.Kind { return KindStart }

// Encode implements wire.Message.
func (m *Start) Encode(*wire.Writer) {}

// Decode implements wire.Message.
func (m *Start) Decode(*wire.Reader) {}

// Stop halts a worker's training loop after the current callback.
type Stop struct{}

var _ wire.Message = (*Stop)(nil)

// Kind implements wire.Message.
func (m *Stop) Kind() wire.Kind { return KindStop }

// Encode implements wire.Message.
func (m *Stop) Encode(*wire.Writer) {}

// Decode implements wire.Message.
func (m *Stop) Decode(*wire.Reader) {}

// BarrierRelease releases a BSP worker into iteration Round.
type BarrierRelease struct {
	Round int64
}

var _ wire.Message = (*BarrierRelease)(nil)

// Kind implements wire.Message.
func (m *BarrierRelease) Kind() wire.Kind { return KindBarrierRelease }

// Encode implements wire.Message.
func (m *BarrierRelease) Encode(w *wire.Writer) { w.Varint(m.Round) }

// Decode implements wire.Message.
func (m *BarrierRelease) Decode(r *wire.Reader) { m.Round = r.Varint() }

// MinClock broadcasts the slowest worker's clock under SSP; workers block
// while their own clock exceeds MinClock + staleness bound.
type MinClock struct {
	Clock int64
}

var _ wire.Message = (*MinClock)(nil)

// Kind implements wire.Message.
func (m *MinClock) Kind() wire.Kind { return KindMinClock }

// Encode implements wire.Message.
func (m *MinClock) Encode(w *wire.Writer) { w.Varint(m.Clock) }

// Decode implements wire.Message.
func (m *MinClock) Decode(r *wire.Reader) { m.Clock = r.Varint() }

// WorkerReady reports that a worker finished initialization (live mode uses
// it to gate the Start broadcast).
type WorkerReady struct{}

var _ wire.Message = (*WorkerReady)(nil)

// Kind implements wire.Message.
func (m *WorkerReady) Kind() wire.Kind { return KindWorkerReady }

// Encode implements wire.Message.
func (m *WorkerReady) Encode(*wire.Writer) {}

// Decode implements wire.Message.
func (m *WorkerReady) Decode(*wire.Reader) {}

// PushNotice is used by the decentralized (broadcast) ablation: each worker
// announces its push directly to every peer instead of the scheduler.
type PushNotice struct {
	Iter int64
}

var _ wire.Message = (*PushNotice)(nil)

// Kind implements wire.Message.
func (m *PushNotice) Kind() wire.Kind { return KindPushNotice }

// Encode implements wire.Message.
func (m *PushNotice) Encode(w *wire.Writer) { w.Varint(m.Iter) }

// Decode implements wire.Message.
func (m *PushNotice) Decode(r *wire.Reader) { m.Iter = r.Varint() }

// Heartbeat is a worker's periodic liveness beacon to the scheduler. The
// scheduler treats any message from a worker as proof of life; Heartbeat
// keeps that signal flowing while a worker computes a long iteration (or
// sits at a barrier), so failure detection does not depend on push cadence.
type Heartbeat struct {
	Iter int64 // worker's current iteration (diagnostic)
}

var _ wire.Message = (*Heartbeat)(nil)

// Kind implements wire.Message.
func (m *Heartbeat) Kind() wire.Kind { return KindHeartbeat }

// Encode implements wire.Message.
func (m *Heartbeat) Encode(w *wire.Writer) { w.Varint(m.Iter) }

// Decode implements wire.Message.
func (m *Heartbeat) Decode(r *wire.Reader) { m.Iter = r.Varint() }

// SchedulerHello announces a (re)started scheduler incarnation to every
// worker. Workers answer with a StateReport so the scheduler can rebuild
// barrier/clock/epoch state even from a cold (or stale) checkpoint, and
// workers that degraded to broadcast speculation flip back to the
// centralized path.
type SchedulerHello struct {
	Gen int64 // scheduler incarnation (0 = original process)
}

var _ wire.Message = (*SchedulerHello)(nil)

// Kind implements wire.Message.
func (m *SchedulerHello) Kind() wire.Kind { return KindSchedulerHello }

// Encode implements wire.Message.
func (m *SchedulerHello) Encode(w *wire.Writer) { w.Varint(m.Gen) }

// Decode implements wire.Message.
func (m *SchedulerHello) Decode(r *wire.Reader) { m.Gen = r.Varint() }

// StateReport is a worker's reply to SchedulerHello: enough of its local
// state for a restarted scheduler to rebuild membership, epoch progress,
// the BSP barrier, and the SSP clock vector.
type StateReport struct {
	Iter     int64 // completed (pushed) iterations so far
	Pushed   bool  // pushed at least once since the last observed epoch boundary
	Clock    int64 // SSP clock (== Iter)
	Waiting  bool  // parked at the BSP barrier / SSP gate awaiting release
	Degraded bool  // was running broadcast-speculation failover when Hello arrived
}

var _ wire.Message = (*StateReport)(nil)

// Kind implements wire.Message.
func (m *StateReport) Kind() wire.Kind { return KindStateReport }

// Encode implements wire.Message.
func (m *StateReport) Encode(w *wire.Writer) {
	w.Varint(m.Iter)
	w.Bool(m.Pushed)
	w.Varint(m.Clock)
	w.Bool(m.Waiting)
	w.Bool(m.Degraded)
}

// Decode implements wire.Message.
func (m *StateReport) Decode(r *wire.Reader) {
	m.Iter = r.Varint()
	m.Pushed = r.Bool()
	m.Clock = r.Varint()
	m.Waiting = r.Bool()
	m.Degraded = r.Bool()
}

// SchedulerBeacon is the scheduler's periodic liveness signal to workers
// (the inverse of Heartbeat). Workers whose scheduler-failure detector has
// gone silent past its timeout enter degraded mode; a beacon carrying a
// newer generation than the worker has seen doubles as a late Hello.
type SchedulerBeacon struct {
	Gen int64
}

var _ wire.Message = (*SchedulerBeacon)(nil)

// Kind implements wire.Message.
func (m *SchedulerBeacon) Kind() wire.Kind { return KindSchedulerBeacon }

// Encode implements wire.Message.
func (m *SchedulerBeacon) Encode(w *wire.Writer) { w.Varint(m.Gen) }

// Decode implements wire.Message.
func (m *SchedulerBeacon) Decode(r *wire.Reader) { m.Gen = r.Varint() }

// PullReqV2 asks a shard for its parameter block under a non-raw pull codec.
// Have lets the shard answer with a delta: it is the version of the block
// the worker last applied for this shard (-1 when it has none, e.g. after a
// restart), so a shard whose per-worker cache matches can resend only the
// changed entries.
type PullReqV2 struct {
	Seq  uint64
	Have int64
}

var _ wire.Message = (*PullReqV2)(nil)

// Kind implements wire.Message.
func (m *PullReqV2) Kind() wire.Kind { return KindPullReqV2 }

// Encode implements wire.Message.
func (m *PullReqV2) Encode(w *wire.Writer) {
	w.Uint64(m.Seq)
	w.Varint(m.Have)
}

// Decode implements wire.Message.
func (m *PullReqV2) Decode(r *wire.Reader) {
	m.Seq = r.Uint64()
	m.Have = r.Varint()
}

// PullRespV2 returns a shard's parameters as a codec payload. Base is the
// version the delta was computed against (-1 for a full block); the worker
// drops responses whose Base does not match the block it holds.
type PullRespV2 struct {
	Seq     uint64
	Version int64
	Base    int64
	Codec   uint8 // codec.ID of Payload
	Payload []byte
}

var _ wire.Message = (*PullRespV2)(nil)

// Kind implements wire.Message.
func (m *PullRespV2) Kind() wire.Kind { return KindPullRespV2 }

// Encode implements wire.Message.
func (m *PullRespV2) Encode(w *wire.Writer) {
	w.Uint64(m.Seq)
	w.Varint(m.Version)
	w.Varint(m.Base)
	w.Uint8(m.Codec)
	w.Bytes2(m.Payload)
}

// Decode implements wire.Message.
func (m *PullRespV2) Decode(r *wire.Reader) {
	m.Seq = r.Uint64()
	m.Version = r.Varint()
	m.Base = r.Varint()
	m.Codec = r.Uint8()
	m.Payload = r.Bytes()
}

// PushReqV2 delivers one shard's gradient block as a codec payload (the
// worker's error-feedback residual is already folded in before encoding).
type PushReqV2 struct {
	Seq         uint64
	Iter        int64
	PullVersion int64
	Codec       uint8 // codec.ID of Payload
	Payload     []byte
}

var _ wire.Message = (*PushReqV2)(nil)

// Kind implements wire.Message.
func (m *PushReqV2) Kind() wire.Kind { return KindPushReqV2 }

// Encode implements wire.Message.
func (m *PushReqV2) Encode(w *wire.Writer) {
	w.Uint64(m.Seq)
	w.Varint(m.Iter)
	w.Varint(m.PullVersion)
	w.Uint8(m.Codec)
	w.Bytes2(m.Payload)
}

// Decode implements wire.Message.
func (m *PushReqV2) Decode(r *wire.Reader) {
	m.Seq = r.Uint64()
	m.Iter = r.Varint()
	m.PullVersion = r.Varint()
	m.Codec = r.Uint8()
	m.Payload = r.Bytes()
}

// Registry returns a fresh registry covering every protocol message.
func Registry() *wire.Registry {
	return wire.NewRegistry([]wire.RegistryEntry{
		{Kind: KindPullReq, Name: "PullReq", New: func() wire.Message { return &PullReq{} }},
		{Kind: KindPullResp, Name: "PullResp", New: func() wire.Message { return &PullResp{} }},
		{Kind: KindPushReq, Name: "PushReq", New: func() wire.Message { return &PushReq{} }},
		{Kind: KindPushAck, Name: "PushAck", New: func() wire.Message { return &PushAck{} }},
		{Kind: KindNotify, Name: "Notify", New: func() wire.Message { return &Notify{} }},
		{Kind: KindReSync, Name: "ReSync", New: func() wire.Message { return &ReSync{} }},
		{Kind: KindStart, Name: "Start", New: func() wire.Message { return &Start{} }},
		{Kind: KindStop, Name: "Stop", New: func() wire.Message { return &Stop{} }},
		{Kind: KindBarrierRelease, Name: "BarrierRelease", New: func() wire.Message { return &BarrierRelease{} }},
		{Kind: KindMinClock, Name: "MinClock", New: func() wire.Message { return &MinClock{} }},
		{Kind: KindWorkerReady, Name: "WorkerReady", New: func() wire.Message { return &WorkerReady{} }},
		{Kind: KindPushNotice, Name: "PushNotice", New: func() wire.Message { return &PushNotice{} }},
		{Kind: KindHeartbeat, Name: "Heartbeat", New: func() wire.Message { return &Heartbeat{} }},
		{Kind: KindSchedulerHello, Name: "SchedulerHello", New: func() wire.Message { return &SchedulerHello{} }},
		{Kind: KindStateReport, Name: "StateReport", New: func() wire.Message { return &StateReport{} }},
		{Kind: KindSchedulerBeacon, Name: "SchedulerBeacon", New: func() wire.Message { return &SchedulerBeacon{} }},
		{Kind: KindPullReqV2, Name: "PullReqV2", New: func() wire.Message { return &PullReqV2{} }},
		{Kind: KindPullRespV2, Name: "PullRespV2", New: func() wire.Message { return &PullRespV2{} }},
		{Kind: KindPushReqV2, Name: "PushReqV2", New: func() wire.Message { return &PushReqV2{} }},
		{Kind: KindJoinReq, Name: "JoinReq", New: func() wire.Message { return &JoinReq{} }},
		{Kind: KindJoinAck, Name: "JoinAck", New: func() wire.Message { return &JoinAck{} }},
		{Kind: KindRoutingUpdate, Name: "RoutingUpdate", New: func() wire.Message { return &RoutingUpdate{} }},
		{Kind: KindShardTransfer, Name: "ShardTransfer", New: func() wire.Message { return &ShardTransfer{} }},
		{Kind: KindShardState, Name: "ShardState", New: func() wire.Message { return &ShardState{} }},
		{Kind: KindMigrateDone, Name: "MigrateDone", New: func() wire.Message { return &MigrateDone{} }},
		{Kind: KindScaleCmd, Name: "ScaleCmd", New: func() wire.Message { return &ScaleCmd{} }},
		{Kind: KindJobMsg, Name: "JobMsg", New: func() wire.Message { return &JobMsg{} }},
		{Kind: KindLeaderAnnounce, Name: "LeaderAnnounce", New: func() wire.Message { return &LeaderAnnounce{} }},
		{Kind: KindVoteReq, Name: "VoteReq", New: func() wire.Message { return &VoteReq{} }},
		{Kind: KindVoteResp, Name: "VoteResp", New: func() wire.Message { return &VoteResp{} }},
		{Kind: KindReplState, Name: "ReplState", New: func() wire.Message { return &ReplState{} }},
		{Kind: KindReplApply, Name: "ReplApply", New: func() wire.Message { return &ReplApply{} }},
		{Kind: KindSchemeSwitch, Name: "SchemeSwitch", New: func() wire.Message { return &SchemeSwitch{} }},
		{Kind: KindNotifyV2, Name: "NotifyV2", New: func() wire.Message { return &NotifyV2{} }},
		{Kind: KindCloneCtl, Name: "CloneCtl", New: func() wire.Message { return &CloneCtl{} }},
		{Kind: KindCloneNotice, Name: "CloneNotice", New: func() wire.Message { return &CloneNotice{} }},
	})
}

// IsControl reports whether a message kind is SpecSync control traffic (as
// opposed to parameter data). The overhead experiments (Fig. 13) break down
// transfer into data vs. control bytes.
func IsControl(k wire.Kind) bool {
	switch k {
	case KindPullReq, KindPullResp, KindPushReq, KindPushAck,
		KindPullReqV2, KindPullRespV2, KindPushReqV2,
		KindShardState, // migrating parameter segments are data, not control
		KindReplApply,  // replicated push payloads are data, not control
		KindJobMsg:     // fleet envelope: wraps only worker→server data traffic
		return false
	default:
		return true
	}
}

// CodecLabeler returns the labeling function codec.Stats uses for the
// bytes-on-wire breakdown: push-request kinds carry the run's push codec
// name, pull-response kinds the pull codec name, and every other kind
// (acks, control traffic) the label "none".
func CodecLabeler(push, pull string) func(wire.Kind) string {
	return func(k wire.Kind) string {
		switch k {
		case KindPushReq, KindPushReqV2:
			return push
		case KindPullResp, KindPullRespV2:
			return pull
		default:
			return "none"
		}
	}
}
