package msg

import "specsync/internal/wire"

// Straggler-mitigation protocol messages (backup-worker task cloning). When
// the scheduler flags a sustained straggler and has a spare worker slot, it
// starts a clone: a worker built with the straggler's data-shard index but
// its own node ID. CloneCtl seeds the clone with the straggler's current
// iteration and the cluster clocks; CloneNotice tells every parameter server
// that the clone slot impersonates the straggler's worker index, so the
// (worker, iter) push dedup treats the pair as one logical worker — first
// push wins, the loser is acked but not applied, and the model digest is
// unaffected by who wins.
//
// Kind values are part of the wire format; never renumber them.
const (
	KindCloneCtl    wire.Kind = 35
	KindCloneNotice wire.Kind = 36
)

// CloneCtl starts an idle backup worker as a clone of a straggler. StartIter
// is the straggler's next iteration (the clone mirrors forward, never
// re-runs history); Round and MinClock seed the clone's BSP/SSP gates so it
// does not park behind a barrier released before it existed.
type CloneCtl struct {
	StartIter int64
	Round     int64
	MinClock  int64
}

var _ wire.Message = (*CloneCtl)(nil)

// Kind implements wire.Message.
func (m *CloneCtl) Kind() wire.Kind { return KindCloneCtl }

// Encode implements wire.Message.
func (m *CloneCtl) Encode(w *wire.Writer) {
	w.Varint(m.StartIter)
	w.Varint(m.Round)
	w.Varint(m.MinClock)
}

// Decode implements wire.Message.
func (m *CloneCtl) Decode(r *wire.Reader) {
	m.StartIter = r.Varint()
	m.Round = r.Varint()
	m.MinClock = r.Varint()
}

// CloneNotice aliases a clone's worker slot to the straggler it mirrors on
// one parameter server. Sent to every live server before the clone starts
// (and resent if a clone is retargeted); Target < 0 clears the alias.
type CloneNotice struct {
	Slot   int32
	Target int32
}

var _ wire.Message = (*CloneNotice)(nil)

// Kind implements wire.Message.
func (m *CloneNotice) Kind() wire.Kind { return KindCloneNotice }

// Encode implements wire.Message.
func (m *CloneNotice) Encode(w *wire.Writer) {
	w.Varint(int64(m.Slot))
	w.Varint(int64(m.Target))
}

// Decode implements wire.Message.
func (m *CloneNotice) Decode(r *wire.Reader) {
	m.Slot = int32(r.Varint())
	m.Target = int32(r.Varint())
}
