package msg

import "specsync/internal/wire"

// Elastic-membership protocol messages. A joining worker announces itself
// with JoinReq and is admitted with JoinAck (which doubles as its Start and
// carries the current routing table). Server rebalancing is a scheduler-driven
// handoff: ShardTransfer freezes the involved shards and tells each donor
// what to send where, ShardState carries the migrating parameter segments,
// MigrateDone reports completion, and RoutingUpdate commits the new epoch to
// every live worker and involved server. ScaleCmd is the admin message a
// scale-plan controller injects into the scheduler.
//
// Kind values are part of the wire format; never renumber them.
const (
	KindJoinReq       wire.Kind = 20
	KindJoinAck       wire.Kind = 21
	KindRoutingUpdate wire.Kind = 22
	KindShardTransfer wire.Kind = 23
	KindShardState    wire.Kind = 24
	KindMigrateDone   wire.Kind = 25
	KindScaleCmd      wire.Kind = 26
)

// JoinReq announces a new worker to the scheduler. The worker sends it from
// Init (instead of waiting for Start) and retries until acked.
type JoinReq struct{}

var _ wire.Message = (*JoinReq)(nil)

// Kind implements wire.Message.
func (m *JoinReq) Kind() wire.Kind { return KindJoinReq }

// Encode implements wire.Message.
func (m *JoinReq) Encode(w *wire.Writer) {}

// Decode implements wire.Message.
func (m *JoinReq) Decode(r *wire.Reader) {}

// JoinAck admits a worker: it carries the committed routing table and the
// scheduler clocks the joiner must adopt. StartIter is the iteration the
// joiner begins at (the current BSP round, or the SSP min clock, so it never
// drags the barrier or the staleness bound backwards); MinClock seeds the
// joiner's SSP gate.
type JoinAck struct {
	Epoch     int64
	Lo        []int32
	Hi        []int32
	Srv       []int32
	StartIter int64
	MinClock  int64
}

var _ wire.Message = (*JoinAck)(nil)

// Kind implements wire.Message.
func (m *JoinAck) Kind() wire.Kind { return KindJoinAck }

// Encode implements wire.Message.
func (m *JoinAck) Encode(w *wire.Writer) {
	w.Varint(m.Epoch)
	w.Ints32(m.Lo)
	w.Ints32(m.Hi)
	w.Ints32(m.Srv)
	w.Varint(m.StartIter)
	w.Varint(m.MinClock)
}

// Decode implements wire.Message.
func (m *JoinAck) Decode(r *wire.Reader) {
	m.Epoch = r.Varint()
	m.Lo = r.Ints32()
	m.Hi = r.Ints32()
	m.Srv = r.Ints32()
	m.StartIter = r.Varint()
	m.MinClock = r.Varint()
}

// RoutingUpdate commits a new routing epoch. Workers re-route (and re-issue
// any pull/push that raced the migration); a frozen server either adopts its
// staged range or learns it has been retired.
type RoutingUpdate struct {
	Epoch int64
	Lo    []int32
	Hi    []int32
	Srv   []int32
}

var _ wire.Message = (*RoutingUpdate)(nil)

// Kind implements wire.Message.
func (m *RoutingUpdate) Kind() wire.Kind { return KindRoutingUpdate }

// Encode implements wire.Message.
func (m *RoutingUpdate) Encode(w *wire.Writer) {
	w.Varint(m.Epoch)
	w.Ints32(m.Lo)
	w.Ints32(m.Hi)
	w.Ints32(m.Srv)
}

// Decode implements wire.Message.
func (m *RoutingUpdate) Decode(r *wire.Reader) {
	m.Epoch = r.Varint()
	m.Lo = r.Ints32()
	m.Hi = r.Ints32()
	m.Srv = r.Ints32()
}

// ShardTransfer starts a handoff on one server: freeze, copy [KeepLo,KeepHi)
// of the current range into the staged new range [NewLo,NewHi), send each
// Send segment to its receiving server, then wait for Expect incoming
// ShardState segments. HasNew=false means the server is being drained and
// will be retired at commit. The scheduler precomputes every segment so
// servers stay dumb.
type ShardTransfer struct {
	Epoch          int64
	HasNew         bool
	NewLo, NewHi   int64
	KeepLo, KeepHi int64 // KeepLo==KeepHi: nothing kept
	SendLo         []int32
	SendHi         []int32
	SendTo         []int32
	Expect         int64
}

var _ wire.Message = (*ShardTransfer)(nil)

// Kind implements wire.Message.
func (m *ShardTransfer) Kind() wire.Kind { return KindShardTransfer }

// Encode implements wire.Message.
func (m *ShardTransfer) Encode(w *wire.Writer) {
	w.Varint(m.Epoch)
	w.Bool(m.HasNew)
	w.Varint(m.NewLo)
	w.Varint(m.NewHi)
	w.Varint(m.KeepLo)
	w.Varint(m.KeepHi)
	w.Ints32(m.SendLo)
	w.Ints32(m.SendHi)
	w.Ints32(m.SendTo)
	w.Varint(m.Expect)
}

// Decode implements wire.Message.
func (m *ShardTransfer) Decode(r *wire.Reader) {
	m.Epoch = r.Varint()
	m.HasNew = r.Bool()
	m.NewLo = r.Varint()
	m.NewHi = r.Varint()
	m.KeepLo = r.Varint()
	m.KeepHi = r.Varint()
	m.SendLo = r.Ints32()
	m.SendHi = r.Ints32()
	m.SendTo = r.Ints32()
	m.Expect = r.Varint()
}

// ShardState carries one migrating parameter segment [Lo,Hi) from a donor to
// a receiving server, encoded through the codec payload path (raw codec:
// migrations must be lossless).
type ShardState struct {
	Epoch   int64
	Lo, Hi  int64
	Version int64
	Codec   uint8 // codec.ID of Payload
	Payload []byte
}

var _ wire.Message = (*ShardState)(nil)

// Kind implements wire.Message.
func (m *ShardState) Kind() wire.Kind { return KindShardState }

// Encode implements wire.Message.
func (m *ShardState) Encode(w *wire.Writer) {
	w.Varint(m.Epoch)
	w.Varint(m.Lo)
	w.Varint(m.Hi)
	w.Varint(m.Version)
	w.Uint8(m.Codec)
	w.Bytes2(m.Payload)
}

// Decode implements wire.Message.
func (m *ShardState) Decode(r *wire.Reader) {
	m.Epoch = r.Varint()
	m.Lo = r.Varint()
	m.Hi = r.Varint()
	m.Version = r.Varint()
	m.Codec = r.Uint8()
	m.Payload = r.Bytes()
}

// MigrateDone tells the scheduler one server finished its part of the
// handoff (all expected segments staged). Bytes counts received payload
// bytes, so the scheduler can account total migration traffic.
type MigrateDone struct {
	Epoch int64
	Bytes int64
}

var _ wire.Message = (*MigrateDone)(nil)

// Kind implements wire.Message.
func (m *MigrateDone) Kind() wire.Kind { return KindMigrateDone }

// Encode implements wire.Message.
func (m *MigrateDone) Encode(w *wire.Writer) {
	w.Varint(m.Epoch)
	w.Varint(m.Bytes)
}

// Decode implements wire.Message.
func (m *MigrateDone) Decode(r *wire.Reader) {
	m.Epoch = r.Varint()
	m.Bytes = r.Varint()
}

// ScaleCmd ops.
const (
	// ScaleRetireWorker retires worker Node: the scheduler stops it and
	// removes it from membership.
	ScaleRetireWorker uint8 = 1
	// ScaleSetServers rebalances parameter state onto exactly the server
	// slots listed in Servers (a migration if the set changed).
	ScaleSetServers uint8 = 2
)

// ScaleCmd is the admin command a scale-plan controller injects into the
// scheduler. It rides the message path so both the DES and live runtimes
// apply scale events inside the scheduler's own execution context.
type ScaleCmd struct {
	Op      uint8
	Node    int32
	Servers []int32
}

var _ wire.Message = (*ScaleCmd)(nil)

// Kind implements wire.Message.
func (m *ScaleCmd) Kind() wire.Kind { return KindScaleCmd }

// Encode implements wire.Message.
func (m *ScaleCmd) Encode(w *wire.Writer) {
	w.Uint8(m.Op)
	w.Varint(int64(m.Node))
	w.Ints32(m.Servers)
}

// Decode implements wire.Message.
func (m *ScaleCmd) Decode(r *wire.Reader) {
	m.Op = r.Uint8()
	m.Node = int32(r.Varint())
	m.Servers = r.Ints32()
}
