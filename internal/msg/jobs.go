package msg

import (
	"fmt"

	"specsync/internal/wire"
)

// Multi-tenant job envelope. A fleet hosts many training jobs on one shared
// parameter-server substrate; every data-path message a job's worker sends to
// a shared server travels inside a JobMsg so the server host can dispatch it
// to the right tenant shard without parsing sender identity out of node IDs.
//
// Kind values are part of the wire format; never renumber them.
const (
	KindJobMsg wire.Kind = 27
)

// JobMsg wraps one protocol message with the sending job's ID. Payload is a
// complete kind-prefixed encoding (as produced by wire.Marshal) of the inner
// message, so the receiver unwraps it through the ordinary registry.
type JobMsg struct {
	Job     int32
	Payload []byte
}

var _ wire.Message = (*JobMsg)(nil)

// Kind implements wire.Message.
func (m *JobMsg) Kind() wire.Kind { return KindJobMsg }

// Encode implements wire.Message.
func (m *JobMsg) Encode(w *wire.Writer) {
	w.Varint(int64(m.Job))
	w.Bytes2(m.Payload)
}

// Decode implements wire.Message.
func (m *JobMsg) Decode(r *wire.Reader) {
	m.Job = int32(r.Varint())
	m.Payload = r.Bytes()
}

// WrapJob envelopes an inner message for one job. The payload is marshaled
// eagerly (Send marshals synchronously anyway), so the inner message may be
// reused by the caller immediately.
func WrapJob(job int, inner wire.Message) *JobMsg {
	return &JobMsg{Job: int32(job), Payload: wire.Marshal(inner)}
}

// UnwrapJob decodes the envelope's inner message through the registry.
func UnwrapJob(reg *wire.Registry, m *JobMsg) (wire.Message, error) {
	inner, err := reg.Unmarshal(m.Payload)
	if err != nil {
		return nil, fmt.Errorf("msg: job %d envelope: %w", m.Job, err)
	}
	return inner, nil
}
