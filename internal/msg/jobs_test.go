package msg

import (
	"bytes"
	"testing"

	"specsync/internal/wire"
)

func TestJobMsgRoundtrip(t *testing.T) {
	reg := Registry()
	inner := &PushReq{Seq: 3, Iter: 7, PullVersion: 10, Dense: []float64{1, 2, 3}}
	env := WrapJob(5, inner)
	data := wire.Marshal(env)

	m, err := reg.Unmarshal(data)
	if err != nil {
		t.Fatalf("unmarshal envelope: %v", err)
	}
	got, ok := m.(*JobMsg)
	if !ok {
		t.Fatalf("decoded %T, want *JobMsg", m)
	}
	if got.Job != 5 {
		t.Errorf("job = %d, want 5", got.Job)
	}
	back, err := UnwrapJob(reg, got)
	if err != nil {
		t.Fatalf("unwrap: %v", err)
	}
	req, ok := back.(*PushReq)
	if !ok {
		t.Fatalf("inner decoded %T, want *PushReq", back)
	}
	if req.Seq != 3 || req.Iter != 7 || req.PullVersion != 10 || len(req.Dense) != 3 {
		t.Errorf("inner fields lost: %+v", req)
	}
	if !bytes.Equal(got.Payload, wire.Marshal(inner)) {
		t.Error("payload is not the kind-prefixed inner encoding")
	}
}

func TestJobMsgUnwrapRejectsGarbage(t *testing.T) {
	reg := Registry()
	if _, err := UnwrapJob(reg, &JobMsg{Job: 2, Payload: []byte{0xff, 0xff}}); err == nil {
		t.Error("garbage payload accepted")
	}
	if _, err := UnwrapJob(reg, &JobMsg{Job: 2, Payload: nil}); err == nil {
		t.Error("empty payload accepted")
	}
}

func TestJobMsgIsData(t *testing.T) {
	// The envelope wraps only worker→server data traffic, so the
	// control/data split must classify it as data.
	if IsControl(KindJobMsg) {
		t.Error("JobMsg classified as control")
	}
}
