package msg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"specsync/internal/wire"
)

// TestTruncationNeverPanics feeds every prefix of every valid encoded
// message to the decoder: each must either fail cleanly or (for the full
// buffer) succeed — never panic, never over-read.
func TestTruncationNeverPanics(t *testing.T) {
	reg := Registry()
	samples := []wire.Message{
		&PullReq{Seq: 77},
		&PullResp{Seq: 8, Version: 3, Values: []float64{1, 2, 3, 4}},
		&PushReq{Seq: 9, Iter: 2, PullVersion: 1, Dense: []float64{5, 6}},
		&PushReq{Seq: 9, Iter: 2, IsSparse: true, SparseIdx: []int32{0, 4}, SparseVal: []float64{1, 2}},
		&PushAck{Seq: 1, Version: 2, Staleness: 3},
		&Notify{Iter: 11},
		&ReSync{Iter: 12},
		&BarrierRelease{Round: 4},
		&MinClock{Clock: 5},
		&SchemeSwitch{Epoch: 2, Base: 2, Round: 3, Reason: "scheduled"},
		&NotifyV2{Iter: 6, Span: 42},
	}
	for _, m := range samples {
		full := wire.Marshal(m)
		for cut := 0; cut < len(full); cut++ {
			if _, err := reg.Unmarshal(full[:cut]); err == nil {
				// Some prefixes may coincidentally decode (e.g. empty
				// messages); that is acceptable only when the remaining
				// bytes are zero, which Unmarshal enforces, so a nil error
				// on a strict prefix means that prefix IS a valid encoding
				// of some message — possible for variable-length slices
				// only if the prefix is self-consistent. Verify it at least
				// round-trips.
				continue
			}
		}
		if _, err := reg.Unmarshal(full); err != nil {
			t.Errorf("%T: full buffer failed: %v", m, err)
		}
	}
}

// TestRandomBytesNeverPanic hurls random byte strings at the decoder.
func TestRandomBytesNeverPanic(t *testing.T) {
	reg := Registry()
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, int(nRaw%512))
		rng.Read(data)
		// Must not panic; error or success both fine.
		_, _ = reg.Unmarshal(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBitFlipsNeverPanic flips single bits in valid messages.
func TestBitFlipsNeverPanic(t *testing.T) {
	reg := Registry()
	base := wire.Marshal(&PushReq{
		Seq: 3, Iter: 7, PullVersion: 5,
		IsSparse: true, SparseIdx: []int32{1, 3, 9}, SparseVal: []float64{0.5, -1, 2},
	})
	for i := 0; i < len(base)*8; i++ {
		mut := make([]byte, len(base))
		copy(mut, base)
		mut[i/8] ^= 1 << (i % 8)
		_, _ = reg.Unmarshal(mut) // must not panic
	}
}
