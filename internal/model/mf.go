package model

import (
	"fmt"
	"math/rand"

	"specsync/internal/data"
	"specsync/internal/sparse"
	"specsync/internal/tensor"
)

// MF is L2-regularized matrix factorization for recommendation: it learns
// user factors P (Users x Rank) and item factors Q (Items x Rank) minimizing
//
//	sum over observed (u,i,r):  (r - p_u . q_i)^2 + lambda (|p_u|^2 + |q_i|^2)
//
// Parameter layout (flat): [ P row-major | Q row-major ]. A minibatch only
// touches the factor rows of the users/items it contains, so gradients are
// sparse — this is the sparse-update workload of the paper (MovieLens).
type MF struct {
	name      string
	users     int
	items     int
	rank      int
	batchSize int
	l2        float64
	shards    [][]data.Rating
	eval      []data.Rating
	initScale float64
}

var _ Model = (*MF)(nil)

// MFConfig configures a matrix-factorization workload.
type MFConfig struct {
	Name      string
	Rank      int
	BatchSize int
	L2        float64
	InitScale float64 // stddev of initial factors; 0 means 0.1
}

// NewMF builds the workload over pre-sharded ratings.
func NewMF(cfg MFConfig, users, items int, shards [][]data.Rating, eval []data.Rating) (*MF, error) {
	if users < 1 || items < 1 || cfg.Rank < 1 {
		return nil, fmt.Errorf("model: bad MF shape users=%d items=%d rank=%d", users, items, cfg.Rank)
	}
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("model: batch size %d < 1", cfg.BatchSize)
	}
	if len(shards) == 0 || len(eval) == 0 {
		return nil, fmt.Errorf("model: MF needs shards and eval data")
	}
	scale := cfg.InitScale
	if scale == 0 {
		scale = 0.1
	}
	name := cfg.Name
	if name == "" {
		name = "mf"
	}
	return &MF{
		name:      name,
		users:     users,
		items:     items,
		rank:      cfg.Rank,
		batchSize: cfg.BatchSize,
		l2:        cfg.L2,
		shards:    shards,
		eval:      eval,
		initScale: scale,
	}, nil
}

// Name implements Model.
func (m *MF) Name() string { return m.name }

// Dim implements Model.
func (m *MF) Dim() int { return (m.users + m.items) * m.rank }

// NumShards implements Model.
func (m *MF) NumShards() int { return len(m.shards) }

// Init implements Model.
func (m *MF) Init(rng *rand.Rand) tensor.Vec {
	w := tensor.NewVec(m.Dim())
	tensor.RandNormal(w, m.initScale, rng)
	return w
}

// userRow returns the base flat index of user u's factor row.
func (m *MF) userRow(u int) int { return u * m.rank }

// itemRow returns the base flat index of item i's factor row.
func (m *MF) itemRow(i int) int { return (m.users + i) * m.rank }

type ratingBatch struct {
	ratings []data.Rating
}

// SampleBatch implements Model.
func (m *MF) SampleBatch(shard int, rng *rand.Rand) Batch {
	sh := m.shards[shard]
	bs := m.batchSize
	if bs > len(sh) {
		bs = len(sh)
	}
	out := make([]data.Rating, bs)
	for i := range out {
		out[i] = sh[rng.Intn(len(sh))]
	}
	return ratingBatch{ratings: out}
}

// predict returns p_u . q_i under parameters w.
func (m *MF) predict(w tensor.Vec, u, i int) float64 {
	pu := w[m.userRow(u) : m.userRow(u)+m.rank]
	qi := w[m.itemRow(i) : m.itemRow(i)+m.rank]
	return tensor.Dot(pu, qi)
}

// Grad implements Model. For each observed rating with error e = pred - r:
//
//	d/dp_u = 2 e q_i + 2 lambda p_u,   d/dq_i = 2 e p_u + 2 lambda q_i
//
// averaged over the batch and accumulated sparsely.
func (m *MF) Grad(w tensor.Vec, b Batch) Update {
	rb, ok := b.(ratingBatch)
	if !ok {
		panic(fmt.Sprintf("model: MF got batch type %T", b))
	}
	builder := sparse.NewBuilder()
	inv := 1.0 / float64(len(rb.ratings))
	rowBuf := make([]float64, m.rank)
	for _, rt := range rb.ratings {
		ub := m.userRow(rt.User)
		ib := m.itemRow(rt.Item)
		pu := w[ub : ub+m.rank]
		qi := w[ib : ib+m.rank]
		e := tensor.Dot(pu, qi) - rt.Value

		for r := 0; r < m.rank; r++ {
			rowBuf[r] = (2*e*qi[r] + 2*m.l2*pu[r]) * inv
		}
		builder.AddSpan(int32(ub), rowBuf)
		for r := 0; r < m.rank; r++ {
			rowBuf[r] = (2*e*pu[r] + 2*m.l2*qi[r]) * inv
		}
		builder.AddSpan(int32(ib), rowBuf)
	}
	v := builder.Build()
	return Update{Sparse: &v}
}

// BatchLoss implements Model.
func (m *MF) BatchLoss(w tensor.Vec, b Batch) float64 {
	rb, ok := b.(ratingBatch)
	if !ok {
		panic(fmt.Sprintf("model: MF got batch type %T", b))
	}
	return m.meanLoss(w, rb.ratings)
}

// EvalLoss implements Model. Evaluation reports plain mean squared error
// (no regularization term), matching how recommender quality is tracked.
func (m *MF) EvalLoss(w tensor.Vec) float64 {
	var total float64
	for _, rt := range m.eval {
		e := m.predict(w, rt.User, rt.Item) - rt.Value
		total += e * e
	}
	return total / float64(len(m.eval))
}

func (m *MF) meanLoss(w tensor.Vec, ratings []data.Rating) float64 {
	var total float64
	for _, rt := range ratings {
		ub := m.userRow(rt.User)
		ib := m.itemRow(rt.Item)
		pu := w[ub : ub+m.rank]
		qi := w[ib : ib+m.rank]
		e := tensor.Dot(pu, qi) - rt.Value
		total += e*e + m.l2*(tensor.Dot(pu, pu)+tensor.Dot(qi, qi))
	}
	return total / float64(len(ratings))
}
