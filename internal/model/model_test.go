package model

import (
	"math"
	"math/rand"
	"testing"

	"specsync/internal/data"
	"specsync/internal/tensor"
)

// gradCheck compares the analytic gradient of mdl on one fixed batch against
// central finite differences at nProbe random coordinates.
func gradCheck(t *testing.T, mdl Model, seed int64, nProbe int, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := mdl.Init(rng)
	b := mdl.SampleBatch(0, rng)

	u := mdl.Grad(w, b)
	dense := u.Dense
	if u.IsSparse() {
		dense = u.Sparse.ToDense(mdl.Dim())
	}

	const eps = 1e-6
	for p := 0; p < nProbe; p++ {
		i := rng.Intn(mdl.Dim())
		orig := w[i]
		w[i] = orig + eps
		lp := mdl.BatchLoss(w, b)
		w[i] = orig - eps
		lm := mdl.BatchLoss(w, b)
		w[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if diff := math.Abs(numeric - dense[i]); diff > tol*(1+math.Abs(numeric)) {
			t.Errorf("coord %d: analytic %.8g vs numeric %.8g (diff %.3g)", i, dense[i], numeric, diff)
		}
	}
}

func newTestSoftmax(t *testing.T) *Softmax {
	t.Helper()
	blobs, err := data.NewBlobs(data.BlobsConfig{
		Classes: 4, Dim: 6, N: 400, EvalN: 100, Spread: 2, Noise: 0.6, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := data.ShardSamples(blobs.Train, 4, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSoftmax(SoftmaxConfig{BatchSize: 16, L2: 1e-4}, 4, 6, shards, blobs.Eval)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newTestMLP(t *testing.T) *MLP {
	t.Helper()
	blobs, err := data.NewBlobs(data.BlobsConfig{
		Classes: 3, Dim: 5, N: 300, EvalN: 90, Spread: 2, Noise: 0.6, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := data.ShardSamples(blobs.Train, 3, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMLP(MLPConfig{Hidden: 8, BatchSize: 16, L2: 1e-4}, 3, 5, shards, blobs.Eval)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newTestMF(t *testing.T) *MF {
	t.Helper()
	r, err := data.NewRatings(data.RatingsConfig{
		Users: 30, Items: 25, TrueRank: 3, N: 1500, EvalN: 300, Noise: 0.1, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := data.ShardRatings(r.Train, 3, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMF(MFConfig{Rank: 3, BatchSize: 32, L2: 0.01}, 30, 25, shards, r.Eval)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSoftmaxGradCheck(t *testing.T) { gradCheck(t, newTestSoftmax(t), 1, 40, 1e-4) }
func TestMLPGradCheck(t *testing.T)     { gradCheck(t, newTestMLP(t), 2, 40, 1e-4) }
func TestMFGradCheck(t *testing.T)      { gradCheck(t, newTestMF(t), 3, 40, 1e-4) }

func TestLinRegGradCheck(t *testing.T) {
	l, err := NewLinReg(LinRegConfig{Dim: 8, N: 200, EvalN: 50, Shards: 2, Noise: 0.1, BatchSize: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	gradCheck(t, l, 4, 16, 1e-4)
}

// sgdTrain runs plain single-node SGD and returns initial and final eval loss.
func sgdTrain(t *testing.T, mdl Model, lr float64, steps int, seed int64) (first, last float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := mdl.Init(rng)
	first = mdl.EvalLoss(w)
	for i := 0; i < steps; i++ {
		shard := i % mdl.NumShards()
		u := mdl.Grad(w, mdl.SampleBatch(shard, rng))
		if u.IsSparse() {
			u.Sparse.AddTo(w, -lr)
		} else {
			tensor.Axpy(w, -lr, u.Dense)
		}
	}
	last = mdl.EvalLoss(w)
	if tensor.HasNaN(w) {
		t.Fatal("parameters diverged to NaN")
	}
	return first, last
}

func TestSoftmaxSGDConverges(t *testing.T) {
	first, last := sgdTrain(t, newTestSoftmax(t), 0.1, 800, 1)
	if last >= first*0.5 {
		t.Errorf("loss did not halve: %.4f -> %.4f", first, last)
	}
}

func TestMLPSGDConverges(t *testing.T) {
	first, last := sgdTrain(t, newTestMLP(t), 0.1, 1200, 1)
	if last >= first*0.5 {
		t.Errorf("loss did not halve: %.4f -> %.4f", first, last)
	}
}

func TestMFSGDConverges(t *testing.T) {
	first, last := sgdTrain(t, newTestMF(t), 0.05, 4000, 1)
	if last >= first*0.5 {
		t.Errorf("loss did not halve: %.4f -> %.4f", first, last)
	}
}

func TestLinRegSGDRecoverstruth(t *testing.T) {
	l, err := NewLinReg(LinRegConfig{Dim: 10, N: 1000, EvalN: 200, Shards: 2, Noise: 0.05, BatchSize: 32, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	w := l.Init(rng)
	for i := 0; i < 2000; i++ {
		u := l.Grad(w, l.SampleBatch(i%2, rng))
		tensor.Axpy(w, -0.05, u.Dense)
	}
	if d := l.DistanceToTruth(w); d > 0.2 {
		t.Errorf("distance to truth %.4f, want < 0.2", d)
	}
}

func TestSoftmaxAccuracyImproves(t *testing.T) {
	m := newTestSoftmax(t)
	rng := rand.New(rand.NewSource(2))
	w := m.Init(rng)
	before := m.EvalAccuracy(w)
	for i := 0; i < 800; i++ {
		u := m.Grad(w, m.SampleBatch(i%m.NumShards(), rng))
		tensor.Axpy(w, -0.1, u.Dense)
	}
	after := m.EvalAccuracy(w)
	if after < before+0.2 {
		t.Errorf("accuracy barely moved: %.3f -> %.3f", before, after)
	}
	if after < 0.7 {
		t.Errorf("final accuracy %.3f too low for separable blobs", after)
	}
}

func TestMFSparseGradientTouchesOnlyBatchRows(t *testing.T) {
	m := newTestMF(t)
	rng := rand.New(rand.NewSource(3))
	w := m.Init(rng)
	b := m.SampleBatch(0, rng)
	u := m.Grad(w, b)
	if !u.IsSparse() {
		t.Fatal("MF must produce sparse updates")
	}
	if err := u.Sparse.Validate(m.Dim()); err != nil {
		t.Fatalf("invalid sparse gradient: %v", err)
	}
	rb := b.(ratingBatch)
	allowed := map[int32]bool{}
	for _, rt := range rb.ratings {
		for r := 0; r < m.rank; r++ {
			allowed[int32(m.userRow(rt.User)+r)] = true
			allowed[int32(m.itemRow(rt.Item)+r)] = true
		}
	}
	for _, ix := range u.Sparse.Idx {
		if !allowed[ix] {
			t.Fatalf("gradient touches index %d outside batch rows", ix)
		}
	}
	// The update must be no larger than the rows the batch touched.
	if u.Sparse.Len() > len(allowed) {
		t.Errorf("sparse gradient has %d entries, batch touches only %d", u.Sparse.Len(), len(allowed))
	}
}

func TestModelValidation(t *testing.T) {
	blobs, err := data.NewBlobs(data.BlobsConfig{Classes: 2, Dim: 2, N: 10, EvalN: 4, Spread: 2, Noise: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := data.ShardSamples(blobs.Train, 2, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSoftmax(SoftmaxConfig{BatchSize: 0}, 2, 2, shards, blobs.Eval); err == nil {
		t.Error("expected batch-size error")
	}
	if _, err := NewSoftmax(SoftmaxConfig{BatchSize: 4}, 1, 2, shards, blobs.Eval); err == nil {
		t.Error("expected class-count error")
	}
	if _, err := NewMLP(MLPConfig{Hidden: 0, BatchSize: 4}, 2, 2, shards, blobs.Eval); err == nil {
		t.Error("expected hidden-size error")
	}
	if _, err := NewMF(MFConfig{Rank: 0, BatchSize: 4}, 2, 2, nil, nil); err == nil {
		t.Error("expected rank error")
	}
	if _, err := NewLinReg(LinRegConfig{Dim: 0}); err == nil {
		t.Error("expected linreg dim error")
	}
}

func TestDimLayouts(t *testing.T) {
	s := newTestSoftmax(t)
	if s.Dim() != 4*(6+1) {
		t.Errorf("softmax dim = %d", s.Dim())
	}
	m := newTestMLP(t)
	if m.Dim() != 8*(5+1)+3*(8+1) {
		t.Errorf("mlp dim = %d", m.Dim())
	}
	f := newTestMF(t)
	if f.Dim() != (30+25)*3 {
		t.Errorf("mf dim = %d", f.Dim())
	}
}
