package model

import (
	"fmt"
	"math/rand"

	"specsync/internal/tensor"
)

// LinReg is least-squares linear regression on synthetic data generated from
// a hidden weight vector plus noise. Its loss surface is an exactly convex
// quadratic, which makes it the reference workload for optimizer and
// convergence tests: SGD must reach the noise floor, and the distance to the
// known ground-truth weights is directly measurable.
type LinReg struct {
	name      string
	dim       int
	batchSize int
	truth     tensor.Vec
	shards    [][]regSample
	eval      []regSample
}

var _ Model = (*LinReg)(nil)

type regSample struct {
	x []float64
	y float64
}

// LinRegConfig configures a linear-regression workload.
type LinRegConfig struct {
	Name      string
	Dim       int
	N         int     // training samples (split across shards)
	EvalN     int     // held-out samples
	Shards    int     // number of data shards
	Noise     float64 // observation noise stddev
	BatchSize int
	Seed      int64
}

// NewLinReg generates data and builds the workload.
func NewLinReg(cfg LinRegConfig) (*LinReg, error) {
	if cfg.Dim < 1 || cfg.N < cfg.Shards || cfg.EvalN < 1 || cfg.Shards < 1 || cfg.BatchSize < 1 {
		return nil, fmt.Errorf("model: invalid linreg config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	truth := tensor.NewVec(cfg.Dim)
	tensor.RandNormal(truth, 1, rng)

	draw := func(n int) []regSample {
		out := make([]regSample, n)
		for i := range out {
			x := make([]float64, cfg.Dim)
			for d := range x {
				x[d] = rng.NormFloat64()
			}
			out[i] = regSample{x: x, y: tensor.Dot(truth, x) + rng.NormFloat64()*cfg.Noise}
		}
		return out
	}
	train := draw(cfg.N)
	shards := make([][]regSample, cfg.Shards)
	per := len(train) / cfg.Shards
	for s := range shards {
		lo := s * per
		hi := lo + per
		if s == cfg.Shards-1 {
			hi = len(train)
		}
		shards[s] = train[lo:hi]
	}
	name := cfg.Name
	if name == "" {
		name = "linreg"
	}
	return &LinReg{
		name:      name,
		dim:       cfg.Dim,
		batchSize: cfg.BatchSize,
		truth:     truth,
		shards:    shards,
		eval:      draw(cfg.EvalN),
	}, nil
}

// Name implements Model.
func (l *LinReg) Name() string { return l.name }

// Dim implements Model.
func (l *LinReg) Dim() int { return l.dim }

// NumShards implements Model.
func (l *LinReg) NumShards() int { return len(l.shards) }

// Init implements Model.
func (l *LinReg) Init(rng *rand.Rand) tensor.Vec {
	w := tensor.NewVec(l.dim)
	tensor.RandNormal(w, 0.01, rng)
	return w
}

type regBatch struct {
	samples []regSample
}

// SampleBatch implements Model.
func (l *LinReg) SampleBatch(shard int, rng *rand.Rand) Batch {
	sh := l.shards[shard]
	bs := l.batchSize
	if bs > len(sh) {
		bs = len(sh)
	}
	out := make([]regSample, bs)
	for i := range out {
		out[i] = sh[rng.Intn(len(sh))]
	}
	return regBatch{samples: out}
}

// Grad implements Model: d/dw mean (w.x - y)^2 = mean 2 (w.x - y) x.
func (l *LinReg) Grad(w tensor.Vec, b Batch) Update {
	rb, ok := b.(regBatch)
	if !ok {
		panic(fmt.Sprintf("model: linreg got batch type %T", b))
	}
	g := tensor.NewVec(l.dim)
	inv := 1.0 / float64(len(rb.samples))
	for _, s := range rb.samples {
		e := tensor.Dot(w, s.x) - s.y
		tensor.Axpy(g, 2*e*inv, s.x)
	}
	return Update{Dense: g}
}

// BatchLoss implements Model.
func (l *LinReg) BatchLoss(w tensor.Vec, b Batch) float64 {
	rb, ok := b.(regBatch)
	if !ok {
		panic(fmt.Sprintf("model: linreg got batch type %T", b))
	}
	return l.mse(w, rb.samples)
}

// EvalLoss implements Model.
func (l *LinReg) EvalLoss(w tensor.Vec) float64 { return l.mse(w, l.eval) }

func (l *LinReg) mse(w tensor.Vec, samples []regSample) float64 {
	var total float64
	for _, s := range samples {
		e := tensor.Dot(w, s.x) - s.y
		total += e * e
	}
	return total / float64(len(samples))
}

// DistanceToTruth returns |w - w*| where w* generated the data.
func (l *LinReg) DistanceToTruth(w tensor.Vec) float64 {
	d := w.Clone()
	tensor.Sub(d, l.truth)
	return tensor.Norm2(d)
}
