// Package model implements the machine-learning workloads from scratch:
// multinomial softmax regression and a one-hidden-layer MLP (substituting
// for the paper's ResNets on CIFAR-10/ImageNet), matrix factorization
// (the MovieLens recommender), and a linear-regression toy used in tests.
//
// Every model exposes minibatch gradients over a flat parameter vector so
// that parameters can be sharded across servers, and an evaluation loss on a
// held-out set used for convergence detection (paper: "loss staying below
// the target value for 5 consecutive iterations").
package model

import (
	"math/rand"

	"specsync/internal/sparse"
	"specsync/internal/tensor"
)

// Batch is an opaque minibatch handle; each model defines its own concrete
// batch type.
type Batch interface{}

// Update is a computed gradient, either dense or sparse (exactly one field
// is set). Sparse updates are produced by matrix factorization, whose
// minibatch touches only a few factor rows.
type Update struct {
	Dense  tensor.Vec
	Sparse *sparse.Vec
}

// IsSparse reports whether the update uses the sparse representation.
func (u Update) IsSparse() bool { return u.Sparse != nil }

// Model is a trainable workload bound to its (sharded) dataset.
type Model interface {
	// Name identifies the workload in logs and reports.
	Name() string
	// Dim is the length of the flat parameter vector.
	Dim() int
	// NumShards is the number of data shards (one per worker).
	NumShards() int
	// Init returns a fresh parameter vector drawn with rng.
	Init(rng *rand.Rand) tensor.Vec
	// SampleBatch draws a minibatch from the given shard.
	SampleBatch(shard int, rng *rand.Rand) Batch
	// Grad computes the average minibatch gradient of the loss at w.
	Grad(w tensor.Vec, b Batch) Update
	// BatchLoss computes the average loss of batch b at w (used by tests
	// and gradient checks).
	BatchLoss(w tensor.Vec, b Batch) float64
	// EvalLoss computes the held-out evaluation loss at w.
	EvalLoss(w tensor.Vec) float64
}

// Accuracier is implemented by classification models that can report
// held-out accuracy in addition to loss.
type Accuracier interface {
	EvalAccuracy(w tensor.Vec) float64
}
