package model

import (
	"fmt"
	"math"
	"math/rand"

	"specsync/internal/data"
	"specsync/internal/tensor"
)

// MLP is a one-hidden-layer ReLU network trained with cross-entropy loss:
// logits = W2 * relu(W1 * [x;1]) + b2. It is the "deep" stand-in for the
// paper's residual networks: non-convex, with interacting layers, so stale
// gradients hurt it more than they hurt a linear model.
//
// Parameter layout (flat):
//
//	[ W1 (hidden x (dim+1)) | W2 (classes x (hidden+1)) ]
//
// where the +1 columns hold biases.
type MLP struct {
	name      string
	classes   int
	dim       int
	hidden    int
	batchSize int
	l2        float64
	shards    [][]data.Sample
	eval      []data.Sample
}

var _ Model = (*MLP)(nil)
var _ Accuracier = (*MLP)(nil)

// MLPConfig configures an MLP workload.
type MLPConfig struct {
	Name      string
	Hidden    int
	BatchSize int
	L2        float64
}

// NewMLP builds the workload over pre-sharded training data.
func NewMLP(cfg MLPConfig, classes, dim int, shards [][]data.Sample, eval []data.Sample) (*MLP, error) {
	if classes < 2 || dim < 1 || cfg.Hidden < 1 {
		return nil, fmt.Errorf("model: bad MLP shape classes=%d dim=%d hidden=%d", classes, dim, cfg.Hidden)
	}
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("model: batch size %d < 1", cfg.BatchSize)
	}
	if len(shards) == 0 || len(eval) == 0 {
		return nil, fmt.Errorf("model: MLP needs shards and eval data")
	}
	name := cfg.Name
	if name == "" {
		name = "mlp"
	}
	return &MLP{
		name:      name,
		classes:   classes,
		dim:       dim,
		hidden:    cfg.Hidden,
		batchSize: cfg.BatchSize,
		l2:        cfg.L2,
		shards:    shards,
		eval:      eval,
	}, nil
}

// Name implements Model.
func (m *MLP) Name() string { return m.name }

// Dim implements Model.
func (m *MLP) Dim() int {
	return m.hidden*(m.dim+1) + m.classes*(m.hidden+1)
}

// NumShards implements Model.
func (m *MLP) NumShards() int { return len(m.shards) }

// w1 and w2 view the flat parameter vector as the two weight matrices.
func (m *MLP) w1(w tensor.Vec) tensor.Mat {
	return tensor.MatOver(m.hidden, m.dim+1, w[:m.hidden*(m.dim+1)])
}

func (m *MLP) w2(w tensor.Vec) tensor.Mat {
	off := m.hidden * (m.dim + 1)
	return tensor.MatOver(m.classes, m.hidden+1, w[off:])
}

// Init implements Model: He initialization for the ReLU layer, small normal
// for the output layer.
func (m *MLP) Init(rng *rand.Rand) tensor.Vec {
	w := tensor.NewVec(m.Dim())
	he := math.Sqrt(2.0 / float64(m.dim))
	w1 := m.w1(w)
	for i := range w1.V {
		w1.V[i] = rng.NormFloat64() * he
	}
	w2 := m.w2(w)
	out := math.Sqrt(1.0 / float64(m.hidden))
	for i := range w2.V {
		w2.V[i] = rng.NormFloat64() * out
	}
	return w
}

// SampleBatch implements Model.
func (m *MLP) SampleBatch(shard int, rng *rand.Rand) Batch {
	sh := m.shards[shard]
	bs := m.batchSize
	if bs > len(sh) {
		bs = len(sh)
	}
	out := make([]data.Sample, bs)
	for i := range out {
		out[i] = sh[rng.Intn(len(sh))]
	}
	return sampleBatch{samples: out}
}

// forward computes hidden pre-activations, activations and logits for one
// sample into the provided scratch buffers.
func (m *MLP) forward(w tensor.Vec, x []float64, hPre, hAct, logits tensor.Vec) {
	w1 := m.w1(w)
	for h := 0; h < m.hidden; h++ {
		row := w1.Row(h)
		var z float64
		for d, xv := range x {
			z += row[d] * xv
		}
		hPre[h] = z + row[m.dim]
	}
	tensor.Relu(hPre, hAct)
	w2 := m.w2(w)
	for k := 0; k < m.classes; k++ {
		row := w2.Row(k)
		var z float64
		for h := 0; h < m.hidden; h++ {
			z += row[h] * hAct[h]
		}
		logits[k] = z + row[m.hidden]
	}
}

// Grad implements Model via manual backprop.
func (m *MLP) Grad(w tensor.Vec, b Batch) Update {
	sb, ok := b.(sampleBatch)
	if !ok {
		panic(fmt.Sprintf("model: MLP got batch type %T", b))
	}
	g := tensor.NewVec(m.Dim())
	g1 := m.w1(g)
	g2 := m.w2(g)
	w2 := m.w2(w)

	hPre := tensor.NewVec(m.hidden)
	hAct := tensor.NewVec(m.hidden)
	logits := tensor.NewVec(m.classes)
	dHidden := tensor.NewVec(m.hidden)
	inv := 1.0 / float64(len(sb.samples))

	for _, smp := range sb.samples {
		m.forward(w, smp.X, hPre, hAct, logits)
		tensor.Softmax(logits, logits)
		logits[smp.Y] -= 1 // dL/dlogits = p - onehot

		// Output layer gradient and hidden backprop.
		dHidden.Zero()
		for k := 0; k < m.classes; k++ {
			dk := logits[k] * inv
			if dk == 0 {
				continue
			}
			row := g2.Row(k)
			for h := 0; h < m.hidden; h++ {
				row[h] += dk * hAct[h]
			}
			row[m.hidden] += dk
			tensor.Axpy(dHidden, dk, w2.Row(k)[:m.hidden])
		}
		// ReLU gate.
		for h := 0; h < m.hidden; h++ {
			if hPre[h] <= 0 {
				dHidden[h] = 0
			}
		}
		// Input layer gradient.
		for h := 0; h < m.hidden; h++ {
			dh := dHidden[h]
			if dh == 0 {
				continue
			}
			row := g1.Row(h)
			for d, xv := range smp.X {
				row[d] += dh * xv
			}
			row[m.dim] += dh
		}
	}
	if m.l2 > 0 {
		tensor.Axpy(g, m.l2, w)
	}
	return Update{Dense: g}
}

// BatchLoss implements Model.
func (m *MLP) BatchLoss(w tensor.Vec, b Batch) float64 {
	sb, ok := b.(sampleBatch)
	if !ok {
		panic(fmt.Sprintf("model: MLP got batch type %T", b))
	}
	return m.meanLoss(w, sb.samples)
}

// EvalLoss implements Model.
func (m *MLP) EvalLoss(w tensor.Vec) float64 { return m.meanLoss(w, m.eval) }

func (m *MLP) meanLoss(w tensor.Vec, samples []data.Sample) float64 {
	hPre := tensor.NewVec(m.hidden)
	hAct := tensor.NewVec(m.hidden)
	logits := tensor.NewVec(m.classes)
	var total float64
	for _, smp := range samples {
		m.forward(w, smp.X, hPre, hAct, logits)
		total += tensor.LogSumExp(logits) - logits[smp.Y]
	}
	loss := total / float64(len(samples))
	if m.l2 > 0 {
		loss += 0.5 * m.l2 * tensor.Dot(w, w)
	}
	return loss
}

// EvalAccuracy implements Accuracier.
func (m *MLP) EvalAccuracy(w tensor.Vec) float64 {
	hPre := tensor.NewVec(m.hidden)
	hAct := tensor.NewVec(m.hidden)
	logits := tensor.NewVec(m.classes)
	correct := 0
	for _, smp := range m.eval {
		m.forward(w, smp.X, hPre, hAct, logits)
		if tensor.Argmax(logits) == smp.Y {
			correct++
		}
	}
	return float64(correct) / float64(len(m.eval))
}
