package model

import (
	"fmt"
	"math/rand"

	"specsync/internal/data"
	"specsync/internal/tensor"
)

// Softmax is multinomial logistic regression with a bias term: the linear
// classifier P(y=k|x) = softmax(W x + b)_k trained with cross-entropy loss.
// Parameters are laid out as K rows of (Dim features + 1 bias).
type Softmax struct {
	name      string
	classes   int
	dim       int
	batchSize int
	l2        float64
	shards    [][]data.Sample
	eval      []data.Sample
	initScale float64
}

var _ Model = (*Softmax)(nil)
var _ Accuracier = (*Softmax)(nil)

// SoftmaxConfig configures a Softmax workload.
type SoftmaxConfig struct {
	Name      string
	BatchSize int
	L2        float64 // L2 regularization strength (per-sample)
	InitScale float64 // stddev of initial weights; 0 means 0.01
}

// NewSoftmax builds the workload over pre-sharded training data.
func NewSoftmax(cfg SoftmaxConfig, classes, dim int, shards [][]data.Sample, eval []data.Sample) (*Softmax, error) {
	if classes < 2 || dim < 1 {
		return nil, fmt.Errorf("model: bad softmax shape %dx%d", classes, dim)
	}
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("model: batch size %d < 1", cfg.BatchSize)
	}
	if len(shards) == 0 || len(eval) == 0 {
		return nil, fmt.Errorf("model: softmax needs shards and eval data")
	}
	scale := cfg.InitScale
	if scale == 0 {
		scale = 0.01
	}
	name := cfg.Name
	if name == "" {
		name = "softmax"
	}
	return &Softmax{
		name:      name,
		classes:   classes,
		dim:       dim,
		batchSize: cfg.BatchSize,
		l2:        cfg.L2,
		shards:    shards,
		eval:      eval,
		initScale: scale,
	}, nil
}

// Name implements Model.
func (s *Softmax) Name() string { return s.name }

// Dim implements Model.
func (s *Softmax) Dim() int { return s.classes * (s.dim + 1) }

// NumShards implements Model.
func (s *Softmax) NumShards() int { return len(s.shards) }

// Init implements Model.
func (s *Softmax) Init(rng *rand.Rand) tensor.Vec {
	w := tensor.NewVec(s.Dim())
	tensor.RandNormal(w, s.initScale, rng)
	return w
}

type sampleBatch struct {
	samples []data.Sample
}

// SampleBatch implements Model.
func (s *Softmax) SampleBatch(shard int, rng *rand.Rand) Batch {
	sh := s.shards[shard]
	bs := s.batchSize
	if bs > len(sh) {
		bs = len(sh)
	}
	out := make([]data.Sample, bs)
	for i := range out {
		out[i] = sh[rng.Intn(len(sh))]
	}
	return sampleBatch{samples: out}
}

// logits computes W x + b for one sample into out (length classes).
func (s *Softmax) logits(w tensor.Vec, x []float64, out tensor.Vec) {
	stride := s.dim + 1
	for k := 0; k < s.classes; k++ {
		row := w[k*stride : (k+1)*stride]
		var z float64
		for d, xv := range x {
			z += row[d] * xv
		}
		out[k] = z + row[s.dim] // bias
	}
}

// Grad implements Model. The gradient of cross-entropy through softmax is
// (p - onehot(y)) x^T per sample, averaged over the batch.
func (s *Softmax) Grad(w tensor.Vec, b Batch) Update {
	sb, ok := b.(sampleBatch)
	if !ok {
		panic(fmt.Sprintf("model: softmax got batch type %T", b))
	}
	g := tensor.NewVec(s.Dim())
	probs := tensor.NewVec(s.classes)
	stride := s.dim + 1
	inv := 1.0 / float64(len(sb.samples))
	for _, smp := range sb.samples {
		s.logits(w, smp.X, probs)
		tensor.Softmax(probs, probs)
		probs[smp.Y] -= 1 // p - onehot
		for k := 0; k < s.classes; k++ {
			c := probs[k] * inv
			if c == 0 {
				continue
			}
			row := g[k*stride : (k+1)*stride]
			for d, xv := range smp.X {
				row[d] += c * xv
			}
			row[s.dim] += c
		}
	}
	if s.l2 > 0 {
		tensor.Axpy(g, s.l2, w)
	}
	return Update{Dense: g}
}

// BatchLoss implements Model.
func (s *Softmax) BatchLoss(w tensor.Vec, b Batch) float64 {
	sb, ok := b.(sampleBatch)
	if !ok {
		panic(fmt.Sprintf("model: softmax got batch type %T", b))
	}
	return s.meanLoss(w, sb.samples)
}

// EvalLoss implements Model.
func (s *Softmax) EvalLoss(w tensor.Vec) float64 { return s.meanLoss(w, s.eval) }

func (s *Softmax) meanLoss(w tensor.Vec, samples []data.Sample) float64 {
	logits := tensor.NewVec(s.classes)
	var total float64
	for _, smp := range samples {
		s.logits(w, smp.X, logits)
		total += tensor.LogSumExp(logits) - logits[smp.Y]
	}
	loss := total / float64(len(samples))
	if s.l2 > 0 {
		loss += 0.5 * s.l2 * tensor.Dot(w, w)
	}
	return loss
}

// EvalAccuracy implements Accuracier.
func (s *Softmax) EvalAccuracy(w tensor.Vec) float64 {
	logits := tensor.NewVec(s.classes)
	correct := 0
	for _, smp := range s.eval {
		s.logits(w, smp.X, logits)
		if tensor.Argmax(logits) == smp.Y {
			correct++
		}
	}
	return float64(correct) / float64(len(s.eval))
}

// GradNormAt returns the Euclidean norm of the full-eval-set gradient at w;
// used by tests to confirm optimizers approach a stationary point.
func (s *Softmax) GradNormAt(w tensor.Vec) float64 {
	u := s.Grad(w, sampleBatch{samples: s.eval})
	return tensor.Norm2(u.Dense)
}
