package elastic

import (
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	good := &Plan{Events: []Event{
		{Kind: KindAddWorker, At: time.Second, Node: 4},
		{Kind: KindRemoveServer, At: 2 * time.Second, Node: 1},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	bad := []Plan{
		{Events: []Event{{Kind: KindAddWorker, At: -time.Second, Node: 0}}},
		{Events: []Event{{Kind: KindAddWorker, At: time.Second, Node: -1}}},
		{Events: []Event{{Kind: "resize", At: time.Second, Node: 0}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

func TestEmpty(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Error("nil plan not empty")
	}
	if !(&Plan{}).Empty() {
		t.Error("zero plan not empty")
	}
	if (&Plan{Events: []Event{{Kind: KindAddWorker}}}).Empty() {
		t.Error("non-zero plan reported empty")
	}
}

func TestSortedIsStable(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: KindRemoveWorker, At: 2 * time.Second, Node: 5},
		{Kind: KindAddWorker, At: time.Second, Node: 4},
		{Kind: KindAddServer, At: time.Second, Node: 2},
	}}
	s := p.Sorted()
	if s[0].Kind != KindAddWorker || s[1].Kind != KindAddServer || s[2].Kind != KindRemoveWorker {
		t.Errorf("sort wrong: %+v", s)
	}
	// Same-instant events must keep slice order (determinism).
	if s[0].At != s[1].At || s[0].Node != 4 || s[1].Node != 2 {
		t.Errorf("tie order not stable: %+v", s)
	}
	if p.Events[0].Kind != KindRemoveWorker {
		t.Error("Sorted mutated the plan")
	}
}

func TestMaxWorkersServers(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: KindAddWorker, At: time.Second, Node: 7},
		{Kind: KindAddServer, At: time.Second, Node: 5},
		{Kind: KindRemoveWorker, At: 2 * time.Second, Node: 40}, // removes don't grow capacity
	}}
	if got := p.MaxWorkers(4); got != 8 {
		t.Errorf("MaxWorkers = %d, want 8", got)
	}
	if got := p.MaxWorkers(16); got != 16 {
		t.Errorf("MaxWorkers(16) = %d, want 16", got)
	}
	if got := p.MaxServers(4); got != 6 {
		t.Errorf("MaxServers = %d, want 6", got)
	}
}

func TestJSONRoundtrip(t *testing.T) {
	p := GrowShrink(4, 2, 2, 1, 10*time.Second, 30*time.Second)
	data, err := p.JSON()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(back.Events) != len(p.Events) {
		t.Fatalf("%d events after roundtrip, want %d", len(back.Events), len(p.Events))
	}
	for i := range p.Events {
		if back.Events[i] != p.Events[i] {
			t.Errorf("event %d: %+v != %+v", i, back.Events[i], p.Events[i])
		}
	}
}

func TestParseJSONRejects(t *testing.T) {
	cases := []string{
		`{"events": [{"kind": "add-worker", "att": 5, "node": 1}]}`, // unknown field
		`{"events": [{"kind": "explode", "at": 5, "node": 1}]}`,     // unknown kind
		`{"events": [{"kind": "add-worker", "at": 5, "node": -2}]}`, // negative node
		`not json`,
	}
	for i, c := range cases {
		if _, err := ParseJSON([]byte(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGrowShrink(t *testing.T) {
	p := GrowShrink(4, 4, 4, 2, 10*time.Second, 40*time.Second)
	if err := p.Validate(); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	var adds, removes, srvAdds, srvRemoves int
	for _, ev := range p.Events {
		switch ev.Kind {
		case KindAddWorker:
			adds++
			if ev.Node < 4 || ev.Node > 7 || ev.At != 10*time.Second {
				t.Errorf("bad add-worker %+v", ev)
			}
		case KindRemoveWorker:
			removes++
			if ev.At != 40*time.Second {
				t.Errorf("bad remove-worker %+v", ev)
			}
		case KindAddServer:
			srvAdds++
			if ev.Node < 4 || ev.Node > 5 {
				t.Errorf("bad add-server %+v", ev)
			}
		case KindRemoveServer:
			srvRemoves++
		}
	}
	if adds != 4 || removes != 4 || srvAdds != 2 || srvRemoves != 2 {
		t.Errorf("event counts %d/%d/%d/%d, want 4/4/2/2", adds, removes, srvAdds, srvRemoves)
	}
	// Grow-only: no down events at all.
	up := GrowShrink(4, 2, 4, 0, 5*time.Second, 0)
	if len(up.Events) != 2 {
		t.Errorf("grow-only plan has %d events, want 2", len(up.Events))
	}
	if up.MaxWorkers(4) != 6 || up.MaxServers(4) != 4 {
		t.Errorf("grow-only capacity %d/%d, want 6/4", up.MaxWorkers(4), up.MaxServers(4))
	}
}
