package elastic

import (
	"fmt"
	"sort"

	"specsync/internal/des"
	"specsync/internal/msg"
	"specsync/internal/node"
)

// planSource is the injection source identity for scale commands; it never
// receives anything, it only stamps the ScaleCmd's from-field.
var planSource = node.ID("scale-plan")

// SimOptions wires a plan into one simulation.
type SimOptions struct {
	// Plan is the scale schedule. Required.
	Plan *Plan
	// Workers and Servers are the initial cluster shape (server slots
	// 0..Servers-1 are live at start).
	Workers, Servers int
	// NewWorker builds the handler for a joining worker (configured with
	// JoinOnInit, so its Init announces it to the scheduler). Required when
	// the plan adds a worker.
	NewWorker func(i int) (node.Handler, error)
	// NewServer builds the handler for a joining server slot (a
	// ps.NewJoining shard: frozen and empty until a migration hands it
	// state). Required when the plan adds a server.
	NewServer func(slot int) (node.Handler, error)
	// OnWorkerAdd / OnServerAdd let the harness track the new node (result
	// accounting reads counters off the handlers).
	OnWorkerAdd func(i int, h node.Handler)
	OnServerAdd func(slot int, h node.Handler)
}

// SimInjector executes a plan against a des.Sim in virtual time.
type SimInjector struct {
	sim  *des.Sim
	opts SimOptions
	// live is the server set as of the last issued command; commands are
	// issued in event order, so it tracks the plan's intent even while the
	// scheduler is still migrating toward an earlier set.
	live map[int]bool
	errs []error
}

// AttachSim validates the plan and schedules every membership event. Call
// after the initial nodes are added, before running the simulation.
func AttachSim(sim *des.Sim, opts SimOptions) (*SimInjector, error) {
	if opts.Plan == nil {
		return nil, fmt.Errorf("elastic: nil plan")
	}
	if err := opts.Plan.Validate(); err != nil {
		return nil, err
	}
	for i, ev := range opts.Plan.Events {
		switch ev.Kind {
		case KindAddWorker:
			if opts.NewWorker == nil {
				return nil, fmt.Errorf("elastic: event %d adds a worker but NewWorker is nil", i)
			}
		case KindAddServer:
			if opts.NewServer == nil {
				return nil, fmt.Errorf("elastic: event %d adds a server but NewServer is nil", i)
			}
		}
	}
	inj := &SimInjector{sim: sim, opts: opts, live: make(map[int]bool, opts.Servers)}
	for s := 0; s < opts.Servers; s++ {
		inj.live[s] = true
	}
	for _, ev := range opts.Plan.Sorted() {
		ev := ev
		sim.Schedule(ev.At, func() { inj.apply(ev) })
	}
	return inj, nil
}

func (inj *SimInjector) apply(ev Event) {
	switch ev.Kind {
	case KindAddWorker:
		h, err := inj.opts.NewWorker(ev.Node)
		if err != nil {
			inj.errs = append(inj.errs, err)
			return
		}
		if err := inj.sim.Join(node.WorkerID(ev.Node), h); err != nil {
			inj.errs = append(inj.errs, err)
			return
		}
		if inj.opts.OnWorkerAdd != nil {
			inj.opts.OnWorkerAdd(ev.Node, h)
		}
	case KindRemoveWorker:
		inj.inject(&msg.ScaleCmd{Op: msg.ScaleRetireWorker, Node: int32(ev.Node)})
	case KindAddServer:
		if inj.live[ev.Node] {
			inj.errs = append(inj.errs, fmt.Errorf("elastic: add-server %d: slot already live", ev.Node))
			return
		}
		h, err := inj.opts.NewServer(ev.Node)
		if err != nil {
			inj.errs = append(inj.errs, err)
			return
		}
		if err := inj.sim.Join(node.ServerID(ev.Node), h); err != nil {
			inj.errs = append(inj.errs, err)
			return
		}
		if inj.opts.OnServerAdd != nil {
			inj.opts.OnServerAdd(ev.Node, h)
		}
		inj.live[ev.Node] = true
		inj.inject(&msg.ScaleCmd{Op: msg.ScaleSetServers, Servers: liveSlotsOf(inj.live)})
	case KindRemoveServer:
		if !inj.live[ev.Node] {
			inj.errs = append(inj.errs, fmt.Errorf("elastic: remove-server %d: slot not live", ev.Node))
			return
		}
		if len(inj.live) == 1 {
			inj.errs = append(inj.errs, fmt.Errorf("elastic: remove-server %d would empty the server set", ev.Node))
			return
		}
		delete(inj.live, ev.Node)
		inj.inject(&msg.ScaleCmd{Op: msg.ScaleSetServers, Servers: liveSlotsOf(inj.live)})
	}
}

func (inj *SimInjector) inject(cmd *msg.ScaleCmd) {
	if err := inj.sim.Inject(planSource, node.Scheduler, cmd); err != nil {
		inj.errs = append(inj.errs, err)
	}
}

// liveSlotsOf flattens a live-slot set into the sorted int32 slice a
// ScaleSetServers command carries.
func liveSlotsOf(live map[int]bool) []int32 {
	out := make([]int, 0, len(live))
	for s := range live {
		out = append(out, s)
	}
	sort.Ints(out)
	slots := make([]int32, len(out))
	for i, s := range out {
		slots[i] = int32(s)
	}
	return slots
}

// Errs returns runtime errors the injector hit while executing the plan.
// Empty on a clean run.
func (inj *SimInjector) Errs() []error { return inj.errs }
