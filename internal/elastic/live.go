package elastic

import (
	"fmt"
	"sync"
	"time"

	"specsync/internal/live"
	"specsync/internal/msg"
	"specsync/internal/node"
)

// LiveOptions wires a plan into a live (goroutine-per-node) network. The
// protocol is identical to the simulated path — joining nodes enter through
// Network.Join and scale commands are injected at the scheduler — only the
// clock differs (wall time instead of virtual time).
//
// This drives single-process live networks (the in-memory transport used by
// tests and the live harness). Multi-process elasticity over TCPHost — where
// a joining node is a new OS process dialing in — needs a listener-side
// admission path and is out of scope here.
type LiveOptions struct {
	// Plan is the scale schedule. Required.
	Plan *Plan
	// Servers is the initial server count (slots 0..Servers-1 live at start).
	Servers int
	// NewWorker builds the handler for a joining worker (configured with
	// JoinOnInit). Required when the plan adds a worker.
	NewWorker func(i int) (node.Handler, error)
	// NewServer builds the handler for a joining server slot (ps.NewJoining).
	// Required when the plan adds a server.
	NewServer func(slot int) (node.Handler, error)
	// OnWorkerAdd / OnServerAdd let the harness track the new node.
	OnWorkerAdd func(i int, h node.Handler)
	OnServerAdd func(slot int, h node.Handler)
}

// LiveInjector executes a plan against a live.Network in wall-clock time.
// Build it with NewLive, then call Start once the network is running.
type LiveInjector struct {
	opts LiveOptions

	mu      sync.Mutex
	net     *live.Network
	timers  []*time.Timer
	live    map[int]bool
	errs    []error
	stopped bool
}

// NewLive validates the plan and builds the injector.
func NewLive(opts LiveOptions) (*LiveInjector, error) {
	if opts.Plan == nil {
		return nil, fmt.Errorf("elastic: nil plan")
	}
	if err := opts.Plan.Validate(); err != nil {
		return nil, err
	}
	for i, ev := range opts.Plan.Events {
		switch ev.Kind {
		case KindAddWorker:
			if opts.NewWorker == nil {
				return nil, fmt.Errorf("elastic: event %d adds a worker but NewWorker is nil", i)
			}
		case KindAddServer:
			if opts.NewServer == nil {
				return nil, fmt.Errorf("elastic: event %d adds a server but NewServer is nil", i)
			}
		}
	}
	inj := &LiveInjector{opts: opts, live: make(map[int]bool, opts.Servers)}
	for s := 0; s < opts.Servers; s++ {
		inj.live[s] = true
	}
	return inj, nil
}

// Start arms every event timer relative to now.
func (inj *LiveInjector) Start(net *live.Network) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.net = net
	for _, ev := range inj.opts.Plan.Sorted() {
		ev := ev
		inj.timers = append(inj.timers, time.AfterFunc(ev.At, func() { inj.apply(ev) }))
	}
}

// Stop cancels pending events (already-fired ones are not undone).
func (inj *LiveInjector) Stop() {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.stopped = true
	for _, t := range inj.timers {
		t.Stop()
	}
}

func (inj *LiveInjector) apply(ev Event) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.stopped {
		return
	}
	switch ev.Kind {
	case KindAddWorker:
		h, err := inj.opts.NewWorker(ev.Node)
		if err != nil {
			inj.errs = append(inj.errs, err)
			return
		}
		if err := inj.net.Join(node.WorkerID(ev.Node), h); err != nil {
			inj.errs = append(inj.errs, err)
			return
		}
		if inj.opts.OnWorkerAdd != nil {
			inj.opts.OnWorkerAdd(ev.Node, h)
		}
	case KindRemoveWorker:
		inj.inject(&msg.ScaleCmd{Op: msg.ScaleRetireWorker, Node: int32(ev.Node)})
	case KindAddServer:
		if inj.live[ev.Node] {
			inj.errs = append(inj.errs, fmt.Errorf("elastic: add-server %d: slot already live", ev.Node))
			return
		}
		h, err := inj.opts.NewServer(ev.Node)
		if err != nil {
			inj.errs = append(inj.errs, err)
			return
		}
		if err := inj.net.Join(node.ServerID(ev.Node), h); err != nil {
			inj.errs = append(inj.errs, err)
			return
		}
		if inj.opts.OnServerAdd != nil {
			inj.opts.OnServerAdd(ev.Node, h)
		}
		inj.live[ev.Node] = true
		inj.inject(&msg.ScaleCmd{Op: msg.ScaleSetServers, Servers: liveSlotsOf(inj.live)})
	case KindRemoveServer:
		if !inj.live[ev.Node] {
			inj.errs = append(inj.errs, fmt.Errorf("elastic: remove-server %d: slot not live", ev.Node))
			return
		}
		if len(inj.live) == 1 {
			inj.errs = append(inj.errs, fmt.Errorf("elastic: remove-server %d would empty the server set", ev.Node))
			return
		}
		delete(inj.live, ev.Node)
		inj.inject(&msg.ScaleCmd{Op: msg.ScaleSetServers, Servers: liveSlotsOf(inj.live)})
	}
}

func (inj *LiveInjector) inject(cmd *msg.ScaleCmd) {
	if err := inj.net.Inject(planSource, node.Scheduler, cmd); err != nil {
		inj.errs = append(inj.errs, err)
	}
}

// Errs returns runtime errors the injector hit while executing the plan.
func (inj *LiveInjector) Errs() []error {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make([]error, len(inj.errs))
	copy(out, inj.errs)
	return out
}
