// Package elastic implements declarative scale plans for SpecSync clusters:
// schedules of worker join/leave and server add/remove events, with injectors
// for the deterministic simulator (internal/des) and the live runtime
// (internal/live).
//
// A Plan is pure data (JSON-serializable) and carries no randomness at all —
// the same plan against the same seeded run is bit-for-bit reproducible. The
// injectors translate events into runtime actions: new nodes join the running
// network and announce themselves (JoinReq), departures and server-set
// changes are ScaleCmd messages injected into the scheduler, which owns the
// membership and routing protocol (internal/core/elastic.go).
package elastic

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// EventKind enumerates the scale event types.
type EventKind string

const (
	// KindAddWorker starts worker Node at At; it joins the running cluster
	// via JoinReq and begins training at the cluster's current clock.
	KindAddWorker EventKind = "add-worker"
	// KindRemoveWorker retires worker Node at At: the scheduler stops it and
	// removes it from membership (planned departure, not a crash).
	KindRemoveWorker EventKind = "remove-worker"
	// KindAddServer starts server slot Node at At and rebalances the
	// parameter shards across the grown server set (live migration).
	KindAddServer EventKind = "add-server"
	// KindRemoveServer drains server slot Node at At: its parameters migrate
	// to the remaining servers, then the shard retires.
	KindRemoveServer EventKind = "remove-server"
)

// Event is one scheduled membership change.
type Event struct {
	// Kind selects the event type.
	Kind EventKind `json:"kind"`
	// At is the event's offset from run start.
	At time.Duration `json:"at"`
	// Node is the worker index or server slot the event targets.
	Node int `json:"node"`
}

// Plan is a deterministic scale schedule.
type Plan struct {
	// Events is the schedule; order does not matter (ties execute in slice
	// order).
	Events []Event `json:"events"`
}

// Validate reports structural errors in the plan.
func (p *Plan) Validate() error {
	for i, ev := range p.Events {
		if ev.At < 0 {
			return fmt.Errorf("elastic: event %d: negative At %v", i, ev.At)
		}
		if ev.Node < 0 {
			return fmt.Errorf("elastic: event %d: negative node index", i)
		}
		switch ev.Kind {
		case KindAddWorker, KindRemoveWorker, KindAddServer, KindRemoveServer:
		default:
			return fmt.Errorf("elastic: event %d: unknown kind %q", i, ev.Kind)
		}
	}
	return nil
}

// Empty reports whether the plan schedules nothing (runners treat an empty
// plan exactly like no plan, so the legacy path stays byte-identical).
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// Sorted returns the events ordered by At (stable, so same-instant events
// keep their slice order).
func (p *Plan) Sorted() []Event {
	out := make([]Event, len(p.Events))
	copy(out, p.Events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// MaxWorkers returns the worker-slot capacity the plan needs on top of the
// initial cluster size: max(initial, highest added index + 1).
func (p *Plan) MaxWorkers(initial int) int {
	max := initial
	for _, ev := range p.Events {
		if ev.Kind == KindAddWorker && ev.Node+1 > max {
			max = ev.Node + 1
		}
	}
	return max
}

// MaxServers returns the server-slot capacity the plan needs:
// max(initial, highest added slot + 1).
func (p *Plan) MaxServers(initial int) int {
	max := initial
	for _, ev := range p.Events {
		if ev.Kind == KindAddServer && ev.Node+1 > max {
			max = ev.Node + 1
		}
	}
	return max
}

// JSON serializes the plan (durations as nanosecond integers).
func (p *Plan) JSON() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// ParseJSON decodes and validates a plan, rejecting unknown fields (a
// misspelled "at" silently scheduling everything at time zero is too easy
// otherwise).
func ParseJSON(data []byte) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("elastic: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// GrowShrink builds the canonical scale-out/scale-in plan behind the CLIs'
// -elastic flag: extraWorkers workers and extraServers servers join at upAt,
// and (when downAt > 0) leave again at downAt. Indices continue from the
// initial cluster shape, so a 4-worker cluster growing by 4 adds workers
// 4..7.
func GrowShrink(workers, extraWorkers, servers, extraServers int, upAt, downAt time.Duration) *Plan {
	p := &Plan{}
	for i := 0; i < extraWorkers; i++ {
		p.Events = append(p.Events, Event{Kind: KindAddWorker, At: upAt, Node: workers + i})
	}
	for i := 0; i < extraServers; i++ {
		p.Events = append(p.Events, Event{Kind: KindAddServer, At: upAt, Node: servers + i})
	}
	if downAt > 0 {
		for i := 0; i < extraWorkers; i++ {
			p.Events = append(p.Events, Event{Kind: KindRemoveWorker, At: downAt, Node: workers + i})
		}
		for i := 0; i < extraServers; i++ {
			p.Events = append(p.Events, Event{Kind: KindRemoveServer, At: downAt, Node: servers + i})
		}
	}
	return p
}
