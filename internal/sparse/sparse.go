// Package sparse provides the sparse-vector representation used for matrix
// factorization pushes and pulls. An MF gradient only touches the rows of the
// user/item factors that appear in the minibatch, so shipping a dense vector
// of millions of zeros would dominate transfer; sparse push/pull is what
// makes the MF workload's communication profile (paper Fig. 12a) realistic.
package sparse

import (
	"fmt"
	"sort"

	"specsync/internal/tensor"
)

// Vec is a sparse vector: parallel slices of strictly increasing indices and
// their values. The zero value is an empty vector.
type Vec struct {
	Idx []int32
	Val []float64
}

// Len returns the number of stored (non-zero) entries.
func (v Vec) Len() int { return len(v.Idx) }

// Validate checks the representation invariants: equal-length slices and
// strictly increasing indices.
func (v Vec) Validate(dim int) error {
	if len(v.Idx) != len(v.Val) {
		return fmt.Errorf("sparse: %d indices but %d values", len(v.Idx), len(v.Val))
	}
	for i, ix := range v.Idx {
		if ix < 0 || int(ix) >= dim {
			return fmt.Errorf("sparse: index %d out of range [0,%d)", ix, dim)
		}
		if i > 0 && v.Idx[i-1] >= ix {
			return fmt.Errorf("sparse: indices not strictly increasing at %d", i)
		}
	}
	return nil
}

// Clone returns a deep copy of v.
func (v Vec) Clone() Vec {
	out := Vec{Idx: make([]int32, len(v.Idx)), Val: make([]float64, len(v.Val))}
	copy(out.Idx, v.Idx)
	copy(out.Val, v.Val)
	return out
}

// AddTo accumulates dense += a*v.
func (v Vec) AddTo(dense tensor.Vec, a float64) {
	for i, ix := range v.Idx {
		dense[ix] += a * v.Val[i]
	}
}

// Norm2Sq returns the squared Euclidean norm of v.
func (v Vec) Norm2Sq() float64 {
	var s float64
	for _, x := range v.Val {
		s += x * x
	}
	return s
}

// Scale multiplies every stored value by a in place.
func (v *Vec) Scale(a float64) {
	for i := range v.Val {
		v.Val[i] *= a
	}
}

// Builder accumulates scattered (index, value) contributions and produces a
// canonical sparse vector, merging duplicate indices by summation. It is the
// tool gradient code uses: MF touches the same factor row many times per
// batch.
type Builder struct {
	vals map[int32]float64
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{vals: make(map[int32]float64)}
}

// Add accumulates value at index.
func (b *Builder) Add(index int32, value float64) {
	b.vals[index] += value
}

// AddSpan accumulates a contiguous block of values starting at base. This is
// how a factor-row gradient (rank consecutive floats) is scattered into the
// flat parameter index space.
func (b *Builder) AddSpan(base int32, values []float64) {
	for i, v := range values {
		b.vals[base+int32(i)] += v
	}
}

// Len returns the number of distinct indices accumulated so far.
func (b *Builder) Len() int { return len(b.vals) }

// Build produces the canonical sorted vector and resets the builder.
func (b *Builder) Build() Vec {
	idx := make([]int32, 0, len(b.vals))
	for ix := range b.vals {
		idx = append(idx, ix)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	val := make([]float64, len(idx))
	for i, ix := range idx {
		val[i] = b.vals[ix]
	}
	b.vals = make(map[int32]float64)
	return Vec{Idx: idx, Val: val}
}

// Slice returns the sub-vector of v whose indices fall in [lo, hi), with
// indices rebased to lo. Parameter-server shards use this to route one sparse
// push to the shard that owns each index range.
func (v Vec) Slice(lo, hi int32) Vec {
	start := sort.Search(len(v.Idx), func(i int) bool { return v.Idx[i] >= lo })
	end := sort.Search(len(v.Idx), func(i int) bool { return v.Idx[i] >= hi })
	out := Vec{Idx: make([]int32, end-start), Val: make([]float64, end-start)}
	for i := start; i < end; i++ {
		out.Idx[i-start] = v.Idx[i] - lo
		out.Val[i-start] = v.Val[i]
	}
	return out
}

// FromDense extracts the non-zero entries of a dense vector. Mostly a test
// helper; production gradients are built sparsely from the start.
func FromDense(dense tensor.Vec) Vec {
	var out Vec
	for i, x := range dense {
		if x != 0 {
			out.Idx = append(out.Idx, int32(i))
			out.Val = append(out.Val, x)
		}
	}
	return out
}

// ToDense materializes v as a dense vector of length dim.
func (v Vec) ToDense(dim int) tensor.Vec {
	out := tensor.NewVec(dim)
	v.AddTo(out, 1)
	return out
}
