package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"specsync/internal/tensor"
)

func TestBuilderMergesDuplicates(t *testing.T) {
	b := NewBuilder()
	b.Add(5, 1.5)
	b.Add(2, 1)
	b.Add(5, 0.5)
	v := b.Build()
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
	if v.Idx[0] != 2 || v.Idx[1] != 5 {
		t.Errorf("Idx = %v", v.Idx)
	}
	if v.Val[1] != 2.0 {
		t.Errorf("Val[1] = %v, want 2", v.Val[1])
	}
	if err := v.Validate(10); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if b.Len() != 0 {
		t.Error("Build must reset builder")
	}
}

func TestAddSpan(t *testing.T) {
	b := NewBuilder()
	b.AddSpan(10, []float64{1, 2, 3})
	b.AddSpan(11, []float64{10})
	v := b.Build()
	d := v.ToDense(20)
	if d[10] != 1 || d[11] != 12 || d[12] != 3 {
		t.Errorf("dense = %v", d[10:13])
	}
}

func TestValidateCatchesBadVectors(t *testing.T) {
	bad := []Vec{
		{Idx: []int32{1}, Val: []float64{}},        // length mismatch
		{Idx: []int32{3, 2}, Val: []float64{1, 1}}, // unsorted
		{Idx: []int32{2, 2}, Val: []float64{1, 1}}, // duplicate
		{Idx: []int32{-1}, Val: []float64{1}},      // negative
		{Idx: []int32{99}, Val: []float64{1}},      // out of range
	}
	for i, v := range bad {
		if err := v.Validate(10); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestSlice(t *testing.T) {
	v := Vec{Idx: []int32{1, 5, 9, 15}, Val: []float64{1, 5, 9, 15}}
	s := v.Slice(5, 10)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Idx[0] != 0 || s.Idx[1] != 4 {
		t.Errorf("rebased Idx = %v", s.Idx)
	}
	if s.Val[0] != 5 || s.Val[1] != 9 {
		t.Errorf("Val = %v", s.Val)
	}
	if empty := v.Slice(20, 30); empty.Len() != 0 {
		t.Errorf("out-of-range slice not empty: %v", empty)
	}
}

func TestQuickSliceRoundtrip(t *testing.T) {
	// Splitting a sparse vector into shard slices and re-assembling (with
	// offset) must reproduce the original dense form. This is exactly the
	// push-routing path in the parameter server.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const dim = 64
		b := NewBuilder()
		for i := 0; i < rng.Intn(40); i++ {
			b.Add(int32(rng.Intn(dim)), rng.NormFloat64())
		}
		v := b.Build()

		nshards := rng.Intn(4) + 1
		per := (dim + nshards - 1) / nshards
		dense := tensor.NewVec(dim)
		for s := 0; s < nshards; s++ {
			lo := int32(s * per)
			hi := lo + int32(per)
			if hi > dim {
				hi = dim
			}
			part := v.Slice(lo, hi)
			if err := part.Validate(int(hi - lo)); err != nil {
				return false
			}
			for i, ix := range part.Idx {
				dense[int32(ix)+lo] += part.Val[i]
			}
		}

		want := v.ToDense(dim)
		for i := range want {
			if dense[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFromDenseToDense(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) > 256 {
			raw = raw[:256]
		}
		dense := tensor.Vec(raw)
		v := FromDense(dense)
		if err := v.Validate(len(dense)); err != nil {
			return false
		}
		back := v.ToDense(len(dense))
		for i := range dense {
			// NaN round-trips as non-equal; skip those draws.
			if dense[i] != back[i] && dense[i] == dense[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddToAndScale(t *testing.T) {
	v := Vec{Idx: []int32{0, 3}, Val: []float64{2, 4}}
	dense := tensor.NewVec(5)
	v.AddTo(dense, 0.5)
	if dense[0] != 1 || dense[3] != 2 {
		t.Errorf("AddTo = %v", dense)
	}
	v.Scale(2)
	if v.Val[0] != 4 || v.Val[1] != 8 {
		t.Errorf("Scale = %v", v.Val)
	}
	if v.Norm2Sq() != 16+64 {
		t.Errorf("Norm2Sq = %v", v.Norm2Sq())
	}
}

func TestClone(t *testing.T) {
	v := Vec{Idx: []int32{1}, Val: []float64{1}}
	c := v.Clone()
	c.Val[0] = 99
	c.Idx[0] = 5
	if v.Val[0] != 1 || v.Idx[0] != 1 {
		t.Error("Clone aliases original")
	}
}
