package live

import (
	"sync"
	"testing"
	"time"

	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/wire"
)

func waitCond(t *testing.T, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
	return true
}

func TestNetworkCrashRestart(t *testing.T) {
	n, err := NewNetwork(NetworkConfig{Registry: msg.Registry(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := &pingHandler{}
	b := &pingHandler{}
	if err := n.AddNode("worker/0", a); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode("worker/1", b); err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Close()

	if err := n.Inject("worker/0", "worker/1", &msg.Notify{Iter: 1}); err != nil {
		t.Fatal(err)
	}
	if !waitCond(t, func() bool { return b.count() == 1 }) {
		t.Fatal("pre-crash message never arrived")
	}

	if err := n.Crash("worker/1"); err != nil {
		t.Fatal(err)
	}
	if !n.Down("worker/1") {
		t.Error("Down() false after Crash")
	}
	if err := n.Crash("worker/1"); err == nil {
		t.Error("double Crash succeeded")
	}
	// Messages to a down node are lost.
	if err := n.Inject("worker/0", "worker/1", &msg.Notify{Iter: 2}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if c := b.count(); c != 1 {
		t.Errorf("down node received messages: count=%d", c)
	}

	// Restart with a fresh handler; old incarnation stays frozen.
	fresh := &pingHandler{}
	if err := n.Restart("worker/1", fresh); err != nil {
		t.Fatal(err)
	}
	if n.Down("worker/1") {
		t.Error("Down() true after Restart")
	}
	if !waitCond(t, func() bool { return fresh.inits.Load() == 1 }) {
		t.Fatal("restarted handler never initialized")
	}
	if err := n.Inject("worker/0", "worker/1", &msg.Notify{Iter: 3}); err != nil {
		t.Fatal(err)
	}
	if !waitCond(t, func() bool { return fresh.count() == 1 }) {
		t.Fatal("post-restart message never arrived")
	}
	if c := b.count(); c != 1 {
		t.Errorf("old incarnation received post-restart messages: count=%d", c)
	}
}

// timerHandler re-arms a short timer forever; crash must silence it across
// the restart boundary.
type timerHandler struct {
	mu    sync.Mutex
	fires int
}

func (h *timerHandler) Init(ctx node.Context) { h.arm(ctx) }

func (h *timerHandler) arm(ctx node.Context) {
	ctx.After(5*time.Millisecond, func() {
		h.mu.Lock()
		h.fires++
		h.mu.Unlock()
		h.arm(ctx)
	})
}

func (h *timerHandler) Receive(from node.ID, m wire.Message) {}

func (h *timerHandler) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fires
}

func TestNetworkCrashSilencesTimers(t *testing.T) {
	n, err := NewNetwork(NetworkConfig{Registry: msg.Registry(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := &timerHandler{}
	if err := n.AddNode("worker/0", h); err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Close()

	if !waitCond(t, func() bool { return h.count() > 2 }) {
		t.Fatal("timer never fired")
	}
	if err := n.Crash("worker/0"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	before := h.count()
	time.Sleep(50 * time.Millisecond)
	if after := h.count(); after != before {
		t.Errorf("timers fired while down: %d -> %d", before, after)
	}

	fresh := &timerHandler{}
	if err := n.Restart("worker/0", fresh); err != nil {
		t.Fatal(err)
	}
	if !waitCond(t, func() bool { return fresh.count() > 0 }) {
		t.Error("restarted node's timers never fired")
	}
	if after := h.count(); after != before {
		t.Errorf("old incarnation's timers resumed: %d -> %d", before, after)
	}
}

func TestNetworkFaultHook(t *testing.T) {
	var mu sync.Mutex
	mode := ""
	setMode := func(m string) { mu.Lock(); mode = m; mu.Unlock() }
	n, err := NewNetwork(NetworkConfig{
		Registry: msg.Registry(),
		Seed:     1,
		Fault: func(from, to node.ID, kind wire.Kind) FaultAction {
			mu.Lock()
			defer mu.Unlock()
			switch mode {
			case "drop":
				return FaultAction{Drop: true}
			case "dup":
				return FaultAction{Duplicate: true}
			case "delay":
				return FaultAction{Delay: 20 * time.Millisecond}
			}
			return FaultAction{}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	recv := &pingHandler{}
	if err := n.AddNode("worker/0", &pingHandler{}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode("worker/1", recv); err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Close()

	send := func(iter int64) {
		t.Helper()
		// Drive through the full send path (fault hook included).
		nd := n.nodes["worker/0"]
		nd.Send("worker/1", &msg.Notify{Iter: iter})
	}

	setMode("drop")
	send(1)
	time.Sleep(30 * time.Millisecond)
	if c := recv.count(); c != 0 {
		t.Fatalf("dropped message delivered: count=%d", c)
	}

	setMode("dup")
	send(2)
	if !waitCond(t, func() bool { return recv.count() == 2 }) {
		t.Fatalf("duplicate not delivered twice: count=%d", recv.count())
	}

	setMode("delay")
	start := time.Now()
	send(3)
	if !waitCond(t, func() bool { return recv.count() == 3 }) {
		t.Fatalf("delayed message lost: count=%d", recv.count())
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("delayed message arrived too fast: %v", elapsed)
	}
}
