package live

import (
	"math/rand"
	"testing"
	"time"

	"specsync/internal/codec"
	"specsync/internal/core"
	"specsync/internal/model"
	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/optimizer"
	"specsync/internal/ps"
	"specsync/internal/scheme"
	"specsync/internal/worker"
)

// TestTCPClusterWithCodecs runs the live TCP cluster with a lossy push codec
// (topk + error feedback) and delta pulls enabled, verifying training makes
// progress over the real wire on the v2 message kinds and that the codec
// stats tap sees the compressed traffic.
func TestTCPClusterWithCodecs(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP cluster")
	}
	reg := msg.Registry()
	ccfg := codec.Config{Name: "topk", TopKFrac: 0.25}
	stats := codec.NewStats(msg.CodecLabeler(ccfg.PushName(), ccfg.PullName()))

	mdl, err := model.NewLinReg(model.LinRegConfig{
		Dim: 16, N: 400, EvalN: 100, Shards: 2, Noise: 0.1, BatchSize: 16, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ranges, err := ps.ShardRanges(mdl.Dim(), 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := optimizer.NewSGD(optimizer.SGDConfig{Schedule: optimizer.Const(0.05)}, mdl.Dim())
	if err != nil {
		t.Fatal(err)
	}
	initW := mdl.Init(rand.New(rand.NewSource(42)))
	srv, err := ps.New(ps.Config{
		Range: ranges[0], Init: initW, Optimizer: opt,
		DeltaPull: true, CodecStats: stats,
	})
	if err != nil {
		t.Fatal(err)
	}

	sched, err := core.NewScheduler(core.SchedulerConfig{
		Workers:     2,
		Scheme:      scheme.Config{Base: scheme.ASP},
		InitialSpan: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	workers := make([]*worker.Worker, 2)
	for i := range workers {
		wk, err := worker.New(worker.Config{
			Index:      i,
			Shards:     ranges,
			Model:      mdl,
			Scheme:     scheme.Config{Base: scheme.ASP},
			Compute:    worker.ComputeModel{Base: 40 * time.Millisecond, Speed: 1, JitterSigma: 0.2},
			Codec:      ccfg,
			CodecStats: stats,
		})
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = wk
	}

	hosts := map[node.ID]*TCPHost{}
	addHost := func(id node.ID, h node.Handler) *TCPHost {
		t.Helper()
		host, err := NewTCPHost(TCPHostConfig{
			ID: id, Handler: h, ListenAddr: "127.0.0.1:0", Registry: reg, Seed: 9,
			Transfer: stats.Tap(nil),
		})
		if err != nil {
			t.Fatal(err)
		}
		hosts[id] = host
		t.Cleanup(host.Close)
		return host
	}
	addHost(node.ServerID(0), srv)
	for i, wk := range workers {
		addHost(node.WorkerID(i), wk)
	}
	schedHost := addHost(node.Scheduler, sched)

	for id, h := range hosts {
		for peer, ph := range hosts {
			if peer != id {
				h.AddPeer(peer, ph.Addr())
			}
		}
	}
	for i := range workers {
		schedHost.Send(node.WorkerID(i), &msg.Start{})
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		done := int64(0)
		for _, wk := range workers {
			done += wk.IterationsDone()
		}
		if done >= 20 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	var total int64
	for _, wk := range workers {
		total += wk.IterationsDone()
	}
	if total < 20 {
		t.Fatalf("only %d iterations completed over TCP with codecs", total)
	}
	if srv.Version() < 20 {
		t.Errorf("server applied %d pushes", srv.Version())
	}

	// The v2 kinds must carry the traffic, with real compression recorded.
	pushBytes, pushMsgs := stats.KindBytes(msg.KindPushReqV2, "topk")
	if pushMsgs == 0 || pushBytes == 0 {
		t.Errorf("no v2 push traffic recorded (bytes=%d msgs=%d)", pushBytes, pushMsgs)
	}
	if legacy, _ := stats.KindBytes(msg.KindPushReq, "raw"); legacy != 0 {
		t.Errorf("legacy v1 pushes seen (%d bytes) despite codec config", legacy)
	}
	if r := stats.Ratio(codec.IDTopK); r >= 1 {
		t.Errorf("topk ratio %.3f, want < 1", r)
	}
	// Error-feedback residual must be live (nonzero somewhere after lossy
	// pushes).
	st := workers[0].CodecState()
	if st == nil {
		t.Fatal("worker has no codec state")
	}
	nonzero := false
	for _, block := range st.Residuals {
		for _, v := range block {
			if v != 0 {
				nonzero = true
			}
		}
	}
	if !nonzero {
		t.Error("error-feedback residuals all zero after lossy pushes")
	}
}
