package live

import (
	"sync"
	"testing"
	"time"

	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/optimizer"
	"specsync/internal/ps"
	"specsync/internal/tensor"
	"specsync/internal/wire"
)

// ackSink counts PushAcks delivered to one sender.
type ackSink struct {
	mu   sync.Mutex
	acks int
}

func (a *ackSink) Init(node.Context) {}
func (a *ackSink) Receive(_ node.ID, m wire.Message) {
	if _, ok := m.(*msg.PushAck); ok {
		a.mu.Lock()
		a.acks++
		a.mu.Unlock()
	}
}
func (a *ackSink) count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.acks
}

// TestLiveCloneDedupNeverDoubleApplies races an original worker and its clone
// pushing the same logical (worker, iter) gradients at a live parameter
// server. Whatever the interleaving, every iteration must be applied exactly
// once (the duplicate acknowledged without applying), so the final parameters
// equal a serial single-worker run. Run under -race this also pins the
// thread-safety of the clone-dedup path on the live runtime.
func TestLiveCloneDedupNeverDoubleApplies(t *testing.T) {
	const (
		iters = 50
		dim   = 4
		lr    = 0.5
	)
	opt, err := optimizer.NewSGD(optimizer.SGDConfig{Schedule: optimizer.Const(lr)}, dim)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ps.New(ps.Config{
		Range:       ps.Range{Lo: 0, Hi: dim},
		Init:        tensor.Vec{0, 0, 0, 0},
		Optimizer:   opt,
		DedupPushes: true,
		CloneBase:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(NetworkConfig{Registry: msg.Registry(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	orig, clone, stray := &ackSink{}, &ackSink{}, &ackSink{}
	for id, h := range map[node.ID]node.Handler{
		node.ServerID(0): srv, node.WorkerID(1): orig, node.WorkerID(4): clone, node.WorkerID(5): stray,
	} {
		if err := net.AddNode(id, h); err != nil {
			t.Fatal(err)
		}
	}
	net.Start()
	defer net.Close()

	// Bind slot 4 onto worker 1 before any clone traffic (FIFO per inbox).
	if err := net.Inject(node.Scheduler, node.ServerID(0), &msg.CloneNotice{Slot: 4, Target: 1}); err != nil {
		t.Fatal(err)
	}

	grad := func(k int) []float64 {
		return []float64{1, float64(k % 7), -1, float64(k % 3)}
	}
	push := func(from node.ID, k int) {
		if err := net.Inject(from, node.ServerID(0), &msg.PushReq{
			Seq: uint64(k + 1), Iter: int64(k), PullVersion: 0, Dense: grad(k),
		}); err != nil {
			t.Error(err)
		}
	}
	var wg sync.WaitGroup
	for _, from := range []node.ID{node.WorkerID(1), node.WorkerID(4)} {
		from := from
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < iters; k++ {
				push(from, k)
			}
		}()
	}
	wg.Wait()
	// A push from an unaliased spare slot must be dropped, not applied.
	push(node.WorkerID(5), 0)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, dropped := srv.CloneStats()
		if orig.count() == iters && clone.count() == iters && dropped == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if orig.count() != iters || clone.count() != iters {
		t.Fatalf("acks: original %d, clone %d, want %d each", orig.count(), clone.count(), iters)
	}

	// Exactly one apply per iteration, whoever won it.
	if v := srv.Version(); v != iters {
		t.Errorf("server version %d, want %d applies", v, iters)
	}
	deduped, dropped := srv.CloneStats()
	if deduped != iters {
		t.Errorf("deduped %d pushes, want %d (one loser per iteration)", deduped, iters)
	}
	if dropped != 1 {
		t.Errorf("dropped %d unaliased pushes, want 1", dropped)
	}
	if stray.count() != 0 {
		t.Errorf("unaliased spare got %d acks, want 0 (retry resolves it)", stray.count())
	}

	// The applied sequence equals a serial single-worker run: w -= lr * g_k.
	want := make(tensor.Vec, dim)
	for k := 0; k < iters; k++ {
		for d, g := range grad(k) {
			want[d] -= lr * g
		}
	}
	got := srv.Params()
	for d := range want {
		if diff := got[d] - want[d]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("params[%d] = %v, want %v (double-applied or skipped an iteration)", d, got[d], want[d])
		}
	}
}
