package live

import (
	"math/rand"
	"testing"
	"time"

	"specsync/internal/core"
	"specsync/internal/metrics"
	"specsync/internal/model"
	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/optimizer"
	"specsync/internal/ps"
	"specsync/internal/scheme"
	"specsync/internal/worker"
)

// TestNetworkTrainsTinyCluster runs the full training stack (servers,
// workers, SpecSync scheduler) on the in-process live runtime with real
// wall-clock timers, and verifies training progresses and loss decreases.
// This is the same node code the simulator runs — the test pins the
// two-runtimes-one-logic property.
func TestNetworkTrainsTinyCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock training test")
	}
	const (
		workers  = 3
		servers  = 2
		seed     = 21
		iterTime = 20 * time.Millisecond
	)
	mdl, err := model.NewLinReg(model.LinRegConfig{
		Dim: 12, N: 600, EvalN: 150, Shards: workers, Noise: 0.05,
		BatchSize: 16, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	ranges, err := ps.ShardRanges(mdl.Dim(), servers)
	if err != nil {
		t.Fatal(err)
	}
	initVec := mdl.Init(rand.New(rand.NewSource(seed)))
	lossBefore := mdl.EvalLoss(initVec)

	transfer := metrics.NewTransfer(msg.IsControl)
	net, err := NewNetwork(NetworkConfig{Registry: msg.Registry(), Seed: seed, Transfer: transfer})
	if err != nil {
		t.Fatal(err)
	}

	srvs := make([]*ps.Server, servers)
	for i := 0; i < servers; i++ {
		opt, err := optimizer.NewSGD(optimizer.SGDConfig{Schedule: optimizer.Const(0.05)}, ranges[i].Len())
		if err != nil {
			t.Fatal(err)
		}
		srvs[i], err = ps.New(ps.Config{
			Range: ranges[i], Init: initVec[ranges[i].Lo:ranges[i].Hi], Optimizer: opt,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.AddNode(node.ServerID(i), srvs[i]); err != nil {
			t.Fatal(err)
		}
	}
	sc := scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive}
	wks := make([]*worker.Worker, workers)
	for i := 0; i < workers; i++ {
		wk, err := worker.New(worker.Config{
			Index: i, Shards: ranges, Model: mdl, Scheme: sc,
			Compute:  worker.ComputeModel{Base: iterTime, Speed: 1, JitterSigma: 0.2},
			MaxIters: 40,
		})
		if err != nil {
			t.Fatal(err)
		}
		wks[i] = wk
		if err := net.AddNode(node.WorkerID(i), wk); err != nil {
			t.Fatal(err)
		}
	}
	sched, err := core.NewScheduler(core.SchedulerConfig{
		Workers: workers, Scheme: sc, InitialSpan: iterTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode(node.Scheduler, sched); err != nil {
		t.Fatal(err)
	}

	net.Start()
	defer net.Close()

	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		stopped := 0
		for _, wk := range wks {
			if wk.Stopped() {
				stopped++
			}
		}
		if stopped == workers {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	var total int64
	for i, wk := range wks {
		if !wk.Stopped() {
			t.Fatalf("worker %d did not finish (did %d iterations)", i, wk.IterationsDone())
		}
		total += wk.IterationsDone()
	}
	if total != 40*workers {
		t.Errorf("total iterations = %d, want %d", total, 40*workers)
	}

	// Loss must have decreased. Reading shard state after Close is safe:
	// all mailbox goroutines have exited.
	net.Close()
	final := make([]float64, mdl.Dim())
	for i, r := range ranges {
		copy(final[r.Lo:r.Hi], srvs[i].Params())
	}
	lossAfter := mdl.EvalLoss(final)
	if lossAfter >= lossBefore*0.5 {
		t.Errorf("loss did not halve over live training: %.4f -> %.4f", lossBefore, lossAfter)
	}
	if transfer.TotalBytes() == 0 {
		t.Error("no transfer recorded")
	}
	if sched.Epoch() == 0 {
		t.Error("scheduler saw no epochs")
	}
}
