// Package live runs the same node.Handler state machines that the simulator
// runs, but on real goroutines and wall-clock time. Two runtimes are
// provided: Network (in-process, mailbox-to-mailbox) and TCPHost (one node
// per process/port over the TCP transport). Every node gets a mailbox
// goroutine that serializes its callbacks, preserving the execution model
// the handlers were written against.
package live

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"specsync/internal/node"
	"specsync/internal/wire"
)

// TransferRecorder mirrors des.TransferRecorder for live byte accounting.
type TransferRecorder interface {
	RecordTransfer(from, to node.ID, kind wire.Kind, bytes int, at time.Time)
}

// NetworkConfig configures an in-process live network.
type NetworkConfig struct {
	// Registry decodes messages. Required.
	Registry *wire.Registry
	// Seed derives per-node RNG streams.
	Seed int64
	// Transfer, if non-nil, receives one record per message.
	Transfer TransferRecorder
	// Debug enables stderr logging from node Logf calls.
	Debug bool
}

// Network is an in-process live runtime: every added node runs a mailbox
// goroutine; sends are marshal + unmarshal through the wire codec (so byte
// accounting and value semantics match the simulator exactly).
type Network struct {
	cfg     NetworkConfig
	mu      sync.RWMutex
	nodes   map[node.ID]*liveNode
	started bool
	closed  bool
	wg      sync.WaitGroup
}

// NewNetwork builds an empty network.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("live: config requires a wire registry")
	}
	return &Network{cfg: cfg, nodes: make(map[node.ID]*liveNode)}, nil
}

// AddNode registers a handler. All nodes must be added before Start.
func (n *Network) AddNode(id node.ID, h node.Handler) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return fmt.Errorf("live: AddNode(%s) after Start", id)
	}
	if _, dup := n.nodes[id]; dup {
		return fmt.Errorf("live: duplicate node %s", id)
	}
	if h == nil {
		return fmt.Errorf("live: nil handler for %s", id)
	}
	ln := &liveNode{
		net:     n,
		id:      id,
		handler: h,
		inbox:   newQueue(),
		rng:     rand.New(rand.NewSource(node.RandSeed(n.cfg.Seed, id))),
	}
	n.nodes[id] = ln
	return nil
}

// Start initializes every node (in sorted ID order, matching the simulator)
// and launches the mailbox loops.
func (n *Network) Start() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	ids := make([]node.ID, 0, len(n.nodes))
	for id := range n.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	nodes := make([]*liveNode, 0, len(ids))
	for _, id := range ids {
		nodes = append(nodes, n.nodes[id])
	}
	n.mu.Unlock()

	// Init runs on the mailbox goroutine as its first item, so handlers can
	// send from Init and still have every peer's mailbox accepting.
	for _, ln := range nodes {
		ln := ln
		ln.inbox.push(func() { ln.handler.Init(ln) })
	}
	for _, ln := range nodes {
		ln := ln
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			ln.loop()
		}()
	}
}

// Close stops all mailboxes and waits for their goroutines to exit. Pending
// timers are stopped.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	nodes := make([]*liveNode, 0, len(n.nodes))
	for _, ln := range n.nodes {
		nodes = append(nodes, ln)
	}
	n.mu.Unlock()

	for _, ln := range nodes {
		ln.stopTimers()
		ln.inbox.close()
	}
	n.wg.Wait()
}

// Inject delivers a message to a node as if sent by from. Drivers use it to
// start/stop training from outside the node graph.
func (n *Network) Inject(from, to node.ID, m wire.Message) error {
	n.mu.RLock()
	dst, ok := n.nodes[to]
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("live: unknown node %s", to)
	}
	data := wire.Marshal(m)
	decoded, err := n.cfg.Registry.Unmarshal(data)
	if err != nil {
		return fmt.Errorf("live: inject: %w", err)
	}
	dst.inbox.push(func() { dst.handler.Receive(from, decoded) })
	return nil
}

// send routes a message between nodes (marshal at the sender, decode at the
// receiver's mailbox).
func (n *Network) send(from, to node.ID, m wire.Message) {
	n.mu.RLock()
	dst, ok := n.nodes[to]
	n.mu.RUnlock()
	if !ok {
		if n.cfg.Debug {
			fmt.Fprintf(os.Stderr, "live: %s -> unknown node %s dropped\n", from, to)
		}
		return
	}
	data := wire.Marshal(m)
	if n.cfg.Transfer != nil {
		n.cfg.Transfer.RecordTransfer(from, to, m.Kind(), len(data), time.Now())
	}
	dst.inbox.push(func() {
		decoded, err := n.cfg.Registry.Unmarshal(data)
		if err != nil {
			if n.cfg.Debug {
				fmt.Fprintf(os.Stderr, "live: decode from %s to %s: %v\n", from, to, err)
			}
			return
		}
		dst.handler.Receive(from, decoded)
	})
}

// liveNode implements node.Context over a mailbox and real timers.
type liveNode struct {
	net     *Network
	id      node.ID
	handler node.Handler
	inbox   *queue
	rng     *rand.Rand

	timerMu sync.Mutex
	timers  map[*time.Timer]struct{}
}

var _ node.Context = (*liveNode)(nil)

func (ln *liveNode) Self() node.ID    { return ln.id }
func (ln *liveNode) Now() time.Time   { return time.Now() }
func (ln *liveNode) Rand() *rand.Rand { return ln.rng }

func (ln *liveNode) Send(to node.ID, m wire.Message) {
	ln.net.send(ln.id, to, m)
}

func (ln *liveNode) After(d time.Duration, f func()) node.CancelFunc {
	if d < 0 {
		d = 0
	}
	var canceled bool
	var mu sync.Mutex
	var t *time.Timer
	t = time.AfterFunc(d, func() {
		ln.forgetTimer(t)
		ln.inbox.push(func() {
			mu.Lock()
			c := canceled
			mu.Unlock()
			if !c {
				f()
			}
		})
	})
	ln.rememberTimer(t)
	return func() {
		mu.Lock()
		canceled = true
		mu.Unlock()
		if t.Stop() {
			ln.forgetTimer(t)
		}
	}
}

func (ln *liveNode) Logf(format string, args ...any) {
	if ln.net.cfg.Debug {
		fmt.Fprintf(os.Stderr, "[live] %-10s "+format+"\n", append([]any{ln.id}, args...)...)
	}
}

func (ln *liveNode) loop() {
	for {
		f, ok := ln.inbox.pop()
		if !ok {
			return
		}
		f()
	}
}

func (ln *liveNode) rememberTimer(t *time.Timer) {
	ln.timerMu.Lock()
	defer ln.timerMu.Unlock()
	if ln.timers == nil {
		ln.timers = make(map[*time.Timer]struct{})
	}
	ln.timers[t] = struct{}{}
}

func (ln *liveNode) forgetTimer(t *time.Timer) {
	ln.timerMu.Lock()
	defer ln.timerMu.Unlock()
	delete(ln.timers, t)
}

func (ln *liveNode) stopTimers() {
	ln.timerMu.Lock()
	defer ln.timerMu.Unlock()
	for t := range ln.timers {
		t.Stop()
	}
	ln.timers = nil
}
