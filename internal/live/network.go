// Package live runs the same node.Handler state machines that the simulator
// runs, but on real goroutines and wall-clock time. Two runtimes are
// provided: Network (in-process, mailbox-to-mailbox) and TCPHost (one node
// per process/port over the TCP transport). Every node gets a mailbox
// goroutine that serializes its callbacks, preserving the execution model
// the handlers were written against.
package live

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"specsync/internal/node"
	"specsync/internal/obs"
	"specsync/internal/wire"
)

// TransferRecorder mirrors des.TransferRecorder for live byte accounting.
type TransferRecorder interface {
	RecordTransfer(from, to node.ID, kind wire.Kind, bytes int, at time.Time)
}

// FaultAction tells the live network what to do with one message; the zero
// value delivers normally. It mirrors des.FaultAction so the same fault
// plans drive both runtimes.
type FaultAction struct {
	Drop      bool
	Duplicate bool
	Delay     time.Duration
}

// FaultHook decides the fault action for each message at send time. It is
// called from sender goroutines, possibly concurrently, and must be safe
// for concurrent use.
type FaultHook func(from, to node.ID, kind wire.Kind) FaultAction

// NetworkConfig configures an in-process live network.
type NetworkConfig struct {
	// Registry decodes messages. Required.
	Registry *wire.Registry
	// Seed derives per-node RNG streams.
	Seed int64
	// Transfer, if non-nil, receives one record per message.
	Transfer TransferRecorder
	// Fault, if non-nil, is consulted for every message.
	Fault FaultHook
	// Metrics, if non-nil, receives transport counters (messages delivered,
	// aggregate mailbox depth).
	Metrics *obs.Registry
	// Debug enables stderr logging from node Logf calls.
	Debug bool
}

// Network is an in-process live runtime: every added node runs a mailbox
// goroutine; sends are marshal + unmarshal through the wire codec (so byte
// accounting and value semantics match the simulator exactly).
type Network struct {
	cfg     NetworkConfig
	mu      sync.RWMutex
	nodes   map[node.ID]*liveNode
	started bool
	closed  bool
	wg      sync.WaitGroup

	// Optional transport telemetry (NetworkConfig.Metrics).
	metDelivered *obs.Counter
	metMailbox   *obs.Gauge
}

// NewNetwork builds an empty network.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("live: config requires a wire registry")
	}
	n := &Network{cfg: cfg, nodes: make(map[node.ID]*liveNode)}
	if reg := cfg.Metrics; reg != nil {
		n.metDelivered = reg.Counter("specsync_live_delivered_total", "Messages delivered to node mailboxes.")
		n.metMailbox = reg.Gauge("specsync_live_mailbox_depth", "Messages queued across all node mailboxes.")
	}
	return n, nil
}

// AddNode registers a handler. All nodes must be added before Start.
func (n *Network) AddNode(id node.ID, h node.Handler) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return fmt.Errorf("live: AddNode(%s) after Start", id)
	}
	if _, dup := n.nodes[id]; dup {
		return fmt.Errorf("live: duplicate node %s", id)
	}
	if h == nil {
		return fmt.Errorf("live: nil handler for %s", id)
	}
	ln := &liveNode{
		net:     n,
		id:      id,
		handler: h,
		inbox:   newQueue(),
		rng:     rand.New(rand.NewSource(node.RandSeed(n.cfg.Seed, id))),
	}
	n.nodes[id] = ln
	return nil
}

// Start initializes every node (in sorted ID order, matching the simulator)
// and launches the mailbox loops.
func (n *Network) Start() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	ids := make([]node.ID, 0, len(n.nodes))
	for id := range n.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	nodes := make([]*liveNode, 0, len(ids))
	for _, id := range ids {
		nodes = append(nodes, n.nodes[id])
	}
	n.mu.Unlock()

	// Init runs on the mailbox goroutine as its first item, so handlers can
	// send from Init and still have every peer's mailbox accepting.
	for _, ln := range nodes {
		ln := ln
		gen := ln.currentGen()
		ln.inbox.push(func() {
			if h, ok := ln.alive(gen); ok {
				h.Init(ln)
			}
		})
	}
	for _, ln := range nodes {
		ln := ln
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			ln.loop()
		}()
	}
}

// Join registers a handler mid-run (elastic scale-up): its mailbox loop
// starts immediately with Init as the first item. Use AddNode before Start;
// Join after.
func (n *Network) Join(id node.ID, h node.Handler) error {
	if h == nil {
		return fmt.Errorf("live: nil handler for %s", id)
	}
	n.mu.Lock()
	if !n.started || n.closed {
		n.mu.Unlock()
		return fmt.Errorf("live: Join(%s) outside a running network", id)
	}
	if _, dup := n.nodes[id]; dup {
		n.mu.Unlock()
		return fmt.Errorf("live: duplicate node %s", id)
	}
	ln := &liveNode{
		net:     n,
		id:      id,
		handler: h,
		inbox:   newQueue(),
		rng:     rand.New(rand.NewSource(node.RandSeed(n.cfg.Seed, id))),
	}
	n.nodes[id] = ln
	n.wg.Add(1)
	n.mu.Unlock()

	gen := ln.currentGen()
	ln.inbox.push(func() {
		if h2, ok := ln.alive(gen); ok {
			h2.Init(ln)
		}
	})
	go func() {
		defer n.wg.Done()
		ln.loop()
	}()
	return nil
}

// Close stops all mailboxes and waits for their goroutines to exit. Pending
// timers are stopped.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	nodes := make([]*liveNode, 0, len(n.nodes))
	for _, ln := range n.nodes {
		nodes = append(nodes, ln)
	}
	n.mu.Unlock()

	for _, ln := range nodes {
		ln.stopTimers()
		ln.inbox.close()
	}
	n.wg.Wait()
}

// Inject delivers a message to a node as if sent by from. Drivers use it to
// start/stop training from outside the node graph.
func (n *Network) Inject(from, to node.ID, m wire.Message) error {
	n.mu.RLock()
	dst, ok := n.nodes[to]
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("live: unknown node %s", to)
	}
	data := wire.Marshal(m)
	decoded, err := n.cfg.Registry.Unmarshal(data)
	if err != nil {
		return fmt.Errorf("live: inject: %w", err)
	}
	gen := dst.currentGen()
	dst.inbox.push(func() {
		if h, ok := dst.alive(gen); ok {
			h.Receive(from, decoded)
		}
	})
	return nil
}

// Crash marks a node as failed: its pending timers are stopped, messages
// addressed to it are lost, and queued deliveries to the old incarnation are
// discarded when the mailbox reaches them. Revive it with Restart.
func (n *Network) Crash(id node.ID) error {
	n.mu.RLock()
	ln, ok := n.nodes[id]
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("live: Crash(%s): unknown node", id)
	}
	ln.stateMu.Lock()
	if ln.down {
		ln.stateMu.Unlock()
		return fmt.Errorf("live: Crash(%s): already down", id)
	}
	ln.down = true
	ln.gen++
	ln.stateMu.Unlock()
	ln.stopTimers()
	return nil
}

// Restart revives a crashed node as a fresh incarnation. A non-nil handler
// replaces the state machine (crash loses state); nil keeps the existing
// handler object (for state restored out of band). Init runs as the next
// mailbox item.
func (n *Network) Restart(id node.ID, h node.Handler) error {
	n.mu.RLock()
	ln, ok := n.nodes[id]
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("live: Restart(%s): unknown node", id)
	}
	ln.stateMu.Lock()
	if !ln.down {
		ln.stateMu.Unlock()
		return fmt.Errorf("live: Restart(%s): not down", id)
	}
	if h != nil {
		ln.handler = h
	}
	ln.down = false
	ln.gen++
	gen := ln.gen
	ln.stateMu.Unlock()
	ln.inbox.push(func() {
		if h2, ok := ln.alive(gen); ok {
			h2.Init(ln)
		}
	})
	return nil
}

// Quiesce blocks until id's event loop has finished every callback enqueued
// before this call, including one mid-execution. After Crash(id) + Quiesce(id)
// the node's handler is guaranteed to run no further callbacks, so its state
// may be handed to a new owner — replica promotion reuses the caught-up
// backup's handler object under the shard's primary ID.
func (n *Network) Quiesce(id node.ID) error {
	n.mu.RLock()
	ln, ok := n.nodes[id]
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("live: Quiesce(%s): unknown node", id)
	}
	done := make(chan struct{})
	if !ln.inbox.push(func() { close(done) }) {
		return nil // queue closed: the loop has already drained and exited
	}
	<-done
	return nil
}

// Down reports whether a node is currently crashed.
func (n *Network) Down(id node.ID) bool {
	n.mu.RLock()
	ln, ok := n.nodes[id]
	n.mu.RUnlock()
	if !ok {
		return false
	}
	ln.stateMu.Lock()
	defer ln.stateMu.Unlock()
	return ln.down
}

// send routes a message between nodes (marshal at the sender, decode at the
// receiver's mailbox), applying the fault hook.
func (n *Network) send(from, to node.ID, m wire.Message) {
	n.mu.RLock()
	dst, ok := n.nodes[to]
	n.mu.RUnlock()
	if !ok {
		if n.cfg.Debug {
			fmt.Fprintf(os.Stderr, "live: %s -> unknown node %s dropped\n", from, to)
		}
		return
	}
	var act FaultAction
	if n.cfg.Fault != nil {
		act = n.cfg.Fault(from, to, m.Kind())
	}
	if act.Drop {
		return
	}
	data := wire.Marshal(m)
	copies := 1
	if act.Duplicate {
		copies = 2
	}
	for c := 0; c < copies; c++ {
		if n.cfg.Transfer != nil {
			n.cfg.Transfer.RecordTransfer(from, to, m.Kind(), len(data), time.Now())
		}
		deliver := func() { dst.enqueue(from, to, data, n) }
		if act.Delay > 0 {
			time.AfterFunc(act.Delay, deliver)
		} else {
			deliver()
		}
	}
}

// enqueue queues one encoded message for delivery, gated on the receiver
// still being the same live incarnation when the mailbox reaches it.
func (ln *liveNode) enqueue(from, to node.ID, data []byte, n *Network) {
	gen := ln.currentGen()
	n.metMailbox.Add(1)
	ln.inbox.push(func() {
		n.metMailbox.Add(-1)
		h, ok := ln.alive(gen)
		if !ok {
			return // receiver crashed (or restarted) after the send
		}
		decoded, err := n.cfg.Registry.Unmarshal(data)
		if err != nil {
			if n.cfg.Debug {
				fmt.Fprintf(os.Stderr, "live: decode from %s to %s: %v\n", from, to, err)
			}
			return
		}
		n.metDelivered.Inc()
		h.Receive(from, decoded)
	})
}

// liveNode implements node.Context over a mailbox and real timers.
type liveNode struct {
	net   *Network
	id    node.ID
	inbox *queue
	rng   *rand.Rand

	// stateMu guards the crash/restart state. down marks the node failed;
	// gen counts incarnations, so queued deliveries and timers from a
	// previous life are discarded (see enqueue / alive).
	stateMu sync.Mutex
	handler node.Handler
	down    bool
	gen     uint64

	timerMu sync.Mutex
	timers  map[*time.Timer]struct{}
}

// currentGen reads the node's incarnation counter.
func (ln *liveNode) currentGen() uint64 {
	ln.stateMu.Lock()
	defer ln.stateMu.Unlock()
	return ln.gen
}

// alive returns the handler iff the node is up and still incarnation gen.
func (ln *liveNode) alive(gen uint64) (node.Handler, bool) {
	ln.stateMu.Lock()
	defer ln.stateMu.Unlock()
	if ln.down || ln.gen != gen {
		return nil, false
	}
	return ln.handler, true
}

var _ node.Context = (*liveNode)(nil)

func (ln *liveNode) Self() node.ID    { return ln.id }
func (ln *liveNode) Now() time.Time   { return time.Now() }
func (ln *liveNode) Rand() *rand.Rand { return ln.rng }

func (ln *liveNode) Send(to node.ID, m wire.Message) {
	ln.net.send(ln.id, to, m)
}

func (ln *liveNode) After(d time.Duration, f func()) node.CancelFunc {
	if d < 0 {
		d = 0
	}
	gen := ln.currentGen()
	var canceled bool
	var mu sync.Mutex // guards canceled and t
	var t *time.Timer
	mu.Lock()
	t = time.AfterFunc(d, func() {
		mu.Lock()
		tt := t
		mu.Unlock()
		ln.forgetTimer(tt)
		ln.inbox.push(func() {
			if _, ok := ln.alive(gen); !ok {
				return // timer from a crashed (or previous) incarnation
			}
			mu.Lock()
			c := canceled
			mu.Unlock()
			if !c {
				f()
			}
		})
	})
	mu.Unlock()
	ln.rememberTimer(t)
	return func() {
		mu.Lock()
		canceled = true
		mu.Unlock()
		if t.Stop() {
			ln.forgetTimer(t)
		}
	}
}

func (ln *liveNode) Logf(format string, args ...any) {
	if ln.net.cfg.Debug {
		fmt.Fprintf(os.Stderr, "[live] %-10s "+format+"\n", append([]any{ln.id}, args...)...)
	}
}

func (ln *liveNode) loop() {
	for {
		f, ok := ln.inbox.pop()
		if !ok {
			return
		}
		f()
	}
}

func (ln *liveNode) rememberTimer(t *time.Timer) {
	ln.timerMu.Lock()
	defer ln.timerMu.Unlock()
	if ln.timers == nil {
		ln.timers = make(map[*time.Timer]struct{})
	}
	ln.timers[t] = struct{}{}
}

func (ln *liveNode) forgetTimer(t *time.Timer) {
	ln.timerMu.Lock()
	defer ln.timerMu.Unlock()
	delete(ln.timers, t)
}

func (ln *liveNode) stopTimers() {
	ln.timerMu.Lock()
	defer ln.timerMu.Unlock()
	for t := range ln.timers {
		t.Stop()
	}
	ln.timers = nil
}
