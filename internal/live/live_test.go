package live

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/wire"
)

// pingHandler counts received Notify messages and can echo them back.
type pingHandler struct {
	ctx   node.Context
	mu    sync.Mutex
	seen  []int64
	echo  bool
	inits atomic.Int32
}

func (p *pingHandler) Init(ctx node.Context) {
	p.ctx = ctx
	p.inits.Add(1)
}

func (p *pingHandler) Receive(from node.ID, m wire.Message) {
	if n, ok := m.(*msg.Notify); ok {
		p.mu.Lock()
		p.seen = append(p.seen, n.Iter)
		p.mu.Unlock()
		if p.echo {
			p.ctx.Send(from, &msg.Notify{Iter: n.Iter + 100})
		}
	}
}

func (p *pingHandler) count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.seen)
}

func TestQueueFIFOAndClose(t *testing.T) {
	q := newQueue()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		if !q.push(func() { got = append(got, i) }) {
			t.Fatal("push on open queue failed")
		}
	}
	q.close()
	if q.push(func() {}) {
		t.Error("push after close should fail")
	}
	for {
		f, ok := q.pop()
		if !ok {
			break
		}
		f()
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(NetworkConfig{}); err == nil {
		t.Error("expected registry error")
	}
	n, err := NewNetwork(NetworkConfig{Registry: msg.Registry()})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode("worker/0", &pingHandler{}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode("worker/0", &pingHandler{}); err == nil {
		t.Error("expected duplicate error")
	}
	if err := n.AddNode("worker/1", nil); err == nil {
		t.Error("expected nil handler error")
	}
	n.Start()
	defer n.Close()
	if err := n.AddNode("worker/2", &pingHandler{}); err == nil {
		t.Error("expected post-start error")
	}
}

func TestNetworkRoundTrip(t *testing.T) {
	n, err := NewNetwork(NetworkConfig{Registry: msg.Registry(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := &pingHandler{}
	b := &pingHandler{echo: true}
	if err := n.AddNode("worker/0", a); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode("worker/1", b); err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Close()

	if err := n.Inject("worker/0", "worker/1", &msg.Notify{Iter: 7}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for a.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.count() != 1 {
		t.Fatal("echo never arrived")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.seen[0] != 107 {
		t.Errorf("echo iter = %d, want 107", a.seen[0])
	}
}

func TestNetworkInitRunsOnce(t *testing.T) {
	n, err := NewNetwork(NetworkConfig{Registry: msg.Registry()})
	if err != nil {
		t.Fatal(err)
	}
	h := &pingHandler{}
	if err := n.AddNode("worker/0", h); err != nil {
		t.Fatal(err)
	}
	n.Start()
	n.Start() // idempotent
	time.Sleep(10 * time.Millisecond)
	n.Close()
	n.Close() // idempotent
	if got := h.inits.Load(); got != 1 {
		t.Errorf("Init ran %d times", got)
	}
}

func TestNetworkTimerAndCancel(t *testing.T) {
	n, err := NewNetwork(NetworkConfig{Registry: msg.Registry()})
	if err != nil {
		t.Fatal(err)
	}
	h := &pingHandler{}
	if err := n.AddNode("worker/0", h); err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Close()

	// Wait for Init to run on the mailbox.
	deadline := time.Now().Add(time.Second)
	for h.inits.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	var fired, canceledFired atomic.Bool
	done := make(chan struct{})
	h.ctx.After(10*time.Millisecond, func() {
		fired.Store(true)
		close(done)
	})
	cancel := h.ctx.After(5*time.Millisecond, func() { canceledFired.Store(true) })
	cancel()
	cancel() // double-cancel safe

	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	if canceledFired.Load() {
		t.Error("canceled timer fired")
	}
	if !fired.Load() {
		t.Error("timer did not fire")
	}
}

func TestNetworkUnknownDestinationDropped(t *testing.T) {
	n, err := NewNetwork(NetworkConfig{Registry: msg.Registry()})
	if err != nil {
		t.Fatal(err)
	}
	h := &pingHandler{}
	if err := n.AddNode("worker/0", h); err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Close()
	if err := n.Inject("x", "worker/99", &msg.Notify{}); err == nil {
		t.Error("Inject to unknown node should error")
	}
	// Node-to-node send to unknown id must not panic.
	deadline := time.Now().Add(time.Second)
	for h.inits.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	h.ctx.Send("worker/99", &msg.Notify{})
}

type byteCounter struct {
	bytes atomic.Int64
}

func (b *byteCounter) RecordTransfer(from, to node.ID, kind wire.Kind, n int, at time.Time) {
	b.bytes.Add(int64(n))
}

func TestNetworkTransferAccounting(t *testing.T) {
	bc := &byteCounter{}
	n, err := NewNetwork(NetworkConfig{Registry: msg.Registry(), Transfer: bc})
	if err != nil {
		t.Fatal(err)
	}
	a, b := &pingHandler{}, &pingHandler{}
	if err := n.AddNode("worker/0", a); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode("worker/1", b); err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Close()
	deadline := time.Now().Add(time.Second)
	for a.inits.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	a.ctx.Send("worker/1", &msg.Notify{Iter: 1})
	for b.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if bc.bytes.Load() == 0 {
		t.Error("no bytes recorded")
	}
}
