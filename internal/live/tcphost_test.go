package live

import (
	"math/rand"
	"testing"
	"time"

	"specsync/internal/core"
	"specsync/internal/model"
	"specsync/internal/msg"
	"specsync/internal/node"
	"specsync/internal/optimizer"
	"specsync/internal/ps"
	"specsync/internal/scheme"
	"specsync/internal/worker"
)

// TestTCPClusterEndToEnd runs a real 2-worker training cluster over TCP
// loopback: scheduler, one server shard, two workers, all in separate
// TCPHosts. It verifies that iterations complete and notify flow works over
// the actual wire.
func TestTCPClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP cluster")
	}
	reg := msg.Registry()

	mdl, err := model.NewLinReg(model.LinRegConfig{
		Dim: 16, N: 400, EvalN: 100, Shards: 2, Noise: 0.1, BatchSize: 16, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ranges, err := ps.ShardRanges(mdl.Dim(), 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := optimizer.NewSGD(optimizer.SGDConfig{Schedule: optimizer.Const(0.05)}, mdl.Dim())
	if err != nil {
		t.Fatal(err)
	}
	initW := mdl.Init(rand.New(rand.NewSource(42)))
	srv, err := ps.New(ps.Config{Range: ranges[0], Init: initW, Optimizer: opt})
	if err != nil {
		t.Fatal(err)
	}

	sched, err := core.NewScheduler(core.SchedulerConfig{
		Workers: 2,
		Scheme:  scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive},
		// 40ms nominal iterations keep the test fast.
		InitialSpan: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	workers := make([]*worker.Worker, 2)
	for i := range workers {
		wk, err := worker.New(worker.Config{
			Index:   i,
			Shards:  ranges,
			Model:   mdl,
			Scheme:  scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive},
			Compute: worker.ComputeModel{Base: 40 * time.Millisecond, Speed: 1, JitterSigma: 0.2},
		})
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = wk
	}

	// Start hosts: server first, then workers, then the scheduler (whose
	// Init broadcasts Start).
	hosts := map[node.ID]*TCPHost{}
	addHost := func(id node.ID, h node.Handler) *TCPHost {
		t.Helper()
		host, err := NewTCPHost(TCPHostConfig{
			ID: id, Handler: h, ListenAddr: "127.0.0.1:0", Registry: reg, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		hosts[id] = host
		t.Cleanup(host.Close)
		return host
	}
	addHost(node.ServerID(0), srv)
	for i, wk := range workers {
		addHost(node.WorkerID(i), wk)
	}
	schedHost := addHost(node.Scheduler, sched)

	// Wire the address book (everyone knows everyone).
	for id, h := range hosts {
		for peer, ph := range hosts {
			if peer != id {
				h.AddPeer(peer, ph.Addr())
			}
		}
	}
	// The scheduler broadcast Start during Init, before the address book
	// was complete; kick the workers again to be safe.
	for i := range workers {
		schedHost.Send(node.WorkerID(i), &msg.Start{})
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		done := int64(0)
		for _, wk := range workers {
			done += wk.IterationsDone()
		}
		if done >= 20 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	var total int64
	for _, wk := range workers {
		total += wk.IterationsDone()
	}
	if total < 20 {
		t.Fatalf("only %d iterations completed over TCP", total)
	}
	if srv.Version() < 20 {
		t.Errorf("server applied %d pushes", srv.Version())
	}
}
