package live

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"specsync/internal/metrics"
	"specsync/internal/node"
	"specsync/internal/obs"
	"specsync/internal/transport"
	"specsync/internal/wire"
)

// TCPHostConfig configures a single node hosted over the TCP transport,
// typically one per process (cmd/specsync-node).
type TCPHostConfig struct {
	// ID is this node's identity.
	ID node.ID
	// Handler is the node logic.
	Handler node.Handler
	// ListenAddr is where peers reach this node (e.g. "127.0.0.1:7000").
	ListenAddr string
	// Peers maps every other node's ID to its address.
	Peers map[node.ID]string
	// Registry decodes messages. Required.
	Registry *wire.Registry
	// Seed derives this node's RNG stream.
	Seed int64
	// Transfer, if non-nil, records outbound bytes.
	Transfer TransferRecorder
	// Metrics, if non-nil, receives transport counters (frames received,
	// mailbox depth, send failures).
	Metrics *obs.Registry
	// Faults, if non-nil, counts exhausted-retry send failures.
	Faults *metrics.Faults
	// Debug enables stderr logging.
	Debug bool
}

// TCPHost runs one node.Handler over TCP: inbound frames are enqueued onto
// the node's mailbox, preserving the serialized-callback execution model.
type TCPHost struct {
	cfg   TCPHostConfig
	tr    *transport.TCP
	inbox *queue
	rng   *rand.Rand
	wg    sync.WaitGroup

	timerMu sync.Mutex
	timers  map[*time.Timer]struct{}
	closed  bool

	// Optional transport telemetry (TCPHostConfig.Metrics).
	metReceived *obs.Counter
	metMailbox  *obs.Gauge
	metSendFail *obs.Counter
}

var _ node.Context = (*TCPHost)(nil)

// NewTCPHost opens the transport and starts the mailbox. The handler's Init
// runs as the first mailbox item.
func NewTCPHost(cfg TCPHostConfig) (*TCPHost, error) {
	if cfg.Handler == nil {
		return nil, fmt.Errorf("live: nil handler")
	}
	if cfg.Registry == nil {
		return nil, fmt.Errorf("live: config requires a wire registry")
	}
	h := &TCPHost{
		cfg:    cfg,
		inbox:  newQueue(),
		rng:    rand.New(rand.NewSource(node.RandSeed(cfg.Seed, cfg.ID))),
		timers: make(map[*time.Timer]struct{}),
	}
	if reg := cfg.Metrics; reg != nil {
		h.metReceived = reg.Counter("specsync_live_delivered_total", "Messages delivered to the node mailbox.")
		h.metMailbox = reg.Gauge("specsync_live_mailbox_depth", "Messages queued in the node mailbox.")
		h.metSendFail = reg.Counter("specsync_live_send_failures_total", "Sends dropped after exhausting transport retries.")
	}
	tr, err := transport.ListenTCP(transport.TCPConfig{
		ID:         cfg.ID,
		ListenAddr: cfg.ListenAddr,
		Peers:      cfg.Peers,
		Registry:   cfg.Registry,
		Transfer:   cfg.Transfer,
		OnMessage:  h.enqueue,
	})
	if err != nil {
		return nil, err
	}
	h.tr = tr

	h.inbox.push(func() { cfg.Handler.Init(h) })
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		for {
			f, ok := h.inbox.pop()
			if !ok {
				return
			}
			f()
		}
	}()
	return h, nil
}

// Addr returns the transport's bound address.
func (h *TCPHost) Addr() string { return h.tr.Addr() }

// AddPeer registers a peer address after startup.
func (h *TCPHost) AddPeer(id node.ID, addr string) { h.tr.AddPeer(id, addr) }

// enqueue is the single instrumented path onto the mailbox: transport
// deliveries, loopback sends, and injected messages all pass through here so
// the mailbox-depth gauge and delivered counter see every message.
func (h *TCPHost) enqueue(from node.ID, m wire.Message) {
	h.metMailbox.Add(1)
	h.inbox.push(func() {
		h.metMailbox.Add(-1)
		h.metReceived.Inc()
		h.cfg.Handler.Receive(from, m)
	})
}

// Inject enqueues a message onto this node's mailbox as if sent by from.
func (h *TCPHost) Inject(from node.ID, m wire.Message) {
	h.enqueue(from, m)
}

// Do runs f on the mailbox goroutine, serialized with message handling, and
// waits for it to finish. Checkpointing uses this to snapshot handler state
// without racing the message loop.
func (h *TCPHost) Do(f func()) {
	done := make(chan struct{})
	h.inbox.push(func() {
		f()
		close(done)
	})
	<-done
}

// Close stops the mailbox, timers, and transport.
func (h *TCPHost) Close() {
	h.timerMu.Lock()
	h.closed = true
	for t := range h.timers {
		t.Stop()
	}
	h.timers = nil
	h.timerMu.Unlock()

	h.inbox.close()
	h.wg.Wait()
	h.tr.Close()
}

// Self implements node.Context.
func (h *TCPHost) Self() node.ID { return h.cfg.ID }

// Now implements node.Context.
func (h *TCPHost) Now() time.Time { return time.Now() }

// Rand implements node.Context.
func (h *TCPHost) Rand() *rand.Rand { return h.rng }

// Send implements node.Context.
func (h *TCPHost) Send(to node.ID, m wire.Message) {
	if to == h.cfg.ID {
		// Loopback without touching the network.
		data := wire.Marshal(m)
		decoded, err := h.cfg.Registry.Unmarshal(data)
		if err != nil {
			h.Logf("loopback decode: %v", err)
			return
		}
		h.enqueue(h.cfg.ID, decoded)
		return
	}
	if err := h.tr.Send(to, m); err != nil {
		h.cfg.Faults.RecordSendFailure()
		h.metSendFail.Inc()
		h.Logf("send to %s: %v", to, err)
	}
}

// After implements node.Context.
func (h *TCPHost) After(d time.Duration, f func()) node.CancelFunc {
	if d < 0 {
		d = 0
	}
	var canceled bool
	var mu sync.Mutex // guards canceled and t
	var t *time.Timer
	mu.Lock()
	t = time.AfterFunc(d, func() {
		mu.Lock()
		tt := t
		mu.Unlock()
		h.forgetTimer(tt)
		h.inbox.push(func() {
			mu.Lock()
			c := canceled
			mu.Unlock()
			if !c {
				f()
			}
		})
	})
	mu.Unlock()
	h.rememberTimer(t)
	return func() {
		mu.Lock()
		canceled = true
		mu.Unlock()
		if t.Stop() {
			h.forgetTimer(t)
		}
	}
}

// Logf implements node.Context.
func (h *TCPHost) Logf(format string, args ...any) {
	if h.cfg.Debug {
		fmt.Fprintf(os.Stderr, "[tcp] %-10s "+format+"\n", append([]any{h.cfg.ID}, args...)...)
	}
}

func (h *TCPHost) rememberTimer(t *time.Timer) {
	h.timerMu.Lock()
	defer h.timerMu.Unlock()
	if h.closed {
		t.Stop()
		return
	}
	h.timers[t] = struct{}{}
}

func (h *TCPHost) forgetTimer(t *time.Timer) {
	h.timerMu.Lock()
	defer h.timerMu.Unlock()
	delete(h.timers, t)
}
