package live

import "sync"

// queue is an unbounded MPSC work queue. Unboundedness matters: two nodes
// that send to each other through bounded channels can deadlock when both
// buffers fill; mailboxes must always accept.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []func()
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues f. It reports false if the queue is closed.
func (q *queue) push(f func()) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, f)
	q.cond.Signal()
	return true
}

// pop blocks for the next item. ok is false once the queue is closed and
// drained.
func (q *queue) pop() (f func(), ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	f = q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return f, true
}

// close stops the queue; queued items are still drained by pop.
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}
