// Package codec implements the gradient/parameter compression layer that
// sits between the training protocol (internal/msg) and the wire encoding
// (internal/wire). SpecSync's speculation logic keys off push *arrival
// rates*, and under the simulator a message's transfer time is derived from
// its encoded byte count — so a codec does not just save bandwidth, it
// shifts push timing and therefore abort/re-sync dynamics.
//
// Four codecs are provided:
//
//	raw   — passthrough float64 blocks; the default, byte-identical to the
//	        legacy (v1) message layouts.
//	topk  — magnitude top-k sparsification: only the k largest-|v| entries
//	        of a gradient block travel, as index/value pairs.
//	q8    — stochastic 8-bit quantization with one float64 scale per block
//	        of Q8Block values.
//	delta — pull-side delta encoding: a shard resends only the entries that
//	        changed since the block it last sent that worker.
//
// topk and q8 are lossy; workers using them keep an error-feedback residual
// per shard (see State) so the dropped/rounded mass re-enters later pushes
// and convergence is preserved.
package codec

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"specsync/internal/wire"
)

// ID tags a codec on the wire (msg.PushReqV2.Codec / msg.PullRespV2.Codec).
// Values are part of the wire format; never renumber them.
type ID uint8

// Wire codec identifiers.
const (
	IDRaw   ID = 0
	IDTopK  ID = 1
	IDQ8    ID = 2
	IDDelta ID = 3
)

// String returns the codec's wire-format name.
func (id ID) String() string {
	switch id {
	case IDRaw:
		return "raw"
	case IDTopK:
		return "topk"
	case IDQ8:
		return "q8"
	case IDDelta:
		return "delta"
	default:
		return fmt.Sprintf("codec(%d)", uint8(id))
	}
}

// Codec encodes float64 blocks into self-describing payloads. Payloads decode
// without any codec parameters: everything a decoder needs (lengths, block
// sizes, scales) is in the payload, so only the one-byte ID travels alongside.
type Codec interface {
	// ID returns the codec's wire identifier.
	ID() ID
	// Name returns the codec's human-readable name (used as a metric label).
	Name() string
	// Lossless reports whether Decode(Encode(x)) reproduces x exactly.
	Lossless() bool
	// Encode appends the coded form of vals to w.
	//
	//   - base is the receiver's current copy of the block; only delta uses
	//     it (nil for the others). Decode must then run against a dst
	//     pre-filled with base.
	//   - recon, when non-nil (length len(vals)), is filled with the exact
	//     values Decode will reconstruct, so callers can maintain
	//     error-feedback residuals without a decode round-trip.
	//   - rng feeds stochastic codecs (q8's stochastic rounding);
	//     deterministic codecs ignore it, and a nil rng falls back to
	//     deterministic rounding.
	Encode(w *wire.Writer, vals, base, recon []float64, rng *rand.Rand)
	// Decode reads one block encoded by Encode into dst, whose length must
	// equal the original block's. Lossy sparsifying codecs (topk) zero the
	// entries they dropped; delta leaves unlisted entries at their base
	// values. Failures surface through r's sticky error.
	Decode(r *wire.Reader, dst []float64)
}

// DecodePayload decodes one self-contained payload produced by the codec
// with the given ID into dst. It rejects unknown IDs, short or trailing
// bytes, and length mismatches.
func DecodePayload(id ID, payload []byte, dst []float64) error {
	var c Codec
	switch id {
	case IDRaw:
		c = Raw{}
	case IDTopK:
		c = TopK{}
	case IDQ8:
		c = Q8{}
	case IDDelta:
		c = Delta{}
	default:
		return fmt.Errorf("codec: unknown codec id %d", uint8(id))
	}
	r := wire.NewReader(payload)
	c.Decode(r, dst)
	if err := r.Err(); err != nil {
		return fmt.Errorf("codec: decoding %s payload: %w", id, err)
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("codec: %s payload has %d trailing bytes", id, r.Remaining())
	}
	return nil
}

// EncodePayload encodes one block into a fresh byte slice using a pooled
// scratch writer. See Codec.Encode for the parameter contract.
func EncodePayload(c Codec, vals, base, recon []float64, rng *rand.Rand) []byte {
	w := wire.GetWriter()
	c.Encode(w, vals, base, recon, rng)
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	wire.PutWriter(w)
	return out
}

// blockLen reads and validates the leading element count every codec writes.
func blockLen(r *wire.Reader, dst []float64) (int, bool) {
	n := int(r.Uvarint())
	if r.Err() != nil {
		return 0, false
	}
	if n != len(dst) {
		r.Fail(fmt.Errorf("codec: payload is for %d values, want %d", n, len(dst)))
		return 0, false
	}
	return n, true
}

// Raw is the passthrough codec: full float64 blocks, no loss.
type Raw struct{}

// ID implements Codec.
func (Raw) ID() ID { return IDRaw }

// Name implements Codec.
func (Raw) Name() string { return "raw" }

// Lossless implements Codec.
func (Raw) Lossless() bool { return true }

// Encode implements Codec.
func (Raw) Encode(w *wire.Writer, vals, _, recon []float64, _ *rand.Rand) {
	w.Float64s(vals)
	if recon != nil {
		copy(recon, vals)
	}
}

// Decode implements Codec.
func (Raw) Decode(r *wire.Reader, dst []float64) {
	if _, ok := blockLen(r, dst); !ok {
		return
	}
	for i := range dst {
		dst[i] = r.Float64()
	}
}

// TopK keeps only the Frac·n entries of largest magnitude (at least one).
// The selection is deterministic: ties break toward the lower index.
type TopK struct {
	// Frac is the fraction of entries kept; zero means DefaultTopKFrac.
	Frac float64
}

// ID implements Codec.
func (TopK) ID() ID { return IDTopK }

// Name implements Codec.
func (TopK) Name() string { return "topk" }

// Lossless implements Codec.
func (TopK) Lossless() bool { return false }

// Encode implements Codec.
func (c TopK) Encode(w *wire.Writer, vals, _, recon []float64, _ *rand.Rand) {
	frac := c.Frac
	if frac == 0 {
		frac = DefaultTopKFrac
	}
	n := len(vals)
	k := int(math.Ceil(frac * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		va, vb := math.Abs(vals[order[a]]), math.Abs(vals[order[b]])
		if va != vb {
			return va > vb
		}
		return order[a] < order[b]
	})
	kept := order[:k]
	sort.Ints(kept)

	w.Uvarint(uint64(n))
	w.Uvarint(uint64(k))
	if recon != nil {
		for i := range recon {
			recon[i] = 0
		}
	}
	prev := 0
	for _, idx := range kept {
		w.Uvarint(uint64(idx - prev)) // delta-coded ascending indices
		prev = idx
	}
	for _, idx := range kept {
		w.Float64(vals[idx])
		if recon != nil {
			recon[idx] = vals[idx]
		}
	}
}

// Decode implements Codec. Dropped entries are zeroed.
func (TopK) Decode(r *wire.Reader, dst []float64) {
	n, ok := blockLen(r, dst)
	if !ok {
		return
	}
	k := int(r.Uvarint())
	if r.Err() != nil {
		return
	}
	if k < 0 || k > n {
		r.Fail(fmt.Errorf("codec: topk keeps %d of %d values", k, n))
		return
	}
	idx := make([]int, k)
	pos := 0
	for i := range idx {
		pos += int(r.Uvarint())
		if pos >= n && r.Err() == nil {
			r.Fail(fmt.Errorf("codec: topk index %d out of range %d", pos, n))
		}
		if r.Err() != nil {
			return
		}
		idx[i] = pos
	}
	for i := range dst {
		dst[i] = 0
	}
	for _, p := range idx {
		dst[p] = r.Float64()
	}
}

// Q8 quantizes each block of Block values to int8 with a shared float64
// scale (the block's max magnitude). With an RNG, rounding is stochastic and
// unbiased; without, it rounds to nearest. Worst-case per-entry error is one
// quantum: scale/127.
type Q8 struct {
	// Block is the number of values sharing one scale; zero means
	// DefaultQ8Block.
	Block int
}

// ID implements Codec.
func (Q8) ID() ID { return IDQ8 }

// Name implements Codec.
func (Q8) Name() string { return "q8" }

// Lossless implements Codec.
func (Q8) Lossless() bool { return false }

// Encode implements Codec.
func (c Q8) Encode(w *wire.Writer, vals, _, recon []float64, rng *rand.Rand) {
	block := c.Block
	if block <= 0 {
		block = DefaultQ8Block
	}
	n := len(vals)
	w.Uvarint(uint64(n))
	w.Uvarint(uint64(block))
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		scale := 0.0
		for _, v := range vals[lo:hi] {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		w.Float64(scale)
		for i, v := range vals[lo:hi] {
			var q int
			if scale > 0 {
				f := v / scale * 127
				if rng != nil {
					floor := math.Floor(f)
					q = int(floor)
					if rng.Float64() < f-floor {
						q++
					}
				} else {
					q = int(math.Round(f))
				}
				if q > 127 {
					q = 127
				} else if q < -127 {
					q = -127
				}
			}
			w.Uint8(uint8(int8(q)))
			if recon != nil {
				recon[lo+i] = float64(q) * scale / 127
			}
		}
	}
}

// Decode implements Codec.
func (Q8) Decode(r *wire.Reader, dst []float64) {
	n, ok := blockLen(r, dst)
	if !ok {
		return
	}
	block := int(r.Uvarint())
	if r.Err() != nil {
		return
	}
	if block <= 0 {
		r.Fail(fmt.Errorf("codec: q8 block size %d", block))
		return
	}
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		scale := r.Float64()
		for i := lo; i < hi; i++ {
			q := int8(r.Uint8())
			dst[i] = float64(q) * scale / 127
		}
		if r.Err() != nil {
			return
		}
	}
}

// Delta encodes the entries of vals that differ from base as index/value
// pairs carrying the *new* values (so decoding is exact). Decode must run
// against a dst pre-filled with base; unlisted entries keep their base
// values. A nil base is treated as all-different (full resend).
type Delta struct{}

// ID implements Codec.
func (Delta) ID() ID { return IDDelta }

// Name implements Codec.
func (Delta) Name() string { return "delta" }

// Lossless implements Codec.
func (Delta) Lossless() bool { return true }

// Encode implements Codec.
func (Delta) Encode(w *wire.Writer, vals, base, recon []float64, _ *rand.Rand) {
	n := len(vals)
	changed := 0
	for i, v := range vals {
		if base == nil || i >= len(base) || base[i] != v {
			changed++
		}
	}
	w.Uvarint(uint64(n))
	w.Uvarint(uint64(changed))
	prev := 0
	for i, v := range vals {
		if base != nil && i < len(base) && base[i] == v {
			continue
		}
		w.Uvarint(uint64(i - prev))
		prev = i
	}
	for i, v := range vals {
		if base != nil && i < len(base) && base[i] == v {
			continue
		}
		w.Float64(v)
	}
	if recon != nil {
		copy(recon, vals)
	}
}

// Decode implements Codec.
func (Delta) Decode(r *wire.Reader, dst []float64) {
	n, ok := blockLen(r, dst)
	if !ok {
		return
	}
	changed := int(r.Uvarint())
	if r.Err() != nil {
		return
	}
	if changed < 0 || changed > n {
		r.Fail(fmt.Errorf("codec: delta changes %d of %d values", changed, n))
		return
	}
	idx := make([]int, changed)
	pos := 0
	for i := range idx {
		pos += int(r.Uvarint())
		if pos >= n && r.Err() == nil {
			r.Fail(fmt.Errorf("codec: delta index %d out of range %d", pos, n))
		}
		if r.Err() != nil {
			return
		}
		idx[i] = pos
	}
	for _, p := range idx {
		dst[p] = r.Float64()
	}
}
