package codec

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"specsync/internal/node"
	"specsync/internal/wire"
)

func roundTrip(t *testing.T, c Codec, vals, base []float64, rng *rand.Rand) (dst, recon []float64, payload []byte) {
	t.Helper()
	recon = make([]float64, len(vals))
	payload = EncodePayload(c, vals, base, recon, rng)
	dst = make([]float64, len(vals))
	if base != nil {
		copy(dst, base)
	}
	if err := DecodePayload(c.ID(), payload, dst); err != nil {
		t.Fatalf("%s: decode: %v", c.Name(), err)
	}
	return dst, recon, payload
}

func TestRawRoundTrip(t *testing.T) {
	vals := []float64{0, 1.5, -2.25, math.Pi, -0.001, 42}
	dst, recon, _ := roundTrip(t, Raw{}, vals, nil, nil)
	for i := range vals {
		if dst[i] != vals[i] {
			t.Errorf("dst[%d] = %g, want %g", i, dst[i], vals[i])
		}
		if recon[i] != vals[i] {
			t.Errorf("recon[%d] = %g, want %g", i, recon[i], vals[i])
		}
	}
}

func TestTopKRoundTrip(t *testing.T) {
	vals := []float64{0.1, -5, 0.02, 3, -0.5, 0.004, 2.5, -1}
	c := TopK{Frac: 0.5} // keeps 4 of 8
	dst, recon, _ := roundTrip(t, c, vals, nil, nil)

	// Largest-magnitude 4 entries: -5 (1), 3 (3), 2.5 (6), -1 (7).
	want := []float64{0, -5, 0, 3, 0, 0, 2.5, -1}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dst[%d] = %g, want %g", i, dst[i], want[i])
		}
		if recon[i] != want[i] {
			t.Errorf("recon[%d] = %g, want %g", i, recon[i], want[i])
		}
	}
}

func TestTopKTieBreaksTowardLowerIndex(t *testing.T) {
	vals := []float64{1, -1, 1, -1}
	dst, _, _ := roundTrip(t, TopK{Frac: 0.5}, vals, nil, nil)
	want := []float64{1, -1, 0, 0}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dst[%d] = %g, want %g", i, dst[i], want[i])
		}
	}
}

func TestTopKKeepsAtLeastOne(t *testing.T) {
	vals := []float64{0.5, 2, -1}
	dst, _, _ := roundTrip(t, TopK{Frac: 0.0001}, vals, nil, nil)
	want := []float64{0, 2, 0}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dst[%d] = %g, want %g", i, dst[i], want[i])
		}
	}
}

func TestQ8ErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 0.3
	}
	for _, useRNG := range []bool{true, false} {
		var encRNG *rand.Rand
		if useRNG {
			encRNG = rand.New(rand.NewSource(5))
		}
		c := Q8{Block: 64}
		dst, recon, payload := roundTrip(t, c, vals, nil, encRNG)
		// Per-block worst-case error is one quantum: scale/127 where scale is
		// the block's max magnitude.
		for lo := 0; lo < len(vals); lo += 64 {
			hi := lo + 64
			if hi > len(vals) {
				hi = len(vals)
			}
			scale := 0.0
			for _, v := range vals[lo:hi] {
				if a := math.Abs(v); a > scale {
					scale = a
				}
			}
			quantum := scale / 127
			for i := lo; i < hi; i++ {
				if err := math.Abs(dst[i] - vals[i]); err > quantum+1e-12 {
					t.Fatalf("rng=%v dst[%d]: error %g exceeds quantum %g", useRNG, i, err, quantum)
				}
				if dst[i] != recon[i] {
					t.Fatalf("rng=%v recon[%d] = %g, decode produced %g", useRNG, i, recon[i], dst[i])
				}
			}
		}
		// 1000 float64s dense = 8000 bytes; q8 ≈ 1 byte/value + scales.
		if len(payload) >= 4000 {
			t.Errorf("rng=%v q8 payload %d bytes, expected well under dense 8000", useRNG, len(payload))
		}
	}
}

func TestQ8ZeroBlockIsExact(t *testing.T) {
	vals := make([]float64, 10) // all zero → scale 0 → exact zeros back
	dst, _, _ := roundTrip(t, Q8{Block: 4}, vals, nil, rand.New(rand.NewSource(1)))
	for i, v := range dst {
		if v != 0 {
			t.Errorf("dst[%d] = %g, want 0", i, v)
		}
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	base := []float64{1, 2, 3, 4, 5}
	vals := []float64{1, 2.5, 3, 4, -5}
	dst, recon, payload := roundTrip(t, Delta{}, vals, base, nil)
	for i := range vals {
		if dst[i] != vals[i] {
			t.Errorf("dst[%d] = %g, want %g", i, dst[i], vals[i])
		}
		if recon[i] != vals[i] {
			t.Errorf("recon[%d] = %g, want %g", i, recon[i], vals[i])
		}
	}
	full := EncodePayload(Delta{}, vals, nil, nil, nil)
	if len(payload) >= len(full) {
		t.Errorf("2-entry delta payload %d bytes, full resend %d; expected smaller", len(payload), len(full))
	}
}

func TestDeltaNilBaseIsFullResend(t *testing.T) {
	vals := []float64{7, -8, 9}
	payload := EncodePayload(Delta{}, vals, nil, nil, nil)
	dst := make([]float64, len(vals)) // zeros, not base: every entry must be listed
	if err := DecodePayload(IDDelta, payload, dst); err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := range vals {
		if dst[i] != vals[i] {
			t.Errorf("dst[%d] = %g, want %g", i, dst[i], vals[i])
		}
	}
}

func TestDecodePayloadRejectsBadInput(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	for _, c := range []Codec{Raw{}, TopK{Frac: 0.5}, Q8{Block: 2}, Delta{}} {
		payload := EncodePayload(c, vals, nil, nil, nil)
		dst := make([]float64, len(vals))

		// Wrong destination length.
		if err := DecodePayload(c.ID(), payload, make([]float64, 3)); err == nil {
			t.Errorf("%s: accepted payload with mismatched dst length", c.Name())
		}
		// Truncation.
		if err := DecodePayload(c.ID(), payload[:len(payload)-1], dst); err == nil {
			t.Errorf("%s: accepted truncated payload", c.Name())
		}
		// Trailing bytes.
		if err := DecodePayload(c.ID(), append(append([]byte{}, payload...), 0), dst); err == nil {
			t.Errorf("%s: accepted payload with trailing byte", c.Name())
		}
	}
	if err := DecodePayload(ID(200), []byte{1}, nil); err == nil {
		t.Error("accepted unknown codec id")
	}
}

func TestIDString(t *testing.T) {
	cases := map[ID]string{IDRaw: "raw", IDTopK: "topk", IDQ8: "q8", IDDelta: "delta", ID(9): "codec(9)"}
	for id, want := range cases {
		if got := id.String(); got != want {
			t.Errorf("ID(%d).String() = %q, want %q", uint8(id), got, want)
		}
	}
}

func TestConfigBuild(t *testing.T) {
	cases := []struct {
		cfg       Config
		wantPush  ID
		wantDelta bool
		wantErr   bool
	}{
		{Config{}, IDRaw, false, false},
		{Config{Name: "raw"}, IDRaw, false, false},
		{Config{Name: "topk", TopKFrac: 0.2}, IDTopK, false, false},
		{Config{Name: "q8", Q8Block: 128}, IDQ8, false, false},
		{Config{Name: "delta"}, IDRaw, true, false},
		{Config{Name: "zstd"}, IDRaw, false, true},
		{Config{Name: "topk", TopKFrac: 1.5}, IDRaw, false, true},
		{Config{Name: "q8", Q8Block: -1}, IDRaw, false, true},
	}
	for _, tc := range cases {
		push, deltaPull, err := Build(tc.cfg)
		if tc.wantErr {
			if err == nil {
				t.Errorf("Build(%+v): expected error", tc.cfg)
			}
			continue
		}
		if err != nil {
			t.Errorf("Build(%+v): %v", tc.cfg, err)
			continue
		}
		if deltaPull != tc.wantDelta {
			t.Errorf("Build(%+v): deltaPull = %v, want %v", tc.cfg, deltaPull, tc.wantDelta)
		}
		gotPush := IDRaw
		if push != nil {
			gotPush = push.ID()
		}
		if gotPush != tc.wantPush {
			t.Errorf("Build(%+v): push codec %s, want %s", tc.cfg, gotPush, tc.wantPush)
		}
	}
}

func TestStateSnapshotRoundTrip(t *testing.T) {
	st := NewState([]int{3, 5})
	st.Residuals[0][1] = 1.25
	st.Residuals[1][4] = -9.5
	got, err := RestoreState(st.Snapshot())
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !got.Matches([]int{3, 5}) {
		t.Fatal("restored state shape mismatch")
	}
	for i, block := range st.Residuals {
		for j, v := range block {
			if got.Residuals[i][j] != v {
				t.Errorf("residual[%d][%d] = %g, want %g", i, j, got.Residuals[i][j], v)
			}
		}
	}
	if !st.Matches([]int{3, 5}) || st.Matches([]int{3, 4}) || st.Matches([]int{3}) {
		t.Error("Matches misreports shapes")
	}
}

func TestRestoreStateRejectsCorruption(t *testing.T) {
	good := NewState([]int{2}).Snapshot()
	bad := append([]byte{}, good...)
	bad[0] ^= 0xFF // wrong magic
	if _, err := RestoreState(bad); err == nil {
		t.Error("accepted bad magic")
	}
	if _, err := RestoreState(good[:len(good)-3]); err == nil {
		t.Error("accepted truncated snapshot")
	}
	if _, err := RestoreState(append(append([]byte{}, good...), 7)); err == nil {
		t.Error("accepted trailing bytes")
	}
}

func TestStatsAccounting(t *testing.T) {
	labels := map[wire.Kind]string{wire.Kind(19): "topk", wire.Kind(18): "raw"}
	s := NewStats(func(k wire.Kind) string {
		if l, ok := labels[k]; ok {
			return l
		}
		return "none"
	})
	rec := s.Tap(nil)
	rec.RecordTransfer(node.WorkerID(0), node.ServerID(0), wire.Kind(19), 100, time.Time{})
	rec.RecordTransfer(node.WorkerID(0), node.ServerID(0), wire.Kind(19), 50, time.Time{})
	rec.RecordTransfer(node.ServerID(0), node.WorkerID(0), wire.Kind(18), 800, time.Time{})
	rec.RecordTransfer(node.WorkerID(0), node.ServerID(0), wire.Kind(5), 10, time.Time{})

	if b, m := s.KindBytes(wire.Kind(19), "topk"); b != 150 || m != 2 {
		t.Errorf("KindBytes(19,topk) = %d,%d; want 150,2", b, m)
	}
	if got := s.LabelBytes("raw"); got != 800 {
		t.Errorf("LabelBytes(raw) = %d, want 800", got)
	}

	s.RecordEncode(IDTopK, 8000, 1200)
	s.RecordEncode(IDTopK, 8000, 800)
	if r := s.Ratio(IDTopK); math.Abs(r-0.125) > 1e-12 {
		t.Errorf("Ratio(topk) = %g, want 0.125", r)
	}
	if r := s.Ratio(IDQ8); r != 1 {
		t.Errorf("Ratio(q8) with no encodes = %g, want 1", r)
	}
	raw, enc, blocks := s.EncodeTotals(IDTopK)
	if raw != 16000 || enc != 2000 || blocks != 2 {
		t.Errorf("EncodeTotals(topk) = %d,%d,%d; want 16000,2000,2", raw, enc, blocks)
	}

	var sb strings.Builder
	s.WritePrometheus(&sb, func(k wire.Kind) string { return fmt.Sprintf("kind%d", k) })
	out := sb.String()
	for _, want := range []string{
		`specsync_bytes_on_wire_total{kind="kind19",codec="topk"} 150`,
		`specsync_codec_msgs_total{kind="kind18",codec="raw"} 1`,
		`specsync_codec_compression_ratio{codec="topk"} 0.125`,
		`specsync_codec_encoded_bytes_total{codec="topk"} 2000`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\ngot:\n%s", want, out)
		}
	}
}
