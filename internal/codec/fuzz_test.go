package codec

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzCodecRoundTrip feeds randomized blocks through every codec and asserts
// each one's reconstruction contract:
//
//	raw, delta — exact round-trip
//	topk       — decoded entries are exactly the originals; dropped entries
//	             are zero; at least 1 and at most ceil(frac·n) survive
//	q8         — per-entry error bounded by one quantum (block scale / 127)
//
// All codecs must agree with the recon buffer their encoder filled, since the
// error-feedback residual depends on it matching what the server applies.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(int64(1), 8, 0.25, 4)
	f.Add(int64(42), 1, 0.5, 1)
	f.Add(int64(7), 300, 0.1, 64)
	f.Add(int64(-3), 17, 0.9, 256)
	f.Fuzz(func(t *testing.T, seed int64, n int, frac float64, block int) {
		if n < 1 || n > 4096 {
			return
		}
		if frac <= 0 || frac > 1 || math.IsNaN(frac) {
			return
		}
		if block < 1 || block > 4096 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		base := make([]float64, n)
		copy(base, vals)
		for i := range base {
			if rng.Intn(3) == 0 {
				base[i] += rng.NormFloat64()
			}
		}

		check := func(c Codec, useBase []float64, encRNG *rand.Rand, verify func(dst []float64)) {
			t.Helper()
			recon := make([]float64, n)
			payload := EncodePayload(c, vals, useBase, recon, encRNG)
			dst := make([]float64, n)
			if useBase != nil {
				copy(dst, useBase)
			}
			if err := DecodePayload(c.ID(), payload, dst); err != nil {
				t.Fatalf("%s: decode: %v", c.Name(), err)
			}
			for i := range dst {
				if dst[i] != recon[i] {
					t.Fatalf("%s: recon[%d] = %g but decode produced %g", c.Name(), i, recon[i], dst[i])
				}
			}
			verify(dst)
		}

		check(Raw{}, nil, nil, func(dst []float64) {
			for i := range vals {
				if dst[i] != vals[i] {
					t.Fatalf("raw: dst[%d] = %g, want %g", i, dst[i], vals[i])
				}
			}
		})

		check(Delta{}, base, nil, func(dst []float64) {
			for i := range vals {
				if dst[i] != vals[i] {
					t.Fatalf("delta: dst[%d] = %g, want %g", i, dst[i], vals[i])
				}
			}
		})

		check(TopK{Frac: frac}, nil, nil, func(dst []float64) {
			maxK := int(math.Ceil(frac * float64(n)))
			if maxK < 1 {
				maxK = 1
			}
			kept := 0
			for i := range vals {
				switch dst[i] {
				case vals[i]:
					if vals[i] != 0 {
						kept++
					}
				case 0:
					// dropped
				default:
					t.Fatalf("topk: dst[%d] = %g is neither original %g nor zero", i, dst[i], vals[i])
				}
			}
			if kept > maxK {
				t.Fatalf("topk: kept %d nonzero entries, max %d", kept, maxK)
			}
		})

		check(Q8{Block: block}, nil, rand.New(rand.NewSource(seed+1)), func(dst []float64) {
			for lo := 0; lo < n; lo += block {
				hi := lo + block
				if hi > n {
					hi = n
				}
				scale := 0.0
				for _, v := range vals[lo:hi] {
					if a := math.Abs(v); a > scale {
						scale = a
					}
				}
				quantum := scale / 127
				for i := lo; i < hi; i++ {
					if err := math.Abs(dst[i] - vals[i]); err > quantum+1e-12 {
						t.Fatalf("q8: dst[%d] error %g exceeds quantum %g", i, err, quantum)
					}
				}
			}
		})
	})
}
