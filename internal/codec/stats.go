package codec

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"specsync/internal/node"
	"specsync/internal/wire"
)

// TransferRecorder mirrors des.TransferRecorder / transport.TransferRecorder
// so Stats can tap the byte stream of either stack without importing them.
type TransferRecorder interface {
	RecordTransfer(from, to node.ID, kind wire.Kind, bytes int, at time.Time)
}

// Stats accumulates the codec layer's byte accounting:
//
//   - bytes/messages on the wire per {message kind, codec label}, fed by
//     tapping the run's transfer recorder (Tap), and
//   - encode-site compression ratios per codec (RecordEncode), comparing
//     each payload against the 8·n bytes a dense float64 block would cost.
//
// It is safe for concurrent use and exposes its counters in Prometheus text
// form (WritePrometheus) for the obs registry.
type Stats struct {
	mu      sync.Mutex
	wire    map[wireKey]*wireCell
	enc     map[ID]*encCell
	labelOf func(wire.Kind) string
}

type wireKey struct {
	kind  wire.Kind
	label string
}

type wireCell struct {
	bytes int64
	msgs  int64
}

type encCell struct {
	raw    int64
	enc    int64
	blocks int64
}

// NewStats builds a Stats whose wire tap labels each message kind with a
// codec name (use msg.CodecLabeler for the protocol's kinds).
func NewStats(labelOf func(wire.Kind) string) *Stats {
	if labelOf == nil {
		labelOf = func(wire.Kind) string { return "none" }
	}
	return &Stats{
		wire:    make(map[wireKey]*wireCell),
		enc:     make(map[ID]*encCell),
		labelOf: labelOf,
	}
}

// Tap returns a recorder that forwards every transfer to inner (which may be
// nil) and accumulates per-{kind,codec} byte counters here. It changes no
// behavior of the tapped stack — pure accounting — so a raw-codec run with a
// tap in place stays byte- and schedule-identical.
func (s *Stats) Tap(inner TransferRecorder) TransferRecorder {
	return &tap{stats: s, inner: inner}
}

type tap struct {
	stats *Stats
	inner TransferRecorder
}

// RecordTransfer implements TransferRecorder.
func (t *tap) RecordTransfer(from, to node.ID, kind wire.Kind, bytes int, at time.Time) {
	if t.inner != nil {
		t.inner.RecordTransfer(from, to, kind, bytes, at)
	}
	s := t.stats
	key := wireKey{kind: kind, label: s.labelOf(kind)}
	s.mu.Lock()
	cell, ok := s.wire[key]
	if !ok {
		cell = &wireCell{}
		s.wire[key] = cell
	}
	cell.bytes += int64(bytes)
	cell.msgs++
	s.mu.Unlock()
}

// RecordEncode records one encoded block: rawBytes is the dense float64 cost
// of the block (8·n), encBytes the payload actually produced.
func (s *Stats) RecordEncode(id ID, rawBytes, encBytes int) {
	s.mu.Lock()
	cell, ok := s.enc[id]
	if !ok {
		cell = &encCell{}
		s.enc[id] = cell
	}
	cell.raw += int64(rawBytes)
	cell.enc += int64(encBytes)
	cell.blocks++
	s.mu.Unlock()
}

// KindBytes returns the on-wire bytes and message count recorded for one
// {kind, codec label} pair.
func (s *Stats) KindBytes(kind wire.Kind, label string) (bytes, msgs int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cell, ok := s.wire[wireKey{kind: kind, label: label}]; ok {
		return cell.bytes, cell.msgs
	}
	return 0, 0
}

// LabelBytes sums on-wire bytes across all kinds carrying the given codec
// label.
func (s *Stats) LabelBytes(label string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for key, cell := range s.wire {
		if key.label == label {
			total += cell.bytes
		}
	}
	return total
}

// Ratio returns encoded/raw bytes over every block the codec encoded, or
// NaN-free 1 when it never ran.
func (s *Stats) Ratio(id ID) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	cell, ok := s.enc[id]
	if !ok || cell.raw == 0 {
		return 1
	}
	return float64(cell.enc) / float64(cell.raw)
}

// EncodeTotals returns the cumulative raw (dense-equivalent) and encoded
// byte counts plus block count for one codec.
func (s *Stats) EncodeTotals(id ID) (rawBytes, encBytes, blocks int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cell, ok := s.enc[id]; ok {
		return cell.raw, cell.enc, cell.blocks
	}
	return 0, 0, 0
}

// Row is one {kind, codec} wire accounting entry (for trace sidecars and
// summaries).
type Row struct {
	Kind  string
	Codec string
	Bytes int64
	Msgs  int64
}

// Rows snapshots the wire counters, kinds named by kindName, sorted by kind
// then codec for deterministic output.
func (s *Stats) Rows(kindName func(wire.Kind) string) []Row {
	s.mu.Lock()
	out := make([]Row, 0, len(s.wire))
	for key, cell := range s.wire {
		out = append(out, Row{
			Kind:  kindName(key.kind),
			Codec: key.label,
			Bytes: cell.bytes,
			Msgs:  cell.msgs,
		})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Codec < out[j].Codec
	})
	return out
}

// WritePrometheus renders the counters in Prometheus text format.
func (s *Stats) WritePrometheus(w io.Writer, kindName func(wire.Kind) string) {
	rows := s.Rows(kindName)
	fmt.Fprintln(w, "# HELP specsync_bytes_on_wire_total Bytes sent on the wire by message kind and codec.")
	fmt.Fprintln(w, "# TYPE specsync_bytes_on_wire_total counter")
	for _, row := range rows {
		fmt.Fprintf(w, "specsync_bytes_on_wire_total{kind=%q,codec=%q} %d\n", row.Kind, row.Codec, row.Bytes)
	}
	fmt.Fprintln(w, "# HELP specsync_codec_msgs_total Messages sent on the wire by message kind and codec.")
	fmt.Fprintln(w, "# TYPE specsync_codec_msgs_total counter")
	for _, row := range rows {
		fmt.Fprintf(w, "specsync_codec_msgs_total{kind=%q,codec=%q} %d\n", row.Kind, row.Codec, row.Msgs)
	}

	s.mu.Lock()
	ids := make([]ID, 0, len(s.enc))
	for id := range s.enc {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Fprintln(w, "# HELP specsync_codec_compression_ratio Encoded bytes over dense float64 bytes, per codec.")
	fmt.Fprintln(w, "# TYPE specsync_codec_compression_ratio gauge")
	for _, id := range ids {
		fmt.Fprintf(w, "specsync_codec_compression_ratio{codec=%q} %g\n", id.String(), s.Ratio(id))
	}
	fmt.Fprintln(w, "# HELP specsync_codec_encoded_bytes_total Payload bytes produced by each codec's encoder.")
	fmt.Fprintln(w, "# TYPE specsync_codec_encoded_bytes_total counter")
	for _, id := range ids {
		_, enc, _ := s.EncodeTotals(id)
		fmt.Fprintf(w, "specsync_codec_encoded_bytes_total{codec=%q} %d\n", id.String(), enc)
	}
}
