package codec

import (
	"math/rand"
	"testing"

	"specsync/internal/wire"
)

// benchBlock is sized like one MF shard push in the small DES workloads.
const benchBlock = 4096

func benchVals() []float64 {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, benchBlock)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 0.1
	}
	return vals
}

func benchEncode(b *testing.B, c Codec, rng *rand.Rand) {
	vals := benchVals()
	recon := make([]float64, len(vals))
	w := wire.NewWriter(len(vals) * 8)
	b.ReportAllocs()
	b.ResetTimer()
	var encoded int64
	for i := 0; i < b.N; i++ {
		w.Reset()
		c.Encode(w, vals, nil, recon, rng)
		encoded = int64(w.Len())
	}
	b.SetBytes(int64(len(vals) * 8))
	b.ReportMetric(float64(encoded), "bytes/block")
}

func benchDecode(b *testing.B, c Codec, rng *rand.Rand) {
	vals := benchVals()
	payload := EncodePayload(c, vals, nil, nil, rng)
	dst := make([]float64, len(vals))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := wire.NewReader(payload)
		c.Decode(r, dst)
		if err := r.Err(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(vals) * 8))
}

func BenchmarkCodecRawEncode(b *testing.B)  { benchEncode(b, Raw{}, nil) }
func BenchmarkCodecRawDecode(b *testing.B)  { benchDecode(b, Raw{}, nil) }
func BenchmarkCodecTopKEncode(b *testing.B) { benchEncode(b, TopK{Frac: 0.1}, nil) }
func BenchmarkCodecTopKDecode(b *testing.B) { benchDecode(b, TopK{Frac: 0.1}, nil) }
func BenchmarkCodecQ8Encode(b *testing.B) {
	benchEncode(b, Q8{Block: DefaultQ8Block}, rand.New(rand.NewSource(2)))
}
func BenchmarkCodecQ8Decode(b *testing.B) {
	benchDecode(b, Q8{Block: DefaultQ8Block}, rand.New(rand.NewSource(2)))
}
func BenchmarkCodecDeltaEncode(b *testing.B) { benchEncode(b, Delta{}, nil) }
func BenchmarkCodecDeltaDecode(b *testing.B) { benchDecode(b, Delta{}, nil) }
