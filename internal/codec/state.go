package codec

import (
	"fmt"

	"specsync/internal/wire"
)

// stateMagic/stateVersion frame a serialized State ("CODC", version 1).
const (
	stateMagic   uint32 = 0x434F4443
	stateVersion uint8  = 1
)

// State is a worker's error-feedback residual store: one dense block per
// parameter shard, accumulating the mass a lossy push codec dropped or
// rounded away so it re-enters later pushes. It serializes with the same
// magic/version framing as the server checkpoint, and is included in worker
// checkpoints so a restored worker does not silently discard pending
// gradient mass.
type State struct {
	// Residuals holds one residual block per shard, indexed like the
	// worker's shard table.
	Residuals [][]float64
}

// NewState builds a zeroed residual store for shards of the given lengths.
func NewState(lens []int) *State {
	s := &State{Residuals: make([][]float64, len(lens))}
	for i, n := range lens {
		s.Residuals[i] = make([]float64, n)
	}
	return s
}

// Snapshot serializes the residual store.
func (s *State) Snapshot() []byte {
	w := wire.NewWriter(64)
	w.Uint32(stateMagic)
	w.Uint8(stateVersion)
	w.Uvarint(uint64(len(s.Residuals)))
	for _, block := range s.Residuals {
		w.Float64s(block)
	}
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out
}

// RestoreState parses a snapshot produced by Snapshot.
func RestoreState(data []byte) (*State, error) {
	r := wire.NewReader(data)
	if magic := r.Uint32(); magic != stateMagic {
		return nil, fmt.Errorf("codec: bad state magic %#x", magic)
	}
	if v := r.Uint8(); v != stateVersion {
		return nil, fmt.Errorf("codec: unsupported state version %d", v)
	}
	n := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("codec: state header: %w", err)
	}
	if n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("codec: state has %d shards", n)
	}
	s := &State{Residuals: make([][]float64, n)}
	for i := range s.Residuals {
		s.Residuals[i] = r.Float64s()
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("codec: state body: %w", err)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("codec: state has %d trailing bytes", r.Remaining())
	}
	return s, nil
}

// Matches reports whether the store's shard shapes equal lens.
func (s *State) Matches(lens []int) bool {
	if len(s.Residuals) != len(lens) {
		return false
	}
	for i, block := range s.Residuals {
		if len(block) != lens[i] {
			return false
		}
	}
	return true
}
