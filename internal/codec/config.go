package codec

import "fmt"

// Default codec parameters.
const (
	// DefaultTopKFrac is the fraction of entries topk keeps (the paper-
	// adjacent "k = 10%" operating point).
	DefaultTopKFrac = 0.10
	// DefaultQ8Block is the number of values sharing one q8 scale.
	DefaultQ8Block = 256
)

// Names lists the accepted -codec flag values.
const Names = "raw, topk, q8, delta"

// Config selects the wire codecs for one run. The zero value means raw: the
// legacy v1 message layouts, byte-identical to a build without the codec
// subsystem.
//
// topk and q8 compress worker→server pushes (with error feedback) and leave
// pulls on the legacy path; delta compresses server→worker pull responses
// and leaves pushes on the legacy path.
type Config struct {
	// Name is one of Names; empty means "raw".
	Name string
	// TopKFrac is topk's kept fraction in (0, 1]; zero means
	// DefaultTopKFrac.
	TopKFrac float64
	// Q8Block is q8's values-per-scale block; zero means DefaultQ8Block.
	Q8Block int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch c.Name {
	case "", "raw", "topk", "q8", "delta":
	default:
		return fmt.Errorf("codec: unknown codec %q (want one of %s)", c.Name, Names)
	}
	if c.TopKFrac < 0 || c.TopKFrac > 1 {
		return fmt.Errorf("codec: TopKFrac %v outside (0, 1]", c.TopKFrac)
	}
	if c.Q8Block < 0 {
		return fmt.Errorf("codec: negative Q8Block %d", c.Q8Block)
	}
	return nil
}

// IsRaw reports whether the config selects the legacy byte-identical path.
func (c Config) IsRaw() bool { return c.Name == "" || c.Name == "raw" }

// UsesDelta reports whether pull responses are delta-encoded.
func (c Config) UsesDelta() bool { return c.Name == "delta" }

// PushName returns the codec label carried by push payloads.
func (c Config) PushName() string {
	switch c.Name {
	case "topk", "q8":
		return c.Name
	default:
		return "raw"
	}
}

// PullName returns the codec label carried by pull responses.
func (c Config) PullName() string {
	if c.UsesDelta() {
		return "delta"
	}
	return "raw"
}

// Build validates c and returns the push-side codec (nil when pushes use the
// legacy raw layout) and whether pulls are delta-encoded.
func Build(c Config) (push Codec, deltaPull bool, err error) {
	if err := c.Validate(); err != nil {
		return nil, false, err
	}
	switch c.Name {
	case "topk":
		frac := c.TopKFrac
		if frac == 0 {
			frac = DefaultTopKFrac
		}
		return TopK{Frac: frac}, false, nil
	case "q8":
		block := c.Q8Block
		if block == 0 {
			block = DefaultQ8Block
		}
		return Q8{Block: block}, false, nil
	case "delta":
		return nil, true, nil
	default:
		return nil, false, nil
	}
}
