// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. VI) plus the motivating studies of Sec. III, on the
// simulated cluster. Each experiment function returns a typed result with a
// Render method that prints the same rows/series the paper reports; the
// cmd/specsync-bench binary and the repository-root benchmarks drive them.
package experiments

import (
	"fmt"
	"io"
	"time"

	"specsync/internal/cluster"
	"specsync/internal/scheme"
)

// Options controls the shared experiment parameters.
type Options struct {
	// Workers is the cluster size (the paper's Cluster 1 has 40).
	Workers int
	// Seed drives all randomness.
	Seed int64
	// Size selects workload scale (SizeSmall for quick benchmark runs).
	Size cluster.Size
	// MaxVirtual bounds each training run's simulated duration.
	MaxVirtual time.Duration
	// Verbose enables progress lines on Out during multi-run experiments.
	Verbose bool
	// Out receives progress lines when Verbose is set.
	Out io.Writer
}

// Defaults returns the paper-scale options.
func Defaults() Options {
	return Options{
		Workers:    40,
		Seed:       1,
		Size:       cluster.SizeFull,
		MaxVirtual: 6 * time.Hour,
	}
}

// Quick returns reduced options for smoke benchmarks.
func Quick() Options {
	return Options{
		Workers:    12,
		Seed:       1,
		Size:       cluster.SizeSmall,
		MaxVirtual: time.Hour,
	}
}

func (o Options) normalize() Options {
	d := Defaults()
	if o.Workers == 0 {
		o.Workers = d.Workers
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.Size == 0 {
		o.Size = d.Size
	}
	if o.MaxVirtual == 0 {
		o.MaxVirtual = d.MaxVirtual
	}
	return o
}

func (o Options) progressf(format string, args ...any) {
	if o.Verbose && o.Out != nil {
		fmt.Fprintf(o.Out, format+"\n", args...)
	}
}

// WorkloadID names one of the paper's three benchmark workloads.
type WorkloadID string

// Workload identifiers (paper Table I).
const (
	WorkloadMF       WorkloadID = "mf"
	WorkloadCIFAR    WorkloadID = "cifar10"
	WorkloadImageNet WorkloadID = "imagenet"
)

// AllWorkloads lists the Table I workloads in paper order.
var AllWorkloads = []WorkloadID{WorkloadMF, WorkloadCIFAR, WorkloadImageNet}

// buildWorkload constructs the named workload at the option scale.
func buildWorkload(id WorkloadID, o Options) (cluster.Workload, error) {
	switch id {
	case WorkloadMF:
		return cluster.NewMF(o.Size, o.Workers, o.Seed)
	case WorkloadCIFAR:
		return cluster.NewCIFAR(o.Size, o.Workers, o.Seed)
	case WorkloadImageNet:
		return cluster.NewImageNet(o.Size, o.Workers, o.Seed)
	default:
		return cluster.Workload{}, fmt.Errorf("experiments: unknown workload %q", id)
	}
}

// CherrypickParams returns the grid-searched SpecSync-Cherrypick
// hyperparameters for a workload (the offline search the paper's Table II
// prices out; cmd/specsync-sweep reproduces the search itself).
func CherrypickParams(id WorkloadID, iterTime time.Duration) (abortTime time.Duration, abortRate float64) {
	// Found by sweeping abort time over {T/8..T/2} and rate over
	// {0.1..0.5} with cmd/specsync-sweep: a short window (T/8) with a
	// threshold well above the mean arrival rate (so only genuine bursts
	// trigger) is near-optimal across workloads.
	return iterTime / 8, 0.22
}

// schemeASP is the paper's "Original" baseline.
func schemeASP() scheme.Config { return scheme.Config{Base: scheme.ASP} }

// schemeAdaptive is SpecSync-Adaptive on ASP.
func schemeAdaptive() scheme.Config {
	return scheme.Config{Base: scheme.ASP, Spec: scheme.SpecAdaptive}
}

// schemeCherry is SpecSync-Cherrypick on ASP for the given workload.
func schemeCherry(id WorkloadID, iterTime time.Duration) scheme.Config {
	at, rate := CherrypickParams(id, iterTime)
	return scheme.Config{Base: scheme.ASP, Spec: scheme.SpecFixed, AbortTime: at, AbortRate: rate}
}

// clusterConfig aliases cluster.Config for the per-run mutators.
type clusterConfig = cluster.Config

// schemeConfig aliases scheme.Config for scheme-factory tables.
type schemeConfig = scheme.Config

// runOne executes a single cluster run with shared option plumbing.
func runOne(o Options, wl cluster.Workload, sc scheme.Config, mut func(*cluster.Config)) (*cluster.Result, error) {
	cfg := cluster.Config{
		Workload:   wl,
		Scheme:     sc,
		Workers:    o.Workers,
		Seed:       o.Seed,
		MaxVirtual: o.MaxVirtual,
	}
	if mut != nil {
		mut(&cfg)
	}
	res, err := cluster.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", sc.Name(), wl.Name, err)
	}
	o.progressf("  %-32s %-10s converged=%-5v t=%-10v iters=%d aborts=%d",
		res.SchemeName, wl.Name, res.Converged, res.ConvergeTime.Round(time.Second), res.TotalIters, res.Aborts)
	return res, nil
}
