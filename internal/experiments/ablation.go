package experiments

import (
	"fmt"
	"io"
	"time"

	"specsync/internal/metrics"
	"specsync/internal/msg"
	"specsync/internal/wire"
)

// AblationResult covers the design decisions DESIGN.md calls out:
//
//  1. Centralized scheduler vs all-to-all broadcast (paper Sec. V-A): the
//     measured notify/re-sync bytes vs the bytes an m-to-m PushNotice
//     broadcast of the same push events would have cost.
//  2. The "too late to abort" cutoff (paper Sec. IV-A): convergence with the
//     cutoff at its default, disabled, and aggressive.
//  3. The bursty-arrival environment: SpecSync's edge with the transient
//     stall process on vs off.
type AblationResult struct {
	Workload WorkloadID

	// Broadcast ablation.
	Pushes          int64
	CentralCtlBytes int64
	BroadcastBytes  int64
	CentralMsgs     int64
	BroadcastMsgs   int64

	// Late-cutoff ablation.
	CutoffFracs    []float64
	CutoffConverge []time.Duration
	CutoffOK       []bool
	CutoffAborts   []int64

	// Hiccup ablation: speedup of Adaptive over Original with/without
	// stalls.
	SpeedupWithStalls    float64
	SpeedupWithoutStalls float64
	StallsValid          bool
}

// Ablations runs all three studies on the CIFAR-like workload.
func Ablations(o Options) (*AblationResult, error) {
	o = o.normalize()
	wl, err := buildWorkload(WorkloadCIFAR, o)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Workload: WorkloadCIFAR}

	// (1) Broadcast ablation: run the centralized design and the real
	// decentralized (all-to-all PushNotice) implementation and compare
	// their measured speculation-control traffic.
	at, rate := CherrypickParams(WorkloadCIFAR, wl.IterTime)
	central, err := runOne(o, wl, schemeConfig{
		Base: schemeASP().Base, Spec: schemeCherry(WorkloadCIFAR, wl.IterTime).Spec,
		AbortTime: at, AbortRate: rate,
	}, nil)
	if err != nil {
		return nil, err
	}
	res.Pushes = central.TotalIters
	for _, kind := range []wire.Kind{msg.KindNotify, msg.KindReSync} {
		b, m := central.Transfer.KindBytes(kind)
		res.CentralCtlBytes += b
		res.CentralMsgs += m
	}
	broadcast, err := runOne(o, wl, schemeConfig{
		Base: schemeASP().Base, Spec: schemeCherry(WorkloadCIFAR, wl.IterTime).Spec,
		AbortTime: at, AbortRate: rate, Decentralized: true,
	}, nil)
	if err != nil {
		return nil, err
	}
	b, m := broadcast.Transfer.KindBytes(msg.KindPushNotice)
	res.BroadcastBytes = b
	res.BroadcastMsgs = m

	// (2) Late-cutoff ablation.
	res.CutoffFracs = []float64{0.5, 0.9, 1.0}
	for _, frac := range res.CutoffFracs {
		frac := frac
		r, err := runOne(o, wl, schemeAdaptive(), func(c *clusterConfig) {
			c.AbortLateFrac = frac
		})
		if err != nil {
			return nil, err
		}
		res.CutoffConverge = append(res.CutoffConverge, r.ConvergeTime)
		res.CutoffOK = append(res.CutoffOK, r.Converged)
		res.CutoffAborts = append(res.CutoffAborts, r.Aborts)
	}

	// (3) Hiccup ablation.
	speedup := func(disable bool) (float64, bool, error) {
		orig, err := runOne(o, wl, schemeASP(), func(c *clusterConfig) { c.DisableHiccups = disable })
		if err != nil {
			return 0, false, err
		}
		adapt, err := runOne(o, wl, schemeAdaptive(), func(c *clusterConfig) { c.DisableHiccups = disable })
		if err != nil {
			return 0, false, err
		}
		if !orig.Converged || !adapt.Converged || adapt.ConvergeTime == 0 {
			return 0, false, nil
		}
		return float64(orig.ConvergeTime) / float64(adapt.ConvergeTime), true, nil
	}
	var ok1, ok2 bool
	if res.SpeedupWithStalls, ok1, err = speedup(false); err != nil {
		return nil, err
	}
	if res.SpeedupWithoutStalls, ok2, err = speedup(true); err != nil {
		return nil, err
	}
	res.StallsValid = ok1 && ok2
	return res, nil
}

// Render prints all three studies.
func (r *AblationResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablations (%s)\n", r.Workload)

	fmt.Fprintln(w, "\n(1) Centralized scheduler vs all-to-all broadcast (paper Sec. V-A):")
	tb := newTable("design", "control messages", "control bytes")
	tb.addRow("centralized (measured)", fmt.Sprintf("%d", r.CentralMsgs), metrics.HumanBytes(r.CentralCtlBytes))
	tb.addRow("broadcast (measured)", fmt.Sprintf("%d", r.BroadcastMsgs), metrics.HumanBytes(r.BroadcastBytes))
	tb.render(w)
	if r.CentralCtlBytes > 0 {
		fmt.Fprintf(w, "broadcast blowup: %.1fx the control bytes\n",
			float64(r.BroadcastBytes)/float64(r.CentralCtlBytes))
	}

	fmt.Fprintln(w, "\n(2) 'Too late to abort' cutoff (fraction of planned compute):")
	tb = newTable("cutoff", "converged", "time-to-target", "aborts")
	for i, f := range r.CutoffFracs {
		label := fmt.Sprintf("%.1f", f)
		if f == 1.0 {
			label += " (no cutoff)"
		}
		tb.addRow(label, fmt.Sprintf("%v", r.CutoffOK[i]), fmtDur(r.CutoffConverge[i], r.CutoffOK[i]),
			fmt.Sprintf("%d", r.CutoffAborts[i]))
	}
	tb.render(w)

	fmt.Fprintln(w, "\n(3) Bursty-arrival environment (transient stalls):")
	tb = newTable("environment", "Adaptive speedup over Original")
	if r.StallsValid {
		tb.addRow("with stalls", fmt.Sprintf("%.2fx", r.SpeedupWithStalls))
		tb.addRow("without stalls", fmt.Sprintf("%.2fx", r.SpeedupWithoutStalls))
	} else {
		tb.addRow("n/a", "a run did not converge")
	}
	tb.render(w)
}
