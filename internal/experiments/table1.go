package experiments

import (
	"fmt"
	"io"
	"time"
)

// TableIResult summarizes the benchmark workloads (paper Table I).
type TableIResult struct {
	Rows []TableIRow
}

// TableIRow is one workload descriptor.
type TableIRow struct {
	Workload  WorkloadID
	Params    int
	Dataset   string
	Samples   int
	BatchSize int
	IterTime  time.Duration
}

// TableI builds the workload summary.
func TableI(o Options) (*TableIResult, error) {
	o = o.normalize()
	res := &TableIResult{}
	datasets := map[WorkloadID]string{
		WorkloadMF:       "synthetic low-rank ratings (MovieLens sub)",
		WorkloadCIFAR:    "synthetic 10-class blobs (CIFAR-10 sub)",
		WorkloadImageNet: "synthetic many-class blobs (ImageNet sub)",
	}
	for _, id := range AllWorkloads {
		wl, err := buildWorkload(id, o)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, TableIRow{
			Workload:  id,
			Params:    wl.Model.Dim(),
			Dataset:   datasets[id],
			Samples:   wl.DatasetSize,
			BatchSize: wl.BatchSize,
			IterTime:  wl.IterTime,
		})
	}
	return res, nil
}

// Render prints the table.
func (r *TableIResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Table I: workload summary (paper: MF 4.2M / CIFAR-10 2.5M / ImageNet 5.9M params,")
	fmt.Fprintln(w, "         iteration times 3s / 14s / 70s; this reproduction scales parameter counts")
	fmt.Fprintln(w, "         ~1/100 and keeps the iteration-time profile in virtual time)")
	tb := newTable("workload", "#parameters", "dataset", "dataset size", "batch", "iteration time")
	for _, row := range r.Rows {
		tb.addRow(string(row.Workload), fmt.Sprintf("%d", row.Params), row.Dataset,
			fmt.Sprintf("%d", row.Samples), fmt.Sprintf("%d", row.BatchSize), row.IterTime.String())
	}
	tb.render(w)
}
