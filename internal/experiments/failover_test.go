package experiments

import (
	"strings"
	"testing"
)

func TestFailoverQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	r, err := Failover(quickOpts(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.ZeroLoss {
		t.Errorf("replicated crash digest %s != baseline %s", r.ReplicaDigest, r.BaselineDigest)
	}
	if r.ReplicaLost != 0 {
		t.Errorf("replicated run lost %d pushes, want 0", r.ReplicaLost)
	}
	if r.CheckpointLost == 0 {
		t.Error("checkpoint-only run lost no pushes; the comparison is vacuous")
	}
	if r.CheckpointMatch {
		t.Error("checkpoint-only run matched the fault-free digest")
	}
	if !r.Reproducible {
		t.Error("identical replicated crash runs diverged")
	}
	if r.Elections < 1 || r.DegradedEnters != 0 {
		t.Errorf("scheduler failover: %d elections, %d degraded entries (want >=1, 0)",
			r.Elections, r.DegradedEnters)
	}
	if !r.Converged {
		t.Error("scheduler-kill run did not converge")
	}
	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "zero-loss failover holds") {
		t.Errorf("render missing the zero-loss verdict:\n%s", sb.String())
	}
}

func TestFailoverValidation(t *testing.T) {
	if _, err := Failover(quickOpts(), 0, 1); err == nil {
		t.Error("replicas = 0 should be rejected")
	}
	if _, err := Failover(quickOpts(), 1, 0); err == nil {
		t.Error("standbys = 0 should be rejected")
	}
}
