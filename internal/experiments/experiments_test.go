package experiments

import (
	"strings"
	"testing"
	"time"

	"specsync/internal/cluster"
)

// quickOpts keeps experiment tests fast: few workers, small workloads,
// bounded virtual time.
func quickOpts() Options {
	return Options{
		Workers:    8,
		Seed:       1,
		Size:       cluster.SizeSmall,
		MaxVirtual: 30 * time.Minute,
	}
}

func TestTableI(t *testing.T) {
	r, err := TableI(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Params == 0 || row.IterTime == 0 || row.Samples == 0 {
			t.Errorf("incomplete row %+v", row)
		}
	}
	var sb strings.Builder
	r.Render(&sb)
	out := sb.String()
	for _, want := range []string{"mf", "cifar10", "imagenet", "iteration time"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig3Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	o := quickOpts()
	r, err := Fig3(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerWorkload) != 2 {
		t.Fatalf("workloads = %d", len(r.PerWorkload))
	}
	for _, fw := range r.PerWorkload {
		if len(fw.Boxes) == 0 {
			t.Fatalf("%s: no PAP buckets", fw.Workload)
		}
		nonEmpty := 0
		for _, b := range fw.Boxes {
			if b.N > 0 {
				nonEmpty++
			}
		}
		if nonEmpty == 0 {
			t.Errorf("%s: all PAP buckets empty", fw.Workload)
		}
	}
	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "median") {
		t.Error("render missing header")
	}
}

func TestTimelineQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	r, err := Timeline(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var sb strings.Builder
	r.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "worker-1") || !strings.Contains(out, "^") {
		t.Errorf("timeline render incomplete:\n%s", out)
	}
}

func TestCherrypickParamsSane(t *testing.T) {
	at, rate := CherrypickParams(WorkloadCIFAR, 14*time.Second)
	if at <= 0 || at > 14*time.Second {
		t.Errorf("abort time %v out of range", at)
	}
	if rate <= 0 || rate > 1 {
		t.Errorf("abort rate %v out of range", rate)
	}
}

func TestOptionsNormalize(t *testing.T) {
	var o Options
	n := o.normalize()
	if n.Workers == 0 || n.Seed == 0 || n.Size == 0 || n.MaxVirtual == 0 {
		t.Errorf("normalize left zero fields: %+v", n)
	}
	// Explicit values survive.
	o = Options{Workers: 3, Seed: 9, Size: cluster.SizeSmall, MaxVirtual: time.Minute}
	n = o.normalize()
	if n.Workers != 3 || n.Seed != 9 || n.Size != cluster.SizeSmall || n.MaxVirtual != time.Minute {
		t.Errorf("normalize clobbered explicit values: %+v", n)
	}
}

func TestRenderHelpers(t *testing.T) {
	if got := fmtDur(90*time.Second, true); got != "1m30s" {
		t.Errorf("fmtDur = %q", got)
	}
	if got := fmtDur(time.Hour, false); got != "-" {
		t.Errorf("fmtDur unconverged = %q", got)
	}
	if got := fmtSpeedup(2*time.Hour, time.Hour, true, true); got != "2.00x" {
		t.Errorf("fmtSpeedup = %q", got)
	}
	if got := fmtSpeedup(0, time.Hour, false, true); !strings.Contains(got, "baseline") {
		t.Errorf("fmtSpeedup baseline-miss = %q", got)
	}
	if got := fmtSpeedup(time.Hour, 0, true, false); got != "-" {
		t.Errorf("fmtSpeedup other-miss = %q", got)
	}

	tb := newTable("a", "bb")
	tb.addRow("1", "2")
	var sb strings.Builder
	tb.render(&sb)
	out := sb.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "--") {
		t.Errorf("table render:\n%s", out)
	}
}
