package experiments

import (
	"fmt"
	"io"
	"sort"

	"specsync/internal/metrics"
	"specsync/internal/msg"
	"specsync/internal/wire"
)

// Fig12Result is the communication-overhead study (paper Figs. 12-13):
// accumulated data transfer over time for Original vs SpecSync-Adaptive,
// plus the per-message-kind breakdown for Adaptive.
type Fig12Result struct {
	PerWorkload []Fig12Workload
}

// Fig12Workload is one workload's transfer comparison.
type Fig12Workload struct {
	Workload WorkloadID
	// TransferOriginal/TransferAdaptive are accumulated-bytes series.
	TransferOriginal *metrics.Series
	TransferAdaptive *metrics.Series
	// Totals at end of run.
	TotalOriginal int64
	TotalAdaptive int64
	// Breakdown of the Adaptive run by message kind (Fig 13).
	Breakdown map[wire.Kind]struct{ Bytes, Msgs int64 }
	// DataBytes/ControlBytes split for the Adaptive run.
	DataBytes, ControlBytes int64
}

// Fig12 runs Original and Adaptive on every workload and accounts transfer.
func Fig12(o Options) (*Fig12Result, error) {
	o = o.normalize()
	res := &Fig12Result{}
	for _, id := range AllWorkloads {
		wl, err := buildWorkload(id, o)
		if err != nil {
			return nil, err
		}
		orig, err := runOne(o, wl, schemeASP(), nil)
		if err != nil {
			return nil, err
		}
		adapt, err := runOne(o, wl, schemeAdaptive(), nil)
		if err != nil {
			return nil, err
		}
		data, control := adapt.Transfer.Split()
		res.PerWorkload = append(res.PerWorkload, Fig12Workload{
			Workload:         id,
			TransferOriginal: &orig.TransferSeries,
			TransferAdaptive: &adapt.TransferSeries,
			TotalOriginal:    orig.Transfer.TotalBytes(),
			TotalAdaptive:    adapt.Transfer.TotalBytes(),
			Breakdown:        adapt.Transfer.Breakdown(),
			DataBytes:        data,
			ControlBytes:     control,
		})
	}
	return res, nil
}

// Render prints the accumulated-transfer series (Fig 12).
func (r *Fig12Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig 12: accumulated data transfer over time, Original vs SpecSync-Adaptive.")
	fmt.Fprintln(w, "        Paper shape: nearly identical accumulation rate; Adaptive finishes sooner,")
	fmt.Fprintln(w, "        so its total transfer is smaller (paper CIFAR-10: 3.17 TB vs 2.00 TB).")
	for _, fw := range r.PerWorkload {
		fmt.Fprintf(w, "\n[%s] accumulated bytes over time\n", fw.Workload)
		renderSeriesTable(w, "", "time",
			[]string{"Original", "SpecSync-Adaptive"},
			[]*metrics.Series{fw.TransferOriginal, fw.TransferAdaptive}, 10)
		fmt.Fprintf(w, "total: Original %s vs Adaptive %s (%.1f%% of Original)\n",
			metrics.HumanBytes(fw.TotalOriginal), metrics.HumanBytes(fw.TotalAdaptive),
			100*float64(fw.TotalAdaptive)/float64(fw.TotalOriginal))
	}
}

// Fig13View prints the per-kind breakdown of the Adaptive runs (Fig 13).
func (r *Fig12Result) Fig13View(w io.Writer) {
	fmt.Fprintln(w, "Fig 13: transfer breakdown for SpecSync-Adaptive by message kind.")
	fmt.Fprintln(w, "        Paper shape: parameter data dominates; SpecSync control messages")
	fmt.Fprintln(w, "        (notify/re-sync) are a negligible fraction.")
	reg := msg.Registry()
	for _, fw := range r.PerWorkload {
		fmt.Fprintf(w, "\n[%s]\n", fw.Workload)
		tb := newTable("kind", "class", "messages", "bytes", "share")
		kinds := make([]wire.Kind, 0, len(fw.Breakdown))
		for k := range fw.Breakdown {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool {
			return fw.Breakdown[kinds[i]].Bytes > fw.Breakdown[kinds[j]].Bytes
		})
		total := fw.DataBytes + fw.ControlBytes
		for _, k := range kinds {
			st := fw.Breakdown[k]
			class := "data"
			if msg.IsControl(k) {
				class = "control"
			}
			tb.addRow(reg.Name(k), class, fmt.Sprintf("%d", st.Msgs),
				metrics.HumanBytes(st.Bytes),
				fmt.Sprintf("%.3f%%", 100*float64(st.Bytes)/float64(total)))
		}
		tb.render(w)
		fmt.Fprintf(w, "control traffic overall: %s of %s (%.4f%%)\n",
			metrics.HumanBytes(fw.ControlBytes), metrics.HumanBytes(total),
			100*float64(fw.ControlBytes)/float64(total))
	}
}
