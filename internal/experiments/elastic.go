package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"time"

	"specsync/internal/cluster"
	"specsync/internal/elastic"
	"specsync/internal/trace"
)

// ElasticResult summarizes one grow/shrink run: how long rebalancing took,
// what it cost on the wire, and what it did to training throughput. The run
// is executed twice with the same seed and plan; Reproducible reports whether
// both produced the identical event trace (the elasticity protocol must not
// introduce nondeterminism into the DES).
type ElasticResult struct {
	Workers   int `json:"workers"`
	GrowTo    int `json:"grow_to"`
	Servers   int `json:"servers"`
	ServersTo int `json:"servers_to"`

	Joins          int64 `json:"joins"`
	Leaves         int64 `json:"leaves"`
	Migrations     int64 `json:"migrations"`
	MigrationBytes int64 `json:"migration_bytes"`
	// MeanRebalance / MaxRebalance are freeze-to-commit times: how long data
	// traffic on the involved shards stalled per migration.
	MeanRebalance time.Duration `json:"mean_rebalance_ns"`
	MaxRebalance  time.Duration `json:"max_rebalance_ns"`

	// Throughput in fully-acked pushes per virtual second, in the three
	// phases of the plan: before the scale-up, while doubled, and after the
	// scale-down.
	ThroughputBefore float64 `json:"throughput_before"`
	ThroughputDuring float64 `json:"throughput_during"`
	ThroughputAfter  float64 `json:"throughput_after"`

	TotalIters   int64   `json:"total_iters"`
	ServerPushes int64   `json:"server_pushes"`
	FinalLoss    float64 `json:"final_loss"`

	Digest       string `json:"trace_digest"`
	Reproducible bool   `json:"reproducible"`
}

// Elastic runs the elasticity benchmark: an MF cluster doubles its workers
// (and grows its server set by half) a quarter of the way into a fixed
// horizon, then shrinks back at the halfway mark.
func Elastic(o Options) (*ElasticResult, error) {
	o = o.normalize()
	workers := o.Workers
	servers := workers
	if servers > 8 {
		servers = 8
	}
	extraSrv := (servers + 1) / 2

	build := func() (cluster.Config, error) {
		// Shard the data for the doubled cluster so joiners have work.
		wl, err := cluster.NewMF(o.Size, 2*workers, o.Seed)
		if err != nil {
			return cluster.Config{}, err
		}
		wl.TargetLoss = 0 // fixed horizon: phase throughput needs all phases to run
		horizon := 90 * wl.IterTime
		return cluster.Config{
			Workload:   wl,
			Scheme:     schemeAdaptive(),
			Workers:    workers,
			Servers:    servers,
			Seed:       o.Seed,
			Scale:      elastic.GrowShrink(workers, workers, servers, extraSrv, horizon/4, horizon/2),
			MaxVirtual: horizon,
			KeepTrace:  true,
		}, nil
	}

	run := func() (*cluster.Result, string, error) {
		cfg, err := build()
		if err != nil {
			return nil, "", err
		}
		res, err := cluster.Run(cfg)
		if err != nil {
			return nil, "", fmt.Errorf("experiments: elastic: %w", err)
		}
		var buf bytes.Buffer
		if err := trace.WriteJSONL(&buf, res.Trace.Events()); err != nil {
			return nil, "", err
		}
		sum := sha256.Sum256(buf.Bytes())
		return res, hex.EncodeToString(sum[:]), nil
	}

	res, digest, err := run()
	if err != nil {
		return nil, err
	}
	o.progressf("  elastic %d->%d workers: %d migrations, final loss %.4f",
		workers, 2*workers, res.Scale.Migrations, res.FinalLoss)
	_, digest2, err := run()
	if err != nil {
		return nil, err
	}

	cfg, err := build()
	if err != nil {
		return nil, err
	}
	horizon := cfg.MaxVirtual
	out := &ElasticResult{
		Workers:      workers,
		GrowTo:       2 * workers,
		Servers:      servers,
		ServersTo:    servers + extraSrv,
		TotalIters:   res.TotalIters,
		FinalLoss:    res.FinalLoss,
		Digest:       digest,
		Reproducible: digest == digest2,
	}
	if res.Obs != nil {
		out.ServerPushes = res.Obs.ServerPushes
	}
	if s := res.Scale; s != nil {
		out.Joins, out.Leaves = s.Joins, s.Leaves
		out.Migrations, out.MigrationBytes = s.Migrations, s.MigrationBytes
		var total time.Duration
		for _, d := range s.Durations {
			total += d
			if d > out.MaxRebalance {
				out.MaxRebalance = d
			}
		}
		if len(s.Durations) > 0 {
			out.MeanRebalance = total / time.Duration(len(s.Durations))
		}
	}

	// Phase throughput from the trace: pushes per virtual second before the
	// scale-up, while grown, and after the scale-down. The simulator clock
	// starts at Unix(0,0).
	start := time.Unix(0, 0)
	upAt, downAt := start.Add(horizon/4), start.Add(horizon/2)
	var before, during, after float64
	for _, ev := range res.Trace.Events() {
		if ev.Kind != trace.KindPush {
			continue
		}
		switch {
		case ev.At.Before(upAt):
			before++
		case ev.At.Before(downAt):
			during++
		default:
			after++
		}
	}
	out.ThroughputBefore = before / (horizon / 4).Seconds()
	out.ThroughputDuring = during / (horizon / 4).Seconds()
	out.ThroughputAfter = after / (horizon / 2).Seconds()
	return out, nil
}

// Render prints the elasticity summary.
func (r *ElasticResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Elasticity: %d->%d->%d workers, %d->%d->%d server shards (SpecSync-Adaptive, MF)\n",
		r.Workers, r.GrowTo, r.Workers, r.Servers, r.ServersTo, r.Servers)
	tb := newTable("phase", "pushes/s")
	tb.addRow("before scale-up", fmt.Sprintf("%.2f", r.ThroughputBefore))
	tb.addRow("grown", fmt.Sprintf("%.2f", r.ThroughputDuring))
	tb.addRow("after scale-down", fmt.Sprintf("%.2f", r.ThroughputAfter))
	tb.render(w)
	fmt.Fprintf(w, "scale events: %d joins, %d retires, %d migrations (%d bytes of parameter state)\n",
		r.Joins, r.Leaves, r.Migrations, r.MigrationBytes)
	fmt.Fprintf(w, "rebalance stall: mean %v, max %v\n",
		r.MeanRebalance.Round(time.Microsecond), r.MaxRebalance.Round(time.Microsecond))
	fmt.Fprintf(w, "iterations=%d server pushes=%d final loss=%.4f\n", r.TotalIters, r.ServerPushes, r.FinalLoss)
	fmt.Fprintf(w, "trace digest %s (reproducible=%v)\n", r.Digest, r.Reproducible)
}
