package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"specsync/internal/metrics"
)

// table is a minimal aligned-column text renderer.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table {
	return &table{header: header}
}

func (t *table) addRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// fmtDur renders a duration compactly ("-" for zero when unconverged).
func fmtDur(d time.Duration, ok bool) string {
	if !ok {
		return "-"
	}
	return d.Round(time.Second).String()
}

func fmtF(v float64) string { return fmt.Sprintf("%.4f", v) }

func fmtSpeedup(base, other time.Duration, baseOK, otherOK bool) string {
	switch {
	case baseOK && otherOK && other > 0:
		return fmt.Sprintf("%.2fx", float64(base)/float64(other))
	case !baseOK && otherOK:
		return ">1x (baseline never converged)"
	default:
		return "-"
	}
}

// renderSeriesTable prints several loss series side by side on a shared,
// downsampled time axis — the textual analogue of the paper's learning-curve
// plots.
func renderSeriesTable(w io.Writer, title, xLabel string, names []string, series []*metrics.Series, points int) {
	fmt.Fprintf(w, "%s\n", title)
	tb := newTable(append([]string{xLabel}, names...)...)

	// Shared axis from the longest series.
	var maxT time.Duration
	for _, s := range series {
		if s.Len() > 0 && s.Last().T > maxT {
			maxT = s.Last().T
		}
	}
	if maxT == 0 || points < 2 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	for i := 0; i < points; i++ {
		at := time.Duration(float64(maxT) * float64(i) / float64(points-1))
		row := []string{at.Round(time.Second).String()}
		for _, s := range series {
			if s.Len() == 0 || s.Last().T < at {
				row = append(row, "-")
			} else {
				row = append(row, fmtF(s.ValueAt(at)))
			}
		}
		tb.addRow(row...)
	}
	tb.render(w)
}

// renderIterSeriesTable prints loss as a function of cumulative iteration
// count (paper Fig. 9's x-axis).
func renderIterSeriesTable(w io.Writer, title string, names []string, loss, iters []*metrics.Series, points int) {
	fmt.Fprintf(w, "%s\n", title)
	tb := newTable(append([]string{"iterations"}, names...)...)

	var maxIters float64
	for _, s := range iters {
		if s.Len() > 0 && s.Last().V > maxIters {
			maxIters = s.Last().V
		}
	}
	if maxIters == 0 || points < 2 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	for p := 0; p < points; p++ {
		target := maxIters * float64(p) / float64(points-1)
		row := []string{fmt.Sprintf("%.0f", target)}
		for si := range loss {
			row = append(row, lossAtIters(loss[si], iters[si], target))
		}
		tb.addRow(row...)
	}
	tb.render(w)
}

// lossAtIters looks up the loss at the probe where the cumulative iteration
// count first reached target.
func lossAtIters(loss, iters *metrics.Series, target float64) string {
	lossPts, iterPts := loss.Snapshot(), iters.Snapshot()
	if len(lossPts) == 0 || len(iterPts) == 0 {
		return "-"
	}
	for i, p := range iterPts {
		if p.V >= target {
			if i < len(lossPts) {
				return fmtF(lossPts[i].V)
			}
			break
		}
	}
	return "-"
}
