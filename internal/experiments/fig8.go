package experiments

import (
	"fmt"
	"io"
	"time"

	"specsync/internal/metrics"
)

// Fig8Result is the headline evaluation (paper Fig. 8): loss-over-time and
// runtime-to-convergence for Original (ASP), SpecSync-Cherrypick and
// SpecSync-Adaptive on all three workloads. Fig9Result derives from the same
// runs (loss as a function of iteration count), so both are produced
// together by RunFig8.
type Fig8Result struct {
	PerWorkload []Fig8Workload
}

// Fig8Workload is one workload's three-scheme comparison.
type Fig8Workload struct {
	Workload WorkloadID
	Schemes  []string
	Loss     []*metrics.Series
	Iters    []*metrics.Series
	Converge []time.Duration
	OK       []bool
	// ItersAtConverge is the cluster-wide iteration count at convergence.
	ItersAtConverge []int64
	Aborts          []int64
	ReSyncs         []int64
}

// RunFig8 executes the nine runs behind Figs. 8 and 9.
func RunFig8(o Options) (*Fig8Result, error) {
	o = o.normalize()
	res := &Fig8Result{}
	for _, id := range AllWorkloads {
		wl, err := buildWorkload(id, o)
		if err != nil {
			return nil, err
		}
		fw := Fig8Workload{Workload: id}
		schemes := []struct {
			name string
			cfg  func() schemeConfig
		}{
			{"Original", schemeASP},
			{"SpecSync-Cherrypick", func() schemeConfig { return schemeCherry(id, wl.IterTime) }},
			{"SpecSync-Adaptive", schemeAdaptive},
		}
		for _, s := range schemes {
			run, err := runOne(o, wl, s.cfg(), nil)
			if err != nil {
				return nil, err
			}
			fw.Schemes = append(fw.Schemes, s.name)
			fw.Loss = append(fw.Loss, &run.Loss)
			fw.Iters = append(fw.Iters, &run.IterSeries)
			fw.Converge = append(fw.Converge, run.ConvergeTime)
			fw.OK = append(fw.OK, run.Converged)
			fw.ItersAtConverge = append(fw.ItersAtConverge, run.ItersAtConverge)
			fw.Aborts = append(fw.Aborts, run.Aborts)
			fw.ReSyncs = append(fw.ReSyncs, run.ReSyncs)
		}
		res.PerWorkload = append(res.PerWorkload, fw)
	}
	return res, nil
}

// Render prints the Fig. 8 view: learning curves plus runtime comparison.
func (r *Fig8Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig 8: loss over time and runtime-to-convergence, Original vs SpecSync.")
	fmt.Fprintln(w, "       Paper: up to 2.97x (MF), 2.25x (CIFAR-10), 3x (ImageNet) speedup;")
	fmt.Fprintln(w, "       Adaptive close to Cherrypick.")
	for _, fw := range r.PerWorkload {
		fmt.Fprintf(w, "\n[%s] loss over time\n", fw.Workload)
		renderSeriesTable(w, "", "time", fw.Schemes, fw.Loss, 12)

		tb := newTable("scheme", "time-to-target", "speedup vs Original", "aborts", "resyncs")
		for i := range fw.Schemes {
			tb.addRow(fw.Schemes[i],
				fmtDur(fw.Converge[i], fw.OK[i]),
				fmtSpeedup(fw.Converge[0], fw.Converge[i], fw.OK[0], fw.OK[i]),
				fmt.Sprintf("%d", fw.Aborts[i]),
				fmt.Sprintf("%d", fw.ReSyncs[i]))
		}
		tb.render(w)
	}
}

// Fig9View renders the same runs on the iteration axis (paper Fig. 9).
func (r *Fig8Result) Fig9View(w io.Writer) {
	fmt.Fprintln(w, "Fig 9: loss vs cumulative iteration count (same runs as Fig 8).")
	fmt.Fprintln(w, "       Paper: SpecSync needs up to 58% fewer iterations to converge.")
	for _, fw := range r.PerWorkload {
		fmt.Fprintf(w, "\n[%s] loss by iterations\n", fw.Workload)
		renderIterSeriesTable(w, "", fw.Schemes, fw.Loss, fw.Iters, 12)

		tb := newTable("scheme", "iterations-to-target", "reduction vs Original")
		base := fw.ItersAtConverge[0]
		for i := range fw.Schemes {
			red := "-"
			if fw.OK[i] && fw.OK[0] && base > 0 {
				red = fmt.Sprintf("%.0f%%", 100*(1-float64(fw.ItersAtConverge[i])/float64(base)))
			}
			iters := "-"
			if fw.OK[i] {
				iters = fmt.Sprintf("%d", fw.ItersAtConverge[i])
			}
			tb.addRow(fw.Schemes[i], iters, red)
		}
		tb.render(w)
	}
}
