package experiments

import (
	"fmt"
	"io"
	"time"

	"specsync/internal/cluster"
	"specsync/internal/faults"
)

// FailoverResult summarizes the replication benchmark: the zero-loss claim
// (a crashed, replicated shard run ends on the byte-identical model as the
// fault-free run, while checkpoint restore provably loses pushes) and the
// scheduler-failover claim (an elected standby takes over inside the
// workers' detection window, so degraded broadcast mode never engages).
type FailoverResult struct {
	Replicas int `json:"replicas"`
	Standbys int `json:"standbys"`

	// Zero-loss proof: single-worker run with a fixed iteration budget, so
	// both runs apply the identical update sequence and digest equality is
	// exactly "no acknowledged push was lost".
	BaselineDigest  string `json:"baseline_digest"`
	ReplicaDigest   string `json:"replica_digest"`
	ZeroLoss        bool   `json:"zero_loss"`
	ReplicaLost     int64  `json:"replica_lost_pushes"`
	CheckpointLost  int64  `json:"checkpoint_lost_pushes"`
	CheckpointMatch bool   `json:"checkpoint_digest_match"` // expected false
	Promotions      int64  `json:"promotions"`

	// Scheduler failover at cluster scale.
	Elections      int64         `json:"elections"`
	FinalTerm      int64         `json:"final_term"`
	LeaderNode     string        `json:"leader_node"`
	DegradedEnters int64         `json:"degraded_enters"`
	Converged      bool          `json:"converged"`
	ConvergeTime   time.Duration `json:"converge_time_ns"`

	// Reproducible: two identical replicated crash runs produced the same
	// final digest (replication must not perturb DES determinism).
	Reproducible bool `json:"reproducible"`
}

// Failover runs the replication benchmark: a crash-server plan against a
// replicated and a checkpoint-only MF shard fleet, and a crash-scheduler
// plan against a standby fleet. replicas and standbys must both be >= 1.
func Failover(o Options, replicas, standbys int) (*FailoverResult, error) {
	o = o.normalize()
	if replicas < 1 || standbys < 1 {
		return nil, fmt.Errorf("failover experiment needs replicas >= 1 and standbys >= 1 (got %d, %d)", replicas, standbys)
	}
	res := &FailoverResult{Replicas: replicas, Standbys: standbys}

	// -- Zero-loss: single worker, fixed budget, crash one shard mid-run.
	zeroCfg := func() (cluster.Config, error) {
		wl, err := cluster.NewMF(o.Size, 1, o.Seed)
		if err != nil {
			return cluster.Config{}, err
		}
		return cluster.Config{
			Workload:          wl,
			Scheme:            schemeAdaptive(),
			Workers:           1,
			Servers:           4,
			Seed:              o.Seed,
			MaxVirtual:        o.MaxVirtual,
			MaxItersPerWorker: 40,
			ConsecutiveBelow:  1 << 30, // the budget ends the run, not the target
		}, nil
	}
	crash := func(wl cluster.Workload) *faults.Plan {
		return &faults.Plan{Seed: o.Seed, Events: []faults.Event{
			{Kind: faults.KindCrashServer, Node: 1, At: 10 * wl.IterTime, RestartAfter: 4 * wl.IterTime},
		}}
	}
	runZero := func(withReplicas, withCrash bool) (*cluster.Result, error) {
		cfg, err := zeroCfg()
		if err != nil {
			return nil, err
		}
		if withReplicas {
			cfg.Replication = cluster.Replication{Replicas: replicas}
		}
		if withCrash {
			cfg.Faults = crash(cfg.Workload)
		}
		return cluster.Run(cfg)
	}

	baseline, err := runZero(true, false)
	if err != nil {
		return nil, err
	}
	res.BaselineDigest = baseline.ParamsDigest
	o.progressf("failover: fault-free baseline digest %.12s...", baseline.ParamsDigest)

	crashed, err := runZero(true, true)
	if err != nil {
		return nil, err
	}
	res.ReplicaDigest = crashed.ParamsDigest
	res.ZeroLoss = crashed.ParamsDigest == baseline.ParamsDigest
	res.ReplicaLost = crashed.Faults.Stats().LostPushes
	if crashed.Replication != nil {
		res.Promotions = crashed.Replication.Promotions
	}
	o.progressf("failover: replicated crash run digest %.12s... (zero loss: %v)", crashed.ParamsDigest, res.ZeroLoss)

	again, err := runZero(true, true)
	if err != nil {
		return nil, err
	}
	res.Reproducible = again.ParamsDigest == crashed.ParamsDigest

	lossy, err := runZero(false, true)
	if err != nil {
		return nil, err
	}
	res.CheckpointLost = lossy.Faults.Stats().LostPushes
	res.CheckpointMatch = lossy.ParamsDigest == baseline.ParamsDigest
	o.progressf("failover: checkpoint-only crash run lost %d pushes", res.CheckpointLost)

	// -- Scheduler failover at cluster scale: kill the leader, never
	// restart it, and require the standbys to carry the run to convergence.
	wl, err := cluster.NewMF(o.Size, o.Workers, o.Seed)
	if err != nil {
		return nil, err
	}
	sched, err := cluster.Run(cluster.Config{
		Workload:   wl,
		Scheme:     schemeAdaptive(),
		Workers:    o.Workers,
		Seed:       o.Seed,
		MaxVirtual: o.MaxVirtual,
		Replication: cluster.Replication{
			StandbySchedulers: standbys,
		},
		Faults: &faults.Plan{Seed: o.Seed, Events: []faults.Event{
			{Kind: faults.KindCrashScheduler, At: 8 * wl.IterTime},
		}},
	})
	if err != nil {
		return nil, err
	}
	res.Converged = sched.Converged
	res.ConvergeTime = sched.ConvergeTime
	if rs := sched.Replication; rs != nil {
		res.Elections = rs.Elections
		res.FinalTerm = rs.FinalTerm
		res.LeaderNode = rs.LeaderNode
	}
	res.DegradedEnters = sched.Faults.Stats().DegradedEnters
	o.progressf("failover: scheduler kill -> %d elections, leader %s, %d degraded entries",
		res.Elections, res.LeaderNode, res.DegradedEnters)
	return res, nil
}

// Render prints the failover summary.
func (r *FailoverResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Replicated failover (R=%d shard backups, %d standby schedulers)\n\n", r.Replicas, r.Standbys)
	fmt.Fprintf(w, "  shard crash, replicated:      lost pushes %d, promotions %d, digest match %v\n",
		r.ReplicaLost, r.Promotions, r.ZeroLoss)
	fmt.Fprintf(w, "  shard crash, checkpoint-only: lost pushes %d, digest match %v\n",
		r.CheckpointLost, r.CheckpointMatch)
	fmt.Fprintf(w, "  deterministic replay:         %v\n", r.Reproducible)
	fmt.Fprintf(w, "  scheduler kill: %d election(s), leader %s at term %d, %d degraded entries, converged %v",
		r.Elections, r.LeaderNode, r.FinalTerm, r.DegradedEnters, r.Converged)
	if r.Converged {
		fmt.Fprintf(w, " at %v", r.ConvergeTime.Round(time.Second))
	}
	fmt.Fprintln(w)
	if r.ZeroLoss && !r.CheckpointMatch {
		fmt.Fprintf(w, "\n  zero-loss failover holds: replication preserved every acknowledged push; checkpoint restore did not\n")
	}
}
