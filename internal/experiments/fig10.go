package experiments

import (
	"fmt"
	"io"
	"time"

	"specsync/internal/cluster"
	"specsync/internal/metrics"
)

// Fig10Result is the heterogeneity study (paper Fig. 10): CIFAR-like
// training with Original vs SpecSync-Adaptive on the homogeneous Cluster 1
// and the 4-instance-type heterogeneous Cluster 2.
type Fig10Result struct {
	Names    []string
	Loss     []*metrics.Series
	Converge []time.Duration
	OK       []bool
}

// Fig10 runs the four configurations.
func Fig10(o Options) (*Fig10Result, error) {
	o = o.normalize()
	wl, err := buildWorkload(WorkloadCIFAR, o)
	if err != nil {
		return nil, err
	}
	res := &Fig10Result{}
	cases := []struct {
		name   string
		sc     schemeConfig
		speeds []float64
	}{
		{"Original/homogeneous", schemeASP(), nil},
		{"Original/heterogeneous", schemeASP(), cluster.InstanceSpeeds(o.Workers)},
		{"Adaptive/homogeneous", schemeAdaptive(), nil},
		{"Adaptive/heterogeneous", schemeAdaptive(), cluster.InstanceSpeeds(o.Workers)},
	}
	for _, c := range cases {
		speeds := c.speeds
		run, err := runOne(o, wl, c.sc, func(cc *clusterConfig) { cc.Speeds = speeds })
		if err != nil {
			return nil, err
		}
		res.Names = append(res.Names, c.name)
		res.Loss = append(res.Loss, &run.Loss)
		res.Converge = append(res.Converge, run.ConvergeTime)
		res.OK = append(res.OK, run.Converged)
	}
	return res, nil
}

// Render prints the four learning curves and convergence times.
func (r *Fig10Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig 10: heterogeneity (CIFAR-like; heterogeneous = paper Cluster 2 instance mix).")
	fmt.Fprintln(w, "        Paper shape: Adaptive beats Original in both clusters; heterogeneity slows")
	fmt.Fprintln(w, "        training; Adaptive's edge shrinks under heterogeneity (less uniform arrivals).")
	renderSeriesTable(w, "\nloss over time", "time", r.Names, r.Loss, 12)
	tb := newTable("configuration", "time-to-target")
	for i := range r.Names {
		tb.addRow(r.Names[i], fmtDur(r.Converge[i], r.OK[i]))
	}
	tb.render(w)
}
