package experiments

import (
	"strings"
	"testing"
	"time"

	"specsync/internal/metrics"
)

func seriesOf(points ...float64) *metrics.Series {
	var s metrics.Series
	for i, v := range points {
		s.Add(time.Duration(i+1)*time.Second, v)
	}
	return &s
}

func TestRenderSeriesTable(t *testing.T) {
	var sb strings.Builder
	renderSeriesTable(&sb, "title", "time",
		[]string{"A", "B"},
		[]*metrics.Series{seriesOf(3, 2, 1), seriesOf(30, 20)},
		4)
	out := sb.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "time") {
		t.Errorf("missing headers:\n%s", out)
	}
	// B is shorter: its column must show "-" at the final time row.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, "-") {
		t.Errorf("short series not dashed at horizon: %q", last)
	}
	// A's final value appears.
	if !strings.Contains(out, "1.0000") {
		t.Errorf("missing final A value:\n%s", out)
	}
}

func TestRenderSeriesTableEmpty(t *testing.T) {
	var sb strings.Builder
	renderSeriesTable(&sb, "t", "x", []string{"A"}, []*metrics.Series{{}}, 5)
	if !strings.Contains(sb.String(), "no data") {
		t.Errorf("empty series should render 'no data': %q", sb.String())
	}
}

func TestRenderIterSeriesTable(t *testing.T) {
	loss := seriesOf(5, 4, 3, 2)
	var iters metrics.Series
	for i := 1; i <= 4; i++ {
		iters.Add(time.Duration(i)*time.Second, float64(i*10))
	}
	var sb strings.Builder
	renderIterSeriesTable(&sb, "by iters", []string{"A"},
		[]*metrics.Series{loss}, []*metrics.Series{&iters}, 5)
	out := sb.String()
	if !strings.Contains(out, "iterations") {
		t.Errorf("missing axis header:\n%s", out)
	}
	// Loss at the last iteration count (40) is 2.
	if !strings.Contains(out, "2.0000") {
		t.Errorf("missing terminal loss:\n%s", out)
	}
}

func TestLossAtIters(t *testing.T) {
	loss := seriesOf(5, 4, 3)
	var iters metrics.Series
	iters.Add(1*time.Second, 10)
	iters.Add(2*time.Second, 20)
	iters.Add(3*time.Second, 30)
	if got := lossAtIters(loss, &iters, 15); got != "4.0000" {
		t.Errorf("lossAtIters(15) = %q", got)
	}
	if got := lossAtIters(loss, &iters, 99); got != "-" {
		t.Errorf("lossAtIters(99) = %q", got)
	}
	if got := lossAtIters(&metrics.Series{}, &iters, 1); got != "-" {
		t.Errorf("empty loss = %q", got)
	}
}
