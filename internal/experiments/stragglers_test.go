package experiments

import (
	"strings"
	"testing"
	"time"

	"specsync/internal/cluster"
)

func TestStragglersQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	o := Options{
		Workers:    4,
		Seed:       1,
		Size:       cluster.SizeSmall,
		MaxVirtual: 20 * time.Minute,
	}
	r, err := Stragglers(o)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(stragglerProfiles()) * len(stragglersRoster()) * len(stragglerMitigations())
	if len(r.Cells) != wantCells {
		t.Fatalf("matrix produced %d cells, want %d", len(r.Cells), wantCells)
	}
	if !r.Reproducible {
		for _, c := range r.Cells {
			if !c.Reproducible {
				t.Errorf("cell %s: double-run trace digests diverged", c.Name)
			}
		}
		t.Fatal("matrix is not deterministic")
	}
	byName := map[string]StragglerCell{}
	for _, c := range r.Cells {
		byName[c.Name] = c
		if c.TotalIters == 0 {
			t.Errorf("cell %s did no iterations", c.Name)
		}
		if c.Recall != 1 {
			t.Errorf("cell %s: detector recall %.2f, want 1 (missed a planned straggler)", c.Name, c.Recall)
		}
	}
	// The mitigations must actually act on every profile: clone cells race at
	// least one backup (deduping the loser's pushes), rebalance cells swap at
	// least one member.
	for _, c := range r.Cells {
		switch c.Mitigation {
		case "clone":
			if c.Clones == 0 {
				t.Errorf("cell %s: no clone started", c.Name)
			}
			if c.CloneDeduped == 0 {
				t.Errorf("cell %s: clone raced nobody (0 deduped pushes)", c.Name)
			}
		case "rebalance":
			if c.Rebalances == 0 {
				t.Errorf("cell %s: no member swapped", c.Name)
			}
		}
	}
	// The qualitative findings the matrix exists to show. Sustained slowdown
	// (degrade) hurts BSP more than the stale-tolerant schemes, and each
	// mitigation beats doing nothing on its target profile.
	if bsp, spec := byName["BSP/degrade/none"], byName["SpecSync-Adaptive/degrade/none"]; bsp.TotalIters >= spec.TotalIters {
		t.Errorf("degrade: BSP did %d iters, SpecSync %d; BSP should degrade more", bsp.TotalIters, spec.TotalIters)
	}
	for _, prof := range []string{"degrade", "rack"} {
		none, clone := byName["BSP/"+prof+"/none"], byName["BSP/"+prof+"/clone"]
		if clone.TotalIters <= none.TotalIters {
			t.Errorf("%s: clone mitigation did %d iters vs %d unmitigated, want an improvement",
				prof, clone.TotalIters, none.TotalIters)
		}
		rebal := byName["BSP/"+prof+"/rebalance"]
		if rebal.Converged && none.Converged && rebal.ConvergeTime >= none.ConvergeTime {
			t.Errorf("%s: rebalance converged in %v vs %v unmitigated, want an improvement",
				prof, rebal.ConvergeTime, none.ConvergeTime)
		}
	}

	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "all cells reproducible=true") {
		t.Errorf("render missing the reproducibility verdict:\n%s", sb.String())
	}
}
