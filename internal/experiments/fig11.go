package experiments

import (
	"fmt"
	"io"
	"time"
)

// Fig11Result is the scalability study (paper Fig. 11): for several cluster
// sizes, (a) the speedup of SpecSync-Adaptive over Original to reach the
// target loss, and (b) the loss improvement at a fixed time budget.
type Fig11Result struct {
	Sizes []int
	// SpeedupToTarget[i] = Original time / Adaptive time at size Sizes[i].
	SpeedupToTarget []float64
	SpeedupValid    []bool
	// Budget is the fixed-time budget used for the loss comparison.
	Budget time.Duration
	// LossOriginal/LossAdaptive at the budget.
	LossOriginal []float64
	LossAdaptive []float64
}

// Fig11 runs both scenarios at cluster sizes 20/30/40 (paper's sizes),
// scaled down proportionally for small option sizes.
func Fig11(o Options) (*Fig11Result, error) {
	o = o.normalize()
	sizes := []int{o.Workers / 2, o.Workers * 3 / 4, o.Workers}
	res := &Fig11Result{Sizes: sizes}

	for _, m := range sizes {
		oo := o
		oo.Workers = m
		wl, err := buildWorkload(WorkloadCIFAR, oo)
		if err != nil {
			return nil, err
		}
		if res.Budget == 0 {
			// Fixed budget: a mid-training point where the curves have
			// separated but not yet converged (roughly 70% of the baseline's
			// typical time-to-target on this workload).
			res.Budget = 400 * wl.IterTime
		}
		orig, err := runOne(oo, wl, schemeASP(), nil)
		if err != nil {
			return nil, err
		}
		adapt, err := runOne(oo, wl, schemeAdaptive(), nil)
		if err != nil {
			return nil, err
		}
		valid := orig.Converged && adapt.Converged && adapt.ConvergeTime > 0
		speedup := 0.0
		if valid {
			speedup = float64(orig.ConvergeTime) / float64(adapt.ConvergeTime)
		}
		res.SpeedupToTarget = append(res.SpeedupToTarget, speedup)
		res.SpeedupValid = append(res.SpeedupValid, valid)
		res.LossOriginal = append(res.LossOriginal, orig.Loss.ValueAt(res.Budget))
		res.LossAdaptive = append(res.LossAdaptive, adapt.Loss.ValueAt(res.Budget))
	}
	return res, nil
}

// Render prints both scalability views.
func (r *Fig11Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig 11: scalability of SpecSync-Adaptive vs Original (CIFAR-like).")
	fmt.Fprintln(w, "        Paper shape: Adaptive wins at every size and the gap grows with cluster size.")
	tb := newTable("workers", "speedup to target", fmt.Sprintf("loss@%v Original", r.Budget.Round(time.Second)),
		fmt.Sprintf("loss@%v Adaptive", r.Budget.Round(time.Second)), "improvement")
	for i, m := range r.Sizes {
		sp := "-"
		if r.SpeedupValid[i] {
			sp = fmt.Sprintf("%.2fx", r.SpeedupToTarget[i])
		}
		impr := "-"
		if r.LossOriginal[i] > 0 {
			impr = fmt.Sprintf("%.1f%%", 100*(r.LossOriginal[i]-r.LossAdaptive[i])/r.LossOriginal[i])
		}
		tb.addRow(fmt.Sprintf("%d", m), sp, fmtF(r.LossOriginal[i]), fmtF(r.LossAdaptive[i]), impr)
	}
	tb.render(w)
}
