package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"specsync/internal/metrics"
)

// WriteSeriesCSV exports named time series on a shared union time axis, one
// row per distinct sample time, empty cells where a series has no sample at
// or before that time yet. The output plots directly in any tool.
func WriteSeriesCSV(w io.Writer, xLabel string, names []string, series []*metrics.Series) error {
	if len(names) != len(series) {
		return fmt.Errorf("experiments: %d names for %d series", len(names), len(series))
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{xLabel}, names...)); err != nil {
		return err
	}

	// Union of sample times.
	seen := map[time.Duration]struct{}{}
	var times []time.Duration
	snapshots := make([][]metrics.Point, len(series))
	for i, s := range series {
		snapshots[i] = s.Snapshot()
		for _, p := range snapshots[i] {
			if _, dup := seen[p.T]; !dup {
				seen[p.T] = struct{}{}
				times = append(times, p.T)
			}
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	for _, at := range times {
		row := make([]string, 0, len(series)+1)
		row = append(row, strconv.FormatFloat(at.Seconds(), 'f', 3, 64))
		for i, s := range series {
			if len(snapshots[i]) == 0 || snapshots[i][0].T > at {
				row = append(row, "")
				continue
			}
			row = append(row, strconv.FormatFloat(s.ValueAt(at), 'g', 8, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVFig8 exports each workload's loss curves from a Fig8 run.
func (r *Fig8Result) CSVFig8(open func(name string) (io.WriteCloser, error)) error {
	for _, fw := range r.PerWorkload {
		f, err := open(fmt.Sprintf("fig8_%s.csv", fw.Workload))
		if err != nil {
			return err
		}
		err = WriteSeriesCSV(f, "seconds", fw.Schemes, fw.Loss)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// CSVFig12 exports each workload's accumulated-transfer curves.
func (r *Fig12Result) CSVFig12(open func(name string) (io.WriteCloser, error)) error {
	for _, fw := range r.PerWorkload {
		f, err := open(fmt.Sprintf("fig12_%s.csv", fw.Workload))
		if err != nil {
			return err
		}
		err = WriteSeriesCSV(f, "seconds",
			[]string{"Original", "SpecSync-Adaptive"},
			[]*metrics.Series{fw.TransferOriginal, fw.TransferAdaptive})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}
