package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"time"

	"specsync/internal/cluster"
	"specsync/internal/scheme"
	"specsync/internal/trace"
)

// MultiJobRow is one job's outcome on the shared fleet next to its standalone
// baseline.
type MultiJobRow struct {
	Job     string
	Scheme  string
	Workers int
	Hetero  bool

	Converged  bool
	FinalLoss  float64
	AdmittedAt time.Duration
	// FleetConverge is time-to-target measured from admission on the shared
	// fleet; SoloConverge is the same spec run alone. Epsilon is the relative
	// slowdown (fleet/solo - 1) — the cross-job isolation cost.
	FleetConverge time.Duration
	SoloConverge  time.Duration
	Epsilon       float64

	Bytes           int64
	Pushes          int64
	Aborts          int64
	ThrottledPushes int64
}

// MultiJobResult is the multi-tenancy experiment: J concurrent jobs with
// mixed synchronization schemes sharing one PS fleet.
type MultiJobResult struct {
	Rows []MultiJobRow

	// FleetBytes is the simulator's fleet-wide byte total; SumJobBytes is the
	// sum of the per-job accounts. The platform invariant is equality.
	FleetBytes  int64
	SumJobBytes int64

	// Digest is the SHA-256 of the fleet's full event trace; Deterministic
	// reports whether an identical second run reproduced it.
	Digest        string
	Deterministic bool

	Elapsed time.Duration
	Ticks   int64
	// MaxEpsilon is the worst per-job isolation cost.
	MaxEpsilon float64
}

// multiJobSpecs builds the experiment's job mix: BSP, SSP, and
// SpecSync-Adaptive on the MF workload, the adaptive job on a heterogeneous
// (straggler-bearing) worker pool, staggered arrivals.
func multiJobSpecs(o Options) ([]cluster.JobSpec, error) {
	w := o.Workers / 2
	if w < 4 {
		w = 4
	}
	mk := func(seed int64) (cluster.Workload, error) {
		return cluster.NewMF(o.Size, w, seed)
	}
	wl0, err := mk(o.Seed)
	if err != nil {
		return nil, err
	}
	wl1, err := mk(o.Seed + 100)
	if err != nil {
		return nil, err
	}
	wl2, err := mk(o.Seed + 200)
	if err != nil {
		return nil, err
	}
	return []cluster.JobSpec{
		{Name: "bsp", Workload: wl0, Scheme: scheme.Config{Base: scheme.BSP},
			Workers: w, Seed: o.Seed},
		{Name: "ssp", Workload: wl1, Scheme: scheme.Config{Base: scheme.SSP, Staleness: 3},
			Workers: w, Seed: o.Seed + 100},
		{Name: "spec-hetero", Workload: wl2, Scheme: schemeAdaptive(),
			Workers: w, Seed: o.Seed + 200, Speeds: cluster.InstanceSpeeds(w),
			SubmitAt: wl2.IterTime * 4},
	}, nil
}

func multiJobFleet(o Options, keepTrace bool) (*cluster.FleetResult, error) {
	specs, err := multiJobSpecs(o)
	if err != nil {
		return nil, err
	}
	return cluster.RunFleet(cluster.FleetConfig{
		Jobs:       specs,
		Seed:       o.Seed,
		MaxVirtual: o.MaxVirtual,
		KeepTrace:  keepTrace,
	})
}

func traceDigest(res *cluster.FleetResult) (string, error) {
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, res.Trace.Events()); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// MultiJob runs the multi-tenancy experiment: the shared fleet twice (for the
// reproducibility digest) and each job standalone (for the isolation
// epsilon).
func MultiJob(o Options) (*MultiJobResult, error) {
	o = o.normalize()
	o.progressf("multijob: shared fleet, run 1")
	fleet, err := multiJobFleet(o, true)
	if err != nil {
		return nil, err
	}
	digest, err := traceDigest(fleet)
	if err != nil {
		return nil, err
	}
	o.progressf("multijob: shared fleet, run 2 (reproducibility)")
	fleet2, err := multiJobFleet(o, true)
	if err != nil {
		return nil, err
	}
	digest2, err := traceDigest(fleet2)
	if err != nil {
		return nil, err
	}

	specs, err := multiJobSpecs(o)
	if err != nil {
		return nil, err
	}
	res := &MultiJobResult{
		Digest:        digest,
		Deterministic: digest == digest2,
		Elapsed:       fleet.Elapsed,
		Ticks:         fleet.Ticks,
		FleetBytes:    fleet.Transfer.TotalBytes(),
	}
	for i, j := range fleet.Jobs {
		spec := specs[i]
		o.progressf("multijob: standalone baseline %s", j.Name)
		solo, err := cluster.Run(cluster.Config{
			Workload:   spec.Workload,
			Scheme:     spec.Scheme,
			Workers:    spec.Workers,
			Seed:       spec.Seed,
			Speeds:     spec.Speeds,
			MaxVirtual: o.MaxVirtual,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: multijob baseline %s: %w", j.Name, err)
		}
		row := MultiJobRow{
			Job:             j.Name,
			Scheme:          j.SchemeName,
			Workers:         spec.Workers,
			Hetero:          spec.Speeds != nil,
			Converged:       j.Converged,
			FinalLoss:       j.FinalLoss,
			AdmittedAt:      j.AdmittedAt,
			Bytes:           j.Transfer.TotalBytes(),
			Pushes:          j.Pushes,
			Aborts:          j.Aborts,
			ThrottledPushes: j.ThrottledPushes,
		}
		if j.Converged {
			row.FleetConverge = j.ConvergeTime - j.AdmittedAt
		}
		if solo.Converged {
			row.SoloConverge = solo.ConvergeTime
		}
		if row.FleetConverge > 0 && row.SoloConverge > 0 {
			row.Epsilon = float64(row.FleetConverge)/float64(row.SoloConverge) - 1
			if row.Epsilon > res.MaxEpsilon {
				res.MaxEpsilon = row.Epsilon
			}
		}
		res.SumJobBytes += row.Bytes
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the multi-tenancy table.
func (r *MultiJobResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Multi-tenant fleet: concurrent jobs, mixed schemes, shared parameter servers")
	tb := newTable("job", "scheme", "workers", "admitted", "converged", "fleet time", "solo time", "epsilon", "final loss", "pushes", "aborts")
	for _, row := range r.Rows {
		tb.addRow(
			row.Job, row.Scheme, fmt.Sprintf("%d", row.Workers),
			row.AdmittedAt.Round(time.Second).String(),
			fmt.Sprintf("%v", row.Converged),
			fmtDur(row.FleetConverge, row.Converged),
			fmtDur(row.SoloConverge, row.SoloConverge > 0),
			fmt.Sprintf("%+.3f", row.Epsilon),
			fmt.Sprintf("%.4f", row.FinalLoss),
			fmt.Sprintf("%d", row.Pushes),
			fmt.Sprintf("%d", row.Aborts),
		)
	}
	tb.render(w)
	fmt.Fprintf(w, "\nfleet bytes %d, sum of per-job accounts %d (match: %v)\n",
		r.FleetBytes, r.SumJobBytes, r.FleetBytes == r.SumJobBytes)
	fmt.Fprintf(w, "trace digest %s (deterministic rerun: %v), %d control ticks, %v simulated\n",
		r.Digest[:16], r.Deterministic, r.Ticks, r.Elapsed.Round(time.Second))
}
