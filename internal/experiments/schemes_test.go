package experiments

import (
	"strings"
	"testing"
	"time"

	"specsync/internal/cluster"
)

func TestSchemesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	o := Options{
		Workers:    4,
		Seed:       1,
		Size:       cluster.SizeSmall,
		MaxVirtual: 8 * time.Minute,
	}
	r, err := Schemes(o)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(schemesRoster()) * len(schemesScenarios(o.Seed))
	if len(r.Cells) != wantCells {
		t.Fatalf("shootout produced %d cells, want %d", len(r.Cells), wantCells)
	}
	if !r.Reproducible {
		for _, c := range r.Cells {
			if !c.Reproducible {
				t.Errorf("cell %s: double-run trace digests diverged", c.Name)
			}
		}
		t.Fatal("shootout is not deterministic")
	}
	byName := map[string]SchemeCell{}
	for _, c := range r.Cells {
		byName[c.Name] = c
		if c.TotalIters == 0 {
			t.Errorf("cell %s did no iterations", c.Name)
		}
	}
	// The dynamic entries must actually act: Sync-Switch hands over exactly
	// once everywhere, and the meta-scheme degrades (once, without flapping
	// back) under the persistent straggler while staying put on the
	// homogeneous fleet.
	for _, sn := range r.Scenarios {
		if c := byName["Sync-Switch(@e5)/"+sn]; c.Switches != 1 || c.FinalScheme != "ASP" {
			t.Errorf("Sync-Switch under %s: %d switches ending at %s, want exactly 1 ending at ASP",
				sn, c.Switches, c.FinalScheme)
		}
	}
	if c := byName["Meta(BSP↔SSP)/steady"]; c.Switches != 0 || c.FinalScheme != "BSP" {
		t.Errorf("meta-scheme on the homogeneous fleet: %d switches ending at %s, want 0 ending at BSP",
			c.Switches, c.FinalScheme)
	}
	if c := byName["Meta(BSP↔SSP)/straggler"]; c.Switches != 1 || !strings.HasPrefix(c.FinalScheme, "SSP(") {
		t.Errorf("meta-scheme under the persistent straggler: %d switches ending at %s, want exactly 1 ending in SSP",
			c.Switches, c.FinalScheme)
	}

	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "all cells reproducible=true") {
		t.Errorf("render missing the reproducibility verdict:\n%s", sb.String())
	}
}
