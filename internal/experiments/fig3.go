package experiments

import (
	"fmt"
	"io"
	"time"

	"specsync/internal/metrics"
	"specsync/internal/trace"
)

// Fig3Result holds the pushes-after-pull distributions (paper Fig. 3): for
// each interval after a pull, the box statistics of how many peer pushes
// landed in it, measured under plain ASP.
type Fig3Result struct {
	PerWorkload []Fig3Workload
}

// Fig3Workload is the PAP analysis of one workload.
type Fig3Workload struct {
	Workload WorkloadID
	Interval time.Duration
	Boxes    []metrics.Box // one per interval bucket
}

// Fig3 runs ASP training on the CIFAR-like and MF workloads (the two the
// paper plots) and analyzes the pushes-after-pull distribution.
func Fig3(o Options) (*Fig3Result, error) {
	o = o.normalize()
	res := &Fig3Result{}
	for _, id := range []WorkloadID{WorkloadCIFAR, WorkloadMF} {
		wl, err := buildWorkload(id, o)
		if err != nil {
			return nil, err
		}
		run, err := runOne(o, wl, schemeASP(), func(c *clusterConfig) {
			c.KeepTrace = true
			// The distribution stabilizes quickly; a bounded slice of
			// training is enough and keeps the trace small.
			c.MaxVirtual = 60 * wl.IterTime
		})
		if err != nil {
			return nil, err
		}
		// The paper buckets at 1-second granularity over the iteration;
		// scale the bucket to the workload so every workload gets ~10
		// buckets across an iteration.
		interval := time.Second
		buckets := int(wl.IterTime / interval)
		if buckets > 14 {
			buckets = 14
		}
		if buckets < 3 {
			interval = wl.IterTime / 3
			buckets = 3
		}
		pap := run.Trace.PAP(trace.PAPConfig{Interval: interval, Buckets: buckets})
		fw := Fig3Workload{Workload: id, Interval: interval}
		for _, samples := range pap.PerBucket {
			fw.Boxes = append(fw.Boxes, metrics.BoxOf(samples))
		}
		res.PerWorkload = append(res.PerWorkload, fw)
	}
	return res, nil
}

// Render prints one box-stat table per workload.
func (r *Fig3Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig 3: distribution of pushes-after-pull (PAP) per interval after a pull, under ASP.")
	fmt.Fprintln(w, "       Paper observation: approximately uniform arrivals per interval; the first two")
	fmt.Fprintln(w, "       1-second boxes on CIFAR-10 have median > 6 (40 workers, 14 s iterations).")
	for _, fw := range r.PerWorkload {
		fmt.Fprintf(w, "\n[%s] interval width %v\n", fw.Workload, fw.Interval)
		tb := newTable("interval", "p5", "p25", "median", "p75", "p95", "n")
		for k, b := range fw.Boxes {
			lo := time.Duration(k) * fw.Interval
			hi := lo + fw.Interval
			tb.addRow(fmt.Sprintf("%v-%v", lo.Round(time.Millisecond), hi.Round(time.Millisecond)),
				fmt.Sprintf("%.1f", b.P5), fmt.Sprintf("%.1f", b.P25), fmt.Sprintf("%.1f", b.P50),
				fmt.Sprintf("%.1f", b.P75), fmt.Sprintf("%.1f", b.P95), fmt.Sprintf("%d", b.N))
		}
		tb.render(w)
	}
}
