package experiments

import (
	"strings"
	"testing"
)

func TestStalenessQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	r, err := Staleness(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Schemes) != 3 {
		t.Fatalf("schemes = %d", len(r.Schemes))
	}
	for i, b := range r.Boxes {
		if b.N == 0 {
			t.Errorf("%s: no staleness samples", r.Schemes[i])
		}
		if b.P50 < 0 || b.P95 < b.P50 {
			t.Errorf("%s: malformed box %+v", r.Schemes[i], b)
		}
	}
	// The speculating schemes must abort at least once over the horizon.
	if r.Aborts[1] == 0 && r.Aborts[2] == 0 {
		t.Error("no aborts under either SpecSync variant")
	}
	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "median") {
		t.Error("render incomplete")
	}
}
